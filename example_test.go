package dbdc_test

import (
	"fmt"

	dbdc "github.com/dbdc-go/dbdc"
)

// grid3x3 returns a tight 3x3 grid of points around (cx, cy) — a
// deterministic miniature cluster for the documentation examples.
func grid3x3(cx, cy float64) []dbdc.Point {
	var pts []dbdc.Point
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			pts = append(pts, dbdc.Point{cx + 0.1*float64(dx), cy + 0.1*float64(dy)})
		}
	}
	return pts
}

// ExampleRun shows the one-call distributed pipeline: one spatial cluster
// split over two sites is reunified under a single global cluster id.
func ExampleRun() {
	cluster := append(grid3x3(0, 0), grid3x3(0.5, 0)...)
	res, err := dbdc.Run([]dbdc.Site{
		{ID: "left", Points: cluster[:9]},
		{ID: "right", Points: cluster[9:]},
	}, dbdc.Config{Local: dbdc.Params{Eps: 0.3, MinPts: 4}})
	if err != nil {
		panic(err)
	}
	fmt.Println("global clusters:", res.Global.NumClusters)
	fmt.Println("same id on both sites:", res.Sites["left"].Labels[0] == res.Sites["right"].Labels[0])
	// Output:
	// global clusters: 1
	// same id on both sites: true
}

// ExampleCluster runs the central DBSCAN baseline.
func ExampleCluster() {
	pts := append(grid3x3(0, 0), grid3x3(10, 10)...)
	pts = append(pts, dbdc.Point{5, 5}) // isolated noise
	res, err := dbdc.Cluster(pts, dbdc.Params{Eps: 0.3, MinPts: 4}, "")
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", res.NumClusters())
	fmt.Println("noise:", res.Labels.NumNoise())
	// Output:
	// clusters: 2
	// noise: 1
}

// ExampleLocalStep demonstrates the local model a site would transmit:
// a handful of representatives instead of the raw points.
func ExampleLocalStep() {
	pts := grid3x3(0, 0)
	out, err := dbdc.LocalStep("site-1", pts, dbdc.Config{
		Local: dbdc.Params{Eps: 0.3, MinPts: 4},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("local clusters:", out.Model.NumClusters)
	fmt.Println("representatives:", len(out.Model.Reps))
	fmt.Println("wire bytes:", out.Model.EncodedSize() < out.Model.RawPointsSize(2))
	// Output:
	// local clusters: 1
	// representatives: 1
	// wire bytes: true
}

// ExampleQualityPII evaluates a distributed clustering against the central
// reference with the paper's continuous quality measure.
func ExampleQualityPII() {
	central := dbdc.Labeling{0, 0, 0, 0, dbdc.Noise}
	distributed := dbdc.Labeling{7, 7, 7, 7, dbdc.Noise} // same partition, renamed
	q, err := dbdc.QualityPII(distributed, central)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Q_DBDC = %.0f%%\n", q*100)
	// Output:
	// Q_DBDC = 100%
}
