// Benchmarks regenerating the measurements behind every table and figure of
// the DBDC paper's evaluation (Section 9), plus ablation benches for the
// design choices DESIGN.md calls out. Absolute numbers differ from the
// paper's 2004 hardware; the shapes (who wins, by what rough factor, where
// crossovers fall) are the reproduction target. cmd/experiments prints the
// full tables; these benches make the underlying costs measurable with
// `go test -bench=. -benchmem`.
package dbdc_test

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	lib "github.com/dbdc-go/dbdc"
	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/distkmeans"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
	"github.com/dbdc-go/dbdc/internal/index/rstar"
	"github.com/dbdc-go/dbdc/internal/model"
	"github.com/dbdc-go/dbdc/internal/pdbscan"
	"github.com/dbdc-go/dbdc/internal/quality"
)

// sitesOf splits a data set over k equally sized sites.
func sitesOf(ds lib.Dataset, k int) []lib.Site {
	sites := make([]lib.Site, k)
	per := len(ds.Points) / k
	for s := 0; s < k; s++ {
		end := (s + 1) * per
		if s == k-1 {
			end = len(ds.Points)
		}
		sites[s] = lib.Site{ID: fmt.Sprintf("site-%02d", s), Points: ds.Points[s*per : end]}
	}
	return sites
}

func dbdcConfig(ds lib.Dataset, kind lib.ModelKind) lib.Config {
	return lib.Config{
		Local:      ds.Params,
		Model:      kind,
		EpsGlobal:  2 * ds.Params.Eps,
		Sequential: true,
	}
}

// benchCentral measures the reference central DBSCAN run.
func benchCentral(b *testing.B, ds lib.Dataset) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lib.Cluster(ds.Points, ds.Params, lib.IndexRStar); err != nil {
			b.Fatal(err)
		}
	}
}

// benchDBDC measures the full distributed pipeline.
func benchDBDC(b *testing.B, ds lib.Dataset, k int, kind lib.ModelKind) {
	sites := sitesOf(ds, k)
	cfg := dbdcConfig(ds, kind)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := lib.Run(sites, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DistributedDuration().Seconds()*1000, "distms/op")
	}
}

// BenchmarkFig7a — runtime vs cardinality (large): central DBSCAN versus
// DBDC with both local models on data set A at 4 sites. Paper shape: DBDC
// far ahead at scale, REP_Scor cheaper than REP_kMeans.
func BenchmarkFig7a(b *testing.B) {
	for _, n := range []int{10_000, 50_000, 100_000} {
		ds := lib.DatasetA(n, 1)
		b.Run(fmt.Sprintf("central/n=%d", n), func(b *testing.B) { benchCentral(b, ds) })
		b.Run(fmt.Sprintf("dbdc-scor/n=%d", n), func(b *testing.B) { benchDBDC(b, ds, 4, lib.RepScor) })
		b.Run(fmt.Sprintf("dbdc-kmeans/n=%d", n), func(b *testing.B) { benchDBDC(b, ds, 4, lib.RepKMeans) })
	}
}

// BenchmarkFig7b — runtime vs cardinality (small): the overhead region
// where DBDC is slightly slower than central clustering.
func BenchmarkFig7b(b *testing.B) {
	for _, n := range []int{500, 2_000, 8_700} {
		ds := lib.DatasetA(n, 1)
		b.Run(fmt.Sprintf("central/n=%d", n), func(b *testing.B) { benchCentral(b, ds) })
		b.Run(fmt.Sprintf("dbdc-scor/n=%d", n), func(b *testing.B) { benchDBDC(b, ds, 4, lib.RepScor) })
		b.Run(fmt.Sprintf("dbdc-kmeans/n=%d", n), func(b *testing.B) { benchDBDC(b, ds, 4, lib.RepKMeans) })
	}
}

// BenchmarkFig8 — runtime vs number of sites on the 203,000-point data set;
// the speed-up over the central run (also measured here) lies between O(s)
// and O(s²).
func BenchmarkFig8(b *testing.B) {
	ds := lib.DatasetA(203_000, 1)
	b.Run("central", func(b *testing.B) { benchCentral(b, ds) })
	for _, k := range []int{2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("dbdc-scor/sites=%d", k), func(b *testing.B) { benchDBDC(b, ds, k, lib.RepScor) })
	}
}

// benchQuality runs DBDC and evaluates both quality functions against the
// central reference; the qualities are reported as benchmark metrics so the
// figure's series appear in the bench output.
func benchQuality(b *testing.B, ds lib.Dataset, k int, kind lib.ModelKind, epsFactor float64) {
	central, err := lib.Cluster(ds.Points, ds.Params, lib.IndexRStar)
	if err != nil {
		b.Fatal(err)
	}
	sites := sitesOf(ds, k)
	cfg := dbdcConfig(ds, kind)
	cfg.EpsGlobal = epsFactor * ds.Params.Eps
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := lib.Run(sites, cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Assemble the distributed labeling in data set order (contiguous
		// split, so concatenation in site order).
		distributed := make(lib.Labeling, 0, len(ds.Points))
		for s := range sites {
			distributed = append(distributed, res.Sites[sites[s].ID].Labels...)
		}
		pi, err := quality.QDBDCPI(distributed, central.Labels, ds.Params.MinPts)
		if err != nil {
			b.Fatal(err)
		}
		pii, err := quality.QDBDCPII(distributed, central.Labels)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pi*100, "P1pct")
		b.ReportMetric(pii*100, "P2pct")
	}
}

// BenchmarkFig9 — quality vs Eps_global factor for both local models (9a:
// P^I flat; 9b: P^II peaks near factor 2).
func BenchmarkFig9(b *testing.B) {
	ds := lib.DatasetA(data.DatasetASize, 1)
	for _, factor := range []float64{1.0, 2.0, 4.0} {
		b.Run(fmt.Sprintf("scor/factor=%.1f", factor), func(b *testing.B) {
			benchQuality(b, ds, 4, lib.RepScor, factor)
		})
		b.Run(fmt.Sprintf("kmeans/factor=%.1f", factor), func(b *testing.B) {
			benchQuality(b, ds, 4, lib.RepKMeans, factor)
		})
	}
}

// BenchmarkFig10 — quality vs number of client sites at the default
// Eps_global = 2·Eps_local.
func BenchmarkFig10(b *testing.B) {
	ds := lib.DatasetA(data.DatasetASize, 1)
	for _, k := range []int{2, 8, 20} {
		b.Run(fmt.Sprintf("scor/sites=%d", k), func(b *testing.B) {
			benchQuality(b, ds, k, lib.RepScor, 2)
		})
		b.Run(fmt.Sprintf("kmeans/sites=%d", k), func(b *testing.B) {
			benchQuality(b, ds, k, lib.RepKMeans, 2)
		})
	}
}

// BenchmarkFig11 — quality on the three evaluation data sets A, B and C.
func BenchmarkFig11(b *testing.B) {
	for _, ds := range data.ABC(1) {
		libDS := lib.Dataset{Name: ds.Name, Points: ds.Points, Params: ds.Params}
		b.Run(fmt.Sprintf("scor/dataset=%s", ds.Name), func(b *testing.B) {
			benchQuality(b, libDS, 4, lib.RepScor, 2)
		})
		b.Run(fmt.Sprintf("kmeans/dataset=%s", ds.Name), func(b *testing.B) {
			benchQuality(b, libDS, 4, lib.RepKMeans, 2)
		})
	}
}

// BenchmarkAblationIndex — DBSCAN cost per neighborhood index on data set A
// at its paper cardinality: the access-method choice DESIGN.md calls out.
func BenchmarkAblationIndex(b *testing.B) {
	ds := data.DatasetA(data.DatasetASize, 1)
	for _, kind := range index.Kinds() {
		idx, err := index.Build(kind, ds.Points, geom.Euclidean{}, ds.Params.Eps)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(string(kind), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dbscan.Run(idx, ds.Params, dbscan.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationScorCollection — the cost the on-the-fly specific core
// point extraction adds to a plain DBSCAN run.
func BenchmarkAblationScorCollection(b *testing.B) {
	ds := data.DatasetA(data.DatasetASize, 1)
	idx, err := index.Build(index.KindRStar, ds.Points, geom.Euclidean{}, ds.Params.Eps)
	if err != nil {
		b.Fatal(err)
	}
	for _, collect := range []bool{false, true} {
		b.Run(fmt.Sprintf("collect=%v", collect), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dbscan.Run(idx, ds.Params,
					dbscan.Options{CollectSpecificCores: collect}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkModelEncoding — wire-size and speed of the binary encoding
// against JSON for a realistic local model (the transmission-cost design
// choice).
func BenchmarkModelEncoding(b *testing.B) {
	ds := lib.DatasetA(data.DatasetASize, 1)
	out, err := lib.LocalStep("site-0", ds.Points, lib.Config{Local: ds.Params})
	if err != nil {
		b.Fatal(err)
	}
	m := out.Model
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf, err := m.MarshalBinary()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(buf)), "bytes")
		}
	})
	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.ReportMetric(float64(m.JSONSize()), "bytes")
		}
	})
	b.Run("gob", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(m); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(buf.Len()), "bytes")
		}
	})
	b.Run("raw-points-baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.ReportMetric(float64(m.RawPointsSize(2)), "bytes")
		}
	})
}

// BenchmarkAblationRStarBuild — incremental insertion versus STR bulk
// loading of the R*-tree.
func BenchmarkAblationRStarBuild(b *testing.B) {
	ds := data.DatasetA(25_000, 1)
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rstar.New(ds.Points); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rstar.NewBulk(ds.Points); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationModelKind — local model construction cost: REP_Scor
// versus REP_kMeans on one site (the Figure 7a observation that REP_Scor is
// cheaper).
func BenchmarkAblationModelKind(b *testing.B) {
	ds := lib.DatasetA(data.DatasetASize, 1)
	for _, kind := range model.Kinds() {
		b.Run(string(kind), func(b *testing.B) {
			cfg := lib.Config{Local: ds.Params, Model: kind}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := lib.LocalStep("s", ds.Points, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkComparisonMethods — cost of one full distributed clustering per
// method on data set A at 4 sites (quality lives in the comparison table;
// this measures compute).
func BenchmarkComparisonMethods(b *testing.B) {
	ds := data.DatasetA(data.DatasetASize, 1)
	b.Run("dbdc-scor", func(b *testing.B) {
		libDS := lib.Dataset{Name: ds.Name, Points: ds.Points, Params: ds.Params}
		benchDBDC(b, libDS, 4, lib.RepScor)
	})
	b.Run("pdbscan-exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pdbscan.Run(ds.Points, ds.Params, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dist-kmeans", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		part, err := data.PartitionRandom(len(ds.Points), 4, rng)
		if err != nil {
			b.Fatal(err)
		}
		sites := part.Extract(ds.Points)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := distkmeans.Run(sites, 10, rng, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIncrementalMaintenance — mixed insert/delete stream against the
// incremental DBSCAN clusterer, the site-side cost of the "changed
// considerably" policy.
func BenchmarkIncrementalMaintenance(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	inc, err := lib.NewIncremental(lib.Params{Eps: 0.5, MinPts: 5})
	if err != nil {
		b.Fatal(err)
	}
	var live []int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(live) > 100 && rng.Float64() < 0.3 {
			k := rng.Intn(len(live))
			if err := inc.Delete(live[k]); err != nil {
				b.Fatal(err)
			}
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		idx, err := inc.Insert(lib.Point{rng.Float64() * 20, rng.Float64() * 20})
		if err != nil {
			b.Fatal(err)
		}
		live = append(live, idx)
	}
}

// BenchmarkRelabel — step 4 alone: assigning 8700 objects global ids from
// a realistic global model.
func BenchmarkRelabel(b *testing.B) {
	ds := lib.DatasetA(data.DatasetASize, 1)
	out, err := lib.LocalStep("site", ds.Points, lib.Config{Local: ds.Params})
	if err != nil {
		b.Fatal(err)
	}
	global, err := lib.GlobalStep([]*lib.LocalModel{out.Model}, lib.Config{Local: ds.Params})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lib.Relabel(ds.Points, global); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSink defeats dead-code elimination in the kernel microbenches.
var benchSink float64

// BenchmarkStoreKernels measures the flat-store hot paths against their
// slice counterparts: the strided squared-distance kernels, and the
// store-backed range-query scan that must run allocation-free (allocs/op =
// 0 in the range loop — also pinned hard by the zero-alloc regression test
// in internal/index; here the number lands in BENCH_*.json so cmd/benchdiff
// tracks it across revisions).
func BenchmarkStoreKernels(b *testing.B) {
	ds := data.DatasetA(20_000, 1)
	st := ds.Store
	n := st.Len()
	e := geom.Euclidean{}

	b.Run("distsq/slice", func(b *testing.B) {
		pts := ds.Points
		var sink float64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += e.DistanceSq(pts[i%n], pts[(i*7+1)%n])
		}
		benchSink = sink
	})
	b.Run("distsq/store", func(b *testing.B) {
		var sink float64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += st.DistanceSq(i%n, (i*7+1)%n)
		}
		benchSink = sink
	})
	b.Run("distsq-to/slice", func(b *testing.B) {
		pts := ds.Points
		q := geom.Point{50, 50}
		var sink float64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += e.DistanceSq(q, pts[i%n])
		}
		benchSink = sink
	})
	b.Run("distsq-to/store", func(b *testing.B) {
		q := geom.Point{50, 50}
		var sink float64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink += st.DistanceSqTo(i%n, q)
		}
		benchSink = sink
	})

	// Range queries through the reusable-buffer seam, slice-built versus
	// store-built index. The loops reuse one buffer; after warm-up both
	// must report allocs/op = 0, and the store path additionally runs on
	// the strided verification kernels.
	for _, kind := range []index.Kind{index.KindGrid, index.KindKDTree} {
		b.Run(fmt.Sprintf("range/slice/%s", kind), func(b *testing.B) {
			idx, err := index.Build(kind, ds.Points, e, ds.Params.Eps)
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]int, 0, 1024)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = index.RangeInto(idx, ds.Points[i%n], ds.Params.Eps, buf)
			}
		})
		b.Run(fmt.Sprintf("range/store/%s", kind), func(b *testing.B) {
			idx, err := index.BuildStore(kind, st, e, ds.Params.Eps)
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]int, 0, 1024)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = index.RangeIntoID(idx, i%n, ds.Params.Eps, buf)
			}
		})
	}
}

// plainMetric wraps a metric and deliberately hides its DistanceSq fast
// path, forcing every index through the generic sqrt-per-comparison code.
// It is the "naive" baseline of BenchmarkLocalClustering: the measured gap
// against the plain geom.Euclidean{} runs is exactly what the squared-space
// kernels and allocation-free range queries buy.
type plainMetric struct{ m geom.Metric }

func (p plainMetric) Distance(a, b geom.Point) float64 { return p.m.Distance(a, b) }

func (p plainMetric) Name() string { return "plain-" + p.m.Name() }

// naiveIndex hides the RangeAppender fast path of the wrapped index: the
// embedded interface exposes only index.Index, so index.RangeInto falls back
// to Range and every region query allocates its result slice — the second
// half of the pre-optimization behavior plainMetric restores.
type naiveIndex struct{ index.Index }

// BenchmarkLocalClustering measures the hot path of DBDC's step 1 — one
// site-local DBSCAN with specific core collection — on a 50,000-object
// site. Sub-benchmarks compare the naive distance kernels against the
// squared-space fast path per index kind, and the sequential run against
// dbscan.RunParallel at increasing worker counts. Range-query counts are
// reported so BENCH_*.json records the paper's cost model alongside wall
// time. Index construction is excluded: the subject is the clustering scan.
func BenchmarkLocalClustering(b *testing.B) {
	ds := lib.DatasetA(50_000, 1)
	// DatasetA's stock Eps=1.2 was tuned for the paper's 8,700-object
	// cardinality; at 50,000 objects on the same geometry it yields ~500
	// neighbors per ball, which measures neighborhood materialisation
	// rather than clustering. Scale Eps to the 50k density so neighborhoods
	// stay realistic (a few dozen objects).
	params := dbscan.Params{Eps: 0.25, MinPts: 5}
	opts := dbscan.Options{CollectSpecificCores: true}
	runOnce := func(b *testing.B, idx index.Index, o dbscan.Options) {
		b.Helper()
		b.ReportAllocs()
		var queries int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := dbscan.Run(idx, params, o)
			if err != nil {
				b.Fatal(err)
			}
			queries = res.RangeQueries
		}
		b.ReportMetric(float64(queries), "range-queries/op")
	}
	// Naive vs fast kernels, single-threaded, per index kind. The linear
	// scan is excluded: O(n²) distance computations at this cardinality
	// measure patience, not kernels (internal/index has per-query benches
	// covering it).
	for _, kind := range []index.Kind{index.KindGrid, index.KindKDTree, index.KindRStar} {
		b.Run(fmt.Sprintf("store/%s", kind), func(b *testing.B) {
			// Flat-store bulk load: the index keeps the stride-2 backing
			// array and verifies candidates with the strided kernels.
			idx, err := index.BuildStore(kind, ds.Store, geom.Euclidean{}, ds.Params.Eps)
			if err != nil {
				b.Fatal(err)
			}
			runOnce(b, idx, opts)
		})
		b.Run(fmt.Sprintf("naive/%s", kind), func(b *testing.B) {
			if kind == index.KindRStar {
				b.Skip("rstar is Euclidean-only; its fast path cannot be disabled via the metric")
			}
			idx, err := index.Build(kind, ds.Points, plainMetric{geom.Euclidean{}}, ds.Params.Eps)
			if err != nil {
				b.Fatal(err)
			}
			runOnce(b, naiveIndex{idx}, opts)
		})
		b.Run(fmt.Sprintf("fast/%s", kind), func(b *testing.B) {
			idx, err := index.Build(kind, ds.Points, geom.Euclidean{}, ds.Params.Eps)
			if err != nil {
				b.Fatal(err)
			}
			runOnce(b, idx, opts)
		})
	}
	// Intra-site parallelism: same index, growing worker budget. workers=1
	// is the sequential expansion; higher counts route through RunParallel.
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel/workers=%d", workers), func(b *testing.B) {
			idx, err := index.Build(index.KindKDTree, ds.Points, geom.Euclidean{}, ds.Params.Eps)
			if err != nil {
				b.Fatal(err)
			}
			o := opts
			o.Workers = workers
			runOnce(b, idx, o)
		})
	}
	// Spatial sharding vs index-chunking on the same store-backed index:
	// shard/<kind> lets RunParallel partition the site by grid cells with an
	// ε-halo and cluster each cell against its cache-local sub-index;
	// chunked/<kind> forces the contiguous-chunk fallback on the identical
	// index, so the delta is exactly what spatial locality buys (or costs).
	// Both run 4 workers — on a single-CPU host the numbers measure
	// coordination overhead, not speedup; benchdiff flags that via the
	// recorded core count.
	for _, kind := range []index.Kind{index.KindGrid, index.KindKDTree, index.KindRStar} {
		for _, mode := range []struct {
			name     string
			sharding dbscan.ShardingMode
		}{
			{"shard", dbscan.ShardingAuto},
			{"chunked", dbscan.ShardingOff},
		} {
			b.Run(fmt.Sprintf("%s/%s", mode.name, kind), func(b *testing.B) {
				idx, err := index.BuildStore(kind, ds.Store, geom.Euclidean{}, ds.Params.Eps)
				if err != nil {
					b.Fatal(err)
				}
				o := opts
				o.Workers = 4
				o.Sharding = mode.sharding
				b.ReportAllocs()
				var queries, shards int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := dbscan.RunParallel(idx, params, o)
					if err != nil {
						b.Fatal(err)
					}
					queries, shards = res.RangeQueries, res.Shards
				}
				b.ReportMetric(float64(queries), "range-queries/op")
				b.ReportMetric(float64(shards), "shards/op")
				if mode.sharding == dbscan.ShardingAuto && shards < 2 {
					b.Fatal("shard variant fell back to the chunked path")
				}
			})
		}
	}
	// SDBDC representative budgets: the full LocalStep (clustering,
	// condensation, greedy budget selection) with a per-cluster cap, on the
	// paper-sized site. budget=0 is the unbudgeted baseline, so BENCH_*.json
	// records the selector's overhead next to the uplink bytes it saves;
	// coverage-fraction shows the quality headroom the budget leaves.
	budgetDS := lib.DatasetA(8_700, 1)
	for _, budget := range []int{0, 16, 4} {
		b.Run(fmt.Sprintf("budget/b=%d", budget), func(b *testing.B) {
			cfg := lib.Config{
				Local:     budgetDS.Params,
				Index:     index.KindKDTree,
				RepBudget: budget,
			}
			b.ReportAllocs()
			var out *lib.LocalOutcome
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				out, err = lib.LocalStep("bench-site", budgetDS.Points, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(out.Budget.CoverageFraction(), "coverage-fraction")
			b.ReportMetric(float64(out.Model.EncodedSize()), "uplink-bytes")
		})
	}
}

// BenchmarkLoadgenClassify measures the online classification front end
// end-to-end over loopback TCP: a ClassifyServer answering MsgClassify /
// MsgClassifyBatch against the paper-sized data-set-A model, driven
// closed-loop by persistent-connection clients (the in-process twin of
// cmd/dbdc-loadgen). One op is one request round trip carrying batch
// points; conc splits the b.N requests over that many concurrent
// connections, so ns/op is throughput-reciprocal, not per-request
// latency. On a single-CPU host — this repo's benchmark container —
// conc>1 measures interleaving and queueing, not parallel speedup;
// points/s is the honest throughput number. Via `make bench-json` the
// entries land in BENCH_<rev>.json so cmd/benchdiff tracks serving cost
// next to the clustering kernels.
func BenchmarkLoadgenClassify(b *testing.B) {
	ds := lib.DatasetA(8_700, 1)
	out, err := lib.LocalStep("bench-site", ds.Points, lib.Config{Local: ds.Params})
	if err != nil {
		b.Fatal(err)
	}
	global, err := lib.GlobalStep([]*lib.LocalModel{out.Model}, lib.Config{Local: ds.Params})
	if err != nil {
		b.Fatal(err)
	}
	registry := lib.NewModelRegistry("")
	if _, err := registry.Publish(global); err != nil {
		b.Fatal(err)
	}
	srv, err := lib.NewClassifyServer("127.0.0.1:0", lib.ClassifyServerConfig{Registry: registry})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	go srv.Serve()

	for _, tc := range []struct{ conc, batch int }{{1, 1}, {1, 32}, {4, 1}, {4, 32}} {
		b.Run(fmt.Sprintf("conc=%d/batch=%d", tc.conc, tc.batch), func(b *testing.B) {
			clients := make([]*lib.ClassifyClient, tc.conc)
			for i := range clients {
				c, err := lib.DialClassify(srv.Addr(), 0)
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				clients[i] = c
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			errs := make(chan error, tc.conc)
			for w := 0; w < tc.conc; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					c := clients[w]
					for i := w; i < b.N; i += tc.conc {
						// Cycle through the dataset at staggered offsets so
						// requests exercise different index regions.
						off := (i * tc.batch) % (len(ds.Points) - tc.batch)
						if tc.batch == 1 {
							if _, _, err := c.Classify(ds.Points[off]); err != nil {
								errs <- err
								return
							}
							continue
						}
						if _, _, err := c.ClassifyBatch(ds.Points[off : off+tc.batch]); err != nil {
							errs <- err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			select {
			case err := <-errs:
				b.Fatal(err)
			default:
			}
			b.ReportMetric(float64(tc.batch)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}
