# Development entry points for the dbdc library.

GO ?= go

.PHONY: all build test test-short test-race check fuzz-smoke bench vet experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

# The CI gate: static checks, build, race-enabled tests.
check: vet build test-race

# Short native-fuzzing smoke over every fuzz target (decoders must never
# panic on arbitrary bytes). CI runs this on push; use a larger FUZZTIME
# locally before touching the wire formats.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/transport/ -run '^$$' -fuzz FuzzReadFrame -fuzztime $(FUZZTIME)
	$(GO) test ./internal/model/ -run '^$$' -fuzz FuzzLocalModelUnmarshal -fuzztime $(FUZZTIME)
	$(GO) test ./internal/model/ -run '^$$' -fuzz FuzzGlobalModelUnmarshal -fuzztime $(FUZZTIME)

# Full benchmark sweep: one benchmark per paper figure/table plus the
# ablations. Expect several minutes (Figure 8 runs a 203,000-point study).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/experiments -run all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/distributed
	$(GO) run ./examples/astronomy
	$(GO) run ./examples/retail
	$(GO) run ./examples/monitoring

clean:
	$(GO) clean ./...
