# Development entry points for the dbdc library.

GO ?= go

.PHONY: all build test test-short test-race check fuzz-smoke bench bench-json bench-smoke benchdiff loadgen-smoke agg-smoke vet experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

# The CI gate: static checks, build, race-enabled tests.
check: vet build test-race

# Short native-fuzzing smoke over every fuzz target (decoders must never
# panic on arbitrary bytes). CI runs this on push; use a larger FUZZTIME
# locally before touching the wire formats.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/transport/ -run '^$$' -fuzz 'FuzzReadFrame$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/transport/ -run '^$$' -fuzz FuzzBudgetSections -fuzztime $(FUZZTIME)
	$(GO) test ./internal/transport/ -run '^$$' -fuzz FuzzAggSections -fuzztime $(FUZZTIME)
	$(GO) test ./internal/model/ -run '^$$' -fuzz FuzzLocalModelUnmarshal -fuzztime $(FUZZTIME)
	$(GO) test ./internal/model/ -run '^$$' -fuzz FuzzGlobalModelUnmarshal -fuzztime $(FUZZTIME)
	$(GO) test ./internal/model/ -run '^$$' -fuzz FuzzLocalDeltaUnmarshal -fuzztime $(FUZZTIME)
	$(GO) test ./internal/geom/ -run '^$$' -fuzz 'FuzzStoreDistanceSq$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/geom/ -run '^$$' -fuzz FuzzDistanceSqBatch -fuzztime $(FUZZTIME)
	$(GO) test ./internal/shard/ -run '^$$' -fuzz FuzzShardAssign -fuzztime $(FUZZTIME)

# Full benchmark sweep: one benchmark per paper figure/table plus the
# ablations. Expect several minutes (Figure 8 runs a 203,000-point study).
bench:
	$(GO) test -bench=. -benchmem ./...

# Hot-path benchmark sweep recorded as a committed artifact: runs the
# BenchmarkLocalClustering suite (naive-vs-fast kernels, flat-store bulk
# loads, worker scaling) plus BenchmarkStoreKernels (strided vs slice
# distance kernels, allocation-free range loops) and
# BenchmarkLoadgenClassify (loopback classification serving throughput)
# and converts the output into BENCH_<shortrev>.json via cmd/benchjson. The raw
# text passes through to stdout unchanged, so the same pipeline feeds
# benchstat:
#
#   make bench-json BENCHFLAGS='-count=10' | tee new.txt
#   benchstat old.txt new.txt    # any `go test -bench` text file works
#
# See docs/performance.md for how to read the JSON.
BENCHFLAGS ?=
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkLocalClustering|BenchmarkStoreKernels|BenchmarkLoadgenClassify' -benchmem $(BENCHFLAGS) . \
		| $(GO) run ./cmd/benchjson -rev $$(git rev-parse --short HEAD)

# One-iteration smoke over the hot-path suite: catches benchmarks that no
# longer compile or crash, without paying measurement time. CI runs this.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkLocalClustering|BenchmarkStoreKernels|BenchmarkLoadgenClassify' -benchtime 1x -benchmem .

# Run the hot-path suite and diff it against the committed baseline artifact
# with cmd/benchdiff. BASELINE defaults to the newest committed BENCH_*.json;
# DIFFFLAGS passes through to benchdiff (e.g. DIFFFLAGS='-fail -threshold
# 0.25' to gate). Crank BENCHFLAGS='-count=5 -benchtime 2s' for less noise —
# the default single run trips the 10% threshold on timing jitter alone.
BASELINE ?= $(lastword $(sort $(wildcard BENCH_*.json)))
DIFFFLAGS ?=
benchdiff:
	@test -n "$(BASELINE)" || { echo "benchdiff: no committed BENCH_*.json baseline"; exit 1; }
	$(GO) test -run '^$$' -bench 'BenchmarkLocalClustering|BenchmarkStoreKernels|BenchmarkLoadgenClassify' -benchmem $(BENCHFLAGS) . \
		| $(GO) run ./cmd/benchjson -rev $$(git rev-parse --short HEAD) -out /tmp/dbdc-bench-new.json >/dev/null
	$(GO) run ./cmd/benchdiff $(DIFFFLAGS) $(BASELINE) /tmp/dbdc-bench-new.json

# Serving smoke: the in-process twin of a dbdc-loadgen run — boots a
# classification front end, drives closed-loop load against it for both
# request shapes and checks the benchio report is coherent (see
# docs/serving.md). CI runs this plus the serve package under -race.
loadgen-smoke:
	$(GO) test -race -run 'TestLoadgenSmoke' -count=1 -v ./internal/serve/

# Aggregation-tree smoke: boots a loopback two-level tree out of the real
# binaries (4 dbdc-site -> 2 dbdc-agg -> dbdc-server), checks every
# process exits clean, every site labels all its points against the root
# model, and the provenance sections reach the root's report. See
# docs/hierarchy.md. CI runs this plus internal/aggtree under -race.
agg-smoke:
	sh scripts/agg_smoke.sh

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/experiments -run all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/distributed
	$(GO) run ./examples/astronomy
	$(GO) run ./examples/retail
	$(GO) run ./examples/monitoring

clean:
	$(GO) clean ./...
