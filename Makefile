# Development entry points for the dbdc library.

GO ?= go

.PHONY: all build test test-short bench vet experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Full benchmark sweep: one benchmark per paper figure/table plus the
# ablations. Expect several minutes (Figure 8 runs a 203,000-point study).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/experiments -run all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/distributed
	$(GO) run ./examples/astronomy
	$(GO) run ./examples/retail
	$(GO) run ./examples/monitoring

clean:
	$(GO) clean ./...
