#!/bin/sh
# agg_smoke.sh — loopback two-level aggregation tree smoke over the real
# binaries (make agg-smoke): four dbdc-site processes upload to two
# dbdc-agg leaf aggregators, which condense and forward to one root
# dbdc-server; every process must exit 0 and every site must label all of
# its points against the root's global model. See docs/hierarchy.md.
set -eu

GO=${GO:-go}
EPS=1.2
MINPTS=4
ROOT=127.0.0.1:17070
AGG_A=127.0.0.1:17171
AGG_B=127.0.0.1:17172

TMP=$(mktemp -d /tmp/dbdc-agg-smoke.XXXXXX)
trap 'kill $(jobs -p) 2>/dev/null; rm -rf "$TMP"' EXIT INT TERM

echo "agg-smoke: building binaries"
$GO build -o "$TMP/bin/" ./cmd/dbdc-server ./cmd/dbdc-agg ./cmd/dbdc-site ./cmd/datagen

for s in 0 1 2 3; do
    "$TMP/bin/datagen" -dataset A -n 800 -seed $((s + 1)) -o "$TMP/site-$s.csv"
done

echo "agg-smoke: starting root server on $ROOT"
"$TMP/bin/dbdc-server" -addr "$ROOT" -sites 2 -eps $EPS -minpts $MINPTS \
    -rounds 1 -report-json "$TMP/root.json" &
ROOT_PID=$!
sleep 0.3

echo "agg-smoke: starting leaf aggregators on $AGG_A and $AGG_B"
"$TMP/bin/dbdc-agg" -addr "$AGG_A" -id agg-a -parent "$ROOT" -expect 2 \
    -eps $EPS -minpts $MINPTS -report-json "$TMP/agg-a.json" &
AGG_A_PID=$!
"$TMP/bin/dbdc-agg" -addr "$AGG_B" -id agg-b -parent "$ROOT" -expect 2 \
    -eps $EPS -minpts $MINPTS -rep-budget 8 &
AGG_B_PID=$!
sleep 0.3

echo "agg-smoke: running sites"
"$TMP/bin/dbdc-site" -addr "$AGG_A" -id site-a0 -input "$TMP/site-0.csv" \
    -eps $EPS -minpts $MINPTS -o "$TMP/labels-a0.txt" &
S0=$!
"$TMP/bin/dbdc-site" -addr "$AGG_A" -id site-a1 -input "$TMP/site-1.csv" \
    -eps $EPS -minpts $MINPTS -o "$TMP/labels-a1.txt" &
S1=$!
"$TMP/bin/dbdc-site" -addr "$AGG_B" -id site-b0 -input "$TMP/site-2.csv" \
    -eps $EPS -minpts $MINPTS -o "$TMP/labels-b0.txt" &
S2=$!
"$TMP/bin/dbdc-site" -addr "$AGG_B" -id site-b1 -input "$TMP/site-3.csv" \
    -eps $EPS -minpts $MINPTS -o "$TMP/labels-b1.txt" &
S3=$!

for pid in $S0 $S1 $S2 $S3; do
    wait $pid || { echo "agg-smoke: FAIL: a site exited non-zero"; exit 1; }
done
wait $AGG_A_PID || { echo "agg-smoke: FAIL: agg-a exited non-zero"; exit 1; }
wait $AGG_B_PID || { echo "agg-smoke: FAIL: agg-b exited non-zero"; exit 1; }
wait $ROOT_PID || { echo "agg-smoke: FAIL: root server exited non-zero"; exit 1; }

# Every site must have labelled all of its points against the root model.
for f in labels-a0 labels-a1 labels-b0 labels-b1; do
    lines=$(wc -l < "$TMP/$f.txt")
    [ "$lines" -eq 800 ] || { echo "agg-smoke: FAIL: $f has $lines labels, want 800"; exit 1; }
done
# The root's report must carry the forwarded provenance of both leaves.
grep -q '"agg-level"' "$TMP/root.json" || {
    echo "agg-smoke: FAIL: root report lacks aggregation provenance"; exit 1; }
grep -q '"forward-ns"' "$TMP/agg-a.json" || {
    echo "agg-smoke: FAIL: agg-a report lacks the forward phase"; exit 1; }

echo "agg-smoke: OK (2 levels, 4 sites, provenance present)"
