// Distributed runs a real networked DBDC round inside one process: a TCP
// server plus several concurrently connecting sites on the loopback
// interface — the deployment shape of the paper's Figure 2, with measured
// transmission costs. The same client/server pair is available as separate
// executables (cmd/dbdc-server, cmd/dbdc-site) for multi-machine use.
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	dbdc "github.com/dbdc-go/dbdc"
)

func main() {
	// A supermarket chain: every store's scanner data shows the shared
	// customer segments plus one store-specific segment.
	rng := rand.New(rand.NewSource(7))
	stores := map[string][]dbdc.Point{}
	sharedA := blob(rng, 0, 0, 0.4, 600)   // segment every store sees
	sharedB := blob(rng, 10, 2, 0.4, 600)  // second shared segment
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("store-%d", i+1)
		pts := append([]dbdc.Point{}, sharedA[i*200:(i+1)*200]...)
		pts = append(pts, sharedB[i*200:(i+1)*200]...)
		// A store-specific segment no other site knows about.
		pts = append(pts, blob(rng, float64(20+10*i), -8, 0.3, 150)...)
		stores[id] = pts
	}

	cfg := dbdc.Config{Local: dbdc.Params{Eps: 0.6, MinPts: 5}}
	srv, err := dbdc.NewServer("127.0.0.1:0", len(stores), cfg, 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("server listening on %s, waiting for %d stores\n", srv.Addr(), len(stores))

	serverDone := make(chan error, 1)
	go func() {
		global, err := srv.RunRound()
		if err == nil {
			fmt.Printf("server: merged %d representatives into %d global clusters, received %dB, sent %dB\n",
				len(global.Reps), global.NumClusters, srv.BytesIn(), srv.BytesOut())
		}
		serverDone <- err
	}()

	var wg sync.WaitGroup
	var mu sync.Mutex
	for id, pts := range stores {
		wg.Add(1)
		go func(id string, pts []dbdc.Point) {
			defer wg.Done()
			report, err := dbdc.RunSite(srv.Addr(), id, pts, cfg, 10*time.Second)
			if err != nil {
				log.Printf("%s: %v", id, err)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			fmt.Printf("%s: sees %d global clusters, %d of its noise points adopted by other stores' clusters, sent %dB / received %dB\n",
				id, report.Global.NumClusters, report.Stats.NoiseAdopted,
				report.BytesSent, report.BytesReceived)
		}(id, pts)
	}
	wg.Wait()
	if err := <-serverDone; err != nil {
		log.Fatal(err)
	}
	fmt.Println("round complete: every store now answers queries like " +
		`"give me all objects in global cluster 3" locally`)
}

func blob(rng *rand.Rand, cx, cy, spread float64, n int) []dbdc.Point {
	pts := make([]dbdc.Point, n)
	for i := range pts {
		pts[i] = dbdc.Point{cx + rng.NormFloat64()*spread, cy + rng.NormFloat64()*spread}
	}
	return pts
}
