// Astronomy simulates the paper's motivating scenario: telescopes that
// "gather data unceasingly" and can never ship it all to a central site.
// Each observatory maintains its clustering with incremental DBSCAN as
// detections stream in, and only transmits a fresh local model to the
// archive center when its clustering changed considerably — exactly the
// policy Section 4 of the paper motivates with the incremental DBSCAN
// citation.
//
// Run with: go run ./examples/astronomy
package main

import (
	"fmt"
	"log"
	"math/rand"

	dbdc "github.com/dbdc-go/dbdc"
)

const (
	epsLocal = 0.5
	minPts   = 5
)

// observatory is one telescope site: an incremental clusterer plus the
// bookkeeping for the "transmit only on considerable change" policy.
type observatory struct {
	id        string
	inc       *dbdc.Incremental
	points    []dbdc.Point
	lastSent  int // cluster count at the last model transmission
	transmits int
}

func newObservatory(id string) *observatory {
	inc, err := dbdc.NewIncremental(dbdc.Params{Eps: epsLocal, MinPts: minPts})
	if err != nil {
		log.Fatal(err)
	}
	return &observatory{id: id, inc: inc, lastSent: -1}
}

// observe streams one detection into the local clustering.
func (o *observatory) observe(p dbdc.Point) {
	if _, err := o.inc.Insert(p); err != nil {
		log.Fatal(err)
	}
	o.points = append(o.points, p)
}

// changedConsiderably implements the transmission policy: a new cluster
// appeared or one vanished since the last upload.
func (o *observatory) changedConsiderably() bool {
	return o.inc.NumClusters() != o.lastSent
}

// localModel derives the current local model for transmission.
func (o *observatory) localModel() *dbdc.LocalModel {
	out, err := dbdc.LocalStep(o.id, o.points,
		dbdc.Config{Local: dbdc.Params{Eps: epsLocal, MinPts: minPts}})
	if err != nil {
		log.Fatal(err)
	}
	o.lastSent = o.inc.NumClusters()
	o.transmits++
	return out.Model
}

func main() {
	rng := rand.New(rand.NewSource(2004))
	// Three observatories watch overlapping sky regions; object clusters
	// (e.g. a stellar stream) span the regions.
	sites := []*observatory{newObservatory("paranal"), newObservatory("mauna-kea"), newObservatory("la-palma")}
	stream := skyStream(rng)

	models := make(map[string]*dbdc.LocalModel)
	epoch := 0
	for night := 1; night <= 6; night++ {
		// Each night every observatory records a batch of detections.
		for _, o := range sites {
			for i := 0; i < 250; i++ {
				o.observe(stream(o.id, night))
			}
		}
		// Sites check their transmission policy independently.
		sent := 0
		for _, o := range sites {
			if o.changedConsiderably() {
				models[o.id] = o.localModel()
				sent++
			}
		}
		if sent == 0 {
			fmt.Printf("night %d: no considerable changes, nothing transmitted\n", night)
			continue
		}
		epoch++
		// The archive center rebuilds the global model from the latest
		// model of every site (stale models stay valid).
		var all []*dbdc.LocalModel
		var bytes int
		for _, m := range models {
			all = append(all, m)
			bytes += m.EncodedSize()
		}
		global, err := dbdc.GlobalStep(all, dbdc.Config{Local: dbdc.Params{Eps: epsLocal, MinPts: minPts}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("night %d: %d sites transmitted (%d B total models), archive sees %d global structures\n",
			night, sent, bytes, global.NumClusters)
	}
	for _, o := range sites {
		fmt.Printf("%s: %d detections, %d clusters locally, %d model transmissions in 6 nights\n",
			o.id, len(o.points), o.inc.NumClusters(), o.transmits)
	}
}

// skyStream produces detections: background noise everywhere, a stellar
// stream that brightens over the nights and spans all three sky regions,
// plus a site-local open cluster.
func skyStream(rng *rand.Rand) func(site string, night int) dbdc.Point {
	regionOf := map[string]float64{"paranal": 0, "mauna-kea": 6, "la-palma": 12}
	return func(site string, night int) dbdc.Point {
		base := regionOf[site]
		switch {
		case night >= 2 && rng.Float64() < 0.5:
			// The stellar stream: a dense elongated structure crossing all
			// regions, visible from night 2 on.
			x := rng.Float64() * 18
			return dbdc.Point{x, 10 + 0.3*x + rng.NormFloat64()*0.15}
		case rng.Float64() < 0.75:
			// A compact cluster local to this site's region.
			return dbdc.Point{base + 2 + rng.NormFloat64()*0.2, 2 + rng.NormFloat64()*0.2}
		default:
			// Sparse background detections over a wide sky area.
			return dbdc.Point{base + rng.Float64()*6, rng.Float64() * 40}
		}
	}
}
