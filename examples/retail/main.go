// Retail examines how the data-to-site layout affects DBDC quality: the
// paper's experiments distribute objects over sites uniformly at random
// (every store sees every customer segment), but a real supermarket chain
// is spatially skewed — each store sees mostly its own region. This example
// runs both layouts on the same data and compares Q_DBDC against the
// central reference, demonstrating the representative/ε-range mechanism
// stitching region-spanning clusters back together.
//
// Run with: go run ./examples/retail
package main

import (
	"fmt"
	"log"
	"math/rand"

	dbdc "github.com/dbdc-go/dbdc"
)

func main() {
	rng := rand.New(rand.NewSource(99))
	// Customer feature space (e.g. basket value × visit frequency): four
	// segments, one of them an elongated arc that spans "regions".
	var pts []dbdc.Point
	for _, c := range [][3]float64{{0, 0, 0.5}, {8, 1, 0.6}, {4, 8, 0.5}} {
		for i := 0; i < 700; i++ {
			pts = append(pts, dbdc.Point{c[0] + rng.NormFloat64()*c[2], c[1] + rng.NormFloat64()*c[2]})
		}
	}
	for i := 0; i < 900; i++ { // the arc segment
		x := rng.Float64() * 12
		pts = append(pts, dbdc.Point{x - 2, -5 + 0.05*(x-5)*(x-5) + rng.NormFloat64()*0.25})
	}
	params := dbdc.Params{Eps: 0.5, MinPts: 5}
	central, err := dbdc.Cluster(pts, params, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("central reference: %d clusters, %d noise of %d customers\n\n",
		central.NumClusters(), central.Labels.NumNoise(), len(pts))

	const stores = 6
	layouts := map[string]*dbdc.Partition{}
	if layouts["random (paper layout)"], err = dbdc.PartitionRandom(len(pts), stores, rng); err != nil {
		log.Fatal(err)
	}
	if layouts["spatially skewed"], err = dbdc.PartitionSpatial(pts, stores); err != nil {
		log.Fatal(err)
	}

	for name, part := range layouts {
		sites := make([]dbdc.Site, 0, stores)
		for s, idxs := range part.Sites {
			sitePts := make([]dbdc.Point, len(idxs))
			for j, i := range idxs {
				sitePts[j] = pts[i]
			}
			sites = append(sites, dbdc.Site{ID: fmt.Sprintf("store-%d", s+1), Points: sitePts})
		}
		res, err := dbdc.Run(sites, dbdc.Config{Local: params, Model: dbdc.RepKMeans})
		if err != nil {
			log.Fatal(err)
		}
		// Reassemble the distributed labeling in data set order.
		distributed := make(dbdc.Labeling, len(pts))
		for s, idxs := range part.Sites {
			labels := res.Sites[sites[s].ID].Labels
			for j, i := range idxs {
				distributed[i] = labels[j]
			}
		}
		pii, err := dbdc.QualityPII(distributed, central.Labels)
		if err != nil {
			log.Fatal(err)
		}
		var uplink int
		for _, sr := range res.Sites {
			uplink += sr.UplinkBytes
		}
		fmt.Printf("%s:\n", name)
		fmt.Printf("  global clusters: %d (central found %d)\n",
			res.Global.NumClusters, central.NumClusters())
		fmt.Printf("  Q_DBDC(P^II) vs central: %.1f%%\n", pii*100)
		fmt.Printf("  representatives: %d (%.1f%% of the data), uplink %d B\n\n",
			res.TotalRepresentatives(),
			100*float64(res.TotalRepresentatives())/float64(len(pts)), uplink)
	}
	fmt.Println("even when every store only sees its own spatial sector, the ε-ranges of the")
	fmt.Println("representatives let the server merge the sector-fragments of region-spanning segments")
}
