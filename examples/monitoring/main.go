// Monitoring runs the full incremental DBDC deployment in one process: a
// long-running update server, three sensor-network sites that upload fresh
// local models only when their clustering changed considerably, and an
// analyst who queries the sites for the members of a global cluster — the
// combination of Section 4 (incremental local clustering), Section 6
// (server-side merging) and Section 7 (cluster-membership queries).
//
// Run with: go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	dbdc "github.com/dbdc-go/dbdc"
)

const (
	epsLocal = 0.5
	minPts   = 5
)

// sensorSite is one regional sensor network: an incremental clusterer, the
// transmission policy, and a query server over the latest relabeling.
type sensorSite struct {
	id       string
	points   []dbdc.Point
	inc      *dbdc.Incremental
	lastSent int
	queries  *dbdc.SiteQueryServer
}

func newSensorSite(id string) *sensorSite {
	inc, err := dbdc.NewIncremental(dbdc.Params{Eps: epsLocal, MinPts: minPts})
	if err != nil {
		log.Fatal(err)
	}
	return &sensorSite{id: id, inc: inc, lastSent: -1}
}

func (s *sensorSite) ingest(p dbdc.Point) {
	if _, err := s.inc.Insert(p); err != nil {
		log.Fatal(err)
	}
	s.points = append(s.points, p)
}

// maybeUpload ships a fresh local model when the clustering changed
// considerably and refreshes the site's query server from the returned
// global model.
func (s *sensorSite) maybeUpload(serverAddr string) (uploaded bool, global *dbdc.GlobalModel) {
	if s.inc.NumClusters() == s.lastSent {
		return false, nil
	}
	out, err := dbdc.LocalStep(s.id, s.points, dbdc.Config{Local: dbdc.Params{Eps: epsLocal, MinPts: minPts}})
	if err != nil {
		log.Fatal(err)
	}
	g, _, _, err := dbdc.Exchange(serverAddr, out.Model, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	s.lastSent = s.inc.NumClusters()
	labels, err := dbdc.Relabel(s.points, g)
	if err != nil {
		log.Fatal(err)
	}
	if s.queries == nil {
		s.queries, err = dbdc.NewSiteQueryServer("127.0.0.1:0", s.points, labels, 5*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		go s.queries.Serve(0)
	} else if err := s.queries.Update(s.points, labels); err != nil {
		log.Fatal(err)
	}
	return true, g
}

func main() {
	rng := rand.New(rand.NewSource(7))
	srv, err := dbdc.NewUpdateServer("127.0.0.1:0", dbdc.Config{
		Local: dbdc.Params{Eps: epsLocal, MinPts: minPts},
	}, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	go srv.Serve(0)

	sites := []*sensorSite{newSensorSite("north"), newSensorSite("east"), newSensorSite("west")}
	regionOf := map[string]float64{"north": 0, "east": 8, "west": 16}

	var lastGlobal *dbdc.GlobalModel
	for epoch := 1; epoch <= 5; epoch++ {
		// Each epoch every region ingests new measurements: a persistent
		// hotspot per region plus, from epoch 3 on, a growing congestion
		// front spanning all regions.
		for _, s := range sites {
			base := regionOf[s.id]
			for i := 0; i < 150; i++ {
				var p dbdc.Point
				switch {
				case epoch >= 3 && rng.Float64() < 0.4:
					x := rng.Float64() * 22
					p = dbdc.Point{x, 12 + rng.NormFloat64()*0.15}
				case rng.Float64() < 0.6:
					p = dbdc.Point{base + 2 + rng.NormFloat64()*0.2, 3 + rng.NormFloat64()*0.2}
				default:
					p = dbdc.Point{base + rng.Float64()*8, rng.Float64() * 25}
				}
				s.ingest(p)
			}
		}
		uploads := 0
		for _, s := range sites {
			if up, g := s.maybeUpload(srv.Addr()); up {
				uploads++
				lastGlobal = g
			}
		}
		structures := 0
		if lastGlobal != nil {
			structures = lastGlobal.NumClusters
		}
		fmt.Printf("epoch %d: %d/%d sites uploaded, monitoring center sees %d structures\n",
			epoch, uploads, len(sites), structures)
	}

	// The analyst spots the cross-region structure (the congestion front)
	// and asks every site for its share. The front is the global cluster
	// with representatives from every site.
	siteCount := map[dbdc.ClusterID]map[string]bool{}
	for _, r := range lastGlobal.Reps {
		if siteCount[r.GlobalCluster] == nil {
			siteCount[r.GlobalCluster] = map[string]bool{}
		}
		siteCount[r.GlobalCluster][r.SiteID] = true
	}
	var front dbdc.ClusterID = -1
	for id, owners := range siteCount {
		if len(owners) == len(sites) {
			front = id
			break
		}
	}
	if front < 0 {
		log.Fatal("no cross-region structure found")
	}
	total := 0
	for _, s := range sites {
		members, err := dbdc.QueryCluster(s.queries.Addr(), front, 5*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("site %s holds %d measurements of the cross-region front (global cluster %d)\n",
			s.id, len(members), front)
		total += len(members)
	}
	fmt.Printf("the front spans %d measurements across %d regions — no raw data ever left a site until the analyst asked\n",
		total, len(sites))
}
