// Quickstart walks through the four steps of DBDC (Figure 2 of the paper)
// on generated data: local clustering, local model determination, global
// model determination and relabeling — first step by step, then with the
// one-call orchestrator.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	dbdc "github.com/dbdc-go/dbdc"
)

func main() {
	// Two sites share one spatial cluster; site B owns a second cluster.
	rng := rand.New(rand.NewSource(42))
	shared := blob(rng, 0, 0, 0.3, 400)
	siteA := append(shared[:200:200], dbdc.Point{-8, 9}) // plus one noise point
	siteB := append(shared[200:], blob(rng, 8, 8, 0.3, 300)...)

	cfg := dbdc.Config{
		Local: dbdc.Params{Eps: 0.5, MinPts: 5},
		Model: dbdc.RepScor, // specific core points with ε-ranges
	}

	// Step 1 + 2: each site clusters locally and condenses its clusters
	// into a local model.
	outA, err := dbdc.LocalStep("site-A", siteA, cfg)
	if err != nil {
		log.Fatal(err)
	}
	outB, err := dbdc.LocalStep("site-B", siteB, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("site-A: %d local clusters, %d representatives for %d points (%.1f%% of the data)\n",
		outA.Model.NumClusters, len(outA.Model.Reps), len(siteA),
		100*float64(len(outA.Model.Reps))/float64(len(siteA)))
	fmt.Printf("site-B: %d local clusters, %d representatives for %d points\n",
		outB.Model.NumClusters, len(outB.Model.Reps), len(siteB))
	fmt.Printf("uplink cost: %d + %d bytes instead of %d bytes of raw points\n",
		outA.Model.EncodedSize(), outB.Model.EncodedSize(),
		outA.Model.RawPointsSize(2)+outB.Model.RawPointsSize(2))

	// Step 3: the server merges the local models. Eps_global defaults to
	// the maximum specific ε-range, which lands near 2·Eps_local.
	global, err := dbdc.GlobalStep([]*dbdc.LocalModel{outA.Model, outB.Model}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server: %d global clusters from %d representatives (Eps_global=%.3f ≈ 2·Eps_local)\n",
		global.NumClusters, len(global.Reps), global.EpsGlobal)

	// Step 4: sites relabel their objects from the global model. The halves
	// of the shared cluster now carry the same global id on both sites.
	labelsA, err := dbdc.Relabel(siteA, global)
	if err != nil {
		log.Fatal(err)
	}
	labelsB, err := dbdc.Relabel(siteB, global)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared cluster id on site-A: %d, on site-B: %d (same cluster discovered across sites)\n",
		labelsA[0], labelsB[0])

	// The same pipeline in one call, with per-site goroutines and timing.
	res, err := dbdc.Run([]dbdc.Site{
		{ID: "site-A", Points: siteA},
		{ID: "site-B", Points: siteB},
	}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("orchestrated run: %d global clusters, distributed time %v\n",
		res.Global.NumClusters, res.DistributedDuration())

	// Compare against clustering everything centrally.
	all := append(append([]dbdc.Point{}, siteA...), siteB...)
	central, err := dbdc.Cluster(all, cfg.Local, "")
	if err != nil {
		log.Fatal(err)
	}
	distributed := append(append(dbdc.Labeling{}, res.Sites["site-A"].Labels...),
		res.Sites["site-B"].Labels...)
	pii, err := dbdc.QualityPII(distributed, central.Labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quality vs central clustering: Q_DBDC(P^II) = %.1f%%\n", pii*100)
}

func blob(rng *rand.Rand, cx, cy, spread float64, n int) []dbdc.Point {
	pts := make([]dbdc.Point, n)
	for i := range pts {
		pts[i] = dbdc.Point{cx + rng.NormFloat64()*spread, cy + rng.NormFloat64()*spread}
	}
	return pts
}
