// Package dbdc is the public API of the DBDC library, a Go implementation
// of Density Based Distributed Clustering (Januzaj, Kriegel, Pfeifle —
// EDBT 2004).
//
// DBDC clusters data that is horizontally distributed over independent
// sites without shipping the raw objects to a central server. Each site
// clusters locally with DBSCAN, condenses every local cluster into a small
// set of representatives with validity radii (the local model), and sends
// only those to the server. The server reconstructs a global clustering by
// clustering the representatives, and each site relabels its own objects
// from the returned global model.
//
// The top-level entry points:
//
//   - Run executes the whole pipeline over in-process sites.
//   - LocalStep / GlobalStep / Relabel expose the individual phases for
//     distributed deployments; the transport helpers (NewServer, RunSite)
//     run them over TCP.
//   - Cluster runs plain central DBSCAN, the reference baseline.
//   - QualityPI / QualityPII evaluate a distributed clustering against a
//     central reference with the paper's quality measures.
//
// All functionality is implemented from scratch on the standard library,
// including the spatial access methods (R*-tree, M-tree, kd-tree, grid)
// DBSCAN runs on.
package dbdc

import (
	"math/rand"
	"time"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/data"
	core "github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/incdbscan"
	"github.com/dbdc-go/dbdc/internal/index"
	"github.com/dbdc-go/dbdc/internal/model"
	"github.com/dbdc-go/dbdc/internal/quality"
	"github.com/dbdc-go/dbdc/internal/serve"
	"github.com/dbdc-go/dbdc/internal/stream"
	"github.com/dbdc-go/dbdc/internal/transport"
	"github.com/dbdc-go/dbdc/internal/viz"
)

// Point is a position in a d-dimensional vector space.
type Point = geom.Point

// Rect is an axis-aligned bounding box.
type Rect = geom.Rect

// Metric is a distance function on points.
type Metric = geom.Metric

// Euclidean is the L2 metric.
type Euclidean = geom.Euclidean

// ClusterID identifies a cluster; Noise marks unclustered objects.
type ClusterID = cluster.ID

// Noise is the label of objects belonging to no cluster.
const Noise = cluster.Noise

// Labeling assigns every object a cluster id or noise.
type Labeling = cluster.Labeling

// Params are the DBSCAN parameters Eps and MinPts.
type Params = dbscan.Params

// ClusteringResult is the output of a central DBSCAN run.
type ClusteringResult = dbscan.Result

// Config collects all DBDC parameters; see the field documentation of the
// core package.
type Config = core.Config

// Site is one participant of a distributed clustering.
type Site = core.Site

// Result is the outcome of a full DBDC run.
type Result = core.Result

// SiteResult is the per-site outcome of a DBDC run.
type SiteResult = core.SiteResult

// LocalOutcome bundles a site's clustering and its local model.
type LocalOutcome = core.LocalOutcome

// RelabelStats summarises how relabeling changed a site's clustering.
type RelabelStats = core.RelabelStats

// LocalTimings is the per-phase cost breakdown of a LocalStep (DBSCAN
// clustering vs representative condensation, plus the worker count).
type LocalTimings = core.LocalTimings

// LocalModel is the aggregated information a site sends to the server.
type LocalModel = model.LocalModel

// GlobalModel is what the server broadcasts back to the sites.
type GlobalModel = model.GlobalModel

// Representative is one element of a local model.
type Representative = model.Representative

// ModelKind selects the local model construction.
type ModelKind = model.Kind

// The two local models of the paper.
const (
	// RepScor represents clusters by specific core points (Section 5.1).
	RepScor = model.RepScor
	// RepKMeans refines them with k-means centroids (Section 5.2).
	RepKMeans = model.RepKMeans
)

// IndexKind selects a neighborhood index implementation.
type IndexKind = index.Kind

// Available index kinds.
const (
	IndexLinear = index.KindLinear
	IndexGrid   = index.KindGrid
	IndexKDTree = index.KindKDTree
	IndexRStar  = index.KindRStar
	IndexMTree  = index.KindMTree
)

// Run executes the four DBDC steps over in-process sites, each in its own
// goroutine.
func Run(sites []Site, cfg Config) (*Result, error) { return core.Run(sites, cfg) }

// LocalStep performs local clustering and model determination for one site.
func LocalStep(siteID string, pts []Point, cfg Config) (*LocalOutcome, error) {
	return core.LocalStep(siteID, pts, cfg)
}

// GlobalStep merges local models into the global model on the server.
func GlobalStep(models []*LocalModel, cfg Config) (*GlobalModel, error) {
	return core.GlobalStep(models, cfg)
}

// Relabel assigns global cluster ids to a site's objects from the global
// model. The empty global model (the all-noise sentinel returned by
// GlobalStep when no representatives arrived) yields an all-noise labeling;
// a structurally broken global model (e.g. mixed-dimension representatives)
// returns an error instead of being silently treated as "covers nothing".
func Relabel(pts []Point, global *GlobalModel) (Labeling, error) {
	return core.Relabel(pts, global)
}

// Cluster runs central DBSCAN over all points with the given index kind
// (empty kind selects the R*-tree) — the reference DBDC is compared
// against.
func Cluster(pts []Point, params Params, kind IndexKind) (*ClusteringResult, error) {
	if kind == "" {
		kind = index.KindRStar
	}
	idx, err := index.Build(kind, pts, geom.Euclidean{}, params.Eps)
	if err != nil {
		return nil, err
	}
	return dbscan.Run(idx, params, dbscan.Options{})
}

// QualityPI computes Q_DBDC under the discrete object quality function P^I
// (Definition 10) with quality parameter qp (the paper recommends MinPts).
func QualityPI(distributed, central Labeling, qp int) (float64, error) {
	return quality.QDBDCPI(distributed, central, qp)
}

// QualityPII computes Q_DBDC under the continuous object quality function
// P^II (Definition 11).
func QualityPII(distributed, central Labeling) (float64, error) {
	return quality.QDBDCPII(distributed, central)
}

// Server is the central TCP server of a networked DBDC deployment.
type Server = transport.Server

// UpdateServer is the long-running server for incremental deployments: it
// retains the newest local model per site and rebuilds the global model on
// every upload.
type UpdateServer = transport.UpdateServer

// NewUpdateServer listens on addr for model updates.
func NewUpdateServer(addr string, cfg Config, timeout time.Duration) (*UpdateServer, error) {
	return transport.NewUpdateServer(addr, cfg, timeout)
}

// SiteQueryServer serves cluster-membership queries over a site's
// relabelled objects (the "give me all objects in global cluster 4711"
// query of the paper's Section 7).
type SiteQueryServer = transport.SiteQueryServer

// NewSiteQueryServer serves the given relabelled objects on addr.
func NewSiteQueryServer(addr string, pts []Point, labels Labeling, timeout time.Duration) (*SiteQueryServer, error) {
	return transport.NewSiteQueryServer(addr, pts, labels, timeout)
}

// QueryCluster asks a site for all of its objects in the given global
// cluster.
func QueryCluster(addr string, id ClusterID, timeout time.Duration) ([]Point, error) {
	return transport.QueryCluster(addr, id, timeout)
}

// Exchange performs the site side of one round against a remote server:
// upload the local model, receive the global model.
func Exchange(addr string, local *LocalModel, timeout time.Duration) (*GlobalModel, int, int, error) {
	return transport.Exchange(addr, local, timeout)
}

// SiteReport is the outcome of a networked site run.
type SiteReport = transport.SiteReport

// PhaseBreakdown is the client-measured per-phase cost of a networked site
// round: local clustering, condensation, upload (per attempt), server
// wait, download, relabel.
type PhaseBreakdown = transport.PhaseBreakdown

// AttemptStats is one connection attempt within a PhaseBreakdown.
type AttemptStats = transport.AttemptStats

// SitePhases is the per-phase site metrics section attached to a timed
// model upload and echoed in the server's RoundReport.
type SitePhases = transport.SitePhases

// BudgetStats is the coverage accounting of the SDBDC representative
// budget: how many specific cores the budget dropped and what fraction of
// the clustered objects the survivors still cover. Produced per site when
// Config.RepBudget > 0.
type BudgetStats = dbscan.BudgetStats

// SiteBudget is the budget accounting a budgeted site attaches to its
// upload, echoed per site in the server's RoundReport.
type SiteBudget = transport.SiteBudget

// Negotiation describes how the budget handshake of a budgeted networked
// round ended: whether the server acked, its advertised upload byte cap,
// and the budget the shipped model ended up with after any cap-driven
// shrink.
type Negotiation = transport.Negotiation

// NewServer listens for one round of expect site connections.
func NewServer(addr string, expect int, cfg Config, timeout time.Duration) (*Server, error) {
	return transport.NewServer(addr, expect, cfg, timeout)
}

// RunSite executes the full site-side pipeline against a remote server,
// retrying transient transport failures with DefaultRetryPolicy.
func RunSite(addr, siteID string, pts []Point, cfg Config, timeout time.Duration) (*SiteReport, error) {
	return transport.RunSite(addr, siteID, pts, cfg, timeout)
}

// TransportClient is the site side of the round-trip protocol with
// configurable retry (exponential backoff + jitter) and dialing.
type TransportClient = transport.Client

// RetryPolicy controls client-side retry of transient transport failures.
type RetryPolicy = transport.RetryPolicy

// DefaultRetryPolicy is the policy RunSite uses: three attempts, 50ms base
// delay, 2s cap, 20% jitter.
func DefaultRetryPolicy() RetryPolicy { return transport.DefaultRetryPolicy() }

// RunSiteClient is RunSite with a caller-configured transport client.
func RunSiteClient(c *TransportClient, siteID string, pts []Point, cfg Config) (*SiteReport, error) {
	return transport.RunSiteClient(c, siteID, pts, cfg)
}

// RoundOptions tunes a server round: quorum, accept deadline and the
// expected site names for reporting.
type RoundOptions = transport.RoundOptions

// RoundReport is the per-site outcome of a server round.
type RoundReport = transport.RoundReport

// SiteOutcome is one site's fate within a RoundReport.
type SiteOutcome = transport.SiteOutcome

// ModelRegistry is the versioned model registry of the online
// classification subsystem: Publish atomically hot-swaps the served global
// model, readers get consistent snapshots wait-free. Feed it from a Server
// or UpdateServer via SetOnGlobal(registry.PublishFunc(onErr)); see
// docs/serving.md.
type ModelRegistry = serve.Registry

// NewModelRegistry returns an empty registry whose classifiers bulk-load
// the representatives into the given index kind ("" = kd-tree).
func NewModelRegistry(kind IndexKind) *ModelRegistry { return serve.NewRegistry(kind) }

// Classifier labels points online against a global model using the same
// representative-selection rule as Relabel (differentially tested).
type Classifier = serve.Classifier

// NewClassifier builds a classifier over the global model.
func NewClassifier(global *GlobalModel, kind IndexKind) (*Classifier, error) {
	return serve.NewClassifier(global, kind)
}

// ClassifyServer is the TCP classification front end: persistent
// connections, batched requests, per-request model snapshots.
type ClassifyServer = serve.Server

// ClassifyServerConfig configures a ClassifyServer.
type ClassifyServerConfig = serve.ServerConfig

// NewClassifyServer listens on addr and answers classification requests
// against the registry's current snapshot.
func NewClassifyServer(addr string, cfg ClassifyServerConfig) (*ClassifyServer, error) {
	return serve.NewServer(addr, cfg)
}

// ClassifyClient speaks the classification protocol over one persistent
// connection (single-flight; give each goroutine its own).
type ClassifyClient = serve.Client

// DialClassify connects to a classification front end.
func DialClassify(addr string, timeout time.Duration) (*ClassifyClient, error) {
	return serve.Dial(addr, timeout)
}

// ServeMetrics aggregates the serving observability signals and renders
// them in the Prometheus text exposition format.
type ServeMetrics = serve.Metrics

// NewServeMetrics returns a metrics hub bound to the registry.
func NewServeMetrics(reg *ModelRegistry) *ServeMetrics { return serve.NewMetrics(reg) }

// Incremental is an incrementally maintained DBSCAN clustering (Ester et
// al. 1998): sites use it to keep their local clustering current as objects
// arrive and only ship a fresh local model when the clustering changed
// considerably.
type Incremental = incdbscan.Clusterer

// NewIncremental returns an empty incremental clusterer.
func NewIncremental(params Params) (*Incremental, error) { return incdbscan.New(params) }

// LocalDelta is the incremental form of a local-model upload: the
// representatives added and removed since an acknowledged base state. See
// docs/streaming.md.
type LocalDelta = model.LocalDelta

// DeltaTracker derives the delta chain on the site side: Delta diffs a
// model against the last committed state, Commit installs it after the
// server acked.
type DeltaTracker = model.DeltaTracker

// NewDeltaTracker returns a tracker whose first delta is a snapshot.
func NewDeltaTracker() *DeltaTracker { return model.NewDeltaTracker() }

// DeltaFolder reassembles a site's model from its delta chain on the
// server side.
type DeltaFolder = model.DeltaFolder

// NewDeltaFolder returns an empty folder; it accepts only a snapshot
// first.
func NewDeltaFolder() *DeltaFolder { return model.NewDeltaFolder() }

// ClusterMatcher keeps cluster ids stable across model versions by
// matching clusters on representative overlap.
type ClusterMatcher = model.ClusterMatcher

// NewClusterMatcher returns a matcher with no history.
func NewClusterMatcher() *ClusterMatcher { return model.NewClusterMatcher() }

// StreamClient uploads a streaming site's model updates to an update
// server, negotiating delta versus full-model encoding by fallback.
type StreamClient = transport.StreamClient

// StreamUploadResult describes one StreamClient upload.
type StreamUploadResult = transport.UploadResult

// StreamUploadMode names the wire encoding an upload went out with.
type StreamUploadMode = transport.UploadMode

// Streaming upload modes, from preferred to fallback of last resort.
const (
	StreamModeDelta      = transport.ModeDelta
	StreamModeTimedFull  = transport.ModeTimedFull
	StreamModeLegacyFull = transport.ModeLegacyFull
)

// StreamStats is the stream-progress section a streaming site attaches to
// its delta uploads.
type StreamStats = transport.StreamStats

// StreamSite ingests an unbounded point stream over a sliding window and
// uploads model updates whenever the clustering changed considerably. See
// docs/streaming.md.
type StreamSite = stream.Site

// StreamConfig parameterizes a streaming site.
type StreamConfig = stream.Config

// StreamSiteStats describes a streaming site's progress.
type StreamSiteStats = stream.Stats

// StreamUploader ships one model update; *StreamClient implements it.
type StreamUploader = stream.Uploader

// NewStreamSite returns a streaming site uploading through up.
func NewStreamSite(cfg StreamConfig, up StreamUploader) (*StreamSite, error) {
	return stream.NewSite(cfg, up)
}

// Partition assigns data set objects to sites.
type Partition = data.Partition

// PartitionRandom distributes n objects over k equally sized sites at
// random — the layout of the paper's experiments.
func PartitionRandom(n, k int, rng *rand.Rand) (*Partition, error) {
	return data.PartitionRandom(n, k, rng)
}

// PartitionSpatial splits objects into k angular sectors around the data
// centroid — the adversarial layout where every site sees a different
// region of space.
func PartitionSpatial(pts []Point, k int) (*Partition, error) {
	return data.PartitionSpatial(pts, k)
}

// Dataset couples a generated point set with suitable DBSCAN parameters.
type Dataset = data.Dataset

// DatasetA generates the analogue of the paper's test data set A (randomly
// generated clusters; n scales the cardinality).
func DatasetA(n int, seed int64) Dataset { return data.DatasetA(n, seed) }

// DatasetB generates the analogue of test data set B (4000 objects, very
// noisy).
func DatasetB(seed int64) Dataset { return data.DatasetB(seed) }

// DatasetC generates the analogue of test data set C (1021 objects, 3
// clusters).
func DatasetC(seed int64) Dataset { return data.DatasetC(seed) }

// OpticsOrderer computes one OPTICS ordering of all representatives and
// lets the server extract the global model at any Eps_global cut without
// re-clustering (the Section 6 extension), including a data-driven cut
// suggestion.
type OpticsOrderer = core.OpticsOrderer

// NewOpticsOrderer pools the representatives of the local models and
// orders them; epsMax 0 selects the bounding-box diagonal.
func NewOpticsOrderer(models []*LocalModel, cfg Config, epsMax float64) (*OpticsOrderer, error) {
	return core.NewOpticsOrderer(models, cfg, epsMax)
}

// ClusteringChange quantifies how much a site's clustering drifted since
// the last transmitted snapshot (1 − Q_DBDC(P^II)); drive the "transmit
// only on considerable change" policy with it.
func ClusteringChange(prev, cur Labeling) (float64, error) {
	return core.ClusteringChange(prev, cur)
}

// PadSnapshot extends an older labeling snapshot to n objects, marking the
// new objects as noise.
func PadSnapshot(prev Labeling, n int) (Labeling, error) { return core.PadSnapshot(prev, n) }

// ScatterPlot renders points coloured by cluster as an ASCII grid.
func ScatterPlot(pts []Point, labels Labeling, width, height int) (string, error) {
	return viz.Scatter(pts, labels, width, height)
}

// ReachabilityPlotASCII renders an OPTICS reachability plot as an ASCII
// bar chart with an optional cut line (0 for none).
func ReachabilityPlotASCII(reach []float64, width, height int, cut float64) (string, error) {
	return viz.ReachabilityPlot(reach, width, height, cut)
}
