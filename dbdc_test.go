package dbdc_test

import (
	"math/rand"
	"testing"
	"time"

	dbdc "github.com/dbdc-go/dbdc"
)

func testBlob(rng *rand.Rand, cx, cy, spread float64, n int) []dbdc.Point {
	pts := make([]dbdc.Point, n)
	for i := range pts {
		pts[i] = dbdc.Point{cx + rng.NormFloat64()*spread, cy + rng.NormFloat64()*spread}
	}
	return pts
}

func TestPublicCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := append(testBlob(rng, 0, 0, 0.3, 100), testBlob(rng, 10, 0, 0.3, 100)...)
	for _, kind := range []dbdc.IndexKind{"", dbdc.IndexLinear, dbdc.IndexGrid,
		dbdc.IndexKDTree, dbdc.IndexRStar, dbdc.IndexMTree} {
		res, err := dbdc.Cluster(pts, dbdc.Params{Eps: 0.5, MinPts: 5}, kind)
		if err != nil {
			t.Fatalf("kind %q: %v", kind, err)
		}
		if res.NumClusters() != 2 {
			t.Fatalf("kind %q: clusters = %d", kind, res.NumClusters())
		}
	}
}

func TestPublicRunPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	shared := testBlob(rng, 0, 0, 0.3, 200)
	sites := []dbdc.Site{
		{ID: "a", Points: shared[:100]},
		{ID: "b", Points: shared[100:]},
	}
	res, err := dbdc.Run(sites, dbdc.Config{Local: dbdc.Params{Eps: 0.5, MinPts: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Global.NumClusters != 1 {
		t.Fatalf("clusters = %d", res.Global.NumClusters)
	}
	if res.Sites["a"].Labels[0] != res.Sites["b"].Labels[0] {
		t.Fatal("shared cluster not unified")
	}
}

func TestPublicStepByStep(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ptsA := testBlob(rng, 0, 0, 0.3, 150)
	ptsB := testBlob(rng, 0.5, 0, 0.3, 150)
	cfg := dbdc.Config{Local: dbdc.Params{Eps: 0.5, MinPts: 5}, Model: dbdc.RepKMeans}
	outA, err := dbdc.LocalStep("a", ptsA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	outB, err := dbdc.LocalStep("b", ptsB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	global, err := dbdc.GlobalStep([]*dbdc.LocalModel{outA.Model, outB.Model}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if global.NumClusters != 1 {
		t.Fatalf("clusters = %d", global.NumClusters)
	}
	labels, err := dbdc.Relabel(ptsA, global)
	if err != nil {
		t.Fatal(err)
	}
	if labels.NumClusters() != 1 {
		t.Fatalf("relabel found %d clusters", labels.NumClusters())
	}
}

func TestPublicQualityIdentity(t *testing.T) {
	l := dbdc.Labeling{0, 0, 1, 1, dbdc.Noise}
	if q, err := dbdc.QualityPI(l, l, 2); err != nil || q != 1 {
		t.Fatalf("PI identity = %v, %v", q, err)
	}
	if q, err := dbdc.QualityPII(l, l); err != nil || q != 1 {
		t.Fatalf("PII identity = %v, %v", q, err)
	}
}

func TestPublicDatasets(t *testing.T) {
	if n := len(dbdc.DatasetA(1000, 1).Points); n != 1000 {
		t.Errorf("A: %d", n)
	}
	if n := len(dbdc.DatasetB(1).Points); n != 4000 {
		t.Errorf("B: %d", n)
	}
	if n := len(dbdc.DatasetC(1).Points); n != 1021 {
		t.Errorf("C: %d", n)
	}
}

func TestPublicIncremental(t *testing.T) {
	inc, err := dbdc.NewIncremental(dbdc.Params{Eps: 1, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []dbdc.Point{{0, 0}, {0.5, 0}, {0.25, 0.5}} {
		if _, err := inc.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if inc.NumClusters() != 1 {
		t.Fatalf("clusters = %d", inc.NumClusters())
	}
}

func TestPublicPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p, err := dbdc.PartitionRandom(100, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSites() != 4 {
		t.Fatalf("sites = %d", p.NumSites())
	}
	pts := testBlob(rng, 0, 0, 3, 100)
	sp, err := dbdc.PartitionSpatial(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Validate(100); err != nil {
		t.Fatal(err)
	}
}

func TestPublicTCP(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := dbdc.Config{Local: dbdc.Params{Eps: 0.5, MinPts: 5}}
	srv, err := dbdc.NewServer("127.0.0.1:0", 1, cfg, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	done := make(chan error, 1)
	go func() {
		_, err := srv.RunRound()
		done <- err
	}()
	rep, err := dbdc.RunSite(srv.Addr(), "solo", testBlob(rng, 0, 0, 0.3, 200), cfg, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Global.NumClusters != 1 {
		t.Fatalf("clusters = %d", rep.Global.NumClusters)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
