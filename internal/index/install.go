package index

import (
	"errors"

	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index/mtree"
	"github.com/dbdc-go/dbdc/internal/index/rstar"
)

// The tree indexes live in subpackages; register their builders here so
// Build can construct every kind by name.
func init() {
	RegisterBuilder(KindRStar, func(pts []geom.Point, m geom.Metric, _ float64) (Index, error) {
		if m != nil {
			if _, ok := m.(geom.Euclidean); !ok {
				return nil, errors.New("index: the R*-tree supports only the Euclidean metric; use the M-tree for general metrics")
			}
		}
		return rstar.NewBulk(pts)
	})
	RegisterBuilder(KindMTree, func(pts []geom.Point, m geom.Metric, _ float64) (Index, error) {
		return mtree.New(pts, m)
	})
	RegisterStoreBuilder(KindRStar, func(st *geom.Store, m geom.Metric, _ float64) (Index, error) {
		if m != nil {
			if _, ok := m.(geom.Euclidean); !ok {
				return nil, errors.New("index: the R*-tree supports only the Euclidean metric; use the M-tree for general metrics")
			}
		}
		return rstar.NewBulkStore(st, rstar.DefaultMaxEntries)
	})
	RegisterStoreBuilder(KindMTree, func(st *geom.Store, m geom.Metric, _ float64) (Index, error) {
		return mtree.NewFromStore(st, m)
	})
}
