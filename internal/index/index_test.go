package index

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/dbdc-go/dbdc/internal/geom"
)

func randomPoints(rng *rand.Rand, n, dim int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for j := range p {
			p[j] = rng.NormFloat64() * 5
		}
		pts[i] = p
	}
	return pts
}

func sortedInts(s []int) []int {
	out := append([]int(nil), s...)
	sort.Ints(out)
	return out
}

func TestBuildAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 50, 2)
	for _, kind := range Kinds() {
		idx, err := Build(kind, pts, geom.Euclidean{}, 1.0)
		if err != nil {
			t.Fatalf("Build(%s) failed: %v", kind, err)
		}
		if idx.Len() != 50 {
			t.Errorf("%s: Len = %d, want 50", kind, idx.Len())
		}
		if !idx.Point(7).Equal(pts[7]) {
			t.Errorf("%s: Point(7) mismatch", kind)
		}
	}
}

func TestBuildUnknownKind(t *testing.T) {
	if _, err := Build(Kind("bogus"), nil, nil, 1); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestRStarRejectsNonEuclidean(t *testing.T) {
	if _, err := Build(KindRStar, nil, geom.Manhattan{}, 1); err == nil {
		t.Fatal("R*-tree must reject non-Euclidean metrics")
	}
}

// Property: every index kind returns exactly the same ε-neighborhoods as the
// exhaustive linear scan, across random point sets, radii and query points.
func TestRangeAgreesWithLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, kind := range Kinds() {
		for trial := 0; trial < 6; trial++ {
			n := 1 + rng.Intn(400)
			dim := 1 + rng.Intn(3)
			pts := randomPoints(rng, n, dim)
			eps := 0.5 + rng.Float64()*4
			oracle := NewLinear(pts, geom.Euclidean{})
			idx, err := Build(kind, pts, geom.Euclidean{}, eps)
			if err != nil {
				t.Fatalf("Build(%s): %v", kind, err)
			}
			for q := 0; q < 25; q++ {
				var query geom.Point
				if q%2 == 0 {
					query = pts[rng.Intn(n)] // on-point queries
				} else {
					query = randomPoints(rng, 1, dim)[0]
				}
				want := sortedInts(oracle.Range(query, eps))
				got := sortedInts(idx.Range(query, eps))
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: Range mismatch (n=%d dim=%d eps=%v): got %v want %v",
						kind, n, dim, eps, got, want)
				}
			}
		}
	}
}

// Property: Range with a larger radius than the grid cell hint stays exact.
func TestGridRangeLargerThanCell(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomPoints(rng, 300, 2)
	g, err := NewGrid(pts, geom.Euclidean{}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewLinear(pts, geom.Euclidean{})
	for trial := 0; trial < 20; trial++ {
		q := pts[rng.Intn(len(pts))]
		eps := 2.0 + rng.Float64()*3
		if got, want := sortedInts(g.Range(q, eps)), sortedInts(oracle.Range(q, eps)); !reflect.DeepEqual(got, want) {
			t.Fatalf("grid Range(eps=%v) mismatch", eps)
		}
	}
}

// Property: index kinds agree with linear also under Manhattan and Chebyshev
// metrics (metric-capable kinds only).
func TestRangeNonEuclideanMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	metrics := []geom.Metric{geom.Manhattan{}, geom.Chebyshev{}}
	kinds := []Kind{KindLinear, KindGrid, KindKDTree, KindMTree}
	for _, m := range metrics {
		for _, kind := range kinds {
			pts := randomPoints(rng, 200, 2)
			oracle := NewLinear(pts, m)
			idx, err := Build(kind, pts, m, 1.0)
			if err != nil {
				t.Fatalf("Build(%s, %s): %v", kind, m.Name(), err)
			}
			for q := 0; q < 20; q++ {
				query := pts[rng.Intn(len(pts))]
				want := sortedInts(oracle.Range(query, 1.0))
				got := sortedInts(idx.Range(query, 1.0))
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s/%s: Range mismatch", kind, m.Name())
				}
			}
		}
	}
}

func TestEmptyIndexes(t *testing.T) {
	for _, kind := range Kinds() {
		idx, err := Build(kind, nil, geom.Euclidean{}, 1)
		if err != nil {
			t.Fatalf("Build(%s) on empty: %v", kind, err)
		}
		if idx.Len() != 0 {
			t.Errorf("%s: Len = %d", kind, idx.Len())
		}
		if got := idx.Range(geom.Point{0, 0}, 1); len(got) != 0 {
			t.Errorf("%s: Range on empty = %v", kind, got)
		}
	}
}

func TestSinglePointIndexes(t *testing.T) {
	pts := []geom.Point{{1, 2}}
	for _, kind := range Kinds() {
		idx, err := Build(kind, pts, geom.Euclidean{}, 1)
		if err != nil {
			t.Fatalf("Build(%s): %v", kind, err)
		}
		if got := idx.Range(geom.Point{1, 2}, 0); !reflect.DeepEqual(got, []int{0}) {
			t.Errorf("%s: self query = %v, want [0]", kind, got)
		}
		if got := idx.Range(geom.Point{5, 5}, 1); len(got) != 0 {
			t.Errorf("%s: distant query = %v, want empty", kind, got)
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := []geom.Point{{0, 0}, {0, 0}, {0, 0}, {1, 1}}
	for _, kind := range Kinds() {
		idx, err := Build(kind, pts, geom.Euclidean{}, 0.5)
		if err != nil {
			t.Fatalf("Build(%s): %v", kind, err)
		}
		got := sortedInts(idx.Range(geom.Point{0, 0}, 0.1))
		if !reflect.DeepEqual(got, []int{0, 1, 2}) {
			t.Errorf("%s: duplicates = %v, want [0 1 2]", kind, got)
		}
	}
}

// Property: KNN results from kd-tree and linear agree on distance multisets.
func TestKNNAgreesWithLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	e := geom.Euclidean{}
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(300)
		pts := randomPoints(rng, n, 2)
		oracle := NewLinear(pts, e)
		kd, err := NewKDTree(pts, e)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 10; q++ {
			query := randomPoints(rng, 1, 2)[0]
			k := 1 + rng.Intn(n)
			want := oracle.KNN(query, k)
			got := kd.KNN(query, k)
			if len(got) != len(want) {
				t.Fatalf("KNN lengths differ: %d vs %d", len(got), len(want))
			}
			for i := range got {
				dw := e.Distance(query, pts[want[i]])
				dg := e.Distance(query, pts[got[i]])
				if dw != dg {
					t.Fatalf("KNN distance %d differs: %v vs %v", i, dg, dw)
				}
			}
			// Ascending order.
			for i := 1; i < len(got); i++ {
				if e.Distance(query, pts[got[i-1]]) > e.Distance(query, pts[got[i]]) {
					t.Fatal("kd-tree KNN not in ascending distance order")
				}
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	pts := randomPoints(rand.New(rand.NewSource(3)), 10, 2)
	kd, _ := NewKDTree(pts, nil)
	lin := NewLinear(pts, nil)
	for _, idx := range []KNNIndex{kd, lin} {
		if got := idx.KNN(geom.Point{0, 0}, 0); got != nil {
			t.Errorf("KNN(k=0) = %v, want nil", got)
		}
		if got := idx.KNN(geom.Point{0, 0}, 100); len(got) != 10 {
			t.Errorf("KNN(k>n) returned %d, want 10", len(got))
		}
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid(nil, nil, 0); err == nil {
		t.Error("cell size 0 must be rejected")
	}
	if _, err := NewGrid(nil, nil, -1); err == nil {
		t.Error("negative cell size must be rejected")
	}
	if _, err := NewGrid([]geom.Point{{1}, {1, 2}}, nil, 1); err == nil {
		t.Error("mixed dimensionality must be rejected")
	}
	if _, err := NewKDTree([]geom.Point{{1}, {1, 2}}, nil); err == nil {
		t.Error("kdtree: mixed dimensionality must be rejected")
	}
}

func TestGridCellCount(t *testing.T) {
	pts := []geom.Point{{0, 0}, {0.1, 0.1}, {10, 10}}
	g, err := NewGrid(pts, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.CellCount(); got != 2 {
		t.Errorf("CellCount = %d, want 2", got)
	}
}

// Grid must behave correctly with negative coordinates (cell hashing uses
// floor, not truncation).
func TestGridNegativeCoordinates(t *testing.T) {
	pts := []geom.Point{{-0.5, -0.5}, {0.5, 0.5}, {-1.4, -1.4}}
	g, err := NewGrid(pts, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := sortedInts(g.Range(geom.Point{-0.5, -0.5}, 1.5))
	want := sortedInts(NewLinear(pts, nil).Range(geom.Point{-0.5, -0.5}, 1.5))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("grid with negative coords: got %v want %v", got, want)
	}
}

func BenchmarkRange(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 20000, 2)
	queries := randomPoints(rng, 256, 2)
	for _, kind := range Kinds() {
		idx, err := Build(kind, pts, geom.Euclidean{}, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(string(kind), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = idx.Range(queries[i%len(queries)], 0.5)
			}
		})
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 10000, 2)
	for _, kind := range Kinds() {
		b.Run(string(kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Build(kind, pts, geom.Euclidean{}, 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
