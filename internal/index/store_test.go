package index

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index/mtree"
	"github.com/dbdc-go/dbdc/internal/index/rstar"
)

// testStore builds a store of n random 2-d points.
func testStore(n int, seed int64) *geom.Store {
	rng := rand.New(rand.NewSource(seed))
	st := geom.NewStore(2, n)
	for i := 0; i < n; i++ {
		st.AppendCoords(rng.Float64()*40, rng.Float64()*40)
	}
	return st
}

func sortedRange(idx Index, q geom.Point, eps float64) []int {
	ids := append([]int(nil), idx.Range(q, eps)...)
	sort.Ints(ids)
	return ids
}

// TestBuildStoreAllKinds: every kind accepts a flat store, exposes it
// through StoreOf (same store, not a copy), and answers range queries
// identically to its slice-built twin.
func TestBuildStoreAllKinds(t *testing.T) {
	st := testStore(400, 8)
	pts := st.Views()
	const eps = 2.5
	for _, kind := range Kinds() {
		sliceIdx, err := Build(kind, pts, geom.Euclidean{}, eps)
		if err != nil {
			t.Fatalf("%s: Build: %v", kind, err)
		}
		storeIdx, err := BuildStore(kind, st, geom.Euclidean{}, eps)
		if err != nil {
			t.Fatalf("%s: BuildStore: %v", kind, err)
		}
		if got := StoreOf(storeIdx); got != st {
			t.Errorf("%s: StoreOf = %p, want the build store %p", kind, got, st)
		}
		if storeIdx.Len() != st.Len() {
			t.Fatalf("%s: store index holds %d points, store %d", kind, storeIdx.Len(), st.Len())
		}
		for i := 0; i < st.Len(); i += 37 {
			q := st.Point(i)
			got, want := sortedRange(storeIdx, q, eps), sortedRange(sliceIdx, q, eps)
			if len(got) != len(want) {
				t.Fatalf("%s: range sizes differ at %d: %d vs %d", kind, i, len(got), len(want))
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("%s: range results differ at query %d", kind, i)
				}
			}
			// The by-id path answers the same query.
			byID := RangeIntoID(storeIdx, i, eps, nil)
			sort.Ints(byID)
			if len(byID) != len(want) {
				t.Fatalf("%s: RangeIntoID size differs at %d: %d vs %d", kind, i, len(byID), len(want))
			}
			for k := range byID {
				if byID[k] != want[k] {
					t.Fatalf("%s: RangeIntoID results differ at query %d", kind, i)
				}
			}
		}
	}
}

// TestStoreOfNonEuclidean: the strided kernels are Euclidean-only, so
// StoreOf must refuse to expose a store behind any other metric even when
// the index was built from one.
func TestStoreOfNonEuclidean(t *testing.T) {
	st := testStore(50, 3)
	for _, kind := range []Kind{KindLinear, KindGrid, KindKDTree, KindMTree} {
		idx, err := BuildStore(kind, st, geom.Manhattan{}, 2)
		if err != nil {
			t.Fatalf("%s: BuildStore(manhattan): %v", kind, err)
		}
		if StoreOf(idx) != nil {
			t.Errorf("%s: StoreOf exposed a store under a non-Euclidean metric", kind)
		}
	}
}

// TestStoreDemotionOnInsert: dynamic insertion outgrows the flat store, so
// the index must stop advertising it (a stale store would serve wrong row
// ids) while queries stay correct and cover the inserted point.
func TestStoreDemotionOnInsert(t *testing.T) {
	st := testStore(100, 4)

	rt, err := rstar.NewBulkStore(st, rstar.DefaultMaxEntries)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Store() == nil {
		t.Fatal("rstar: bulk store load lost its store")
	}
	if err := rt.Insert(geom.Point{100, 100}); err != nil {
		t.Fatal(err)
	}
	if rt.Store() != nil {
		t.Error("rstar: store survived a dynamic insert")
	}
	if ids := rt.Range(geom.Point{100, 100}, 0.5); len(ids) != 1 || ids[0] != 100 {
		t.Errorf("rstar: inserted point not found: %v", ids)
	}

	mt, err := mtree.NewFromStore(st, geom.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	if mt.Store() == nil {
		t.Fatal("mtree: store load lost its store")
	}
	if err := mt.Insert(geom.Point{100, 100}); err != nil {
		t.Fatal(err)
	}
	if mt.Store() != nil {
		t.Error("mtree: store survived a dynamic insert")
	}
	if ids := mt.Range(geom.Point{100, 100}, 0.5); len(ids) != 1 || ids[0] != 100 {
		t.Errorf("mtree: inserted point not found: %v", ids)
	}
}

// TestRangeAppendZeroAlloc is the hot-loop regression gate: once the result
// buffer has grown to its steady-state capacity, a store-backed range query
// must not allocate at all — the property that keeps the DBSCAN expansion
// loop allocation-free per query. Skipped under the race detector, whose
// instrumentation perturbs allocation accounting.
func TestRangeAppendZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	st := testStore(2000, 5)
	const eps = 2.0
	for _, kind := range []Kind{KindLinear, KindGrid, KindKDTree} {
		idx, err := BuildStore(kind, st, geom.Euclidean{}, eps)
		if err != nil {
			t.Fatalf("%s: BuildStore: %v", kind, err)
		}
		buf := make([]int, 0, st.Len()) // steady-state capacity up front
		q := 0
		allocs := testing.AllocsPerRun(100, func() {
			buf = RangeIntoID(idx, q%st.Len(), eps, buf)
			q += 131
		})
		if allocs != 0 {
			t.Errorf("%s: %.1f allocs per store-backed range query, want 0", kind, allocs)
		}
	}
}

// TestRangeBatchZeroAlloc gates the batched candidate-verification path of
// every index kind: collect-then-verify through the fused Store kernels
// must not allocate once the result buffer and the pooled per-query scratch
// (cell walks, candidate collectors) have reached steady state — by-point
// and by-id queries alike. Skipped under the race detector, whose
// instrumentation perturbs allocation accounting.
func TestRangeBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	st := testStore(2000, 5)
	const eps = 2.0
	for _, kind := range Kinds() {
		idx, err := BuildStore(kind, st, geom.Euclidean{}, eps)
		if err != nil {
			t.Fatalf("%s: BuildStore: %v", kind, err)
		}
		buf := make([]int, 0, st.Len()) // steady-state capacity up front
		// One warm-up query primes the pooled scratch before counting.
		buf = RangeInto(idx, st.Point(0), eps, buf)
		q := 0
		allocs := testing.AllocsPerRun(100, func() {
			buf = RangeInto(idx, st.Point(q%st.Len()), eps, buf)
			buf = RangeIntoID(idx, q%st.Len(), eps, buf)
			q += 131
		})
		if allocs != 0 {
			t.Errorf("%s: %.1f allocs per batched range query, want 0", kind, allocs)
		}
	}
}
