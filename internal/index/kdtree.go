package index

import (
	"container/heap"
	"errors"
	"math"
	"sort"

	"github.com/dbdc-go/dbdc/internal/geom"
)

// KDTree is a static k-d tree built by median splits. Pruning uses only
// per-axis coordinate differences, which lower-bound every Minkowski
// distance, so the tree answers exact range and kNN queries for any Lp
// metric.
type KDTree struct {
	pts    []geom.Point
	metric geom.Metric
	dim    int
	nodes  []kdNode
	root   int32
	// sq is the squared-comparison fast path (nil when the metric does not
	// support it); euclid devirtualizes the common Euclidean case.
	sq     geom.SquaredMetric
	euclid bool
	// store is the flat backing store when built via NewKDTreeStore; the
	// Euclidean range search then verifies nodes through the strided Store
	// kernels by node id.
	store *geom.Store
}

type kdNode struct {
	idx         int32 // index into pts
	axis        int8
	left, right int32 // node slots, -1 for none
}

// NewKDTree builds a k-d tree over pts. The slice is retained, not copied.
// A nil metric defaults to Euclidean.
func NewKDTree(pts []geom.Point, metric geom.Metric) (*KDTree, error) {
	if metric == nil {
		metric = geom.Euclidean{}
	}
	t := &KDTree{pts: pts, metric: metric, root: -1}
	t.sq, _ = geom.AsSquared(metric)
	_, t.euclid = metric.(geom.Euclidean)
	if len(pts) == 0 {
		return t, nil
	}
	t.dim = pts[0].Dim()
	order := make([]int32, len(pts))
	for i := range order {
		if pts[i].Dim() != t.dim {
			return nil, errors.New("index: kdtree requires uniform dimensionality")
		}
		order[i] = int32(i)
	}
	t.nodes = make([]kdNode, 0, len(pts))
	t.root = t.build(order, 0)
	return t, nil
}

// build recursively partitions order around the median along the split axis
// and returns the slot of the created node.
func (t *KDTree) build(order []int32, depth int) int32 {
	if len(order) == 0 {
		return -1
	}
	axis := depth % t.dim
	sort.Slice(order, func(i, j int) bool {
		return t.pts[order[i]][axis] < t.pts[order[j]][axis]
	})
	mid := len(order) / 2
	slot := int32(len(t.nodes))
	t.nodes = append(t.nodes, kdNode{idx: order[mid], axis: int8(axis)})
	left := t.build(order[:mid], depth+1)
	right := t.build(order[mid+1:], depth+1)
	t.nodes[slot].left = left
	t.nodes[slot].right = right
	return slot
}

// NewKDTreeStore builds a k-d tree over the points of a flat store. The
// store is retained — Point(i) serves zero-copy views and the Euclidean
// range search verifies candidates through the strided Store kernels.
func NewKDTreeStore(st *geom.Store, metric geom.Metric) (*KDTree, error) {
	t, err := NewKDTree(st.Views(), metric)
	if err != nil {
		return nil, err
	}
	t.store = st
	return t, nil
}

// Store implements StoreBacked. Nil when the index was built from a slice.
func (t *KDTree) Store() *geom.Store { return t.store }

// Len implements Index.
func (t *KDTree) Len() int { return len(t.pts) }

// Point implements Index.
func (t *KDTree) Point(i int) geom.Point { return t.pts[i] }

// Metric implements Index.
func (t *KDTree) Metric() geom.Metric { return t.metric }

// Range implements Index.
func (t *KDTree) Range(q geom.Point, eps float64) []int {
	return t.RangeAppend(q, eps, nil)
}

// RangeAppend implements RangeAppender. Point verification runs in squared
// space when the metric supports it; the per-axis subtree pruning is
// unchanged (coordinate gaps lower-bound every Lp distance either way).
func (t *KDTree) RangeAppend(q geom.Point, eps float64, buf []int) []int {
	out := buf[:0]
	switch {
	case t.euclid && t.store != nil:
		t.rangeSearchEuclidStore(t.root, q, eps, eps*eps, &out)
	case t.euclid:
		t.rangeSearchEuclid(t.root, q, eps, eps*eps, &out)
	case t.sq != nil:
		t.rangeSearchSq(t.root, q, eps, eps*eps, &out)
	default:
		t.rangeSearch(t.root, q, eps, &out)
	}
	return out
}

func (t *KDTree) rangeSearch(slot int32, q geom.Point, eps float64, out *[]int) {
	if slot < 0 {
		return
	}
	n := &t.nodes[slot]
	p := t.pts[n.idx]
	if t.metric.Distance(q, p) <= eps {
		*out = append(*out, int(n.idx))
	}
	diff := q[n.axis] - p[n.axis]
	if diff <= eps {
		t.rangeSearch(n.left, q, eps, out)
	}
	if -diff <= eps {
		t.rangeSearch(n.right, q, eps, out)
	}
}

// rangeSearchEuclid is rangeSearch with the Euclidean DistanceSq kernel
// inlined (concrete receiver, sqrt-free, no interface dispatch).
func (t *KDTree) rangeSearchEuclid(slot int32, q geom.Point, eps, eps2 float64, out *[]int) {
	if slot < 0 {
		return
	}
	n := &t.nodes[slot]
	p := t.pts[n.idx]
	if (geom.Euclidean{}).DistanceSq(q, p) <= eps2 {
		*out = append(*out, int(n.idx))
	}
	diff := q[n.axis] - p[n.axis]
	if diff <= eps {
		t.rangeSearchEuclid(n.left, q, eps, eps2, out)
	}
	if -diff <= eps {
		t.rangeSearchEuclid(n.right, q, eps, eps2, out)
	}
}

// rangeSearchEuclidStore is rangeSearchEuclid with node verification routed
// through the strided Store kernel by node id — bit-identical comparisons
// (same operand and summation order), contiguous-row memory access.
func (t *KDTree) rangeSearchEuclidStore(slot int32, q geom.Point, eps, eps2 float64, out *[]int) {
	if slot < 0 {
		return
	}
	n := &t.nodes[slot]
	if t.store.DistanceSqTo(int(n.idx), q) <= eps2 {
		*out = append(*out, int(n.idx))
	}
	diff := q[n.axis] - t.pts[n.idx][n.axis]
	if diff <= eps {
		t.rangeSearchEuclidStore(n.left, q, eps, eps2, out)
	}
	if -diff <= eps {
		t.rangeSearchEuclidStore(n.right, q, eps, eps2, out)
	}
}

// rangeSearchSq is rangeSearch for any other SquaredMetric.
func (t *KDTree) rangeSearchSq(slot int32, q geom.Point, eps, eps2 float64, out *[]int) {
	if slot < 0 {
		return
	}
	n := &t.nodes[slot]
	p := t.pts[n.idx]
	if t.sq.DistanceSq(q, p) <= eps2 {
		*out = append(*out, int(n.idx))
	}
	diff := q[n.axis] - p[n.axis]
	if diff <= eps {
		t.rangeSearchSq(n.left, q, eps, eps2, out)
	}
	if -diff <= eps {
		t.rangeSearchSq(n.right, q, eps, eps2, out)
	}
}

// knnCand is a max-heap entry so the current worst candidate sits on top.
type knnCand struct {
	idx  int32
	dist float64
}

type knnHeap []knnCand

func (h knnHeap) Len() int            { return len(h) }
func (h knnHeap) Less(i, j int) bool  { return h[i].dist > h[j].dist }
func (h knnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *knnHeap) Push(x interface{}) { *h = append(*h, x.(knnCand)) }
func (h *knnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// KNN implements KNNIndex.
func (t *KDTree) KNN(q geom.Point, k int) []int {
	if k <= 0 || len(t.pts) == 0 {
		return nil
	}
	h := make(knnHeap, 0, k+1)
	t.knnSearch(t.root, q, k, &h)
	out := make([]int, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = int(heap.Pop(&h).(knnCand).idx)
	}
	return out
}

func (t *KDTree) knnSearch(slot int32, q geom.Point, k int, h *knnHeap) {
	if slot < 0 {
		return
	}
	n := &t.nodes[slot]
	p := t.pts[n.idx]
	d := t.metric.Distance(q, p)
	if h.Len() < k {
		heap.Push(h, knnCand{n.idx, d})
	} else if top := (*h)[0]; d < top.dist || (d == top.dist && n.idx < top.idx) {
		(*h)[0] = knnCand{n.idx, d}
		heap.Fix(h, 0)
	}
	diff := q[n.axis] - p[n.axis]
	near, far := n.left, n.right
	if diff > 0 {
		near, far = far, near
	}
	t.knnSearch(near, q, k, h)
	// The far subtree can only matter if the axis gap does not already
	// exceed the current worst candidate distance.
	if h.Len() < k || math.Abs(diff) <= (*h)[0].dist {
		t.knnSearch(far, q, k, h)
	}
}
