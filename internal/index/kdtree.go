package index

import (
	"container/heap"
	"errors"
	"math"

	"github.com/dbdc-go/dbdc/internal/geom"
)

// kdLeafSize is the bucket capacity of the leaf nodes. Bucketed leaves trade
// tree depth for short linear scans: the traversal touches ~n/kdLeafSize
// internal nodes instead of n point-bearing ones, and every leaf hands the
// batched distance kernel a contiguous run of candidates. 16 keeps a 2-d
// leaf (16 rows × 16 B) inside two cache lines of ids.
const kdLeafSize = 16

// KDTree is a static bucketed k-d tree built by median splits (quickselect,
// not a full sort — O(n) per level). Internal nodes carry only the split
// plane; all points live in leaf buckets, stored as contiguous ranges of one
// build permutation. Pruning uses only per-axis coordinate differences,
// which lower-bound every Minkowski distance, so the tree answers exact
// range and kNN queries for any Lp metric.
type KDTree struct {
	pts    []geom.Point
	metric geom.Metric
	dim    int
	nodes  []kdNode
	// order is the build permutation; leaf node i owns order[left:right).
	// Kept as []int so a leaf bucket slices directly into the batched
	// verification call — no per-query id copying.
	order []int
	// bounds holds the tight per-node bounding box of every slot,
	// 2*dim floats per node (lo/hi interleaved per axis): leaves scan their
	// bucket, internal nodes take the union of their children. The store
	// traversal prunes on these boxes — strictly tighter than the split-plane
	// path gaps, since a node's box is contained in its descent region.
	bounds []float64
	root   int32
	// sq is the squared-comparison fast path (nil when the metric does not
	// support it); euclid devirtualizes the common Euclidean case.
	sq     geom.SquaredMetric
	euclid bool
	// store is the flat backing store when built via NewKDTreeStore; the
	// Euclidean range search then collects candidate ids from the visited
	// leaves and verifies them through the batched Store kernel.
	store *geom.Store
}

// kdNode is either an internal split (axis >= 0: split plane, left/right are
// child slots) or a leaf bucket (axis < 0: left/right bound the owned range
// of the order permutation).
type kdNode struct {
	split       float64
	left, right int32
	axis        int8
}

// NewKDTree builds a k-d tree over pts. The slice is retained, not copied.
// A nil metric defaults to Euclidean.
func NewKDTree(pts []geom.Point, metric geom.Metric) (*KDTree, error) {
	if metric == nil {
		metric = geom.Euclidean{}
	}
	t := &KDTree{pts: pts, metric: metric, root: -1}
	t.sq, _ = geom.AsSquared(metric)
	_, t.euclid = metric.(geom.Euclidean)
	if len(pts) == 0 {
		return t, nil
	}
	t.dim = pts[0].Dim()
	t.order = make([]int, len(pts))
	for i := range t.order {
		if pts[i].Dim() != t.dim {
			return nil, errors.New("index: kdtree requires uniform dimensionality")
		}
		t.order[i] = i
	}
	t.nodes = make([]kdNode, 0, 2*(len(pts)/kdLeafSize)+2)
	t.root = t.build(0, len(pts), 0)
	t.computeBounds()
	return t, nil
}

// computeBounds fills the per-node bounding boxes in one reverse pass over
// the slot array: build appends parents before children, so every child slot
// is numbered after its parent and a descending sweep sees children first.
// NaN coordinates never enter a box (they fail both min/max comparisons);
// that can only make pruning drop rows with NaN coordinates, which fail
// every distance threshold anyway.
func (t *KDTree) computeBounds() {
	t.bounds = make([]float64, 2*t.dim*len(t.nodes))
	for slot := len(t.nodes) - 1; slot >= 0; slot-- {
		n := &t.nodes[slot]
		b := t.bounds[slot*2*t.dim : (slot+1)*2*t.dim]
		for d := 0; d < t.dim; d++ {
			b[2*d] = math.Inf(1)
			b[2*d+1] = math.Inf(-1)
		}
		if n.axis < 0 {
			for _, id := range t.order[n.left:n.right] {
				p := t.pts[id]
				for d := 0; d < t.dim; d++ {
					if p[d] < b[2*d] {
						b[2*d] = p[d]
					}
					if p[d] > b[2*d+1] {
						b[2*d+1] = p[d]
					}
				}
			}
			continue
		}
		for _, c := range [2]int32{n.left, n.right} {
			cb := t.bounds[int(c)*2*t.dim:]
			for d := 0; d < t.dim; d++ {
				if cb[2*d] < b[2*d] {
					b[2*d] = cb[2*d]
				}
				if cb[2*d+1] > b[2*d+1] {
					b[2*d+1] = cb[2*d+1]
				}
			}
		}
	}
}

// build partitions order[lo:hi) around its median on the depth axis via
// quickselect and returns the slot of the created node. Ranges at or below
// the bucket size become leaves. The left child owns values <= split, the
// right child (which keeps the median element) values >= split, so the
// per-axis pruning tests are boundary-exact.
func (t *KDTree) build(lo, hi, depth int) int32 {
	if hi-lo <= kdLeafSize {
		slot := int32(len(t.nodes))
		t.nodes = append(t.nodes, kdNode{axis: -1, left: int32(lo), right: int32(hi)})
		return slot
	}
	axis := depth % t.dim
	mid := lo + (hi-lo)/2
	kdSelect(t.pts, t.order[lo:hi], mid-lo, axis)
	slot := int32(len(t.nodes))
	t.nodes = append(t.nodes, kdNode{split: t.pts[t.order[mid]][axis], axis: int8(axis)})
	left := t.build(lo, mid, depth+1)
	right := t.build(mid, hi, depth+1)
	t.nodes[slot].left = left
	t.nodes[slot].right = right
	return slot
}

// kdSelect is an iterative Hoare quickselect with median-of-three pivoting:
// it permutes ord so ord[n] holds the n-th order statistic of the axis
// coordinate, everything before it is <= and everything after is >=. One
// selection is O(len(ord)) expected — the whole tree build O(n log n) with
// direct float comparisons, no sort.Slice closure dispatch.
func kdSelect(pts []geom.Point, ord []int, n, axis int) {
	lo, hi := 0, len(ord)-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pts[ord[mid]][axis] < pts[ord[lo]][axis] {
			ord[mid], ord[lo] = ord[lo], ord[mid]
		}
		if pts[ord[hi]][axis] < pts[ord[lo]][axis] {
			ord[hi], ord[lo] = ord[lo], ord[hi]
		}
		if pts[ord[hi]][axis] < pts[ord[mid]][axis] {
			ord[hi], ord[mid] = ord[mid], ord[hi]
		}
		pivot := pts[ord[mid]][axis]
		i, j := lo, hi
		for i <= j {
			for pts[ord[i]][axis] < pivot {
				i++
			}
			for pts[ord[j]][axis] > pivot {
				j--
			}
			if i <= j {
				ord[i], ord[j] = ord[j], ord[i]
				i++
				j--
			}
		}
		switch {
		case n <= j:
			hi = j
		case n >= i:
			lo = i
		default:
			return
		}
	}
}

// NewKDTreeStore builds a k-d tree over the points of a flat store. The
// store is retained — Point(i) serves zero-copy views and the Euclidean
// range search verifies candidates through the batched Store kernels.
func NewKDTreeStore(st *geom.Store, metric geom.Metric) (*KDTree, error) {
	t, err := NewKDTree(st.Views(), metric)
	if err != nil {
		return nil, err
	}
	t.store = st
	return t, nil
}

// Store implements StoreBacked. Nil when the index was built from a slice.
func (t *KDTree) Store() *geom.Store { return t.store }

// Len implements Index.
func (t *KDTree) Len() int { return len(t.pts) }

// Point implements Index.
func (t *KDTree) Point(i int) geom.Point { return t.pts[i] }

// Metric implements Index.
func (t *KDTree) Metric() geom.Metric { return t.metric }

// Range implements Index.
func (t *KDTree) Range(q geom.Point, eps float64) []int {
	return t.RangeAppend(q, eps, nil)
}

// RangeAppendID implements IDRangeAppender: the query point is addressed by
// object id, sparing the caller an interface Point round-trip per query.
func (t *KDTree) RangeAppendID(i int, eps float64, buf []int) []int {
	return t.RangeAppend(t.pts[i], eps, buf)
}

// RangeAppend implements RangeAppender. Point verification runs in squared
// space when the metric supports it; the per-axis subtree pruning is
// unchanged (coordinate gaps lower-bound every Lp distance either way).
func (t *KDTree) RangeAppend(q geom.Point, eps float64, buf []int) []int {
	out := buf[:0]
	if t.root < 0 {
		return out
	}
	switch {
	case t.euclid && t.store != nil:
		out = t.rangeSearchEuclidStore(q, eps, eps*eps, out)
	case t.euclid && t.dim == 2:
		t.rangeEuclid2(t.root, q[0], q[1], eps, eps*eps, 0, 0, &out)
	case t.euclid:
		t.rangeSearchEuclid(t.root, q, eps, eps*eps, &out)
	case t.sq != nil:
		t.rangeSearchSq(t.root, q, eps, eps*eps, &out)
	default:
		t.rangeSearch(t.root, q, eps, &out)
	}
	return out
}

func (t *KDTree) rangeSearch(slot int32, q geom.Point, eps float64, out *[]int) {
	n := &t.nodes[slot]
	if n.axis < 0 {
		for _, id := range t.order[n.left:n.right] {
			if t.metric.Distance(q, t.pts[id]) <= eps {
				*out = append(*out, id)
			}
		}
		return
	}
	diff := q[n.axis] - n.split
	if diff <= eps {
		t.rangeSearch(n.left, q, eps, out)
	}
	if -diff <= eps {
		t.rangeSearch(n.right, q, eps, out)
	}
}

// rangeSearchEuclid is rangeSearch with the Euclidean DistanceSq kernel
// inlined (concrete receiver, sqrt-free, no interface dispatch). Leaf
// buckets are gated on their bounding box exactly like the store descent
// (see rangeSearchEuclidStore): the slice kernel shares the store kernel's
// summation shape, so the squared-gap sum is the same provable FP lower
// bound and gated leaves contain no passing rows.
func (t *KDTree) rangeSearchEuclid(slot int32, q geom.Point, eps, eps2 float64, out *[]int) {
	n := &t.nodes[slot]
	if n.axis < 0 {
		b := t.bounds[int(slot)*2*t.dim:]
		sum := 0.0
		for d := 0; d < t.dim; d++ {
			g := boxGap(q[d], b[2*d], b[2*d+1])
			if g > eps {
				return
			}
			sum += g * g
		}
		if sum > eps2 {
			return
		}
		for _, id := range t.order[n.left:n.right] {
			if (geom.Euclidean{}).DistanceSq(q, t.pts[id]) <= eps2 {
				*out = append(*out, id)
			}
		}
		return
	}
	diff := q[n.axis] - n.split
	if diff <= eps {
		t.rangeSearchEuclid(n.left, q, eps, eps2, out)
	}
	if -diff <= eps {
		t.rangeSearchEuclid(n.right, q, eps, eps2, out)
	}
}

// rangeSearchEuclidStore is the batched store traversal: a descent that
// hands every surviving leaf bucket — a ready-made slice of the build
// permutation, no id copying — to the fused Store kernel for verification.
// Subtrees are pruned on the split-plane distance during the descent, and
// every leaf that survives is gated on its tight bounding box: the per-axis
// gap from q to the box and the ascending-axis sum of the squared gaps —
// the exact operation chain of the distance kernel, over per-axis gaps that
// by FP-monotone subtraction never exceed any boxed row's — so a gated leaf
// provably contains no row the kernel would accept, and the surviving
// leaves' left-to-right verification order is untouched: the output is
// identical to the ungated walk.
func (t *KDTree) rangeSearchEuclidStore(q geom.Point, eps, eps2 float64, out []int) []int {
	if t.dim == 2 {
		// The 2-d descent keeps the whole bound state in registers — the
		// dominant paper-data shape.
		return t.rangeStore2(t.root, q[0], q[1], eps, eps2, 0, 0, out)
	}
	return t.rangeStore(t.root, q, eps, eps2, out)
}

// boxGap is the per-axis separation from coordinate q to the interval
// [lo, hi] — zero inside. For every p in the interval, |fl(q−p)| ≥ the
// returned gap (the FP subtraction is monotone in p), so squared-gap sums
// in kernel order lower-bound every boxed row's computed squared distance.
// A NaN q yields gap 0 on the axis: no pruning, verdicts fall through to
// the kernels.
func boxGap(q, lo, hi float64) float64 {
	switch {
	case q < lo:
		return lo - q
	case q > hi:
		return q - hi
	}
	return 0
}

// rangeStore2 is rangeStore specialised to two dimensions: the per-axis
// path gaps travel as scalar arguments (g0, g1 — the separation accumulated
// from split crossings on the descent, which by region nesting never
// exceeds any subtree point's), the far side of a crossed split is skipped
// when the kernel-order gap sum fl(g0²+g1²) exceeds eps², and every leaf
// that survives is gated on its tight box. Both bounds run the exact
// operation chain of the 2-d kernel, so the pruning argument of rangeStore
// carries over verbatim.
func (t *KDTree) rangeStore2(slot int32, q0, q1, eps, eps2, g0, g1 float64, out []int) []int {
	n := &t.nodes[slot]
	if n.axis < 0 {
		b := t.bounds[slot*4 : slot*4+4]
		bg0 := boxGap(q0, b[0], b[1])
		bg1 := boxGap(q1, b[2], b[3])
		if bg0 > eps || bg1 > eps || bg0*bg0+bg1*bg1 > eps2 {
			return out
		}
		return t.store.VerifyRangeSq2(q0, q1, t.order[n.left:n.right], eps2, out)
	}
	var diff float64
	if n.axis == 0 {
		diff = q0 - n.split
	} else {
		diff = q1 - n.split
	}
	if diff <= eps {
		if diff <= 0 {
			out = t.rangeStore2(n.left, q0, q1, eps, eps2, g0, g1, out)
		} else if n.axis == 0 {
			if diff*diff+g1*g1 <= eps2 {
				out = t.rangeStore2(n.left, q0, q1, eps, eps2, diff, g1, out)
			}
		} else if g0*g0+diff*diff <= eps2 {
			out = t.rangeStore2(n.left, q0, q1, eps, eps2, g0, diff, out)
		}
	}
	if -diff <= eps {
		if diff >= 0 {
			out = t.rangeStore2(n.right, q0, q1, eps, eps2, g0, g1, out)
		} else if n.axis == 0 {
			if diff*diff+g1*g1 <= eps2 {
				out = t.rangeStore2(n.right, q0, q1, eps, eps2, -diff, g1, out)
			}
		} else if g0*g0+diff*diff <= eps2 {
			out = t.rangeStore2(n.right, q0, q1, eps, eps2, g0, -diff, out)
		}
	}
	return out
}

// rangeEuclid2 is the slice-path twin of rangeStore2: the same
// gap-threaded 2-d descent and leaf bounding-box gate, with the verification
// loop inlined over the point slices instead of the fused store kernel. The
// inline `d0*d0 + d1*d1` is the 2-d Euclidean DistanceSq summation exactly
// (ascending axes, no reassociation), so slice- and store-built trees with
// the same leaf layout return identical ids in identical order.
func (t *KDTree) rangeEuclid2(slot int32, q0, q1, eps, eps2, g0, g1 float64, out *[]int) {
	n := &t.nodes[slot]
	if n.axis < 0 {
		b := t.bounds[slot*4 : slot*4+4]
		bg0 := boxGap(q0, b[0], b[1])
		bg1 := boxGap(q1, b[2], b[3])
		if bg0 > eps || bg1 > eps || bg0*bg0+bg1*bg1 > eps2 {
			return
		}
		for _, id := range t.order[n.left:n.right] {
			p := t.pts[id]
			d0 := q0 - p[0]
			d1 := q1 - p[1]
			if d0*d0+d1*d1 <= eps2 {
				*out = append(*out, id)
			}
		}
		return
	}
	var diff float64
	if n.axis == 0 {
		diff = q0 - n.split
	} else {
		diff = q1 - n.split
	}
	if diff <= eps {
		if diff <= 0 {
			t.rangeEuclid2(n.left, q0, q1, eps, eps2, g0, g1, out)
		} else if n.axis == 0 {
			if diff*diff+g1*g1 <= eps2 {
				t.rangeEuclid2(n.left, q0, q1, eps, eps2, diff, g1, out)
			}
		} else if g0*g0+diff*diff <= eps2 {
			t.rangeEuclid2(n.left, q0, q1, eps, eps2, g0, diff, out)
		}
	}
	if -diff <= eps {
		if diff >= 0 {
			t.rangeEuclid2(n.right, q0, q1, eps, eps2, g0, g1, out)
		} else if n.axis == 0 {
			if diff*diff+g1*g1 <= eps2 {
				t.rangeEuclid2(n.right, q0, q1, eps, eps2, -diff, g1, out)
			}
		} else if g0*g0+diff*diff <= eps2 {
			t.rangeEuclid2(n.right, q0, q1, eps, eps2, g0, -diff, out)
		}
	}
}

func (t *KDTree) rangeStore(slot int32, q geom.Point, eps, eps2 float64, out []int) []int {
	n := &t.nodes[slot]
	if n.axis < 0 {
		b := t.bounds[int(slot)*2*t.dim:]
		// Squared gaps accumulate in ascending axis order — the distance
		// kernels' exact summation shape, so the bound is a true FP lower
		// bound on every boxed row's computed squared distance.
		var sum float64
		for d := 0; d < t.dim; d++ {
			g := boxGap(q[d], b[2*d], b[2*d+1])
			if g > eps {
				return out
			}
			sum += g * g
		}
		if sum > eps2 {
			return out
		}
		return t.store.VerifyRangeSq(q, t.order[n.left:n.right], eps2, out)
	}
	diff := q[n.axis] - n.split
	if diff <= eps {
		out = t.rangeStore(n.left, q, eps, eps2, out)
	}
	if -diff <= eps {
		out = t.rangeStore(n.right, q, eps, eps2, out)
	}
	return out
}

// rangeSearchSq is rangeSearch for any other SquaredMetric.
func (t *KDTree) rangeSearchSq(slot int32, q geom.Point, eps, eps2 float64, out *[]int) {
	n := &t.nodes[slot]
	if n.axis < 0 {
		for _, id := range t.order[n.left:n.right] {
			if t.sq.DistanceSq(q, t.pts[id]) <= eps2 {
				*out = append(*out, id)
			}
		}
		return
	}
	diff := q[n.axis] - n.split
	if diff <= eps {
		t.rangeSearchSq(n.left, q, eps, eps2, out)
	}
	if -diff <= eps {
		t.rangeSearchSq(n.right, q, eps, eps2, out)
	}
}

// knnCand is a max-heap entry so the current worst candidate sits on top.
type knnCand struct {
	idx  int
	dist float64
}

type knnHeap []knnCand

func (h knnHeap) Len() int            { return len(h) }
func (h knnHeap) Less(i, j int) bool  { return h[i].dist > h[j].dist }
func (h knnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *knnHeap) Push(x interface{}) { *h = append(*h, x.(knnCand)) }
func (h *knnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// KNN implements KNNIndex.
func (t *KDTree) KNN(q geom.Point, k int) []int {
	if k <= 0 || len(t.pts) == 0 {
		return nil
	}
	h := make(knnHeap, 0, k+1)
	t.knnSearch(t.root, q, k, &h)
	out := make([]int, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(knnCand).idx
	}
	return out
}

func (t *KDTree) knnSearch(slot int32, q geom.Point, k int, h *knnHeap) {
	n := &t.nodes[slot]
	if n.axis < 0 {
		for _, id := range t.order[n.left:n.right] {
			d := t.metric.Distance(q, t.pts[id])
			if h.Len() < k {
				heap.Push(h, knnCand{id, d})
			} else if top := (*h)[0]; d < top.dist || (d == top.dist && id < top.idx) {
				(*h)[0] = knnCand{id, d}
				heap.Fix(h, 0)
			}
		}
		return
	}
	diff := q[n.axis] - n.split
	near, far := n.left, n.right
	if diff > 0 {
		near, far = far, near
	}
	t.knnSearch(near, q, k, h)
	// The far subtree can only matter if the axis gap does not already
	// exceed the current worst candidate distance.
	if h.Len() < k || math.Abs(diff) <= (*h)[0].dist {
		t.knnSearch(far, q, k, h)
	}
}
