package mtree

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/dbdc-go/dbdc/internal/geom"
)

func randomPoints(rng *rand.Rand, n, dim int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for j := range p {
			p[j] = rng.NormFloat64() * 5
		}
		pts[i] = p
	}
	return pts
}

// checkInvariants walks the tree verifying that every routing entry's
// covering radius really covers its whole subtree, parent pointers are
// consistent, and every point is reachable exactly once.
func checkInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	if tr.root == nil {
		if tr.size != 0 {
			t.Fatal("nil root with points")
		}
		return
	}
	seen := make(map[int32]bool)
	var maxDistTo func(n *node, pivot geom.Point) float64
	maxDistTo = func(n *node, pivot geom.Point) float64 {
		var max float64
		for _, e := range n.entries {
			if n.leaf {
				if d := tr.metric.Distance(pivot, e.pivot); d > max {
					max = d
				}
				continue
			}
			if d := maxDistTo(e.child, pivot); d > max {
				max = d
			}
		}
		return max
	}
	var walk func(n *node)
	walk = func(n *node) {
		if len(n.entries) > tr.maxEntries {
			t.Fatalf("node overfull: %d entries > %d", len(n.entries), tr.maxEntries)
		}
		for _, e := range n.entries {
			if n.leaf {
				if e.child != nil {
					t.Fatal("leaf entry with child")
				}
				if seen[e.idx] {
					t.Fatalf("point %d reachable twice", e.idx)
				}
				seen[e.idx] = true
				continue
			}
			if e.child == nil {
				t.Fatal("routing entry without child")
			}
			if e.child.parent != n {
				t.Fatal("broken parent pointer")
			}
			if worst := maxDistTo(e.child, e.pivot); worst > e.radius+1e-9 {
				t.Fatalf("covering radius %v too small: subtree point at %v", e.radius, worst)
			}
			walk(e.child)
		}
	}
	walk(tr.root)
	if len(seen) != tr.size {
		t.Fatalf("reachable %d points, size %d", len(seen), tr.size)
	}
}

func TestEmptyTree(t *testing.T) {
	tr, err := New(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatal("empty tree nonzero len")
	}
	if got := tr.Range(geom.Point{0}, 1); got != nil {
		t.Errorf("Range on empty = %v", got)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewWithFanout(nil, nil, 2); err == nil {
		t.Error("fan-out 2 accepted")
	}
	tr, _ := New(nil, nil)
	if err := tr.Insert(geom.Point{math.Inf(1)}); err == nil {
		t.Error("infinite point accepted")
	}
}

func TestInvariantsAcrossGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr, _ := NewWithFanout(nil, geom.Euclidean{}, 6)
	pts := randomPoints(rng, 600, 2)
	for i, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
		if i&(i+1) == 0 || i == len(pts)-1 {
			checkInvariants(t, tr)
		}
	}
}

func TestInvariantsManhattan(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tr, err := New(randomPoints(rng, 400, 3), geom.Manhattan{})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, tr)
}

func TestRangeExactUnderArbitraryMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, m := range []geom.Metric{geom.Euclidean{}, geom.Manhattan{}, geom.Chebyshev{}, geom.Minkowski{P: 3}} {
		pts := randomPoints(rng, 300, 2)
		tr, err := New(pts, m)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			q := pts[rng.Intn(len(pts))]
			eps := rng.Float64() * 4
			var want []int
			for i, p := range pts {
				if m.Distance(q, p) <= eps {
					want = append(want, i)
				}
			}
			got := tr.Range(q, eps)
			sort.Ints(got)
			sort.Ints(want)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: Range mismatch", m.Name())
			}
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := make([]geom.Point, 80)
	for i := range pts {
		pts[i] = geom.Point{2, 2}
	}
	tr, err := New(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, tr)
	if got := tr.Range(geom.Point{2, 2}, 0); len(got) != 80 {
		t.Fatalf("Range over duplicates = %d, want 80", len(got))
	}
}

// The M-tree's whole purpose is pruning: on clustered data a small-radius
// query must evaluate the metric far fewer times than a linear scan would.
func TestPruningEffectiveness(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	// Two well-separated tight clusters.
	var pts []geom.Point
	for i := 0; i < 500; i++ {
		pts = append(pts, geom.Point{rng.NormFloat64() * 0.1, rng.NormFloat64() * 0.1})
	}
	for i := 0; i < 500; i++ {
		pts = append(pts, geom.Point{100 + rng.NormFloat64()*0.1, 100 + rng.NormFloat64()*0.1})
	}
	tr, err := New(pts, geom.Euclidean{})
	if err != nil {
		t.Fatal(err)
	}
	before := tr.DistanceCalls()
	tr.Range(geom.Point{0, 0}, 0.05)
	evals := tr.DistanceCalls() - before
	if evals >= 1000 {
		t.Fatalf("query evaluated %d distances, no better than a scan", evals)
	}
}

// Regression: duplicate-heavy data used to drive the hyperplane split into
// producing an empty node (every entry equidistant from both pivots),
// which later made descend index entries[-1]. The balanced fallback split
// must keep every node non-empty and within the fan-out.
func TestManyDuplicatesDeepTree(t *testing.T) {
	tr, err := NewWithFanout(nil, geom.Euclidean{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := tr.Insert(geom.Point{1, 1}); err != nil {
			t.Fatal(err)
		}
	}
	// A couple of distinct points interleaved for good measure.
	for i := 0; i < 100; i++ {
		if err := tr.Insert(geom.Point{float64(i % 7), 1}); err != nil {
			t.Fatal(err)
		}
	}
	checkInvariants(t, tr)
	if got := len(tr.Range(geom.Point{1, 1}, 0)); got != 500+15 {
		// 500 duplicates plus the i%7==1 points (15 of 100).
		t.Fatalf("Range over duplicates = %d", got)
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, m := range []geom.Metric{geom.Euclidean{}, geom.Manhattan{}} {
		pts := randomPoints(rng, 400, 2)
		tr, err := New(pts, m)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 15; trial++ {
			q := randomPoints(rng, 1, 2)[0]
			k := 1 + rng.Intn(30)
			got := tr.KNN(q, k)
			if len(got) != k {
				t.Fatalf("KNN returned %d, want %d", len(got), k)
			}
			// Ascending order.
			for i := 1; i < len(got); i++ {
				if m.Distance(q, pts[got[i-1]]) > m.Distance(q, pts[got[i]])+1e-12 {
					t.Fatal("KNN not ascending")
				}
			}
			// Completeness: no unseen point beats the kth distance.
			kth := m.Distance(q, pts[got[k-1]])
			in := map[int]bool{}
			for _, i := range got {
				in[i] = true
			}
			for i, p := range pts {
				if !in[i] && m.Distance(q, p) < kth-1e-12 {
					t.Fatalf("%s: point %d closer than kth but missing", m.Name(), i)
				}
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	tr, _ := New(nil, nil)
	if got := tr.KNN(geom.Point{0}, 3); got != nil {
		t.Errorf("KNN on empty = %v", got)
	}
	rng := rand.New(rand.NewSource(62))
	pts := randomPoints(rng, 10, 2)
	tr, _ = New(pts, nil)
	if got := tr.KNN(geom.Point{0, 0}, 0); got != nil {
		t.Errorf("KNN(k=0) = %v", got)
	}
	if got := tr.KNN(geom.Point{0, 0}, 50); len(got) != 10 {
		t.Errorf("KNN(k>n) = %d results", len(got))
	}
}
