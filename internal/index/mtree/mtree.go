// Package mtree implements the M-tree of Ciaccia, Patella and Zezula
// (VLDB 1997), a dynamic access method for arbitrary metric spaces. The
// DBDC paper points out that DBSCAN "can be used for all kinds of metric
// data spaces and is not confined to vector spaces"; the M-tree is the
// access method that makes ε-range queries efficient in that general
// setting, pruning subtrees purely through the triangle inequality.
package mtree

import (
	"container/heap"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/dbdc-go/dbdc/internal/geom"
)

// DefaultMaxEntries is the default node fan-out.
const DefaultMaxEntries = 16

// Tree is an M-tree over points under a caller-supplied metric.
type Tree struct {
	metric     geom.Metric
	maxEntries int
	root       *node
	pts        []geom.Point
	size       int
	// sq is the squared-comparison fast path used by range queries when the
	// metric supports it (nil otherwise); euclid marks the Euclidean metric,
	// whose store-backed range search runs the batched kernel path.
	sq     geom.SquaredMetric
	euclid bool
	// distCalls counts metric evaluations; exposed for ablation benches.
	// Updated atomically: the tree serves range queries from concurrent
	// readers (e.g. dbscan.RunParallel workers).
	distCalls int64
	// store is the flat backing store when built via NewFromStore. Every
	// pivot is then a zero-copy view into it, so the distance kernels stream
	// contiguous rows; Insert demotes it to nil (inserted points live
	// outside the store).
	store *geom.Store
	// scratch pools the batched-search candidate and distance buffers so
	// concurrent store-backed range queries stay allocation-free.
	scratch sync.Pool
}

// entry is a routing entry (child != nil) or a ground entry (point index).
// parentDist is the distance to the parent routing object, used for the
// triangle-inequality pre-filter.
type entry struct {
	pivot      geom.Point
	radius     float64 // covering radius; 0 for ground entries
	parentDist float64
	child      *node
	idx        int32
}

type node struct {
	entries []entry
	parent  *node
	// parentEntry indexes the routing entry in parent that points here.
	leaf bool
}

// New builds an M-tree over pts with the given metric (nil defaults to
// Euclidean) and default fan-out.
func New(pts []geom.Point, metric geom.Metric) (*Tree, error) {
	return NewWithFanout(pts, metric, DefaultMaxEntries)
}

// NewWithFanout builds an M-tree with node capacity maxEntries (minimum 4).
func NewWithFanout(pts []geom.Point, metric geom.Metric, maxEntries int) (*Tree, error) {
	if maxEntries < 4 {
		return nil, fmt.Errorf("mtree: max entries %d < 4", maxEntries)
	}
	if metric == nil {
		metric = geom.Euclidean{}
	}
	t := &Tree{metric: metric, maxEntries: maxEntries}
	t.sq, _ = geom.AsSquared(metric)
	_, t.euclid = metric.(geom.Euclidean)
	for _, p := range pts {
		if err := t.Insert(p); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// NewFromStore builds an M-tree over the points of a flat store with the
// default fan-out. Every inserted point is a zero-copy view into the store
// (one slice header per point, no coordinate copies), so ground entries and
// promoted routing pivots all read from the contiguous backing array.
func NewFromStore(st *geom.Store, metric geom.Metric) (*Tree, error) {
	return NewFromStoreWithFanout(st, metric, DefaultMaxEntries)
}

// NewFromStoreWithFanout is NewFromStore with an explicit node capacity.
func NewFromStoreWithFanout(st *geom.Store, metric geom.Metric, maxEntries int) (*Tree, error) {
	if maxEntries < 4 {
		return nil, fmt.Errorf("mtree: max entries %d < 4", maxEntries)
	}
	if metric == nil {
		metric = geom.Euclidean{}
	}
	t := &Tree{metric: metric, maxEntries: maxEntries}
	t.sq, _ = geom.AsSquared(metric)
	_, t.euclid = metric.(geom.Euclidean)
	for i, n := 0, st.Len(); i < n; i++ {
		if err := t.Insert(st.Point(i)); err != nil {
			return nil, err
		}
	}
	// Set after the build loop: Insert demotes the store on every call so
	// user insertions past the store cannot leave a stale id mapping.
	t.store = st
	return t, nil
}

// Store returns the flat backing store of a store-built tree, or nil. It is
// nil after any post-build Insert: inserted points are not store rows, so
// the id ↔ row correspondence no longer holds.
func (t *Tree) Store() *geom.Store { return t.store }

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

// Point returns the i-th indexed point.
func (t *Tree) Point(i int) geom.Point { return t.pts[i] }

// Metric returns the metric the tree was built with.
func (t *Tree) Metric() geom.Metric { return t.metric }

// DistanceCalls returns the number of metric evaluations performed since
// construction (insertions and queries).
func (t *Tree) DistanceCalls() int64 { return atomic.LoadInt64(&t.distCalls) }

func (t *Tree) dist(a, b geom.Point) float64 {
	atomic.AddInt64(&t.distCalls, 1)
	return t.metric.Distance(a, b)
}

// distSq is the squared-space counterpart of dist; callers must have checked
// t.sq != nil. Squared evaluations count like plain ones: the ablation
// benches compare metric evaluations, and one DistanceSq stands for one
// would-be Distance.
func (t *Tree) distSq(a, b geom.Point) float64 {
	atomic.AddInt64(&t.distCalls, 1)
	return t.sq.DistanceSq(a, b)
}

// Insert adds a point to the tree.
func (t *Tree) Insert(p geom.Point) error {
	if !p.IsFinite() {
		return fmt.Errorf("mtree: non-finite point %v", p)
	}
	// The tree is growing past its flat store (if any); drop the store
	// association rather than serve stale row ids.
	t.store = nil
	// Validate dimensionality once at insert time; the distance kernels skip
	// their per-call checks (hoisted hot-path guard, see geom/checks.go).
	if len(t.pts) > 0 && p.Dim() != t.pts[0].Dim() {
		return fmt.Errorf("mtree: point dimensionality %d, tree has %d", p.Dim(), t.pts[0].Dim())
	}
	idx := int32(len(t.pts))
	t.pts = append(t.pts, p)
	t.size++
	if t.root == nil {
		t.root = &node{leaf: true}
	}
	t.insertAt(t.descend(t.root, p), entry{pivot: p, idx: idx})
	return nil
}

// descend walks to the leaf best suited for p: prefer the routing entry
// whose ball already covers p (smallest distance), otherwise the one whose
// radius grows least.
func (t *Tree) descend(n *node, p geom.Point) *node {
	for !n.leaf {
		bestIn, bestInDist := -1, math.Inf(1)
		bestOut, bestOutGrow := -1, math.Inf(1)
		for i := range n.entries {
			e := &n.entries[i]
			d := t.dist(e.pivot, p)
			if d <= e.radius {
				if d < bestInDist {
					bestIn, bestInDist = i, d
				}
			} else if grow := d - e.radius; grow < bestOutGrow {
				bestOut, bestOutGrow = i, grow
			}
		}
		var chosen int
		if bestIn >= 0 {
			chosen = bestIn
		} else {
			chosen = bestOut
			n.entries[chosen].radius += bestOutGrow
		}
		n = n.entries[chosen].child
	}
	return n
}

// insertAt places e in leaf (or internal node during split promotion) and
// splits on overflow.
func (t *Tree) insertAt(n *node, e entry) {
	n.entries = append(n.entries, e)
	if e.child != nil {
		e.child.parent = n
	}
	if len(n.entries) > t.maxEntries {
		t.split(n)
	} else {
		t.updateRadii(n)
	}
}

// updateRadii propagates covering-radius growth and parent distances from n
// up to the root.
func (t *Tree) updateRadii(n *node) {
	for n.parent != nil {
		parent := n.parent
		pe := parentEntryOf(parent, n)
		// Recompute the covering radius of the routing entry for n.
		var r float64
		for i := range n.entries {
			d := t.dist(pe.pivot, n.entries[i].pivot)
			n.entries[i].parentDist = d
			if d+n.entries[i].radius > r {
				r = d + n.entries[i].radius
			}
		}
		if r > pe.radius {
			pe.radius = r
		}
		n = parent
	}
}

func parentEntryOf(parent, child *node) *entry {
	for i := range parent.entries {
		if parent.entries[i].child == child {
			return &parent.entries[i]
		}
	}
	panic("mtree: child not registered in parent")
}

// split divides an overflowing node using the mM_RAD promotion heuristic
// (choose the pivot pair minimising the larger covering radius) and
// generalized-hyperplane partitioning.
func (t *Tree) split(n *node) {
	es := n.entries
	// Promotion: sample pivot pairs. For modest fan-outs an exhaustive scan
	// is affordable and gives the best split quality.
	bestI, bestJ, bestScore := 0, 1, math.Inf(1)
	for i := 0; i < len(es); i++ {
		for j := i + 1; j < len(es); j++ {
			r1, r2 := t.partitionRadii(es, i, j)
			score := math.Max(r1, r2)
			if score < bestScore {
				bestI, bestJ, bestScore = i, j, score
			}
		}
	}
	p1, p2 := es[bestI].pivot, es[bestJ].pivot
	var g1, g2 []entry
	var r1, r2 float64
	for _, e := range es {
		d1, d2 := t.dist(p1, e.pivot), t.dist(p2, e.pivot)
		if d1 <= d2 {
			e.parentDist = d1
			g1 = append(g1, e)
			if d1+e.radius > r1 {
				r1 = d1 + e.radius
			}
		} else {
			e.parentDist = d2
			g2 = append(g2, e)
			if d2+e.radius > r2 {
				r2 = d2 + e.radius
			}
		}
	}
	if len(g1) == 0 || len(g2) == 0 {
		// Degenerate promotion (e.g. every entry equidistant from both
		// pivots, which happens with duplicate-heavy data): hyperplane
		// partitioning put everything on one side. Fall back to a balanced
		// split so no empty node enters the tree.
		all := g1
		if len(all) == 0 {
			all = g2
		}
		mid := len(all) / 2
		g1, g2 = all[:mid:mid], all[mid:]
		r1, r2 = 0, 0
		for _, e := range g1 {
			if d := t.dist(p1, e.pivot) + e.radius; d > r1 {
				r1 = d
			}
		}
		for _, e := range g2 {
			if d := t.dist(p2, e.pivot) + e.radius; d > r2 {
				r2 = d
			}
		}
	}
	n1 := &node{leaf: n.leaf, entries: g1, parent: n.parent}
	n2 := &node{leaf: n.leaf, entries: g2, parent: n.parent}
	for i := range g1 {
		if g1[i].child != nil {
			g1[i].child.parent = n1
		}
	}
	for i := range g2 {
		if g2[i].child != nil {
			g2[i].child.parent = n2
		}
	}
	e1 := entry{pivot: p1, radius: r1, child: n1}
	e2 := entry{pivot: p2, radius: r2, child: n2}
	if n.parent == nil {
		t.root = &node{leaf: false}
		n1.parent, n2.parent = t.root, t.root
		t.root.entries = []entry{e1, e2}
		return
	}
	parent := n.parent
	// Replace the routing entry for n with e1 and add e2.
	pe := parentEntryOf(parent, n)
	*pe = e1
	n1.parent = parent
	t.insertAt(parent, e2)
}

// partitionRadii computes the two covering radii that result from promoting
// entries i and j and assigning every entry to its nearer pivot.
func (t *Tree) partitionRadii(es []entry, i, j int) (float64, float64) {
	p1, p2 := es[i].pivot, es[j].pivot
	var r1, r2 float64
	for _, e := range es {
		d1, d2 := t.dist(p1, e.pivot), t.dist(p2, e.pivot)
		if d1 <= d2 {
			if d1+e.radius > r1 {
				r1 = d1 + e.radius
			}
		} else {
			if d2+e.radius > r2 {
				r2 = d2 + e.radius
			}
		}
	}
	return r1, r2
}

// Range returns the indexes of all points within distance eps of q,
// boundary inclusive.
func (t *Tree) Range(q geom.Point, eps float64) []int {
	return t.RangeAppend(q, eps, nil)
}

// RangeAppend is Range writing into buf (truncated to zero length first) —
// the allocation-free variant used through index.RangeInto. When the metric
// supports squared comparisons the whole traversal runs sqrt-free: the
// triangle-inequality prune d − radius ≤ eps is evaluated as
// d² ≤ (eps+radius)², which is equivalent for the non-negative quantities
// involved.
func (t *Tree) RangeAppend(q geom.Point, eps float64, buf []int) []int {
	out := buf[:0]
	if t.root == nil {
		return out
	}
	switch {
	case t.euclid && t.store != nil:
		out = t.rangeSearchStore(q, eps, eps*eps, out)
	case t.sq != nil:
		t.rangeSearchSq(t.root, q, eps, eps*eps, &out)
	default:
		t.rangeSearch(t.root, q, eps, &out)
	}
	return out
}

// RangeAppendID implements index.IDRangeAppender: the query point is
// addressed by object id, sparing the caller an interface Point round-trip
// per query.
func (t *Tree) RangeAppendID(i int, eps float64, buf []int) []int {
	return t.RangeAppend(t.pts[i], eps, buf)
}

// mtScratch is the pooled per-query state of the batched store search.
type mtScratch struct {
	cand []int
}

// rangeSearchStore is rangeSearchSq for the store-backed Euclidean tree:
// the triangle-inequality descent is unchanged (routing pivots are tested
// one at a time — each verdict gates a recursion), but ground entries of
// surviving leaves are collected and verified through the batched Store
// kernel in one fused sweep — identical decisions and visit order to the
// per-entry path; the leaf distance evaluations are accounted to distCalls
// in one atomic add per query instead of one per entry.
func (t *Tree) rangeSearchStore(q geom.Point, eps, eps2 float64, out []int) []int {
	s, _ := t.scratch.Get().(*mtScratch)
	if s == nil {
		s = &mtScratch{}
	}
	cand := t.collectStore(t.root, q, eps, s.cand[:0])
	atomic.AddInt64(&t.distCalls, int64(len(cand)))
	out = t.store.VerifyRangeSq(q, cand, eps2, out)
	s.cand = cand
	t.scratch.Put(s)
	return out
}

// collectStore appends the ground-entry ids of every leaf reached by the
// triangle-inequality descent to cand.
func (t *Tree) collectStore(n *node, q geom.Point, eps float64, cand []int) []int {
	if n.leaf {
		for i := range n.entries {
			cand = append(cand, int(n.entries[i].idx))
		}
		return cand
	}
	for i := range n.entries {
		e := &n.entries[i]
		bound := eps + e.radius
		if t.distSq(q, e.pivot) <= bound*bound {
			cand = t.collectStore(e.child, q, eps, cand)
		}
	}
	return cand
}

func (t *Tree) rangeSearch(n *node, q geom.Point, eps float64, out *[]int) {
	for i := range n.entries {
		e := &n.entries[i]
		d := t.dist(q, e.pivot)
		if n.leaf {
			if d <= eps {
				*out = append(*out, int(e.idx))
			}
			continue
		}
		// Triangle inequality: the ball around e.pivot with radius e.radius
		// can only intersect the query ball if d - radius <= eps.
		if d-e.radius <= eps {
			t.rangeSearch(e.child, q, eps, out)
		}
	}
}

// rangeSearchSq is rangeSearch in squared space (metric supports
// SquaredMetric). Leaf verification compares against eps²; routing entries
// against (eps + radius)².
func (t *Tree) rangeSearchSq(n *node, q geom.Point, eps, eps2 float64, out *[]int) {
	for i := range n.entries {
		e := &n.entries[i]
		d2 := t.distSq(q, e.pivot)
		if n.leaf {
			if d2 <= eps2 {
				*out = append(*out, int(e.idx))
			}
			continue
		}
		bound := eps + e.radius
		if d2 <= bound*bound {
			t.rangeSearchSq(e.child, q, eps, eps2, out)
		}
	}
}

// knnItem is a best-first queue element: an internal node (child != nil)
// with its optimistic distance bound, or a concrete point.
type knnItem struct {
	dist  float64
	child *node
	idx   int32
}

type knnQueue []knnItem

func (q knnQueue) Len() int            { return len(q) }
func (q knnQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q knnQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *knnQueue) Push(x interface{}) { *q = append(*q, x.(knnItem)) }
func (q *knnQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// KNN returns the indexes of the k points nearest to q in ascending
// distance order, using best-first traversal with the triangle-inequality
// bound max(0, d(q, pivot) − radius) for routing entries.
func (t *Tree) KNN(q geom.Point, k int) []int {
	if t.root == nil || k <= 0 {
		return nil
	}
	frontier := knnQueue{{dist: 0, child: t.root}}
	var out []int
	for frontier.Len() > 0 && len(out) < k {
		item := heap.Pop(&frontier).(knnItem)
		if item.child == nil {
			out = append(out, int(item.idx))
			continue
		}
		n := item.child
		for i := range n.entries {
			e := &n.entries[i]
			d := t.dist(q, e.pivot)
			if n.leaf {
				heap.Push(&frontier, knnItem{dist: d, idx: e.idx})
				continue
			}
			bound := d - e.radius
			if bound < 0 {
				bound = 0
			}
			heap.Push(&frontier, knnItem{dist: bound, child: e.child})
		}
	}
	return out
}
