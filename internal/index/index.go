// Package index provides neighborhood indexes over a fixed set of points.
// DBSCAN and the DBDC pipeline retrieve ε-neighborhoods exclusively through
// the Index interface, so the access method (linear scan, grid, kd-tree,
// R*-tree, M-tree) is interchangeable; the paper's DBSCAN uses an R*-tree
// for vector data and an M-tree for general metric data.
package index

import (
	"fmt"

	"github.com/dbdc-go/dbdc/internal/geom"
)

// Index answers ε-range queries over a fixed point set. Implementations are
// safe for concurrent readers after construction.
type Index interface {
	// Len returns the number of indexed points.
	Len() int
	// Point returns the i-th indexed point. Callers must not mutate it.
	Point(i int) geom.Point
	// Range returns the indexes of all points within distance eps of q,
	// boundary inclusive (the Eps-neighborhood N_Eps(q) of the paper,
	// including q itself when q is an indexed point). Order is unspecified.
	Range(q geom.Point, eps float64) []int
	// Metric returns the distance function the index answers queries under.
	Metric() geom.Metric
}

// RangeAppender is implemented by indexes that can write range results
// into a caller-supplied buffer, letting tight loops (DBSCAN expansion)
// avoid one allocation per query.
type RangeAppender interface {
	// RangeAppend behaves like Range but appends into buf after truncating
	// it to zero length.
	RangeAppend(q geom.Point, eps float64, buf []int) []int
}

// RangeInto performs a range query through idx, reusing buf when the index
// supports it.
func RangeInto(idx Index, q geom.Point, eps float64, buf []int) []int {
	if ra, ok := idx.(RangeAppender); ok {
		return ra.RangeAppend(q, eps, buf)
	}
	return idx.Range(q, eps)
}

// IDRangeAppender is implemented by indexes that can answer a range query
// for one of their own points addressed by id, without the caller
// materialising the query point. Store-backed indexes route this through
// the strided geom.Store kernels (flat-buffer row vs. flat-buffer row).
type IDRangeAppender interface {
	// RangeAppendID behaves like RangeAppend with q = Point(i).
	RangeAppendID(i int, eps float64, buf []int) []int
}

// RangeIntoID performs the range query for indexed point i, the form the
// DBSCAN expansion loops use (their query points are always index members).
// It prefers the by-id fast path and falls back to RangeInto with the
// zero-copy Point(i) view — never a per-point copy.
func RangeIntoID(idx Index, i int, eps float64, buf []int) []int {
	if ra, ok := idx.(IDRangeAppender); ok {
		return ra.RangeAppendID(i, eps, buf)
	}
	return RangeInto(idx, idx.Point(i), eps, buf)
}

// StoreBacked is implemented by indexes built over a flat geom.Store. The
// clustering layers use it to run point-vs-point comparisons through the
// strided kernels by id instead of through slice views. Store returns nil
// when the index has grown past its original store (dynamic insertion)
// and the flat buffer no longer covers every indexed point.
type StoreBacked interface {
	Store() *geom.Store
}

// StoreOf returns the backing store of a store-backed index under the
// Euclidean metric, or nil. The strided kernels are Euclidean-only, so
// callers that substitute them for metric.DistanceSq must check the metric
// too — this helper folds both checks.
func StoreOf(idx Index) *geom.Store {
	sb, ok := idx.(StoreBacked)
	if !ok {
		return nil
	}
	if _, euclid := idx.Metric().(geom.Euclidean); !euclid {
		return nil
	}
	return sb.Store()
}

// KNNIndex is implemented by indexes that additionally support k-nearest-
// neighbor queries (used by the k-dist heuristic for choosing Eps).
type KNNIndex interface {
	Index
	// KNN returns the indexes of the k points nearest to q in ascending
	// distance order. Fewer are returned when the index holds fewer points.
	KNN(q geom.Point, k int) []int
}

// Kind names a concrete index implementation.
type Kind string

// Available index kinds.
const (
	KindLinear Kind = "linear"
	KindGrid   Kind = "grid"
	KindKDTree Kind = "kdtree"
	KindRStar  Kind = "rstar"
	KindMTree  Kind = "mtree"
)

// Kinds lists every available index kind.
func Kinds() []Kind {
	return []Kind{KindLinear, KindGrid, KindKDTree, KindRStar, KindMTree}
}

// mustUniformDim panics unless every point shares the dimensionality of the
// first. The indexes validate once at build time so the geom distance
// kernels can drop their per-call checks (hoisted hot-path guard; re-enable
// per-call checks with -tags dbdc_debugchecks).
func mustUniformDim(pts []geom.Point, kind string) {
	if len(pts) == 0 {
		return
	}
	dim := pts[0].Dim()
	for _, p := range pts {
		if p.Dim() != dim {
			panic(fmt.Sprintf("index: %s requires uniform dimensionality (%d vs %d)", kind, dim, p.Dim()))
		}
	}
}

// Builder constructs an index over the given points. Grid-based builders use
// epsHint (the intended query radius) to size their cells; others ignore it.
type Builder func(pts []geom.Point, metric geom.Metric, epsHint float64) (Index, error)

// StoreBuilder constructs an index over a flat point store. Store-backed
// builds serve Point(i) as zero-copy views into the store and verify range
// candidates through the strided kernels — no point is re-cloned on the way
// into the index.
type StoreBuilder func(st *geom.Store, metric geom.Metric, epsHint float64) (Index, error)

var builders = map[Kind]Builder{}
var storeBuilders = map[Kind]StoreBuilder{}

// RegisterBuilder installs the builder for a kind. The concrete index
// packages (rstar, mtree) register themselves via their Install helpers to
// avoid import cycles; the in-package indexes are registered at init.
func RegisterBuilder(kind Kind, b Builder) { builders[kind] = b }

// RegisterStoreBuilder installs the store-backed builder for a kind.
func RegisterStoreBuilder(kind Kind, b StoreBuilder) { storeBuilders[kind] = b }

// Build constructs an index of the requested kind.
func Build(kind Kind, pts []geom.Point, metric geom.Metric, epsHint float64) (Index, error) {
	b, ok := builders[kind]
	if !ok {
		return nil, fmt.Errorf("index: no builder registered for kind %q", kind)
	}
	return b(pts, metric, epsHint)
}

// BuildStore constructs an index of the requested kind over a flat point
// store. Kinds without a registered store builder fall back to the slice
// builder over zero-copy views (one slice-header array, no coordinate
// copies), so every kind accepts a store.
func BuildStore(kind Kind, st *geom.Store, metric geom.Metric, epsHint float64) (Index, error) {
	if b, ok := storeBuilders[kind]; ok {
		return b(st, metric, epsHint)
	}
	b, ok := builders[kind]
	if !ok {
		return nil, fmt.Errorf("index: no builder registered for kind %q", kind)
	}
	return b(st.Views(), metric, epsHint)
}

func init() {
	RegisterBuilder(KindLinear, func(pts []geom.Point, m geom.Metric, _ float64) (Index, error) {
		return NewLinear(pts, m), nil
	})
	RegisterBuilder(KindGrid, func(pts []geom.Point, m geom.Metric, eps float64) (Index, error) {
		return NewGrid(pts, m, eps)
	})
	RegisterBuilder(KindKDTree, func(pts []geom.Point, m geom.Metric, _ float64) (Index, error) {
		return NewKDTree(pts, m)
	})
	RegisterStoreBuilder(KindLinear, func(st *geom.Store, m geom.Metric, _ float64) (Index, error) {
		return NewLinearStore(st, m), nil
	})
	RegisterStoreBuilder(KindGrid, func(st *geom.Store, m geom.Metric, eps float64) (Index, error) {
		return NewGridStore(st, m, eps)
	})
	RegisterStoreBuilder(KindKDTree, func(st *geom.Store, m geom.Metric, _ float64) (Index, error) {
		return NewKDTreeStore(st, m)
	})
}
