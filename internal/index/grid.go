package index

import (
	"errors"
	"math"

	"github.com/dbdc-go/dbdc/internal/geom"
)

// Grid is a uniform-grid index. Points are hashed into cells of edge length
// cellSize; an ε-range query with eps ≤ cellSize only needs to inspect the
// 3^d cells surrounding the query point. Candidate distances are verified
// with the configured metric, so the grid is exact for every Minkowski
// metric (any metric where a per-coordinate difference lower-bounds the
// distance).
type Grid struct {
	pts      []geom.Point
	metric   geom.Metric
	cellSize float64
	dim      int
	cells    map[string][]int
	// origin anchors cell coordinates so negative coordinates hash stably.
	origin geom.Point
}

// NewGrid builds a grid index with cells sized to the intended query radius
// eps. Queries with a radius larger than eps remain correct but degrade
// towards a full scan. eps must be positive and pts non-empty dimensions
// must agree.
func NewGrid(pts []geom.Point, metric geom.Metric, eps float64) (*Grid, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, errors.New("index: grid cell size must be a positive finite number")
	}
	if metric == nil {
		metric = geom.Euclidean{}
	}
	g := &Grid{
		pts:      pts,
		metric:   metric,
		cellSize: eps,
		cells:    make(map[string][]int),
	}
	if len(pts) > 0 {
		g.dim = pts[0].Dim()
		g.origin = pts[0].Clone()
		for i, p := range pts {
			if p.Dim() != g.dim {
				return nil, errors.New("index: grid requires uniform dimensionality")
			}
			key := g.cellKey(g.cellCoords(p))
			g.cells[key] = append(g.cells[key], i)
		}
	}
	return g, nil
}

// Len implements Index.
func (g *Grid) Len() int { return len(g.pts) }

// Point implements Index.
func (g *Grid) Point(i int) geom.Point { return g.pts[i] }

// Metric implements Index.
func (g *Grid) Metric() geom.Metric { return g.metric }

// CellCount returns the number of non-empty grid cells (exposed for tests
// and diagnostics).
func (g *Grid) CellCount() int { return len(g.cells) }

func (g *Grid) cellCoords(p geom.Point) []int64 {
	c := make([]int64, g.dim)
	for i := 0; i < g.dim; i++ {
		c[i] = int64(math.Floor((p[i] - g.origin[i]) / g.cellSize))
	}
	return c
}

// cellKey encodes cell coordinates into a compact string map key.
func (g *Grid) cellKey(coords []int64) string {
	buf := make([]byte, 0, len(coords)*8)
	for _, c := range coords {
		u := uint64(c)
		buf = append(buf,
			byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	return string(buf)
}

// Range implements Index.
func (g *Grid) Range(q geom.Point, eps float64) []int {
	return g.RangeAppend(q, eps, nil)
}

// RangeAppend implements RangeAppender.
func (g *Grid) RangeAppend(q geom.Point, eps float64, buf []int) []int {
	out := buf[:0]
	if len(g.pts) == 0 {
		return out
	}
	// A point within eps of q differs by at most eps per coordinate, hence
	// lies within reach cells of q's cell in every dimension.
	reach := int64(math.Ceil(eps / g.cellSize))
	center := g.cellCoords(q)
	coords := make([]int64, g.dim)
	var walk func(d int)
	walk = func(d int) {
		if d == g.dim {
			for _, i := range g.cells[g.cellKey(coords)] {
				if g.metric.Distance(q, g.pts[i]) <= eps {
					out = append(out, i)
				}
			}
			return
		}
		for off := -reach; off <= reach; off++ {
			coords[d] = center[d] + off
			walk(d + 1)
		}
	}
	walk(0)
	return out
}
