package index

import (
	"errors"
	"math"
	"sync"

	"github.com/dbdc-go/dbdc/internal/geom"
)

// Grid is a uniform-grid index. Points are hashed into cells of edge length
// cellSize; an ε-range query with eps ≤ cellSize only needs to inspect the
// 3^d cells surrounding the query point. Candidate distances are verified
// with the configured metric, so the grid is exact for every Minkowski
// metric (any metric where a per-coordinate difference lower-bounds the
// distance).
type Grid struct {
	pts      []geom.Point
	metric   geom.Metric
	cellSize float64
	dim      int
	cells    map[string][]int
	// origin anchors cell coordinates so negative coordinates hash stably.
	origin geom.Point
	// sq is the squared-comparison fast path (nil when unsupported); euclid
	// additionally devirtualizes the common Euclidean case.
	sq     geom.SquaredMetric
	euclid bool
	// store is the flat backing store when built via NewGridStore; candidate
	// verification under the Euclidean metric then runs on the strided
	// Store kernels by candidate id.
	store *geom.Store
	// scratch pools the per-query cell-walk state so concurrent range
	// queries stay allocation-free in steady state.
	scratch sync.Pool
}

// gridScratch is the reusable per-query state of the cell walk.
type gridScratch struct {
	center, coords []int64
	key            []byte
}

// gridPruneSlack is the relative FP margin of the cell-prune test: each
// per-axis gap retreats by this fraction of the participating magnitudes
// before being compared against eps. Roundings in the cell-assignment chain
// (subtract, divide, floor) and the distance kernels are bounded by a few
// ulps ≈ 2e-16 of the operand magnitudes; a 1e-12 retreat out-margins them
// by orders of magnitude while remaining far too small to admit extra cells
// on real data (and admitting a cell is only a wasted visit, never an error).
const gridPruneSlack = 1e-12

// NewGrid builds a grid index with cells sized to the intended query radius
// eps. Queries with a radius larger than eps remain correct but degrade
// towards a full scan. eps must be positive and pts non-empty dimensions
// must agree.
func NewGrid(pts []geom.Point, metric geom.Metric, eps float64) (*Grid, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, errors.New("index: grid cell size must be a positive finite number")
	}
	if metric == nil {
		metric = geom.Euclidean{}
	}
	g := &Grid{
		pts:      pts,
		metric:   metric,
		cellSize: eps,
		cells:    make(map[string][]int),
	}
	g.sq, _ = geom.AsSquared(metric)
	_, g.euclid = metric.(geom.Euclidean)
	if len(pts) > 0 {
		g.dim = pts[0].Dim()
		g.origin = pts[0].Clone()
		coords := make([]int64, g.dim)
		for i, p := range pts {
			if p.Dim() != g.dim {
				return nil, errors.New("index: grid requires uniform dimensionality")
			}
			g.cellCoordsInto(coords, p)
			key := string(appendCellKey(nil, coords))
			g.cells[key] = append(g.cells[key], i)
		}
	}
	dim := g.dim
	g.scratch.New = func() interface{} {
		return &gridScratch{
			center: make([]int64, dim),
			coords: make([]int64, dim),
			key:    make([]byte, 0, dim*8),
		}
	}
	return g, nil
}

// NewGridStore builds a grid index over the points of a flat store. The
// store is retained — Point(i) serves zero-copy views and Euclidean
// candidate verification runs on the strided Store kernels.
func NewGridStore(st *geom.Store, metric geom.Metric, eps float64) (*Grid, error) {
	g, err := NewGrid(st.Views(), metric, eps)
	if err != nil {
		return nil, err
	}
	g.store = st
	return g, nil
}

// Store implements StoreBacked. Nil when the index was built from a slice.
func (g *Grid) Store() *geom.Store { return g.store }

// Len implements Index.
func (g *Grid) Len() int { return len(g.pts) }

// Point implements Index.
func (g *Grid) Point(i int) geom.Point { return g.pts[i] }

// Metric implements Index.
func (g *Grid) Metric() geom.Metric { return g.metric }

// CellCount returns the number of non-empty grid cells (exposed for tests
// and diagnostics).
func (g *Grid) CellCount() int { return len(g.cells) }

// cellCoordsInto writes the cell coordinates of p into c (len g.dim).
func (g *Grid) cellCoordsInto(c []int64, p geom.Point) {
	for i := 0; i < g.dim; i++ {
		c[i] = int64(math.Floor((p[i] - g.origin[i]) / g.cellSize))
	}
}

// appendCellKey encodes cell coordinates into a compact byte key appended to
// buf. Lookups convert with string(buf) directly in the map index expression,
// which the compiler performs without allocating.
func appendCellKey(buf []byte, coords []int64) []byte {
	for _, c := range coords {
		u := uint64(c)
		buf = append(buf,
			byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	return buf
}

// Range implements Index.
func (g *Grid) Range(q geom.Point, eps float64) []int {
	return g.RangeAppend(q, eps, nil)
}

// RangeAppendID implements IDRangeAppender: the query point is addressed by
// object id, sparing the caller an interface Point round-trip per query.
func (g *Grid) RangeAppendID(i int, eps float64, buf []int) []int {
	return g.RangeAppend(g.pts[i], eps, buf)
}

// RangeAppend implements RangeAppender. The surrounding-cell walk runs on
// pooled scratch buffers and verifies candidates in squared space when the
// metric supports it, so steady-state queries allocate nothing.
func (g *Grid) RangeAppend(q geom.Point, eps float64, buf []int) []int {
	out := buf[:0]
	if len(g.pts) == 0 {
		return out
	}
	s := g.scratch.Get().(*gridScratch)
	center, coords := s.center, s.coords
	// A point within eps of q differs by at most eps per coordinate, hence
	// lies within reach cells of q's cell in every dimension.
	reach := int64(math.Ceil(eps / g.cellSize))
	g.cellCoordsInto(center, q)
	for d := range coords {
		coords[d] = center[d] - reach
	}
	eps2 := eps * eps
	useStore := g.euclid && g.store != nil
	// Odometer walk over the (2·reach+1)^d surrounding cells. Cells whose
	// rectangle provably lies outside the query ball are skipped before the
	// map lookup: with cells sized for a larger radius than the query's,
	// most surrounding cells cannot intersect the ball and the walk touches
	// a fraction of the (2·reach+1)^d candidates.
	for {
		// Per-axis gap from q to the cell interval, retreated by an FP
		// slack covering every rounding in the cell-assignment and distance
		// chains — pruning can only skip cells no passing candidate can
		// occupy, so the result set (and its cell order) is identical to
		// the unpruned walk. A gap beyond eps on any axis rules the cell
		// out under every supported metric (the per-coordinate difference
		// lower-bounds each Minkowski distance); under Euclidean the summed
		// squared gaps prune the diagonal cells too.
		skip := false
		var gapSq float64
		for d := 0; d < g.dim; d++ {
			lo := g.origin[d] + float64(coords[d])*g.cellSize
			hi := lo + g.cellSize
			var gap float64
			switch {
			case q[d] < lo:
				gap = lo - q[d]
			case q[d] > hi:
				gap = q[d] - hi
			}
			if gap > 0 {
				gap -= gridPruneSlack * (math.Abs(lo) + math.Abs(hi) + math.Abs(q[d]))
				if gap > eps {
					skip = true
					break
				}
				if gap > 0 {
					gapSq += gap * gap
				}
			}
		}
		if skip || (g.euclid && gapSq > eps2) {
			d := g.dim - 1
			for d >= 0 {
				coords[d]++
				if coords[d] <= center[d]+reach {
					break
				}
				coords[d] = center[d] - reach
				d--
			}
			if d < 0 {
				break
			}
			continue
		}
		key := appendCellKey(s.key[:0], coords)
		if useStore {
			// The cell's id slice IS the candidate batch: one fused kernel
			// sweep per cell instead of one call per point, identical
			// decisions to testing DistanceSqTo(i, q) one id at a time,
			// cell order preserved.
			out = g.store.VerifyRangeSq(q, g.cells[string(key)], eps2, out)
		} else {
			for _, i := range g.cells[string(key)] {
				p := g.pts[i]
				switch {
				case g.euclid:
					if (geom.Euclidean{}).DistanceSq(q, p) <= eps2 {
						out = append(out, i)
					}
				case g.sq != nil:
					if g.sq.DistanceSq(q, p) <= eps2 {
						out = append(out, i)
					}
				default:
					if g.metric.Distance(q, p) <= eps {
						out = append(out, i)
					}
				}
			}
		}
		d := g.dim - 1
		for d >= 0 {
			coords[d]++
			if coords[d] <= center[d]+reach {
				break
			}
			coords[d] = center[d] - reach
			d--
		}
		if d < 0 {
			break
		}
	}
	g.scratch.Put(s)
	return out
}
