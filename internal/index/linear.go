package index

import (
	"sort"

	"github.com/dbdc-go/dbdc/internal/geom"
)

// Linear is the exhaustive-scan index: every query compares against every
// point. It supports arbitrary metrics, has zero build cost, and serves as
// the correctness oracle the tree indexes are property-tested against.
type Linear struct {
	pts    []geom.Point
	metric geom.Metric
}

// NewLinear builds a linear index over pts. The point slice is retained, not
// copied; callers must not mutate it afterwards. A nil metric defaults to
// Euclidean.
func NewLinear(pts []geom.Point, metric geom.Metric) *Linear {
	if metric == nil {
		metric = geom.Euclidean{}
	}
	return &Linear{pts: pts, metric: metric}
}

// Len implements Index.
func (l *Linear) Len() int { return len(l.pts) }

// Point implements Index.
func (l *Linear) Point(i int) geom.Point { return l.pts[i] }

// Metric implements Index.
func (l *Linear) Metric() geom.Metric { return l.metric }

// Range implements Index.
func (l *Linear) Range(q geom.Point, eps float64) []int {
	return l.RangeAppend(q, eps, nil)
}

// RangeAppend implements RangeAppender.
func (l *Linear) RangeAppend(q geom.Point, eps float64, buf []int) []int {
	out := buf[:0]
	for i, p := range l.pts {
		if l.metric.Distance(q, p) <= eps {
			out = append(out, i)
		}
	}
	return out
}

// KNN implements KNNIndex.
func (l *Linear) KNN(q geom.Point, k int) []int {
	if k <= 0 {
		return nil
	}
	type cand struct {
		idx  int
		dist float64
	}
	cands := make([]cand, len(l.pts))
	for i, p := range l.pts {
		cands[i] = cand{i, l.metric.Distance(q, p)}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].idx < cands[j].idx
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].idx
	}
	return out
}
