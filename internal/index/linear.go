package index

import (
	"sort"

	"github.com/dbdc-go/dbdc/internal/geom"
)

// Linear is the exhaustive-scan index: every query compares against every
// point. It supports arbitrary metrics, has zero build cost, and serves as
// the correctness oracle the tree indexes are property-tested against.
type Linear struct {
	pts    []geom.Point
	metric geom.Metric
	// sq is the squared-comparison fast path, nil when the metric does not
	// support it; euclid devirtualizes the common Euclidean case entirely.
	sq     geom.SquaredMetric
	euclid bool
	// store is the flat backing store when the index was built with
	// NewLinearStore; the Euclidean scan then runs on the fused strided
	// verification kernel (contiguous rows, no pointer chase per point).
	store *geom.Store
}

// NewLinear builds a linear index over pts. The point slice is retained, not
// copied; callers must not mutate it afterwards. A nil metric defaults to
// Euclidean. Dimensionality is validated once here so the distance kernels
// can skip their per-call checks; mixed dimensions panic.
func NewLinear(pts []geom.Point, metric geom.Metric) *Linear {
	if metric == nil {
		metric = geom.Euclidean{}
	}
	mustUniformDim(pts, "linear")
	l := &Linear{pts: pts, metric: metric}
	l.sq, _ = geom.AsSquared(metric)
	_, l.euclid = metric.(geom.Euclidean)
	return l
}

// NewLinearStore builds a linear index over the points of a flat store. The
// store is retained and Point(i) serves zero-copy views into it; under the
// Euclidean metric the scan loop runs on the strided Store kernels.
func NewLinearStore(st *geom.Store, metric geom.Metric) *Linear {
	l := NewLinear(st.Views(), metric)
	l.store = st
	return l
}

// Store implements StoreBacked. Nil when the index was built from a slice.
func (l *Linear) Store() *geom.Store { return l.store }

// Len implements Index.
func (l *Linear) Len() int { return len(l.pts) }

// Point implements Index.
func (l *Linear) Point(i int) geom.Point { return l.pts[i] }

// Metric implements Index.
func (l *Linear) Metric() geom.Metric { return l.metric }

// Range implements Index.
func (l *Linear) Range(q geom.Point, eps float64) []int {
	return l.RangeAppend(q, eps, nil)
}

// RangeAppend implements RangeAppender. It is allocation-free when buf has
// capacity and compares in squared space when the metric supports it.
func (l *Linear) RangeAppend(q geom.Point, eps float64, buf []int) []int {
	out := buf[:0]
	switch {
	case l.euclid && l.store != nil:
		// Fused strided scan: the interval verification kernel streams the
		// flat buffer and thresholds in one pass — identical decisions to
		// testing rows one at a time.
		out = l.store.VerifyIntervalSq(q, 0, l.store.Len(), eps*eps, out)
	case l.euclid:
		// Concrete receiver: DistanceSq inlines into the scan loop.
		eps2 := eps * eps
		for i, p := range l.pts {
			if (geom.Euclidean{}).DistanceSq(q, p) <= eps2 {
				out = append(out, i)
			}
		}
	case l.sq != nil:
		eps2 := eps * eps
		for i, p := range l.pts {
			if l.sq.DistanceSq(q, p) <= eps2 {
				out = append(out, i)
			}
		}
	default:
		for i, p := range l.pts {
			if l.metric.Distance(q, p) <= eps {
				out = append(out, i)
			}
		}
	}
	return out
}

// RangeAppendID implements IDRangeAppender: the query point is addressed by
// id, so the store-backed Euclidean scan compares row against row through
// Store.DistanceSq without materialising a query slice header.
func (l *Linear) RangeAppendID(i int, eps float64, buf []int) []int {
	if l.euclid && l.store != nil {
		// The query row's zero-copy view feeds the same fused scan as
		// RangeAppend: kernel(row_i, row_j) with identical operand order to
		// the old per-row Store.DistanceSq(i, j) loop.
		return l.store.VerifyIntervalSq(l.store.Point(i), 0, l.store.Len(), eps*eps, buf[:0])
	}
	return l.RangeAppend(l.pts[i], eps, buf)
}


// KNN implements KNNIndex.
func (l *Linear) KNN(q geom.Point, k int) []int {
	if k <= 0 {
		return nil
	}
	type cand struct {
		idx  int
		dist float64
	}
	cands := make([]cand, len(l.pts))
	for i, p := range l.pts {
		cands[i] = cand{i, l.metric.Distance(q, p)}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].idx < cands[j].idx
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].idx
	}
	return out
}
