package index

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/dbdc-go/dbdc/internal/geom"
)

// pointCloud generates a random point set with a query point and radius,
// covering clustered and degenerate layouts.
type pointCloud struct {
	pts   []geom.Point
	query geom.Point
	eps   float64
}

func (pointCloud) Generate(rng *rand.Rand, size int) reflect.Value {
	n := rng.Intn(size*4 + 1)
	dim := 1 + rng.Intn(3)
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			switch rng.Intn(3) {
			case 0: // clustered around a few centers
				p[d] = float64(rng.Intn(3))*5 + rng.NormFloat64()*0.3
			case 1: // duplicates / grid-aligned values
				p[d] = float64(rng.Intn(4))
			default:
				p[d] = rng.NormFloat64() * 10
			}
		}
		pts[i] = p
	}
	query := make(geom.Point, dim)
	for d := range query {
		query[d] = rng.NormFloat64() * 8
	}
	return reflect.ValueOf(pointCloud{pts: pts, query: query, eps: rng.Float64() * 5})
}

// Property (quick variant of the oracle test): every index kind returns
// exactly the linear scan's ε-neighborhood on arbitrary generated clouds,
// including duplicate-heavy and grid-aligned layouts.
func TestQuickRangeOracle(t *testing.T) {
	f := func(pc pointCloud) bool {
		if pc.eps <= 0 {
			pc.eps = 0.5
		}
		oracle := NewLinear(pc.pts, geom.Euclidean{})
		want := map[int]bool{}
		for _, i := range oracle.Range(pc.query, pc.eps) {
			want[i] = true
		}
		for _, kind := range Kinds() {
			idx, err := Build(kind, pc.pts, geom.Euclidean{}, pc.eps)
			if err != nil {
				return false
			}
			got := idx.Range(pc.query, pc.eps)
			if len(got) != len(want) {
				return false
			}
			for _, i := range got {
				if !want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: RangeAppend with a dirty reused buffer returns the same result
// as a fresh Range for every buffer-capable index.
func TestQuickRangeAppendReuse(t *testing.T) {
	f := func(pc pointCloud) bool {
		if pc.eps <= 0 {
			pc.eps = 0.5
		}
		dirty := []int{99, 98, 97}
		for _, kind := range []Kind{KindLinear, KindGrid, KindKDTree, KindRStar} {
			idx, err := Build(kind, pc.pts, geom.Euclidean{}, pc.eps)
			if err != nil {
				return false
			}
			fresh := idx.Range(pc.query, pc.eps)
			reused := RangeInto(idx, pc.query, pc.eps, dirty)
			if len(fresh) != len(reused) {
				return false
			}
			seen := map[int]bool{}
			for _, i := range fresh {
				seen[i] = true
			}
			for _, i := range reused {
				if !seen[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
