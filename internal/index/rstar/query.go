package rstar

import (
	"container/heap"

	"github.com/dbdc-go/dbdc/internal/geom"
)

// Range returns the indexes of all points within Euclidean distance eps of
// q, boundary inclusive. Subtrees are pruned with the MBR distance bound.
func (t *Tree) Range(q geom.Point, eps float64) []int {
	return t.RangeAppend(q, eps, nil)
}

// RangeAppend is Range writing into buf (reused after truncation to zero
// length), the allocation-free variant the DBSCAN inner loop uses. The
// R*-tree is Euclidean-only, so both the MBR pruning bound and the leaf
// verification run entirely in squared space (no sqrt on the hot path).
func (t *Tree) RangeAppend(q geom.Point, eps float64, buf []int) []int {
	if t.root == nil {
		return buf[:0]
	}
	out := buf[:0]
	if t.store != nil {
		return t.rangeSearchStore(q, eps*eps, out)
	}
	t.rangeSearch(t.root, q, eps*eps, &out)
	return out
}

// RangeAppendID implements index.IDRangeAppender: the query point is
// addressed by object id, sparing the caller an interface Point round-trip
// per query.
func (t *Tree) RangeAppendID(i int, eps float64, buf []int) []int {
	return t.RangeAppend(t.pts[i], eps, buf)
}

func (t *Tree) rangeSearch(n *node, q geom.Point, eps2 float64, out *[]int) {
	for _, e := range n.entries {
		if n.leaf() {
			if geom.SquaredEuclidean(q, t.pts[e.idx]) <= eps2 {
				*out = append(*out, int(e.idx))
			}
			continue
		}
		if e.rect.MinDistSq(q) <= eps2 {
			t.rangeSearch(e.child, q, eps2, out)
		}
	}
}

// rsScratch is the pooled per-query state of the batched store search.
type rsScratch struct {
	cand []int
}

// rangeSearchStore is the batched store search: the MBR-pruned descent is
// unchanged, but instead of verifying leaf entries one at a time it collects
// every surviving leaf's point ids (in the recursion's visit order) and
// verifies the whole list through the fused Store kernel — identical
// decisions and output order to per-entry DistanceSqTo tests.
func (t *Tree) rangeSearchStore(q geom.Point, eps2 float64, out []int) []int {
	s, _ := t.scratch.Get().(*rsScratch)
	if s == nil {
		s = &rsScratch{}
	}
	cand := t.collectStore(t.root, q, eps2, s.cand[:0])
	out = t.store.VerifyRangeSq(q, cand, eps2, out)
	s.cand = cand
	t.scratch.Put(s)
	return out
}

// collectStore appends the point ids of every leaf reached by the MBR-pruned
// descent to cand.
func (t *Tree) collectStore(n *node, q geom.Point, eps2 float64, cand []int) []int {
	if n.leaf() {
		for _, e := range n.entries {
			cand = append(cand, int(e.idx))
		}
		return cand
	}
	for _, e := range n.entries {
		if e.rect.MinDistSq(q) <= eps2 {
			cand = t.collectStore(e.child, q, eps2, cand)
		}
	}
	return cand
}

// RangeCount returns |N_eps(q)| without materialising the result slice.
// DBSCAN's core-object test only needs the cardinality.
func (t *Tree) RangeCount(q geom.Point, eps float64) int {
	if t.root == nil {
		return 0
	}
	return t.rangeCount(t.root, q, eps*eps)
}

func (t *Tree) rangeCount(n *node, q geom.Point, eps2 float64) int {
	count := 0
	for _, e := range n.entries {
		if n.leaf() {
			if geom.SquaredEuclidean(q, t.pts[e.idx]) <= eps2 {
				count++
			}
			continue
		}
		if e.rect.MinDistSq(q) <= eps2 {
			count += t.rangeCount(e.child, q, eps2)
		}
	}
	return count
}

// pqItem is an element of the best-first search queue: either an internal
// node (child != nil) or a point (idx).
type pqItem struct {
	dist  float64
	child *node
	idx   int32
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	x := old[n-1]
	*p = old[:n-1]
	return x
}

// KNN returns the indexes of the k points nearest to q in ascending distance
// order using best-first (Hjaltason/Samet) traversal. Fewer than k are
// returned when the tree is smaller.
func (t *Tree) KNN(q geom.Point, k int) []int {
	if t.root == nil || k <= 0 {
		return nil
	}
	frontier := pq{{dist: 0, child: t.root}}
	var out []int
	for frontier.Len() > 0 && len(out) < k {
		item := heap.Pop(&frontier).(pqItem)
		if item.child == nil {
			out = append(out, int(item.idx))
			continue
		}
		n := item.child
		for _, e := range n.entries {
			if n.leaf() {
				heap.Push(&frontier, pqItem{
					dist: t.metric.Distance(q, t.pts[e.idx]),
					idx:  e.idx,
				})
			} else {
				heap.Push(&frontier, pqItem{dist: e.rect.MinDist(q), child: e.child})
			}
		}
	}
	return out
}

// RangeRect returns the indexes of all points inside the query rectangle
// (boundaries inclusive) — the classic R-tree window query.
func (t *Tree) RangeRect(q geom.Rect) []int {
	if t.root == nil {
		return nil
	}
	var out []int
	t.windowSearch(t.root, q, &out)
	return out
}

func (t *Tree) windowSearch(n *node, q geom.Rect, out *[]int) {
	for _, e := range n.entries {
		if !q.Intersects(e.rect) {
			continue
		}
		if n.leaf() {
			*out = append(*out, int(e.idx))
			continue
		}
		t.windowSearch(e.child, q, out)
	}
}
