package rstar

import (
	"fmt"
	"sort"
)

// Delete removes the point with the given index from the tree. Underfull
// nodes are dissolved and their entries reinserted (the classic R-tree
// CondenseTree), so the structural invariants keep holding for any
// insert/delete sequence. The point's coordinates remain addressable via
// Point(i); only its tree entry disappears. Deleting an index twice, or an
// index never inserted, returns an error.
func (t *Tree) Delete(idx int) error {
	if t.root == nil || idx < 0 || idx >= len(t.pts) {
		return fmt.Errorf("rstar: delete of unknown point %d", idx)
	}
	p := t.pts[idx]
	path := t.findLeafPath(t.root, int32(idx))
	if path == nil {
		return fmt.Errorf("rstar: point %d not in tree", idx)
	}
	leaf := path[len(path)-1]
	for i := range leaf.entries {
		if leaf.entries[i].child == nil && leaf.entries[i].idx == int32(idx) {
			leaf.entries = append(leaf.entries[:i], leaf.entries[i+1:]...)
			break
		}
	}
	_ = p
	t.size--
	orphans := t.condense(path)
	// Reinsert orphaned entries, higher levels first so subtree entries
	// find a sufficiently tall tree.
	sort.SliceStable(orphans, func(a, b int) bool { return orphans[a].level > orphans[b].level })
	for _, o := range orphans {
		t.insertEntry(o.e, o.level, make(map[int]bool))
	}
	// Shrink the root while it is an internal node with a single child.
	for !t.root.leaf() && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if t.size == 0 {
		t.root = nil
	}
	return nil
}

// findLeafPath locates the leaf holding the entry for point idx, returning
// the node path from the root. Overlapping sibling rectangles force a DFS
// over every subtree containing the point.
func (t *Tree) findLeafPath(n *node, idx int32) []*node {
	if n.leaf() {
		for _, e := range n.entries {
			if e.idx == idx {
				return []*node{n}
			}
		}
		return nil
	}
	p := t.pts[idx]
	for _, e := range n.entries {
		if !e.rect.Contains(p) {
			continue
		}
		if sub := t.findLeafPath(e.child, idx); sub != nil {
			return append([]*node{n}, sub...)
		}
	}
	return nil
}

type orphanEntry struct {
	e     entry
	level int
}

// condense walks the path bottom-up after a removal: underfull non-root
// nodes are cut out of their parents and their remaining entries collected
// for reinsertion; surviving nodes get their routing rectangles tightened.
func (t *Tree) condense(path []*node) []orphanEntry {
	var orphans []orphanEntry
	for i := len(path) - 1; i > 0; i-- {
		n := path[i]
		parent := path[i-1]
		if len(n.entries) < t.minEntries {
			for j := range parent.entries {
				if parent.entries[j].child == n {
					parent.entries = append(parent.entries[:j], parent.entries[j+1:]...)
					break
				}
			}
			for _, e := range n.entries {
				orphans = append(orphans, orphanEntry{e: e, level: n.level})
			}
			continue
		}
		t.refreshChildEntry(parent, n)
	}
	return orphans
}
