// Package rstar implements the R*-tree of Beckmann, Kriegel, Schneider and
// Seeger (SIGMOD 1990) specialised to point data. It is the spatial access
// method the DBDC paper's DBSCAN uses for ε-range queries on vector data:
// insertion uses the R* ChooseSubtree rule, topological split (minimum
// margin axis, minimum overlap distribution) and forced reinsertion; queries
// prune subtrees via bounding-box distance bounds.
package rstar

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/dbdc-go/dbdc/internal/geom"
)

// Default fan-out parameters. M = 32 with m = 40%·M follows the original
// paper's recommendation for a good trade-off between fan-out and split
// quality.
const (
	DefaultMaxEntries = 32
)

// reinsertFraction is the share p of entries evicted on the first overflow
// of a level during one insertion (the paper recommends 30%).
const reinsertFraction = 0.3

// Tree is an R*-tree over points. The zero value is not usable; construct
// with New or NewWithCapacity. A Tree is safe for concurrent readers once no
// writer is active.
type Tree struct {
	dim        int
	maxEntries int
	minEntries int
	root       *node
	pts        []geom.Point
	size       int
	metric     geom.Euclidean
	// store is the flat backing store when built via NewBulkStore; leaf
	// verification then runs batched on the strided Store kernels by point
	// id. Insert demotes it to nil (inserted points live outside the store).
	store *geom.Store
	// scratch pools the batched-search candidate and distance buffers so
	// concurrent range queries stay allocation-free in steady state.
	scratch sync.Pool
}

type entry struct {
	rect  geom.Rect
	child *node // nil for leaf entries
	idx   int32 // point index, valid for leaf entries
}

type node struct {
	level   int // 0 = leaf
	entries []entry
}

func (n *node) leaf() bool { return n.level == 0 }

// mbr recomputes the minimum bounding rectangle of all entries.
func (n *node) mbr() geom.Rect {
	r := n.entries[0].rect.Clone()
	for _, e := range n.entries[1:] {
		r = r.Extend(e.rect)
	}
	return r
}

// New builds an R*-tree over pts with the default fan-out. The point slice
// is retained; callers must not mutate it afterwards.
func New(pts []geom.Point) (*Tree, error) {
	return NewWithFanout(pts, DefaultMaxEntries)
}

// NewWithFanout builds an R*-tree with maximum node fan-out maxEntries
// (minimum 4). Exposed so benchmarks can ablate the fan-out choice.
func NewWithFanout(pts []geom.Point, maxEntries int) (*Tree, error) {
	if maxEntries < 4 {
		return nil, fmt.Errorf("rstar: max entries %d < 4", maxEntries)
	}
	t := &Tree{
		maxEntries: maxEntries,
		minEntries: maxEntries * 2 / 5, // 40% of M
	}
	if t.minEntries < 2 {
		t.minEntries = 2
	}
	for _, p := range pts {
		if err := t.Insert(p); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

// Point returns the i-th indexed point.
func (t *Tree) Point(i int) geom.Point { return t.pts[i] }

// Metric returns the Euclidean metric; the R*-tree prunes with Euclidean
// bounding-box bounds only.
func (t *Tree) Metric() geom.Metric { return t.metric }

// Height returns the height of the tree (0 for an empty tree, 1 for a
// root-only leaf).
func (t *Tree) Height() int {
	if t.root == nil {
		return 0
	}
	return t.root.level + 1
}

// Store returns the flat backing store of a bulk-store-loaded tree, or nil.
// It is nil after any Insert: inserted points are not part of the original
// store, so the id ↔ store-row correspondence no longer holds.
func (t *Tree) Store() *geom.Store { return t.store }

// Insert adds a point to the tree and returns an error on dimensionality
// mismatch or non-finite coordinates.
func (t *Tree) Insert(p geom.Point) error {
	if !p.IsFinite() {
		return fmt.Errorf("rstar: non-finite point %v", p)
	}
	// The tree has grown past its store; drop the strided fast path rather
	// than serve queries against stale row ids.
	t.store = nil
	if t.root == nil {
		t.dim = p.Dim()
		t.root = &node{level: 0}
	} else if p.Dim() != t.dim {
		return fmt.Errorf("rstar: point dimensionality %d, tree has %d", p.Dim(), t.dim)
	}
	idx := int32(len(t.pts))
	t.pts = append(t.pts, p)
	t.size++
	reinserted := make(map[int]bool)
	t.insertEntry(entry{rect: geom.RectFromPoint(p), idx: idx}, 0, reinserted)
	return nil
}

// ReplaceAt re-occupies slot idx — which the caller must previously have
// removed with Delete — with a new point. The slot keeps its index, so
// callers that address objects by tree index (e.g. a sliding-window
// incremental clusterer) can recycle slots instead of growing pts forever.
// Replacing a slot that is still present would corrupt the tree with a
// duplicate entry; the tree cannot detect this cheaply, so the contract is
// the caller's to uphold.
func (t *Tree) ReplaceAt(idx int, p geom.Point) error {
	if idx < 0 || idx >= len(t.pts) {
		return fmt.Errorf("rstar: replace of unknown slot %d", idx)
	}
	if !p.IsFinite() {
		return fmt.Errorf("rstar: non-finite point %v", p)
	}
	t.store = nil
	if t.root == nil {
		// Every point was deleted; the tree restarts from this one and may
		// change dimensionality like a fresh Insert would.
		t.dim = p.Dim()
		t.root = &node{level: 0}
	} else if p.Dim() != t.dim {
		return fmt.Errorf("rstar: point dimensionality %d, tree has %d", p.Dim(), t.dim)
	}
	t.pts[idx] = p
	t.size++
	reinserted := make(map[int]bool)
	t.insertEntry(entry{rect: geom.RectFromPoint(p), idx: int32(idx)}, 0, reinserted)
	return nil
}

// insertEntry places e into a node at the given level and resolves overflows
// with forced reinsertion (once per level per logical insertion) or splits.
func (t *Tree) insertEntry(e entry, level int, reinserted map[int]bool) {
	path := t.choosePath(e.rect, level)
	n := path[len(path)-1]
	n.entries = append(n.entries, e)
	t.refreshPath(path)
	t.resolveOverflow(path, len(path)-1, reinserted)
}

// choosePath descends from the root to a node at the target level using the
// R* ChooseSubtree rule and returns the nodes visited, root first.
func (t *Tree) choosePath(r geom.Rect, level int) []*node {
	path := []*node{t.root}
	n := t.root
	for n.level > level {
		best := t.chooseSubtree(n, r)
		n = n.entries[best].child
		path = append(path, n)
	}
	return path
}

// chooseSubtree returns the index of the entry of n the rectangle r should
// descend into. When the children are leaves the rule minimises overlap
// enlargement; otherwise it minimises area enlargement (ties broken by
// smaller area).
func (t *Tree) chooseSubtree(n *node, r geom.Rect) int {
	if n.level == 1 {
		best, bestOverlap, bestEnl, bestArea := -1, math.Inf(1), math.Inf(1), math.Inf(1)
		for i, e := range n.entries {
			ext := e.rect.Extend(r)
			var dOverlap float64
			for j, other := range n.entries {
				if j == i {
					continue
				}
				dOverlap += ext.OverlapArea(other.rect) - e.rect.OverlapArea(other.rect)
			}
			enl := ext.Area() - e.rect.Area()
			area := e.rect.Area()
			if dOverlap < bestOverlap ||
				(dOverlap == bestOverlap && enl < bestEnl) ||
				(dOverlap == bestOverlap && enl == bestEnl && area < bestArea) {
				best, bestOverlap, bestEnl, bestArea = i, dOverlap, enl, area
			}
		}
		return best
	}
	best, bestEnl, bestArea := -1, math.Inf(1), math.Inf(1)
	for i, e := range n.entries {
		enl := e.rect.Enlargement(r)
		area := e.rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// refreshPath recomputes the parent entry rectangles along the path, bottom
// up, so every ancestor tightly bounds its subtree.
func (t *Tree) refreshPath(path []*node) {
	for i := len(path) - 1; i > 0; i-- {
		t.refreshChildEntry(path[i-1], path[i])
	}
}

func (t *Tree) refreshChildEntry(parent, child *node) {
	for i := range parent.entries {
		if parent.entries[i].child == child {
			parent.entries[i].rect = child.mbr()
			return
		}
	}
	panic("rstar: child not found in parent")
}

// resolveOverflow walks up from path[i] handling any node that exceeds the
// fan-out, applying forced reinsertion the first time a level overflows
// during this insertion and splitting otherwise.
func (t *Tree) resolveOverflow(path []*node, i int, reinserted map[int]bool) {
	for ; i >= 0; i-- {
		n := path[i]
		if len(n.entries) <= t.maxEntries {
			continue
		}
		if i > 0 && !reinserted[n.level] {
			reinserted[n.level] = true
			t.forcedReinsert(path, i, reinserted)
			return // forcedReinsert re-enters insertEntry, which resolves further overflows
		}
		nn := t.split(n)
		if i == 0 {
			old := t.root
			t.root = &node{
				level: old.level + 1,
				entries: []entry{
					{rect: old.mbr(), child: old},
					{rect: nn.mbr(), child: nn},
				},
			}
			return
		}
		parent := path[i-1]
		t.refreshChildEntry(parent, n)
		parent.entries = append(parent.entries, entry{rect: nn.mbr(), child: nn})
	}
}

// forcedReinsert evicts the p entries of path[i] whose centers lie farthest
// from the node's MBR center and reinserts them (closest first), shrinking
// the node's region before a split becomes necessary.
func (t *Tree) forcedReinsert(path []*node, i int, reinserted map[int]bool) {
	n := path[i]
	center := n.mbr().Center()
	type distEntry struct {
		e entry
		d float64
	}
	des := make([]distEntry, len(n.entries))
	for j, e := range n.entries {
		des[j] = distEntry{e, geom.SquaredEuclidean(e.rect.Center(), center)}
	}
	sort.Slice(des, func(a, b int) bool { return des[a].d > des[b].d })
	p := int(reinsertFraction * float64(t.maxEntries))
	if p < 1 {
		p = 1
	}
	evicted := make([]entry, p)
	for j := 0; j < p; j++ {
		evicted[j] = des[j].e
	}
	kept := n.entries[:0]
	for j := p; j < len(des); j++ {
		kept = append(kept, des[j].e)
	}
	n.entries = kept
	t.refreshPath(path[:i+1])
	// Close reinsert: the entry nearest the center goes back first.
	for j := len(evicted) - 1; j >= 0; j-- {
		t.insertEntry(evicted[j], n.level, reinserted)
	}
}

// split performs the R* topological split of an overflowing node, keeps the
// first group in n and returns a new node holding the second group.
func (t *Tree) split(n *node) *node {
	axis := t.chooseSplitAxis(n)
	k, byUpper := t.chooseSplitIndex(n, axis)
	sortEntries(n.entries, axis, byUpper)
	splitAt := t.minEntries + k
	second := make([]entry, len(n.entries)-splitAt)
	copy(second, n.entries[splitAt:])
	n.entries = n.entries[:splitAt]
	return &node{level: n.level, entries: second}
}

func sortEntries(es []entry, axis int, byUpper bool) {
	sort.SliceStable(es, func(i, j int) bool {
		if byUpper {
			return es[i].rect.Max[axis] < es[j].rect.Max[axis]
		}
		if es[i].rect.Min[axis] != es[j].rect.Min[axis] {
			return es[i].rect.Min[axis] < es[j].rect.Min[axis]
		}
		return es[i].rect.Max[axis] < es[j].rect.Max[axis]
	})
}

// chooseSplitAxis returns the axis with the minimum total margin over all
// candidate distributions (sorted by lower and by upper rectangle bound).
func (t *Tree) chooseSplitAxis(n *node) int {
	bestAxis, bestMargin := 0, math.Inf(1)
	for axis := 0; axis < t.dim; axis++ {
		var margin float64
		for _, byUpper := range []bool{false, true} {
			sortEntries(n.entries, axis, byUpper)
			margin += t.distributionMargin(n.entries)
		}
		if margin < bestMargin {
			bestAxis, bestMargin = axis, margin
		}
	}
	return bestAxis
}

// distributionMargin sums the margins of both groups over every legal split
// position of the (pre-sorted) entries.
func (t *Tree) distributionMargin(es []entry) float64 {
	var total float64
	for k := 0; k <= t.maxEntries-2*t.minEntries+1; k++ {
		splitAt := t.minEntries + k
		g1 := boundOf(es[:splitAt])
		g2 := boundOf(es[splitAt:])
		total += g1.Margin() + g2.Margin()
	}
	return total
}

// chooseSplitIndex returns, for the chosen axis, the distribution (k) and
// sort direction with the minimum overlap between groups, ties broken by
// minimum combined area.
func (t *Tree) chooseSplitIndex(n *node, axis int) (k int, byUpper bool) {
	bestK, bestUpper := 0, false
	bestOverlap, bestArea := math.Inf(1), math.Inf(1)
	for _, upper := range []bool{false, true} {
		sortEntries(n.entries, axis, upper)
		for kk := 0; kk <= t.maxEntries-2*t.minEntries+1; kk++ {
			splitAt := t.minEntries + kk
			g1 := boundOf(n.entries[:splitAt])
			g2 := boundOf(n.entries[splitAt:])
			overlap := g1.OverlapArea(g2)
			area := g1.Area() + g2.Area()
			if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
				bestK, bestUpper, bestOverlap, bestArea = kk, upper, overlap, area
			}
		}
	}
	return bestK, bestUpper
}

func boundOf(es []entry) geom.Rect {
	r := es[0].rect.Clone()
	for _, e := range es[1:] {
		r = r.Extend(e.rect)
	}
	return r
}
