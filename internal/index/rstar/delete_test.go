package rstar

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/dbdc-go/dbdc/internal/geom"
)

func TestDeleteErrors(t *testing.T) {
	tr, _ := New([]geom.Point{{0, 0}})
	if err := tr.Delete(5); err == nil {
		t.Error("out-of-range delete accepted")
	}
	if err := tr.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete(0); err == nil {
		t.Error("double delete accepted")
	}
	empty, _ := New(nil)
	if err := empty.Delete(0); err == nil {
		t.Error("delete from empty tree accepted")
	}
}

func TestDeleteToEmptyAndReuse(t *testing.T) {
	pts := []geom.Point{{0, 0}, {1, 1}, {2, 2}}
	tr, _ := New(pts)
	for i := range pts {
		if err := tr.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := tr.Range(geom.Point{1, 1}, 10); len(got) != 0 {
		t.Fatalf("Range after full delete = %v", got)
	}
	// The tree must accept inserts again.
	if err := tr.Insert(geom.Point{5, 5}); err != nil {
		t.Fatal(err)
	}
	if got := tr.Range(geom.Point{5, 5}, 0); len(got) != 1 {
		t.Fatalf("Range after reuse = %v", got)
	}
}

// Property: after deleting arbitrary subsets, the tree answers range
// queries exactly like a linear scan over the survivors, and all
// structural invariants hold.
func TestDeleteRandomSubsets(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 5; trial++ {
		n := 200 + rng.Intn(800)
		pts := randomPoints(rng, n, 2)
		var tr *Tree
		var err error
		if trial%2 == 0 {
			tr, err = NewBulk(pts)
		} else {
			tr, err = NewWithFanout(pts, 8)
		}
		if err != nil {
			t.Fatal(err)
		}
		alive := make(map[int]bool, n)
		for i := 0; i < n; i++ {
			alive[i] = true
		}
		// Delete a random 60%.
		for _, i := range rng.Perm(n)[:n*6/10] {
			if err := tr.Delete(i); err != nil {
				t.Fatalf("delete %d: %v", i, err)
			}
			delete(alive, i)
		}
		if tr.Len() != len(alive) {
			t.Fatalf("Len = %d, want %d", tr.Len(), len(alive))
		}
		checkInvariants(t, tr)
		for q := 0; q < 30; q++ {
			query := randomPoints(rng, 1, 2)[0]
			eps := rng.Float64() * 5
			var want []int
			for i := range alive {
				if (geom.Euclidean{}).Distance(pts[i], query) <= eps {
					want = append(want, i)
				}
			}
			got := tr.Range(query, eps)
			sort.Ints(got)
			sort.Ints(want)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("range mismatch after deletions")
			}
		}
	}
}

// Interleaved inserts and deletes keep the structure sound.
func TestDeleteInsertInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	tr, _ := New(nil)
	alive := make(map[int]bool)
	for step := 0; step < 3000; step++ {
		if len(alive) > 0 && rng.Float64() < 0.4 {
			// Delete a random live point.
			var victim int
			k := rng.Intn(len(alive))
			for i := range alive {
				if k == 0 {
					victim = i
					break
				}
				k--
			}
			if err := tr.Delete(victim); err != nil {
				t.Fatal(err)
			}
			delete(alive, victim)
		} else {
			p := geom.Point{rng.NormFloat64() * 5, rng.NormFloat64() * 5}
			if err := tr.Insert(p); err != nil {
				t.Fatal(err)
			}
			alive[len(tr.pts)-1] = true
		}
		if step%500 == 499 {
			checkInvariants(t, tr)
			if tr.Len() != len(alive) {
				t.Fatalf("Len = %d, want %d", tr.Len(), len(alive))
			}
		}
	}
	checkInvariants(t, tr)
}

func TestDeleteDuplicatesByIndex(t *testing.T) {
	pts := make([]geom.Point, 50)
	for i := range pts {
		pts[i] = geom.Point{3, 3}
	}
	tr, _ := New(pts)
	// Delete every even index; the odd ones must survive.
	for i := 0; i < 50; i += 2 {
		if err := tr.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	got := tr.Range(geom.Point{3, 3}, 0)
	if len(got) != 25 {
		t.Fatalf("survivors = %d, want 25", len(got))
	}
	for _, i := range got {
		if i%2 == 0 {
			t.Fatalf("deleted index %d still returned", i)
		}
	}
	checkInvariants(t, tr)
}

func TestReplaceAtErrors(t *testing.T) {
	tr, _ := New([]geom.Point{{0, 0}, {1, 1}})
	if err := tr.ReplaceAt(5, geom.Point{2, 2}); err == nil {
		t.Error("out-of-range replace accepted")
	}
	if err := tr.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := tr.ReplaceAt(0, geom.Point{math.NaN(), 0}); err == nil {
		t.Error("non-finite replacement accepted")
	}
	if err := tr.ReplaceAt(0, geom.Point{1, 2, 3}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if err := tr.ReplaceAt(0, geom.Point{7, 7}); err != nil {
		t.Fatal(err)
	}
	if got := tr.Range(geom.Point{7, 7}, 0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Range on replaced slot = %v", got)
	}
}

// Property: churning delete + ReplaceAt over a fixed slot population keeps
// the point table at its original size and answers range queries exactly
// like a linear scan over the current slot contents.
func TestReplaceAtChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	const n = 300
	pts := randomPoints(rng, n, 2)
	cur := make([]geom.Point, n)
	copy(cur, pts)
	tr, err := NewBulk(pts)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 2000; step++ {
		i := rng.Intn(n)
		if err := tr.Delete(i); err != nil {
			t.Fatalf("step %d delete %d: %v", step, i, err)
		}
		p := geom.Point{rng.NormFloat64() * 4, rng.NormFloat64() * 4}
		if err := tr.ReplaceAt(i, p); err != nil {
			t.Fatalf("step %d replace %d: %v", step, i, err)
		}
		cur[i] = p
		if len(tr.pts) != n {
			t.Fatalf("step %d: point table grew to %d slots", step, len(tr.pts))
		}
		if step%400 == 399 {
			checkInvariants(t, tr)
			query := randomPoints(rng, 1, 2)[0]
			eps := rng.Float64() * 4
			var want []int
			for j, q := range cur {
				if (geom.Euclidean{}).Distance(q, query) <= eps {
					want = append(want, j)
				}
			}
			got := tr.Range(query, eps)
			sort.Ints(got)
			sort.Ints(want)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d: range mismatch under replace churn", step)
			}
		}
	}
	checkInvariants(t, tr)
}

// After deleting every point, ReplaceAt restarts the tree like Insert does.
func TestReplaceAtFromEmpty(t *testing.T) {
	tr, _ := New([]geom.Point{{0, 0}, {1, 1}})
	for i := 0; i < 2; i++ {
		if err := tr.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.ReplaceAt(1, geom.Point{3, 3}); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := tr.Range(geom.Point{3, 3}, 0.1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Range after restart = %v", got)
	}
}
