package rstar

import (
	"fmt"
	"math"
	"sort"

	"github.com/dbdc-go/dbdc/internal/geom"
)

// NewBulk builds an R*-tree over pts with Sort-Tile-Recursive (STR) bulk
// loading (Leutenegger, Lopez, Edgington 1997): points are tiled into fully
// packed, minimally overlapping leaves, then the upper levels are packed
// the same way. Bulk loading is an order of magnitude faster than repeated
// insertion and yields better query performance, so it is the default for
// the static site data DBSCAN runs over; dynamic workloads (incremental
// DBSCAN) use New and Insert instead. The point slice is retained, not
// copied. Further Inserts into a bulk-loaded tree are valid.
func NewBulk(pts []geom.Point) (*Tree, error) {
	return NewBulkWithFanout(pts, DefaultMaxEntries)
}

// NewBulkWithFanout is NewBulk with an explicit node fan-out.
func NewBulkWithFanout(pts []geom.Point, maxEntries int) (*Tree, error) {
	if maxEntries < 4 {
		return nil, fmt.Errorf("rstar: max entries %d < 4", maxEntries)
	}
	t := &Tree{
		maxEntries: maxEntries,
		minEntries: maxEntries * 2 / 5,
	}
	if t.minEntries < 2 {
		t.minEntries = 2
	}
	if len(pts) == 0 {
		return t, nil
	}
	t.dim = pts[0].Dim()
	for i, p := range pts {
		if !p.IsFinite() {
			return nil, fmt.Errorf("rstar: non-finite point %v at index %d", p, i)
		}
		if p.Dim() != t.dim {
			return nil, fmt.Errorf("rstar: point %d has dimension %d, want %d", i, p.Dim(), t.dim)
		}
	}
	t.pts = pts
	t.size = len(pts)
	entries := make([]entry, len(pts))
	for i, p := range pts {
		entries[i] = entry{rect: geom.RectFromPoint(p), idx: int32(i)}
	}
	level := 0
	for len(entries) > t.maxEntries {
		entries = t.strPack(entries, level)
		level++
	}
	t.root = &node{level: level, entries: entries}
	return t, nil
}

// NewBulkStore is NewBulk over the points of a flat store. Point(i) serves
// zero-copy views into the store and leaf verification runs on the strided
// Store kernels by point id. The degenerate leaf rectangles alias the store
// views directly (leaf rects are only ever read, never mutated in place), so
// the build performs no per-point coordinate copy at all — the routing-level
// MBRs are the only rectangles cloned.
func NewBulkStore(st *geom.Store, maxEntries int) (*Tree, error) {
	if maxEntries < 4 {
		return nil, fmt.Errorf("rstar: max entries %d < 4", maxEntries)
	}
	t := &Tree{
		maxEntries: maxEntries,
		minEntries: maxEntries * 2 / 5,
	}
	if t.minEntries < 2 {
		t.minEntries = 2
	}
	if st.Len() == 0 {
		return t, nil
	}
	if !st.IsFinite() {
		// Match the per-point diagnostics of the slice path.
		for i, n := 0, st.Len(); i < n; i++ {
			if p := st.Point(i); !p.IsFinite() {
				return nil, fmt.Errorf("rstar: non-finite point %v at index %d", p, i)
			}
		}
	}
	t.dim = st.Dim()
	t.pts = st.Views()
	t.size = st.Len()
	t.store = st
	entries := make([]entry, t.size)
	for i, p := range t.pts {
		entries[i] = entry{rect: geom.Rect{Min: p, Max: p}, idx: int32(i)}
	}
	level := 0
	for len(entries) > t.maxEntries {
		entries = t.strPack(entries, level)
		level++
	}
	t.root = &node{level: level, entries: entries}
	return t, nil
}

// strPack tiles the entries into nodes at the given level and returns the
// routing entries referencing them.
func (t *Tree) strPack(entries []entry, level int) []entry {
	groups := strGroups(entries, t.maxEntries, t.dim)
	out := make([]entry, len(groups))
	for i, g := range groups {
		n := &node{level: level, entries: g}
		out[i] = entry{rect: n.mbr(), child: n}
	}
	return out
}

// strGroups recursively sorts and slices the entries into groups of at most
// maxEntries, balanced so no group underfills below the R*-tree minimum.
func strGroups(es []entry, maxEntries, dim int) [][]entry {
	var out [][]entry
	var rec func(es []entry, d int)
	rec = func(es []entry, d int) {
		sortByCenter(es, d)
		if d == dim-1 || len(es) <= maxEntries {
			out = append(out, chunkBalanced(es, maxEntries)...)
			return
		}
		pages := (len(es) + maxEntries - 1) / maxEntries
		slabs := int(math.Ceil(math.Pow(float64(pages), 1/float64(dim-d))))
		if slabs < 1 {
			slabs = 1
		}
		slabSize := (len(es) + slabs - 1) / slabs
		for start := 0; start < len(es); start += slabSize {
			end := start + slabSize
			if end > len(es) {
				end = len(es)
			}
			rec(es[start:end], d+1)
		}
	}
	rec(es, 0)
	return out
}

func sortByCenter(es []entry, d int) {
	sort.Slice(es, func(i, j int) bool {
		return es[i].rect.Min[d]+es[i].rect.Max[d] < es[j].rect.Min[d]+es[j].rect.Max[d]
	})
}

// chunkBalanced splits es into ceil(len/maxEntries) consecutive groups
// whose sizes differ by at most one, so even the smallest group meets the
// 40% minimum fill whenever a split is needed at all.
func chunkBalanced(es []entry, maxEntries int) [][]entry {
	n := len(es)
	if n == 0 {
		return nil
	}
	k := (n + maxEntries - 1) / maxEntries
	base := n / k
	rem := n % k
	out := make([][]entry, 0, k)
	start := 0
	for i := 0; i < k; i++ {
		size := base
		if i < rem {
			size++
		}
		group := make([]entry, size)
		copy(group, es[start:start+size])
		out = append(out, group)
		start += size
	}
	return out
}
