package rstar

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/dbdc-go/dbdc/internal/geom"
)

func randomPoints(rng *rand.Rand, n, dim int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for j := range p {
			p[j] = rng.NormFloat64() * 5
		}
		pts[i] = p
	}
	return pts
}

// checkInvariants verifies the structural R*-tree invariants: every
// non-root node holds between m and M entries, every routing rectangle
// tightly bounds its subtree, all leaves sit at level 0, and every point is
// reachable exactly once.
func checkInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	if tr.root == nil {
		if tr.size != 0 {
			t.Fatal("nil root with nonzero size")
		}
		return
	}
	seen := make(map[int32]bool)
	var walk func(n *node, level int)
	walk = func(n *node, level int) {
		if n.level != level {
			t.Fatalf("node level %d, want %d", n.level, level)
		}
		if n != tr.root {
			if len(n.entries) < tr.minEntries || len(n.entries) > tr.maxEntries {
				t.Fatalf("node entry count %d outside [%d, %d]",
					len(n.entries), tr.minEntries, tr.maxEntries)
			}
		} else if len(n.entries) > tr.maxEntries {
			t.Fatalf("root overflow: %d entries", len(n.entries))
		}
		for _, e := range n.entries {
			if n.leaf() {
				if e.child != nil {
					t.Fatal("leaf entry with child pointer")
				}
				if seen[e.idx] {
					t.Fatalf("point %d indexed twice", e.idx)
				}
				seen[e.idx] = true
				if !e.rect.Min.Equal(tr.pts[e.idx]) || !e.rect.Max.Equal(tr.pts[e.idx]) {
					t.Fatalf("leaf rect %v does not match point %v", e.rect, tr.pts[e.idx])
				}
				continue
			}
			if e.child == nil {
				t.Fatal("internal entry without child")
			}
			mbr := e.child.mbr()
			if !e.rect.Min.Equal(mbr.Min) || !e.rect.Max.Equal(mbr.Max) {
				t.Fatalf("stale routing rect: have %v, subtree bound %v", e.rect, mbr)
			}
			walk(e.child, level-1)
		}
	}
	walk(tr.root, tr.root.level)
	if len(seen) != tr.size {
		t.Fatalf("reachable points %d, size %d", len(seen), tr.size)
	}
}

func TestEmptyTree(t *testing.T) {
	tr, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatalf("empty tree: Len=%d Height=%d", tr.Len(), tr.Height())
	}
	if got := tr.Range(geom.Point{0, 0}, 1); got != nil {
		t.Errorf("Range on empty = %v", got)
	}
	if got := tr.KNN(geom.Point{0, 0}, 3); got != nil {
		t.Errorf("KNN on empty = %v", got)
	}
}

func TestInsertValidation(t *testing.T) {
	tr, _ := New(nil)
	if err := tr.Insert(geom.Point{math.NaN(), 0}); err == nil {
		t.Error("NaN point accepted")
	}
	if err := tr.Insert(geom.Point{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(geom.Point{0, 0, 0}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestFanoutValidation(t *testing.T) {
	if _, err := NewWithFanout(nil, 3); err == nil {
		t.Error("fan-out 3 accepted")
	}
}

func TestInvariantsAcrossGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tr, _ := New(nil)
	pts := randomPoints(rng, 2000, 2)
	for i, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
		// Checking at every power of two keeps the test fast while covering
		// the first splits, the first root growth and deep trees.
		if i&(i+1) == 0 || i == len(pts)-1 {
			checkInvariants(t, tr)
		}
	}
	if tr.Height() < 3 {
		t.Fatalf("expected a deep tree, height %d", tr.Height())
	}
}

func TestInvariantsHighDim(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	tr, err := New(randomPoints(rng, 500, 5))
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, tr)
}

func TestInvariantsSmallFanout(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tr, err := NewWithFanout(randomPoints(rng, 300, 2), 4)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, tr)
}

func TestInvariantsDuplicates(t *testing.T) {
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Point{1, 1} // all identical: degenerate MBRs everywhere
	}
	tr, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, tr)
	if got := tr.Range(geom.Point{1, 1}, 0); len(got) != 100 {
		t.Fatalf("Range over duplicates = %d, want 100", len(got))
	}
}

func TestRangeCountMatchesRange(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := randomPoints(rng, 800, 2)
	tr, _ := New(pts)
	for trial := 0; trial < 50; trial++ {
		q := pts[rng.Intn(len(pts))]
		eps := rng.Float64() * 3
		if got, want := tr.RangeCount(q, eps), len(tr.Range(q, eps)); got != want {
			t.Fatalf("RangeCount = %d, Range size = %d", got, want)
		}
	}
}

func TestKNNOrderingAndCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	pts := randomPoints(rng, 500, 2)
	tr, _ := New(pts)
	e := geom.Euclidean{}
	q := geom.Point{0.5, -0.5}
	k := 25
	got := tr.KNN(q, k)
	if len(got) != k {
		t.Fatalf("KNN returned %d, want %d", len(got), k)
	}
	// Ascending order.
	for i := 1; i < len(got); i++ {
		if e.Distance(q, pts[got[i-1]]) > e.Distance(q, pts[got[i]])+1e-12 {
			t.Fatal("KNN not ascending")
		}
	}
	// Completeness: the kth distance bounds every non-returned point.
	kth := e.Distance(q, pts[got[k-1]])
	inResult := make(map[int]bool, k)
	for _, i := range got {
		inResult[i] = true
	}
	for i, p := range pts {
		if !inResult[i] && e.Distance(q, p) < kth-1e-12 {
			t.Fatalf("point %d closer than kth neighbor but missing", i)
		}
	}
}

func TestKNNWholeTree(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	pts := randomPoints(rng, 40, 2)
	tr, _ := New(pts)
	got := tr.KNN(geom.Point{0, 0}, 100)
	if len(got) != 40 {
		t.Fatalf("KNN(k>n) returned %d, want 40", len(got))
	}
	sort.Ints(got)
	want := make([]int, 40)
	for i := range want {
		want[i] = i
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("KNN(k>n) must return every point exactly once")
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	tr, err := New(randomPoints(rng, 5000, 2))
	if err != nil {
		t.Fatal(err)
	}
	// With fan-out 32 and 40% minimum fill, 5000 points need at least
	// ceil(log_32(5000/32))+1 = 3 levels and should stay shallow.
	if h := tr.Height(); h < 2 || h > 6 {
		t.Fatalf("suspicious height %d for 5000 points", h)
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, b.N, 2)
	tr, _ := New(nil)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(pts[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBulkInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{0, 1, 5, 32, 33, 100, 1000, 5000} {
		tr, err := NewBulk(randomPoints(rng, n, 2))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tr.Len())
		}
		checkInvariants(t, tr)
	}
}

func TestBulkHighDimInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr, err := NewBulk(randomPoints(rng, 2000, 4))
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, tr)
}

func TestBulkValidation(t *testing.T) {
	if _, err := NewBulk([]geom.Point{{1, 2}, {1}}); err == nil {
		t.Error("mixed dims accepted")
	}
	if _, err := NewBulk([]geom.Point{{math.NaN(), 0}}); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := NewBulkWithFanout(nil, 2); err == nil {
		t.Error("tiny fanout accepted")
	}
}

func TestBulkThenInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	tr, err := NewBulk(randomPoints(rng, 500, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range randomPoints(rng, 500, 2) {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	checkInvariants(t, tr)
	if tr.Len() != 1000 {
		t.Fatalf("Len=%d", tr.Len())
	}
}

func TestBulkRangeMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	pts := randomPoints(rng, 1500, 2)
	bulk, err := NewBulk(pts)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 40; trial++ {
		q := pts[rng.Intn(len(pts))]
		eps := rng.Float64() * 2
		a := bulk.Range(q, eps)
		b := inc.Range(q, eps)
		sort.Ints(a)
		sort.Ints(b)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("bulk and incremental disagree (eps=%v)", eps)
		}
	}
}

func BenchmarkBulkLoad(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomPoints(rng, 100000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewBulk(pts); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRangeRectMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	pts := randomPoints(rng, 800, 2)
	tr, err := NewBulk(pts)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		a, b := randomPoints(rng, 1, 2)[0], randomPoints(rng, 1, 2)[0]
		q := geom.RectFromPoint(a).ExtendPoint(b)
		var want []int
		for i, p := range pts {
			if q.Contains(p) {
				want = append(want, i)
			}
		}
		got := tr.RangeRect(q)
		sort.Ints(got)
		sort.Ints(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("window query mismatch: got %d, want %d results", len(got), len(want))
		}
	}
	if got := (&Tree{}).RangeRect(geom.RectFromPoint(geom.Point{0, 0})); got != nil {
		t.Fatalf("empty tree window query = %v", got)
	}
}
