// Package profiles is the shared -cpuprofile/-memprofile plumbing of the
// performance tooling (cmd/benchjson, cmd/dbdc-loadgen): start captures at
// process start, finalize them at exit, hand the files to `go tool pprof`.
// The workflow — which command to profile for which question — is
// documented in docs/performance.md.
package profiles

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the requested pprof captures. Either path may be empty to
// skip that profile. The returned stop function finalizes the captures —
// stops the CPU profile and snapshots the heap after a settling GC — and
// must be called exactly once, before process exit.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() error {
		var err error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			err = cpuFile.Close()
		}
		if memPath != "" {
			f, ferr := os.Create(memPath)
			if ferr != nil {
				if err == nil {
					err = ferr
				}
				return err
			}
			runtime.GC() // settle the heap so the snapshot reflects live data
			if werr := pprof.WriteHeapProfile(f); werr != nil && err == nil {
				err = werr
			}
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		return err
	}, nil
}
