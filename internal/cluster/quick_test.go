package cluster

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomLabeling is a quick.Generator producing arbitrary labelings with a
// mix of clusters and noise.
type randomLabeling Labeling

func (randomLabeling) Generate(rng *rand.Rand, size int) reflect.Value {
	n := rng.Intn(size + 1)
	l := make(randomLabeling, n)
	for i := range l {
		switch rng.Intn(4) {
		case 0:
			l[i] = Noise
		default:
			l[i] = ID(rng.Intn(6) * 7) // sparse unordered ids
		}
	}
	return reflect.ValueOf(l)
}

func TestQuickCanonicalizeIdempotent(t *testing.T) {
	f := func(rl randomLabeling) bool {
		l := Labeling(rl)
		c := l.Canonicalize()
		return reflect.DeepEqual(c, c.Canonicalize())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickCanonicalizePreservesStructure(t *testing.T) {
	f := func(rl randomLabeling) bool {
		l := Labeling(rl)
		c := l.Canonicalize()
		if l.NumClusters() != c.NumClusters() || l.NumNoise() != c.NumNoise() {
			return false
		}
		// Same-cluster relations are preserved exactly.
		for i := range l {
			for j := range l {
				if (l[i] == l[j]) != (c[i] == c[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickEquivalentToIsEquivalence(t *testing.T) {
	// Reflexivity and symmetry on random pairs.
	f := func(a, b randomLabeling) bool {
		la, lb := Labeling(a), Labeling(b)
		if !la.EquivalentTo(la) || !lb.EquivalentTo(lb) {
			return false
		}
		return la.EquivalentTo(lb) == lb.EquivalentTo(la)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickContingencyMarginals(t *testing.T) {
	// Row sums of the contingency table reproduce the cluster sizes.
	f := func(rl randomLabeling) bool {
		l := Labeling(rl)
		m := l.Canonicalize() // any second labeling of the same objects
		table := Contingency(l, m)
		total := 0
		for id, row := range table {
			rowSum := 0
			for _, v := range row {
				rowSum += v
				total += v
			}
			want := 0
			for _, c := range l {
				if c == id {
					want++
				}
			}
			if rowSum != want {
				return false
			}
		}
		return total == len(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
