// Package cluster defines the common representation of a clustering result —
// an assignment of each object to a cluster id or to noise — shared by the
// clustering algorithms, the DBDC pipeline and the quality measures.
package cluster

import (
	"fmt"
	"sort"
)

// ID identifies a cluster. Non-negative values are real clusters; Noise marks
// objects not contained in any cluster (Definition 5 of the paper).
type ID int32

// Noise is the label of objects that belong to no cluster.
const Noise ID = -1

// unclassified is used internally by algorithms while objects are pending.
const Unclassified ID = -2

// IsNoise reports whether the id marks noise.
func (id ID) IsNoise() bool { return id == Noise }

// Labeling assigns a cluster ID to every object of a data set, by object
// index. A Labeling is the output of every clustering algorithm in this
// module and the input of every quality measure.
type Labeling []ID

// NewLabeling returns a labeling of n objects, all marked Unclassified.
func NewLabeling(n int) Labeling {
	l := make(Labeling, n)
	for i := range l {
		l[i] = Unclassified
	}
	return l
}

// Len returns the number of labelled objects.
func (l Labeling) Len() int { return len(l) }

// NumClusters returns the number of distinct non-noise clusters.
func (l Labeling) NumClusters() int {
	seen := make(map[ID]struct{})
	for _, id := range l {
		if id >= 0 {
			seen[id] = struct{}{}
		}
	}
	return len(seen)
}

// NumNoise returns the number of objects labelled as noise.
func (l Labeling) NumNoise() int {
	n := 0
	for _, id := range l {
		if id == Noise {
			n++
		}
	}
	return n
}

// ClusterIDs returns the distinct non-noise cluster ids in ascending order.
func (l Labeling) ClusterIDs() []ID {
	seen := make(map[ID]struct{})
	for _, id := range l {
		if id >= 0 {
			seen[id] = struct{}{}
		}
	}
	ids := make([]ID, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Members returns the object indexes assigned to cluster id, in ascending
// order.
func (l Labeling) Members(id ID) []int {
	var m []int
	for i, c := range l {
		if c == id {
			m = append(m, i)
		}
	}
	return m
}

// Clusters returns the members of every non-noise cluster keyed by id.
func (l Labeling) Clusters() map[ID][]int {
	out := make(map[ID][]int)
	for i, c := range l {
		if c >= 0 {
			out[c] = append(out[c], i)
		}
	}
	return out
}

// Sizes returns the cardinality of every non-noise cluster keyed by id.
func (l Labeling) Sizes() map[ID]int {
	out := make(map[ID]int)
	for _, c := range l {
		if c >= 0 {
			out[c]++
		}
	}
	return out
}

// Clone returns an independent copy of the labeling.
func (l Labeling) Clone() Labeling {
	out := make(Labeling, len(l))
	copy(out, l)
	return out
}

// Canonicalize renumbers clusters to consecutive ids 0..k-1 in order of first
// appearance, leaving noise untouched. Two labelings describing the same
// partition canonicalize to identical slices, which makes equality checks and
// golden tests robust against id permutations.
func (l Labeling) Canonicalize() Labeling {
	out := make(Labeling, len(l))
	remap := make(map[ID]ID)
	var next ID
	for i, c := range l {
		if c < 0 {
			out[i] = c
			continue
		}
		nc, ok := remap[c]
		if !ok {
			nc = next
			next++
			remap[c] = nc
		}
		out[i] = nc
	}
	return out
}

// EquivalentTo reports whether l and m describe the same partition of the
// same objects, ignoring cluster id naming.
func (l Labeling) EquivalentTo(m Labeling) bool {
	if len(l) != len(m) {
		return false
	}
	a, b := l.Canonicalize(), m.Canonicalize()
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Validate returns an error if any object is still Unclassified or carries an
// id other than Noise or a non-negative cluster id. Algorithms call this in
// tests to guarantee total assignments.
func (l Labeling) Validate() error {
	for i, c := range l {
		if c != Noise && c < 0 {
			return fmt.Errorf("cluster: object %d has invalid label %d", i, c)
		}
	}
	return nil
}

// Contingency computes the contingency table between two labelings of the
// same objects: cell [a][b] counts objects in cluster a of l and cluster b of
// m. Noise is included under the Noise key so external quality indices can
// treat it as its own class when desired.
func Contingency(l, m Labeling) map[ID]map[ID]int {
	if len(l) != len(m) {
		panic(fmt.Sprintf("cluster: labelings disagree on size: %d vs %d", len(l), len(m)))
	}
	table := make(map[ID]map[ID]int)
	for i := range l {
		row, ok := table[l[i]]
		if !ok {
			row = make(map[ID]int)
			table[l[i]] = row
		}
		row[m[i]]++
	}
	return table
}
