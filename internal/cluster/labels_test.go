package cluster

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestNewLabeling(t *testing.T) {
	l := NewLabeling(3)
	if len(l) != 3 {
		t.Fatalf("len = %d", len(l))
	}
	for i, c := range l {
		if c != Unclassified {
			t.Errorf("object %d: label %d, want Unclassified", i, c)
		}
	}
}

func TestIsNoise(t *testing.T) {
	if !Noise.IsNoise() {
		t.Error("Noise.IsNoise() = false")
	}
	if ID(0).IsNoise() {
		t.Error("ID(0).IsNoise() = true")
	}
}

func TestCounts(t *testing.T) {
	l := Labeling{0, 0, 1, Noise, 2, 1, Noise}
	if got := l.NumClusters(); got != 3 {
		t.Errorf("NumClusters = %d, want 3", got)
	}
	if got := l.NumNoise(); got != 2 {
		t.Errorf("NumNoise = %d, want 2", got)
	}
	if got := l.ClusterIDs(); !reflect.DeepEqual(got, []ID{0, 1, 2}) {
		t.Errorf("ClusterIDs = %v", got)
	}
}

func TestMembersAndClusters(t *testing.T) {
	l := Labeling{0, 1, 0, Noise, 1}
	if got := l.Members(0); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("Members(0) = %v", got)
	}
	if got := l.Members(Noise); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("Members(Noise) = %v", got)
	}
	cl := l.Clusters()
	if len(cl) != 2 || !reflect.DeepEqual(cl[1], []int{1, 4}) {
		t.Errorf("Clusters = %v", cl)
	}
	sizes := l.Sizes()
	if sizes[0] != 2 || sizes[1] != 2 {
		t.Errorf("Sizes = %v", sizes)
	}
}

func TestCloneIndependent(t *testing.T) {
	l := Labeling{0, 1}
	m := l.Clone()
	m[0] = 5
	if l[0] != 0 {
		t.Fatal("Clone shares storage")
	}
}

func TestCanonicalize(t *testing.T) {
	l := Labeling{7, 7, 3, Noise, 3, 9}
	got := l.Canonicalize()
	want := Labeling{0, 0, 1, Noise, 1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Canonicalize = %v, want %v", got, want)
	}
}

func TestEquivalentTo(t *testing.T) {
	a := Labeling{0, 0, 1, Noise}
	b := Labeling{5, 5, 2, Noise}
	c := Labeling{5, 2, 5, Noise}
	if !a.EquivalentTo(b) {
		t.Error("a should be equivalent to b")
	}
	if a.EquivalentTo(c) {
		t.Error("a should not be equivalent to c")
	}
	if a.EquivalentTo(Labeling{0, 0, 1}) {
		t.Error("different lengths must not be equivalent")
	}
}

func TestValidate(t *testing.T) {
	if err := (Labeling{0, Noise, 2}).Validate(); err != nil {
		t.Errorf("valid labeling rejected: %v", err)
	}
	if err := (Labeling{0, Unclassified}).Validate(); err == nil {
		t.Error("unclassified object not rejected")
	}
}

func TestContingency(t *testing.T) {
	l := Labeling{0, 0, 1, Noise}
	m := Labeling{1, 1, 1, Noise}
	table := Contingency(l, m)
	if table[0][1] != 2 || table[1][1] != 1 || table[Noise][Noise] != 1 {
		t.Errorf("Contingency = %v", table)
	}
}

func TestContingencyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Contingency(Labeling{0}, Labeling{0, 1})
}

// Property: canonicalization is idempotent and preserves the partition.
func TestCanonicalizeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 100; iter++ {
		n := 1 + rng.Intn(50)
		l := make(Labeling, n)
		for i := range l {
			if rng.Float64() < 0.2 {
				l[i] = Noise
			} else {
				l[i] = ID(rng.Intn(8) * 3) // sparse, unordered ids
			}
		}
		c := l.Canonicalize()
		if !reflect.DeepEqual(c, c.Canonicalize()) {
			t.Fatal("Canonicalize not idempotent")
		}
		if !l.EquivalentTo(c) {
			t.Fatal("Canonicalize changed the partition")
		}
		if l.NumClusters() != c.NumClusters() || l.NumNoise() != c.NumNoise() {
			t.Fatal("Canonicalize changed cluster/noise counts")
		}
	}
}
