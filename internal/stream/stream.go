// Package stream implements the site side of the always-on streaming
// deployment: a Site ingests an unbounded point stream, maintains its local
// clustering over a sliding window with incremental DBSCAN, and uploads a
// model update — a delta when the server folds them, a full model otherwise
// — whenever the clustering has changed considerably since the last
// transmitted state (the paper's Section 4 update policy, measured as
// 1 − P^II against the last transmitted labeling snapshot).
//
// The window is FIFO in arrival order: once it is full, every ingested
// point first evicts the oldest live point. Eviction recycles the evicted
// point's slot (incdbscan free-list reuse), so the site's memory stays
// proportional to the window no matter how long the stream runs.
package stream

import (
	"errors"
	"fmt"

	idbdc "github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/incdbscan"
	"github.com/dbdc-go/dbdc/internal/model"
	"github.com/dbdc-go/dbdc/internal/transport"
)

// Uploader ships one model update to the server. *transport.StreamClient is
// the production implementation; tests substitute fakes.
type Uploader interface {
	Upload(full *model.LocalModel, delta *model.LocalDelta, stats *transport.StreamStats) (*transport.UploadResult, error)
}

// Config parameterizes a streaming site.
type Config struct {
	// SiteID identifies the site at the server.
	SiteID string
	// Cluster is the DBDC configuration (local DBSCAN parameters, model
	// kind) the uploads are built under.
	Cluster idbdc.Config
	// Window is the sliding-window size in objects.
	Window int
	// Threshold is the clustering-change level (1 − P^II vs the last
	// transmitted snapshot) above which the site uploads; 0 selects 0.15,
	// the repo's incremental-experiment default.
	Threshold float64
	// CheckEvery is how many ingested points pass between change checks
	// (the check resolves the full labeling, so it is amortized); 0
	// selects 64.
	CheckEvery int
}

const (
	defaultThreshold  = 0.15
	defaultCheckEvery = 64
)

func (c *Config) withDefaults() Config {
	out := *c
	if out.Threshold == 0 {
		out.Threshold = defaultThreshold
	}
	if out.CheckEvery == 0 {
		out.CheckEvery = defaultCheckEvery
	}
	return out
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.SiteID == "" {
		return errors.New("stream: empty site id")
	}
	if c.Window < 1 {
		return fmt.Errorf("stream: window %d, want >= 1", c.Window)
	}
	if c.Threshold < 0 || c.Threshold > 1 {
		return fmt.Errorf("stream: threshold %v outside [0, 1]", c.Threshold)
	}
	if c.CheckEvery < 0 {
		return fmt.Errorf("stream: check interval %d negative", c.CheckEvery)
	}
	return c.Cluster.Validate()
}

// Stats describes a streaming site's progress.
type Stats struct {
	// Ingested and Evicted count stream objects in and out of the window.
	Ingested, Evicted uint64
	// Turns is how often the window content has fully turned over
	// (Evicted / Window).
	Turns uint64
	// Uploads counts successful uploads; DeltaUploads of those went out as
	// deltas, Resyncs required a snapshot retry first.
	Uploads, DeltaUploads, Resyncs uint64
	// LastChange is the change metric at the last upload decision.
	LastChange float64
	// BytesSent and BytesReceived total the wire cost of all uploads.
	BytesSent, BytesReceived int
}

// Site is a streaming DBDC site. Not safe for concurrent use — a site
// ingests its stream sequentially, as a stream arrives.
type Site struct {
	cfg      Config
	inc      *incdbscan.Clusterer
	uploader Uploader

	// ring holds the window's slot ids in arrival order.
	ring  []int
	head  int
	count int

	// snapshot is the labeling at the last successful upload (positional
	// over slots; a recycled slot whose occupant changed cluster reads as
	// change, which is exactly what the policy should see).
	snapshot cluster.Labeling

	matcher *model.ClusterMatcher
	tracker *model.DeltaTracker
	pending int // ingests since the last change check
	stats   Stats
}

// NewSite creates a streaming site uploading through up.
func NewSite(cfg Config, up Uploader) (*Site, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if up == nil {
		return nil, errors.New("stream: nil uploader")
	}
	cfg = cfg.withDefaults()
	inc, err := incdbscan.New(cfg.Cluster.Local)
	if err != nil {
		return nil, err
	}
	return &Site{
		cfg:      cfg,
		inc:      inc,
		uploader: up,
		ring:     make([]int, cfg.Window),
		matcher:  model.NewClusterMatcher(),
		tracker:  model.NewDeltaTracker(),
	}, nil
}

// Stats returns a copy of the site's progress counters.
func (s *Site) Stats() Stats { return s.stats }

// LiveCount returns the number of points currently in the window.
func (s *Site) LiveCount() int { return s.inc.LiveCount() }

// Ingest admits one stream point: evict the oldest live point if the window
// is full, insert the new one, and upload if a change check is due and the
// clustering has drifted past the threshold. An upload failure is returned
// but does not lose the point — the site keeps streaming and retries at the
// next due check.
func (s *Site) Ingest(p geom.Point) error {
	if s.count == s.cfg.Window {
		oldest := s.ring[s.head]
		if err := s.inc.Delete(oldest); err != nil {
			return fmt.Errorf("stream: evicting slot %d: %w", oldest, err)
		}
		s.head = (s.head + 1) % s.cfg.Window
		s.count--
		s.stats.Evicted++
		s.stats.Turns = s.stats.Evicted / uint64(s.cfg.Window)
	}
	idx, err := s.inc.Insert(p)
	if err != nil {
		return err
	}
	s.ring[(s.head+s.count)%s.cfg.Window] = idx
	s.count++
	s.stats.Ingested++
	s.pending++
	if s.pending < s.cfg.CheckEvery {
		return nil
	}
	s.pending = 0
	return s.maybeUpload()
}

// maybeUpload measures the clustering change against the last transmitted
// snapshot and uploads when it is considerable (or nothing was ever sent).
func (s *Site) maybeUpload() error {
	labels := s.inc.Labels()
	if s.snapshot != nil {
		padded, err := idbdc.PadSnapshot(s.snapshot, len(labels))
		if err != nil {
			return err
		}
		change, err := idbdc.ClusteringChange(padded, labels)
		if err != nil {
			return err
		}
		s.stats.LastChange = change
		if change <= s.cfg.Threshold {
			return nil
		}
	} else {
		s.stats.LastChange = 1
	}
	return s.upload(labels)
}

// Flush uploads the current state unconditionally — stream end, orderly
// shutdown.
func (s *Site) Flush() error {
	s.pending = 0
	return s.upload(s.inc.Labels())
}

// upload rebuilds the local model over the live window and ships it.
func (s *Site) upload(labels cluster.Labeling) error {
	pts := make([]geom.Point, 0, s.count)
	for i := 0; i < s.count; i++ {
		pts = append(pts, s.inc.Point(s.ring[(s.head+i)%s.cfg.Window]))
	}
	out, err := idbdc.LocalStep(s.cfg.SiteID, pts, s.cfg.Cluster)
	if err != nil {
		return err
	}
	m := out.Model
	// Pin local cluster ids across uploads: the batch LocalStep renumbers
	// arbitrarily, which would make every retained representative look
	// changed to the delta tracker.
	s.matcher.RelabelLocal(m)
	stats := &transport.StreamStats{
		Window: s.cfg.Window,
		Turns:  s.stats.Turns,
		Change: s.stats.LastChange,
	}
	pending := s.tracker.Delta(m)
	res, err := s.uploader.Upload(m, pending.Delta, stats)
	if err != nil {
		return err
	}
	s.stats.BytesSent += res.BytesSent
	s.stats.BytesReceived += res.BytesReceived
	if res.Mode == transport.ModeDelta && res.Resync {
		// The server lost our chain (restart, or a full upload superseded
		// it): re-establish it with a snapshot.
		s.stats.Resyncs++
		s.tracker.Reset()
		pending = s.tracker.Delta(m)
		res, err = s.uploader.Upload(m, pending.Delta, stats)
		if err != nil {
			return err
		}
		s.stats.BytesSent += res.BytesSent
		s.stats.BytesReceived += res.BytesReceived
		if res.Mode == transport.ModeDelta && res.Resync {
			return errors.New("stream: server demanded resync for a fresh snapshot")
		}
	}
	if res.Mode == transport.ModeDelta {
		s.tracker.Commit(pending)
	} else {
		// Downgraded to full uploads: the delta chain is dead; keep the
		// tracker pristine in case the mode is ever reset.
		s.tracker.Reset()
	}
	s.snapshot = labels
	s.stats.Uploads++
	if res.Mode == transport.ModeDelta {
		s.stats.DeltaUploads++
	}
	return nil
}

// Run ingests the whole stream from src (in order) and flushes at the end.
// A point that fails to ingest aborts the run; upload failures inside
// Ingest abort as well — the caller owns retry policy at this level.
func (s *Site) Run(src <-chan geom.Point) error {
	for p := range src {
		if err := s.Ingest(p); err != nil {
			return err
		}
	}
	return s.Flush()
}
