package stream

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/dbdc-go/dbdc/internal/data"
	idbdc "github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/model"
	"github.com/dbdc-go/dbdc/internal/transport"
)

func testCfg(window int) Config {
	return Config{
		SiteID:     "st",
		Cluster:    idbdc.Config{Local: dbscan.Params{Eps: 0.5, MinPts: 5}},
		Window:     window,
		Threshold:  0.15,
		CheckEvery: 20,
	}
}

// upload is one recorded fake-uploader call.
type upload struct {
	full  *model.LocalModel
	delta *model.LocalDelta
	stats *transport.StreamStats
}

type respond func(*upload) (*transport.UploadResult, error)

func ack(u *upload) (*transport.UploadResult, error) {
	return &transport.UploadResult{Mode: transport.ModeDelta, Seq: u.delta.Seq}, nil
}

// fakeUploader records uploads and replays scripted results: entries of
// script are consumed one per call, after which every call gets ack.
type fakeUploader struct {
	calls  []upload
	script []respond
}

func (f *fakeUploader) Upload(full *model.LocalModel, delta *model.LocalDelta, stats *transport.StreamStats) (*transport.UploadResult, error) {
	u := upload{full: full, delta: delta, stats: stats}
	f.calls = append(f.calls, u)
	if len(f.script) > 0 {
		fn := f.script[0]
		f.script = f.script[1:]
		return fn(&u)
	}
	return ack(&u)
}

// feed ingests n points drawn around center, failing the test on error.
func feed(t *testing.T, site *Site, rng *rand.Rand, center geom.Point, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := site.Ingest(data.Blob(rng, center, 0.25, 1)[0]); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"empty site":    func(c *Config) { c.SiteID = "" },
		"zero window":   func(c *Config) { c.Window = 0 },
		"threshold > 1": func(c *Config) { c.Threshold = 1.5 },
		"negative chk":  func(c *Config) { c.CheckEvery = -1 },
		"bad cluster":   func(c *Config) { c.Cluster.Local.MinPts = 0 },
	} {
		cfg := testCfg(100)
		mutate(&cfg)
		if _, err := NewSite(cfg, &fakeUploader{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := NewSite(testCfg(100), nil); err == nil {
		t.Error("nil uploader accepted")
	}
}

// The window is a strict FIFO bound: live points never exceed it, and the
// turn counter tracks full turnovers.
func TestWindowEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const window = 60
	site, err := NewSite(testCfg(window), &fakeUploader{})
	if err != nil {
		t.Fatal(err)
	}
	total := 3 * window
	for i := 0; i < total; i++ {
		if err := site.Ingest(data.Blob(rng, geom.Point{0, 0}, 0.25, 1)[0]); err != nil {
			t.Fatal(err)
		}
		if got := site.LiveCount(); got > window {
			t.Fatalf("live %d exceeds window %d", got, window)
		}
	}
	st := site.Stats()
	if site.LiveCount() != window {
		t.Fatalf("final live %d, want %d", site.LiveCount(), window)
	}
	if st.Ingested != uint64(total) || st.Evicted != uint64(total-window) {
		t.Fatalf("ingested %d evicted %d", st.Ingested, st.Evicted)
	}
	if st.Turns != uint64((total-window)/window) {
		t.Fatalf("turns %d", st.Turns)
	}
}

// During warmup the clustering grows — considerable change, uploads. Once
// the window is full and the stream stationary, the change policy goes
// quiet: sliding a window over the same distribution is not considerable
// change.
func TestStationaryStreamGoesQuiet(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	up := &fakeUploader{}
	site, err := NewSite(testCfg(100), up)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, site, rng, geom.Point{0, 0}, 100) // warmup: window fills
	warm := site.Stats().Uploads
	if warm == 0 {
		t.Fatal("no upload during warmup: the server never heard of the site")
	}
	feed(t, site, rng, geom.Point{0, 0}, 500) // 5 window turns, same blob
	steady := site.Stats().Uploads - warm
	if steady > 2 {
		t.Fatalf("stationary stream kept uploading: %d uploads over 5 turns", steady)
	}
	first := up.calls[0]
	if first.delta == nil || !first.delta.Snapshot() {
		t.Fatal("first upload is not a snapshot delta")
	}
	if first.stats == nil || first.stats.Window != 100 {
		t.Fatalf("stream stats not attached: %+v", first.stats)
	}
}

// Distribution shifts trigger uploads, and the deltas chain: consecutive
// sequence numbers, incremental after the first.
func TestShiftTriggersChainedDeltas(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	up := &fakeUploader{}
	site, err := NewSite(testCfg(100), up)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []geom.Point{{0, 0}, {10, 10}, {20, 0}} {
		feed(t, site, rng, c, 200)
	}
	if st := site.Stats(); st.Uploads < 3 || st.Uploads != st.DeltaUploads {
		t.Fatalf("3 distribution shifts: %+v", st)
	}
	for i, call := range up.calls {
		if call.delta == nil {
			t.Fatalf("upload %d without delta", i)
		}
		if want := uint64(i + 1); call.delta.Seq != want {
			t.Fatalf("upload %d has seq %d, want %d", i, call.delta.Seq, want)
		}
		if i > 0 && call.delta.Snapshot() {
			t.Fatalf("upload %d degenerated to a snapshot", i)
		}
	}
}

// Flush uploads unconditionally, even when the change policy would not.
func TestFlushUploadsUnconditionally(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	up := &fakeUploader{}
	site, err := NewSite(testCfg(100), up)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, site, rng, geom.Point{0, 0}, 200)
	before := site.Stats().Uploads
	if err := site.Flush(); err != nil {
		t.Fatal(err)
	}
	if site.Stats().Uploads != before+1 {
		t.Fatal("Flush did not upload")
	}
	last := up.calls[len(up.calls)-1].delta
	if last.Seq != uint64(len(up.calls)) {
		t.Fatalf("flush delta seq %d breaks the chain of %d uploads", last.Seq, len(up.calls))
	}
}

// A resync demand makes the site retry with a snapshot on the spot.
func TestResyncRetriesWithSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	up := &fakeUploader{}
	site, err := NewSite(testCfg(100), up)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, site, rng, geom.Point{0, 0}, 200) // chain established
	up.script = []respond{func(u *upload) (*transport.UploadResult, error) {
		return &transport.UploadResult{Mode: transport.ModeDelta, Resync: true}, nil
	}}
	calls := len(up.calls)
	if err := site.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := len(up.calls) - calls; got != 2 {
		t.Fatalf("%d uploads for the resync round, want 2 (rejected, snapshot retry)", got)
	}
	retry := up.calls[len(up.calls)-1].delta
	if !retry.Snapshot() || retry.Seq != 1 {
		t.Fatalf("retry is not a fresh snapshot: base %d seq %d", retry.BaseSeq, retry.Seq)
	}
	if st := site.Stats(); st.Resyncs != 1 {
		t.Fatalf("stats after resync: %+v", st)
	}
	// The re-established chain continues from the snapshot.
	if err := site.Flush(); err != nil {
		t.Fatal(err)
	}
	if next := up.calls[len(up.calls)-1].delta; next.Snapshot() || next.Seq != 2 {
		t.Fatalf("post-resync delta: base %d seq %d", next.BaseSeq, next.Seq)
	}
}

// An upload fault leaves the tracker uncommitted: the retry re-derives the
// same sequence number, so the server never sees a gap.
func TestUploadFaultDoesNotAdvanceChain(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	fault := errors.New("server unreachable")
	up := &fakeUploader{}
	site, err := NewSite(testCfg(100), up)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, site, rng, geom.Point{0, 0}, 200)
	uploads := site.Stats().Uploads
	up.script = []respond{func(u *upload) (*transport.UploadResult, error) {
		return nil, fault
	}}
	if err := site.Flush(); !errors.Is(err, fault) {
		t.Fatalf("Flush swallowed the fault: %v", err)
	}
	if st := site.Stats(); st.Uploads != uploads {
		t.Fatalf("failed upload counted: %d → %d", uploads, st.Uploads)
	}
	if err := site.Flush(); err != nil {
		t.Fatal(err)
	}
	n := len(up.calls)
	if failed, retry := up.calls[n-2].delta, up.calls[n-1].delta; retry.Seq != failed.Seq {
		t.Fatalf("failed upload advanced the chain: seq %d then %d", failed.Seq, retry.Seq)
	}
}

// When the server downgrades to full uploads the site keeps working; the
// delta chain simply stops counting.
func TestFullModeFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	full := func(u *upload) (*transport.UploadResult, error) {
		return &transport.UploadResult{Mode: transport.ModeTimedFull}, nil
	}
	// Every call answers full-mode: script one entry per possible upload.
	up := &fakeUploader{}
	for i := 0; i < 64; i++ {
		up.script = append(up.script, full)
	}
	site, err := NewSite(testCfg(100), up)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, site, rng, geom.Point{0, 0}, 200)
	if err := site.Flush(); err != nil {
		t.Fatal(err)
	}
	st := site.Stats()
	if st.Uploads < 1 || st.DeltaUploads != 0 {
		t.Fatalf("full-mode stats: %+v", st)
	}
	for i, call := range up.calls {
		if call.full == nil {
			t.Fatalf("upload %d without the full model", i)
		}
	}
}

// Run drains a channel and flushes.
func TestRunDrainsAndFlushes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	up := &fakeUploader{}
	site, err := NewSite(testCfg(50), up)
	if err != nil {
		t.Fatal(err)
	}
	src := make(chan geom.Point, 120)
	for i := 0; i < 120; i++ {
		src <- data.Blob(rng, geom.Point{0, 0}, 0.25, 1)[0]
	}
	close(src)
	if err := site.Run(src); err != nil {
		t.Fatal(err)
	}
	st := site.Stats()
	if st.Ingested != 120 || st.Uploads < 1 {
		t.Fatalf("after Run: %+v", st)
	}
}
