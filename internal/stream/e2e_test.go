package stream

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/data"
	idbdc "github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
	"github.com/dbdc-go/dbdc/internal/model"
	"github.com/dbdc-go/dbdc/internal/serve"
	"github.com/dbdc-go/dbdc/internal/transport"
)

// repKey identifies a global representative across model versions the same
// way the server's stable-id matcher does: origin site plus exact point.
func repKey(r model.GlobalRepresentative) string {
	return r.SiteID + "|" + fmt.Sprint([]float64(r.Point))
}

// TestStreamingEndToEnd is the acceptance run for the always-on streaming
// round: two streaming sites ingest drifting streams over sliding windows
// (≥5 full window turns each) and upload deltas; a third, legacy site
// participates with plain full-model exchanges; the update server folds
// everything on a debounced schedule and hot-swaps the serving registry,
// which classify clients read over TCP throughout. Run under -race in CI.
//
// Checked invariants:
//   - the server rebuilds ≥3 global versions and the registry hot-swaps
//     each one; classify replies carry monotonically non-decreasing
//     versions;
//   - global cluster ids are stable: across consecutive published models,
//     any cluster pair sharing a mutual majority (>50%) of representatives
//     keeps its id;
//   - the legacy site's representatives appear in the global model (the
//     downgrade/mixed path works end to end).
func TestStreamingEndToEnd(t *testing.T) {
	cfg := idbdc.Config{Local: dbscan.Params{Eps: 0.5, MinPts: 5}}
	srv, err := transport.NewUpdateServer("127.0.0.1:0", cfg, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetDebounce(10 * time.Millisecond)

	// The registry is fed from the rebuild hook; published models are also
	// recorded for the stable-id audit below.
	reg := serve.NewRegistry(index.KindKDTree)
	publish := reg.PublishFunc(func(err error) { t.Errorf("publish: %v", err) })
	var pubMu sync.Mutex
	var published []*model.GlobalModel
	srv.SetOnGlobal(func(g *model.GlobalModel) {
		pubMu.Lock()
		published = append(published, g)
		pubMu.Unlock()
		publish(g)
	})
	go srv.Serve(0)

	front, err := serve.NewServer("127.0.0.1:0", serve.ServerConfig{Registry: reg, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()
	go front.Serve()

	// A classify reader polls throughout: versions must never go
	// backwards while the models hot-swap underneath.
	readerDone := make(chan struct{})
	stopReader := make(chan struct{})
	go func() {
		defer close(readerDone)
		client, err := serve.Dial(front.Addr(), 5*time.Second)
		if err != nil {
			t.Errorf("classify dial: %v", err)
			return
		}
		defer client.Close()
		var last uint64
		for {
			select {
			case <-stopReader:
				return
			default:
			}
			if reg.Current() == nil {
				continue // nothing published yet
			}
			_, version, err := client.Classify(geom.Point{0, 0})
			if err != nil {
				t.Errorf("classify: %v", err)
				return
			}
			if version < last {
				t.Errorf("classify version went backwards: %d after %d", version, last)
				return
			}
			last = version
			time.Sleep(time.Millisecond)
		}
	}()

	// Two streaming sites. Each stream interleaves a persistent anchor
	// blob with a blob that relocates every window turn — so the local
	// clustering drifts enough to keep the change policy busy while the
	// anchor cluster persists across every version.
	const window = 120
	const turns = 6
	var wg sync.WaitGroup
	siteErrs := make(chan error, 2)
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(40 + s)))
			base := float64(s * 100)
			site, err := NewSite(Config{
				SiteID:     fmt.Sprintf("stream-%d", s),
				Cluster:    cfg,
				Window:     window,
				Threshold:  0.15,
				CheckEvery: 24,
			}, &transport.StreamClient{Addr: srv.Addr(), Timeout: 5 * time.Second})
			if err != nil {
				siteErrs <- err
				return
			}
			for turn := 0; turn < turns+1; turn++ {
				moving := geom.Point{base + 12 + 4*float64(turn), 12}
				for i := 0; i < window; i++ {
					center := geom.Point{base, 0} // the anchor
					if i%2 == 0 {
						center = moving
					}
					if err := site.Ingest(data.Blob(rng, center, 0.25, 1)[0]); err != nil {
						siteErrs <- fmt.Errorf("site %d: %w", s, err)
						return
					}
				}
			}
			if err := site.Flush(); err != nil {
				siteErrs <- fmt.Errorf("site %d flush: %w", s, err)
				return
			}
			st := site.Stats()
			if st.Turns < 5 {
				siteErrs <- fmt.Errorf("site %d made only %d window turns", s, st.Turns)
				return
			}
			if st.DeltaUploads == 0 {
				siteErrs <- fmt.Errorf("site %d never uploaded a delta", s)
				return
			}
			siteErrs <- nil
		}(s)
	}

	// The legacy site uploads full models mid-run, twice, via the
	// pre-streaming exchange.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		var pts []geom.Point
		for e := 0; e < 2; e++ {
			pts = append(pts, data.Blob(rng, geom.Point{500, float64(e * 20)}, 0.25, 150)...)
			out, err := idbdc.LocalStep("legacy", pts, cfg)
			if err == nil {
				_, _, _, err = transport.Exchange(srv.Addr(), out.Model, 5*time.Second)
			}
			if err != nil {
				t.Errorf("legacy site: %v", err)
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()

	wg.Wait()
	for i := 0; i < 2; i++ {
		if err := <-siteErrs; err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	close(stopReader)
	<-readerDone

	if v := srv.Version(); v < 3 {
		t.Fatalf("server rebuilt only %d global versions", v)
	}
	if reg.Published() < 3 {
		t.Fatalf("registry hot-swapped only %d versions", reg.Published())
	}
	if err := srv.LastRebuildErr(); err != nil {
		t.Fatal(err)
	}

	pubMu.Lock()
	defer pubMu.Unlock()
	if len(published) < 3 {
		t.Fatalf("only %d published models", len(published))
	}
	// The legacy site made it into the fold.
	finalSites := make(map[string]bool)
	for _, r := range published[len(published)-1].Reps {
		finalSites[r.SiteID] = true
	}
	if !finalSites["legacy"] || !finalSites["stream-0"] || !finalSites["stream-1"] {
		t.Fatalf("final global model misses sites: %v", finalSites)
	}

	// Stable-id audit over consecutive versions: whenever a cluster of the
	// newer model shares a mutual majority of representatives with a
	// cluster of the older one, it must keep that cluster's id.
	audited := 0
	for v := 1; v < len(published); v++ {
		prev, cur := published[v-1], published[v]
		prevOf := make(map[string]cluster.ID, len(prev.Reps))
		prevSize := make(map[cluster.ID]int)
		for _, r := range prev.Reps {
			prevOf[repKey(r)] = r.GlobalCluster
			prevSize[r.GlobalCluster]++
		}
		curSize := make(map[cluster.ID]int)
		overlap := make(map[[2]cluster.ID]int)
		for _, r := range cur.Reps {
			curSize[r.GlobalCluster]++
			if p, ok := prevOf[repKey(r)]; ok {
				overlap[[2]cluster.ID{r.GlobalCluster, p}]++
			}
		}
		for pair, n := range overlap {
			c, p := pair[0], pair[1]
			if 2*n > curSize[c] && 2*n > prevSize[p] {
				audited++
				if c != p {
					t.Fatalf("version %d: cluster with mutual-majority overlap renamed %d → %d", v, p, c)
				}
			}
		}
	}
	if audited == 0 {
		t.Fatal("stable-id audit never fired: no cluster persisted between versions")
	}
}
