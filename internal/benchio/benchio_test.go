package benchio

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/dbdc-go/dbdc
cpu: Imaginary CPU @ 3.00GHz
BenchmarkLocalClustering/fast/grid-8         	     100	  12345678 ns/op	    2048 B/op	      12 allocs/op	   50000 range-queries/op
BenchmarkLocalClustering/naive/grid-8        	      50	  24691356 ns/op	  409600 B/op	   50012 allocs/op
BenchmarkFig7/DBDC_Scor/n=10000-8            	      10	 104729000 ns/op	      42.5 distms/op
PASS
ok  	github.com/dbdc-go/dbdc	12.345s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" {
		t.Fatalf("environment = %q/%q", rep.GoOS, rep.GoArch)
	}
	if rep.CPU != "Imaginary CPU @ 3.00GHz" {
		t.Fatalf("cpu = %q", rep.CPU)
	}
	if len(rep.Packages) != 1 || rep.Packages[0] != "github.com/dbdc-go/dbdc" {
		t.Fatalf("packages = %v", rep.Packages)
	}
	if len(rep.Entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(rep.Entries))
	}
	fast := rep.Entry("BenchmarkLocalClustering/fast/grid")
	if fast == nil {
		t.Fatal("fast entry not found")
	}
	if fast.Iterations != 100 || fast.NsPerOp != 12345678 {
		t.Fatalf("fast = %+v", fast)
	}
	if fast.BytesPerOp != 2048 || fast.AllocsPerOp != 12 {
		t.Fatalf("fast memory columns = %v B/op, %v allocs/op", fast.BytesPerOp, fast.AllocsPerOp)
	}
	if got := fast.Metrics["range-queries/op"]; got != 50000 {
		t.Fatalf("range-queries/op = %v", got)
	}
	fig7 := rep.Entry("BenchmarkFig7/DBDC_Scor/n=10000")
	if fig7 == nil {
		t.Fatal("fig7 entry not found")
	}
	if fig7.BytesPerOp != -1 || fig7.AllocsPerOp != -1 {
		t.Fatalf("missing -benchmem columns must stay -1, got %v/%v", fig7.BytesPerOp, fig7.AllocsPerOp)
	}
	if got := fig7.Metrics["distms/op"]; got != 42.5 {
		t.Fatalf("distms/op = %v", got)
	}
}

func TestParseIgnoresNonResultLines(t *testing.T) {
	in := "BenchmarkFoo\nBenchmarkBar-8 not-a-number 1 ns/op\n--- BENCH: BenchmarkBaz\n"
	rep, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 0 {
		t.Fatalf("entries = %+v, want none", rep.Entries)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	rep.Rev = "abc1234"
	var buf bytes.Buffer
	if err := Write(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(buf.Bytes(), []byte("\n")) {
		t.Fatal("output must end with a newline")
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Rev != "abc1234" || len(back.Entries) != len(rep.Entries) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Entries[0].Metrics["range-queries/op"] != 50000 {
		t.Fatal("round trip lost custom metrics")
	}
}

func TestHostMetadata(t *testing.T) {
	a := &Report{
		GoOS: "linux", GoArch: "amd64", CPU: "Xeon",
		NumCPU: 8, GoMaxProcs: 8, KernelDispatch: "unrolled[2,3,4,8]+w4",
	}
	want := "linux/amd64, Xeon, 8 CPU, GOMAXPROCS 8, kernels unrolled[2,3,4,8]+w4"
	if got := a.Host(); got != want {
		t.Errorf("Host() = %q, want %q", got, want)
	}
	if got := (&Report{}).Host(); got != "(no host metadata)" {
		t.Errorf("empty Host() = %q", got)
	}

	// The round trip keeps the kernel-dispatch field.
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.KernelDispatch != a.KernelDispatch {
		t.Fatalf("round trip lost kernel dispatch: %+v", back)
	}

	// Mismatches are reported field by field; absent fields never mismatch.
	b := &Report{GoOS: "linux", GoArch: "arm64", NumCPU: 4, KernelDispatch: "scalar"}
	got := HostMismatch(a, b)
	want2 := []string{"goarch", "kernel dispatch", "cpu count"}
	if len(got) != len(want2) {
		t.Fatalf("HostMismatch = %v, want %v", got, want2)
	}
	for i := range got {
		if got[i] != want2[i] {
			t.Fatalf("HostMismatch = %v, want %v", got, want2)
		}
	}
	if m := HostMismatch(a, a); len(m) != 0 {
		t.Fatalf("self mismatch: %v", m)
	}
}

func TestStampHost(t *testing.T) {
	rep := &Report{}
	StampHost(rep)
	if rep.NumCPU < 1 || rep.GoMaxProcs < 1 {
		t.Fatalf("StampHost left parallelism metadata empty: %+v", rep)
	}
	if rep.KernelDispatch == "" || rep.GoOS == "" || rep.GoArch == "" {
		t.Fatalf("StampHost left build metadata empty: %+v", rep)
	}
	// Header-provided platform fields win over the runtime fallback.
	rep2 := &Report{GoOS: "plan9", GoArch: "riscv64"}
	StampHost(rep2)
	if rep2.GoOS != "plan9" || rep2.GoArch != "riscv64" {
		t.Fatalf("StampHost overwrote parsed headers: %+v", rep2)
	}
}

func TestCoreCountWarnings(t *testing.T) {
	eight := &Report{NumCPU: 8}
	four := &Report{NumCPU: 4}
	one := &Report{NumCPU: 1}
	none := &Report{}

	if w := CoreCountWarnings(eight, eight); len(w) != 0 {
		t.Fatalf("same multicore hosts warned: %v", w)
	}
	if w := CoreCountWarnings(eight, four); len(w) != 1 || !strings.Contains(w[0], "different core counts (old 8, new 4)") {
		t.Fatalf("differing core counts: %v", w)
	}
	if w := CoreCountWarnings(one, one); len(w) != 1 || !strings.Contains(w[0], "single-CPU") {
		t.Fatalf("single-CPU hosts: %v", w)
	}
	if w := CoreCountWarnings(none, eight); len(w) != 1 || !strings.Contains(w[0], "old artifact records no core count") {
		t.Fatalf("missing old metadata: %v", w)
	}
	if w := CoreCountWarnings(none, none); len(w) != 2 {
		t.Fatalf("both missing: %v", w)
	}
}
