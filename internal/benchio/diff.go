package benchio

import (
	"fmt"
	"sort"
	"strings"
)

// Verdict classifies one compared benchmark column.
type Verdict string

const (
	// Unchanged: the relative delta stayed within the noise threshold.
	Unchanged Verdict = "unchanged"
	// Improvement: the value dropped by more than the threshold (all
	// compared columns are costs — ns/op, B/op, allocs/op — so down is good).
	Improvement Verdict = "improvement"
	// Regression: the value grew by more than the threshold.
	Regression Verdict = "regression"
	// Added: the entry exists only in the new report.
	Added Verdict = "added"
	// Removed: the entry exists only in the old report.
	Removed Verdict = "removed"
)

// DiffEntry is one compared column of one benchmark present in either
// report.
type DiffEntry struct {
	// Name is the full benchmark name (with the -GOMAXPROCS suffix).
	Name string `json:"name"`
	// Column is the compared unit: "ns/op", "B/op", "allocs/op" or a
	// custom b.ReportMetric unit.
	Column string `json:"column"`
	// Old and New are the column values; NaN-free — Added/Removed rows
	// carry the side that exists and 0 on the other.
	Old float64 `json:"old"`
	New float64 `json:"new"`
	// Delta is (New-Old)/Old; 0 when Old is 0.
	Delta   float64 `json:"delta"`
	Verdict Verdict `json:"verdict"`
}

// DiffResult is the outcome of comparing two reports.
type DiffResult struct {
	// Threshold is the relative noise floor the verdicts used.
	Threshold float64     `json:"threshold"`
	Entries   []DiffEntry `json:"entries"`
	// Regressions and Improvements count the beyond-threshold rows.
	Regressions  int `json:"regressions"`
	Improvements int `json:"improvements"`
}

// DiffOptions tunes Diff.
type DiffOptions struct {
	// Threshold is the relative change below which a delta counts as
	// noise; <= 0 means 0.10 (10%). Single-iteration runs (bench-smoke)
	// are essentially all noise, so callers diffing those should raise it
	// or treat the output as informational.
	Threshold float64
	// Metrics additionally compares every custom b.ReportMetric unit the
	// two entries share. ns/op, B/op and allocs/op are always compared.
	Metrics bool
}

// Diff compares two parsed benchmark reports entry by entry (exact name
// match, the -GOMAXPROCS suffix included) and classifies each shared
// column against the relative noise threshold. Entries present on only
// one side are reported as Added/Removed and never fail a diff. The
// entry order follows the new report, removed entries last.
func Diff(oldRep, newRep *Report, opts DiffOptions) *DiffResult {
	threshold := opts.Threshold
	if threshold <= 0 {
		threshold = 0.10
	}
	res := &DiffResult{Threshold: threshold}
	oldByName := make(map[string]*Entry, len(oldRep.Entries))
	for i := range oldRep.Entries {
		oldByName[oldRep.Entries[i].Name] = &oldRep.Entries[i]
	}
	seen := make(map[string]bool, len(newRep.Entries))
	for i := range newRep.Entries {
		ne := &newRep.Entries[i]
		seen[ne.Name] = true
		oe, ok := oldByName[ne.Name]
		if !ok {
			res.Entries = append(res.Entries, DiffEntry{
				Name: ne.Name, Column: "ns/op", New: ne.NsPerOp, Verdict: Added,
			})
			continue
		}
		res.compare(ne.Name, "ns/op", oe.NsPerOp, ne.NsPerOp)
		if oe.BytesPerOp >= 0 && ne.BytesPerOp >= 0 {
			res.compare(ne.Name, "B/op", oe.BytesPerOp, ne.BytesPerOp)
		}
		if oe.AllocsPerOp >= 0 && ne.AllocsPerOp >= 0 {
			res.compare(ne.Name, "allocs/op", oe.AllocsPerOp, ne.AllocsPerOp)
		}
		if opts.Metrics {
			units := make([]string, 0, len(ne.Metrics))
			for unit := range ne.Metrics {
				if _, shared := oe.Metrics[unit]; shared {
					units = append(units, unit)
				}
			}
			sort.Strings(units)
			for _, unit := range units {
				res.compare(ne.Name, unit, oe.Metrics[unit], ne.Metrics[unit])
			}
		}
	}
	for i := range oldRep.Entries {
		if oe := &oldRep.Entries[i]; !seen[oe.Name] {
			res.Entries = append(res.Entries, DiffEntry{
				Name: oe.Name, Column: "ns/op", Old: oe.NsPerOp, Verdict: Removed,
			})
		}
	}
	return res
}

// compare appends one classified column row.
func (r *DiffResult) compare(name, column string, oldVal, newVal float64) {
	e := DiffEntry{Name: name, Column: column, Old: oldVal, New: newVal}
	if oldVal != 0 {
		e.Delta = (newVal - oldVal) / oldVal
	}
	switch {
	case e.Delta > r.Threshold:
		e.Verdict = Regression
		r.Regressions++
	case e.Delta < -r.Threshold:
		e.Verdict = Improvement
		r.Improvements++
	default:
		e.Verdict = Unchanged
	}
	r.Entries = append(r.Entries, e)
}

// String renders the diff as an aligned table with a one-line summary,
// the cmd/benchdiff output format.
func (r *DiffResult) String() string {
	var b strings.Builder
	w := 4
	for _, e := range r.Entries {
		if len(e.Name) > w {
			w = len(e.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s  %-11s  %14s  %14s  %8s  %s\n", w, "name", "column", "old", "new", "delta", "verdict")
	for _, e := range r.Entries {
		switch e.Verdict {
		case Added:
			fmt.Fprintf(&b, "%-*s  %-11s  %14s  %14.4g  %8s  %s\n", w, e.Name, e.Column, "-", e.New, "-", e.Verdict)
		case Removed:
			fmt.Fprintf(&b, "%-*s  %-11s  %14.4g  %14s  %8s  %s\n", w, e.Name, e.Column, e.Old, "-", "-", e.Verdict)
		default:
			fmt.Fprintf(&b, "%-*s  %-11s  %14.4g  %14.4g  %+7.1f%%  %s\n", w, e.Name, e.Column, e.Old, e.New, 100*e.Delta, e.Verdict)
		}
	}
	fmt.Fprintf(&b, "%d regression(s), %d improvement(s) beyond ±%.0f%%\n",
		r.Regressions, r.Improvements, 100*r.Threshold)
	return b.String()
}
