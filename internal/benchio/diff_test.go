package benchio

import (
	"strings"
	"testing"
)

func rep(entries ...Entry) *Report { return &Report{Entries: entries} }

func entry(name string, ns float64) Entry {
	return Entry{Name: name, Iterations: 10, NsPerOp: ns, BytesPerOp: -1, AllocsPerOp: -1}
}

func TestDiffVerdicts(t *testing.T) {
	oldRep := rep(
		entry("BenchmarkA-8", 100),
		entry("BenchmarkB-8", 100),
		entry("BenchmarkC-8", 100),
		entry("BenchmarkGone-8", 100),
	)
	newRep := rep(
		entry("BenchmarkA-8", 105), // +5% — inside the 10% noise floor
		entry("BenchmarkB-8", 130), // +30% — regression
		entry("BenchmarkC-8", 60),  // -40% — improvement
		entry("BenchmarkNew-8", 42),
	)
	res := Diff(oldRep, newRep, DiffOptions{Threshold: 0.10})
	want := map[string]Verdict{
		"BenchmarkA-8":    Unchanged,
		"BenchmarkB-8":    Regression,
		"BenchmarkC-8":    Improvement,
		"BenchmarkNew-8":  Added,
		"BenchmarkGone-8": Removed,
	}
	if len(res.Entries) != len(want) {
		t.Fatalf("got %d rows, want %d:\n%s", len(res.Entries), len(want), res)
	}
	for _, e := range res.Entries {
		if e.Verdict != want[e.Name] {
			t.Errorf("%s: verdict %s, want %s", e.Name, e.Verdict, want[e.Name])
		}
	}
	if res.Regressions != 1 || res.Improvements != 1 {
		t.Fatalf("regressions=%d improvements=%d, want 1/1", res.Regressions, res.Improvements)
	}
	// Added/removed entries never count as regressions.
	out := res.String()
	if !strings.Contains(out, "1 regression(s), 1 improvement(s)") {
		t.Errorf("summary line missing:\n%s", out)
	}
}

func TestDiffDefaultThreshold(t *testing.T) {
	res := Diff(rep(entry("BenchmarkA-8", 100)), rep(entry("BenchmarkA-8", 109)), DiffOptions{})
	if res.Threshold != 0.10 {
		t.Fatalf("default threshold = %v", res.Threshold)
	}
	if res.Regressions != 0 {
		t.Fatalf("+9%% counted as a regression under the 10%% default:\n%s", res)
	}
}

func TestDiffMemoryColumns(t *testing.T) {
	oldE := entry("BenchmarkA-8", 100)
	oldE.BytesPerOp, oldE.AllocsPerOp = 1000, 10
	newE := entry("BenchmarkA-8", 100)
	newE.BytesPerOp, newE.AllocsPerOp = 2000, 10
	res := Diff(rep(oldE), rep(newE), DiffOptions{Threshold: 0.10})
	var cols []string
	for _, e := range res.Entries {
		cols = append(cols, e.Column+":"+string(e.Verdict))
	}
	got := strings.Join(cols, " ")
	if got != "ns/op:unchanged B/op:regression allocs/op:unchanged" {
		t.Fatalf("columns = %s", got)
	}
}

func TestDiffCustomMetrics(t *testing.T) {
	oldE := entry("BenchmarkA-8", 100)
	oldE.Metrics = map[string]float64{"range-queries/op": 1000, "old-only/op": 5}
	newE := entry("BenchmarkA-8", 100)
	newE.Metrics = map[string]float64{"range-queries/op": 2000, "new-only/op": 7}
	// Without opts.Metrics custom columns are ignored.
	if res := Diff(rep(oldE), rep(newE), DiffOptions{}); len(res.Entries) != 1 {
		t.Fatalf("custom metrics compared without -metrics:\n%s", res)
	}
	res := Diff(rep(oldE), rep(newE), DiffOptions{Metrics: true})
	if len(res.Entries) != 2 {
		t.Fatalf("want ns/op + shared metric, got:\n%s", res)
	}
	if res.Entries[1].Column != "range-queries/op" || res.Entries[1].Verdict != Regression {
		t.Fatalf("shared metric row = %+v", res.Entries[1])
	}
}

func TestDiffZeroOldValue(t *testing.T) {
	// A zero baseline must not divide by zero or fabricate a verdict.
	res := Diff(rep(entry("BenchmarkA-8", 0)), rep(entry("BenchmarkA-8", 50)), DiffOptions{})
	if res.Entries[0].Delta != 0 || res.Entries[0].Verdict != Unchanged {
		t.Fatalf("zero-baseline row = %+v", res.Entries[0])
	}
}

func TestDiffRoundTripThroughJSON(t *testing.T) {
	// A report written by Write must come back identical through Read —
	// the committed-artifact path cmd/benchdiff exercises.
	rep1, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := Write(&buf, rep1); err != nil {
		t.Fatal(err)
	}
	rep2, err := Read(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	res := Diff(rep1, rep2, DiffOptions{Metrics: true})
	if res.Regressions != 0 || res.Improvements != 0 {
		t.Fatalf("self-diff not clean:\n%s", res)
	}
	for _, e := range res.Entries {
		if e.Verdict != Unchanged {
			t.Fatalf("self-diff row %s %s = %s", e.Name, e.Column, e.Verdict)
		}
	}
}
