// Package benchio turns the text output of `go test -bench` into a
// machine-readable JSON report, the format behind the committed
// BENCH_<rev>.json artifacts. The parser understands the standard benchmark
// line grammar — name, iteration count, then (value, unit) pairs — so the
// built-in ns/op, B/op and allocs/op columns land in dedicated fields while
// every custom b.ReportMetric unit (range-queries/op, distms/op, …) is kept
// in a generic metrics map. Header lines (goos, goarch, cpu, pkg) populate
// the report environment so two artifacts are comparable at a glance.
//
// The text format itself stays the interchange surface: `go test -bench`
// output is also what benchstat consumes, so a pipeline can tee the raw text
// to benchstat and the JSON to the repository without running the
// benchmarks twice.
package benchio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/dbdc-go/dbdc/internal/geom"
)

// Entry is one parsed benchmark result line.
type Entry struct {
	// Name is the full benchmark name including sub-benchmark path and the
	// trailing -GOMAXPROCS suffix, e.g. "BenchmarkLocalClustering/fast/grid-8".
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the ns/op column.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are the -benchmem columns; -1 when the
	// benchmark did not report them.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds every additional unit reported via b.ReportMetric,
	// keyed by unit string (e.g. "range-queries/op").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is a full benchmark run: environment plus parsed entries.
type Report struct {
	// Rev is the source revision the run measured (git short hash).
	Rev string `json:"rev,omitempty"`
	// Timestamp is the RFC 3339 creation time of the report.
	Timestamp string `json:"timestamp"`
	GoOS      string `json:"goos,omitempty"`
	GoArch    string `json:"goarch,omitempty"`
	CPU       string `json:"cpu,omitempty"`
	// NumCPU and GoMaxProcs describe the producing host's parallelism —
	// essential context for the parallel/workers=N entries (a single-CPU
	// host cannot show wall-clock speedup from intra-site workers). Filled
	// by cmd/benchjson, not parsed from the text.
	NumCPU     int `json:"num_cpu,omitempty"`
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	// KernelDispatch names the distance-kernel build the run measured
	// (geom.KernelDispatch(): the unrolled dispatch table or "scalar").
	// Filled by cmd/benchjson; artifacts from different kernel builds are
	// not comparable and benchdiff warns when the names differ.
	KernelDispatch string `json:"kernel_dispatch,omitempty"`
	// Packages lists every pkg: header seen in the input.
	Packages []string `json:"packages,omitempty"`
	Entries  []Entry  `json:"entries"`
}

// Host renders the recorded host metadata in one line — platform, CPU
// model, core count, GOMAXPROCS, kernel dispatch — omitting fields the
// report does not carry. cmd/benchdiff prints this for both sides of a
// comparison so artifacts from different hosts are never silently compared.
func (r *Report) Host() string {
	parts := make([]string, 0, 5)
	if r.GoOS != "" || r.GoArch != "" {
		parts = append(parts, strings.TrimSuffix(r.GoOS+"/"+r.GoArch, "/"))
	}
	if r.CPU != "" {
		parts = append(parts, r.CPU)
	}
	if r.NumCPU > 0 {
		parts = append(parts, fmt.Sprintf("%d CPU", r.NumCPU))
	}
	if r.GoMaxProcs > 0 {
		parts = append(parts, fmt.Sprintf("GOMAXPROCS %d", r.GoMaxProcs))
	}
	if r.KernelDispatch != "" {
		parts = append(parts, "kernels "+r.KernelDispatch)
	}
	if len(parts) == 0 {
		return "(no host metadata)"
	}
	return strings.Join(parts, ", ")
}

// StampHost fills the report's host-parallelism metadata from the running
// process: core count, GOMAXPROCS, the distance-kernel build, and the
// goos/goarch fallback when the benchmark text did not carry the headers.
// Every producer of artifacts — cmd/benchjson, the loadgen report, the
// networked RoundReport conversion — stamps through this one helper so no
// artifact ships without the context benchdiff needs to judge
// comparability (see CoreCountWarnings).
func StampHost(rep *Report) {
	rep.NumCPU = runtime.NumCPU()
	rep.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.KernelDispatch = geom.KernelDispatch()
	if rep.GoOS == "" {
		rep.GoOS = runtime.GOOS
	}
	if rep.GoArch == "" {
		rep.GoArch = runtime.GOARCH
	}
}

// CoreCountWarnings explains, in complete sentences, why the parallelism-
// sensitive entries of two artifacts (parallel/workers=N, shard/<kind>,
// LoadgenClassify) may not be comparable: a side missing core-count
// metadata entirely, the two sides measured on different core counts, or
// both sides measured on a single-CPU host where worker scaling can only
// show overhead, never speedup. HostMismatch flags the raw field
// difference; these messages are the prominent human-readable version
// cmd/benchdiff prints alongside.
func CoreCountWarnings(a, b *Report) []string {
	var warns []string
	if a.NumCPU == 0 {
		warns = append(warns, "old artifact records no core count (num_cpu); worker-scaling deltas cannot be validated against the host")
	}
	if b.NumCPU == 0 {
		warns = append(warns, "new artifact records no core count (num_cpu); worker-scaling deltas cannot be validated against the host")
	}
	if a.NumCPU > 0 && b.NumCPU > 0 {
		if a.NumCPU != b.NumCPU {
			warns = append(warns, fmt.Sprintf(
				"artifacts were measured on different core counts (old %d, new %d) — parallel worker and shard entries are not comparable",
				a.NumCPU, b.NumCPU))
		} else if a.NumCPU == 1 {
			warns = append(warns, "both artifacts come from a single-CPU host: parallel worker and shard entries measure coordination overhead, not speedup")
		}
	}
	return warns
}

// HostMismatch lists the host-metadata fields on which the two reports
// disagree (both sides present and different). A non-empty result means
// the artifacts were produced under different conditions and their deltas
// are not meaningful as measurements.
func HostMismatch(a, b *Report) []string {
	var fields []string
	differ := func(name, x, y string) {
		if x != "" && y != "" && x != y {
			fields = append(fields, name)
		}
	}
	differ("goos", a.GoOS, b.GoOS)
	differ("goarch", a.GoArch, b.GoArch)
	differ("cpu", a.CPU, b.CPU)
	differ("kernel dispatch", a.KernelDispatch, b.KernelDispatch)
	if a.NumCPU > 0 && b.NumCPU > 0 && a.NumCPU != b.NumCPU {
		fields = append(fields, "cpu count")
	}
	if a.GoMaxProcs > 0 && b.GoMaxProcs > 0 && a.GoMaxProcs != b.GoMaxProcs {
		fields = append(fields, "GOMAXPROCS")
	}
	return fields
}

// Parse reads `go test -bench` text output and returns the report. Lines
// that are neither benchmark results nor recognised headers are ignored, so
// the full combined output of a multi-package run parses cleanly.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{Timestamp: time.Now().UTC().Format(time.RFC3339)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Packages = append(rep.Packages, strings.TrimSpace(strings.TrimPrefix(line, "pkg:")))
		case strings.HasPrefix(line, "Benchmark"):
			e, ok, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			if ok {
				rep.Entries = append(rep.Entries, e)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseLine parses one benchmark result line. ok is false for lines that
// start with "Benchmark" but are not result lines (e.g. a bare name echoed
// by -v).
func parseLine(line string) (Entry, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Entry{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false, nil
	}
	e := Entry{Name: fields[0], Iterations: iters, BytesPerOp: -1, AllocsPerOp: -1}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false, fmt.Errorf("benchio: bad value %q in %q: %w", fields[i], line, err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = val
		case "B/op":
			e.BytesPerOp = val
		case "allocs/op":
			e.AllocsPerOp = val
		default:
			if e.Metrics == nil {
				e.Metrics = make(map[string]float64)
			}
			e.Metrics[unit] = val
		}
	}
	return e, true, nil
}

// Write serialises the report as indented JSON with a trailing newline,
// the exact layout of the committed BENCH_<rev>.json files.
func Write(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Read decodes a JSON report previously produced by Write — the inverse
// used by cmd/benchdiff to load committed BENCH_<rev>.json artifacts.
func Read(r io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("benchio: decoding report: %w", err)
	}
	return &rep, nil
}

// Entry returns the first entry whose name starts with prefix (names carry
// a -GOMAXPROCS suffix, so prefix matching is the ergonomic lookup), or nil.
func (r *Report) Entry(prefix string) *Entry {
	for i := range r.Entries {
		if strings.HasPrefix(r.Entries[i].Name, prefix) {
			return &r.Entries[i]
		}
	}
	return nil
}
