package viz

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
)

func TestScatterValidation(t *testing.T) {
	pts := []geom.Point{{0, 0}}
	labels := cluster.Labeling{0}
	if _, err := Scatter(pts, cluster.Labeling{0, 1}, 10, 10); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Scatter(pts, labels, 1, 10); err == nil {
		t.Error("tiny grid accepted")
	}
	if _, err := Scatter(nil, nil, 10, 10); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Scatter([]geom.Point{{1}}, labels, 10, 10); err == nil {
		t.Error("1-d input accepted")
	}
}

func TestScatterCorners(t *testing.T) {
	// Four corner points with distinct clusters land in the grid corners.
	pts := []geom.Point{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	labels := cluster.Labeling{0, 1, 2, 3}
	out, err := Scatter(pts, labels, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out, "\n")
	// Frame + 3 rows + frame + caption.
	if lines[0] != "+-----+" {
		t.Fatalf("top frame = %q", lines[0])
	}
	// y grows upwards: row 1 is the TOP, so clusters 2 (0,1) and 3 (1,1).
	if lines[1] != "|2   3|" {
		t.Fatalf("top row = %q", lines[1])
	}
	if lines[3] != "|0   1|" {
		t.Fatalf("bottom row = %q", lines[3])
	}
	if !strings.Contains(lines[5], "4 points, 4 clusters, 0 noise") {
		t.Fatalf("caption = %q", lines[5])
	}
}

func TestScatterNoiseAndMajority(t *testing.T) {
	// All points share one cell: the majority cluster glyph must win over
	// noise and over the minority cluster.
	pts := []geom.Point{{0, 0}, {0, 0}, {0, 0}, {0, 0}}
	labels := cluster.Labeling{cluster.Noise, 1, 1, 0}
	out, err := Scatter(pts, labels, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1") {
		t.Fatalf("majority glyph missing:\n%s", out)
	}
	if strings.Contains(out, ".") && strings.Count(out, ".") > 6 {
		// Dots appear in the caption floats; just ensure no noise cell.
		t.Fatalf("noise overruled a cluster:\n%s", out)
	}
}

func TestScatterPureNoise(t *testing.T) {
	pts := []geom.Point{{0, 0}, {2, 2}}
	labels := cluster.Labeling{cluster.Noise, cluster.Noise}
	out, err := Scatter(pts, labels, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, string(noiseGlyph)) {
		t.Fatalf("noise glyph missing:\n%s", out)
	}
	if !strings.Contains(out, "0 clusters, 2 noise") {
		t.Fatalf("caption wrong:\n%s", out)
	}
}

func TestScatterDegenerateSpan(t *testing.T) {
	// All points on a vertical line: zero x-span must not divide by zero.
	pts := []geom.Point{{1, 0}, {1, 5}, {1, 10}}
	labels := cluster.Labeling{0, 0, 0}
	if _, err := Scatter(pts, labels, 8, 8); err != nil {
		t.Fatal(err)
	}
}

func TestScatterManyClusterGlyphCycle(t *testing.T) {
	// Cluster ids beyond the glyph alphabet wrap around instead of
	// panicking.
	pts := []geom.Point{{0, 0}, {1, 1}}
	labels := cluster.Labeling{cluster.ID(len(clusterGlyphs) + 1), 0}
	out, err := Scatter(pts, labels, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1") { // (len+1) % len == 1
		t.Fatalf("glyph cycling failed:\n%s", out)
	}
}

// Property (testing/quick): Scatter never panics and always produces a
// well-framed plot on arbitrary finite input.
func TestQuickScatterRobust(t *testing.T) {
	f := func(coords [][2]float64, rawLabels []int8, w8, h8 uint8) bool {
		if len(coords) == 0 {
			return true
		}
		pts := make([]geom.Point, len(coords))
		labels := make(cluster.Labeling, len(coords))
		for i, c := range coords {
			pts[i] = geom.Point{c[0], c[1]}
			if !pts[i].IsFinite() {
				pts[i] = geom.Point{0, 0}
			}
			if i < len(rawLabels) && rawLabels[i] >= 0 {
				labels[i] = cluster.ID(rawLabels[i])
			} else {
				labels[i] = cluster.Noise
			}
		}
		width := 2 + int(w8)%60
		height := 2 + int(h8)%30
		out, err := Scatter(pts, labels, width, height)
		if err != nil {
			return false
		}
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		// Frame + height rows + frame + caption.
		if len(lines) != height+3 {
			return false
		}
		for _, l := range lines[1 : height+1] {
			if len([]rune(l)) != width+2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
