package viz

import (
	"fmt"
	"math"
	"strings"
)

// ReachabilityPlot renders an OPTICS reachability plot as an ASCII bar
// chart: one column per position of the cluster ordering (downsampled to
// the requested width), bar height proportional to the reachability.
// Valleys are clusters, peaks are the separations an analyst cuts at.
// Undefined (infinite) reachabilities render as full-height '!' columns.
// An optional cut line is drawn as a row of '-' markers at the cut value.
func ReachabilityPlot(reach []float64, width, height int, cut float64) (string, error) {
	if len(reach) == 0 {
		return "", fmt.Errorf("viz: empty reachability plot")
	}
	if width < 2 || height < 2 {
		return "", fmt.Errorf("viz: grid %dx%d too small", width, height)
	}
	if width > len(reach) {
		width = len(reach)
	}
	// Downsample: each column shows the maximum of its bucket (peaks are
	// what the analyst must not lose).
	cols := make([]float64, width)
	for c := 0; c < width; c++ {
		lo := c * len(reach) / width
		hi := (c + 1) * len(reach) / width
		if hi <= lo {
			hi = lo + 1
		}
		max := 0.0
		for _, v := range reach[lo:hi] {
			if math.IsInf(v, 1) {
				max = math.Inf(1)
				break
			}
			if v > max {
				max = v
			}
		}
		cols[c] = max
	}
	// Scale to the largest finite value (or the cut, whichever is larger).
	scale := cut
	for _, v := range cols {
		if !math.IsInf(v, 1) && v > scale {
			scale = v
		}
	}
	if scale <= 0 {
		scale = 1
	}
	cutRow := -1
	if cut > 0 {
		cutRow = int(cut / scale * float64(height-1))
		if cutRow >= height {
			cutRow = height - 1
		}
	}
	var b strings.Builder
	for row := height - 1; row >= 0; row-- {
		for c := 0; c < width; c++ {
			var barTop int
			infinite := math.IsInf(cols[c], 1)
			if infinite {
				barTop = height - 1
			} else {
				barTop = int(cols[c] / scale * float64(height-1))
			}
			switch {
			case infinite && row <= barTop:
				b.WriteByte('!')
			case row <= barTop && cols[c] > 0:
				b.WriteByte('#')
			case row == cutRow:
				b.WriteByte('-')
			default:
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	if cut > 0 {
		fmt.Fprintf(&b, "scale: 0..%.3g, cut at %.3g ('-')\n", scale, cut)
	} else {
		fmt.Fprintf(&b, "scale: 0..%.3g\n", scale)
	}
	return b.String(), nil
}
