// Package viz renders clusterings as ASCII scatter plots — the terminal
// counterpart of the paper's Figure 6, used by cmd/dbdc -plot and handy
// when eyeballing why a quality score moved.
package viz

import (
	"fmt"
	"strings"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
)

// clusterGlyphs are assigned to cluster ids round-robin.
const clusterGlyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

// noiseGlyph marks noise objects, emptyGlyph empty cells.
const (
	noiseGlyph = '.'
	emptyGlyph = ' '
)

// Scatter renders the first two dimensions of the points into a
// width×height character grid, one glyph per cluster, '.' for noise. When
// several objects fall into one cell, the most frequent cluster of the
// cell wins (noise never overrules a cluster glyph). The plot is framed
// and annotated with the data bounds.
func Scatter(pts []geom.Point, labels cluster.Labeling, width, height int) (string, error) {
	if len(pts) != len(labels) {
		return "", fmt.Errorf("viz: %d points but %d labels", len(pts), len(labels))
	}
	if width < 2 || height < 2 {
		return "", fmt.Errorf("viz: grid %dx%d too small", width, height)
	}
	if len(pts) == 0 {
		return "", fmt.Errorf("viz: no points")
	}
	if pts[0].Dim() < 2 {
		return "", fmt.Errorf("viz: need at least 2 dimensions, have %d", pts[0].Dim())
	}
	bounds := geom.BoundingRect(pts)
	spanX := bounds.Max[0] - bounds.Min[0]
	spanY := bounds.Max[1] - bounds.Min[1]
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	// votes[cell][label] counts objects per cell.
	votes := make([]map[cluster.ID]int, width*height)
	for i, p := range pts {
		// The span can overflow to +Inf for extreme coordinate ranges;
		// project defensively and clamp into the grid.
		x := clampCell(float64(width-1)*(p[0]-bounds.Min[0])/spanX, width)
		y := clampCell(float64(height-1)*(p[1]-bounds.Min[1])/spanY, height)
		cell := (height-1-y)*width + x // y grows upwards
		if votes[cell] == nil {
			votes[cell] = make(map[cluster.ID]int)
		}
		votes[cell][labels[i]]++
	}
	var b strings.Builder
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteString("+\n")
	for row := 0; row < height; row++ {
		b.WriteByte('|')
		for col := 0; col < width; col++ {
			b.WriteRune(glyphFor(votes[row*width+col]))
		}
		b.WriteString("|\n")
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteString("+\n")
	fmt.Fprintf(&b, "x: [%.3g, %.3g]  y: [%.3g, %.3g]  %d points, %d clusters, %d noise\n",
		bounds.Min[0], bounds.Max[0], bounds.Min[1], bounds.Max[1],
		len(pts), labels.NumClusters(), labels.NumNoise())
	return b.String(), nil
}

// clampCell converts a projected coordinate to a grid cell, mapping NaN
// (overflowed span) to 0 and clamping into [0, size-1].
func clampCell(v float64, size int) int {
	if !(v >= 0) { // catches NaN and negatives
		return 0
	}
	if v >= float64(size-1) { // clamp before int conversion can overflow
		return size - 1
	}
	return int(v)
}

// glyphFor picks the majority cluster of a cell; noise only shows when no
// cluster object shares the cell.
func glyphFor(v map[cluster.ID]int) rune {
	if len(v) == 0 {
		return emptyGlyph
	}
	best, bestCount := cluster.Noise, -1
	for id, n := range v {
		if id == cluster.Noise {
			continue
		}
		if n > bestCount || (n == bestCount && id < best) {
			best, bestCount = id, n
		}
	}
	if bestCount < 0 {
		return noiseGlyph
	}
	return rune(clusterGlyphs[int(best)%len(clusterGlyphs)])
}
