package viz

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
	"github.com/dbdc-go/dbdc/internal/optics"
)

func TestReachabilityPlotValidation(t *testing.T) {
	if _, err := ReachabilityPlot(nil, 10, 10, 0); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReachabilityPlot([]float64{1}, 1, 10, 0); err == nil {
		t.Error("tiny grid accepted")
	}
}

func TestReachabilityPlotBars(t *testing.T) {
	reach := []float64{0.1, 0.1, 0.1, 1.0, 0.1, 0.1}
	out, err := ReachabilityPlot(reach, 6, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // 5 rows + caption
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// The peak column (index 3) must be the only full-height bar.
	top := lines[0]
	if top[3] != '#' {
		t.Fatalf("peak missing in top row: %q", top)
	}
	for c, ch := range top {
		if c != 3 && ch == '#' {
			t.Fatalf("unexpected full-height bar at column %d", c)
		}
	}
}

func TestReachabilityPlotInfinite(t *testing.T) {
	reach := []float64{math.Inf(1), 0.5, 0.5}
	out, err := ReachabilityPlot(reach, 3, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "!") {
		t.Fatalf("undefined reachability not marked:\n%s", out)
	}
}

func TestReachabilityPlotCutLine(t *testing.T) {
	reach := []float64{0.2, 0.2, 0.9, 0.2}
	out, err := ReachabilityPlot(reach, 4, 8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("cut line missing:\n%s", out)
	}
	if !strings.Contains(out, "cut at 0.5") {
		t.Fatalf("caption missing cut:\n%s", out)
	}
}

func TestReachabilityPlotDownsampling(t *testing.T) {
	// 1000 values into 20 columns must keep the single peak visible.
	reach := make([]float64, 1000)
	for i := range reach {
		reach[i] = 0.1
	}
	reach[500] = 5.0
	out, err := ReachabilityPlot(reach, 20, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Split(out, "\n")[0], "#") {
		t.Fatalf("downsampling lost the peak:\n%s", out)
	}
}

// Integration: the plot of a real OPTICS run over two separated blobs
// shows exactly one interior peak reaching the top half.
func TestReachabilityPlotFromOPTICS(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var pts []geom.Point
	for i := 0; i < 120; i++ {
		pts = append(pts, geom.Point{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3})
	}
	for i := 0; i < 120; i++ {
		pts = append(pts, geom.Point{20 + rng.NormFloat64()*0.3, rng.NormFloat64() * 0.3})
	}
	res, err := optics.Run(index.NewLinear(pts, geom.Euclidean{}), dbscan.Params{Eps: 50, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ReachabilityPlot(res.Reachabilities(), 60, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	topHalf := strings.Join(strings.Split(out, "\n")[:5], "")
	bars := strings.Count(topHalf, "#") + strings.Count(topHalf, "!")
	// The first (undefined) column and the inter-blob jump; everything
	// else stays in the valley.
	if bars < 2 || bars > 14 {
		t.Fatalf("top half shows %d bar cells, want a small number:\n%s", bars, out)
	}
}
