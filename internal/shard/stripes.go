package shard

import (
	"sort"

	"github.com/dbdc-go/dbdc/internal/geom"
)

// Stripe is one vertical stripe of a dimension-0 partition: the global
// indexes it owns (in ascending first-coordinate order) and the foreign
// indexes within Eps of its interval. It is the stripe layout of the exact
// distributed comparator internal/pdbscan, hoisted here so the stripe and
// grid partitioners share one home.
type Stripe struct {
	Own  []int
	Halo []int
	// Lo and Hi are the first coordinates of the stripe's extreme owned
	// points — the interval the halo is dilated from.
	Lo, Hi float64
}

// Stripes splits the points into stripes of equal cardinality along
// dimension 0 and attaches the eps-halo of each stripe: every foreign point
// whose first coordinate lies within eps of the stripe interval. (The
// eps-ball of an owned point p is contained in stripe ∪ halo because
// |q0 − p0| ≤ dist(q, p) ≤ eps.) Halo entries appear in ascending stripe
// order, each stripe's contribution in its own ascending-dim-0 own order.
// Callers must pass len(pts) > 0 and partitions ≥ 1.
func Stripes(pts []geom.Point, eps float64, partitions int) []Stripe {
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return pts[order[a]][0] < pts[order[b]][0] })
	stripes := make([]Stripe, 0, partitions)
	per := (len(pts) + partitions - 1) / partitions
	for start := 0; start < len(order); start += per {
		end := start + per
		if end > len(order) {
			end = len(order)
		}
		stripes = append(stripes, Stripe{
			Own: append([]int(nil), order[start:end]...),
			Lo:  pts[order[start]][0],
			Hi:  pts[order[end-1]][0],
		})
	}
	for si := range stripes {
		s := &stripes[si]
		for sj := range stripes {
			if sj == si {
				continue
			}
			for _, j := range stripes[sj].Own {
				if pts[j][0] >= s.Lo-eps && pts[j][0] <= s.Hi+eps {
					s.Halo = append(s.Halo, j)
				}
			}
		}
	}
	return stripes
}
