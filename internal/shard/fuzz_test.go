package shard_test

import (
	"encoding/binary"
	"math"
	"testing"

	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/shard"
)

// coordBytes encodes coordinates as the little-endian float64 stream the
// fuzz target decodes rows from.
func coordBytes(vals ...float64) []byte {
	buf := make([]byte, 0, len(vals)*8)
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// FuzzShardAssign pins the grid partitioner's contract on arbitrary
// geometry:
//
//   - every row lands in exactly one owner cell, and Plan.Owner agrees with
//     the region membership;
//   - halo membership stays inside the ε-dilated cell rectangle (up to the
//     documented haloSlack retreat), and own ∪ halo has no duplicates, so
//     the own+halo row list round-trips through the row-id remapping the
//     shard-parallel DBSCAN phase performs;
//   - the halo is complete: any two rows within ε of each other see each
//     other through own ∪ halo of either one's region — the property that
//     makes per-shard range queries exact.
//
// Degenerate inputs (NaN/Inf coordinates, absurd ε, every row identical)
// must yield a nil plan, never a malformed one.
func FuzzShardAssign(f *testing.F) {
	// Two separated blobs, the bread-and-butter shape.
	f.Add(uint8(2), 0.5, uint8(8), coordBytes(
		0.1, 0.2, 0.3, 0.1, 0.2, 0.4, 0.15, 0.3, 0.35, 0.25,
		5.1, 5.2, 5.3, 5.1, 5.2, 5.4, 5.15, 5.3, 5.35, 5.25,
	))
	// Exact-boundary lattice with ε equal to the spacing.
	f.Add(uint8(2), 0.25, uint8(16), coordBytes(
		0, 0, 0.25, 0, 0.5, 0, 0.75, 0, 1.0, 0,
		0, 0.25, 0.25, 0.25, 0.5, 0.25, 0.75, 0.25, 1.0, 0.25,
		0, 0.5, 0.25, 0.5, 0.5, 0.5, 0.75, 0.5, 1.0, 0.5,
	))
	// Duplicate stacks.
	f.Add(uint8(2), 0.5, uint8(4), coordBytes(
		1, 1, 1, 1, 1, 1, 4, 4, 4, 4, 4, 4, 8, 1, 8, 1,
	))
	// A 1-D line.
	f.Add(uint8(1), 0.5, uint8(6), coordBytes(0, 0.1, 0.2, 5, 5.1, 5.2, 10, 10.1, 10.2))
	// 3-D corners.
	f.Add(uint8(3), 0.9, uint8(8), coordBytes(
		0, 0, 0, 0, 0, 1, 0, 1, 0, 1, 0, 0, 1, 1, 0, 1, 0, 1, 0, 1, 1, 1, 1, 1,
	))
	// Degenerate: a NaN coordinate, then ε larger than the bounding box.
	f.Add(uint8(2), 0.5, uint8(8), coordBytes(math.NaN(), 1, 2, 3, 4, 5, 6, 7))
	f.Add(uint8(2), 100.0, uint8(8), coordBytes(0, 0, 1, 1, 2, 2, 3, 3))

	f.Fuzz(func(t *testing.T, dimB uint8, eps float64, targetB uint8, data []byte) {
		dim := int(dimB)%8 + 1
		target := int(targetB)
		n := len(data) / (8 * dim)
		if n == 0 {
			return
		}
		if n > 128 {
			n = 128 // the completeness check below is O(n²)
		}
		st := geom.NewStore(dim, n)
		for i := 0; i < n; i++ {
			row := st.AppendZero()
			for d := 0; d < dim; d++ {
				off := (i*dim + d) * 8
				row[d] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
			}
		}
		plan := shard.Grid(st, eps, target)
		if plan == nil {
			return // fallback geometry; the consumer keeps its chunked path
		}
		if !st.IsFinite() || !(eps > 0) || math.IsInf(eps, 0) {
			t.Fatal("plan built over non-finite geometry or invalid eps")
		}

		// Exactly one owner per row, consistent with Plan.Owner.
		owned := make([]int, n)
		for r, reg := range plan.Regions {
			for _, g := range reg.Own {
				if g < 0 || int(g) >= n {
					t.Fatalf("region %d owns out-of-range row %d", r, g)
				}
				owned[g]++
				if plan.Owner(int(g)) != r {
					t.Fatalf("row %d: Owner() = %d, owned by region %d", g, plan.Owner(int(g)), r)
				}
			}
		}
		for g, c := range owned {
			if c != 1 {
				t.Fatalf("row %d owned by %d cells, want exactly 1", g, c)
			}
		}

		for r, reg := range plan.Regions {
			// own ∪ halo must be duplicate-free so the global→local row-id
			// remapping of the shard-parallel phase is a bijection: copying
			// the rows into a sub-store and mapping local hits back through
			// the row list must round-trip.
			rows := make([]int32, 0, len(reg.Own)+len(reg.Halo))
			rows = append(rows, reg.Own...)
			rows = append(rows, reg.Halo...)
			seen := make(map[int32]bool, len(rows))
			sub := geom.NewStore(dim, len(rows))
			for _, g := range rows {
				if g < 0 || int(g) >= n {
					t.Fatalf("region %d references out-of-range row %d", r, g)
				}
				if seen[g] {
					t.Fatalf("region %d: row %d appears twice in own+halo", r, g)
				}
				seen[g] = true
				sub.Append(st.Point(int(g)))
			}
			for v, g := range rows {
				for d := 0; d < dim; d++ {
					if sub.Point(v)[d] != st.Point(int(g))[d] {
						t.Fatalf("region %d: local row %d does not round-trip to global row %d", r, v, g)
					}
				}
			}

			// Halo rows are foreign and lie within the ε-dilated cell, up to
			// the documented haloSlack retreat of the gap test.
			lo, hi := plan.CellBounds(r)
			for _, g := range reg.Halo {
				if plan.Owner(int(g)) == r {
					t.Fatalf("region %d: halo row %d is its own", r, g)
				}
				row := st.Point(int(g))
				var gapSq float64
				for d := 0; d < dim; d++ {
					var gap float64
					switch {
					case row[d] < lo[d]:
						gap = lo[d] - row[d]
					case row[d] > hi[d]:
						gap = row[d] - hi[d]
					}
					gap -= 1e-9 * (math.Abs(lo[d]) + math.Abs(hi[d]) + math.Abs(row[d]))
					if gap > 0 {
						gapSq += gap * gap
					}
				}
				if gapSq > eps*eps {
					t.Fatalf("region %d: halo row %d lies %g beyond the ε-dilated cell", r, g, math.Sqrt(gapSq)-eps)
				}
			}
		}

		// Completeness: every ε-pair is visible through the owner region of
		// either endpoint. This is the invariant that makes per-shard range
		// queries equal to global ones.
		inReach := make(map[int32]bool, n)
		for i := 0; i < n; i++ {
			r := plan.Owner(i)
			reg := &plan.Regions[r]
			for k := range inReach {
				delete(inReach, k)
			}
			for _, g := range reg.Own {
				inReach[g] = true
			}
			for _, g := range reg.Halo {
				inReach[g] = true
			}
			for j := 0; j < n; j++ {
				if st.DistanceSq(i, j) <= eps*eps && !inReach[int32(j)] {
					t.Fatalf("rows %d and %d are within ε but %d is invisible to region %d", i, j, j, r)
				}
			}
		}
	})
}
