// Package shard provides the spatial partitioners behind the parallel
// clustering layers: a dataset is split into disjoint owner regions plus an
// ε-halo of borrowed neighbor rows, so each region can be clustered exactly
// and independently — the partition-with-halo shape of PDBSCAN (Xu, Jäger,
// Kriegel 1999, reference [21] of the DBDC paper) and of the
// grid-partitionize → partial-dbscan → merge pipelines of the data-
// partitioning literature.
//
// Two partitioners share the package:
//
//   - Grid splits a flat geom.Store into axis-aligned cells of side ≥ ε and
//     attaches to every cell the rows of neighboring cells within ε of the
//     cell's rectangle. dbscan.RunParallel clusters each cell against a
//     cache-local sub-index of own+halo rows (see internal/dbscan).
//   - Stripes splits a point slice into equal-cardinality vertical stripes
//     along the first coordinate — the layout of the exact distributed
//     comparator internal/pdbscan, which previously carried its own copy of
//     the halo construction.
//
// The halo invariant both partitioners guarantee (and FuzzShardAssign
// pins): every row belongs to exactly one owner region, and for any two
// rows p, q with dist(p, q) ≤ ε, q lies in own ∪ halo of p's region. The
// ε-ball of every owned row is therefore fully visible to its region, which
// is what makes per-region range queries exact.
package shard

import (
	"math"

	"github.com/dbdc-go/dbdc/internal/geom"
)

// Region is one owner region of a plan: the rows it owns and the foreign
// rows it borrows as its ε-halo. Own is ascending; Halo is ascending and
// disjoint from Own.
type Region struct {
	Own  []int32
	Halo []int32
}

// Plan is a grid partition of a store: every row is assigned to exactly one
// owner cell, and each non-empty cell carries the halo of foreign rows
// within Eps of its rectangle.
type Plan struct {
	// Regions lists the non-empty cells in ascending linear cell id order.
	Regions []Region
	// Eps is the halo radius the plan was built for.
	Eps float64

	// Cell geometry, exposed for tests and the fuzz harness: per-axis
	// bounding box, cell side lengths, and cell counts.
	Min, Max, Side []float64
	Counts         []int

	// owner maps every row to its index in Regions.
	owner []int32
	// cellID maps every region to its linear cell id.
	cellID []int32
}

// sideInflation keeps every cell side at least ε·(1+sideInflation). The
// margin makes the ±1-cell neighbor walk rigorous under floating point: two
// rows within ε of each other have cell-coordinate quotients less than one
// apart by at least ~1e-6 relative, orders of magnitude beyond the few-ulp
// rounding of the subtract/divide/floor assignment chain, so their computed
// cells can never differ by two along an axis.
const sideInflation = 1e-6

// haloSlack is the relative retreat of the row-to-cell-rectangle gap test.
// Retreating the gaps before comparing against ε makes halo inclusion
// conservative: a row whose true distance to the cell is within rounding of
// ε is always admitted. Extra admissions only grow the halo — never wrong,
// only marginally more work for the consumer.
const haloSlack = 1e-9

// Grid partitions the store into a grid of at most about target cells with
// sides at least ε, assigning every row to exactly one owner cell and
// attaching to each non-empty cell the ε-halo of foreign rows. It returns
// nil when the geometry does not support sharding and the caller should
// fall back to its unsharded path:
//
//   - empty store, target < 2, or eps not a positive finite number,
//   - any non-finite coordinate (NaN/±Inf break cell assignment),
//   - ε (or the target) covering the whole bounding box: fewer than two
//     cells fit, so there is nothing to parallelize spatially.
func Grid(st *geom.Store, eps float64, target int) *Plan {
	if st == nil || st.Len() == 0 || target < 2 {
		return nil
	}
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil
	}
	if !st.IsFinite() {
		return nil
	}
	n := st.Len()
	dim := st.Dim()
	rect := st.BoundingRect()
	span := make([]float64, dim)
	for d := 0; d < dim; d++ {
		span[d] = rect.Max[d] - rect.Min[d]
	}
	minSide := eps * (1 + sideInflation)

	// Split axes greedily: always halve the axis whose current cell side is
	// largest, while its side stays above the ε floor and the total cell
	// count stays within target. The result is a near-cubic grid with side
	// ≥ ε·(1+margin) on every axis.
	counts := make([]int, dim)
	for d := range counts {
		counts[d] = 1
	}
	product := 1
	for product < target {
		best, bestSide := -1, 0.0
		for d := 0; d < dim; d++ {
			if span[d]/float64(counts[d]+1) < minSide {
				continue // splitting further would drop this axis below ε
			}
			if side := span[d] / float64(counts[d]); side > bestSide {
				best, bestSide = d, side
			}
		}
		if best < 0 {
			break
		}
		counts[best]++
		product = 1
		for _, c := range counts {
			product *= c
		}
	}
	if product < 2 {
		return nil // ε covers the bounding box: a single cell, nothing to shard
	}

	side := make([]float64, dim)
	for d := 0; d < dim; d++ {
		if counts[d] > 1 {
			side[d] = span[d] / float64(counts[d])
		} else {
			side[d] = span[d] // unsplit axis: one cell covering the span
		}
	}

	// Row → cell assignment, clamped so the bounding-box maximum lands in
	// the last cell. Two passes keep the per-cell row lists ascending
	// without any sorting.
	cellOf := make([]int32, n)
	occupancy := make([]int32, product)
	coords := st.Coords()
	for i := 0; i < n; i++ {
		row := coords[i*dim : i*dim+dim]
		id := 0
		for d := 0; d < dim; d++ {
			id = id*counts[d] + cellCoord(row[d], rect.Min[d], side[d], counts[d])
		}
		cellOf[i] = int32(id)
		occupancy[id]++
	}

	// Non-empty cells become the plan's regions, in ascending cell id order.
	regionOf := make([]int32, product)
	var cellID []int32
	for id, occ := range occupancy {
		if occ == 0 {
			regionOf[id] = -1
			continue
		}
		regionOf[id] = int32(len(cellID))
		cellID = append(cellID, int32(id))
	}
	if len(cellID) < 2 {
		return nil // all rows in one cell: spatially degenerate
	}
	p := &Plan{
		Regions: make([]Region, len(cellID)),
		Eps:     eps,
		Min:     rect.Min,
		Max:     rect.Max,
		Side:    side,
		Counts:  counts,
		owner:   make([]int32, n),
		cellID:  cellID,
	}
	for r, id := range cellID {
		p.Regions[r].Own = make([]int32, 0, occupancy[id])
	}
	for i := 0; i < n; i++ {
		r := regionOf[cellOf[i]]
		p.owner[i] = r
		p.Regions[r].Own = append(p.Regions[r].Own, int32(i))
	}

	// Halo pass: every row visits the existing neighbor cells of its own
	// (offsets in {-1,0,1}^d, out-of-range neighbors simply do not exist —
	// sides ≥ ε·(1+margin) make ±1 sufficient, see sideInflation) and joins
	// the halo of each foreign non-empty cell whose rectangle lies within ε.
	// Rows are visited ascending, so halo lists come out ascending for free.
	eps2 := eps * eps
	k := make([]int, dim)
	off := make([]int, dim)
	for i := 0; i < n; i++ {
		row := coords[i*dim : i*dim+dim]
		own := cellOf[i]
		// Decode the row's cell coordinates from its linear id.
		id := int(own)
		for d := dim - 1; d >= 0; d-- {
			k[d] = id % counts[d]
			id /= counts[d]
		}
		for d := range off {
			off[d] = -1
		}
		for {
			// Walk one neighbor offset combination per iteration.
			valid := true
			nid := 0
			for d := 0; d < dim; d++ {
				c := k[d] + off[d]
				if c < 0 || c >= counts[d] {
					valid = false
					break
				}
				nid = nid*counts[d] + c
			}
			if valid && int32(nid) != own && regionOf[nid] >= 0 &&
				cellWithinEps(row, k, off, counts, rect.Min, rect.Max, side, eps, eps2) {
				reg := &p.Regions[regionOf[nid]]
				reg.Halo = append(reg.Halo, int32(i))
			}
			d := dim - 1
			for d >= 0 {
				off[d]++
				if off[d] <= 1 {
					break
				}
				off[d] = -1
				d--
			}
			if d < 0 {
				break
			}
		}
	}
	return p
}

// cellCoord assigns one coordinate to its cell index, clamped into
// [0, count).
func cellCoord(x, min, side float64, count int) int {
	if count <= 1 || side <= 0 {
		return 0
	}
	c := int(math.Floor((x - min) / side))
	if c < 0 {
		return 0
	}
	if c >= count {
		return count - 1
	}
	return c
}

// cellWithinEps reports whether row lies within eps of the rectangle of the
// cell at offset off from cell k, with the gaps retreated by haloSlack so
// rounding in the rectangle reconstruction can only admit, never exclude.
// The edge cells extend to the bounding box: clamped assignment can place a
// row slightly outside min + count·side, so the outermost rectangles adopt
// the exact data extremes.
func cellWithinEps(row []float64, k, off, counts []int, min, max, side []float64, eps, eps2 float64) bool {
	var gapSq float64
	for d := range row {
		c := k[d] + off[d]
		lo := min[d] + float64(c)*side[d]
		hi := lo + side[d]
		if c == 0 {
			lo = min[d]
		}
		if c == counts[d]-1 {
			hi = max[d]
		}
		var gap float64
		switch {
		case row[d] < lo:
			gap = lo - row[d]
		case row[d] > hi:
			gap = row[d] - hi
		}
		if gap > 0 {
			gap -= haloSlack * (math.Abs(lo) + math.Abs(hi) + math.Abs(row[d]))
			if gap > eps {
				return false
			}
			if gap > 0 {
				gapSq += gap * gap
			}
		}
	}
	return gapSq <= eps2
}

// Owner returns the region index owning the given row.
func (p *Plan) Owner(row int) int { return int(p.owner[row]) }

// NumRows returns the number of rows the plan partitions.
func (p *Plan) NumRows() int { return len(p.owner) }

// CellBounds returns the rectangle of region r's cell, edge cells extended
// to the exact data extremes as in the halo test.
func (p *Plan) CellBounds(r int) (lo, hi []float64) {
	dim := len(p.Counts)
	lo = make([]float64, dim)
	hi = make([]float64, dim)
	id := int(p.cellID[r])
	for d := dim - 1; d >= 0; d-- {
		c := id % p.Counts[d]
		id /= p.Counts[d]
		lo[d] = p.Min[d] + float64(c)*p.Side[d]
		hi[d] = lo[d] + p.Side[d]
		if c == 0 {
			lo[d] = p.Min[d]
		}
		if c == p.Counts[d]-1 {
			hi[d] = p.Max[d]
		}
	}
	return lo, hi
}
