package transport

import (
	"encoding/binary"
	"fmt"
	"time"

	"github.com/dbdc-go/dbdc/internal/benchio"
)

// This file implements the per-phase cost reporting of the networked DBDC
// round: the optional metrics section a site attaches to its upload, the
// client-side phase breakdown, and the conversion of a server round report
// into the internal/benchio schema so wire-level runs land next to the
// committed BENCH_<rev>.json artifacts.
//
// Wire layout of a MsgLocalModelTimed payload:
//
//	[ model.LocalModel bytes ][ section ]*
//
// where every section is
//
//	[0]    section id (1 byte)
//	[1:5]  body length, uint32 little-endian
//	[5:..] body
//
// The model encoding is self-delimiting (model.LocalModel.
// UnmarshalBinaryPrefix), so the section area starts wherever the model
// ends. Unknown section ids are skipped — a newer client can append
// sections an older server-side parser has never heard of without breaking
// the round. The whole payload sits inside one ordinary version-2 frame and
// is covered by the frame CRC.
const (
	// sectionSitePhases is the per-phase site metrics section.
	sectionSitePhases byte = 0x01

	// sectionHeaderSize is id byte + body length.
	sectionHeaderSize = 5

	// sitePhasesVersion versions the section body; parsers skip bodies
	// with a version they do not know.
	sitePhasesVersion byte = 1

	// sitePhasesBodyLen is the encoded size of a version-1 body: version
	// byte, workers u32, cluster ns u64, condense ns u64, attempt u32,
	// backoff ns u64. Newer versions may append fields; version-1 parsers
	// read their prefix and ignore the rest.
	sitePhasesBodyLen = 1 + 4 + 8 + 8 + 4 + 8
)

// SitePhases is the per-phase breakdown a site reports alongside its model
// upload (the metrics section of a MsgLocalModelTimed frame). All costs are
// client-measured; the server adds its own read duration, global-step and
// broadcast costs to the round report.
type SitePhases struct {
	// Workers is the intra-site DBSCAN worker count the site ran with
	// (Config.SiteWorkers resolved; 1 = sequential kernel).
	Workers int
	// Cluster is the cost of the site's local DBSCAN run.
	Cluster time.Duration
	// Condense is the cost of representative condensation.
	Condense time.Duration
	// Attempt is the 1-based upload attempt this frame belongs to.
	Attempt int
	// Backoff is the total retry backoff the site slept before this
	// attempt.
	Backoff time.Duration
}

// appendSitePhasesSection appends the encoded metrics section to dst.
func appendSitePhasesSection(dst []byte, p SitePhases) []byte {
	dst = append(dst, sectionSitePhases)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(sitePhasesBodyLen))
	dst = append(dst, sitePhasesVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(p.Workers))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(p.Cluster.Nanoseconds()))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(p.Condense.Nanoseconds()))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(p.Attempt))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(p.Backoff.Nanoseconds()))
	return dst
}

// parseSitePhasesBody decodes a version-1 (or newer, prefix-compatible)
// section body. ok is false when the body is too short or carries an
// unknown version — the caller then ignores the section, it never fails
// the upload.
func parseSitePhasesBody(body []byte) (SitePhases, bool) {
	if len(body) < sitePhasesBodyLen || body[0] != sitePhasesVersion {
		return SitePhases{}, false
	}
	return SitePhases{
		Workers:  int(binary.LittleEndian.Uint32(body[1:5])),
		Cluster:  time.Duration(binary.LittleEndian.Uint64(body[5:13])),
		Condense: time.Duration(binary.LittleEndian.Uint64(body[13:21])),
		Attempt:  int(binary.LittleEndian.Uint32(body[21:25])),
		Backoff:  time.Duration(binary.LittleEndian.Uint64(body[25:33])),
	}, true
}

// parseSections walks the section area of a timed upload and returns the
// site phases, budget and aggregation-provenance sections when present.
// Unknown sections are skipped (walkSections); a malformed section area
// (truncated header or body) is an error — the bytes passed the frame CRC,
// so truncation here means a broken encoder, not line noise.
func parseSections(data []byte) (*SitePhases, *SiteBudget, *AggLevel, error) {
	var phases *SitePhases
	var budget *SiteBudget
	var agg *AggLevel
	err := walkSections(data, func(id byte, body []byte) {
		switch id {
		case sectionSitePhases:
			if p, ok := parseSitePhasesBody(body); ok {
				phases = &p
			}
		case sectionSiteBudget:
			if b, ok := parseSiteBudgetBody(body); ok {
				budget = &b
			}
		case sectionAggLevel:
			if a, ok := parseAggLevelBody(body); ok {
				agg = &a
			}
		}
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return phases, budget, agg, nil
}

// ParseSections exposes the section walk for tests and fuzzing: it decodes
// the section area of a timed upload (everything after the self-delimiting
// model prefix) into the known sections, skipping unknown ids.
func ParseSections(data []byte) (*SitePhases, *SiteBudget, *AggLevel, error) {
	return parseSections(data)
}

// AttemptStats describes one connection attempt of a SendModel call.
type AttemptStats struct {
	// Attempt is the 1-based attempt number.
	Attempt int
	// Timed reports whether the attempt used the MsgLocalModelTimed
	// sectioned upload (false after a legacy downgrade).
	Timed bool
	// Negotiated reports whether the attempt opened with the
	// MsgHello/MsgHelloAck budget handshake (false after a handshake
	// downgrade).
	Negotiated bool
	// Backoff is the retry delay slept before this attempt (0 for the
	// first).
	Backoff time.Duration
	// Dial is the connection setup cost.
	Dial time.Duration
	// Upload is the time spent writing the model frame.
	Upload time.Duration
	// ServerWait is the time between the completed upload and the first
	// reply byte — the site-visible server-side cost (collecting the
	// remaining sites, the global clustering).
	ServerWait time.Duration
	// Download is the time spent receiving the rest of the reply.
	Download time.Duration
	// BytesSent and BytesReceived are this attempt's wire costs.
	BytesSent     int
	BytesReceived int
	// Err is the failure, "" on success.
	Err string
}

// PhaseBreakdown is the client-side per-phase cost of one full networked
// site round (RunSiteClient): the paper's distributed-runtime decomposition
// measured over the wire.
type PhaseBreakdown struct {
	// Workers is the intra-site DBSCAN worker count.
	Workers int
	// Cluster and Condense are the LocalStep phases.
	Cluster  time.Duration
	Condense time.Duration
	// Upload, ServerWait and Download are summed over all attempts.
	Upload     time.Duration
	ServerWait time.Duration
	Download   time.Duration
	// Backoff is the total retry backoff slept.
	Backoff time.Duration
	// Relabel is the cost of applying the global model locally.
	Relabel time.Duration
	// Attempts is the per-attempt log, including failed ones.
	Attempts []AttemptStats
}

// Total returns the summed wall-clock cost of all phases.
func (p *PhaseBreakdown) Total() time.Duration {
	return p.Cluster + p.Condense + p.Upload + p.ServerWait + p.Download + p.Backoff + p.Relabel
}

// String renders a compact one-line summary.
func (p *PhaseBreakdown) String() string {
	r := time.Millisecond
	if p.Total() < 10*time.Millisecond {
		r = time.Microsecond
	}
	return fmt.Sprintf("workers=%d cluster=%s condense=%s upload=%s wait=%s download=%s backoff=%s relabel=%s",
		p.Workers, p.Cluster.Round(r), p.Condense.Round(r), p.Upload.Round(r),
		p.ServerWait.Round(r), p.Download.Round(r), p.Backoff.Round(r), p.Relabel.Round(r))
}

// BenchReport converts a server round report into the internal/benchio
// schema, so networked rounds can be committed and diffed (cmd/benchdiff)
// exactly like the BENCH_<rev>.json artifacts of the in-process
// benchmarks. Every usable site becomes one entry named
// "NetworkedRound/<prefix>site=<id>" whose ns/op is the server-measured
// read duration and whose metrics carry the site-reported phase costs; the
// server-side costs land in a "NetworkedRound/<prefix>server" entry.
func (r *RoundReport) BenchReport(rev, prefix string) *benchio.Report {
	rep := &benchio.Report{
		Rev:       rev,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	// The server converting the report is also the host that measured the
	// read durations, so its core count is the right context to stamp.
	benchio.StampHost(rep)
	for _, site := range r.Sites {
		if !site.OK {
			continue
		}
		e := benchio.Entry{
			Name:        "NetworkedRound/" + prefix + "site=" + site.SiteID,
			Iterations:  1,
			NsPerOp:     float64(site.Duration.Nanoseconds()),
			BytesPerOp:  -1,
			AllocsPerOp: -1,
			Metrics: map[string]float64{
				"attempts":     float64(site.Attempts),
				"upload-bytes": float64(site.Bytes),
			},
		}
		if p := site.Phases; p != nil {
			e.Metrics["workers"] = float64(p.Workers)
			e.Metrics["cluster-ns"] = float64(p.Cluster.Nanoseconds())
			e.Metrics["condense-ns"] = float64(p.Condense.Nanoseconds())
			e.Metrics["backoff-ns"] = float64(p.Backoff.Nanoseconds())
		}
		if bd := site.Budget; bd != nil {
			e.Metrics["rep-budget"] = float64(bd.RepBudget)
			e.Metrics["reps-dropped"] = float64(bd.RepsDropped)
			e.Metrics["coverage-fraction"] = bd.CoverageFraction
		}
		// A child that is itself an aggregator carries its subtree's
		// provenance: its height, fan-in and per-level phase costs, so a
		// multi-level tree's timings are reconstructible from the root's
		// report alone.
		if a := site.Agg; a != nil {
			e.Metrics["agg-level"] = float64(a.Level)
			e.Metrics["agg-children-ok"] = float64(a.SitesOK)
			e.Metrics["agg-children-expected"] = float64(a.SitesExpected)
			e.Metrics["agg-objects"] = float64(a.Objects)
			e.Metrics["agg-regional-clusters"] = float64(a.RegionalClusters)
			e.Metrics["agg-round-ns"] = float64(a.RoundDuration.Nanoseconds())
			e.Metrics["agg-global-ns"] = float64(a.GlobalStepDuration.Nanoseconds())
			e.Metrics["agg-condense-ns"] = float64(a.CondenseDuration.Nanoseconds())
		}
		rep.Entries = append(rep.Entries, e)
	}
	rep.Entries = append(rep.Entries, benchio.Entry{
		Name:        "NetworkedRound/" + prefix + "server",
		Iterations:  1,
		NsPerOp:     float64(r.Duration.Nanoseconds()),
		BytesPerOp:  -1,
		AllocsPerOp: -1,
		Metrics: map[string]float64{
			"sites-ok":       float64(r.OK),
			"sites-failed":   float64(r.Failed),
			"conns":          float64(r.Conns),
			"global-ns":      float64(r.GlobalStepDuration.Nanoseconds()),
			"broadcast-ns":   float64(r.BroadcastDuration.Nanoseconds()),
			"forward-ns":     float64(r.ForwardDuration.Nanoseconds()),
			"objects-total":  float64(r.ObjectsTotal),
			"reps-total":     float64(r.RepsTotal),
			"uplink-bytes":   float64(r.UplinkBytes),
			"downlink-bytes": float64(r.DownlinkBytes),
		},
	})
	return rep
}
