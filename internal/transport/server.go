package transport

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/model"
)

// deadlineListener is the optional listener capability the server uses to
// bound the accept phase. *net.TCPListener and faultnet.Listener have it.
type deadlineListener interface{ SetDeadline(time.Time) error }

// Server is the central DBDC site: it accepts connections from client
// sites, collects their local models, derives the global model and sends it
// back on every usable connection.
type Server struct {
	cfg dbdc.Config
	// expect is the number of distinct site models one round aims for.
	expect  int
	timeout time.Duration
	ln      net.Listener

	bytesIn  atomic.Int64
	bytesOut atomic.Int64

	// maxUploadBytes is the per-upload byte cap advertised to handshaking
	// clients (see SetMaxUploadBytes); 0 means unconstrained.
	maxUploadBytes int64

	// onGlobal, when set, receives every freshly computed global model
	// (see SetOnGlobal).
	onGlobal func(*model.GlobalModel)
}

// SetMaxUploadBytes sets the upload byte cap the server advertises in the
// MsgHelloAck of the budget handshake: a handshaking site must keep its
// model frame (header included) at or under n bytes, shrinking its
// representative budget until it fits; uploads that exceed the advertised
// cap anyway are rejected. n ≤ 0 removes the constraint. The cap binds only
// connections that performed the handshake — legacy clients never promised
// anything and keep working unchanged. Like SetOnGlobal, set it once after
// NewServer, not concurrently with a running round.
func (s *Server) SetMaxUploadBytes(n int64) {
	if n < 0 {
		n = 0
	}
	s.maxUploadBytes = n
}

// SetOnGlobal registers a sink that receives every global model a round
// computes, immediately after the global step succeeds and before the
// broadcast to the sites. This is how commands feed the serving-side model
// registry (internal/serve.Registry.PublishFunc) without the transport
// layer depending on it. The callback runs synchronously on the round
// goroutine — keep it fast. Not safe to call concurrently with a running
// round; set it once, right after NewServer.
func (s *Server) SetOnGlobal(fn func(*model.GlobalModel)) { s.onGlobal = fn }

// NewServer listens on addr (e.g. "127.0.0.1:0") for rounds of expect
// sites. timeout bounds each connection's I/O and the default accept
// window; zero means 30s.
func NewServer(addr string, expect int, cfg dbdc.Config, timeout time.Duration) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	srv, err := NewServerListener(ln, expect, cfg, timeout)
	if err != nil {
		ln.Close()
		return nil, err
	}
	return srv, nil
}

// NewServerListener builds a server on an existing listener. This is how
// the fault-injection tests interpose faultnet.Listener; production code
// normally uses NewServer. The listener should support SetDeadline
// (net.TCPListener does) or rounds cannot bound their accept phase.
func NewServerListener(ln net.Listener, expect int, cfg dbdc.Config, timeout time.Duration) (*Server, error) {
	if expect < 1 {
		return nil, fmt.Errorf("transport: server needs at least one site, got %d", expect)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return &Server{cfg: cfg, expect: expect, timeout: timeout, ln: ln}, nil
}

// Addr returns the address the server listens on.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// BytesIn returns the total payload bytes received from sites.
func (s *Server) BytesIn() int64 { return s.bytesIn.Load() }

// BytesOut returns the total payload bytes sent to sites.
func (s *Server) BytesOut() int64 { return s.bytesOut.Load() }

// Close releases the listener.
func (s *Server) Close() error { return s.ln.Close() }

// RoundOptions tunes one RunRoundOpts call. The zero value reproduces the
// classic behavior: wait up to the server timeout for all expected sites,
// then proceed with whatever arrived (quorum 1).
type RoundOptions struct {
	// Quorum is the minimum number of distinct usable site models the
	// round needs; with fewer the round fails. 0 means 1 — the paper's
	// "proceed with the models it has". Values above the expected site
	// count are clamped to it.
	Quorum int
	// AcceptTimeout bounds the accept-and-collect phase: once it
	// expires the round proceeds with the models it has (or fails the
	// quorum). 0 means the server's connection timeout.
	AcceptTimeout time.Duration
	// ExpectedSites optionally names the sites the round waits for.
	// Sites that never delivered a usable model are then listed by name
	// in the report even if they never connected.
	ExpectedSites []string
	// Finalize, when set, runs between the global step and the broadcast
	// and may replace the model the round publishes and broadcasts. This
	// is the interior-node hook of the aggregation tree
	// (internal/aggtree): a non-root aggregator condenses the regional
	// model, uploads it to its parent, and returns the parent's global
	// model — so its children relabel against the root's model, not the
	// regional one. An error fails the round; the children then receive a
	// MsgError instead of a global model and surface it like any other
	// round failure. The report already carries the child-round totals
	// when Finalize runs; its ForwardDuration is filled in afterwards.
	Finalize func(*model.GlobalModel, *RoundReport) (*model.GlobalModel, error)
}

// SiteOutcome is one site's (or anonymous connection's) fate in a round.
type SiteOutcome struct {
	// SiteID is empty when a failed connection never got far enough to
	// identify itself.
	SiteID string
	// Addr is the remote address of the last connection observed for
	// this entry; empty for expected sites that never connected.
	Addr string
	// OK reports whether a usable model was received.
	OK bool
	// Reason is the failure reason when !OK.
	Reason string
	// Attempts counts the connections observed for this site id.
	Attempts int
	// Bytes is the wire size read from the successful connection.
	Bytes int
	// Objects and Reps are the delivered model's object cardinality and
	// representative count; zero when no usable model arrived.
	Objects, Reps int
	// Duration is how long reading the model took.
	Duration time.Duration
	// Phases is the client-reported per-phase breakdown (worker count,
	// local DBSCAN, condensation, attempt, backoff) carried in the
	// optional metrics section of a MsgLocalModelTimed upload. Nil when
	// the client sent the legacy frame.
	Phases *SitePhases
	// Budget is the representative-budget accounting of a budgeted
	// upload (sectionSiteBudget); nil for unbudgeted or legacy uploads.
	Budget *SiteBudget
	// Agg is the aggregation provenance of a condensed upload
	// (sectionAggLevel): set when this "site" is really an interior node
	// of the aggregation tree forwarding its region's merged model, nil
	// for plain sites. This is how per-level round reports chain — each
	// level sees its children's child-round summaries.
	Agg *AggLevel
	// Negotiated reports whether the connection performed the
	// MsgHello/MsgHelloAck budget handshake before uploading.
	Negotiated bool
}

// RoundReport describes how a round went, site by site.
type RoundReport struct {
	// Expect and Quorum echo the round's parameters.
	Expect, Quorum int
	// OK and Failed count usable models and failed entries; Retried
	// counts sites that succeeded only after at least one failed
	// connection attempt under the same site id.
	OK, Failed, Retried int
	// Conns is the total number of connections the round handled.
	Conns int
	// Sites lists usable sites first (sorted by id), then failures.
	Sites []SiteOutcome
	// Duration is the wall-clock time of the whole round.
	Duration time.Duration
	// GlobalStepDuration is the server-side global clustering cost;
	// BroadcastDuration covers encoding the global model and writing it
	// to every usable site.
	GlobalStepDuration time.Duration
	BroadcastDuration  time.Duration
	// ForwardDuration is the cost of RoundOptions.Finalize — for an
	// interior tree node, condensing the regional model and exchanging it
	// with the parent. Zero when no Finalize hook ran.
	ForwardDuration time.Duration
	// ObjectsTotal and RepsTotal sum the usable site models' object
	// cardinalities and representative counts — what the round actually
	// merged, and what an interior node reports upward as its region's
	// weight.
	ObjectsTotal int
	RepsTotal    int
	// UplinkBytes is the wire size of all usable uploads this round;
	// DownlinkBytes of all global-model replies.
	UplinkBytes   int
	DownlinkBytes int
}

// MaxSitePhases returns the element-wise maximum over the reported site
// phases — the paper's "distributed runtime is the maximum local cost"
// aggregation (Section 8) — and the number of sites that reported phases.
func (r *RoundReport) MaxSitePhases() (SitePhases, int) {
	var max SitePhases
	n := 0
	for _, site := range r.Sites {
		p := site.Phases
		if !site.OK || p == nil {
			continue
		}
		n++
		if p.Workers > max.Workers {
			max.Workers = p.Workers
		}
		if p.Cluster > max.Cluster {
			max.Cluster = p.Cluster
		}
		if p.Condense > max.Condense {
			max.Condense = p.Condense
		}
		if p.Backoff > max.Backoff {
			max.Backoff = p.Backoff
		}
	}
	return max, n
}

// String renders a compact multi-line summary for logs, including the
// per-phase breakdown when sites reported one.
func (r *RoundReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "round: %d/%d sites ok (quorum %d, %d conns, %d retried) in %s",
		r.OK, r.Expect, r.Quorum, r.Conns, r.Retried, r.Duration.Round(time.Millisecond))
	for _, site := range r.Sites {
		name := site.SiteID
		if name == "" {
			name = "<unidentified>"
		}
		if site.OK {
			fmt.Fprintf(&b, "\n  ok   %-16s addr=%s attempts=%d bytes=%d dur=%s",
				name, site.Addr, site.Attempts, site.Bytes, site.Duration.Round(time.Millisecond))
			if p := site.Phases; p != nil {
				fmt.Fprintf(&b, " workers=%d cluster=%s condense=%s backoff=%s",
					p.Workers, p.Cluster.Round(time.Microsecond),
					p.Condense.Round(time.Microsecond), p.Backoff.Round(time.Microsecond))
			}
			if bd := site.Budget; bd != nil {
				fmt.Fprintf(&b, " budget=%d dropped=%d coverage=%.3f",
					bd.RepBudget, bd.RepsDropped, bd.CoverageFraction)
				if site.Negotiated {
					b.WriteString(" negotiated")
				}
			}
			if a := site.Agg; a != nil {
				fmt.Fprintf(&b, " agg[%s]", a.String())
			}
		} else {
			addr := site.Addr
			if addr == "" {
				addr = "-"
			}
			fmt.Fprintf(&b, "\n  FAIL %-16s addr=%s attempts=%d reason=%s",
				name, addr, site.Attempts, site.Reason)
		}
	}
	if max, n := r.MaxSitePhases(); n > 0 {
		// max(local) + global: the distributed-runtime decomposition of
		// the paper's Figure 10, measured over the wire.
		fmt.Fprintf(&b, "\n  phases (%d/%d sites reporting): max cluster=%s max condense=%s global=%s broadcast=%s in=%dB out=%dB",
			n, r.OK, max.Cluster.Round(time.Microsecond), max.Condense.Round(time.Microsecond),
			r.GlobalStepDuration.Round(time.Microsecond), r.BroadcastDuration.Round(time.Microsecond),
			r.UplinkBytes, r.DownlinkBytes)
	}
	return b.String()
}

// readResult is what the per-connection reader goroutine delivers.
type readResult struct {
	conn       net.Conn
	addr       string
	siteID     string // best effort on failures
	m          *model.LocalModel
	phases     *SitePhases // client-reported metrics, nil for legacy uploads
	budget     *SiteBudget // budget accounting, nil for unbudgeted uploads
	agg        *AggLevel   // aggregation provenance, nil for plain sites
	negotiated bool        // connection performed the budget handshake
	err        error
	bytes      int
	dur        time.Duration
}

// readLocalModel reads and validates one site's model upload. Both the
// legacy MsgLocalModel frame (the model is the whole payload) and the
// sectioned MsgLocalModelTimed frame (model followed by optional metric
// sections) are accepted, so old clients keep working against this server.
// A connection may open with a MsgHello budget handshake; the server then
// answers with its upload byte cap and expects the model on the next frame,
// enforcing the cap it advertised.
func (s *Server) readLocalModel(conn net.Conn, deadline time.Time, out chan<- readResult) {
	start := time.Now()
	res := readResult{conn: conn, addr: conn.RemoteAddr().String()}
	conn.SetDeadline(deadline)
	msgType, payload, n, err := ReadFrame(conn)
	res.bytes = n
	if err == nil && msgType == MsgHello {
		// Budget handshake: acknowledge with the advertised cap, then
		// read the actual upload from the same connection.
		s.bytesIn.Add(int64(n))
		if _, herr := parseHello(payload); herr != nil {
			res.err = herr
			res.dur = time.Since(start)
			out <- res
			return
		}
		res.negotiated = true
		if wn, werr := WriteFrame(conn, MsgHelloAck, encodeHelloAck(s.maxUploadBytes)); werr != nil {
			res.err = fmt.Errorf("transport: writing hello ack: %w", werr)
			res.dur = time.Since(start)
			out <- res
			return
		} else {
			s.bytesOut.Add(int64(wn))
		}
		msgType, payload, n, err = ReadFrame(conn)
		res.bytes += n
	}
	if err == nil && res.negotiated && s.maxUploadBytes > 0 && int64(n) > s.maxUploadBytes {
		err = fmt.Errorf("transport: upload of %d bytes exceeds the advertised cap of %d", n, s.maxUploadBytes)
	}
	if err != nil {
		if errors.Is(err, ErrChecksum) && len(payload) > 0 {
			// Best-effort naming of the site behind the corrupt
			// upload: the id is the first payload field and usually
			// survives a bit flip elsewhere.
			res.siteID = model.PeekLocalSiteID(payload)
		}
		res.err = err
		res.dur = time.Since(start)
		out <- res
		return
	}
	s.bytesIn.Add(int64(n))
	// Best-effort identification even when the rest fails: the site id
	// is the first field of the payload.
	res.siteID = model.PeekLocalSiteID(payload)
	if msgType != MsgLocalModel && msgType != MsgLocalModelTimed {
		res.err = fmt.Errorf("transport: expected local model, got message type 0x%02x", msgType)
		res.dur = time.Since(start)
		out <- res
		return
	}
	var m model.LocalModel
	consumed, err := m.UnmarshalBinaryPrefix(payload)
	switch {
	case err != nil:
		res.err = err
	case msgType == MsgLocalModel && consumed != len(payload):
		res.err = fmt.Errorf("model: %d trailing bytes after local model", len(payload)-consumed)
	default:
		if msgType == MsgLocalModelTimed {
			phases, budget, agg, serr := parseSections(payload[consumed:])
			if serr != nil {
				res.err = serr
				break
			}
			res.phases = phases
			res.budget = budget
			res.agg = agg
		}
		if verr := m.Validate(); verr != nil {
			res.err = verr
		} else {
			res.m = &m
			res.siteID = m.SiteID
		}
	}
	res.dur = time.Since(start)
	out <- res
}

// RunRound performs one complete DBDC round with default options: accept
// site connections until the expected number of distinct sites delivered a
// model or the server timeout expires, compute the global model from
// whatever arrived ("the server proceeds with the models it has") and
// reply to every usable site. It fails only when not a single usable model
// arrived. Use RunRoundOpts for quorum control and the per-site report.
func (s *Server) RunRound() (*model.GlobalModel, error) {
	global, _, err := s.RunRoundOpts(RoundOptions{})
	return global, err
}

// RunRoundOpts is RunRound with explicit options and a per-site report.
// The report is non-nil even when the round fails.
//
// Fault behavior: the accept phase runs under a hard deadline (fixing the
// historical hang when a site never connected — the listener deadline is
// set before Accept, not after), failed uploads do not consume a site
// slot (a retrying site replaces its earlier failed attempt by id), and
// the round completes as soon as all expected sites are in, or at the
// deadline with at least Quorum usable models.
func (s *Server) RunRoundOpts(opts RoundOptions) (*model.GlobalModel, *RoundReport, error) {
	start := time.Now()
	quorum := opts.Quorum
	if quorum <= 0 {
		quorum = 1
	}
	if quorum > s.expect {
		quorum = s.expect
	}
	acceptTimeout := opts.AcceptTimeout
	if acceptTimeout <= 0 {
		acceptTimeout = s.timeout
	}
	deadline := time.Now().Add(acceptTimeout)

	// Accept-phase deadline: set on the listener *before* blocking in
	// Accept so a round with an absent site terminates.
	dl, hasDeadline := s.ln.(deadlineListener)
	if hasDeadline {
		dl.SetDeadline(deadline)
	}

	type accepted struct {
		conn net.Conn
		err  error
	}
	connCh := make(chan accepted)
	stop := make(chan struct{})
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			conn, err := s.ln.Accept()
			if err != nil {
				select {
				case connCh <- accepted{err: err}:
				case <-stop:
				}
				return
			}
			select {
			case connCh <- accepted{conn: conn}:
			case <-stop:
				conn.Close()
				return
			}
		}
	}()
	// Tear the accept goroutine down no matter how the round ends, and
	// clear the listener deadline so later rounds start fresh.
	defer func() {
		if hasDeadline {
			dl.SetDeadline(time.Now()) // unblock a pending Accept
		}
		close(stop)
		<-acceptDone
		if hasDeadline {
			dl.SetDeadline(time.Time{})
		}
	}()

	results := make(chan readResult)
	good := make(map[string]readResult) // site id -> usable upload
	attempts := make(map[string]int)    // site id -> connections seen
	var failures []SiteOutcome
	reading := 0
	conns := 0
	acceptOpen := true
	var listenErr error

	for {
		if reading == 0 && (!acceptOpen || len(good) >= s.expect) {
			break
		}
		ch := connCh
		if !acceptOpen {
			ch = nil
		}
		select {
		case a := <-ch:
			if a.err != nil {
				acceptOpen = false
				var ne net.Error
				if !(errors.As(a.err, &ne) && ne.Timeout()) {
					// Listener closed underneath us.
					listenErr = a.err
				}
				continue
			}
			conns++
			reading++
			go s.readLocalModel(a.conn, deadline, results)
		case r := <-results:
			reading--
			if r.siteID != "" {
				attempts[r.siteID]++
			}
			if r.err != nil {
				r.conn.Close()
				failures = append(failures, SiteOutcome{
					SiteID:   r.siteID,
					Addr:     r.addr,
					Reason:   r.err.Error(),
					Attempts: attempts[r.siteID],
					Bytes:    r.bytes,
					Duration: r.dur,
				})
				continue
			}
			if prev, ok := good[r.siteID]; ok {
				// A site re-uploaded (e.g. it retried after a reply
				// it never saw); keep the newest connection.
				prev.conn.Close()
			}
			good[r.siteID] = r
			if len(good) >= s.expect {
				acceptOpen = false
			}
		}
	}

	report := s.buildReport(start, quorum, good, attempts, failures, conns, opts.ExpectedSites)

	closeGood := func(msg string) {
		for _, r := range good {
			if msg != "" {
				r.conn.SetDeadline(time.Now().Add(s.timeout))
				WriteFrame(r.conn, MsgError, []byte(msg))
			}
			r.conn.Close()
		}
	}

	if listenErr != nil && len(good) < s.expect {
		closeGood("")
		return nil, report, fmt.Errorf("transport: accept: %w", listenErr)
	}
	if len(good) == 0 {
		var first string
		if len(failures) > 0 {
			first = failures[0].Reason
		} else {
			first = "no site connected before the deadline"
		}
		return nil, report, fmt.Errorf("transport: no usable local models (%d connections failed, first: %s)",
			len(failures), first)
	}
	if len(good) < quorum {
		err := fmt.Errorf("transport: quorum not met: %d usable models of %d expected, need %d",
			len(good), s.expect, quorum)
		closeGood(err.Error())
		return nil, report, err
	}

	// Deterministic server-side order, matching the in-process
	// orchestrator: models sorted by site id.
	ids := make([]string, 0, len(good))
	for id := range good {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	models := make([]*model.LocalModel, 0, len(ids))
	for _, id := range ids {
		models = append(models, good[id].m)
	}

	globalStart := time.Now()
	global, err := dbdc.GlobalStep(models, s.cfg)
	report.GlobalStepDuration = time.Since(globalStart)
	if err != nil {
		closeGood(err.Error())
		report.Duration = time.Since(start)
		return nil, report, err
	}
	if opts.Finalize != nil {
		// Interior tree node: condense the regional model, forward it to
		// the parent, and broadcast whatever comes back (the root's
		// model) to the children. On error the children get a MsgError —
		// an unreachable parent fails the whole subtree's round rather
		// than silently serving a regional model as if it were global.
		forwardStart := time.Now()
		finalized, ferr := opts.Finalize(global, report)
		report.ForwardDuration = time.Since(forwardStart)
		if ferr != nil {
			closeGood(ferr.Error())
			report.Duration = time.Since(start)
			return nil, report, fmt.Errorf("transport: finalize: %w", ferr)
		}
		if finalized != nil {
			global = finalized
		}
	}
	if s.onGlobal != nil {
		// Publish before the broadcast: classification readers switch to
		// the new model no later than the sites that trained it.
		s.onGlobal(global)
	}
	broadcastStart := time.Now()
	payload, err := global.MarshalBinary()
	if err != nil {
		closeGood(err.Error())
		report.Duration = time.Since(start)
		return nil, report, err
	}
	for _, id := range ids {
		r := good[id]
		r.conn.SetDeadline(time.Now().Add(s.timeout))
		if n, werr := WriteFrame(r.conn, MsgGlobalModel, payload); werr == nil {
			s.bytesOut.Add(int64(n))
			report.DownlinkBytes += n
		}
		r.conn.Close()
	}
	report.BroadcastDuration = time.Since(broadcastStart)
	report.Duration = time.Since(start)
	return global, report, nil
}

// buildReport assembles the per-site round report: usable sites sorted by
// id, then connection failures, then expected sites that never delivered.
func (s *Server) buildReport(start time.Time, quorum int, good map[string]readResult,
	attempts map[string]int, failures []SiteOutcome, conns int, expected []string) *RoundReport {

	report := &RoundReport{
		Expect: s.expect,
		Quorum: quorum,
		OK:     len(good),
		Conns:  conns,
	}
	ids := make([]string, 0, len(good))
	for id := range good {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		r := good[id]
		if attempts[id] > 1 {
			report.Retried++
		}
		report.UplinkBytes += r.bytes
		report.ObjectsTotal += r.m.NumObjects
		report.RepsTotal += len(r.m.Reps)
		report.Sites = append(report.Sites, SiteOutcome{
			SiteID:     id,
			Addr:       r.addr,
			OK:         true,
			Attempts:   attempts[id],
			Bytes:      r.bytes,
			Objects:    r.m.NumObjects,
			Reps:       len(r.m.Reps),
			Duration:   r.dur,
			Phases:     r.phases,
			Budget:     r.budget,
			Agg:        r.agg,
			Negotiated: r.negotiated,
		})
	}
	// Connection failures whose site later succeeded are folded into the
	// retry count, not listed as standalone failures.
	for _, f := range failures {
		if f.SiteID != "" {
			if _, ok := good[f.SiteID]; ok {
				continue
			}
		}
		report.Sites = append(report.Sites, f)
		report.Failed++
	}
	// Expected sites that never delivered a usable model and were never
	// identified on a failed connection.
	named := make(map[string]bool)
	for _, site := range report.Sites {
		if site.SiteID != "" {
			named[site.SiteID] = true
		}
	}
	for _, id := range expected {
		if named[id] {
			continue
		}
		reason := "no connection before the round deadline"
		if attempts[id] > 0 {
			reason = "no usable model before the round deadline"
		}
		report.Sites = append(report.Sites, SiteOutcome{
			SiteID:   id,
			Reason:   reason,
			Attempts: attempts[id],
		})
		report.Failed++
	}
	report.Duration = time.Since(start)
	return report
}
