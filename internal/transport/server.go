package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/model"
)

// Server is the central DBDC site: it accepts one connection per client
// site, collects their local models, derives the global model and sends it
// back on every connection.
type Server struct {
	cfg dbdc.Config
	// ExpectSites is the number of site connections one round consists of.
	expect  int
	timeout time.Duration
	ln      net.Listener

	bytesIn  atomic.Int64
	bytesOut atomic.Int64
}

// NewServer listens on addr (e.g. "127.0.0.1:0") for a round of expect
// sites. timeout bounds each connection's I/O; zero means 30s.
func NewServer(addr string, expect int, cfg dbdc.Config, timeout time.Duration) (*Server, error) {
	if expect < 1 {
		return nil, fmt.Errorf("transport: server needs at least one site, got %d", expect)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	return &Server{cfg: cfg, expect: expect, timeout: timeout, ln: ln}, nil
}

// Addr returns the address the server listens on.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// BytesIn returns the total payload bytes received from sites.
func (s *Server) BytesIn() int64 { return s.bytesIn.Load() }

// BytesOut returns the total payload bytes sent to sites.
func (s *Server) BytesOut() int64 { return s.bytesOut.Load() }

// Close releases the listener.
func (s *Server) Close() error { return s.ln.Close() }

// RunRound performs one complete DBDC round: accept the expected number of
// site connections, read a local model from each, compute the global model
// and reply to every site. Connections that fail are reported but do not
// abort the round — the server proceeds with the models it has, exactly as
// a real deployment would when a site is down (the incremental DBSCAN
// support means a site can catch up later).
func (s *Server) RunRound() (*model.GlobalModel, error) {
	type siteConn struct {
		conn  net.Conn
		model *model.LocalModel
		err   error
	}
	conns := make([]siteConn, 0, s.expect)
	for len(conns) < s.expect {
		conn, err := s.ln.Accept()
		if err != nil {
			// Listener closed underneath us: fail the round.
			for _, sc := range conns {
				sc.conn.Close()
			}
			return nil, fmt.Errorf("transport: accept: %w", err)
		}
		conns = append(conns, siteConn{conn: conn})
	}
	// Read every site's model concurrently.
	var wg sync.WaitGroup
	for i := range conns {
		wg.Add(1)
		go func(sc *siteConn) {
			defer wg.Done()
			sc.conn.SetDeadline(time.Now().Add(s.timeout))
			msgType, payload, n, err := ReadFrame(sc.conn)
			if err != nil {
				sc.err = err
				return
			}
			s.bytesIn.Add(int64(n))
			if msgType != MsgLocalModel {
				sc.err = fmt.Errorf("transport: expected local model, got message type 0x%02x", msgType)
				return
			}
			var m model.LocalModel
			if err := m.UnmarshalBinary(payload); err != nil {
				sc.err = err
				return
			}
			if err := m.Validate(); err != nil {
				sc.err = err
				return
			}
			sc.model = &m
		}(&conns[i])
	}
	wg.Wait()
	var models []*model.LocalModel
	var failed []error
	for i := range conns {
		if conns[i].err != nil {
			failed = append(failed, conns[i].err)
			continue
		}
		models = append(models, conns[i].model)
	}
	if len(models) == 0 {
		for i := range conns {
			conns[i].conn.Close()
		}
		return nil, fmt.Errorf("transport: no usable local models (%d sites failed, first: %v)",
			len(failed), failed[0])
	}
	global, err := dbdc.GlobalStep(models, s.cfg)
	if err != nil {
		// Tell the healthy sites the round failed, then bail.
		for i := range conns {
			if conns[i].err == nil {
				WriteFrame(conns[i].conn, MsgError, []byte(err.Error()))
			}
			conns[i].conn.Close()
		}
		return nil, err
	}
	payload, err := global.MarshalBinary()
	if err != nil {
		return nil, err
	}
	for i := range conns {
		if conns[i].err == nil {
			conns[i].conn.SetDeadline(time.Now().Add(s.timeout))
			if n, werr := WriteFrame(conns[i].conn, MsgGlobalModel, payload); werr == nil {
				s.bytesOut.Add(int64(n))
			}
		}
		conns[i].conn.Close()
	}
	return global, nil
}
