package transport

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func testAggLevel() AggLevel {
	return AggLevel{
		Level:              2,
		SitesExpected:      3,
		SitesOK:            2,
		SitesFailed:        1,
		RegionalClusters:   7,
		Objects:            4500,
		RoundDuration:      1200 * time.Millisecond,
		GlobalStepDuration: 40 * time.Millisecond,
		CondenseDuration:   3 * time.Millisecond,
		Sources: []AggSource{
			{SiteID: "site-a0", Reps: 120},
			{SiteID: "agg-lower", Reps: 77},
		},
	}
}

func TestAggLevelSectionRoundTrip(t *testing.T) {
	want := testAggLevel()
	data := AppendAggLevelSection(nil, want)
	_, _, got, err := ParseSections(data)
	if err != nil {
		t.Fatalf("ParseSections: %v", err)
	}
	if got == nil {
		t.Fatal("agg section not returned")
	}
	if !reflect.DeepEqual(*got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", *got, want)
	}
}

func TestAggLevelSectionNoSources(t *testing.T) {
	want := AggLevel{Level: 1, SitesExpected: 2, SitesOK: 2}
	data := AppendAggLevelSection(nil, want)
	_, _, got, err := ParseSections(data)
	if err != nil || got == nil {
		t.Fatalf("ParseSections: %v, agg %v", err, got)
	}
	if !reflect.DeepEqual(*got, want) {
		t.Fatalf("round trip mismatch: got %+v want %+v", *got, want)
	}
}

// TestAggLevelSectionAlongsideOthers: the provenance section coexists with
// the phases and budget sections and unknown ids in one section area.
func TestAggLevelSectionAlongsideOthers(t *testing.T) {
	wantAgg := testAggLevel()
	wantPhases := SitePhases{Workers: 4, Cluster: time.Second}
	wantBudget := SiteBudget{RepBudget: 8, RepsDropped: 3, CoverageFraction: 0.9}
	data := appendSitePhasesSection(nil, wantPhases)
	data = append(data, 0x7e, 3, 0, 0, 0, 1, 2, 3) // unknown section, skipped
	data = appendSiteBudgetSection(data, wantBudget)
	data = AppendAggLevelSection(data, wantAgg)
	phases, budget, agg, err := ParseSections(data)
	if err != nil {
		t.Fatalf("ParseSections: %v", err)
	}
	if phases == nil || *phases != wantPhases {
		t.Errorf("phases = %+v, want %+v", phases, wantPhases)
	}
	if budget == nil || *budget != wantBudget {
		t.Errorf("budget = %+v, want %+v", budget, wantBudget)
	}
	if agg == nil || !reflect.DeepEqual(*agg, wantAgg) {
		t.Errorf("agg = %+v, want %+v", agg, wantAgg)
	}
}

// TestAggLevelSectionMalformed: bad bodies are ignored (provenance is
// metadata), truncated section headers are an error (the frame passed its
// CRC, so truncation means a broken encoder).
func TestAggLevelSectionMalformed(t *testing.T) {
	full := AppendAggLevelSection(nil, testAggLevel())

	// Unknown body version: section ignored, walk succeeds.
	bad := append([]byte(nil), full...)
	bad[sectionHeaderSize] = 99
	_, _, agg, err := ParseSections(bad)
	if err != nil {
		t.Fatalf("unknown version errored the walk: %v", err)
	}
	if agg != nil {
		t.Fatal("unknown version was decoded")
	}

	// Source count pointing past the body: ignored, not an error.
	bad = AppendAggLevelSection(nil, AggLevel{Level: 1})
	bad[sectionHeaderSize+53] = 0xff // claim 255 sources with an empty list
	if _, _, agg, err = ParseSections(bad); err != nil || agg != nil {
		t.Fatalf("oversized source count: agg %v err %v", agg, err)
	}

	// Truncated mid-body: the section walk must reject it.
	for cut := 1; cut < len(full); cut++ {
		if _, _, _, err := ParseSections(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestAggLevelString(t *testing.T) {
	a := testAggLevel()
	s := a.String()
	for _, want := range []string{"level=2", "children=2/3", "site-a0:120", "agg-lower:77"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

// FuzzAggSections fuzzes the section walker with aggregation provenance
// sections the way FuzzBudgetSections pins the budget section: no input may
// panic, and every accepted provenance section round-trips canonically
// through the appender.
func FuzzAggSections(f *testing.F) {
	f.Add(AppendAggLevelSection(nil, testAggLevel()))
	f.Add(AppendAggLevelSection(nil, AggLevel{Level: 1}))
	f.Add(AppendAggLevelSection(appendSitePhasesSection(nil, SitePhases{Workers: 2}), testAggLevel()))
	f.Add(appendSiteBudgetSection(AppendAggLevelSection(nil, AggLevel{Level: 3,
		Sources: []AggSource{{SiteID: "x", Reps: 1}}}), SiteBudget{RepBudget: 1}))
	f.Add([]byte{})
	f.Add([]byte{sectionAggLevel, 0xff, 0xff, 0xff, 0xff}) // oversized body length
	f.Add(AppendAggLevelSection(nil, AggLevel{})[:9])      // truncated body
	seed := AppendAggLevelSection(nil, AggLevel{Level: 1})
	seed[sectionHeaderSize] = 99 // unknown body version
	f.Add(seed)
	seed = AppendAggLevelSection(nil, AggLevel{Level: 1, Sources: []AggSource{{SiteID: "a", Reps: 2}}})
	seed[sectionHeaderSize+53] = 0x40 // source count beyond the body
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, agg, err := ParseSections(data)
		if err != nil || agg == nil {
			return
		}
		re := AppendAggLevelSection(nil, *agg)
		_, _, back, rerr := ParseSections(re)
		if rerr != nil || back == nil {
			t.Fatalf("re-encoded provenance section rejected: %v", rerr)
		}
		if !reflect.DeepEqual(*back, *agg) {
			t.Fatalf("provenance section did not round-trip:\n got %+v\nwant %+v", *back, *agg)
		}
	})
}
