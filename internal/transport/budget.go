package transport

import (
	"encoding/binary"
	"fmt"
	"math"
)

// This file implements the wire side of the SDBDC representative budgets
// (see internal/dbscan/budget.go): the budget accounting section a budgeted
// site attaches to its upload, and the optional MsgHello/MsgHelloAck
// handshake through which the server advertises a per-upload byte cap that
// the client honors by shrinking its budget until the model fits.
//
// All three encodings reuse the section format of phases.go —
// [id byte][u32 body length][body] — so every parser on either side skips
// what it does not know:
//
//   - an old client never sends MsgHello and attaches no budget section;
//     the new server sees a plain (unbudgeted) upload,
//   - a new client against an old server has its MsgHello rejected by a
//     connection close and downgrades to the established timed upload,
//     whose unknown budget section the old sectioned parser skips,
//   - a future peer can append sections to the hello or the ack without
//     breaking either of today's ends.
const (
	// sectionSiteBudget carries the budget accounting of a budgeted
	// upload: the per-cluster cap the model was built under, how many
	// specific cores the budget dropped, and the member coverage the
	// survivors retain.
	sectionSiteBudget byte = 0x02
	// sectionBudgetCap is the server's upload byte cap inside a
	// MsgHelloAck payload.
	sectionBudgetCap byte = 0x03
	// sectionClientHello is the client's self-description inside a
	// MsgHello payload.
	sectionClientHello byte = 0x04

	siteBudgetVersion byte = 1
	// siteBudgetBodyLen: version byte, rep budget u32, reps dropped u32,
	// coverage fraction f64.
	siteBudgetBodyLen = 1 + 4 + 4 + 8

	budgetCapVersion byte = 1
	// budgetCapBodyLen: version byte, max upload bytes u64.
	budgetCapBodyLen = 1 + 8

	clientHelloVersion byte = 1
	// clientHelloBodyLen: version byte, configured rep budget u32.
	clientHelloBodyLen = 1 + 4
)

// SiteBudget is the budget accounting a site reports alongside a budgeted
// upload (the sectionSiteBudget trailer of a MsgLocalModelTimed frame).
type SiteBudget struct {
	// RepBudget is the per-cluster representative cap the transmitted
	// model was built under — after any cap-driven shrink, so it may be
	// below the site's configured budget.
	RepBudget int
	// RepsDropped is how many specific cores the budget removed compared
	// to the unbudgeted model.
	RepsDropped int
	// CoverageFraction is the fraction of clustered objects still within
	// the specific ε-range of a transmitted representative.
	CoverageFraction float64
}

// appendSiteBudgetSection appends the encoded budget section to dst.
func appendSiteBudgetSection(dst []byte, b SiteBudget) []byte {
	dst = append(dst, sectionSiteBudget)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(siteBudgetBodyLen))
	dst = append(dst, siteBudgetVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(b.RepBudget))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(b.RepsDropped))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(b.CoverageFraction))
	return dst
}

// parseSiteBudgetBody decodes a version-1 (or newer, prefix-compatible)
// budget section body. ok is false on a short body or unknown version — the
// section is then ignored, it never fails the upload.
func parseSiteBudgetBody(body []byte) (SiteBudget, bool) {
	if len(body) < siteBudgetBodyLen || body[0] != siteBudgetVersion {
		return SiteBudget{}, false
	}
	return SiteBudget{
		RepBudget:        int(binary.LittleEndian.Uint32(body[1:5])),
		RepsDropped:      int(binary.LittleEndian.Uint32(body[5:9])),
		CoverageFraction: math.Float64frombits(binary.LittleEndian.Uint64(body[9:17])),
	}, true
}

// encodeHello builds the MsgHello payload: the client's configured
// per-cluster budget, informational for logs and future policy.
func encodeHello(repBudget int) []byte {
	dst := make([]byte, 0, sectionHeaderSize+clientHelloBodyLen)
	dst = append(dst, sectionClientHello)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(clientHelloBodyLen))
	dst = append(dst, clientHelloVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(repBudget))
	return dst
}

// parseHello extracts the client's configured budget from a MsgHello
// payload. Unknown sections are skipped; a missing or unreadable hello
// section yields (0, nil) — the handshake still succeeds, the field is
// informational.
func parseHello(data []byte) (repBudget int, err error) {
	err = walkSections(data, func(id byte, body []byte) {
		if id == sectionClientHello && len(body) >= clientHelloBodyLen && body[0] == clientHelloVersion {
			repBudget = int(binary.LittleEndian.Uint32(body[1:5]))
		}
	})
	return repBudget, err
}

// encodeHelloAck builds the MsgHelloAck payload advertising the server's
// upload byte cap. cap 0 (no constraint) encodes as an empty section area —
// byte-identical to a future server with nothing to say.
func encodeHelloAck(maxUploadBytes int64) []byte {
	if maxUploadBytes <= 0 {
		return nil
	}
	dst := make([]byte, 0, sectionHeaderSize+budgetCapBodyLen)
	dst = append(dst, sectionBudgetCap)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(budgetCapBodyLen))
	dst = append(dst, budgetCapVersion)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(maxUploadBytes))
	return dst
}

// parseHelloAck extracts the upload byte cap from a MsgHelloAck payload.
// 0 means the server advertised no constraint (empty area, unknown
// sections only, or an unreadable cap body — all degrade to uncapped).
func parseHelloAck(data []byte) (maxUploadBytes int64, err error) {
	err = walkSections(data, func(id byte, body []byte) {
		if id == sectionBudgetCap && len(body) >= budgetCapBodyLen && body[0] == budgetCapVersion {
			v := binary.LittleEndian.Uint64(body[1:9])
			if v <= math.MaxInt64 {
				maxUploadBytes = int64(v)
			}
		}
	})
	return maxUploadBytes, err
}

// walkSections iterates a section area, invoking fn for every
// well-delimited section. A truncated header or body is an error: the bytes
// passed the frame CRC, so truncation means a broken encoder, not line
// noise.
func walkSections(data []byte, fn func(id byte, body []byte)) error {
	for len(data) > 0 {
		if len(data) < sectionHeaderSize {
			return fmt.Errorf("transport: truncated section header: %d trailing bytes", len(data))
		}
		id := data[0]
		n := int(binary.LittleEndian.Uint32(data[1:5]))
		data = data[sectionHeaderSize:]
		if n > len(data) {
			return fmt.Errorf("transport: section 0x%02x advertises %d bytes, %d remain", id, n, len(data))
		}
		fn(id, data[:n])
		data = data[n:]
	}
	return nil
}
