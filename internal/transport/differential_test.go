package transport

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/model"
)

// TestDifferentialExecutionModes is the differential test of the three
// execution modes DBDC has: the in-process orchestrator run sequentially,
// the same orchestrator with one goroutine per site, and a full loopback
// TCP round through the transport. For randomized datasets and configs all
// three must produce the identical global model (byte-identical wire
// encoding — the pipeline is deterministic) and identical labelings.
func TestDifferentialExecutionModes(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep skipped in -short")
	}
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))

			// Random scenario: 2-4 sites, each a mix of shared and
			// private blobs plus uniform noise.
			nSites := 2 + rng.Intn(3)
			shared := blob(rng, 0, 0, 150+rng.Intn(100))
			chunk := len(shared) / nSites
			sites := make([]dbdc.Site, nSites)
			for i := range sites {
				pts := append([]geom.Point(nil), shared[i*chunk:(i+1)*chunk]...)
				// Private cluster, sometimes shared across two sites.
				cx, cy := 4+3*rng.Float64(), -2+4*rng.Float64()
				pts = append(pts, blob(rng, cx, cy, 60+rng.Intn(60))...)
				for j := 0; j < 15; j++ { // noise
					pts = append(pts, geom.Point{rng.Float64()*20 - 10, rng.Float64()*20 - 10})
				}
				sites[i] = dbdc.Site{ID: fmt.Sprintf("site-%d", i+1), Points: pts}
			}
			cfg := dbdc.Config{
				Local: dbscan.Params{
					Eps:    0.35 + 0.3*rng.Float64(),
					MinPts: 4 + rng.Intn(3),
				},
			}
			if rng.Intn(2) == 1 {
				cfg.Model = model.RepKMeans
			}

			seqCfg := cfg
			seqCfg.Sequential = true
			seq, err := dbdc.Run(sites, seqCfg)
			if err != nil {
				t.Fatal(err)
			}
			conc, err := dbdc.Run(sites, cfg)
			if err != nil {
				t.Fatal(err)
			}

			seqGlobal := mustMarshalGlobal(t, seq.Global)
			concGlobal := mustMarshalGlobal(t, conc.Global)
			if !bytes.Equal(seqGlobal, concGlobal) {
				t.Fatal("sequential and concurrent runs produced different global models")
			}
			for _, s := range sites {
				a := seq.Sites[s.ID].Labels
				b := conc.Sites[s.ID].Labels
				if len(a) != len(b) {
					t.Fatalf("site %s: labeling lengths differ", s.ID)
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("site %s: label %d differs: %v vs %v", s.ID, i, a[i], b[i])
					}
				}
			}

			// Full loopback transport round.
			srv, err := NewServer("127.0.0.1:0", nSites, cfg, 10*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			done := make(chan error, 1)
			var tcpGlobal *model.GlobalModel
			go func() {
				g, err := srv.RunRound()
				tcpGlobal = g
				done <- err
			}()
			var wg sync.WaitGroup
			labels := make([]cluster.Labeling, nSites)
			errs := make([]error, nSites)
			for i, s := range sites {
				wg.Add(1)
				go func(i int, s dbdc.Site) {
					defer wg.Done()
					rep, err := RunSite(srv.Addr(), s.ID, s.Points, cfg, 10*time.Second)
					if err != nil {
						errs[i] = err
						return
					}
					labels[i] = rep.Labels
				}(i, s)
			}
			wg.Wait()
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			for i, err := range errs {
				if err != nil {
					t.Fatalf("site %s: %v", sites[i].ID, err)
				}
			}
			if !bytes.Equal(mustMarshalGlobal(t, tcpGlobal), seqGlobal) {
				t.Fatal("transport round produced a different global model than the in-process run")
			}
			for i, s := range sites {
				want := seq.Sites[s.ID].Labels
				for j := range want {
					if labels[i][j] != want[j] {
						t.Fatalf("site %s: transport label %d differs", s.ID, j)
					}
				}
			}
		})
	}
}

func mustMarshalGlobal(t *testing.T, g *model.GlobalModel) []byte {
	t.Helper()
	if g == nil {
		t.Fatal("nil global model")
	}
	b, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return b
}
