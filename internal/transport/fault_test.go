package transport

import (
	"errors"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/faultnet"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/model"
)

// newFaultServer builds a server whose listener injects the given plan.
func newFaultServer(t *testing.T, plan faultnet.Plan, expect int, timeout time.Duration) (*Server, *faultnet.Listener) {
	t.Helper()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fln := faultnet.NewListener(inner, plan)
	srv, err := NewServerListener(fln, expect, testCfg(), timeout)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, fln
}

// runRound runs RunRoundOpts in the background.
func runRound(srv *Server, opts RoundOptions) chan struct {
	global *model.GlobalModel
	report *RoundReport
	err    error
} {
	done := make(chan struct {
		global *model.GlobalModel
		report *RoundReport
		err    error
	}, 1)
	go func() {
		g, r, err := srv.RunRoundOpts(opts)
		done <- struct {
			global *model.GlobalModel
			report *RoundReport
			err    error
		}{g, r, err}
	}()
	return done
}

// fastRetry is a deterministic, quick retry policy for tests.
func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
}

// TestFaultScenarios is the table-driven fault matrix of the transport:
// every scenario wires scripted faultnet failures into a live round and
// asserts both the site-side and the server-side outcome. All scripts are
// deterministic: faults fire at fixed byte offsets on fixed connection
// indices, and data comes from fixed seeds.
func TestFaultScenarios(t *testing.T) {
	type outcome struct {
		global   *model.GlobalModel
		report   *RoundReport
		roundErr error
		site     *SiteReport
		siteErr  error
	}
	cases := []struct {
		name string
		run  func(t *testing.T) outcome
		want func(t *testing.T, o outcome)
	}{
		{
			// The classic transient failure: the connection dies while
			// the site uploads. The client must reconnect, resend the
			// full model and complete the round.
			name: "mid-upload drop, retry succeeds",
			run: func(t *testing.T) outcome {
				srv, _ := newFaultServer(t, nil, 1, 5*time.Second)
				done := runRound(srv, RoundOptions{AcceptTimeout: 5 * time.Second})
				dialer := &faultnet.Dialer{Plan: faultnet.Seq(
					&faultnet.Faults{CutAfterWrite: 16}, // attempt 1 truncates mid-frame
				)}
				c := &Client{
					Addr:    srv.Addr(),
					Timeout: 500 * time.Millisecond, // bounds attempt 1's wait for a reply
					Retry:   fastRetry(3),
					Dial:    dialer.DialTimeout,
					Rand:    rand.New(rand.NewSource(1)),
				}
				rng := rand.New(rand.NewSource(10))
				rep, siteErr := RunSiteClient(c, "site-1", blob(rng, 0, 0, 200), testCfg())
				r := <-done
				return outcome{global: r.global, report: r.report, roundErr: r.err, site: rep, siteErr: siteErr}
			},
			want: func(t *testing.T, o outcome) {
				if o.siteErr != nil {
					t.Fatalf("site failed despite retry: %v", o.siteErr)
				}
				if o.site.Attempts != 2 {
					t.Errorf("site attempts = %d, want 2", o.site.Attempts)
				}
				if o.roundErr != nil {
					t.Fatalf("round failed: %v", o.roundErr)
				}
				if o.global == nil || o.global.NumClusters != 1 {
					t.Fatalf("global model: %+v", o.global)
				}
				if o.report.OK != 1 {
					t.Errorf("report.OK = %d, want 1\n%s", o.report.OK, o.report)
				}
				if o.report.Conns < 2 {
					t.Errorf("report.Conns = %d, want >= 2 (failed + retried)", o.report.Conns)
				}
			},
		},
		{
			// A site that never connects must not hang the round: the
			// accept deadline fires and the quorum completes the round
			// with the sites that did show up.
			name: "absent site, quorum completes",
			run: func(t *testing.T) outcome {
				srv, _ := newFaultServer(t, nil, 2, 5*time.Second)
				done := runRound(srv, RoundOptions{
					Quorum:        1,
					AcceptTimeout: 400 * time.Millisecond,
					ExpectedSites: []string{"site-1", "ghost"},
				})
				rng := rand.New(rand.NewSource(11))
				rep, siteErr := RunSite(srv.Addr(), "site-1", blob(rng, 0, 0, 200), testCfg(), 5*time.Second)
				r := <-done
				return outcome{global: r.global, report: r.report, roundErr: r.err, site: rep, siteErr: siteErr}
			},
			want: func(t *testing.T, o outcome) {
				if o.siteErr != nil {
					t.Fatalf("healthy site failed: %v", o.siteErr)
				}
				if o.roundErr != nil {
					t.Fatalf("round failed: %v", o.roundErr)
				}
				var ghost *SiteOutcome
				for i := range o.report.Sites {
					if o.report.Sites[i].SiteID == "ghost" {
						ghost = &o.report.Sites[i]
					}
				}
				if ghost == nil || ghost.OK {
					t.Fatalf("report does not name the absent site:\n%s", o.report)
				}
				if !strings.Contains(ghost.Reason, "no connection") {
					t.Errorf("ghost reason = %q", ghost.Reason)
				}
			},
		},
		{
			// A bit flip in the upload must surface as ErrChecksum on
			// the server, be attributed to the right site (the id field
			// decodes before the flipped byte), and must not take the
			// round down for the healthy site.
			name: "corrupt frame, typed error, round proceeds",
			run: func(t *testing.T) outcome {
				srv, _ := newFaultServer(t, nil, 2, 5*time.Second)
				done := runRound(srv, RoundOptions{
					Quorum:        1,
					AcceptTimeout: 600 * time.Millisecond,
				})
				// Flip a byte deep in the payload (rep coordinates),
				// well past the header and the site-id field.
				dialer := &faultnet.Dialer{Plan: faultnet.Always(
					&faultnet.Faults{FlipWriteByte: 60},
				)}
				bad := &Client{
					Addr:    srv.Addr(),
					Timeout: 2 * time.Second,
					Retry:   RetryPolicy{MaxAttempts: 1},
					Dial:    dialer.DialTimeout,
				}
				rng := rand.New(rand.NewSource(12))
				badModel := mustLocalModel(t, "corrupt-site", blob(rng, 0, 0, 120))
				goodPts := blob(rng, 0, 0, 200)
				var wg sync.WaitGroup
				var badErr error
				wg.Add(1)
				go func() {
					defer wg.Done()
					_, _, badErr = bad.SendModel(badModel)
				}()
				rep, siteErr := RunSite(srv.Addr(), "good-site", goodPts, testCfg(), 5*time.Second)
				wg.Wait()
				r := <-done
				o := outcome{global: r.global, report: r.report, roundErr: r.err, site: rep, siteErr: siteErr}
				if badErr == nil {
					t.Error("corrupt site's upload succeeded")
				}
				return o
			},
			want: func(t *testing.T, o outcome) {
				if o.siteErr != nil {
					t.Fatalf("healthy site failed: %v", o.siteErr)
				}
				if o.roundErr != nil {
					t.Fatalf("round failed: %v", o.roundErr)
				}
				var corrupt *SiteOutcome
				for i := range o.report.Sites {
					if o.report.Sites[i].SiteID == "corrupt-site" {
						corrupt = &o.report.Sites[i]
					}
				}
				if corrupt == nil || corrupt.OK {
					t.Fatalf("report does not name the corrupt site:\n%s", o.report)
				}
				if !strings.Contains(corrupt.Reason, "checksum") {
					t.Errorf("corrupt reason = %q, want checksum mismatch", corrupt.Reason)
				}
			},
		},
		{
			// A site that stalls mid-upload must be cut off by the
			// round deadline while the healthy site completes.
			name: "stalled site, deadline fires",
			run: func(t *testing.T) outcome {
				srv, _ := newFaultServer(t, nil, 2, 5*time.Second)
				done := runRound(srv, RoundOptions{
					Quorum:        1,
					AcceptTimeout: 500 * time.Millisecond,
				})
				dialer := &faultnet.Dialer{Plan: faultnet.Always(
					&faultnet.Faults{StallWriteAfter: 16},
				)}
				stalled := &Client{
					Addr:    srv.Addr(),
					Timeout: 700 * time.Millisecond, // the stalled write unblocks here
					Retry:   RetryPolicy{MaxAttempts: 1},
					Dial:    dialer.DialTimeout,
				}
				rng := rand.New(rand.NewSource(13))
				stalledModel := mustLocalModel(t, "stalled-site", blob(rng, 0, 0, 120))
				goodPts := blob(rng, 0, 0, 200)
				var wg sync.WaitGroup
				var stallErr error
				wg.Add(1)
				go func() {
					defer wg.Done()
					_, _, stallErr = stalled.SendModel(stalledModel)
				}()
				start := time.Now()
				rep, siteErr := RunSite(srv.Addr(), "good-site", goodPts, testCfg(), 5*time.Second)
				r := <-done
				if el := time.Since(start); el > 3*time.Second {
					t.Errorf("round took %v, deadline did not fire", el)
				}
				wg.Wait()
				o := outcome{global: r.global, report: r.report, roundErr: r.err, site: rep, siteErr: siteErr}
				if stallErr == nil {
					t.Error("stalled site's upload succeeded")
				}
				return o
			},
			want: func(t *testing.T, o outcome) {
				if o.siteErr != nil {
					t.Fatalf("healthy site failed: %v", o.siteErr)
				}
				if o.roundErr != nil {
					t.Fatalf("round failed: %v", o.roundErr)
				}
				if o.report.OK != 1 || o.report.Failed < 1 {
					t.Errorf("report ok=%d failed=%d\n%s", o.report.OK, o.report.Failed, o.report)
				}
			},
		},
		{
			// Scripted refusal on the server side: the first connection
			// is reset before the protocol starts; the retry lands on a
			// clean connection.
			name: "connection refused once, retry succeeds",
			run: func(t *testing.T) outcome {
				srv, _ := newFaultServer(t, faultnet.Seq(
					&faultnet.Faults{Refuse: true},
				), 1, 5*time.Second)
				done := runRound(srv, RoundOptions{AcceptTimeout: 5 * time.Second})
				c := &Client{
					Addr:    srv.Addr(),
					Timeout: 500 * time.Millisecond,
					Retry:   fastRetry(3),
					Rand:    rand.New(rand.NewSource(2)),
				}
				rng := rand.New(rand.NewSource(14))
				rep, siteErr := RunSiteClient(c, "site-1", blob(rng, 0, 0, 200), testCfg())
				r := <-done
				return outcome{global: r.global, report: r.report, roundErr: r.err, site: rep, siteErr: siteErr}
			},
			want: func(t *testing.T, o outcome) {
				if o.siteErr != nil {
					t.Fatalf("site failed despite retry: %v", o.siteErr)
				}
				if o.site.Attempts < 2 {
					t.Errorf("site attempts = %d, want >= 2", o.site.Attempts)
				}
				if o.roundErr != nil || o.global == nil {
					t.Fatalf("round: global=%v err=%v", o.global, o.roundErr)
				}
			},
		},
		{
			// Injected latency slows the round down but changes nothing
			// about its outcome.
			name: "slow link, round still completes",
			run: func(t *testing.T) outcome {
				srv, _ := newFaultServer(t, faultnet.Always(
					&faultnet.Faults{ReadLatency: 20 * time.Millisecond},
				), 1, 5*time.Second)
				done := runRound(srv, RoundOptions{AcceptTimeout: 5 * time.Second})
				rng := rand.New(rand.NewSource(15))
				rep, siteErr := RunSite(srv.Addr(), "site-1", blob(rng, 0, 0, 200), testCfg(), 5*time.Second)
				r := <-done
				return outcome{global: r.global, report: r.report, roundErr: r.err, site: rep, siteErr: siteErr}
			},
			want: func(t *testing.T, o outcome) {
				if o.siteErr != nil || o.roundErr != nil {
					t.Fatalf("site=%v round=%v", o.siteErr, o.roundErr)
				}
				if o.report.OK != 1 {
					t.Errorf("report.OK = %d", o.report.OK)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			tc.want(t, tc.run(t))
		})
	}
}

// mustLocalModel clusters pts locally and returns the model.
func mustLocalModel(t *testing.T, siteID string, pts []geom.Point) *model.LocalModel {
	t.Helper()
	outcome, err := dbdc.LocalStep(siteID, pts, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	return outcome.Model
}

// TestQuorumRoundWithPermanentFailure is the acceptance scenario: four
// sites, one scripted to fail permanently mid-upload. With Quorum 3 the
// round completes on the three healthy sites and the report names the
// failed site with a reason.
func TestQuorumRoundWithPermanentFailure(t *testing.T) {
	srv, _ := newFaultServer(t, nil, 4, 5*time.Second)
	done := runRound(srv, RoundOptions{
		Quorum:        3,
		AcceptTimeout: 700 * time.Millisecond,
		ExpectedSites: []string{"site-1", "site-2", "site-3", "site-4"},
	})
	rng := rand.New(rand.NewSource(20))
	shared := blob(rng, 0, 0, 400)
	data := map[string][]geom.Point{
		"site-1": shared[:100],
		"site-2": shared[100:200],
		"site-3": shared[200:300],
		"site-4": shared[300:],
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	siteErrs := make(map[string]error)
	for id, pts := range data {
		wg.Add(1)
		go func(id string, pts []geom.Point) {
			defer wg.Done()
			c := &Client{
				Addr:    srv.Addr(),
				Timeout: 3 * time.Second,
				Retry:   fastRetry(3),
				Rand:    rand.New(rand.NewSource(3)),
			}
			if id == "site-4" {
				// Permanent failure: every attempt truncates the upload
				// mid-frame.
				dialer := &faultnet.Dialer{Plan: faultnet.Always(
					&faultnet.Faults{CutAfterWrite: 16},
				)}
				c.Dial = dialer.DialTimeout
				c.Timeout = 200 * time.Millisecond
			}
			_, err := RunSiteClient(c, id, pts, testCfg())
			mu.Lock()
			siteErrs[id] = err
			mu.Unlock()
		}(id, pts)
	}
	wg.Wait()
	r := <-done
	if r.err != nil {
		t.Fatalf("round failed: %v\n%s", r.err, r.report)
	}
	if r.global == nil || r.global.NumClusters != 1 {
		t.Fatalf("global model: %+v", r.global)
	}
	for _, id := range []string{"site-1", "site-2", "site-3"} {
		if siteErrs[id] != nil {
			t.Errorf("healthy site %s failed: %v", id, siteErrs[id])
		}
	}
	if siteErrs["site-4"] == nil {
		t.Error("permanently failing site succeeded")
	}
	if r.report.OK != 3 || r.report.Quorum != 3 {
		t.Fatalf("report ok=%d quorum=%d\n%s", r.report.OK, r.report.Quorum, r.report)
	}
	var bad *SiteOutcome
	for i := range r.report.Sites {
		if r.report.Sites[i].SiteID == "site-4" && !r.report.Sites[i].OK {
			bad = &r.report.Sites[i]
		}
	}
	if bad == nil {
		t.Fatalf("report does not name site-4 as failed:\n%s", r.report)
	}
	if bad.Reason == "" {
		t.Error("site-4 failure has no reason")
	}
}

// TestQuorumNotMet: when fewer sites than the quorum deliver, the round
// must fail with a clear error and the healthy sites must be told.
func TestQuorumNotMet(t *testing.T) {
	srv, _ := newFaultServer(t, nil, 3, 5*time.Second)
	done := runRound(srv, RoundOptions{
		Quorum:        2,
		AcceptTimeout: 300 * time.Millisecond,
	})
	rng := rand.New(rand.NewSource(21))
	_, siteErr := RunSite(srv.Addr(), "site-1", blob(rng, 0, 0, 200), testCfg(), 2*time.Second)
	r := <-done
	if r.err == nil {
		t.Fatal("round with 1 of 2 quorum succeeded")
	}
	if !strings.Contains(r.err.Error(), "quorum") {
		t.Errorf("round error = %v, want quorum failure", r.err)
	}
	if r.report == nil || r.report.OK != 1 {
		t.Fatalf("report: %+v", r.report)
	}
	// The healthy site gets the quorum failure as a server-reported
	// error rather than a hang or a bare connection reset. RunSite's
	// default policy treats it as permanent (no pointless retries).
	if siteErr == nil {
		t.Fatal("healthy site got no error from a failed round")
	}
	if !strings.Contains(siteErr.Error(), "quorum") {
		t.Errorf("site error = %v, want server-reported quorum failure", siteErr)
	}
}

// TestAcceptDeadlineRegression guards the historical bug where RunRound
// set deadlines only after Accept returned: with one connected-but-silent
// client and one absent site the accept loop hung forever. Now the
// accept-phase deadline bounds the round.
func TestAcceptDeadlineRegression(t *testing.T) {
	srv, _ := newFaultServer(t, nil, 2, 400*time.Millisecond)
	done := runRound(srv, RoundOptions{}) // default options: deadline = server timeout
	// One client connects and sends nothing. The second never connects,
	// so the old accept loop would block in Accept with no deadline.
	silent, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	select {
	case r := <-done:
		// No usable model at all: the round must fail, not hang.
		if r.err == nil {
			t.Fatal("round with zero models succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunRound hung: accept-phase deadline not applied")
	}
}

// TestRetryPolicyBackoff pins the backoff schedule: exponential doubling
// from BaseDelay, capped at MaxDelay, deterministic without jitter.
func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 6, BaseDelay: 10 * time.Millisecond, MaxDelay: 45 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		45 * time.Millisecond, 45 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.delay(i+1, nil); got != w {
			t.Errorf("delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Jitter stays within ±Jitter of the nominal delay.
	p.Jitter = 0.5
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		d := p.delay(1, rng)
		if d < 5*time.Millisecond || d > 15*time.Millisecond {
			t.Fatalf("jittered delay %v outside [5ms,15ms]", d)
		}
	}
}

// TestRetryGivesUpOnPermanentError: a server-reported error must not be
// retried.
func TestRetryGivesUpOnPermanentError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			ReadFrame(conn)
			WriteFrame(conn, MsgError, []byte("round failed"))
			conn.Close()
		}
	}()
	c := &Client{Addr: ln.Addr().String(), Timeout: time.Second, Retry: fastRetry(5)}
	m := &model.LocalModel{SiteID: "s", Kind: model.RepScor, EpsLocal: 1, MinPts: 3, NumObjects: 1}
	_, stats, err := c.SendModel(m)
	if err == nil || !strings.Contains(err.Error(), "round failed") {
		t.Fatalf("got %v", err)
	}
	if Retryable(err) {
		t.Error("server-reported error classified retryable")
	}
	if stats.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (no retry on permanent error)", stats.Attempts)
	}
}

// TestRetryExhaustion: with every attempt failing, SendModel reports the
// attempt count and the last error.
func TestRetryExhaustion(t *testing.T) {
	dialer := &faultnet.Dialer{Plan: faultnet.Always(&faultnet.Faults{Refuse: true})}
	c := &Client{
		Addr:    "127.0.0.1:1",
		Timeout: time.Second,
		Retry:   fastRetry(3),
		Dial:    dialer.DialTimeout,
	}
	m := &model.LocalModel{SiteID: "s", Kind: model.RepScor, EpsLocal: 1, MinPts: 3, NumObjects: 1}
	_, stats, err := c.SendModel(m)
	if err == nil {
		t.Fatal("send to refusing dialer succeeded")
	}
	if !errors.Is(err, faultnet.ErrRefused) {
		t.Errorf("error %v does not wrap the dial failure", err)
	}
	if stats.Attempts != 3 || dialer.Dials() != 3 {
		t.Errorf("attempts=%d dials=%d, want 3/3", stats.Attempts, dialer.Dials())
	}
}
