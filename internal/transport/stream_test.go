package transport

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/model"
)

// localModelOf runs LocalStep over a blob set and returns the site's model.
func localModelOf(t *testing.T, siteID string, pts []geom.Point) *model.LocalModel {
	t.Helper()
	out, err := dbdc.LocalStep(siteID, pts, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	return out.Model
}

// deltaOf derives and commits the next delta for a model.
func deltaOf(tr *model.DeltaTracker, m *model.LocalModel) *model.LocalDelta {
	p := tr.Delta(m)
	tr.Commit(p)
	return p.Delta
}

func TestDeltaAckSectionRoundTrip(t *testing.T) {
	for _, want := range []DeltaAck{
		{Seq: 1, GlobalVersion: 0},
		{Resync: true, Seq: 42, GlobalVersion: 7},
	} {
		got, err := parseDeltaAck(encodeDeltaAck(want))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("ack round trip: got %+v, want %+v", got, want)
		}
	}
	// An ack without the ack section is a protocol error, not a zero value.
	if _, err := parseDeltaAck(nil); err == nil {
		t.Fatal("empty ack payload accepted")
	}
	// Unknown sections before the ack are skipped.
	payload := append([]byte{0x7f, 3, 0, 0, 0, 1, 2, 3}, encodeDeltaAck(DeltaAck{Seq: 9})...)
	got, err := parseDeltaAck(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 9 {
		t.Fatalf("ack after unknown section: %+v", got)
	}
}

func TestStreamStatsSectionRoundTrip(t *testing.T) {
	want := StreamStats{Window: 150, Turns: 12, Change: 0.25}
	stats, phases, err := parseStreamSections(appendStreamStatsSection(nil, want))
	if err != nil {
		t.Fatal(err)
	}
	if phases != nil {
		t.Fatal("phases materialized out of nothing")
	}
	if stats == nil || *stats != want {
		t.Fatalf("stats round trip: got %+v, want %+v", stats, want)
	}
}

// A streaming site uploads a snapshot delta, then an incremental one; the
// server folds both, acks each with the applied sequence, and the global
// model reflects the folded state.
func TestStreamClientDeltaRound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	srv, err := NewUpdateServer("127.0.0.1:0", testCfg(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go srv.Serve(2)

	client := &StreamClient{Addr: srv.Addr(), Timeout: 5 * time.Second}
	tracker := model.NewDeltaTracker()

	pts := blob(rng, 0, 0, 200)
	m1 := localModelOf(t, "st-1", pts)
	res, err := client.Upload(m1, deltaOf(tracker, m1), &StreamStats{Window: 200, Turns: 1, Change: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeDelta || res.Downgraded || res.Resync {
		t.Fatalf("snapshot upload: %+v", res)
	}
	if res.Seq != 1 {
		t.Fatalf("snapshot acked with seq %d", res.Seq)
	}

	// The site grows a second cluster; the delta carries only the change.
	pts = append(pts, blob(rng, 30, 30, 200)...)
	m2 := localModelOf(t, "st-1", pts)
	d2 := deltaOf(tracker, m2)
	if d2.Snapshot() {
		t.Fatal("second upload degenerated to a snapshot")
	}
	res, err = client.Upload(m2, d2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeDelta || res.Seq != 2 {
		t.Fatalf("incremental upload: %+v", res)
	}
	if !srv.WaitVersion(2, 2*time.Second) {
		t.Fatalf("server version %d after two folds", srv.Version())
	}
	if g := srv.Global(); g == nil || g.NumClusters != 2 {
		t.Fatalf("global after folds: %+v", srv.Global())
	}
	if st, ok := srv.StreamInfo("st-1"); !ok || st.Window != 200 || st.Turns != 1 {
		t.Fatalf("stream info: %+v ok=%v", st, ok)
	}
}

// A delta whose base does not match the server's folded state (here: the
// server never saw the site) must be answered with a resync demand, after
// which a snapshot re-establishes the chain.
func TestStreamClientResync(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	srv, err := NewUpdateServer("127.0.0.1:0", testCfg(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go srv.Serve(2)

	client := &StreamClient{Addr: srv.Addr(), Timeout: 5 * time.Second}
	tracker := model.NewDeltaTracker()

	m1 := localModelOf(t, "st-r", blob(rng, 0, 0, 200))
	deltaOf(tracker, m1) // seq 1 never reaches the server

	m2 := localModelOf(t, "st-r", append(blob(rng, 0, 0, 200), blob(rng, 30, 0, 200)...))
	res, err := client.Upload(m2, deltaOf(tracker, m2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resync {
		t.Fatalf("stale-base delta was not answered with resync: %+v", res)
	}
	if srv.Version() != 0 {
		t.Fatal("resync-rejected delta triggered a rebuild")
	}

	// Recovery: reset the tracker, upload a snapshot.
	tracker.Reset()
	res, err = client.Upload(m2, deltaOf(tracker, m2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resync || res.Seq != 1 {
		t.Fatalf("post-reset snapshot: %+v", res)
	}
	if g := srv.Global(); g == nil || g.NumClusters != 2 {
		t.Fatalf("global after recovery: %+v", g)
	}
}

// legacyCloser accepts one connection and closes it on any frame — the
// behavior of a round server that predates the streamed types.
func legacyCloser(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	return ln
}

// Against a server that closes on unknown frames the client must walk all
// the way down the downgrade chain and stay there.
func TestStreamClientDowngradesToLegacyOnClose(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// A stub speaking only MsgLocalModel: closes on anything else.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srv, err := NewUpdateServer("127.0.0.1:0", testCfg(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				msgType, payload, _, err := ReadFrame(conn)
				if err != nil || msgType != MsgLocalModel {
					return // close without reply: pre-streaming behavior
				}
				var m model.LocalModel
				if err := m.UnmarshalBinary(payload); err != nil {
					return
				}
				g, err := srv.storeAndRebuild(&m)
				if err != nil {
					return
				}
				reply, err := g.MarshalBinary()
				if err != nil {
					return
				}
				WriteFrame(conn, MsgGlobalModel, reply)
			}(conn)
		}
	}()

	client := &StreamClient{Addr: ln.Addr().String(), Timeout: 5 * time.Second}
	tracker := model.NewDeltaTracker()
	m := localModelOf(t, "st-old", blob(rng, 0, 0, 200))
	res, err := client.Upload(m, deltaOf(tracker, m), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeLegacyFull || !res.Downgraded {
		t.Fatalf("against a legacy server: %+v", res)
	}
	if res.Global == nil || res.Global.NumClusters != 1 {
		t.Fatalf("legacy upload reply: %+v", res.Global)
	}
	if client.Mode() != ModeLegacyFull {
		t.Fatalf("downgrade not sticky: next mode %v", client.Mode())
	}
	// The next upload goes straight to legacy, no re-negotiation.
	m2 := localModelOf(t, "st-old", append(blob(rng, 0, 0, 200), blob(rng, 30, 0, 200)...))
	res, err = client.Upload(m2, deltaOf(tracker, m2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeLegacyFull || res.Downgraded {
		t.Fatalf("second legacy upload re-negotiated: %+v", res)
	}
}

// oldUpdateServer mimics the pre-streaming UpdateServer: it answers unknown
// frame types with MsgError instead of closing. The client must read that as
// a downgrade signal, not a fault — and land on the timed full upload, which
// the old update server also rejects... by MsgError, which for full uploads
// IS a fault. So the stub accepts timed uploads, like the real pre-delta
// server in this repo does.
func TestStreamClientDowngradesOnMsgError(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				msgType, payload, _, err := ReadFrame(conn)
				if err != nil {
					return
				}
				if msgType != MsgLocalModelTimed {
					WriteFrame(conn, MsgError, []byte("expected local model"))
					return
				}
				var m model.LocalModel
				if _, err := m.UnmarshalBinaryPrefix(payload); err != nil {
					return
				}
				g, err := dbdc.GlobalStep([]*model.LocalModel{&m}, testCfg())
				if err != nil {
					return
				}
				reply, _ := g.MarshalBinary()
				WriteFrame(conn, MsgGlobalModel, reply)
			}(conn)
		}
	}()

	client := &StreamClient{Addr: ln.Addr().String(), Timeout: 5 * time.Second}
	tracker := model.NewDeltaTracker()
	m := localModelOf(t, "st-err", blob(rng, 0, 0, 200))
	res, err := client.Upload(m, deltaOf(tracker, m), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeTimedFull || !res.Downgraded {
		t.Fatalf("against an MsgError-rejecting server: %+v", res)
	}
	if res.Global == nil {
		t.Fatal("timed fallback upload got no global model")
	}
}

// DisableDelta skips negotiation entirely.
func TestStreamClientDisableDelta(t *testing.T) {
	client := &StreamClient{DisableDelta: true}
	if client.Mode() != ModeTimedFull {
		t.Fatalf("DisableDelta start mode %v", client.Mode())
	}
}

// With a debounce set, a burst of delta folds coalesces into fewer rebuilds
// than folds, and Flush forces the pending one out.
func TestUpdateServerDebounceCoalesces(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	srv, err := NewUpdateServer("127.0.0.1:0", testCfg(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetDebounce(250 * time.Millisecond)
	go srv.Serve(0)

	client := &StreamClient{Addr: srv.Addr(), Timeout: 5 * time.Second}
	tracker := model.NewDeltaTracker()
	var pts []geom.Point
	const uploads = 4
	for i := 0; i < uploads; i++ {
		pts = append(pts, blob(rng, float64(i*40), 0, 150)...)
		m := localModelOf(t, "st-burst", pts)
		if _, err := client.Upload(m, deltaOf(tracker, m), nil); err != nil {
			t.Fatal(err)
		}
	}
	// All four folds landed inside one debounce window (sequential local
	// uploads are far faster than 250ms); at most a couple of rebuilds may
	// have fired, never one per fold.
	if v := srv.Version(); v >= uploads {
		t.Fatalf("debounce did not coalesce: %d rebuilds for %d folds", v, uploads)
	}
	if err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	if g := srv.Global(); g == nil || g.NumClusters != uploads {
		t.Fatalf("flushed global: %+v", g)
	}
	if err := srv.LastRebuildErr(); err != nil {
		t.Fatal(err)
	}
	// Nothing left pending: a second Flush is a no-op.
	v := srv.Version()
	if err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	if srv.Version() != v {
		t.Fatal("idle Flush rebuilt")
	}
}

// A full upload supersedes the folded delta state: the site's next delta on
// the old chain must get a resync demand.
func TestFullUploadInvalidatesDeltaChain(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	srv, err := NewUpdateServer("127.0.0.1:0", testCfg(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go srv.Serve(3)

	client := &StreamClient{Addr: srv.Addr(), Timeout: 5 * time.Second}
	tracker := model.NewDeltaTracker()
	pts := blob(rng, 0, 0, 200)
	m1 := localModelOf(t, "st-mix", pts)
	if _, err := client.Upload(m1, deltaOf(tracker, m1), nil); err != nil {
		t.Fatal(err)
	}
	// The same site does a full exchange (e.g. a restart in batch mode).
	if _, _, _, err := Exchange(srv.Addr(), m1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Its old delta chain is now invalid.
	pts = append(pts, blob(rng, 30, 0, 200)...)
	m2 := localModelOf(t, "st-mix", pts)
	res, err := client.Upload(m2, deltaOf(tracker, m2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resync {
		t.Fatalf("delta on a superseded chain was folded: %+v", res)
	}
}

// Global cluster ids stay stable across rebuilds when the clusters keep a
// majority of their representatives.
func TestUpdateServerStableGlobalIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	srv, err := NewUpdateServer("127.0.0.1:0", testCfg(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go srv.Serve(3)

	client := &StreamClient{Addr: srv.Addr(), Timeout: 5 * time.Second}
	tracker := model.NewDeltaTracker()
	anchor := blob(rng, 0, 0, 300) // persists through every version
	far := blob(rng, 60, 60, 300)

	m1 := localModelOf(t, "st-id", append(append([]geom.Point{}, anchor...), far...))
	if _, err := client.Upload(m1, deltaOf(tracker, m1), nil); err != nil {
		t.Fatal(err)
	}
	g1 := srv.Global()
	idOf := func(g *model.GlobalModel, near geom.Point) (int64, bool) {
		for _, r := range g.Reps {
			if dx, dy := r.Point[0]-near[0], r.Point[1]-near[1]; dx*dx+dy*dy < 4 {
				return int64(r.GlobalCluster), true
			}
		}
		return 0, false
	}
	anchorID, ok := idOf(g1, geom.Point{0, 0})
	if !ok {
		t.Fatal("anchor cluster has no reps in v1")
	}

	// v2: the far cluster moves (all its reps replaced), the anchor keeps
	// most of its points — its global id must survive the rebuild.
	moved := blob(rng, 90, 90, 300)
	m2 := localModelOf(t, "st-id", append(append([]geom.Point{}, anchor...), moved...))
	if _, err := client.Upload(m2, deltaOf(tracker, m2), nil); err != nil {
		t.Fatal(err)
	}
	g2 := srv.Global()
	if err := g2.Validate(); err != nil {
		t.Fatalf("relabeled global model invalid: %v", err)
	}
	got, ok := idOf(g2, geom.Point{0, 0})
	if !ok {
		t.Fatal("anchor cluster has no reps in v2")
	}
	if got != anchorID {
		t.Fatalf("anchor cluster renamed %d → %d across rebuild", anchorID, got)
	}
	movedID, ok := idOf(g2, geom.Point{90, 90})
	if !ok {
		t.Fatal("moved cluster has no reps in v2")
	}
	if movedID == anchorID {
		t.Fatal("moved cluster collided with the anchor's stable id")
	}
}
