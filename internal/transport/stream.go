package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"time"

	"github.com/dbdc-go/dbdc/internal/model"
)

// This file implements the wire side of the always-on streaming round: the
// MsgModelDelta / MsgDeltaAck exchange and the StreamClient that a
// streaming site (internal/stream) uploads through.
//
// Wire layout of a MsgModelDelta payload:
//
//	[ model.LocalDelta bytes ][ section ]*
//
// and of a MsgDeltaAck payload:
//
//	[ section ]*
//
// both using the section format of phases.go, so either side can grow the
// exchange without a new message type and unknown sections are skipped.
const (
	// sectionDeltaAck is the server's answer to a delta upload: status,
	// applied sequence number, global model version.
	sectionDeltaAck byte = 0x05
	// sectionStreamStats is the optional stream-progress section a
	// streaming site attaches to its delta uploads.
	sectionStreamStats byte = 0x06

	deltaAckVersion byte = 1
	// deltaAckBodyLen: version byte, status u8, applied seq u64, global
	// model version u64.
	deltaAckBodyLen = 1 + 1 + 8 + 8

	streamStatsVersion byte = 1
	// streamStatsBodyLen: version byte, window u32, window turns u64,
	// change metric f64.
	streamStatsBodyLen = 1 + 4 + 8 + 8

	// Delta ack status codes.
	deltaAckOK     byte = 0
	deltaAckResync byte = 1
)

// DeltaAck is the server's decoded answer to a delta upload.
type DeltaAck struct {
	// Resync reports that the delta's base sequence did not match the
	// server's folded state: the site must reset its tracker and send a
	// snapshot delta.
	Resync bool
	// Seq is the applied sequence number (on resync: the server's current
	// folded sequence, 0 when it holds nothing for the site).
	Seq uint64
	// GlobalVersion is the server's global model rebuild counter at reply
	// time. With a debounced rebuild the fold may not be reflected yet;
	// versions are monotone, so classify clients can still order models.
	GlobalVersion uint64
}

// encodeDeltaAck builds a MsgDeltaAck payload.
func encodeDeltaAck(a DeltaAck) []byte {
	dst := make([]byte, 0, sectionHeaderSize+deltaAckBodyLen)
	dst = append(dst, sectionDeltaAck)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(deltaAckBodyLen))
	dst = append(dst, deltaAckVersion)
	status := deltaAckOK
	if a.Resync {
		status = deltaAckResync
	}
	dst = append(dst, status)
	dst = binary.LittleEndian.AppendUint64(dst, a.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, a.GlobalVersion)
	return dst
}

// parseDeltaAck decodes a MsgDeltaAck payload. A payload without a readable
// ack section is an error — unlike the informational sections, the ack IS
// the reply.
func parseDeltaAck(data []byte) (DeltaAck, error) {
	var ack DeltaAck
	found := false
	err := walkSections(data, func(id byte, body []byte) {
		if id == sectionDeltaAck && len(body) >= deltaAckBodyLen && body[0] == deltaAckVersion {
			ack.Resync = body[1] == deltaAckResync
			ack.Seq = binary.LittleEndian.Uint64(body[2:10])
			ack.GlobalVersion = binary.LittleEndian.Uint64(body[10:18])
			found = true
		}
	})
	if err != nil {
		return DeltaAck{}, err
	}
	if !found {
		return DeltaAck{}, fmt.Errorf("transport: delta ack without ack section")
	}
	return ack, nil
}

// StreamStats is the stream-progress section a streaming site attaches to
// its delta uploads: informational, surfaced by the server for operators.
type StreamStats struct {
	// Window is the site's sliding-window size in objects.
	Window int
	// Turns is how often the window content has fully turned over.
	Turns uint64
	// Change is the clustering-change metric (1 − P^II against the last
	// transmitted snapshot) that triggered this upload.
	Change float64
}

// appendStreamStatsSection appends the encoded stream section to dst.
func appendStreamStatsSection(dst []byte, st StreamStats) []byte {
	dst = append(dst, sectionStreamStats)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(streamStatsBodyLen))
	dst = append(dst, streamStatsVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(st.Window))
	dst = binary.LittleEndian.AppendUint64(dst, st.Turns)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(st.Change))
	return dst
}

// parseStreamSections walks the section area of a delta upload and returns
// the stream stats and site phases when present; unknown sections are
// skipped, malformed areas are an error (same contract as parseSections).
func parseStreamSections(data []byte) (*StreamStats, *SitePhases, error) {
	var stats *StreamStats
	var phases *SitePhases
	err := walkSections(data, func(id byte, body []byte) {
		switch id {
		case sectionStreamStats:
			if len(body) >= streamStatsBodyLen && body[0] == streamStatsVersion {
				stats = &StreamStats{
					Window: int(binary.LittleEndian.Uint32(body[1:5])),
					Turns:  binary.LittleEndian.Uint64(body[5:13]),
					Change: math.Float64frombits(binary.LittleEndian.Uint64(body[13:21])),
				}
			}
		case sectionSitePhases:
			if p, ok := parseSitePhasesBody(body); ok {
				phases = &p
			}
		}
	})
	if err != nil {
		return nil, nil, err
	}
	return stats, phases, nil
}

// UploadMode names the wire encoding a StreamClient upload went out with.
type UploadMode int

const (
	// ModeDelta is the streaming MsgModelDelta upload.
	ModeDelta UploadMode = iota
	// ModeTimedFull is the full-model MsgLocalModelTimed fallback.
	ModeTimedFull
	// ModeLegacyFull is the original MsgLocalModel upload, the fallback of
	// last resort.
	ModeLegacyFull
)

// String names the mode for logs.
func (m UploadMode) String() string {
	switch m {
	case ModeDelta:
		return "delta"
	case ModeTimedFull:
		return "full-timed"
	case ModeLegacyFull:
		return "full-legacy"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// UploadResult describes one StreamClient upload.
type UploadResult struct {
	// Mode is the encoding that finally succeeded.
	Mode UploadMode
	// Downgraded reports that this call moved the client to a more
	// conservative mode (delta → full-timed → full-legacy). The mode is
	// sticky: later uploads start from it.
	Downgraded bool
	// Resync reports the server demanded a snapshot (delta mode only); the
	// upload itself carried no state change.
	Resync bool
	// Seq is the acknowledged sequence number (delta mode only).
	Seq uint64
	// GlobalVersion is the server's global rebuild counter from the ack
	// (delta mode only; full uploads receive the model itself instead).
	GlobalVersion uint64
	// Global is the global model the server replied with (full-upload
	// modes only — the delta exchange deliberately keeps the downlink to
	// an ack, trusting the classify tier for reads).
	Global *model.GlobalModel
	// BytesSent and BytesReceived are this call's wire cost, all attempts
	// summed.
	BytesSent     int
	BytesReceived int
}

// errDeltaRejected marks a server that answered a delta frame with
// MsgError: old update servers reject unknown frame types that way instead
// of closing the connection, so it is a downgrade signal, not a fault.
var errDeltaRejected = errors.New("transport: server rejected delta frame")

// StreamClient uploads a streaming site's model updates to an update
// server, negotiating the encoding by fallback: deltas while the server
// folds them, full models against older servers. Not safe for concurrent
// use — a streaming site uploads sequentially.
type StreamClient struct {
	// Addr is the update server address ("host:port").
	Addr string
	// Timeout bounds dialing and each connection's I/O; 0 means 30s.
	Timeout time.Duration
	// Dial opens connections; nil means net.DialTimeout.
	Dial DialFunc
	// DisableDelta forces full uploads from the start, skipping the
	// negotiation against servers known to predate deltas.
	DisableDelta bool

	mode        UploadMode
	initialized bool
}

// Mode returns the wire encoding the next upload will attempt.
func (c *StreamClient) Mode() UploadMode {
	c.init()
	return c.mode
}

func (c *StreamClient) init() {
	if !c.initialized {
		c.initialized = true
		if c.DisableDelta {
			c.mode = ModeTimedFull
		}
	}
}

// Upload ships one model update: the delta when the client is (still) in
// delta mode, the full model otherwise. A rejection by an older server
// downgrades the mode for this and all later calls and retries immediately
// on a fresh connection; genuine faults (dial errors, timeouts, MsgError on
// a full upload) are returned to the caller, who simply uploads again on
// the next change round. A Resync result carries no error: the caller must
// reset its tracker and upload a snapshot delta.
func (c *StreamClient) Upload(full *model.LocalModel, delta *model.LocalDelta, stats *StreamStats) (*UploadResult, error) {
	c.init()
	res := &UploadResult{}
	if c.mode == ModeDelta {
		if delta == nil {
			return nil, fmt.Errorf("transport: delta-mode upload without a delta")
		}
		err := c.uploadDelta(delta, stats, res)
		if err == nil {
			res.Mode = ModeDelta
			return res, nil
		}
		if !frameRejected(err) && !errors.Is(err, errDeltaRejected) {
			return nil, err
		}
		// Negotiation fallback: the peer closed without a reply (round
		// servers) or answered MsgError (old update servers). Stay on full
		// uploads from now on.
		c.mode = ModeTimedFull
		res.Downgraded = true
	}
	payload, err := full.MarshalBinary()
	if err != nil {
		return nil, err
	}
	if c.mode == ModeTimedFull {
		err := c.uploadFull(MsgLocalModelTimed, payload, res)
		if err == nil {
			res.Mode = ModeTimedFull
			return res, nil
		}
		if !frameRejected(err) {
			return nil, err
		}
		c.mode = ModeLegacyFull
		res.Downgraded = true
	}
	if err := c.uploadFull(MsgLocalModel, payload, res); err != nil {
		return nil, err
	}
	res.Mode = ModeLegacyFull
	return res, nil
}

// uploadDelta performs the MsgModelDelta/MsgDeltaAck exchange.
func (c *StreamClient) uploadDelta(delta *model.LocalDelta, stats *StreamStats, res *UploadResult) error {
	payload, err := delta.MarshalBinary()
	if err != nil {
		return err
	}
	if stats != nil {
		payload = appendStreamStatsSection(payload, *stats)
	}
	msgType, reply, err := c.roundTrip(MsgModelDelta, payload, res)
	if err != nil {
		return err
	}
	switch msgType {
	case MsgDeltaAck:
		ack, err := parseDeltaAck(reply)
		if err != nil {
			return permanent(err)
		}
		res.Resync = ack.Resync
		res.Seq = ack.Seq
		res.GlobalVersion = ack.GlobalVersion
		return nil
	case MsgError:
		return fmt.Errorf("%w: %s", errDeltaRejected, reply)
	default:
		return permanent(fmt.Errorf("transport: unexpected reply 0x%02x to delta upload", msgType))
	}
}

// uploadFull performs a full-model upload expecting a MsgGlobalModel reply.
func (c *StreamClient) uploadFull(frameType byte, payload []byte, res *UploadResult) error {
	msgType, reply, err := c.roundTrip(frameType, payload, res)
	if err != nil {
		return err
	}
	switch msgType {
	case MsgGlobalModel:
		var global model.GlobalModel
		if err := global.UnmarshalBinary(reply); err != nil {
			return permanent(err)
		}
		if err := global.Validate(); err != nil {
			return permanent(err)
		}
		res.Global = &global
		return nil
	case MsgError:
		return permanent(fmt.Errorf("transport: server reported: %s", reply))
	default:
		return permanent(fmt.Errorf("transport: unexpected reply 0x%02x to model upload", msgType))
	}
}

// roundTrip opens a fresh connection (the update server handles one
// exchange per connection), writes one frame and reads the reply.
func (c *StreamClient) roundTrip(msgType byte, payload []byte, res *UploadResult) (byte, []byte, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	dial := c.Dial
	if dial == nil {
		dial = net.DialTimeout
	}
	conn, err := dial("tcp", c.Addr, timeout)
	if err != nil {
		return 0, nil, fmt.Errorf("transport: dial %s: %w", c.Addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	sent, err := WriteFrame(conn, msgType, payload)
	res.BytesSent += sent
	if err != nil {
		return 0, nil, err
	}
	replyType, reply, received, err := ReadFrame(conn)
	res.BytesReceived += received
	if err != nil {
		return 0, nil, err
	}
	return replyType, reply, nil
}
