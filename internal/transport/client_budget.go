package transport

import (
	"fmt"
	"time"

	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/model"
)

// Negotiation describes how the budget handshake of one SendModelBudgeted
// call ended.
type Negotiation struct {
	// Attempted reports whether a MsgHello handshake was tried at all;
	// Acked whether a server answered it. Attempted && !Acked means the
	// server predates the handshake and the client downgraded.
	Attempted bool
	Acked     bool
	// MaxUploadBytes is the server-advertised upload cap (0 = none).
	MaxUploadBytes int64
	// Budget is the per-cluster budget the shipped model was built under:
	// the configured Config.RepBudget, or less after a cap-driven shrink.
	Budget int
	// Stats is the selector accounting of the shipped model.
	Stats dbscan.BudgetStats
}

// SendModelBudgeted uploads a budgeted site's local model with the full
// negotiation stack: a MsgHello/MsgHelloAck handshake learns the server's
// upload byte cap, the representative budget shrinks until the model frame
// fits under it, and the sectioned upload carries the budget accounting to
// the round report.
//
// Downgrade chain (each step immediate, without consuming a retry-budget
// attempt — the established negotiation-by-fallback of SendModelTimed):
// a server that closes on the unknown MsgHello gets the handshake-free
// sectioned upload next, whose unknown budget section old sectioned parsers
// skip; a server that closes on the sectioned frame too gets the bare
// legacy MsgLocalModel. The model itself stays budgeted at the configured
// RepBudget throughout — only the cap negotiation degrades to "no
// constraint", never the user's bandwidth choice.
//
// An outcome with RepBudget 0 delegates to SendModelTimed: no handshake, no
// budget section, wire bytes identical to an unbudgeted build.
func (c *Client) SendModelBudgeted(outcome *dbdc.LocalOutcome, phases *SitePhases) (*model.GlobalModel, SendStats, Negotiation, error) {
	var neg Negotiation
	if outcome.RepBudget <= 0 {
		global, stats, err := c.SendModelTimed(outcome.Model, phases)
		return global, stats, neg, err
	}
	neg.Budget = outcome.RepBudget
	neg.Stats = outcome.Budget

	var stats SendStats
	budget := c.Retry.MaxAttempts
	if budget < 1 {
		budget = 1
	}
	timed := !c.DisableTimedUpload
	negotiate := timed
	var lastErr error
	var totalBackoff time.Duration
	var nextBackoff time.Duration
	used := 0
	for {
		used++
		attempt := len(stats.Log) + 1
		var (
			global *model.GlobalModel
			as     AttemptStats
			err    error
		)
		switch {
		case negotiate:
			global, as, err = c.negotiateOnce(outcome, phases, attempt, totalBackoff, &neg)
		case timed:
			payload, _, perr := c.budgetedPayload(outcome, outcome.RepBudget, phases, attempt, totalBackoff)
			if perr != nil {
				return nil, stats, neg, perr
			}
			global, as, err = c.exchangeOnce(payload, true)
		default:
			m, _, merr := outcome.BudgetedModel(outcome.RepBudget)
			if merr != nil {
				return nil, stats, neg, merr
			}
			payload, merr := m.MarshalBinary()
			if merr != nil {
				return nil, stats, neg, merr
			}
			global, as, err = c.exchangeOnce(payload, false)
		}
		as.Attempt = attempt
		as.Timed = timed
		as.Negotiated = negotiate
		as.Backoff = nextBackoff
		nextBackoff = 0
		stats.Attempts = attempt
		stats.BytesSent += as.BytesSent
		stats.BytesReceived += as.BytesReceived
		if err != nil {
			as.Err = err.Error()
		}
		stats.Log = append(stats.Log, as)
		if err == nil {
			return global, stats, neg, nil
		}
		lastErr = err
		if frameRejected(err) && (negotiate || timed) {
			// Negotiation fallback: the peer closed without replying —
			// an old server rejecting a frame type it does not know.
			// Step down the chain immediately, without charging the
			// retry budget.
			if negotiate {
				negotiate = false
			} else {
				timed = false
			}
			continue
		}
		if !Retryable(err) || used >= budget {
			break
		}
		delay := c.Retry.delay(used, c.jitterRand())
		if c.OnRetry != nil {
			c.OnRetry(attempt, err, delay)
		}
		time.Sleep(delay)
		totalBackoff += delay
		nextBackoff = delay
	}
	return nil, stats, neg, fmt.Errorf("transport: send model (%d attempt(s)): %w", stats.Attempts, lastErr)
}

// negotiateOnce performs one full handshaking attempt: dial, MsgHello,
// learn the cap from the ack, shrink the budget until the upload fits,
// upload, receive the global model. Handshake wire costs count toward the
// attempt's upload/wait phases.
func (c *Client) negotiateOnce(outcome *dbdc.LocalOutcome, phases *SitePhases, attempt int, totalBackoff time.Duration, neg *Negotiation) (*model.GlobalModel, AttemptStats, error) {
	var as AttemptStats
	conn, err := c.dialAttempt(&as)
	if err != nil {
		return nil, as, err
	}
	defer conn.Close()

	neg.Attempted = true
	helloStart := time.Now()
	sent, err := WriteFrame(conn, MsgHello, encodeHello(outcome.RepBudget))
	as.Upload += time.Since(helloStart)
	as.BytesSent += sent
	if err != nil {
		return nil, as, err
	}
	waitStart := time.Now()
	msgType, reply, received, err := ReadFrame(conn)
	as.ServerWait += time.Since(waitStart)
	as.BytesReceived += received
	if err != nil {
		// An old server closes on the unknown MsgHello: the caller's
		// frameRejected check turns this into the handshake downgrade.
		return nil, as, err
	}
	switch msgType {
	case MsgHelloAck:
	case MsgError:
		return nil, as, permanent(fmt.Errorf("transport: server reported: %s", reply))
	default:
		return nil, as, permanent(fmt.Errorf("transport: unexpected handshake reply 0x%02x", msgType))
	}
	cap, err := parseHelloAck(reply)
	if err != nil {
		return nil, as, permanent(err)
	}
	neg.Acked = true
	neg.MaxUploadBytes = cap

	b, payload, stats, err := c.fitBudget(outcome, phases, attempt, totalBackoff, cap)
	if err != nil {
		return nil, as, err
	}
	neg.Budget = b
	neg.Stats = stats

	global, err := c.uploadAndReceive(conn, MsgLocalModelTimed, payload, &as)
	return global, as, err
}

// budgetedPayload builds the sectioned upload payload for the given budget:
// model bytes, phase metrics (attempt number and backoff stamped in), and
// the budget accounting section.
func (c *Client) budgetedPayload(outcome *dbdc.LocalOutcome, budget int, phases *SitePhases, attempt int, totalBackoff time.Duration) ([]byte, dbscan.BudgetStats, error) {
	m, stats, err := outcome.BudgetedModel(budget)
	if err != nil {
		return nil, stats, err
	}
	modelBytes, err := m.MarshalBinary()
	if err != nil {
		return nil, stats, err
	}
	payload := append([]byte(nil), modelBytes...)
	if phases != nil {
		p := *phases
		p.Attempt = attempt
		p.Backoff = totalBackoff
		payload = appendSitePhasesSection(payload, p)
	}
	payload = appendSiteBudgetSection(payload, SiteBudget{
		RepBudget:        budget,
		RepsDropped:      stats.Dropped(),
		CoverageFraction: stats.CoverageFraction(),
	})
	if c.AppendSections != nil {
		payload = c.AppendSections(payload)
	}
	return payload, stats, nil
}

// fitBudget returns the largest per-cluster budget ≤ the configured one
// whose full upload frame (header included) fits under the advertised byte
// cap, together with the ready-to-send payload. Payload size is monotone in
// the budget, so a binary search finds the fit; a cap no budget satisfies —
// even a single representative per cluster is too big — is a permanent
// error, retrying cannot shrink the model further.
func (c *Client) fitBudget(outcome *dbdc.LocalOutcome, phases *SitePhases, attempt int, totalBackoff time.Duration, cap int64) (int, []byte, dbscan.BudgetStats, error) {
	fits := func(payload []byte) bool {
		return cap <= 0 || int64(frameHeaderSize+len(payload)) <= cap
	}
	build := func(b int) ([]byte, dbscan.BudgetStats, error) {
		return c.budgetedPayload(outcome, b, phases, attempt, totalBackoff)
	}
	payload, stats, err := build(outcome.RepBudget)
	if err != nil {
		return 0, nil, stats, err
	}
	if fits(payload) {
		return outcome.RepBudget, payload, stats, nil
	}
	lo, hi := 1, outcome.RepBudget-1
	bestB := 0
	var bestPayload []byte
	var bestStats dbscan.BudgetStats
	for lo <= hi {
		mid := (lo + hi) / 2
		p, s, err := build(mid)
		if err != nil {
			return 0, nil, s, err
		}
		if fits(p) {
			bestB, bestPayload, bestStats = mid, p, s
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	if bestB == 0 {
		return 0, nil, bestStats, permanent(fmt.Errorf(
			"transport: model exceeds the server's %d-byte upload cap even at budget 1", cap))
	}
	return bestB, bestPayload, bestStats, nil
}
