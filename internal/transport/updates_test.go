package transport

import (
	"math/rand"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/model"
)

func TestUpdateServerValidation(t *testing.T) {
	bad := testCfg()
	bad.Local.MinPts = 0
	if _, err := NewUpdateServer("127.0.0.1:0", bad, 0); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// One site updates its model twice; the second reply must reflect the new
// model (more clusters), and the server must retain exactly one model for
// the site.
func TestUpdateServerReplacesModels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	srv, err := NewUpdateServer("127.0.0.1:0", testCfg(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(3) }()

	// First epoch: one cluster.
	pts := blob(rng, 0, 0, 200)
	out1, err := dbdc.LocalStep("obs-1", pts, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	g1, _, _, err := Exchange(srv.Addr(), out1.Model, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumClusters != 1 {
		t.Fatalf("epoch 1: %d clusters", g1.NumClusters)
	}
	// A second site appears.
	out2, err := dbdc.LocalStep("obs-2", blob(rng, 50, 0, 200), testCfg())
	if err != nil {
		t.Fatal(err)
	}
	g2, _, _, err := Exchange(srv.Addr(), out2.Model, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumClusters != 2 {
		t.Fatalf("epoch 2: %d clusters (want obs-1's retained + obs-2's)", g2.NumClusters)
	}
	// Site 1 grows a second cluster and re-uploads.
	pts = append(pts, blob(rng, 20, 20, 200)...)
	out3, err := dbdc.LocalStep("obs-1", pts, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	g3, _, _, err := Exchange(srv.Addr(), out3.Model, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumClusters != 3 {
		t.Fatalf("epoch 3: %d clusters", g3.NumClusters)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := srv.Sites(); !reflect.DeepEqual(got, []string{"obs-1", "obs-2"}) {
		t.Fatalf("Sites = %v", got)
	}
	if srv.Global() == nil || srv.Global().NumClusters != 3 {
		t.Fatal("server did not retain the latest global model")
	}
}

func TestUpdateServerRejectsGarbage(t *testing.T) {
	srv, err := NewUpdateServer("127.0.0.1:0", testCfg(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go srv.Serve(1)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := WriteFrame(conn, MsgLocalModel, []byte{0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	msgType, payload, _, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != MsgError || len(payload) == 0 {
		t.Fatalf("expected error reply, got type 0x%02x %q", msgType, payload)
	}
	if srv.Global() != nil {
		t.Fatal("garbage update changed server state")
	}
}

// Serve with unlimited updates shuts down cleanly when the listener
// closes.
func TestUpdateServerCloseStopsServe(t *testing.T) {
	srv, err := NewUpdateServer("127.0.0.1:0", testCfg(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(0) }()
	time.Sleep(50 * time.Millisecond)
	srv.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v on close", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not stop after Close")
	}
}

// Concurrent updates from many sites must all be answered with consistent
// global models.
func TestUpdateServerConcurrentSites(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	srv, err := NewUpdateServer("127.0.0.1:0", testCfg(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	const n = 6
	go srv.Serve(n)
	type result struct {
		id  string
		err error
	}
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		pts := blob(rng, float64(i*30), 0, 150)
		id := string(rune('a' + i))
		go func(id string, pts []geom.Point) {
			out, err := dbdc.LocalStep(id, pts, testCfg())
			if err == nil {
				_, _, _, err = Exchange(srv.Addr(), out.Model, 5*time.Second)
			}
			results <- result{id, err}
		}(id, pts)
	}
	for i := 0; i < n; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("site %s: %v", r.id, r.err)
		}
	}
	if got := srv.Global().NumClusters; got != n {
		t.Fatalf("final global clusters = %d, want %d", got, n)
	}
	if got := len(srv.Sites()); got != n {
		t.Fatalf("retained sites = %d", got)
	}
}

// TestUpdateServerNewestModelWinsConcurrent races several sites, each
// uploading a growing sequence of model epochs, against each other (run
// under -race in CI). Per site the uploads are ordered — exactly the
// deployment contract, a site never races itself — so whatever the
// cross-site interleaving, the server must retain every site's newest
// model, and the final global model must reflect exactly those. The
// SetOnGlobal sink, invoked under the store lock, must observe one rebuild
// per processed upload with the final observation identical to Global().
func TestUpdateServerNewestModelWinsConcurrent(t *testing.T) {
	const sites = 4
	const epochs = 3
	srv, err := NewUpdateServer("127.0.0.1:0", testCfg(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var sinkMu sync.Mutex
	var observed []*model.GlobalModel
	srv.SetOnGlobal(func(g *model.GlobalModel) {
		sinkMu.Lock()
		observed = append(observed, g)
		sinkMu.Unlock()
	})
	go srv.Serve(sites * epochs)

	errs := make(chan error, sites)
	for s := 0; s < sites; s++ {
		go func(site int) {
			rng := rand.New(rand.NewSource(int64(100 + site)))
			id := string(rune('a' + site))
			var pts []geom.Point
			for e := 0; e < epochs; e++ {
				// Epoch e adds a new well-separated blob: the site's newest
				// model has e+1 clusters, disjoint from every other site's.
				pts = append(pts, blob(rng, float64(site*1000+e*100), 0, 150)...)
				out, err := dbdc.LocalStep(id, pts, testCfg())
				if err == nil {
					_, _, _, err = Exchange(srv.Addr(), out.Model, 10*time.Second)
				}
				if err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(s)
	}
	for s := 0; s < sites; s++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	// Newest model wins per site: the final global clustering is built from
	// every site's last upload — sites × epochs disjoint clusters.
	final := srv.Global()
	if final == nil || final.NumClusters != sites*epochs {
		t.Fatalf("final global model has %d clusters, want %d (a stale model survived)",
			final.NumClusters, sites*epochs)
	}
	if got := len(srv.Sites()); got != sites {
		t.Fatalf("retained %d site models, want %d", got, sites)
	}
	sinkMu.Lock()
	defer sinkMu.Unlock()
	if len(observed) != sites*epochs {
		t.Fatalf("sink observed %d rebuilds, want %d", len(observed), sites*epochs)
	}
	if observed[len(observed)-1] != final {
		t.Fatal("sink's last observation is not the retained global model: rebuild order leaked")
	}
	// Rebuild inputs only ever grow sites, never lose them: cluster counts
	// along the observation order never drop below a previous count from
	// the same site set — cheap necessary condition we can check globally:
	// the last observation must carry the maximum cluster count.
	for i, g := range observed {
		if g == nil {
			t.Fatalf("observation %d is nil", i)
		}
		if g.NumClusters > final.NumClusters {
			t.Fatalf("observation %d has %d clusters, more than the final %d", i, g.NumClusters, final.NumClusters)
		}
	}
}
