package transport

import (
	"encoding/binary"
	"fmt"
	"strings"
	"time"
)

// This file implements the wire side of the hierarchical aggregation tree
// (internal/aggtree, docs/hierarchy.md): the provenance section an interior
// aggregator attaches to the condensed model it uploads to its parent. The
// condensed model itself is an ordinary model.LocalModel — the regional
// cluster ids ride in the representatives' LocalCluster field — so the
// parent's wire sees nothing new; the section adds the metadata a flat
// site-shaped upload cannot express: which level of the tree the upload
// comes from, which sources fed the region, and what the child-level round
// cost. Like every section it is skip-unknown: an old server ignores it and
// treats the aggregator as a plain (large) site.
const (
	// sectionAggLevel is the aggregation provenance section of a condensed
	// upload: tree level, child-round outcome, regional clustering stats,
	// per-source representative provenance, and the child-level phase
	// timings (collect, global step, condense) that let the root report a
	// per-level cost decomposition.
	sectionAggLevel byte = 0x07

	aggLevelVersion byte = 1

	// aggLevelFixedLen is the encoded size of a version-1 body before the
	// variable-length source list: version byte, level u32, sites expected/
	// ok/failed u32 each, regional clusters u32, objects u64, round ns u64,
	// global ns u64, condense ns u64, source count u32.
	aggLevelFixedLen = 1 + 4 + 4 + 4 + 4 + 4 + 8 + 8 + 8 + 8 + 4

	// maxAggSources bounds the decoded source list so a malformed count
	// cannot make the parser allocate unbounded memory. A real aggregator
	// has one source per child connection; 64k is far beyond any fan-in.
	maxAggSources = 1 << 16
)

// AggSource names one child that contributed to a condensed model: a site
// (or a deeper aggregator) and how many representatives of the regional
// model originated there.
type AggSource struct {
	// SiteID is the child's id on the aggregator's wire.
	SiteID string
	// Reps is the number of representatives the child contributed to the
	// regional model before any condensation budget was applied.
	Reps int
}

// AggLevel is the aggregation provenance an interior tree node reports
// alongside its condensed upload (the sectionAggLevel trailer). The parent
// stores it in the site's SiteOutcome, which is how per-level round reports
// chain up the tree: every node sees its children's level summaries and
// forwards its own.
type AggLevel struct {
	// Level is the sender's height in the tree: 1 for a leaf aggregator
	// (its children are sites), one more than the highest child level
	// otherwise. Sites implicitly sit at level 0.
	Level int
	// SitesExpected, SitesOK and SitesFailed summarize the child round the
	// condensed model was derived from.
	SitesExpected, SitesOK, SitesFailed int
	// RegionalClusters is the cluster count of the regional global model.
	RegionalClusters int
	// Objects is the summed object cardinality behind the region's usable
	// site models.
	Objects int
	// RoundDuration is the child round's wall clock (collect + regional
	// global step + broadcast preparation), GlobalStepDuration the regional
	// clustering alone, CondenseDuration the GlobalModel→LocalModel
	// condensation.
	RoundDuration      time.Duration
	GlobalStepDuration time.Duration
	CondenseDuration   time.Duration
	// Sources lists the children whose representatives fed the regional
	// model, in the child round's deterministic (id-sorted) order.
	Sources []AggSource
}

// String renders a compact one-line summary for round-report logs.
func (a *AggLevel) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "level=%d children=%d/%d regional-clusters=%d objects=%d round=%s global=%s condense=%s",
		a.Level, a.SitesOK, a.SitesExpected, a.RegionalClusters, a.Objects,
		a.RoundDuration.Round(time.Millisecond),
		a.GlobalStepDuration.Round(time.Microsecond),
		a.CondenseDuration.Round(time.Microsecond))
	if len(a.Sources) > 0 {
		b.WriteString(" sources=")
		for i, s := range a.Sources {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s:%d", s.SiteID, s.Reps)
		}
	}
	return b.String()
}

// appendAggLevelSection appends the encoded provenance section to dst.
func appendAggLevelSection(dst []byte, a AggLevel) []byte {
	bodyLen := aggLevelFixedLen
	for _, s := range a.Sources {
		bodyLen += 2 + len(s.SiteID) + 4
	}
	dst = append(dst, sectionAggLevel)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(bodyLen))
	dst = append(dst, aggLevelVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.Level))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.SitesExpected))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.SitesOK))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.SitesFailed))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.RegionalClusters))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(a.Objects))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(a.RoundDuration.Nanoseconds()))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(a.GlobalStepDuration.Nanoseconds()))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(a.CondenseDuration.Nanoseconds()))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(a.Sources)))
	for _, s := range a.Sources {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s.SiteID)))
		dst = append(dst, s.SiteID...)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(s.Reps))
	}
	return dst
}

// parseAggLevelBody decodes a version-1 (or newer, prefix-compatible)
// provenance body. ok is false on a short body, unknown version, or a
// malformed source list — the section is then ignored, it never fails the
// upload: provenance is metadata, the model already decoded.
func parseAggLevelBody(body []byte) (AggLevel, bool) {
	if len(body) < aggLevelFixedLen || body[0] != aggLevelVersion {
		return AggLevel{}, false
	}
	a := AggLevel{
		Level:              int(binary.LittleEndian.Uint32(body[1:5])),
		SitesExpected:      int(binary.LittleEndian.Uint32(body[5:9])),
		SitesOK:            int(binary.LittleEndian.Uint32(body[9:13])),
		SitesFailed:        int(binary.LittleEndian.Uint32(body[13:17])),
		RegionalClusters:   int(binary.LittleEndian.Uint32(body[17:21])),
		Objects:            int(binary.LittleEndian.Uint64(body[21:29])),
		RoundDuration:      time.Duration(binary.LittleEndian.Uint64(body[29:37])),
		GlobalStepDuration: time.Duration(binary.LittleEndian.Uint64(body[37:45])),
		CondenseDuration:   time.Duration(binary.LittleEndian.Uint64(body[45:53])),
	}
	n := int(binary.LittleEndian.Uint32(body[53:57]))
	if n < 0 || n > maxAggSources {
		return AggLevel{}, false
	}
	rest := body[aggLevelFixedLen:]
	if n > 0 {
		a.Sources = make([]AggSource, 0, min(n, len(rest)/6))
	}
	for i := 0; i < n; i++ {
		if len(rest) < 2 {
			return AggLevel{}, false
		}
		idLen := int(binary.LittleEndian.Uint16(rest[:2]))
		rest = rest[2:]
		if len(rest) < idLen+4 {
			return AggLevel{}, false
		}
		a.Sources = append(a.Sources, AggSource{
			SiteID: string(rest[:idLen]),
			Reps:   int(binary.LittleEndian.Uint32(rest[idLen : idLen+4])),
		})
		rest = rest[idLen+4:]
	}
	return a, true
}

// AppendAggLevelSection encodes the provenance section into dst in the
// established [id][u32 len][body] section format. Exported for the
// aggregator's Client.AppendSections hook (internal/aggtree); ParseSections
// on the receiving side returns it in SiteOutcome.Agg.
func AppendAggLevelSection(dst []byte, a AggLevel) []byte {
	return appendAggLevelSection(dst, a)
}
