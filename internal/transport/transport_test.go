package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/model"
)

func testCfg() dbdc.Config {
	return dbdc.Config{Local: dbscan.Params{Eps: 0.5, MinPts: 5}}
}

func blob(rng *rand.Rand, cx, cy float64, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{cx + rng.NormFloat64()*0.3, cy + rng.NormFloat64()*0.3}
	}
	return pts
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello dbdc")
	n, err := WriteFrame(&buf, MsgLocalModel, payload)
	if err != nil {
		t.Fatal(err)
	}
	if n != frameHeaderSize+len(payload) {
		t.Fatalf("wrote %d bytes", n)
	}
	msgType, got, rn, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != MsgLocalModel || !bytes.Equal(got, payload) || rn != n {
		t.Fatalf("round trip mismatch: type=%d payload=%q n=%d", msgType, got, rn)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, MsgError, nil); err != nil {
		t.Fatal(err)
	}
	msgType, payload, _, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != MsgError || len(payload) != 0 {
		t.Fatal("empty frame mishandled")
	}
}

func TestFrameTooLargeRejected(t *testing.T) {
	// A crafted header advertising 1 GiB must be rejected before any
	// allocation of that size.
	header := make([]byte, frameHeaderSize)
	header[0] = FrameVersion
	header[1] = MsgLocalModel
	binary.LittleEndian.PutUint32(header[2:6], 1<<30)
	if _, _, _, err := ReadFrame(bytes.NewReader(header)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameVersionRejected(t *testing.T) {
	// A version-1 style header (length first, no version byte) must be
	// rejected with the typed version error.
	header := make([]byte, frameHeaderSize)
	header[0] = 1
	if _, _, _, err := ReadFrame(bytes.NewReader(header)); !errors.Is(err, ErrFrameVersion) {
		t.Fatalf("got %v, want ErrFrameVersion", err)
	}
}

func TestFrameChecksumRejected(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, MsgLocalModel, []byte("precious payload")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for off := frameHeaderSize; off < len(raw); off++ {
		flipped := append([]byte(nil), raw...)
		flipped[off] ^= 0x40
		_, _, _, err := ReadFrame(bytes.NewReader(flipped))
		if !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at %d: got %v, want ErrChecksum", off, err)
		}
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, MsgLocalModel, []byte("payload"))
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, _, _, err := ReadFrame(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncated frame of %d bytes accepted", cut)
		}
	}
}

func TestServerValidation(t *testing.T) {
	if _, err := NewServer("127.0.0.1:0", 0, testCfg(), 0); err == nil {
		t.Error("expect=0 accepted")
	}
	bad := testCfg()
	bad.Local.Eps = -1
	if _, err := NewServer("127.0.0.1:0", 1, bad, 0); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestEndToEndTCP runs a complete networked DBDC round on the loopback:
// a server plus three concurrent sites whose data share one spatial
// cluster.
func TestEndToEndTCP(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shared := blob(rng, 0, 0, 300)
	sites := map[string][]geom.Point{
		"site-1": append(shared[:100:100], blob(rng, 8, 8, 100)...),
		"site-2": shared[100:200],
		"site-3": shared[200:],
	}
	srv, err := NewServer("127.0.0.1:0", len(sites), testCfg(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	serverDone := make(chan error, 1)
	var global *model.GlobalModel
	go func() {
		g, err := srv.RunRound()
		global = g
		serverDone <- err
	}()

	var mu sync.Mutex
	reports := make(map[string]*SiteReport)
	var wg sync.WaitGroup
	for id, pts := range sites {
		wg.Add(1)
		go func(id string, pts []geom.Point) {
			defer wg.Done()
			rep, err := RunSite(srv.Addr(), id, pts, testCfg(), 5*time.Second)
			if err != nil {
				t.Errorf("site %s: %v", id, err)
				return
			}
			mu.Lock()
			reports[id] = rep
			mu.Unlock()
		}(id, pts)
	}
	wg.Wait()
	if err := <-serverDone; err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports", len(reports))
	}
	// The shared cluster must have one global id visible on all three
	// sites.
	id1 := reports["site-1"].Labels[0]
	id2 := reports["site-2"].Labels[0]
	id3 := reports["site-3"].Labels[0]
	if id1 < 0 || id1 != id2 || id2 != id3 {
		t.Fatalf("shared cluster ids differ: %v %v %v", id1, id2, id3)
	}
	// Global model consistent across sites and server.
	if global == nil || global.NumClusters != 2 {
		t.Fatalf("server global model: %+v", global)
	}
	for id, rep := range reports {
		if rep.Global.NumClusters != global.NumClusters {
			t.Fatalf("site %s sees %d clusters, server %d", id, rep.Global.NumClusters, global.NumClusters)
		}
		if rep.BytesSent <= 0 || rep.BytesReceived <= 0 {
			t.Fatalf("site %s: missing byte accounting", id)
		}
	}
	// Byte counters on the server match what sites observed.
	var sent, recv int64
	for _, rep := range reports {
		sent += int64(rep.BytesSent)
		recv += int64(rep.BytesReceived)
	}
	if srv.BytesIn() != sent || srv.BytesOut() != recv {
		t.Fatalf("byte accounting mismatch: server in=%d out=%d, sites sent=%d received=%d",
			srv.BytesIn(), srv.BytesOut(), sent, recv)
	}
}

// TestTCPMatchesInProcess verifies the networked pipeline produces exactly
// the labeling of the in-process orchestrator.
func TestTCPMatchesInProcess(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	siteData := []dbdc.Site{
		{ID: "a", Points: append(blob(rng, 0, 0, 200), blob(rng, 5, 0, 150)...)},
		{ID: "b", Points: blob(rng, 0.8, 0, 200)},
	}
	inproc, err := dbdc.Run(siteData, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer("127.0.0.1:0", len(siteData), testCfg(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go srv.RunRound()
	var wg sync.WaitGroup
	labels := make([]cluster.Labeling, len(siteData))
	for i, s := range siteData {
		wg.Add(1)
		go func(i int, s dbdc.Site) {
			defer wg.Done()
			rep, err := RunSite(srv.Addr(), s.ID, s.Points, testCfg(), 5*time.Second)
			if err != nil {
				t.Errorf("site %s: %v", s.ID, err)
				return
			}
			labels[i] = rep.Labels
		}(i, s)
	}
	wg.Wait()
	for i, s := range siteData {
		want := inproc.Sites[s.ID].Labels
		if labels[i] == nil {
			t.Fatalf("site %s missing", s.ID)
		}
		if !labels[i].EquivalentTo(want) {
			t.Fatalf("site %s: TCP labeling differs from in-process", s.ID)
		}
	}
}

// Failure injection: a site that connects and sends garbage must not take
// the round down — the remaining sites still get a global model.
func TestServerSurvivesGarbageSite(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	srv, err := NewServer("127.0.0.1:0", 2, testCfg(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	done := make(chan error, 1)
	go func() {
		_, err := srv.RunRound()
		done <- err
	}()
	// Garbage site: connects, sends a corrupt frame, disappears.
	go func() {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			return
		}
		conn.Write([]byte{0x10, 0x00, 0x00, 0x00, MsgLocalModel, 0xde, 0xad})
		conn.Close()
	}()
	rep, err := RunSite(srv.Addr(), "good", blob(rng, 0, 0, 200), testCfg(), 5*time.Second)
	if err != nil {
		t.Fatalf("healthy site failed: %v", err)
	}
	if rep.Global.NumClusters != 1 {
		t.Fatalf("global clusters = %d, want 1", rep.Global.NumClusters)
	}
	if err := <-done; err != nil {
		t.Fatalf("round failed: %v", err)
	}
}

// Failure injection: a site that connects but never sends must only stall
// the round until the timeout, not forever.
func TestServerTimesOutSilentSite(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	srv, err := NewServer("127.0.0.1:0", 2, testCfg(), 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	done := make(chan error, 1)
	go func() {
		_, err := srv.RunRound()
		done <- err
	}()
	// Silent site: connects and stalls.
	silent, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	start := time.Now()
	rep, err := RunSite(srv.Addr(), "good", blob(rng, 0, 0, 200), testCfg(), 5*time.Second)
	if err != nil {
		t.Fatalf("healthy site failed: %v", err)
	}
	if rep.Global == nil {
		t.Fatal("no global model")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("round took %v, timeout did not kick in", elapsed)
	}
	if err := <-done; err != nil {
		t.Fatalf("round failed: %v", err)
	}
}

// When every site fails the round must error out rather than produce an
// empty global model.
func TestServerFailsWhenAllSitesFail(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", 1, testCfg(), 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	done := make(chan error, 1)
	go func() {
		_, err := srv.RunRound()
		done <- err
	}()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte{0xFF})
	conn.Close()
	if err := <-done; err == nil {
		t.Fatal("round with zero usable models succeeded")
	}
}

func TestExchangeServerError(t *testing.T) {
	// A fake server that replies with MsgError.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		ReadFrame(conn)
		WriteFrame(conn, MsgError, []byte("round failed"))
	}()
	m := &model.LocalModel{
		SiteID: "s", Kind: model.RepScor, EpsLocal: 1, MinPts: 3, NumObjects: 1,
	}
	_, _, _, err = Exchange(ln.Addr().String(), m, time.Second)
	if err == nil || !strings.Contains(err.Error(), "round failed") {
		t.Fatalf("got %v, want server-reported error", err)
	}
}

func TestExchangeUnexpectedMessage(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		ReadFrame(conn)
		WriteFrame(conn, 0x99, nil)
	}()
	m := &model.LocalModel{SiteID: "s", Kind: model.RepScor, EpsLocal: 1, MinPts: 3}
	if _, _, _, err := Exchange(ln.Addr().String(), m, time.Second); err == nil {
		t.Fatal("unexpected message type accepted")
	}
}

func TestExchangeDialFailure(t *testing.T) {
	m := &model.LocalModel{SiteID: "s", Kind: model.RepScor, EpsLocal: 1, MinPts: 3}
	if _, _, _, err := Exchange("127.0.0.1:1", m, 200*time.Millisecond); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestWriteFrameShortWriter(t *testing.T) {
	w := &limitWriter{limit: 3}
	if _, err := WriteFrame(w, MsgLocalModel, []byte("x")); err == nil {
		t.Fatal("short write not reported")
	}
}

type limitWriter struct {
	limit   int
	written int
}

func (w *limitWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.limit {
		n := w.limit - w.written
		w.written = w.limit
		return n, io.ErrShortWrite
	}
	w.written += len(p)
	return len(p), nil
}

// Property (testing/quick): ReadFrame never panics on arbitrary byte
// garbage and always round-trips frames WriteFrame produced.
func TestQuickFrameRobustness(t *testing.T) {
	f := func(msgType byte, payload []byte, garbage []byte) bool {
		var buf bytes.Buffer
		if _, err := WriteFrame(&buf, msgType, payload); err != nil {
			return false
		}
		gotType, gotPayload, _, err := ReadFrame(&buf)
		if err != nil || gotType != msgType || !bytes.Equal(gotPayload, payload) {
			return false
		}
		// Arbitrary garbage must produce an error or a bounded frame,
		// never a panic (the deferred recover converts one into a fail).
		defer func() { recover() }()
		_, p, _, err := ReadFrame(bytes.NewReader(garbage))
		return err != nil || len(p) <= MaxFrameSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
