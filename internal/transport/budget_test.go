package transport

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/model"
)

// --- budget section + handshake codecs -----------------------------------

func TestSiteBudgetSectionRoundTrip(t *testing.T) {
	want := SiteBudget{RepBudget: 4, RepsDropped: 17, CoverageFraction: 0.875}
	data := appendSiteBudgetSection(nil, want)
	_, got, _, err := parseSections(data)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || *got != want {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
	// Phases and budget coexisting in one section area, any order.
	phases := SitePhases{Workers: 2, Cluster: time.Second, Attempt: 1}
	data = appendSiteBudgetSection(appendSitePhasesSection(nil, phases), want)
	p, b, _, err := parseSections(data)
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || *p != phases || b == nil || *b != want {
		t.Fatalf("mixed sections: phases=%+v budget=%+v", p, b)
	}
}

func TestSiteBudgetSectionUnknownVersionIgnored(t *testing.T) {
	body := make([]byte, siteBudgetBodyLen)
	body[0] = 99
	data := []byte{sectionSiteBudget}
	data = binary.LittleEndian.AppendUint32(data, uint32(len(body)))
	data = append(data, body...)
	_, got, _, err := parseSections(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("unknown body version decoded anyway: %+v", got)
	}
}

func TestHelloCodecRoundTrip(t *testing.T) {
	b, err := parseHello(encodeHello(7))
	if err != nil || b != 7 {
		t.Fatalf("hello round trip: budget=%d err=%v", b, err)
	}
	// Empty hello: valid, budget unknown.
	if b, err := parseHello(nil); err != nil || b != 0 {
		t.Fatalf("empty hello: budget=%d err=%v", b, err)
	}
	// Unknown sections are skipped.
	data := []byte{0x7f}
	data = binary.LittleEndian.AppendUint32(data, 2)
	data = append(data, 1, 2)
	data = append(data, encodeHello(3)...)
	if b, err := parseHello(data); err != nil || b != 3 {
		t.Fatalf("hello with unknown section: budget=%d err=%v", b, err)
	}
	// Truncation is an encoder bug, not a degrade.
	full := encodeHello(3)
	if _, err := parseHello(full[:len(full)-1]); err == nil {
		t.Fatal("truncated hello accepted")
	}
}

func TestHelloAckCodecRoundTrip(t *testing.T) {
	for _, capBytes := range []int64{1, 4096, 1 << 40} {
		got, err := parseHelloAck(encodeHelloAck(capBytes))
		if err != nil || got != capBytes {
			t.Fatalf("ack round trip for %d: got=%d err=%v", capBytes, got, err)
		}
	}
	// No constraint encodes as an empty payload.
	if p := encodeHelloAck(0); len(p) != 0 {
		t.Fatalf("cap 0 encoded %d bytes", len(p))
	}
	if got, err := parseHelloAck(nil); err != nil || got != 0 {
		t.Fatalf("empty ack: cap=%d err=%v", got, err)
	}
}

// --- handshake negotiation fallback --------------------------------------

// timedModelServer emulates a server that knows the sectioned
// MsgLocalModelTimed upload (skipping unknown sections per the established
// rule) but predates the MsgHello handshake: the unknown type is rejected
// by closing the connection without a reply.
func timedModelServer(t *testing.T, cfg dbdc.Config) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				conn.SetDeadline(time.Now().Add(5 * time.Second))
				msgType, payload, _, err := ReadFrame(conn)
				if err != nil {
					return
				}
				if msgType != MsgLocalModel && msgType != MsgLocalModelTimed {
					// Pre-handshake rejection: close, no reply frame.
					return
				}
				var m model.LocalModel
				consumed, err := m.UnmarshalBinaryPrefix(payload)
				if err != nil || m.Validate() != nil {
					return
				}
				if msgType == MsgLocalModelTimed {
					if _, _, _, serr := parseSections(payload[consumed:]); serr != nil {
						return
					}
				} else if consumed != len(payload) {
					return
				}
				global, err := dbdc.GlobalStep([]*model.LocalModel{&m}, cfg)
				if err != nil {
					return
				}
				out, err := global.MarshalBinary()
				if err != nil {
					return
				}
				WriteFrame(conn, MsgGlobalModel, out)
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// budgetedOutcome clusters a two-blob site with the given per-cluster
// budget.
func budgetedOutcome(t *testing.T, siteID string, seed int64, budget int) (*dbdc.LocalOutcome, dbdc.Config) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := append(blob(rng, 0, 0, 150), blob(rng, 4, 0, 150)...)
	cfg := testCfg()
	cfg.RepBudget = budget
	outcome, err := dbdc.LocalStep(siteID, pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return outcome, cfg
}

// TestBudgetNegotiationFallback pins the downgrade chain of the budget
// handshake against servers of every prior protocol generation. Each
// downgrade must be immediate (no backoff) and free (a MaxAttempts=1
// client still completes): only genuine faults consume the retry budget.
func TestBudgetNegotiationFallback(t *testing.T) {
	outcome, _ := budgetedOutcome(t, "site-1", 7, 2)
	phases := &SitePhases{Workers: 2, Cluster: time.Millisecond}

	t.Run("pre-handshake-server", func(t *testing.T) {
		// Knows sectioned uploads, closes on MsgHello: one downgrade,
		// budget accounting still ships via the skip-unknown section.
		addr := timedModelServer(t, testCfg())
		c := &Client{Addr: addr, Timeout: 5 * time.Second, Retry: RetryPolicy{MaxAttempts: 1}}
		global, stats, neg, err := c.SendModelBudgeted(outcome, phases)
		if err != nil {
			t.Fatalf("budgeted upload against pre-handshake server failed: %v", err)
		}
		if global == nil || global.NumClusters < 1 {
			t.Fatalf("global model: %+v", global)
		}
		if stats.Attempts != 2 || len(stats.Log) != 2 {
			t.Fatalf("attempts = %d, want 2 (handshake, then timed)", stats.Attempts)
		}
		first, second := stats.Log[0], stats.Log[1]
		if !first.Negotiated || first.Err == "" {
			t.Fatalf("first attempt not a failed handshake: %+v", first)
		}
		if second.Negotiated || !second.Timed || second.Err != "" {
			t.Fatalf("second attempt not a clean timed upload: %+v", second)
		}
		if second.Backoff != 0 {
			t.Fatalf("downgrade slept %s; negotiation must be immediate", second.Backoff)
		}
		if !neg.Attempted || neg.Acked {
			t.Fatalf("negotiation outcome: %+v", neg)
		}
		if neg.Budget != 2 {
			t.Fatalf("budget changed without a cap: %+v", neg)
		}
	})

	t.Run("legacy-server", func(t *testing.T) {
		// Oldest generation: closes on anything but MsgLocalModel. Two
		// downgrades — handshake, sectioned frame — then the bare upload.
		addr := legacyModelServer(t, testCfg())
		c := &Client{Addr: addr, Timeout: 5 * time.Second, Retry: RetryPolicy{MaxAttempts: 1}}
		global, stats, neg, err := c.SendModelBudgeted(outcome, phases)
		if err != nil {
			t.Fatalf("budgeted upload against legacy server failed: %v", err)
		}
		if global == nil {
			t.Fatal("nil global model")
		}
		if stats.Attempts != 3 {
			t.Fatalf("attempts = %d, want 3 (handshake, timed, legacy)", stats.Attempts)
		}
		last := stats.Log[2]
		if last.Negotiated || last.Timed || last.Err != "" {
			t.Fatalf("final attempt not a clean legacy upload: %+v", last)
		}
		if stats.Log[1].Backoff != 0 || last.Backoff != 0 {
			t.Fatal("downgrades slept; negotiation must be immediate")
		}
		if !neg.Attempted || neg.Acked {
			t.Fatalf("negotiation outcome: %+v", neg)
		}
	})

	t.Run("new-server-acks", func(t *testing.T) {
		srv, err := NewServer("127.0.0.1:0", 1, testCfg(), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		done := runRound(srv, RoundOptions{})
		c := &Client{Addr: srv.Addr(), Timeout: 5 * time.Second, Retry: RetryPolicy{MaxAttempts: 1}}
		_, stats, neg, err := c.SendModelBudgeted(outcome, phases)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Attempts != 1 || !stats.Log[0].Negotiated {
			t.Fatalf("handshake against new server needed fallback: %+v", stats)
		}
		if !neg.Attempted || !neg.Acked || neg.MaxUploadBytes != 0 {
			t.Fatalf("negotiation outcome: %+v", neg)
		}
		r := <-done
		if r.err != nil {
			t.Fatal(r.err)
		}
		site := r.report.Sites[0]
		if !site.Negotiated || site.Budget == nil {
			t.Fatalf("server lost the negotiation state: %+v", site)
		}
		if site.Budget.RepBudget != 2 {
			t.Fatalf("server-side budget accounting: %+v", site.Budget)
		}
		if !strings.Contains(r.report.String(), "budget=2") ||
			!strings.Contains(r.report.String(), "negotiated") {
			t.Errorf("round report does not show the budget:\n%s", r.report)
		}
	})
}

// TestBudgetCapShrink: a server advertising a tight byte cap forces the
// client to shrink its budget below the configured one, and the upload it
// finally sends fits under the cap (header included).
func TestBudgetCapShrink(t *testing.T) {
	outcome, _ := budgetedOutcome(t, "site-1", 11, 0) // unbudgeted reference
	fullSize := int64(frameHeaderSize + outcome.Model.EncodedSize())

	outcome, _ = budgetedOutcome(t, "site-1", 11, 50) // generous budget
	srv, err := NewServer("127.0.0.1:0", 1, testCfg(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	capBytes := fullSize * 2 / 3
	srv.SetMaxUploadBytes(capBytes)
	done := runRound(srv, RoundOptions{})

	c := &Client{Addr: srv.Addr(), Timeout: 5 * time.Second, Retry: RetryPolicy{MaxAttempts: 1}}
	global, stats, neg, err := c.SendModelBudgeted(outcome, &SitePhases{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if global == nil {
		t.Fatal("nil global model")
	}
	if !neg.Acked || neg.MaxUploadBytes != capBytes {
		t.Fatalf("cap not learned: %+v", neg)
	}
	if neg.Budget >= 50 || neg.Budget < 1 {
		t.Fatalf("budget did not shrink under the cap: %+v", neg)
	}
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	site := r.report.Sites[0]
	if !site.OK {
		t.Fatalf("capped upload rejected: %s", r.report)
	}
	if site.Budget == nil || site.Budget.RepBudget != neg.Budget {
		t.Fatalf("server-side budget %+v, client shipped %d", site.Budget, neg.Budget)
	}
	// The model frame obeyed the cap. site.Bytes includes the hello frame
	// read on the same connection; the upload alone is what the cap binds,
	// and the server would have rejected a violation.
	_ = stats
	if r.report.UplinkBytes <= 0 {
		t.Fatalf("uplink accounting: %+v", r.report)
	}

	t.Run("impossible-cap", func(t *testing.T) {
		srv2, err := NewServer("127.0.0.1:0", 1, testCfg(), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer srv2.Close()
		srv2.SetMaxUploadBytes(frameHeaderSize + 8) // nothing fits
		done2 := runRound(srv2, RoundOptions{AcceptTimeout: 2 * time.Second})
		c2 := &Client{Addr: srv2.Addr(), Timeout: 5 * time.Second, Retry: fastRetry(3)}
		_, _, _, err = c2.SendModelBudgeted(outcome, nil)
		if err == nil {
			t.Fatal("impossible cap accepted")
		}
		if Retryable(err) {
			t.Fatalf("impossible cap must be permanent, got retryable: %v", err)
		}
		<-done2
	})
}

// TestBudgetedRoundE2E is the mixed-generation networked round of the
// issue: three sites with different budgets — one of them a legacy,
// unbudgeted client — against a quorum-2 server. Asserts the negotiation
// outcome and uplink accounting per site, and that the global labels match
// an in-process pipeline run with the same per-site budgets.
func TestBudgetedRoundE2E(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	sitePts := map[string][]geom.Point{
		"site-a": append(blob(rng, 0, 0, 150), blob(rng, 4, 0, 150)...),
		"site-b": append(blob(rng, 0, 0.5, 150), blob(rng, 4, 0.5, 150)...),
		"site-c": append(blob(rng, 2, 0.25, 150), blob(rng, 6, 0, 150)...),
	}
	budgets := map[string]int{"site-a": 3, "site-b": 1, "site-c": 0} // site-c is legacy

	srv, err := NewServer("127.0.0.1:0", 3, testCfg(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	done := runRound(srv, RoundOptions{Quorum: 2, ExpectedSites: []string{"site-a", "site-b", "site-c"}})

	type siteResult struct {
		id     string
		report *SiteReport
		err    error
	}
	results := make(chan siteResult, len(sitePts))
	for id, pts := range sitePts {
		go func(id string, pts []geom.Point) {
			cfg := testCfg()
			cfg.RepBudget = budgets[id]
			c := &Client{Addr: srv.Addr(), Timeout: 5 * time.Second, Retry: fastRetry(3)}
			if budgets[id] == 0 {
				// The legacy client of the scenario: pre-budget wire
				// behavior, plain timed upload path.
				c.DisableTimedUpload = true
			}
			rep, err := RunSiteClient(c, id, pts, cfg)
			results <- siteResult{id, rep, err}
		}(id, pts)
	}
	siteReports := make(map[string]*SiteReport, len(sitePts))
	for range sitePts {
		r := <-results
		if r.err != nil {
			t.Fatalf("site %s: %v", r.id, r.err)
		}
		siteReports[r.id] = r.report
	}
	rr := <-done
	if rr.err != nil {
		t.Fatal(rr.err)
	}
	report := rr.report
	if report.OK != 3 || report.Failed != 0 {
		t.Fatalf("round: %s", report)
	}

	// Per-site negotiation outcome and uplink accounting.
	var uplinkSum int
	for _, site := range report.Sites {
		uplinkSum += site.Bytes
		switch site.SiteID {
		case "site-a", "site-b":
			if !site.Negotiated || site.Budget == nil {
				t.Fatalf("budgeted site %s did not negotiate: %+v", site.SiteID, site)
			}
			if site.Budget.RepBudget != budgets[site.SiteID] {
				t.Fatalf("site %s shipped budget %d, configured %d",
					site.SiteID, site.Budget.RepBudget, budgets[site.SiteID])
			}
			if cov := site.Budget.CoverageFraction; cov <= 0 || cov > 1 {
				t.Fatalf("site %s coverage %f", site.SiteID, cov)
			}
		case "site-c":
			if site.Negotiated || site.Budget != nil {
				t.Fatalf("legacy site fabricated budget state: %+v", site)
			}
		}
		if neg := siteReports[site.SiteID].Negotiation; site.SiteID != "site-c" {
			if !neg.Acked || neg.Budget != budgets[site.SiteID] {
				t.Fatalf("site %s client-side negotiation: %+v", site.SiteID, neg)
			}
		}
	}
	if report.UplinkBytes != uplinkSum {
		t.Fatalf("UplinkBytes %d != per-site sum %d", report.UplinkBytes, uplinkSum)
	}
	// The budget must actually bite: the tightly budgeted site uploads
	// fewer bytes than the unbudgeted one (similar data on every site).
	bytesOf := func(id string) int {
		for _, s := range report.Sites {
			if s.SiteID == id {
				return s.Bytes
			}
		}
		return -1
	}
	if bytesOf("site-b") >= bytesOf("site-c") {
		t.Fatalf("budget 1 upload (%dB) not below unbudgeted (%dB)",
			bytesOf("site-b"), bytesOf("site-c"))
	}

	// The networked labels must match an in-process pipeline with the same
	// per-site budgets: LocalStep per site, GlobalStep over the models
	// sorted by site id, RelabelSite per site.
	ids := []string{"site-a", "site-b", "site-c"}
	outcomes := make(map[string]*dbdc.LocalOutcome, len(ids))
	var models []*model.LocalModel
	for _, id := range ids {
		cfg := testCfg()
		cfg.RepBudget = budgets[id]
		o, err := dbdc.LocalStep(id, sitePts[id], cfg)
		if err != nil {
			t.Fatal(err)
		}
		outcomes[id] = o
		models = append(models, o.Model)
	}
	wantGlobal, err := dbdc.GlobalStep(models, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		wantLabels, _, err := dbdc.RelabelSite(outcomes[id], wantGlobal)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(siteReports[id].Labels, wantLabels) {
			t.Fatalf("site %s: networked labels differ from in-process budgeted run", id)
		}
	}

	// The serving side's classifier parity over a budgeted global model is
	// covered in internal/serve (TestClassifierBudgetedModelParity) — serve
	// imports transport, so the differential lives there.
}

// TestBudgetZeroWireIdentity: a RunSiteClient round with RepBudget unset
// must put exactly the same upload bytes on the wire as one that predates
// the budget feature — no handshake, no budget section.
func TestBudgetZeroWireIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := append(blob(rng, 0, 0, 150), blob(rng, 4, 0, 150)...)
	cfg := testCfg() // RepBudget unset

	run := func() (*SiteReport, *RoundReport) {
		srv, err := NewServer("127.0.0.1:0", 1, cfg, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		done := runRound(srv, RoundOptions{})
		c := &Client{Addr: srv.Addr(), Timeout: 5 * time.Second}
		rep, err := RunSiteClient(c, "site-1", pts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r := <-done
		if r.err != nil {
			t.Fatal(r.err)
		}
		return rep, r.report
	}
	rep, report := run()
	if rep.Negotiation.Attempted {
		t.Fatalf("unbudgeted round attempted a handshake: %+v", rep.Negotiation)
	}
	site := report.Sites[0]
	if site.Negotiated || site.Budget != nil {
		t.Fatalf("unbudgeted round carried budget state: %+v", site)
	}
	// The wire cost equals the sectioned-but-unbudgeted frame: model bytes
	// plus exactly one phases section, nothing else.
	outcome, err := dbdc.LocalStep("site-1", pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := frameHeaderSize + outcome.Model.EncodedSize() + sectionHeaderSize + sitePhasesBodyLen
	if site.Bytes != wantBytes {
		t.Fatalf("unbudgeted upload = %dB, pre-budget wire format = %dB", site.Bytes, wantBytes)
	}
}

// FuzzBudgetSections fuzzes every parser the budget feature added — the
// upload section walker with budget sections, the hello and the ack — the
// way FuzzReadFrame pins the frame decoder: no input may panic, and every
// accepted section area round-trips through the appenders canonically.
func FuzzBudgetSections(f *testing.F) {
	f.Add(appendSiteBudgetSection(nil, SiteBudget{RepBudget: 4, RepsDropped: 9, CoverageFraction: 0.75}))
	f.Add(appendSitePhasesSection(appendSiteBudgetSection(nil, SiteBudget{RepBudget: 1}), SitePhases{Workers: 2}))
	f.Add(encodeHello(8))
	f.Add(encodeHelloAck(1 << 20))
	f.Add([]byte{})
	f.Add([]byte{sectionSiteBudget, 0xff, 0xff, 0xff, 0xff})     // oversized body length
	f.Add(appendSiteBudgetSection(nil, SiteBudget{})[:6])        // truncated body
	f.Add([]byte{0x7f, 0, 0, 0, 0})                              // unknown empty section
	seed := appendSiteBudgetSection(nil, SiteBudget{RepBudget: 2})
	seed[5] = 99 // unknown body version
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		phases, budget, _, err := parseSections(data)
		if err == nil && budget != nil {
			// Accepted budget sections must round-trip canonically
			// through the appender.
			re := appendSiteBudgetSection(nil, *budget)
			_, back, _, rerr := parseSections(re)
			if rerr != nil || back == nil {
				t.Fatalf("re-encoded budget section rejected: %v", rerr)
			}
			same := *back == *budget ||
				// NaN coverage survives the trip but breaks ==.
				(back.RepBudget == budget.RepBudget && back.RepsDropped == budget.RepsDropped &&
					back.CoverageFraction != back.CoverageFraction && budget.CoverageFraction != budget.CoverageFraction)
			if !same {
				t.Fatalf("budget section did not round-trip: %+v vs %+v", back, budget)
			}
		}
		_ = phases
		if b, herr := parseHello(data); herr == nil && b != 0 {
			if got, rerr := parseHello(encodeHello(b)); rerr != nil || got != b {
				t.Fatalf("hello did not round-trip: %d vs %d (%v)", got, b, rerr)
			}
		}
		if capBytes, aerr := parseHelloAck(data); aerr == nil && capBytes > 0 {
			if got, rerr := parseHelloAck(encodeHelloAck(capBytes)); rerr != nil || got != capBytes {
				t.Fatalf("ack did not round-trip: %d vs %d (%v)", got, capBytes, rerr)
			}
		}
	})
}

// TestBudgetBenchReportMetrics: budgeted sites surface their accounting in
// the benchio conversion so benchdiff can track coverage and bytes.
func TestBudgetBenchReportMetrics(t *testing.T) {
	r := &RoundReport{
		Sites: []SiteOutcome{{
			SiteID: "s1", OK: true, Bytes: 1234,
			Budget: &SiteBudget{RepBudget: 4, RepsDropped: 11, CoverageFraction: 0.9},
		}},
	}
	rep := r.BenchReport("test", "")
	var entry map[string]float64
	for _, e := range rep.Entries {
		if e.Name == "NetworkedRound/site=s1" {
			entry = e.Metrics
		}
	}
	if entry == nil {
		t.Fatalf("no site entry in %+v", rep.Entries)
	}
	if entry["rep-budget"] != 4 || entry["reps-dropped"] != 11 || entry["coverage-fraction"] != 0.9 {
		t.Fatalf("budget metrics missing: %+v", entry)
	}
	if fmt.Sprintf("%v", entry["upload-bytes"]) != "1234" {
		t.Fatalf("upload-bytes: %+v", entry)
	}
}
