package transport

import (
	"bytes"
	"testing"
)

// FuzzReadFrame asserts that no byte sequence can panic the frame decoder,
// that accepted frames are bounded, and that every accepted frame
// round-trips byte-identically through WriteFrame (the codec is canonical).
// Seed corpus: testdata/fuzz/FuzzReadFrame plus the f.Add seeds below.
func FuzzReadFrame(f *testing.F) {
	var valid bytes.Buffer
	WriteFrame(&valid, MsgLocalModel, []byte("seed payload"))
	f.Add(valid.Bytes())
	var empty bytes.Buffer
	WriteFrame(&empty, MsgError, nil)
	f.Add(empty.Bytes())
	f.Add([]byte{})                                  // nothing
	f.Add(valid.Bytes()[:frameHeaderSize-1])         // truncated header
	f.Add(valid.Bytes()[:frameHeaderSize+3])         // truncated payload
	f.Add([]byte{1, 1, 0, 0, 0, 0, 0, 0, 0, 0})     // wrong version
	f.Add([]byte{2, 1, 255, 255, 255, 255, 0, 0, 0, 0}) // oversized length

	f.Fuzz(func(t *testing.T, data []byte) {
		msgType, payload, n, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(payload) > MaxFrameSize {
			t.Fatalf("accepted oversized payload of %d bytes", len(payload))
		}
		if n != frameHeaderSize+len(payload) || n > len(data) {
			t.Fatalf("frame size %d inconsistent with payload %d / input %d", n, len(payload), len(data))
		}
		var buf bytes.Buffer
		if _, werr := WriteFrame(&buf, msgType, payload); werr != nil {
			t.Fatalf("re-encoding accepted frame: %v", werr)
		}
		if !bytes.Equal(buf.Bytes(), data[:n]) {
			t.Fatalf("frame did not round-trip canonically")
		}
	})
}
