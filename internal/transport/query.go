package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
)

// Section 7 of the paper motivates the relabeling step with queries like
// "give me all objects on your site which belong to the global cluster
// 4711". SiteQueryServer is that capability: after a DBDC round, a site
// serves membership queries over its relabelled objects.

// Additional message types for the query protocol.
const (
	// MsgClusterQuery carries a global cluster id (little-endian int32).
	MsgClusterQuery byte = 0x10
	// MsgClusterReply carries the matching points: u32 count, u32 dim,
	// count·dim float64 coordinates.
	MsgClusterReply byte = 0x11
)

// SiteQueryServer answers cluster-membership queries over one site's
// relabelled data.
type SiteQueryServer struct {
	ln      net.Listener
	timeout time.Duration

	mu     sync.RWMutex
	pts    []geom.Point
	labels cluster.Labeling
}

// NewSiteQueryServer listens on addr and serves the given relabelled
// objects. pts and labels must have equal length.
func NewSiteQueryServer(addr string, pts []geom.Point, labels cluster.Labeling, timeout time.Duration) (*SiteQueryServer, error) {
	if len(pts) != len(labels) {
		return nil, fmt.Errorf("transport: %d points but %d labels", len(pts), len(labels))
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	return &SiteQueryServer{ln: ln, timeout: timeout, pts: pts, labels: labels}, nil
}

// Addr returns the listen address.
func (s *SiteQueryServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *SiteQueryServer) Close() error { return s.ln.Close() }

// Update replaces the served labeling, e.g. after the next DBDC round.
func (s *SiteQueryServer) Update(pts []geom.Point, labels cluster.Labeling) error {
	if len(pts) != len(labels) {
		return fmt.Errorf("transport: %d points but %d labels", len(pts), len(labels))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pts, s.labels = pts, labels
	return nil
}

// Serve answers n query connections (0 = until Close).
func (s *SiteQueryServer) Serve(n int) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for done := 0; n == 0 || done < n; done++ {
		conn, err := s.ln.Accept()
		if err != nil {
			if n == 0 {
				return nil
			}
			return fmt.Errorf("transport: accept: %w", err)
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			s.handleQuery(conn)
		}(conn)
	}
	return nil
}

func (s *SiteQueryServer) handleQuery(conn net.Conn) {
	conn.SetDeadline(time.Now().Add(s.timeout))
	msgType, payload, _, err := ReadFrame(conn)
	if err != nil {
		if errors.Is(err, ErrChecksum) || errors.Is(err, ErrFrameTooLarge) || errors.Is(err, ErrFrameVersion) {
			WriteFrame(conn, MsgError, []byte(err.Error()))
		}
		return
	}
	if msgType != MsgClusterQuery || len(payload) != 4 {
		WriteFrame(conn, MsgError, []byte("expected cluster query"))
		return
	}
	id := cluster.ID(int32(binary.LittleEndian.Uint32(payload)))
	s.mu.RLock()
	var members []geom.Point
	for i, l := range s.labels {
		if l == id {
			members = append(members, s.pts[i])
		}
	}
	s.mu.RUnlock()
	WriteFrame(conn, MsgClusterReply, EncodePoints(members))
}

// EncodePoints serialises a point list into the shared wire layout used by
// MsgClusterReply and the classification requests: u32 count, u32 dim,
// then count·dim little-endian float64 coordinates.
func EncodePoints(pts []geom.Point) []byte {
	dim := 0
	if len(pts) > 0 {
		dim = pts[0].Dim()
	}
	buf := make([]byte, 8, 8+len(pts)*dim*8)
	binary.LittleEndian.PutUint32(buf, uint32(len(pts)))
	binary.LittleEndian.PutUint32(buf[4:], uint32(dim))
	for _, p := range pts {
		for _, v := range p {
			var scratch [8]byte
			binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
			buf = append(buf, scratch[:]...)
		}
	}
	return buf
}

// DecodePoints is the inverse of EncodePoints with hostile-input bounds
// checks: implausible headers are rejected before any allocation sized by
// them.
func DecodePoints(buf []byte) ([]geom.Point, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("transport: truncated point list")
	}
	count := int(binary.LittleEndian.Uint32(buf))
	dim := int(binary.LittleEndian.Uint32(buf[4:]))
	if dim > 1024 || count > 100_000_000 {
		return nil, fmt.Errorf("transport: implausible point list %dx%d", count, dim)
	}
	if dim == 0 && count > 0 {
		// Zero-dimensional points carry no payload bytes, so the count
		// is unverifiable — reject instead of allocating count headers.
		return nil, fmt.Errorf("transport: %d zero-dimensional points", count)
	}
	need := 8 + count*dim*8
	if len(buf) != need {
		return nil, fmt.Errorf("transport: point list has %d bytes, want %d", len(buf), need)
	}
	pts := make([]geom.Point, count)
	off := 8
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		pts[i] = p
	}
	return pts, nil
}

// QueryCluster asks the site at addr for all of its objects in the given
// global cluster.
func QueryCluster(addr string, id cluster.ID, timeout time.Duration) ([]geom.Point, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	var payload [4]byte
	binary.LittleEndian.PutUint32(payload[:], uint32(int32(id)))
	if _, err := WriteFrame(conn, MsgClusterQuery, payload[:]); err != nil {
		return nil, err
	}
	msgType, reply, _, err := ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	switch msgType {
	case MsgClusterReply:
		return DecodePoints(reply)
	case MsgError:
		return nil, fmt.Errorf("transport: site reported: %s", reply)
	default:
		return nil, fmt.Errorf("transport: unexpected message type 0x%02x", msgType)
	}
}
