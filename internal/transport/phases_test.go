package transport

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
	"github.com/dbdc-go/dbdc/internal/model"
)

// --- section codec -------------------------------------------------------

func TestSitePhasesSectionRoundTrip(t *testing.T) {
	want := SitePhases{
		Workers:  4,
		Cluster:  123 * time.Millisecond,
		Condense: 456 * time.Microsecond,
		Attempt:  3,
		Backoff:  78 * time.Millisecond,
	}
	data := appendSitePhasesSection(nil, want)
	got, _, _, err := parseSections(data)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || *got != want {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
}

func TestParseSectionsSkipsUnknown(t *testing.T) {
	phases := SitePhases{Workers: 2, Cluster: time.Second, Attempt: 1}
	// Unknown section before and after the known one: a newer client may
	// append sections this parser has never heard of.
	data := []byte{0x7f}
	data = binary.LittleEndian.AppendUint32(data, 3)
	data = append(data, 1, 2, 3)
	data = appendSitePhasesSection(data, phases)
	data = append(data, 0x42)
	data = binary.LittleEndian.AppendUint32(data, 0)
	got, _, _, err := parseSections(data)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || *got != phases {
		t.Fatalf("known section lost between unknown ones: %+v", got)
	}
}

func TestParseSectionsUnknownBodyVersionIgnored(t *testing.T) {
	// A known section id with an unknown body version must be skipped,
	// not fail the upload: the body-version byte is the forward-compat
	// hinge for incompatible layout changes.
	body := make([]byte, sitePhasesBodyLen)
	body[0] = 99
	data := []byte{sectionSitePhases}
	data = binary.LittleEndian.AppendUint32(data, uint32(len(body)))
	data = append(data, body...)
	got, _, _, err := parseSections(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("unknown body version decoded anyway: %+v", got)
	}
}

func TestParseSectionsTruncated(t *testing.T) {
	full := appendSitePhasesSection(nil, SitePhases{Workers: 1})
	for _, cut := range []int{1, sectionHeaderSize - 1, sectionHeaderSize + 2, len(full) - 1} {
		if _, _, _, err := parseSections(full[:cut]); err == nil {
			t.Errorf("truncation at %d bytes accepted", cut)
		}
	}
}

// --- version negotiation -------------------------------------------------

// legacyModelServer emulates the wire behavior of servers that predate
// MsgLocalModelTimed, distilled from the historical readLocalModel: accept
// a connection, read one frame, and on any message type other than
// MsgLocalModel close the connection without a reply. A valid legacy
// upload is answered with the global model of that single site.
func legacyModelServer(t *testing.T, cfg dbdc.Config) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				conn.SetDeadline(time.Now().Add(5 * time.Second))
				msgType, payload, _, err := ReadFrame(conn)
				if err != nil {
					return
				}
				if msgType != MsgLocalModel {
					// The historical rejection: close, no reply frame.
					return
				}
				var m model.LocalModel
				if err := m.UnmarshalBinary(payload); err != nil || m.Validate() != nil {
					return
				}
				global, err := dbdc.GlobalStep([]*model.LocalModel{&m}, cfg)
				if err != nil {
					return
				}
				out, err := global.MarshalBinary()
				if err != nil {
					return
				}
				WriteFrame(conn, MsgGlobalModel, out)
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestVersionNegotiation covers both interop directions of the sectioned
// upload frame: a new client downgrading against an old server, and an old
// (legacy-frame) client against the new server.
func TestVersionNegotiation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := testCfg()
	pts := blob(rng, 0, 0, 200)
	outcome, err := dbdc.LocalStep("site-1", pts, cfg)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("new-client/old-server", func(t *testing.T) {
		addr := legacyModelServer(t, cfg)
		// MaxAttempts 1: the downgrade retry must not consume the fault
		// budget — a single-attempt client still completes the round.
		c := &Client{Addr: addr, Timeout: 5 * time.Second, Retry: RetryPolicy{MaxAttempts: 1}}
		phases := &SitePhases{Workers: 2, Cluster: time.Millisecond}
		global, stats, err := c.SendModelTimed(outcome.Model, phases)
		if err != nil {
			t.Fatalf("timed upload against legacy server failed: %v", err)
		}
		if global == nil || global.NumClusters < 1 {
			t.Fatalf("global model: %+v", global)
		}
		if stats.Attempts != 2 || len(stats.Log) != 2 {
			t.Fatalf("attempts = %d, log = %d entries, want 2/2 (timed then legacy)", stats.Attempts, len(stats.Log))
		}
		first, second := stats.Log[0], stats.Log[1]
		if !first.Timed || first.Err == "" {
			t.Fatalf("first attempt not a failed timed upload: %+v", first)
		}
		if second.Timed || second.Err != "" {
			t.Fatalf("second attempt not a clean legacy upload: %+v", second)
		}
		if second.Backoff != 0 {
			t.Fatalf("downgrade retry slept %s; negotiation must be immediate", second.Backoff)
		}
	})

	t.Run("old-client/new-server", func(t *testing.T) {
		srv, err := NewServer("127.0.0.1:0", 1, cfg, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		done := runRound(srv, RoundOptions{})
		// SendModel with no phases is exactly the legacy wire exchange:
		// a plain MsgLocalModel frame.
		c := &Client{Addr: srv.Addr(), Timeout: 5 * time.Second}
		global, stats, err := c.SendModel(outcome.Model)
		if err != nil {
			t.Fatal(err)
		}
		if global == nil || stats.Attempts != 1 || stats.Log[0].Timed {
			t.Fatalf("legacy upload: global=%v stats=%+v", global, stats)
		}
		r := <-done
		if r.err != nil {
			t.Fatal(r.err)
		}
		if len(r.report.Sites) != 1 || !r.report.Sites[0].OK {
			t.Fatalf("report: %s", r.report)
		}
		if r.report.Sites[0].Phases != nil {
			t.Fatalf("legacy upload fabricated phases: %+v", r.report.Sites[0].Phases)
		}
	})

	t.Run("new-client/new-server", func(t *testing.T) {
		srv, err := NewServer("127.0.0.1:0", 1, cfg, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		done := runRound(srv, RoundOptions{})
		c := &Client{Addr: srv.Addr(), Timeout: 5 * time.Second, Retry: fastRetry(3)}
		phases := &SitePhases{Workers: 4, Cluster: 3 * time.Millisecond, Condense: 5 * time.Microsecond}
		_, stats, err := c.SendModelTimed(outcome.Model, phases)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Attempts != 1 || !stats.Log[0].Timed {
			t.Fatalf("timed upload against new server needed negotiation: %+v", stats)
		}
		r := <-done
		if r.err != nil {
			t.Fatal(r.err)
		}
		p := r.report.Sites[0].Phases
		if p == nil {
			t.Fatalf("server dropped the metrics section:\n%s", r.report)
		}
		if p.Workers != 4 || p.Cluster != 3*time.Millisecond || p.Condense != 5*time.Microsecond || p.Attempt != 1 {
			t.Fatalf("phases corrupted in flight: %+v", p)
		}
		if !strings.Contains(r.report.String(), "workers=4") {
			t.Errorf("round report does not show the breakdown:\n%s", r.report)
		}
	})

	t.Run("disable-timed-upload", func(t *testing.T) {
		srv, err := NewServer("127.0.0.1:0", 1, cfg, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		done := runRound(srv, RoundOptions{})
		c := &Client{Addr: srv.Addr(), Timeout: 5 * time.Second, DisableTimedUpload: true}
		_, stats, err := c.SendModelTimed(outcome.Model, &SitePhases{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Log[0].Timed {
			t.Fatal("DisableTimedUpload still sent the sectioned frame")
		}
		r := <-done
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.report.Sites[0].Phases != nil {
			t.Fatal("forced-legacy upload carried phases")
		}
	})
}

// --- end-to-end networked round -----------------------------------------

// TestNetworkedRoundEndToEnd is the deployment-shaped integration test: a
// server expecting three named sites with quorum two, two healthy sites
// running the full RunSiteClient pipeline with intra-site parallelism, and
// one faulty site that can never reach the server. The round must complete,
// name the failed site, carry per-phase metrics for the healthy ones, and
// label exactly like the in-process orchestrator over the same data.
func TestNetworkedRoundEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := testCfg()
	cfg.SiteWorkers = 3
	sites := []dbdc.Site{
		{ID: "site-1", Points: append(blob(rng, 0, 0, 150), blob(rng, 3, 3, 80)...)},
		{ID: "site-2", Points: append(blob(rng, 0, 0, 120), blob(rng, -3, 2, 90)...)},
	}

	srv, err := NewServer("127.0.0.1:0", 3, cfg, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	done := runRound(srv, RoundOptions{
		Quorum:        2,
		AcceptTimeout: 1500 * time.Millisecond,
		ExpectedSites: []string{"site-1", "site-2", "site-3"},
	})

	// The faulty site points at a dead address: grab a port and close it.
	deadLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadLn.Addr().String()
	deadLn.Close()

	var wg sync.WaitGroup
	reports := make(map[string]*SiteReport)
	errs := make(map[string]error)
	var mu sync.Mutex
	for _, s := range sites {
		wg.Add(1)
		go func(s dbdc.Site) {
			defer wg.Done()
			c := &Client{Addr: srv.Addr(), Timeout: 5 * time.Second, Retry: fastRetry(3)}
			rep, err := RunSiteClient(c, s.ID, s.Points, cfg)
			mu.Lock()
			reports[s.ID], errs[s.ID] = rep, err
			mu.Unlock()
		}(s)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := &Client{Addr: deadAddr, Timeout: 300 * time.Millisecond, Retry: fastRetry(2)}
		_, err := RunSiteClient(c, "site-3", blob(rng, 6, 6, 60), cfg)
		mu.Lock()
		errs["site-3"] = err
		mu.Unlock()
	}()
	wg.Wait()

	r := <-done
	if r.err != nil {
		t.Fatalf("round failed: %v\n%s", r.err, r.report)
	}
	if errs["site-1"] != nil || errs["site-2"] != nil {
		t.Fatalf("healthy sites failed: %v / %v", errs["site-1"], errs["site-2"])
	}
	if errs["site-3"] == nil {
		t.Fatal("unreachable site reported success")
	}
	if r.report.OK != 2 || r.report.Failed != 1 {
		t.Fatalf("report ok=%d failed=%d, want 2/1:\n%s", r.report.OK, r.report.Failed, r.report)
	}
	var deadOutcome *SiteOutcome
	for i := range r.report.Sites {
		if r.report.Sites[i].SiteID == "site-3" {
			deadOutcome = &r.report.Sites[i]
		}
	}
	if deadOutcome == nil || deadOutcome.OK || deadOutcome.Reason == "" {
		t.Fatalf("failed site not named in the report:\n%s", r.report)
	}

	// Per-phase metrics arrived from both healthy sites, server side …
	for _, s := range sites {
		var outcome *SiteOutcome
		for i := range r.report.Sites {
			if r.report.Sites[i].SiteID == s.ID {
				outcome = &r.report.Sites[i]
			}
		}
		if outcome == nil || !outcome.OK {
			t.Fatalf("site %s missing from the report:\n%s", s.ID, r.report)
		}
		if outcome.Phases == nil {
			t.Fatalf("site %s delivered no phases:\n%s", s.ID, r.report)
		}
		if outcome.Phases.Workers != 3 {
			t.Fatalf("site %s workers = %d, want 3", s.ID, outcome.Phases.Workers)
		}
		if outcome.Phases.Cluster <= 0 {
			t.Fatalf("site %s cluster phase not measured: %+v", s.ID, outcome.Phases)
		}
	}
	if max, n := r.report.MaxSitePhases(); n != 2 || max.Cluster <= 0 {
		t.Fatalf("MaxSitePhases = %+v over %d sites", max, n)
	}
	if r.report.GlobalStepDuration <= 0 {
		t.Fatal("global step not timed")
	}
	if r.report.UplinkBytes <= 0 || r.report.DownlinkBytes <= 0 {
		t.Fatalf("wire accounting missing: in=%d out=%d", r.report.UplinkBytes, r.report.DownlinkBytes)
	}
	// … and client side.
	for _, s := range sites {
		p := reports[s.ID].Phases
		if p.Workers != 3 || p.Cluster <= 0 || len(p.Attempts) == 0 {
			t.Fatalf("site %s client breakdown incomplete: %+v", s.ID, p)
		}
		if p.Total() <= 0 {
			t.Fatalf("site %s total phase cost %s", s.ID, p.Total())
		}
	}

	// The surviving sites must label exactly like the in-process
	// orchestrator over the same two sites and config.
	inproc, err := dbdc.Run(sites, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mustMarshalGlobal(t, r.global), mustMarshalGlobal(t, inproc.Global)) {
		t.Fatal("networked global model differs from the in-process run")
	}
	for _, s := range sites {
		want := inproc.Sites[s.ID].Labels
		got := reports[s.ID].Labels
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("site %s: label %d differs: %v vs %v", s.ID, i, got[i], want[i])
			}
		}
	}

	// The round converts into the benchio schema with one entry per
	// usable site plus the server entry.
	bench := r.report.BenchReport("test", "")
	if len(bench.Entries) != 3 {
		t.Fatalf("bench report entries = %d, want 2 sites + server", len(bench.Entries))
	}
	site1 := bench.Entry("NetworkedRound/site=site-1")
	if site1 == nil || site1.Metrics["workers"] != 3 || site1.Metrics["cluster-ns"] <= 0 {
		t.Fatalf("site entry malformed: %+v", site1)
	}
	server := bench.Entry("NetworkedRound/server")
	if server == nil || server.Metrics["sites-ok"] != 2 || server.Metrics["sites-failed"] != 1 {
		t.Fatalf("server entry malformed: %+v", server)
	}
	if server.Metrics["uplink-bytes"] <= 0 || server.Metrics["global-ns"] <= 0 {
		t.Fatalf("server metrics missing: %+v", server.Metrics)
	}
}

// --- parallel differential across index kinds ----------------------------

// TestDifferentialSiteWorkers is the acceptance differential of the
// tentpole: for every neighborhood index kind, a networked round whose
// sites run the parallel DBSCAN kernel (SiteWorkers > 1) must produce a
// byte-identical global model and identical labelings to the sequential
// in-process orchestrator configured with the same SiteWorkers. Runs under
// -race in CI.
func TestDifferentialSiteWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep skipped in -short")
	}
	rng := rand.New(rand.NewSource(11))
	shared := blob(rng, 0, 0, 180)
	sites := make([]dbdc.Site, 3)
	for i := range sites {
		pts := append([]geom.Point(nil), shared[i*60:(i+1)*60]...)
		pts = append(pts, blob(rng, float64(3*i+2), -2, 70)...)
		for j := 0; j < 10; j++ {
			pts = append(pts, geom.Point{rng.Float64()*16 - 8, rng.Float64()*16 - 8})
		}
		sites[i] = dbdc.Site{ID: fmt.Sprintf("site-%d", i+1), Points: pts}
	}

	for _, kind := range []index.Kind{
		index.KindLinear, index.KindGrid, index.KindKDTree, index.KindRStar, index.KindMTree,
	} {
		t.Run(string(kind), func(t *testing.T) {
			cfg := testCfg()
			cfg.SiteWorkers = 4
			cfg.Index = kind

			seqCfg := cfg
			seqCfg.Sequential = true
			inproc, err := dbdc.Run(sites, seqCfg)
			if err != nil {
				t.Fatal(err)
			}

			srv, err := NewServer("127.0.0.1:0", len(sites), cfg, 10*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			done := runRound(srv, RoundOptions{})
			var wg sync.WaitGroup
			labels := make([]cluster.Labeling, len(sites))
			errs := make([]error, len(sites))
			for i, s := range sites {
				wg.Add(1)
				go func(i int, s dbdc.Site) {
					defer wg.Done()
					rep, err := RunSite(srv.Addr(), s.ID, s.Points, cfg, 10*time.Second)
					if err != nil {
						errs[i] = err
						return
					}
					labels[i] = rep.Labels
				}(i, s)
			}
			wg.Wait()
			r := <-done
			if r.err != nil {
				t.Fatal(r.err)
			}
			for i, err := range errs {
				if err != nil {
					t.Fatalf("site %s: %v", sites[i].ID, err)
				}
			}
			if !bytes.Equal(mustMarshalGlobal(t, r.global), mustMarshalGlobal(t, inproc.Global)) {
				t.Fatal("parallel networked round and sequential in-process run diverged")
			}
			for i, s := range sites {
				want := inproc.Sites[s.ID].Labels
				if len(labels[i]) != len(want) {
					t.Fatalf("site %s: labeling lengths differ", s.ID)
				}
				for j := range want {
					if labels[i][j] != want[j] {
						t.Fatalf("site %s: label %d differs: %v vs %v", s.ID, j, labels[i][j], want[j])
					}
				}
			}
			// Every site ran the parallel kernel and said so on the wire.
			for _, outcome := range r.report.Sites {
				if outcome.Phases == nil || outcome.Phases.Workers != 4 {
					t.Fatalf("site %s phases = %+v, want workers=4", outcome.SiteID, outcome.Phases)
				}
			}
		})
	}
}
