package transport

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/geom"
)

func TestQueryServerValidation(t *testing.T) {
	if _, err := NewSiteQueryServer("127.0.0.1:0", []geom.Point{{0, 0}}, cluster.Labeling{0, 1}, 0); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// The end-to-end flow of Section 7: run a DBDC round, stand up query
// servers on the relabelled sites, and ask every site for the members of
// one global cluster.
func TestClusterQueryAfterRound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shared := blob(rng, 0, 0, 300)
	sites := []dbdc.Site{
		{ID: "a", Points: shared[:150]},
		{ID: "b", Points: append(shared[150:300:300], blob(rng, 9, 9, 100)...)},
	}
	res, err := dbdc.Run(sites, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	sharedID := res.Sites["a"].Labels[0]
	if sharedID < 0 {
		t.Fatal("setup: shared cluster lost")
	}
	var servers []*SiteQueryServer
	for _, s := range sites {
		srv, err := NewSiteQueryServer("127.0.0.1:0", s.Points, res.Sites[s.ID].Labels, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		go srv.Serve(0)
		servers = append(servers, srv)
	}
	total := 0
	for _, srv := range servers {
		members, err := QueryCluster(srv.Addr(), sharedID, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		total += len(members)
		for _, p := range members {
			// Every returned member must genuinely carry that label.
			found := false
			for s, site := range sites {
				for i, sp := range site.Points {
					if sp.Equal(p) && res.Sites[sites[s].ID].Labels[i] == sharedID {
						found = true
					}
				}
			}
			if !found {
				t.Fatalf("site returned non-member %v", p)
			}
		}
	}
	// All 300 shared-cluster points (plus possibly adopted noise) across
	// both sites.
	if total < 290 {
		t.Fatalf("cluster members across sites = %d, want ~300", total)
	}
	// A query for a cluster this data does not contain returns nothing.
	members, err := QueryCluster(servers[0].Addr(), 4711, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 0 {
		t.Fatalf("nonexistent cluster returned %d members", len(members))
	}
}

func TestQueryServerUpdate(t *testing.T) {
	pts := []geom.Point{{0, 0}, {1, 1}}
	srv, err := NewSiteQueryServer("127.0.0.1:0", pts, cluster.Labeling{5, cluster.Noise}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go srv.Serve(0)
	got, err := QueryCluster(srv.Addr(), 5, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Equal(pts[0]) {
		t.Fatalf("query = %v", got)
	}
	if err := srv.Update(pts, cluster.Labeling{cluster.Noise, 5}); err != nil {
		t.Fatal(err)
	}
	got, err = QueryCluster(srv.Addr(), 5, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Equal(pts[1]) {
		t.Fatalf("query after update = %v", got)
	}
	if err := srv.Update(pts, cluster.Labeling{0}); err == nil {
		t.Fatal("bad update accepted")
	}
}

func TestQueryServerRejectsWrongMessage(t *testing.T) {
	srv, err := NewSiteQueryServer("127.0.0.1:0", nil, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go srv.Serve(1)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	WriteFrame(conn, MsgLocalModel, []byte("nope"))
	msgType, _, _, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if msgType != MsgError {
		t.Fatalf("expected error reply, got 0x%02x", msgType)
	}
}

func TestPointCodecRoundTrip(t *testing.T) {
	pts := []geom.Point{{1.5, -2}, {0, 3}}
	got, err := DecodePoints(EncodePoints(pts))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[0].Equal(pts[0]) || !got[1].Equal(pts[1]) {
		t.Fatalf("round trip = %v", got)
	}
	if got, err := DecodePoints(EncodePoints(nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty round trip = %v, %v", got, err)
	}
	if _, err := DecodePoints([]byte{1, 2}); err == nil {
		t.Fatal("truncated header accepted")
	}
	buf := EncodePoints(pts)
	if _, err := DecodePoints(buf[:len(buf)-3]); err == nil {
		t.Fatal("truncated body accepted")
	}
}
