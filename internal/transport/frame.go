// Package transport turns DBDC into an actual client/server system: sites
// connect to the central server over TCP, upload their local models and
// receive the global model back. The paper's setting — independent sites
// that communicate only with the server, never with each other — maps to
// one synchronous round trip per site. All payloads use the compact binary
// encoding of the model package, and both directions count bytes so the
// transmission-cost claims can be measured rather than asserted.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Message types of the wire protocol.
const (
	// MsgLocalModel carries a model.LocalModel from site to server.
	MsgLocalModel byte = 0x01
	// MsgGlobalModel carries a model.GlobalModel from server to site.
	MsgGlobalModel byte = 0x02
	// MsgError carries a UTF-8 error string from server to site when the
	// round failed (e.g. another site sent garbage).
	MsgError byte = 0x03
)

// MaxFrameSize bounds a frame payload (64 MiB) so a corrupt length prefix
// cannot exhaust memory.
const MaxFrameSize = 64 << 20

// frame header: 4-byte little-endian payload length, 1-byte message type.
const frameHeaderSize = 5

// ErrFrameTooLarge is returned when a frame advertises a payload beyond
// MaxFrameSize.
var ErrFrameTooLarge = errors.New("transport: frame exceeds maximum size")

// WriteFrame writes one protocol frame and returns the number of bytes put
// on the wire.
func WriteFrame(w io.Writer, msgType byte, payload []byte) (int, error) {
	if len(payload) > MaxFrameSize {
		return 0, ErrFrameTooLarge
	}
	header := make([]byte, frameHeaderSize)
	binary.LittleEndian.PutUint32(header, uint32(len(payload)))
	header[4] = msgType
	if _, err := w.Write(header); err != nil {
		return 0, fmt.Errorf("transport: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return frameHeaderSize, fmt.Errorf("transport: writing frame payload: %w", err)
	}
	return frameHeaderSize + len(payload), nil
}

// ReadFrame reads one protocol frame and returns its type, payload and size
// on the wire.
func ReadFrame(r io.Reader) (msgType byte, payload []byte, n int, err error) {
	header := make([]byte, frameHeaderSize)
	if _, err := io.ReadFull(r, header); err != nil {
		return 0, nil, 0, fmt.Errorf("transport: reading frame header: %w", err)
	}
	size := binary.LittleEndian.Uint32(header)
	if size > MaxFrameSize {
		return 0, nil, 0, ErrFrameTooLarge
	}
	payload = make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, 0, fmt.Errorf("transport: reading frame payload: %w", err)
	}
	return header[4], payload, frameHeaderSize + int(size), nil
}
