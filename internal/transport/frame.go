// Package transport turns DBDC into an actual client/server system: sites
// connect to the central server over TCP, upload their local models and
// receive the global model back. The paper's setting — independent sites
// that communicate only with the server, never with each other — maps to
// one synchronous round trip per site. All payloads use the compact binary
// encoding of the model package, and both directions count bytes so the
// transmission-cost claims can be measured rather than asserted.
//
// The transport is built to survive faults, not just the happy path: frames
// carry a CRC32 so corruption is detected instead of decoded, clients retry
// transient failures with exponential backoff (RetryPolicy), and the server
// runs rounds under an accept deadline with a configurable quorum so a
// missing site degrades the round instead of hanging it. The fault matrix
// is exercised by the tests in this package via internal/faultnet.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Message types of the wire protocol.
const (
	// MsgLocalModel carries a model.LocalModel from site to server.
	MsgLocalModel byte = 0x01
	// MsgGlobalModel carries a model.GlobalModel from server to site.
	MsgGlobalModel byte = 0x02
	// MsgError carries a UTF-8 error string from server to site when the
	// round failed (e.g. another site sent garbage).
	MsgError byte = 0x03
	// MsgLocalModelTimed carries a model.LocalModel immediately followed
	// by optional trailer sections (per-phase site metrics; see
	// phases.go). The frame format itself is unchanged — same version
	// byte, same CRC — only the payload is sectioned. Servers that predate
	// the type reject it and close the connection, which the client's
	// retry loop treats as a downgrade signal: the next attempt falls back
	// to the plain MsgLocalModel encoding (version negotiation by
	// fallback; see Client.SendModelTimed).
	MsgLocalModelTimed byte = 0x08

	// MsgHello opens an optional pre-upload handshake on a round
	// connection: a budgeted site announces itself and asks for the
	// server's upload constraints before committing bytes to the wire. The
	// payload is a section area (see budget.go) so either side can grow
	// the handshake without a new message type. Servers that predate the
	// handshake reject the unknown type by closing the connection, which
	// the client treats as "no constraints, no ack" and downgrades — the
	// same negotiation-by-fallback path MsgLocalModelTimed established.
	// (0x10/0x11 belong to the site query server — see query.go.)
	MsgHello byte = 0x30
	// MsgHelloAck answers MsgHello. Its sectioned payload advertises the
	// server's upload byte cap (sectionBudgetCap); an empty section area
	// means no constraints.
	MsgHelloAck byte = 0x31

	// MsgModelDelta carries a model.LocalDelta — the incremental form of a
	// local model upload used by streaming sites — immediately followed by
	// optional trailer sections (stream statistics, per-phase metrics; see
	// stream.go). The delta encoding is self-delimiting like the timed
	// upload's. The server folds the delta into its per-site model table
	// and answers with MsgDeltaAck. Servers that predate the type either
	// close the connection (round servers) or answer MsgError (old update
	// servers); the streaming client treats both as a downgrade signal and
	// falls back to full MsgLocalModelTimed uploads (negotiation by
	// fallback, as established by MsgLocalModelTimed and MsgHello).
	MsgModelDelta byte = 0x40
	// MsgDeltaAck answers MsgModelDelta. Its sectioned payload carries the
	// applied sequence number and the server's global model version, or a
	// resync demand when the delta's base did not match the folded state
	// (the site then resets its tracker and sends a snapshot delta).
	MsgDeltaAck byte = 0x41

	// Classification protocol (the read side served by internal/serve):
	// requests classify arbitrary points against the currently published
	// global model. The payload of both request types is an EncodePoints
	// point list; MsgClassify must carry exactly one point,
	// MsgClassifyBatch any number up to the server's batch cap.
	// Connections are persistent: a client may issue many requests on one
	// connection, each answered by exactly one MsgClassifyReply (or
	// MsgError, after which the server closes).
	MsgClassify byte = 0x20
	// MsgClassifyBatch carries an EncodePoints list of query points.
	MsgClassifyBatch byte = 0x21
	// MsgClassifyReply answers either request: u64 model version, u32
	// label count, then count little-endian int32 global cluster ids
	// (−1 = noise), positionally aligned with the request points.
	MsgClassifyReply byte = 0x22
)

// FrameVersion is the wire protocol version. Version 2 added the version
// byte itself and a CRC32 of the payload to the frame header; version 1
// frames (4-byte length + type, no checksum) are rejected.
const FrameVersion byte = 2

// MaxFrameSize bounds a frame payload (64 MiB) so a corrupt length prefix
// cannot exhaust memory.
const MaxFrameSize = 64 << 20

// Frame header layout (little-endian):
//
//	[0]    version (FrameVersion)
//	[1]    message type
//	[2:6]  payload length
//	[6:10] CRC32 (IEEE) of the payload
const frameHeaderSize = 10

// Typed frame errors. Callers should match with errors.Is: the returned
// errors wrap these sentinels with context.
var (
	// ErrFrameTooLarge is returned when a frame advertises a payload
	// beyond MaxFrameSize.
	ErrFrameTooLarge = errors.New("transport: frame exceeds maximum size")
	// ErrChecksum is returned when a payload does not match the CRC32 in
	// the frame header — the bytes were corrupted in flight.
	ErrChecksum = errors.New("transport: frame checksum mismatch")
	// ErrFrameVersion is returned when the peer speaks a different frame
	// version.
	ErrFrameVersion = errors.New("transport: unsupported frame version")
)

// WriteFrame writes one protocol frame and returns the number of bytes put
// on the wire.
func WriteFrame(w io.Writer, msgType byte, payload []byte) (int, error) {
	if len(payload) > MaxFrameSize {
		return 0, fmt.Errorf("%w: payload is %d bytes", ErrFrameTooLarge, len(payload))
	}
	header := make([]byte, frameHeaderSize)
	header[0] = FrameVersion
	header[1] = msgType
	binary.LittleEndian.PutUint32(header[2:6], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[6:10], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(header); err != nil {
		return 0, fmt.Errorf("transport: writing frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return frameHeaderSize, fmt.Errorf("transport: writing frame payload: %w", err)
	}
	return frameHeaderSize + len(payload), nil
}

// ReadFrame reads one protocol frame, verifies its checksum and returns its
// type, payload and size on the wire. Corrupt input yields typed errors:
// ErrFrameVersion, ErrFrameTooLarge or ErrChecksum (all wrapped, match with
// errors.Is), never a garbage payload.
func ReadFrame(r io.Reader) (msgType byte, payload []byte, n int, err error) {
	header := make([]byte, frameHeaderSize)
	if _, err := io.ReadFull(r, header); err != nil {
		return 0, nil, 0, fmt.Errorf("transport: reading frame header: %w", err)
	}
	if header[0] != FrameVersion {
		return 0, nil, 0, fmt.Errorf("%w: got %d, want %d", ErrFrameVersion, header[0], FrameVersion)
	}
	size := binary.LittleEndian.Uint32(header[2:6])
	if size > MaxFrameSize {
		return 0, nil, 0, fmt.Errorf("%w: header advertises %d bytes", ErrFrameTooLarge, size)
	}
	wantCRC := binary.LittleEndian.Uint32(header[6:10])
	payload = make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, 0, fmt.Errorf("transport: reading frame payload: %w", err)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		// The corrupt payload is returned alongside ErrChecksum so
		// callers can attempt best-effort diagnostics (e.g. naming the
		// site behind a flipped-bit upload); it must never be decoded
		// as a model.
		return header[1], payload, frameHeaderSize + int(size),
			fmt.Errorf("%w: payload CRC 0x%08x, header says 0x%08x", ErrChecksum, got, wantCRC)
	}
	return header[1], payload, frameHeaderSize + int(size), nil
}
