package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/model"
)

// DialFunc opens a connection; it matches net.DialTimeout so tests can
// substitute a fault-injecting dialer (internal/faultnet.Dialer.DialTimeout).
type DialFunc func(network, addr string, timeout time.Duration) (net.Conn, error)

// RetryPolicy controls how Client.SendModel retries transient failures:
// exponential backoff starting at BaseDelay, doubling per attempt, capped
// at MaxDelay, with multiplicative jitter of ±Jitter.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts (first try included).
	// Values below 1 mean a single attempt, i.e. no retry.
	MaxAttempts int
	// BaseDelay is the wait after the first failure; 0 means 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff; 0 means 2s.
	MaxDelay time.Duration
	// Jitter is the fraction of the delay randomized around its nominal
	// value, in [0,1]. 0 disables jitter (deterministic delays).
	Jitter float64
}

// DefaultRetryPolicy is the policy RunSite uses: three attempts, 50ms base
// delay, 2s cap, 20% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Jitter: 0.2}
}

// delay returns the backoff before retry number `failures` (1-based count
// of failures so far).
func (p RetryPolicy) delay(failures int, rng *rand.Rand) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 1; i < failures && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if p.Jitter > 0 && rng != nil {
		f := 1 + p.Jitter*(2*rng.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	if d < 0 {
		d = 0
	}
	return d
}

// permanentError marks failures that a retry cannot fix (the server
// explicitly rejected the round, or replied with a well-formed but invalid
// model). Everything else — dial errors, I/O errors, checksum mismatches —
// is considered transient.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

func permanent(err error) error { return &permanentError{err: err} }

// Retryable reports whether SendModel would retry after err.
func Retryable(err error) bool {
	var p *permanentError
	return err != nil && !errors.As(err, &p)
}

// SendStats describes what one SendModel call cost on the wire.
type SendStats struct {
	// Attempts is the number of connection attempts made (1 = no retry).
	Attempts int
	// BytesSent and BytesReceived are summed over all attempts.
	BytesSent     int
	BytesReceived int
}

// Client is the site side of the DBDC round-trip protocol with retry. The
// zero value is not usable; set at least Addr.
type Client struct {
	// Addr is the server address ("host:port").
	Addr string
	// Timeout bounds dialing and each connection's I/O; 0 means 30s.
	Timeout time.Duration
	// Retry controls backoff; the zero value means a single attempt.
	Retry RetryPolicy
	// Dial opens connections; nil means net.DialTimeout. Tests inject
	// faultnet dialers here.
	Dial DialFunc
	// Rand is the jitter source; nil means a time-seeded source. Fix it
	// for deterministic backoff in tests.
	Rand *rand.Rand
	// OnRetry, when set, is invoked before each backoff sleep with the
	// attempt number that failed, its error and the chosen delay.
	OnRetry func(attempt int, err error, delay time.Duration)

	rngOnce sync.Once
	rng     *rand.Rand
}

func (c *Client) jitterRand() *rand.Rand {
	if c.Rand != nil {
		return c.Rand
	}
	c.rngOnce.Do(func() { c.rng = rand.New(rand.NewSource(time.Now().UnixNano())) })
	return c.rng
}

func (c *Client) dial() (net.Conn, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	dial := c.Dial
	if dial == nil {
		dial = net.DialTimeout
	}
	conn, err := dial("tcp", c.Addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", c.Addr, err)
	}
	return conn, nil
}

// SendModel uploads the local model and waits for the global model,
// reconnecting and resending the full model on transient failures per the
// retry policy. The returned stats hold the attempt count and the wire
// cost summed over all attempts.
func (c *Client) SendModel(local *model.LocalModel) (*model.GlobalModel, SendStats, error) {
	var stats SendStats
	payload, err := local.MarshalBinary()
	if err != nil {
		return nil, stats, err
	}
	attempts := c.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		stats.Attempts = attempt
		global, sent, received, err := c.exchangeOnce(payload)
		stats.BytesSent += sent
		stats.BytesReceived += received
		if err == nil {
			return global, stats, nil
		}
		lastErr = err
		if !Retryable(err) || attempt == attempts {
			break
		}
		delay := c.Retry.delay(attempt, c.jitterRand())
		if c.OnRetry != nil {
			c.OnRetry(attempt, err, delay)
		}
		time.Sleep(delay)
	}
	return nil, stats, fmt.Errorf("transport: send model (%d attempt(s)): %w", stats.Attempts, lastErr)
}

// exchangeOnce performs a single connect–upload–download round trip.
func (c *Client) exchangeOnce(payload []byte) (*model.GlobalModel, int, int, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	conn, err := c.dial()
	if err != nil {
		return nil, 0, 0, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	sent, err := WriteFrame(conn, MsgLocalModel, payload)
	if err != nil {
		return nil, sent, 0, err
	}
	msgType, reply, received, err := ReadFrame(conn)
	if err != nil {
		return nil, sent, 0, err
	}
	switch msgType {
	case MsgGlobalModel:
		var global model.GlobalModel
		if err := global.UnmarshalBinary(reply); err != nil {
			// The payload passed the CRC, so this is a server-side
			// encoding problem a retry will reproduce.
			return nil, sent, received, permanent(err)
		}
		if err := global.Validate(); err != nil {
			return nil, sent, received, permanent(err)
		}
		return &global, sent, received, nil
	case MsgError:
		return nil, sent, received, permanent(fmt.Errorf("transport: server reported: %s", reply))
	default:
		return nil, sent, received, permanent(fmt.Errorf("transport: unexpected message type 0x%02x", msgType))
	}
}

// Exchange performs the site side of one DBDC round without retry: connect
// to the server, upload the local model and wait for the global model. It
// returns the global model together with the payload bytes sent and
// received. Use a Client with a RetryPolicy for fault tolerance.
func Exchange(addr string, local *model.LocalModel, timeout time.Duration) (*model.GlobalModel, int, int, error) {
	c := &Client{Addr: addr, Timeout: timeout}
	global, stats, err := c.SendModel(local)
	return global, stats.BytesSent, stats.BytesReceived, err
}

// SiteReport is the outcome of RunSite.
type SiteReport struct {
	// Labels is the site's final labeling with global cluster ids.
	Labels cluster.Labeling
	// Stats summarises the relabeling changes.
	Stats dbdc.RelabelStats
	// Global is the received global model.
	Global *model.GlobalModel
	// BytesSent and BytesReceived are the wire costs of the round,
	// summed over all attempts.
	BytesSent     int
	BytesReceived int
	// Attempts is the number of connection attempts the upload needed.
	Attempts int
}

// RunSite executes the full site-side DBDC pipeline against a remote
// server: local clustering, model upload (with the default retry policy),
// global model download, relabeling.
func RunSite(addr, siteID string, pts []geom.Point, cfg dbdc.Config, timeout time.Duration) (*SiteReport, error) {
	return RunSiteClient(&Client{Addr: addr, Timeout: timeout, Retry: DefaultRetryPolicy()}, siteID, pts, cfg)
}

// RunSiteClient is RunSite with a caller-configured transport client
// (retry policy, dial function, jitter source).
func RunSiteClient(c *Client, siteID string, pts []geom.Point, cfg dbdc.Config) (*SiteReport, error) {
	outcome, err := dbdc.LocalStep(siteID, pts, cfg)
	if err != nil {
		return nil, err
	}
	global, stats, err := c.SendModel(outcome.Model)
	if err != nil {
		return nil, err
	}
	labels, relabel := dbdc.RelabelSite(outcome, global)
	return &SiteReport{
		Labels:        labels,
		Stats:         relabel,
		Global:        global,
		BytesSent:     stats.BytesSent,
		BytesReceived: stats.BytesReceived,
		Attempts:      stats.Attempts,
	}, nil
}
