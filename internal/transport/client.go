package transport

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"syscall"
	"time"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/model"
)

// DialFunc opens a connection; it matches net.DialTimeout so tests can
// substitute a fault-injecting dialer (internal/faultnet.Dialer.DialTimeout).
type DialFunc func(network, addr string, timeout time.Duration) (net.Conn, error)

// RetryPolicy controls how Client.SendModel retries transient failures:
// exponential backoff starting at BaseDelay, doubling per attempt, capped
// at MaxDelay, with multiplicative jitter of ±Jitter.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts (first try included).
	// Values below 1 mean a single attempt, i.e. no retry.
	MaxAttempts int
	// BaseDelay is the wait after the first failure; 0 means 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff; 0 means 2s.
	MaxDelay time.Duration
	// Jitter is the fraction of the delay randomized around its nominal
	// value, in [0,1]. 0 disables jitter (deterministic delays).
	Jitter float64
}

// DefaultRetryPolicy is the policy RunSite uses: three attempts, 50ms base
// delay, 2s cap, 20% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Jitter: 0.2}
}

// delay returns the backoff before retry number `failures` (1-based count
// of failures so far).
func (p RetryPolicy) delay(failures int, rng *rand.Rand) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 1; i < failures && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if p.Jitter > 0 && rng != nil {
		f := 1 + p.Jitter*(2*rng.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	if d < 0 {
		d = 0
	}
	return d
}

// permanentError marks failures that a retry cannot fix (the server
// explicitly rejected the round, or replied with a well-formed but invalid
// model). Everything else — dial errors, I/O errors, checksum mismatches —
// is considered transient.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

func permanent(err error) error { return &permanentError{err: err} }

// Retryable reports whether SendModel would retry after err.
func Retryable(err error) bool {
	var p *permanentError
	return err != nil && !errors.As(err, &p)
}

// SendStats describes what one SendModel call cost on the wire.
type SendStats struct {
	// Attempts is the number of connection attempts made (1 = no retry).
	Attempts int
	// BytesSent and BytesReceived are summed over all attempts.
	BytesSent     int
	BytesReceived int
	// Log records every attempt with its per-phase timings, failed ones
	// included.
	Log []AttemptStats
}

// Client is the site side of the DBDC round-trip protocol with retry. The
// zero value is not usable; set at least Addr.
type Client struct {
	// Addr is the server address ("host:port").
	Addr string
	// Timeout bounds dialing and each connection's I/O; 0 means 30s.
	Timeout time.Duration
	// Retry controls backoff; the zero value means a single attempt.
	Retry RetryPolicy
	// Dial opens connections; nil means net.DialTimeout. Tests inject
	// faultnet dialers here.
	Dial DialFunc
	// Rand is the jitter source; nil means a time-seeded source. Fix it
	// for deterministic backoff in tests.
	Rand *rand.Rand
	// OnRetry, when set, is invoked before each backoff sleep with the
	// attempt number that failed, its error and the chosen delay.
	OnRetry func(attempt int, err error, delay time.Duration)
	// DisableTimedUpload forces the legacy MsgLocalModel frame even when
	// phase metrics are available — useful against servers known to
	// predate the sectioned upload, skipping the downgrade negotiation.
	DisableTimedUpload bool

	// AppendSections, when set, appends extra sections to every sectioned
	// (timed or budgeted) upload payload after the standard metric
	// sections. This is how an aggregation-tree node attaches its
	// provenance section (AppendAggLevelSection) without the transport
	// depending on the tree. Legacy downgrades drop the extra sections
	// together with the standard ones — an old parent sees a plain model,
	// consistent with the skip-unknown ladder.
	AppendSections func(dst []byte) []byte

	rngOnce sync.Once
	rng     *rand.Rand
}

func (c *Client) jitterRand() *rand.Rand {
	if c.Rand != nil {
		return c.Rand
	}
	c.rngOnce.Do(func() { c.rng = rand.New(rand.NewSource(time.Now().UnixNano())) })
	return c.rng
}

func (c *Client) dial() (net.Conn, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	dial := c.Dial
	if dial == nil {
		dial = net.DialTimeout
	}
	conn, err := dial("tcp", c.Addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", c.Addr, err)
	}
	return conn, nil
}

// SendModel uploads the local model and waits for the global model,
// reconnecting and resending the full model on transient failures per the
// retry policy. The returned stats hold the attempt count and the wire
// cost summed over all attempts. SendModel always uses the legacy
// MsgLocalModel frame; use SendModelTimed to attach per-phase metrics.
func (c *Client) SendModel(local *model.LocalModel) (*model.GlobalModel, SendStats, error) {
	return c.SendModelTimed(local, nil)
}

// SendModelTimed is SendModel with an optional per-phase metrics section:
// when phases is non-nil the upload uses the sectioned MsgLocalModelTimed
// frame, carrying the site's worker count and phase costs to the server's
// round report. Attempt number and accumulated backoff are filled in per
// attempt by the client.
//
// Version negotiation by fallback: a server that predates the sectioned
// frame rejects it by closing the connection without a reply. A timed
// attempt that dies with such a close (EOF or connection reset after a
// successful upload — not a timeout, dial failure or server-reported
// error) therefore triggers an immediate legacy retry: no backoff sleep,
// and without consuming a retry-budget attempt, so MaxAttempts keeps its
// meaning as the number of fault retries. Genuine faults on a timed
// attempt (timeouts, refused dials, MsgError replies) go through the
// normal retry policy and stay timed.
func (c *Client) SendModelTimed(local *model.LocalModel, phases *SitePhases) (*model.GlobalModel, SendStats, error) {
	var stats SendStats
	modelBytes, err := local.MarshalBinary()
	if err != nil {
		return nil, stats, err
	}
	budget := c.Retry.MaxAttempts
	if budget < 1 {
		budget = 1
	}
	timed := phases != nil && !c.DisableTimedUpload
	var lastErr error
	var totalBackoff time.Duration
	var nextBackoff time.Duration // slept before the upcoming attempt
	used := 0                     // retry budget consumed
	for {
		used++
		attempt := len(stats.Log) + 1
		payload := modelBytes
		if timed {
			p := *phases
			p.Attempt = attempt
			p.Backoff = totalBackoff
			payload = appendSitePhasesSection(append([]byte(nil), modelBytes...), p)
			if c.AppendSections != nil {
				payload = c.AppendSections(payload)
			}
		}
		global, as, err := c.exchangeOnce(payload, timed)
		as.Attempt = attempt
		as.Timed = timed
		as.Backoff = nextBackoff
		nextBackoff = 0
		stats.Attempts = attempt
		stats.BytesSent += as.BytesSent
		stats.BytesReceived += as.BytesReceived
		if err != nil {
			as.Err = err.Error()
		}
		stats.Log = append(stats.Log, as)
		if err == nil {
			return global, stats, nil
		}
		lastErr = err
		if timed && frameRejected(err) {
			// Negotiation fallback: the peer closed without replying,
			// which is how pre-section servers reject the timed frame.
			// Retry immediately without the metrics section and without
			// charging the retry budget.
			timed = false
			used--
			continue
		}
		if !Retryable(err) || used >= budget {
			break
		}
		delay := c.Retry.delay(used, c.jitterRand())
		if c.OnRetry != nil {
			c.OnRetry(attempt, err, delay)
		}
		time.Sleep(delay)
		totalBackoff += delay
		nextBackoff = delay
	}
	return nil, stats, fmt.Errorf("transport: send model (%d attempt(s)): %w", stats.Attempts, lastErr)
}

// frameRejected reports whether err looks like the peer dropping the
// connection without a reply — the way servers that predate
// MsgLocalModelTimed reject the unknown message type (they close the
// socket; they never answer). Timeouts, dial failures and server-reported
// MsgError replies are real faults, not frame rejections, and must go
// through the normal retry policy instead of a protocol downgrade.
func frameRejected(err error) bool {
	if err == nil || !Retryable(err) {
		return false
	}
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE)
}

// firstByteReader records when the first reply byte arrived, splitting the
// reply wait into "server is still working" and "bytes are flowing".
type firstByteReader struct {
	r     io.Reader
	first time.Time
}

func (f *firstByteReader) Read(p []byte) (int, error) {
	n, err := f.r.Read(p)
	if n > 0 && f.first.IsZero() {
		f.first = time.Now()
	}
	return n, err
}

// exchangeOnce performs a single connect–upload–download round trip and
// reports its per-phase timings.
func (c *Client) exchangeOnce(payload []byte, timed bool) (*model.GlobalModel, AttemptStats, error) {
	var as AttemptStats
	conn, err := c.dialAttempt(&as)
	if err != nil {
		return nil, as, err
	}
	defer conn.Close()
	msgOut := MsgLocalModel
	if timed {
		msgOut = MsgLocalModelTimed
	}
	global, err := c.uploadAndReceive(conn, msgOut, payload, &as)
	return global, as, err
}

// dialAttempt opens the attempt's connection, records the dial cost and
// arms the I/O deadline.
func (c *Client) dialAttempt(as *AttemptStats) (net.Conn, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	dialStart := time.Now()
	conn, err := c.dial()
	as.Dial = time.Since(dialStart)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(timeout))
	return conn, nil
}

// uploadAndReceive writes the model frame on an established connection and
// reads the server's reply, accumulating the attempt's wire and timing
// stats.
func (c *Client) uploadAndReceive(conn net.Conn, msgOut byte, payload []byte, as *AttemptStats) (*model.GlobalModel, error) {
	uploadStart := time.Now()
	sent, err := WriteFrame(conn, msgOut, payload)
	as.Upload += time.Since(uploadStart)
	as.BytesSent += sent
	if err != nil {
		return nil, err
	}
	waitStart := time.Now()
	fbr := &firstByteReader{r: conn}
	msgType, reply, received, err := ReadFrame(fbr)
	replyEnd := time.Now()
	if fbr.first.IsZero() {
		as.ServerWait += replyEnd.Sub(waitStart)
	} else {
		as.ServerWait += fbr.first.Sub(waitStart)
		as.Download += replyEnd.Sub(fbr.first)
	}
	as.BytesReceived += received
	if err != nil {
		return nil, err
	}
	switch msgType {
	case MsgGlobalModel:
		var global model.GlobalModel
		if err := global.UnmarshalBinary(reply); err != nil {
			// The payload passed the CRC, so this is a server-side
			// encoding problem a retry will reproduce.
			return nil, permanent(err)
		}
		if err := global.Validate(); err != nil {
			return nil, permanent(err)
		}
		return &global, nil
	case MsgError:
		return nil, permanent(fmt.Errorf("transport: server reported: %s", reply))
	default:
		return nil, permanent(fmt.Errorf("transport: unexpected message type 0x%02x", msgType))
	}
}

// Exchange performs the site side of one DBDC round without retry: connect
// to the server, upload the local model and wait for the global model. It
// returns the global model together with the payload bytes sent and
// received. Use a Client with a RetryPolicy for fault tolerance.
func Exchange(addr string, local *model.LocalModel, timeout time.Duration) (*model.GlobalModel, int, int, error) {
	c := &Client{Addr: addr, Timeout: timeout}
	global, stats, err := c.SendModel(local)
	return global, stats.BytesSent, stats.BytesReceived, err
}

// SiteReport is the outcome of RunSite.
type SiteReport struct {
	// Labels is the site's final labeling with global cluster ids.
	Labels cluster.Labeling
	// Stats summarises the relabeling changes.
	Stats dbdc.RelabelStats
	// Global is the received global model.
	Global *model.GlobalModel
	// BytesSent and BytesReceived are the wire costs of the round,
	// summed over all attempts.
	BytesSent     int
	BytesReceived int
	// Attempts is the number of connection attempts the upload needed.
	Attempts int
	// Phases is the client-measured per-phase cost breakdown of the
	// round: local clustering, condensation, upload (per attempt, with
	// backoff), server wait, download, relabel.
	Phases PhaseBreakdown
	// Negotiation describes the budget handshake of a budgeted round
	// (Config.RepBudget > 0): whether the server acked, the advertised
	// byte cap, and the budget the shipped model ended up with after any
	// cap-driven shrink. Zero value for unbudgeted rounds.
	Negotiation Negotiation
}

// RunSite executes the full site-side DBDC pipeline against a remote
// server: local clustering (with Config.SiteWorkers intra-site
// parallelism), model upload (with the default retry policy), global model
// download, relabeling.
func RunSite(addr, siteID string, pts []geom.Point, cfg dbdc.Config, timeout time.Duration) (*SiteReport, error) {
	return RunSiteClient(&Client{Addr: addr, Timeout: timeout, Retry: DefaultRetryPolicy()}, siteID, pts, cfg)
}

// RunSiteClient is RunSite with a caller-configured transport client
// (retry policy, dial function, jitter source). The local clustering runs
// with cfg.SiteWorkers parallel workers, and the phase costs — measured
// here and attached to the upload — surface both in the returned report
// and in the server's RoundReport.
func RunSiteClient(c *Client, siteID string, pts []geom.Point, cfg dbdc.Config) (*SiteReport, error) {
	outcome, err := dbdc.LocalStep(siteID, pts, cfg)
	if err != nil {
		return nil, err
	}
	phases := SitePhases{
		Workers:  outcome.Timings.Workers,
		Cluster:  outcome.Timings.Cluster,
		Condense: outcome.Timings.Condense,
	}
	// A budgeted site goes through the negotiating upload (handshake,
	// cap-driven shrink, budget accounting section); an unbudgeted one
	// takes the historical timed path so its wire bytes stay identical to
	// builds that predate the budget feature.
	var (
		global *model.GlobalModel
		stats  SendStats
		neg    Negotiation
	)
	if cfg.RepBudget > 0 {
		global, stats, neg, err = c.SendModelBudgeted(outcome, &phases)
	} else {
		global, stats, err = c.SendModelTimed(outcome.Model, &phases)
	}
	if err != nil {
		return nil, err
	}
	relabelStart := time.Now()
	labels, relabel, err := dbdc.RelabelSite(outcome, global)
	if err != nil {
		return nil, err
	}
	breakdown := PhaseBreakdown{
		Workers:  outcome.Timings.Workers,
		Cluster:  outcome.Timings.Cluster,
		Condense: outcome.Timings.Condense,
		Relabel:  time.Since(relabelStart),
		Attempts: stats.Log,
	}
	for _, a := range stats.Log {
		breakdown.Upload += a.Upload
		breakdown.ServerWait += a.ServerWait
		breakdown.Download += a.Download
		breakdown.Backoff += a.Backoff
	}
	return &SiteReport{
		Labels:        labels,
		Stats:         relabel,
		Global:        global,
		BytesSent:     stats.BytesSent,
		BytesReceived: stats.BytesReceived,
		Attempts:      stats.Attempts,
		Phases:        breakdown,
		Negotiation:   neg,
	}, nil
}
