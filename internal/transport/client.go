package transport

import (
	"fmt"
	"net"
	"time"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/model"
)

// Exchange performs the site side of one DBDC round: connect to the
// server, upload the local model and wait for the global model. It returns
// the global model together with the payload bytes sent and received.
func Exchange(addr string, local *model.LocalModel, timeout time.Duration) (*model.GlobalModel, int, int, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	payload, err := local.MarshalBinary()
	if err != nil {
		return nil, 0, 0, err
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	sent, err := WriteFrame(conn, MsgLocalModel, payload)
	if err != nil {
		return nil, sent, 0, err
	}
	msgType, reply, received, err := ReadFrame(conn)
	if err != nil {
		return nil, sent, 0, err
	}
	switch msgType {
	case MsgGlobalModel:
		var global model.GlobalModel
		if err := global.UnmarshalBinary(reply); err != nil {
			return nil, sent, received, err
		}
		if err := global.Validate(); err != nil {
			return nil, sent, received, err
		}
		return &global, sent, received, nil
	case MsgError:
		return nil, sent, received, fmt.Errorf("transport: server reported: %s", reply)
	default:
		return nil, sent, received, fmt.Errorf("transport: unexpected message type 0x%02x", msgType)
	}
}

// SiteReport is the outcome of RunSite.
type SiteReport struct {
	// Labels is the site's final labeling with global cluster ids.
	Labels cluster.Labeling
	// Stats summarises the relabeling changes.
	Stats dbdc.RelabelStats
	// Global is the received global model.
	Global *model.GlobalModel
	// BytesSent and BytesReceived are the wire costs of the round.
	BytesSent     int
	BytesReceived int
}

// RunSite executes the full site-side DBDC pipeline against a remote
// server: local clustering, model upload, global model download,
// relabeling.
func RunSite(addr, siteID string, pts []geom.Point, cfg dbdc.Config, timeout time.Duration) (*SiteReport, error) {
	outcome, err := dbdc.LocalStep(siteID, pts, cfg)
	if err != nil {
		return nil, err
	}
	global, sent, received, err := Exchange(addr, outcome.Model, timeout)
	if err != nil {
		return nil, err
	}
	labels, stats := dbdc.RelabelSite(outcome, global)
	return &SiteReport{
		Labels:        labels,
		Stats:         stats,
		Global:        global,
		BytesSent:     sent,
		BytesReceived: received,
	}, nil
}
