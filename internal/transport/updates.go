package transport

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/model"
)

// UpdateServer is the long-running variant of the DBDC server for
// incremental and streaming deployments: sites connect whenever their local
// clustering has changed considerably (cf. Section 4 of the paper and the
// incremental DBSCAN site mode) and upload either a full local model
// (MsgLocalModel / MsgLocalModelTimed — answered with the rebuilt global
// model) or a streaming delta (MsgModelDelta — folded into the per-site
// model table and answered with a MsgDeltaAck, with the global rebuild
// optionally debounced; see SetDebounce). Stale models of silent sites stay
// in effect — the server never has to wait for all sites.
//
// Global cluster ids are stable across rebuilds: every rebuilt model is
// relabeled by representative overlap against its predecessor
// (model.ClusterMatcher), so classify clients see coherent ids while the
// clustering churns underneath them.
type UpdateServer struct {
	cfg      dbdc.Config
	timeout  time.Duration
	ln       net.Listener
	debounce time.Duration

	bytesIn  atomic.Int64
	bytesOut atomic.Int64

	mu     sync.Mutex
	models map[string]*model.LocalModel
	folds  map[string]*model.DeltaFolder
	// streams retains the latest stream-progress section per streaming
	// site, informational.
	streams map[string]StreamStats
	global  *model.GlobalModel
	stable  *model.ClusterMatcher
	// version counts completed global rebuilds; the delta ack carries it.
	version uint64
	// dirty/rebuildPending/closed drive the debounced rebuild; rebuildErr
	// records the outcome of the last (possibly asynchronous) rebuild.
	dirty          bool
	rebuildPending bool
	closed         bool
	rebuildErr     error

	// onGlobal, when set, receives every rebuilt global model (see
	// SetOnGlobal).
	onGlobal func(*model.GlobalModel)
}

// SetOnGlobal registers a sink that receives every rebuilt global model,
// invoked under the store lock so sinks observe the rebuilds in exactly
// the order they happened (a model registry fed from here is therefore
// monotonically versioned). Keep the callback fast — it serializes with
// concurrent updates. Set it once, before Serve.
func (s *UpdateServer) SetOnGlobal(fn func(*model.GlobalModel)) { s.onGlobal = fn }

// SetDebounce sets the rebuild debounce for delta uploads: folds arriving
// within d of each other coalesce into one global rebuild, so a burst of
// streaming sites does not trigger a GlobalStep per delta. 0 (the default)
// rebuilds synchronously on every fold. Full-model uploads always rebuild
// synchronously — their reply is the rebuilt global model. Set it once,
// before Serve.
func (s *UpdateServer) SetDebounce(d time.Duration) { s.debounce = d }

// Version returns the number of completed global rebuilds.
func (s *UpdateServer) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// WaitVersion blocks until the rebuild counter reaches v or the timeout
// expires, reporting whether it did. Intended for tests and orderly
// shutdown around debounced rebuilds.
func (s *UpdateServer) WaitVersion(v uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if s.Version() >= v {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Flush forces a pending debounced rebuild to run now. It returns the
// rebuild error, or nil when nothing was pending.
func (s *UpdateServer) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.dirty || s.closed {
		return nil
	}
	s.dirty = false
	_, err := s.rebuildLocked()
	return err
}

// LastRebuildErr returns the error of the most recent global rebuild (nil
// after a successful one). Debounced rebuilds have no connection to report
// their failure to; this surfaces it.
func (s *UpdateServer) LastRebuildErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rebuildErr
}

// StreamInfo returns the latest stream-progress section the given site
// attached to a delta upload, if any.
func (s *UpdateServer) StreamInfo(siteID string) (StreamStats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.streams[siteID]
	return st, ok
}

// BytesIn returns the total frame bytes received from sites.
func (s *UpdateServer) BytesIn() int64 { return s.bytesIn.Load() }

// BytesOut returns the total frame bytes sent to sites.
func (s *UpdateServer) BytesOut() int64 { return s.bytesOut.Load() }

// NewUpdateServer listens on addr for model updates.
func NewUpdateServer(addr string, cfg dbdc.Config, timeout time.Duration) (*UpdateServer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	return &UpdateServer{
		cfg:     cfg,
		timeout: timeout,
		ln:      ln,
		models:  make(map[string]*model.LocalModel),
		folds:   make(map[string]*model.DeltaFolder),
		streams: make(map[string]StreamStats),
		stable:  model.NewClusterMatcher(),
	}, nil
}

// Addr returns the listen address.
func (s *UpdateServer) Addr() string { return s.ln.Addr().String() }

// Close stops accepting connections and cancels any pending debounced
// rebuild.
func (s *UpdateServer) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.ln.Close()
}

// Sites returns the ids of the sites whose models are currently retained,
// sorted.
func (s *UpdateServer) Sites() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.models))
	for id := range s.models {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Global returns the latest global model, or nil before the first update.
func (s *UpdateServer) Global() *model.GlobalModel {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.global
}

// Serve handles updates until the listener closes (use Close to stop) or
// maxUpdates updates have been processed (0 = unlimited). Each connection
// carries one update; connections are handled concurrently, the model
// store and global rebuild are serialized.
func (s *UpdateServer) Serve(maxUpdates int) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for done := 0; maxUpdates == 0 || done < maxUpdates; done++ {
		conn, err := s.ln.Accept()
		if err != nil {
			if maxUpdates == 0 {
				return nil // closed: normal shutdown
			}
			return fmt.Errorf("transport: accept: %w", err)
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			s.handleUpdate(conn)
		}(conn)
	}
	return nil
}

// handleUpdate processes one site connection: read the model, rebuild the
// global model, reply.
func (s *UpdateServer) handleUpdate(conn net.Conn) {
	conn.SetDeadline(time.Now().Add(s.timeout))
	msgType, payload, n, err := ReadFrame(conn)
	if err != nil {
		// A corrupt frame is a protocol-level failure the site can act
		// on (resend); tell it instead of silently hanging up. I/O
		// errors get no reply — the conn is gone anyway.
		if errors.Is(err, ErrChecksum) || errors.Is(err, ErrFrameTooLarge) || errors.Is(err, ErrFrameVersion) {
			s.reply(conn, MsgError, []byte(err.Error()))
		}
		return
	}
	s.bytesIn.Add(int64(n))
	switch msgType {
	case MsgLocalModel, MsgLocalModelTimed:
		s.handleFullModel(conn, msgType, payload)
	case MsgModelDelta:
		s.handleDelta(conn, payload)
	default:
		s.reply(conn, MsgError, []byte("expected local model"))
	}
}

// handleFullModel processes a full-model upload (legacy or timed frame):
// store, synchronous rebuild, global model reply.
func (s *UpdateServer) handleFullModel(conn net.Conn, msgType byte, payload []byte) {
	var m model.LocalModel
	if msgType == MsgLocalModelTimed {
		// The timed frame is the model followed by optional sections
		// (phase metrics etc.) — parsed for well-formedness, otherwise
		// ignored here: the update server has no round report to put
		// them in.
		consumed, err := m.UnmarshalBinaryPrefix(payload)
		if err != nil {
			s.reply(conn, MsgError, []byte(err.Error()))
			return
		}
		if _, _, _, err := parseSections(payload[consumed:]); err != nil {
			s.reply(conn, MsgError, []byte(err.Error()))
			return
		}
	} else if err := m.UnmarshalBinary(payload); err != nil {
		s.reply(conn, MsgError, []byte(err.Error()))
		return
	}
	if err := m.Validate(); err != nil {
		s.reply(conn, MsgError, []byte(err.Error()))
		return
	}
	global, err := s.storeAndRebuild(&m)
	if err != nil {
		s.reply(conn, MsgError, []byte(err.Error()))
		return
	}
	reply, err := global.MarshalBinary()
	if err != nil {
		s.reply(conn, MsgError, []byte(err.Error()))
		return
	}
	s.reply(conn, MsgGlobalModel, reply)
}

// handleDelta folds one streaming delta and acks it. The global rebuild is
// debounced (SetDebounce), so the ack does not wait for a GlobalStep.
func (s *UpdateServer) handleDelta(conn net.Conn, payload []byte) {
	var d model.LocalDelta
	consumed, err := d.UnmarshalBinaryPrefix(payload)
	if err != nil {
		s.reply(conn, MsgError, []byte(err.Error()))
		return
	}
	stats, _, err := parseStreamSections(payload[consumed:])
	if err != nil {
		s.reply(conn, MsgError, []byte(err.Error()))
		return
	}
	if err := d.Validate(); err != nil {
		s.reply(conn, MsgError, []byte(err.Error()))
		return
	}
	s.mu.Lock()
	f := s.folds[d.SiteID]
	if f == nil {
		f = model.NewDeltaFolder()
		s.folds[d.SiteID] = f
	}
	var ack DeltaAck
	if err := f.Apply(&d); err != nil {
		if !errors.Is(err, model.ErrDeltaBase) {
			s.mu.Unlock()
			s.reply(conn, MsgError, []byte(err.Error()))
			return
		}
		// Sequence mismatch: demand a snapshot. The folded state is
		// unchanged, so nothing to rebuild.
		ack = DeltaAck{Resync: true, Seq: f.Seq(), GlobalVersion: s.version}
	} else {
		s.models[d.SiteID] = f.Model()
		if stats != nil {
			s.streams[d.SiteID] = *stats
		}
		s.scheduleRebuildLocked()
		ack = DeltaAck{Seq: d.Seq, GlobalVersion: s.version}
	}
	s.mu.Unlock()
	s.reply(conn, MsgDeltaAck, encodeDeltaAck(ack))
}

// reply writes one frame and accounts the bytes.
func (s *UpdateServer) reply(conn net.Conn, msgType byte, payload []byte) {
	if n, err := WriteFrame(conn, msgType, payload); err == nil {
		s.bytesOut.Add(int64(n))
	}
}

// storeAndRebuild replaces the site's model and recomputes the global
// model from the newest model of every site. A full upload supersedes any
// folded delta state for the site: the folder is dropped, so a later delta
// from the same site gets a resync demand instead of applying against a
// stale base.
func (s *UpdateServer) storeAndRebuild(m *model.LocalModel) (*model.GlobalModel, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.models[m.SiteID] = m
	delete(s.folds, m.SiteID)
	return s.rebuildLocked()
}

// rebuildLocked recomputes the global model from the newest model of every
// site, relabels it for stable cluster ids and publishes it. Caller holds
// s.mu.
func (s *UpdateServer) rebuildLocked() (*model.GlobalModel, error) {
	ids := make([]string, 0, len(s.models))
	for id := range s.models {
		ids = append(ids, id)
	}
	sort.Strings(ids) // deterministic global clustering order
	all := make([]*model.LocalModel, 0, len(ids))
	for _, id := range ids {
		all = append(all, s.models[id])
	}
	global, err := dbdc.GlobalStep(all, s.cfg)
	if err != nil {
		s.rebuildErr = err
		return nil, err
	}
	if !global.Empty() {
		// An empty rebuild (all reps churned out mid-turn) keeps the
		// matcher's history so clusters reappearing next version can still
		// claim their ids.
		s.stable.RelabelGlobal(global)
	}
	s.global = global
	s.version++
	s.rebuildErr = nil
	if s.onGlobal != nil {
		// Under s.mu: sinks see rebuilds in rebuild order, which keeps a
		// registry fed from here strictly monotone.
		s.onGlobal(global)
	}
	return global, nil
}

// scheduleRebuildLocked requests a global rebuild after a delta fold. With
// no debounce it runs immediately; otherwise folds arriving within the
// debounce window coalesce into one rebuild. Caller holds s.mu.
func (s *UpdateServer) scheduleRebuildLocked() {
	if s.debounce <= 0 {
		s.rebuildLocked()
		return
	}
	s.dirty = true
	if s.rebuildPending || s.closed {
		return
	}
	s.rebuildPending = true
	time.AfterFunc(s.debounce, s.flushRebuild)
}

// flushRebuild is the debounce timer callback: run the coalesced rebuild if
// one is still wanted.
func (s *UpdateServer) flushRebuild() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rebuildPending = false
	if s.dirty && !s.closed {
		s.dirty = false
		s.rebuildLocked()
	}
}
