package transport

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/model"
)

// UpdateServer is the long-running variant of the DBDC server for
// incremental deployments: sites connect whenever their local clustering
// has changed considerably (cf. Section 4 of the paper and the incremental
// DBSCAN site mode), upload a fresh local model, and immediately receive a
// global model rebuilt from the newest model of every site seen so far.
// Stale models of silent sites stay in effect — the server never has to
// wait for all sites.
type UpdateServer struct {
	cfg     dbdc.Config
	timeout time.Duration
	ln      net.Listener

	bytesIn  atomic.Int64
	bytesOut atomic.Int64

	mu     sync.Mutex
	models map[string]*model.LocalModel
	global *model.GlobalModel

	// onGlobal, when set, receives every rebuilt global model (see
	// SetOnGlobal).
	onGlobal func(*model.GlobalModel)
}

// SetOnGlobal registers a sink that receives every rebuilt global model,
// invoked under the store lock so sinks observe the rebuilds in exactly
// the order they happened (a model registry fed from here is therefore
// monotonically versioned). Keep the callback fast — it serializes with
// concurrent updates. Set it once, before Serve.
func (s *UpdateServer) SetOnGlobal(fn func(*model.GlobalModel)) { s.onGlobal = fn }

// BytesIn returns the total frame bytes received from sites.
func (s *UpdateServer) BytesIn() int64 { return s.bytesIn.Load() }

// BytesOut returns the total frame bytes sent to sites.
func (s *UpdateServer) BytesOut() int64 { return s.bytesOut.Load() }

// NewUpdateServer listens on addr for model updates.
func NewUpdateServer(addr string, cfg dbdc.Config, timeout time.Duration) (*UpdateServer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	return &UpdateServer{
		cfg:     cfg,
		timeout: timeout,
		ln:      ln,
		models:  make(map[string]*model.LocalModel),
	}, nil
}

// Addr returns the listen address.
func (s *UpdateServer) Addr() string { return s.ln.Addr().String() }

// Close stops accepting connections.
func (s *UpdateServer) Close() error { return s.ln.Close() }

// Sites returns the ids of the sites whose models are currently retained,
// sorted.
func (s *UpdateServer) Sites() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.models))
	for id := range s.models {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Global returns the latest global model, or nil before the first update.
func (s *UpdateServer) Global() *model.GlobalModel {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.global
}

// Serve handles updates until the listener closes (use Close to stop) or
// maxUpdates updates have been processed (0 = unlimited). Each connection
// carries one update; connections are handled concurrently, the model
// store and global rebuild are serialized.
func (s *UpdateServer) Serve(maxUpdates int) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for done := 0; maxUpdates == 0 || done < maxUpdates; done++ {
		conn, err := s.ln.Accept()
		if err != nil {
			if maxUpdates == 0 {
				return nil // closed: normal shutdown
			}
			return fmt.Errorf("transport: accept: %w", err)
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			s.handleUpdate(conn)
		}(conn)
	}
	return nil
}

// handleUpdate processes one site connection: read the model, rebuild the
// global model, reply.
func (s *UpdateServer) handleUpdate(conn net.Conn) {
	conn.SetDeadline(time.Now().Add(s.timeout))
	msgType, payload, n, err := ReadFrame(conn)
	if err != nil {
		// A corrupt frame is a protocol-level failure the site can act
		// on (resend); tell it instead of silently hanging up. I/O
		// errors get no reply — the conn is gone anyway.
		if errors.Is(err, ErrChecksum) || errors.Is(err, ErrFrameTooLarge) || errors.Is(err, ErrFrameVersion) {
			s.reply(conn, MsgError, []byte(err.Error()))
		}
		return
	}
	s.bytesIn.Add(int64(n))
	if msgType != MsgLocalModel {
		s.reply(conn, MsgError, []byte("expected local model"))
		return
	}
	var m model.LocalModel
	if err := m.UnmarshalBinary(payload); err != nil {
		s.reply(conn, MsgError, []byte(err.Error()))
		return
	}
	if err := m.Validate(); err != nil {
		s.reply(conn, MsgError, []byte(err.Error()))
		return
	}
	global, err := s.storeAndRebuild(&m)
	if err != nil {
		s.reply(conn, MsgError, []byte(err.Error()))
		return
	}
	reply, err := global.MarshalBinary()
	if err != nil {
		s.reply(conn, MsgError, []byte(err.Error()))
		return
	}
	s.reply(conn, MsgGlobalModel, reply)
}

// reply writes one frame and accounts the bytes.
func (s *UpdateServer) reply(conn net.Conn, msgType byte, payload []byte) {
	if n, err := WriteFrame(conn, msgType, payload); err == nil {
		s.bytesOut.Add(int64(n))
	}
}

// storeAndRebuild replaces the site's model and recomputes the global
// model from the newest model of every site.
func (s *UpdateServer) storeAndRebuild(m *model.LocalModel) (*model.GlobalModel, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.models[m.SiteID] = m
	ids := make([]string, 0, len(s.models))
	for id := range s.models {
		ids = append(ids, id)
	}
	sort.Strings(ids) // deterministic global clustering order
	all := make([]*model.LocalModel, 0, len(ids))
	for _, id := range ids {
		all = append(all, s.models[id])
	}
	global, err := dbdc.GlobalStep(all, s.cfg)
	if err != nil {
		return nil, err
	}
	s.global = global
	if s.onGlobal != nil {
		// Under s.mu: sinks see rebuilds in rebuild order, which keeps a
		// registry fed from here strictly monotone.
		s.onGlobal(global)
	}
	return global, nil
}
