package optics

import (
	"fmt"
	"sort"

	"github.com/dbdc-go/dbdc/internal/cluster"
)

// ExtractHierarchy derives the DBSCAN clustering at every given cut in one
// pass over the ordering. The cuts are processed in the caller's order;
// the i-th labeling corresponds to cuts[i]. Because OPTICS orders objects
// once for all densities, this costs O(len(cuts)·n) — the property that
// makes OPTICS attractive for the DBDC server: the analyst sweeps
// Eps_global without ever re-clustering.
func (r *Result) ExtractHierarchy(cuts []float64) []cluster.Labeling {
	out := make([]cluster.Labeling, len(cuts))
	for i, c := range cuts {
		out[i] = r.ExtractDBSCAN(c)
	}
	return out
}

// SuggestCut proposes an extraction threshold from the reachability plot.
// The bulk of the reachability values are intra-cluster distances and the
// cluster-to-cluster jumps sit above them, but both populations spread, so
// neither a widest-gap rule (confused by spread-out jumps) nor an absolute
// outlier fence (confused by the intra tail) is reliable. The boundary has
// a distinctive scale-free signature instead: the largest RELATIVE gap
// between consecutive sorted values above the bulk (≥ Q3). The suggestion
// is the midpoint of that gap. A maximum ratio below 2 means one density
// level (no jumps); any cut slightly above the maximum then keeps
// everything connected. Undefined (infinite) reachabilities are ignored;
// an error is returned when fewer than minClusterSize+1 finite values
// exist.
//
// The heuristic targets the MOST PROMINENT density gap. Data with nested,
// multi-scale separations (a ring around a cluster next to a far-away
// cluster) has several valid cuts; the suggestion then resolves the
// dominant one and merges across the subtler ones. For such data inspect
// the reachability plot (viz.ReachabilityPlot) or sweep ExtractHierarchy
// instead of trusting a single suggestion.
func (r *Result) SuggestCut(minClusterSize int) (float64, error) {
	if minClusterSize < 1 {
		minClusterSize = 1
	}
	var vals []float64
	for _, e := range r.Order {
		if e.Reachability != Undefined {
			vals = append(vals, e.Reachability)
		}
	}
	if len(vals) <= minClusterSize {
		return 0, fmt.Errorf("optics: only %d finite reachabilities, need more than %d",
			len(vals), minClusterSize)
	}
	sort.Float64s(vals)
	q3 := vals[len(vals)*3/4]
	bestRatio, bestCut := 0.0, 0.0
	for i := minClusterSize; i < len(vals); i++ {
		lo, hi := vals[i-1], vals[i]
		if lo < q3 || lo <= 0 {
			continue
		}
		if ratio := hi / lo; ratio > bestRatio {
			bestRatio = ratio
			bestCut = lo + (hi-lo)/2
		}
	}
	// A ratio below 2 is indistinguishable from the tail of one density
	// level: cut just above everything instead of splitting the tail.
	if bestRatio < 2 {
		top := vals[len(vals)-1]
		if top == 0 {
			top = 1
		}
		return top * 1.05, nil
	}
	return bestCut, nil
}

