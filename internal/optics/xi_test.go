package optics

import (
	"math"
	"math/rand"
	"testing"

	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
)

// syntheticResult builds a Result with a hand-crafted reachability profile
// so the ξ-extraction can be unit-tested against known steep structure.
func syntheticResult(reach []float64, minPts int) *Result {
	r := &Result{Params: dbscan.Params{Eps: math.Inf(1), MinPts: minPts}}
	for i, v := range reach {
		r.Order = append(r.Order, Entry{Object: i, Reachability: v, CoreDist: v})
	}
	return r
}

func TestExtractXiValidation(t *testing.T) {
	r := syntheticResult([]float64{1, 1, 1}, 2)
	if _, err := r.ExtractXi(0, 2); err == nil {
		t.Error("xi=0 accepted")
	}
	if _, err := r.ExtractXi(1, 2); err == nil {
		t.Error("xi=1 accepted")
	}
	empty := syntheticResult(nil, 2)
	if got, err := empty.ExtractXi(0.05, 2); err != nil || len(got) != 0 {
		t.Errorf("empty: %v, %v", got, err)
	}
}

func TestExtractXiSingleValley(t *testing.T) {
	// One steep drop into a flat valley, one steep climb out.
	reach := []float64{math.Inf(1), 10, 1, 1, 1, 1, 1, 10, 10}
	r := syntheticResult(reach, 2)
	clusters, err := r.ExtractXi(0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) == 0 {
		t.Fatal("valley not found")
	}
	// The widest extracted cluster must cover the valley positions 2..6.
	best := clusters[0]
	for _, c := range clusters {
		if c.Len() > best.Len() {
			best = c
		}
	}
	if best.Start > 2 || best.End < 6 {
		t.Fatalf("valley cluster = %+v, want to span [2,6]", best)
	}
}

func TestExtractXiTwoValleys(t *testing.T) {
	reach := []float64{math.Inf(1), 8,
		1, 1, 1, 1, // valley 1
		8, 8,
		1, 1, 1, 1, // valley 2
		8, 8}
	r := syntheticResult(reach, 2)
	clusters, err := r.ExtractXi(0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Both valleys must be covered by some cluster. The hierarchy root
	// (everything at the top density level) is legitimate; what must NOT
	// appear is a proper sub-interval bridging the ridge at 6-7 without
	// being the root.
	covered1, covered2 := false, false
	for _, c := range clusters {
		if c.Start <= 2 && c.End >= 5 {
			covered1 = true
		}
		if c.Start <= 8 && c.End >= 11 {
			covered2 = true
		}
		if c.Start >= 1 && c.Start <= 3 && c.End >= 9 && c.End <= 12 {
			t.Fatalf("cluster %+v bridges the ridge", c)
		}
	}
	if !covered1 || !covered2 {
		t.Fatalf("valleys covered: %v, %v (clusters %+v)", covered1, covered2, clusters)
	}
}

func TestExtractXiNestedValleys(t *testing.T) {
	// A broad valley at level 3 containing a deeper sub-valley at level 1:
	// the hierarchy the single-cut extraction cannot express. The level-3
	// shoulders are wider than MinPts so the outer descent cannot swallow
	// the inner one (a ξ-steep area tolerates at most MinPts non-steep
	// interruptions).
	reach := []float64{math.Inf(1), 20,
		3, 3, 3, 3, 3,
		1, 1, 1, 1, // nested dense core
		3, 3, 3, 3, 3,
		20, 20}
	r := syntheticResult(reach, 2)
	clusters, err := r.ExtractXi(0.15, 3)
	if err != nil {
		t.Fatal(err)
	}
	var outer, inner *XiCluster
	for i := range clusters {
		c := &clusters[i]
		if c.Start <= 2 && c.End >= 15 {
			outer = c
		}
		if c.Start >= 6 && c.End <= 13 && c.Len() >= 4 && c.Len() <= 10 {
			inner = c
		}
	}
	if outer == nil {
		t.Fatalf("outer valley missing: %+v", clusters)
	}
	if inner == nil {
		t.Fatalf("nested valley missing: %+v", clusters)
	}
	if !outer.Contains(*inner) {
		t.Fatalf("hierarchy broken: outer %+v does not contain inner %+v", outer, inner)
	}
}

func TestExtractXiMinClusterSize(t *testing.T) {
	reach := []float64{math.Inf(1), 10, 1, 1, 10, 10}
	r := syntheticResult(reach, 2)
	clusters, err := r.ExtractXi(0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range clusters {
		if c.Len() < 5 {
			t.Fatalf("cluster %+v below min size", c)
		}
	}
}

func TestExtractXiFlatProfile(t *testing.T) {
	reach := []float64{math.Inf(1), 2, 2, 2, 2, 2}
	r := syntheticResult(reach, 2)
	clusters, err := r.ExtractXi(0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// One density level: at most the trivial "everything" interval may
	// appear; nothing may split the flat region.
	for _, c := range clusters {
		if c.Len() < 3 {
			t.Fatalf("flat profile produced fragment %+v", c)
		}
	}
}

// Integration: on two well-separated blobs the ξ-extraction finds two
// clusters that agree with the generating blobs.
func TestExtractXiOnRealData(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var pts []geom.Point
	for i := 0; i < 100; i++ {
		pts = append(pts, geom.Point{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3})
	}
	for i := 0; i < 100; i++ {
		pts = append(pts, geom.Point{15 + rng.NormFloat64()*0.3, rng.NormFloat64() * 0.3})
	}
	res, err := Run(linearOf(pts), dbscan.Params{Eps: 50, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	clusters, err := res.ExtractXi(0.3, 25)
	if err != nil {
		t.Fatal(err)
	}
	// Judge the coarsest informative density level: drop the hierarchy
	// root (which spans everything — real profiles always have one), then
	// keep the maximal intervals. Micro-fluctuation sub-clusters nest
	// inside and are filtered by TopLevel.
	var proper []XiCluster
	for _, c := range clusters {
		if c.Len() < len(res.Order)-5 {
			proper = append(proper, c)
		}
	}
	labels := res.XiLabels(TopLevel(proper))
	// Objects of each blob must share a label, and the blobs must differ.
	if labels[0] < 0 || labels[100] < 0 {
		t.Fatalf("blob members labelled noise: %v %v", labels[0], labels[100])
	}
	same1, same2 := 0, 0
	for i := 0; i < 100; i++ {
		if labels[i] == labels[0] {
			same1++
		}
		if labels[100+i] == labels[100] {
			same2++
		}
	}
	if same1 < 95 || same2 < 95 {
		t.Fatalf("blob cohesion: %d, %d of 100", same1, same2)
	}
	if labels[0] == labels[100] {
		t.Fatal("blobs merged by ξ-extraction")
	}
}

func TestXiLabelsNesting(t *testing.T) {
	reach := []float64{math.Inf(1), 20, 3, 3, 1, 1, 1, 3, 3, 20}
	r := syntheticResult(reach, 2)
	clusters := []XiCluster{{Start: 2, End: 8}, {Start: 4, End: 6}}
	labels := r.XiLabels(clusters)
	// Nested members carry the smaller cluster's id, outer members the
	// container's, everything else noise.
	if labels[4] == labels[2] {
		t.Fatal("nested positions not overwritten by the denser cluster")
	}
	if labels[0] >= 0 || labels[9] >= 0 {
		t.Fatal("positions outside every interval must be noise")
	}
	if labels[2] < 0 || labels[8] < 0 {
		t.Fatal("outer members lost")
	}
}
