package optics

import (
	"fmt"
	"math"
	"sort"

	"github.com/dbdc-go/dbdc/internal/cluster"
)

// XiCluster is one cluster found by the ξ-extraction: a contiguous interval
// of the cluster ordering. Clusters can nest; a contained interval is a
// denser sub-cluster of its container.
type XiCluster struct {
	// Start and End delimit the ordering positions of the cluster's
	// members, inclusive.
	Start, End int
}

// Len returns the number of ordering positions the cluster spans.
func (c XiCluster) Len() int { return c.End - c.Start + 1 }

// Contains reports whether c fully contains d.
func (c XiCluster) Contains(d XiCluster) bool { return c.Start <= d.Start && d.End <= c.End }

// ExtractXi performs the automatic, hierarchy-aware cluster extraction of
// the OPTICS paper (Ankerst et al. 1999, §4.3): instead of one global
// density threshold, clusters are the regions between a ξ-steep downward
// area (reachability falling by a factor ≥ 1−ξ per step, with at most
// MinPts weaker interludes) and a subsequent ξ-steep upward area. Nested
// intervals correspond to nested density levels, which a single
// ExtractDBSCAN cut cannot represent. minClusterSize discards intervals
// with fewer positions (the paper uses MinPts).
//
// Returned clusters are sorted by start position, then by decreasing
// length, so containers precede their nested sub-clusters.
func (r *Result) ExtractXi(xi float64, minClusterSize int) ([]XiCluster, error) {
	if xi <= 0 || xi >= 1 {
		return nil, fmt.Errorf("optics: xi must be in (0, 1), got %v", xi)
	}
	if minClusterSize < 2 {
		minClusterSize = 2
	}
	n := len(r.Order)
	if n == 0 {
		return nil, nil
	}
	// reach[i] is the reachability at ordering position i; position n acts
	// as a virtual terminator with infinite reachability so trailing
	// clusters close (the paper's convention).
	reach := make([]float64, n+1)
	for i, e := range r.Order {
		reach[i] = e.Reachability
	}
	reach[n] = math.Inf(1)

	downAt := func(i int) bool { return reach[i]*(1-xi) >= reach[i+1] }
	upAt := func(i int) bool { return reach[i] <= reach[i+1]*(1-xi) }

	type steepDown struct {
		start, end int
		mib        float64 // maximum in between since the area was found
	}
	var sdas []steepDown
	var clusters []XiCluster
	mib := 0.0
	index := 0
	maxPts := r.Params.MinPts

	// extendSteep walks a maximal ξ-steep area starting at index using the
	// given steepness predicate, tolerating up to MinPts consecutive
	// non-steep (but still monotone) positions.
	extendSteep := func(steep func(int) bool, monotone func(int) bool) int {
		end := index
		i := index + 1
		slack := 0
		for i < n {
			if steep(i) {
				end = i
				slack = 0
			} else if monotone(i) {
				slack++
				if slack > maxPts {
					break
				}
			} else {
				break
			}
			i++
		}
		return end
	}

	for index < n {
		mib = math.Max(mib, reach[index])
		switch {
		case downAt(index):
			// Update the mib values of the open steep-down areas and drop
			// those whose start can no longer combine with a future up
			// area (paper condition: start reachability * (1-xi) < mib).
			kept := sdas[:0]
			for _, d := range sdas {
				if reach[d.start]*(1-xi) >= mib {
					d.mib = math.Max(d.mib, mib)
					kept = append(kept, d)
				}
			}
			sdas = kept
			end := extendSteep(downAt, func(i int) bool { return reach[i] >= reach[i+1] })
			sdas = append(sdas, steepDown{start: index, end: end, mib: 0})
			index = end + 1
			mib = reach[index]
		case upAt(index):
			kept := sdas[:0]
			for _, d := range sdas {
				if reach[d.start]*(1-xi) >= mib {
					d.mib = math.Max(d.mib, mib)
					kept = append(kept, d)
				}
			}
			sdas = kept
			end := extendSteep(upAt, func(i int) bool { return reach[i] <= reach[i+1] })
			endReach := reach[end+1] // reachability after the up area
			for _, d := range sdas {
				// Combine conditions (paper 4.3): the up area must climb
				// back above the down area's interior maximum, and the
				// cluster borders are trimmed to comparable reachability.
				if endReach*(1-xi) < d.mib {
					continue
				}
				start, cEnd := d.start, end
				switch {
				case reach[d.start] > endReach:
					// Down edge starts higher: trim the left border to the
					// first position at or below the end reachability.
					for start < d.end && reach[start+1] > endReach {
						start++
					}
				case endReach > reach[d.start]:
					// Up edge ends higher: trim the right border.
					for cEnd > index && reach[cEnd] > reach[d.start] {
						cEnd--
					}
				}
				if cEnd-start+1 < minClusterSize {
					continue
				}
				clusters = append(clusters, XiCluster{Start: start, End: cEnd})
			}
			index = end + 1
			mib = reach[index]
		default:
			index++
		}
	}
	sort.Slice(clusters, func(a, b int) bool {
		if clusters[a].Start != clusters[b].Start {
			return clusters[a].Start < clusters[b].Start
		}
		return clusters[a].Len() > clusters[b].Len()
	})
	return clusters, nil
}

// XiLabels converts a set of ξ-clusters into a flat labeling by assigning
// every object to the SMALLEST (densest) cluster interval containing its
// ordering position; objects outside every interval are noise.
func (r *Result) XiLabels(clusters []XiCluster) cluster.Labeling {
	labels := cluster.NewLabeling(len(r.Order))
	for i := range labels {
		labels[i] = cluster.Noise
	}
	// Assign larger intervals first so smaller (nested) ones overwrite.
	ordered := append([]XiCluster(nil), clusters...)
	sort.Slice(ordered, func(a, b int) bool { return ordered[a].Len() > ordered[b].Len() })
	for id, c := range ordered {
		for pos := c.Start; pos <= c.End && pos < len(r.Order); pos++ {
			labels[r.Order[pos].Object] = cluster.ID(id)
		}
	}
	return labels
}

// TopLevel filters a ξ-extraction down to its maximal intervals: clusters
// contained in no other cluster. These correspond to the coarsest density
// level — the view comparable to a flat clustering.
func TopLevel(clusters []XiCluster) []XiCluster {
	var out []XiCluster
	for i, c := range clusters {
		contained := false
		for j, d := range clusters {
			if i != j && d.Contains(c) && d.Len() > c.Len() {
				contained = true
				break
			}
		}
		if !contained {
			out = append(out, c)
		}
	}
	return out
}
