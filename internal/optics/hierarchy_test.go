package optics

import (
	"math/rand"
	"testing"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
)

// Property: the extracted labelings are nested — every cluster at a
// smaller cut lies entirely inside one cluster of any larger cut.
func TestHierarchyNested(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randomClustered(rng, 4, 60)
	for i := 0; i < 40; i++ {
		pts = append(pts, geom.Point{rng.Float64() * 60, rng.Float64() * 60})
	}
	res, err := Run(linearOf(pts), dbscan.Params{Eps: 50, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	cuts := []float64{0.5, 1, 2, 4, 8, 16, 32}
	labelings := res.ExtractHierarchy(cuts)
	if len(labelings) != len(cuts) {
		t.Fatalf("got %d labelings", len(labelings))
	}
	for k := 1; k < len(cuts); k++ {
		small, large := labelings[k-1], labelings[k]
		// Map each small cluster to the large cluster of its first member;
		// all other members must agree.
		repOf := make(map[cluster.ID]cluster.ID)
		for i := range small {
			if small[i] < 0 {
				continue
			}
			if large[i] < 0 {
				t.Fatalf("object %d clustered at cut %v but noise at %v", i, cuts[k-1], cuts[k])
			}
			if want, ok := repOf[small[i]]; !ok {
				repOf[small[i]] = large[i]
			} else if large[i] != want {
				t.Fatalf("cluster at cut %v split across clusters at %v", cuts[k-1], cuts[k])
			}
		}
	}
}

func TestSuggestCutSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Three tight blobs far apart: intra reachabilities ≈ 0.1, inter ≈ 25.
	var pts []geom.Point
	for _, c := range []geom.Point{{0, 0}, {50, 0}, {0, 50}} {
		for i := 0; i < 80; i++ {
			pts = append(pts, geom.Point{c[0] + rng.NormFloat64()*0.3, c[1] + rng.NormFloat64()*0.3})
		}
	}
	res, err := Run(linearOf(pts), dbscan.Params{Eps: 100, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	cut, err := res.SuggestCut(5)
	if err != nil {
		t.Fatal(err)
	}
	if cut < 2 || cut > 49 {
		t.Fatalf("cut %v not inside the density gap", cut)
	}
	labels := res.ExtractDBSCAN(cut)
	if got := labels.NumClusters(); got != 3 {
		t.Fatalf("suggested cut finds %d clusters, want 3", got)
	}
	if labels.NumNoise() != 0 {
		t.Fatalf("suggested cut leaves %d noise", labels.NumNoise())
	}
}

func TestSuggestCutErrors(t *testing.T) {
	res, err := Run(linearOf([]geom.Point{{0, 0}, {100, 100}}), dbscan.Params{Eps: 1, MinPts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.SuggestCut(5); err == nil {
		t.Fatal("cut suggested without finite reachabilities")
	}
}

func TestSuggestCutUniformData(t *testing.T) {
	// A single tight blob: all reachabilities comparable; the suggestion
	// must still return something usable (one cluster).
	rng := rand.New(rand.NewSource(3))
	var pts []geom.Point
	for i := 0; i < 150; i++ {
		pts = append(pts, geom.Point{rng.NormFloat64(), rng.NormFloat64()})
	}
	res, err := Run(linearOf(pts), dbscan.Params{Eps: 50, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	cut, err := res.SuggestCut(5)
	if err != nil {
		t.Fatal(err)
	}
	labels := res.ExtractDBSCAN(cut)
	if labels.NumClusters() < 1 {
		t.Fatalf("no clusters at suggested cut %v", cut)
	}
}
