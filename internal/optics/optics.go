// Package optics implements OPTICS (Ankerst, Breunig, Kriegel, Sander —
// SIGMOD 1999). Section 6 of the DBDC paper discusses OPTICS as an
// alternative to DBSCAN for building the global model: one OPTICS run over
// the local representatives yields the clustering for every Eps_global ≤
// Eps at once, so the server can inspect the hierarchy without re-running
// the clustering. This package provides the cluster ordering, reachability
// plot and the ExtractDBSCAN procedure from the OPTICS paper.
package optics

import (
	"container/heap"
	"math"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
)

// Undefined marks an undefined reachability or core distance (no
// predecessor, or fewer than MinPts neighbors within the generating Eps).
var Undefined = math.Inf(1)

// Entry is one position of the cluster ordering.
type Entry struct {
	// Object is the object index.
	Object int
	// Reachability is the reachability distance at which the object was
	// reached; Undefined for the first object of each connected component.
	Reachability float64
	// CoreDist is the object's core distance, Undefined for non-core.
	CoreDist float64
}

// Result is the OPTICS cluster ordering with reachability information.
type Result struct {
	Params dbscan.Params
	// Order lists every object exactly once, in cluster order.
	Order []Entry
}

// Run computes the OPTICS ordering of the points held by idx with the
// generating parameters Eps and MinPts. Eps bounds the reachability values
// that can be resolved; MinPts controls the density estimate.
func Run(idx index.Index, params dbscan.Params) (*Result, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := idx.Len()
	metric := idx.Metric()
	res := &Result{Params: params, Order: make([]Entry, 0, n)}
	processed := make([]bool, n)
	reach := make([]float64, n)
	for i := range reach {
		reach[i] = Undefined
	}
	// coreDist returns the core distance of p given its neighborhood. The
	// distance buffer is reused across calls (kthSmallest may reorder it).
	var dists []float64
	coreDist := func(p int, neighbors []int) float64 {
		if len(neighbors) < params.MinPts {
			return Undefined
		}
		// The MinPts-smallest distance among the neighborhood (the
		// neighborhood includes p itself at distance zero).
		dists = dists[:0]
		for _, q := range neighbors {
			dists = append(dists, metric.Distance(idx.Point(p), idx.Point(q)))
		}
		return kthSmallest(dists, params.MinPts-1)
	}
	var seeds seedQueue
	// One reused neighborhood buffer: every neighbor list is fully consumed
	// (coreDist + update) before the next range query overwrites it.
	var nbuf []int
	for start := 0; start < n; start++ {
		if processed[start] {
			continue
		}
		// Expand a new connected component from start.
		processed[start] = true
		nbuf = index.RangeIntoID(idx, start, params.Eps, nbuf)
		cd := coreDist(start, nbuf)
		res.Order = append(res.Order, Entry{Object: start, Reachability: Undefined, CoreDist: cd})
		seeds = seeds[:0]
		if cd != Undefined {
			update(idx, metric, start, cd, nbuf, processed, reach, &seeds)
		}
		for seeds.Len() > 0 {
			q := heap.Pop(&seeds).(seedItem)
			if processed[q.object] {
				continue
			}
			processed[q.object] = true
			qNeighbors := index.RangeIntoID(idx, q.object, params.Eps, nbuf)
			nbuf = qNeighbors
			qcd := coreDist(q.object, qNeighbors)
			res.Order = append(res.Order, Entry{
				Object:       q.object,
				Reachability: reach[q.object],
				CoreDist:     qcd,
			})
			if qcd != Undefined {
				update(idx, metric, q.object, qcd, qNeighbors, processed, reach, &seeds)
			}
		}
	}
	return res, nil
}

// update relaxes the reachability of the unprocessed neighbors of the core
// object p and pushes them into the seed queue.
func update(idx index.Index, metric geom.Metric, p int, coreDist float64, neighbors []int, processed []bool, reach []float64, seeds *seedQueue) {
	for _, q := range neighbors {
		if processed[q] {
			continue
		}
		newReach := math.Max(coreDist, metric.Distance(idx.Point(p), idx.Point(q)))
		if newReach < reach[q] {
			reach[q] = newReach
			heap.Push(seeds, seedItem{object: q, reach: newReach})
		}
	}
}

// kthSmallest returns the k-th smallest value (0-based) of dists,
// rearranging the slice via quickselect.
func kthSmallest(dists []float64, k int) float64 {
	lo, hi := 0, len(dists)-1
	for lo < hi {
		pivot := dists[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for dists[i] < pivot {
				i++
			}
			for dists[j] > pivot {
				j--
			}
			if i <= j {
				dists[i], dists[j] = dists[j], dists[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return dists[k]
}

// seedItem is a priority-queue element ordered by reachability; stale
// entries (superseded by a smaller reachability) are skipped on pop via the
// processed check.
type seedItem struct {
	object int
	reach  float64
}

type seedQueue []seedItem

func (s seedQueue) Len() int { return len(s) }
func (s seedQueue) Less(i, j int) bool {
	if s[i].reach != s[j].reach {
		return s[i].reach < s[j].reach
	}
	return s[i].object < s[j].object
}
func (s seedQueue) Swap(i, j int)       { s[i], s[j] = s[j], s[i] }
func (s *seedQueue) Push(x interface{}) { *s = append(*s, x.(seedItem)) }
func (s *seedQueue) Pop() interface{} {
	old := *s
	n := len(old)
	x := old[n-1]
	*s = old[:n-1]
	return x
}

// ExtractDBSCAN derives the DBSCAN clustering for any epsPrime ≤ the
// generating Eps from the ordering, following the ExtractDBSCAN-Clustering
// procedure of the OPTICS paper. Objects whose reachability exceeds
// epsPrime start a new cluster if their core distance is within epsPrime,
// and are noise otherwise.
func (r *Result) ExtractDBSCAN(epsPrime float64) cluster.Labeling {
	labels := cluster.NewLabeling(len(r.Order))
	var current cluster.ID = -1
	var next cluster.ID
	for _, e := range r.Order {
		if e.Reachability > epsPrime {
			if e.CoreDist <= epsPrime {
				current = next
				next++
				labels[e.Object] = current
			} else {
				labels[e.Object] = cluster.Noise
			}
			continue
		}
		if current < 0 {
			// Reachable object before any cluster started (cannot happen in
			// a well-formed ordering, but stay safe).
			labels[e.Object] = cluster.Noise
			continue
		}
		labels[e.Object] = current
	}
	return labels
}

// Reachabilities returns the reachability plot values in cluster order,
// the visual artifact OPTICS is known for.
func (r *Result) Reachabilities() []float64 {
	out := make([]float64, len(r.Order))
	for i, e := range r.Order {
		out[i] = e.Reachability
	}
	return out
}
