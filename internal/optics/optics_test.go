package optics

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
)

func linearOf(pts []geom.Point) index.Index {
	return index.NewLinear(pts, geom.Euclidean{})
}

func randomClustered(rng *rand.Rand, blobs, perBlob int) []geom.Point {
	var pts []geom.Point
	for b := 0; b < blobs; b++ {
		cx, cy := rng.Float64()*50, rng.Float64()*50
		for i := 0; i < perBlob; i++ {
			pts = append(pts, geom.Point{cx + rng.NormFloat64()*0.5, cy + rng.NormFloat64()*0.5})
		}
	}
	return pts
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(linearOf(nil), dbscan.Params{Eps: 0, MinPts: 2}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestOrderingCoversAllObjectsOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randomClustered(rng, 3, 60)
	res, err := Run(linearOf(pts), dbscan.Params{Eps: 2, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != len(pts) {
		t.Fatalf("ordering has %d entries for %d objects", len(res.Order), len(pts))
	}
	seen := make([]bool, len(pts))
	for _, e := range res.Order {
		if seen[e.Object] {
			t.Fatalf("object %d ordered twice", e.Object)
		}
		seen[e.Object] = true
	}
}

func TestReachabilityValleys(t *testing.T) {
	// Two tight, well-separated blobs: the reachability plot must contain
	// exactly two "valleys" separated by a big jump (or an Undefined).
	rng := rand.New(rand.NewSource(2))
	var pts []geom.Point
	for i := 0; i < 80; i++ {
		pts = append(pts, geom.Point{rng.NormFloat64() * 0.2, rng.NormFloat64() * 0.2})
	}
	for i := 0; i < 80; i++ {
		pts = append(pts, geom.Point{30 + rng.NormFloat64()*0.2, rng.NormFloat64() * 0.2})
	}
	res, err := Run(linearOf(pts), dbscan.Params{Eps: 100, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	reach := res.Reachabilities()
	// Count positions where reachability jumps above 10 (the inter-blob
	// gap dominates the intra-blob distances ~0.2).
	jumps := 0
	for _, r := range reach {
		if r > 10 {
			jumps++
		}
	}
	// The first object has Undefined (> 10); the second blob is entered
	// through one more jump. Everything else must be small.
	if jumps != 2 {
		t.Fatalf("expected exactly 2 large reachabilities, got %d", jumps)
	}
}

// Property: ExtractDBSCAN(eps') produces the same core-object partition and
// noise set as a direct DBSCAN run with eps' (border objects may differ,
// which is inherent to both algorithms' order dependence).
func TestExtractDBSCANMatchesDBSCAN(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := geom.Euclidean{}
	for trial := 0; trial < 6; trial++ {
		pts := randomClustered(rng, 2+rng.Intn(3), 40+rng.Intn(40))
		// Add sprinkled noise.
		for i := 0; i < 20; i++ {
			pts = append(pts, geom.Point{rng.Float64() * 60, rng.Float64() * 60})
		}
		minPts := 4 + rng.Intn(3)
		epsGen := 3.0
		epsPrime := 0.8 + rng.Float64()
		opt, err := Run(linearOf(pts), dbscan.Params{Eps: epsGen, MinPts: minPts})
		if err != nil {
			t.Fatal(err)
		}
		extracted := opt.ExtractDBSCAN(epsPrime)
		direct, err := dbscan.Run(linearOf(pts), dbscan.Params{Eps: epsPrime, MinPts: minPts}, dbscan.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Compare on core objects of the direct run.
		var exCore, dirCore cluster.Labeling
		for i := range pts {
			if direct.Core[i] {
				exCore = append(exCore, extracted[i])
				dirCore = append(dirCore, direct.Labels[i])
			}
		}
		if !exCore.EquivalentTo(dirCore) {
			t.Fatalf("core partitions differ (minPts=%d epsPrime=%v)", minPts, epsPrime)
		}
		// Noise must agree exactly: noise objects have no core within eps'.
		for i := range pts {
			wantNoise := direct.Labels[i] == cluster.Noise
			gotNoise := extracted[i] == cluster.Noise
			if wantNoise != gotNoise {
				// A border object can be claimed by different clusters but
				// never flip between noise and cluster: check directly.
				hasCore := false
				for j := range pts {
					if direct.Core[j] && e.Distance(pts[i], pts[j]) <= epsPrime {
						hasCore = true
						break
					}
				}
				if hasCore == gotNoise {
					t.Fatalf("object %d: extracted noise=%v but has core in reach=%v",
						i, gotNoise, hasCore)
				}
			}
		}
	}
}

func TestExtractAtGeneratingEps(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randomClustered(rng, 3, 50)
	params := dbscan.Params{Eps: 1.5, MinPts: 5}
	opt, err := Run(linearOf(pts), params)
	if err != nil {
		t.Fatal(err)
	}
	extracted := opt.ExtractDBSCAN(params.Eps)
	direct, err := dbscan.Run(linearOf(pts), params, dbscan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if extracted.NumClusters() != direct.NumClusters() {
		t.Fatalf("cluster counts differ: %d vs %d", extracted.NumClusters(), direct.NumClusters())
	}
}

func TestHierarchyMonotonic(t *testing.T) {
	// Smaller eps' can only turn objects into noise or split clusters —
	// the number of noise objects is monotonically non-increasing in eps'.
	rng := rand.New(rand.NewSource(5))
	pts := randomClustered(rng, 3, 50)
	for i := 0; i < 30; i++ {
		pts = append(pts, geom.Point{rng.Float64() * 60, rng.Float64() * 60})
	}
	opt, err := Run(linearOf(pts), dbscan.Params{Eps: 10, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	cuts := []float64{0.3, 0.6, 1.0, 2.0, 4.0, 8.0}
	var noiseCounts []int
	for _, c := range cuts {
		noiseCounts = append(noiseCounts, opt.ExtractDBSCAN(c).NumNoise())
	}
	if !sort.SliceIsSorted(noiseCounts, func(i, j int) bool { return noiseCounts[i] > noiseCounts[j] }) {
		t.Fatalf("noise counts not non-increasing over eps cuts: %v", noiseCounts)
	}
}

func TestKthSmallest(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3}
	for k := 0; k < 5; k++ {
		cp := append([]float64(nil), vals...)
		if got := kthSmallest(cp, k); got != float64(k+1) {
			t.Fatalf("kthSmallest(%d) = %v, want %v", k, got, float64(k+1))
		}
	}
}

func TestEmptyInput(t *testing.T) {
	res, err := Run(linearOf(nil), dbscan.Params{Eps: 1, MinPts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 0 {
		t.Fatal("nonempty ordering for empty input")
	}
	if got := res.ExtractDBSCAN(0.5); len(got) != 0 {
		t.Fatal("nonempty labeling for empty input")
	}
}

func BenchmarkOPTICS(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomClustered(rng, 4, 500)
	idx, err := index.Build(index.KindKDTree, pts, geom.Euclidean{}, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(idx, dbscan.Params{Eps: 2, MinPts: 5}); err != nil {
			b.Fatal(err)
		}
	}
}
