package kmeans

import (
	"math"
	"math/rand"
	"testing"

	"github.com/dbdc-go/dbdc/internal/geom"
)

func blobs(rng *rand.Rand, centers []geom.Point, perBlob int, spread float64) []geom.Point {
	var pts []geom.Point
	for _, c := range centers {
		for i := 0; i < perBlob; i++ {
			p := make(geom.Point, len(c))
			for d := range p {
				p[d] = c[d] + rng.NormFloat64()*spread
			}
			pts = append(pts, p)
		}
	}
	return pts
}

func TestLloydValidation(t *testing.T) {
	pts := []geom.Point{{0, 0}, {1, 1}}
	if _, err := Lloyd(pts, nil, 10); err == nil {
		t.Error("no centroids accepted")
	}
	if _, err := Lloyd(pts, []geom.Point{{0, 0}, {1, 1}, {2, 2}}, 10); err == nil {
		t.Error("more centroids than points accepted")
	}
	if _, err := Lloyd(pts, []geom.Point{{0}}, 10); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestLloydTwoBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	centers := []geom.Point{{0, 0}, {10, 10}}
	pts := blobs(rng, centers, 100, 0.5)
	res, err := Lloyd(pts, []geom.Point{{1, 1}, {9, 9}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	for j, c := range centers {
		if (geom.Euclidean{}).Distance(res.Centroids[j], c) > 0.3 {
			t.Fatalf("centroid %d = %v, want near %v", j, res.Centroids[j], c)
		}
	}
	// Every point of blob 0 assigned to centroid 0.
	for i := 0; i < 100; i++ {
		if res.Assign[i] != 0 {
			t.Fatalf("point %d assigned to %d", i, res.Assign[i])
		}
	}
}

func TestLloydDoesNotMutateInitial(t *testing.T) {
	pts := []geom.Point{{0, 0}, {1, 0}, {4, 0}, {5, 0}}
	initial := []geom.Point{{0, 0}, {5, 0}}
	if _, err := Lloyd(pts, initial, 0); err != nil {
		t.Fatal(err)
	}
	if !initial[0].Equal(geom.Point{0, 0}) || !initial[1].Equal(geom.Point{5, 0}) {
		t.Fatal("Lloyd mutated the initial centroids")
	}
}

func TestLloydSSQNonIncreasing(t *testing.T) {
	// SSQ after convergence must not exceed SSQ of the initial assignment.
	rng := rand.New(rand.NewSource(2))
	pts := blobs(rng, []geom.Point{{0, 0}, {5, 5}, {0, 5}}, 60, 1.0)
	initial, err := PlusPlusInit(pts, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	// SSQ of the initial centroids with nearest assignment.
	var initialSSQ float64
	for _, p := range pts {
		best := math.Inf(1)
		for _, c := range initial {
			if d := geom.SquaredEuclidean(p, c); d < best {
				best = d
			}
		}
		initialSSQ += best
	}
	res, err := Lloyd(pts, initial, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.SSQ > initialSSQ+1e-9 {
		t.Fatalf("SSQ increased: %v -> %v", initialSSQ, res.SSQ)
	}
}

func TestSingleCluster(t *testing.T) {
	pts := []geom.Point{{0, 0}, {2, 0}, {1, 3}}
	res, err := Lloyd(pts, []geom.Point{{0, 0}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Centroids[0].Equal(geom.Point{1, 1}) {
		t.Fatalf("centroid = %v, want the mean (1,1)", res.Centroids[0])
	}
}

func TestEmptyClusterRepair(t *testing.T) {
	// Second centroid starts far away from all points and captures none; it
	// must be respawned rather than left dangling (or dividing by zero).
	pts := []geom.Point{{0, 0}, {0.1, 0}, {10, 0}, {10.1, 0}}
	res, err := Lloyd(pts, []geom.Point{{5, 0}, {1000, 1000}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j, c := range res.Centroids {
		if !c.IsFinite() {
			t.Fatalf("centroid %d not finite: %v", j, c)
		}
	}
	counts := make([]int, 2)
	for _, a := range res.Assign {
		counts[a]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("empty cluster survived: %v", counts)
	}
}

func TestPlusPlusInit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := blobs(rng, []geom.Point{{0, 0}, {20, 20}}, 50, 0.2)
	if _, err := PlusPlusInit(pts, 0, rng); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := PlusPlusInit(pts, 101, rng); err == nil {
		t.Error("k>n accepted")
	}
	// With two far blobs, k-means++ should almost surely pick one seed in
	// each blob.
	seeds, err := PlusPlusInit(pts, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	d := (geom.Euclidean{}).Distance(seeds[0], seeds[1])
	if d < 10 {
		t.Fatalf("++ seeds suspiciously close: %v", d)
	}
}

func TestPlusPlusAllDuplicates(t *testing.T) {
	pts := []geom.Point{{1, 1}, {1, 1}, {1, 1}}
	rng := rand.New(rand.NewSource(4))
	seeds, err := PlusPlusInit(pts, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 3 {
		t.Fatalf("got %d seeds", len(seeds))
	}
}

func TestRunBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := blobs(rng, []geom.Point{{0, 0}, {8, 0}, {4, 7}}, 80, 0.4)
	res, err := Run(pts, 3, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 3 {
		t.Fatalf("got %d centroids", len(res.Centroids))
	}
	// Each blob center should be near some centroid.
	for _, c := range []geom.Point{{0, 0}, {8, 0}, {4, 7}} {
		best := math.Inf(1)
		for _, got := range res.Centroids {
			if d := (geom.Euclidean{}).Distance(c, got); d < best {
				best = d
			}
		}
		if best > 1.0 {
			t.Fatalf("no centroid near blob center %v (best %v)", c, best)
		}
	}
}

// Property: at a converged solution every point sits with its nearest
// centroid and every centroid is the mean of its points.
func TestConvergenceFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		pts := blobs(rng, []geom.Point{{0, 0}, {6, 1}, {3, 6}}, 30+rng.Intn(30), 0.8)
		res, err := Run(pts, 3, rng, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			continue // budget exhausted; fixed point not guaranteed
		}
		for i, p := range pts {
			bestJ, best := -1, math.Inf(1)
			for j, c := range res.Centroids {
				if d := geom.SquaredEuclidean(p, c); d < best {
					bestJ, best = j, d
				}
			}
			have := geom.SquaredEuclidean(p, res.Centroids[res.Assign[i]])
			if have > best+1e-9 {
				t.Fatalf("point %d not with nearest centroid (%d vs %d)", i, res.Assign[i], bestJ)
			}
		}
		members := make(map[int][]geom.Point)
		for i, p := range pts {
			members[res.Assign[i]] = append(members[res.Assign[i]], p)
		}
		for j, c := range res.Centroids {
			if len(members[j]) == 0 {
				continue
			}
			mean := geom.Centroid(members[j])
			if (geom.Euclidean{}).Distance(mean, c) > 1e-9 {
				t.Fatalf("centroid %d is not the mean of its members", j)
			}
		}
	}
}

func BenchmarkLloyd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := blobs(rng, []geom.Point{{0, 0}, {10, 0}, {5, 8}}, 2000, 1.0)
	initial, _ := PlusPlusInit(pts, 3, rng)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Lloyd(pts, initial, 0); err != nil {
			b.Fatal(err)
		}
	}
}
