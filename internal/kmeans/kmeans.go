// Package kmeans implements Lloyd's algorithm. DBDC's REP_kMeans local model
// (Section 5.2 of the paper) reruns k-means inside every DBSCAN cluster,
// with k set to the number of specific core points and those points as the
// initial centroids; the resulting centroids replace the specific core
// points as representatives. The package also offers k-means++ seeding so
// plain k-means can serve as a standalone baseline.
package kmeans

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/dbdc-go/dbdc/internal/geom"
)

// DefaultMaxIterations bounds Lloyd's loop when the caller does not.
const DefaultMaxIterations = 100

// Result is the outcome of a k-means run.
type Result struct {
	// Centroids are the final cluster centers, len == k.
	Centroids []geom.Point
	// Assign maps each input point to the index of its centroid.
	Assign []int
	// Iterations is the number of Lloyd iterations executed.
	Iterations int
	// Converged reports whether the assignment reached a fixed point before
	// the iteration budget ran out.
	Converged bool
	// SSQ is the final summed squared distance of points to their centroids.
	SSQ float64
}

// Lloyd runs k-means from the given initial centroids until the assignment
// stabilises or maxIter iterations elapse (DefaultMaxIterations when
// maxIter <= 0). The initial centroids are cloned, never mutated. k-means
// optimises squared Euclidean distance; it requires a vector space, which is
// why the paper's REP_kMeans model — unlike REP_Scor — is restricted to
// vector data.
func Lloyd(pts []geom.Point, initial []geom.Point, maxIter int) (*Result, error) {
	k := len(initial)
	if k == 0 {
		return nil, fmt.Errorf("kmeans: no initial centroids")
	}
	if len(pts) < k {
		return nil, fmt.Errorf("kmeans: %d points for %d centroids", len(pts), k)
	}
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}
	centroids := make([]geom.Point, k)
	for i, c := range initial {
		if c.Dim() != pts[0].Dim() {
			return nil, fmt.Errorf("kmeans: centroid %d has dimension %d, points have %d",
				i, c.Dim(), pts[0].Dim())
		}
		centroids[i] = c.Clone()
	}
	assign := make([]int, len(pts))
	for i := range assign {
		assign[i] = -1
	}
	res := &Result{Centroids: centroids, Assign: assign}
	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		changed := assignStep(pts, centroids, assign)
		updateStep(pts, centroids, assign)
		if !changed {
			res.Converged = true
			break
		}
	}
	res.SSQ = ssq(pts, centroids, assign)
	return res, nil
}

// assignStep reassigns every point to its nearest centroid and reports
// whether any assignment changed.
func assignStep(pts []geom.Point, centroids []geom.Point, assign []int) bool {
	changed := false
	for i, p := range pts {
		best, bestDist := -1, math.Inf(1)
		for j, c := range centroids {
			if d := geom.SquaredEuclidean(p, c); d < bestDist {
				best, bestDist = j, d
			}
		}
		if assign[i] != best {
			assign[i] = best
			changed = true
		}
	}
	return changed
}

// updateStep moves every centroid to the mean of its assigned points. A
// centroid that lost all points is respawned on the point farthest from its
// current centroid, the standard empty-cluster repair.
func updateStep(pts []geom.Point, centroids []geom.Point, assign []int) {
	dim := pts[0].Dim()
	sums := make([]geom.Point, len(centroids))
	counts := make([]int, len(centroids))
	for j := range sums {
		sums[j] = make(geom.Point, dim)
	}
	for i, p := range pts {
		j := assign[i]
		counts[j]++
		for d := 0; d < dim; d++ {
			sums[j][d] += p[d]
		}
	}
	for j := range centroids {
		if counts[j] == 0 {
			centroids[j] = farthestPoint(pts, centroids, assign).Clone()
			continue
		}
		inv := 1 / float64(counts[j])
		for d := 0; d < dim; d++ {
			sums[j][d] *= inv
		}
		centroids[j] = sums[j]
	}
}

// farthestPoint returns the input point with the largest distance to its
// assigned centroid.
func farthestPoint(pts []geom.Point, centroids []geom.Point, assign []int) geom.Point {
	best, bestDist := 0, -1.0
	for i, p := range pts {
		if d := geom.SquaredEuclidean(p, centroids[assign[i]]); d > bestDist {
			best, bestDist = i, d
		}
	}
	return pts[best]
}

func ssq(pts []geom.Point, centroids []geom.Point, assign []int) float64 {
	var total float64
	for i, p := range pts {
		total += geom.SquaredEuclidean(p, centroids[assign[i]])
	}
	return total
}

// PlusPlusInit chooses k initial centroids with the k-means++ strategy:
// the first uniformly, each further one with probability proportional to
// the squared distance from the nearest centroid chosen so far.
func PlusPlusInit(pts []geom.Point, k int, rng *rand.Rand) ([]geom.Point, error) {
	if k <= 0 || k > len(pts) {
		return nil, fmt.Errorf("kmeans: k = %d with %d points", k, len(pts))
	}
	centroids := make([]geom.Point, 0, k)
	centroids = append(centroids, pts[rng.Intn(len(pts))].Clone())
	dists := make([]float64, len(pts))
	for len(centroids) < k {
		var total float64
		for i, p := range pts {
			d := math.Inf(1)
			for _, c := range centroids {
				if dd := geom.SquaredEuclidean(p, c); dd < d {
					d = dd
				}
			}
			dists[i] = d
			total += d
		}
		if total == 0 {
			// All remaining points coincide with centroids; pick any.
			centroids = append(centroids, pts[rng.Intn(len(pts))].Clone())
			continue
		}
		target := rng.Float64() * total
		var acc float64
		chosen := len(pts) - 1
		for i, d := range dists {
			acc += d
			if acc >= target {
				chosen = i
				break
			}
		}
		centroids = append(centroids, pts[chosen].Clone())
	}
	return centroids, nil
}

// Run is the standalone baseline: k-means++ seeding followed by Lloyd.
func Run(pts []geom.Point, k int, rng *rand.Rand, maxIter int) (*Result, error) {
	initial, err := PlusPlusInit(pts, k, rng)
	if err != nil {
		return nil, err
	}
	return Lloyd(pts, initial, maxIter)
}
