package incdbscan

import (
	"math/rand"
	"testing"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
)

// checkSurvivorsAgainstBatch compares the incremental state restricted to
// live objects against a batch DBSCAN run over exactly those objects.
func checkSurvivorsAgainstBatch(t *testing.T, c *Clusterer) {
	t.Helper()
	var pts []geom.Point
	var live []int
	for i := 0; i < c.Len(); i++ {
		if !c.IsDeleted(i) {
			pts = append(pts, c.Point(i))
			live = append(live, i)
		}
	}
	batch, err := dbscan.Run(index.NewLinear(pts, geom.Euclidean{}), c.Params(), dbscan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inc := c.Labels()
	var incCore, batchCore cluster.Labeling
	for k, i := range live {
		if c.IsCore(i) != batch.Core[k] {
			t.Fatalf("core flag of %d: inc=%v batch=%v", i, c.IsCore(i), batch.Core[k])
		}
		if (inc[i] == cluster.Noise) != (batch.Labels[k] == cluster.Noise) {
			t.Fatalf("noise status of %d: inc=%v batch=%v", i, inc[i], batch.Labels[k])
		}
		if batch.Core[k] {
			incCore = append(incCore, inc[i])
			batchCore = append(batchCore, batch.Labels[k])
		}
	}
	if !incCore.EquivalentTo(batchCore) {
		t.Fatalf("core partitions differ after deletions")
	}
	// Border objects must touch a core of their assigned cluster.
	e := geom.Euclidean{}
	for _, i := range live {
		if inc[i] >= 0 && !c.IsCore(i) {
			ok := false
			for _, j := range live {
				if c.IsCore(j) && inc[j] == inc[i] &&
					e.Distance(c.Point(i), c.Point(j)) <= c.Params().Eps {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("border object %d unreachable from its cluster", i)
			}
		}
	}
}

func TestDeleteValidation(t *testing.T) {
	c, _ := New(dbscan.Params{Eps: 1, MinPts: 2})
	if err := c.Delete(0); err == nil {
		t.Error("delete from empty accepted")
	}
	c.Insert(geom.Point{0, 0})
	if err := c.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(0); err == nil {
		t.Error("double delete accepted")
	}
	if !c.IsDeleted(0) {
		t.Error("IsDeleted(0) = false")
	}
	if c.LiveCount() != 0 {
		t.Errorf("LiveCount = %d", c.LiveCount())
	}
}

func TestDeleteDissolvesCluster(t *testing.T) {
	c, _ := New(dbscan.Params{Eps: 1, MinPts: 3})
	ids := make([]int, 0, 3)
	for _, p := range []geom.Point{{0, 0}, {0.5, 0}, {0.25, 0.4}} {
		i, err := c.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, i)
	}
	if c.Labels().NumClusters() != 1 {
		t.Fatal("setup failed")
	}
	if err := c.Delete(ids[1]); err != nil {
		t.Fatal(err)
	}
	labels := c.Labels()
	if labels.NumClusters() != 0 {
		t.Fatalf("cluster survived its dissolution: %v", labels)
	}
	if labels[ids[0]] != cluster.Noise || labels[ids[2]] != cluster.Noise {
		t.Fatalf("members not demoted to noise: %v", labels)
	}
}

func TestDeleteSplitsCluster(t *testing.T) {
	// Two dense clumps joined by a single bridge point: deleting the
	// bridge must split the cluster in two.
	c, _ := New(dbscan.Params{Eps: 1.1, MinPts: 3})
	left := []geom.Point{{0, 0}, {1, 0}, {0.5, 0.5}, {0.5, -0.5}}
	right := []geom.Point{{4, 0}, {5, 0}, {4.5, 0.5}, {4.5, -0.5}}
	var bridge int
	for _, p := range left {
		c.Insert(p)
	}
	for _, p := range right {
		c.Insert(p)
	}
	bridge, err := c.Insert(geom.Point{2.5, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	c.Insert(geom.Point{1.7, 0.1})
	c.Insert(geom.Point{3.3, 0.1})
	if got := c.Labels().NumClusters(); got != 1 {
		t.Fatalf("setup: want 1 bridged cluster, got %d", got)
	}
	if err := c.Delete(bridge); err != nil {
		t.Fatal(err)
	}
	if got := c.Labels().NumClusters(); got != 2 {
		t.Fatalf("after bridge deletion: want 2 clusters, got %d (%v)", got, c.Labels())
	}
	checkSurvivorsAgainstBatch(t, c)
}

func TestDeleteBorderKeepsCluster(t *testing.T) {
	c, _ := New(dbscan.Params{Eps: 1, MinPts: 4})
	for _, p := range []geom.Point{{0, 0}, {0.3, 0}, {0, 0.3}, {0.3, 0.3}} {
		c.Insert(p)
	}
	borderIdx, err := c.Insert(geom.Point{0.9, 0}) // border object
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(borderIdx); err != nil {
		t.Fatal(err)
	}
	if got := c.Labels().NumClusters(); got != 1 {
		t.Fatalf("border deletion broke the cluster: %d", got)
	}
	checkSurvivorsAgainstBatch(t, c)
}

// Property: random interleavings of insertions and deletions always match
// a batch run over the surviving objects.
func TestDeleteMatchesBatchOnRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 4; trial++ {
		params := dbscan.Params{Eps: 0.4 + rng.Float64()*0.4, MinPts: 3 + rng.Intn(3)}
		c, err := New(params)
		if err != nil {
			t.Fatal(err)
		}
		var liveIdx []int
		steps := 250 + rng.Intn(150)
		for s := 0; s < steps; s++ {
			if len(liveIdx) > 20 && rng.Float64() < 0.35 {
				k := rng.Intn(len(liveIdx))
				victim := liveIdx[k]
				liveIdx = append(liveIdx[:k], liveIdx[k+1:]...)
				if err := c.Delete(victim); err != nil {
					t.Fatal(err)
				}
			} else {
				var p geom.Point
				if rng.Float64() < 0.8 {
					cx := []geom.Point{{0, 0}, {2.5, 2.5}, {0, 3.5}}[rng.Intn(3)]
					p = geom.Point{cx[0] + rng.NormFloat64()*0.4, cx[1] + rng.NormFloat64()*0.4}
				} else {
					p = geom.Point{rng.Float64()*7 - 2, rng.Float64()*7 - 2}
				}
				idx, err := c.Insert(p)
				if err != nil {
					t.Fatal(err)
				}
				liveIdx = append(liveIdx, idx)
			}
			if (s+1)%60 == 0 || s == steps-1 {
				checkSurvivorsAgainstBatch(t, c)
			}
		}
	}
}

func TestInsertAfterDelete(t *testing.T) {
	c, _ := New(dbscan.Params{Eps: 1, MinPts: 3})
	var ids []int
	for _, p := range []geom.Point{{0, 0}, {0.5, 0}, {0.25, 0.4}} {
		i, _ := c.Insert(p)
		ids = append(ids, i)
	}
	c.Delete(ids[0])
	if c.Labels().NumClusters() != 0 {
		t.Fatal("cluster should have dissolved")
	}
	// Reinsert a point at the same place: the cluster must come back.
	if _, err := c.Insert(geom.Point{0, 0}); err != nil {
		t.Fatal(err)
	}
	if c.Labels().NumClusters() != 1 {
		t.Fatalf("cluster did not reform: %v", c.Labels())
	}
	checkSurvivorsAgainstBatch(t, c)
}
