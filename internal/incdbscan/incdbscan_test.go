package incdbscan

import (
	"math/rand"
	"testing"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
)

// checkAgainstBatch verifies that the incremental clustering over pts is
// equivalent to a batch DBSCAN run: identical core flags, identical
// partition of the core objects, identical noise set, and every border
// object within Eps of a core object of its assigned cluster. Border
// objects reachable from several clusters may be assigned differently —
// both algorithms are order-dependent there, exactly like the original
// DBSCAN publications state.
func checkAgainstBatch(t *testing.T, c *Clusterer, pts []geom.Point) {
	t.Helper()
	params := c.Params()
	batch, err := dbscan.Run(index.NewLinear(pts, geom.Euclidean{}), params, dbscan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inc := c.Labels()
	if err := inc.Validate(); err != nil {
		t.Fatal(err)
	}
	e := geom.Euclidean{}
	for i := range pts {
		if c.IsCore(i) != batch.Core[i] {
			t.Fatalf("core flag of %d: inc=%v batch=%v", i, c.IsCore(i), batch.Core[i])
		}
		if (inc[i] == cluster.Noise) != (batch.Labels[i] == cluster.Noise) {
			t.Fatalf("noise status of %d: inc=%v batch=%v", i, inc[i], batch.Labels[i])
		}
	}
	var incCore, batchCore cluster.Labeling
	for i := range pts {
		if batch.Core[i] {
			incCore = append(incCore, inc[i])
			batchCore = append(batchCore, batch.Labels[i])
		}
	}
	if !incCore.EquivalentTo(batchCore) {
		t.Fatalf("core partitions differ:\ninc:   %v\nbatch: %v",
			incCore.Canonicalize(), batchCore.Canonicalize())
	}
	for i := range pts {
		if inc[i] >= 0 && !c.IsCore(i) {
			ok := false
			for j := range pts {
				if c.IsCore(j) && inc[j] == inc[i] && e.Distance(pts[i], pts[j]) <= params.Eps {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("border object %d not reachable from its cluster", i)
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(dbscan.Params{Eps: 0, MinPts: 2}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestInsertValidation(t *testing.T) {
	c, _ := New(dbscan.Params{Eps: 1, MinPts: 2})
	if _, err := c.Insert(geom.Point{0, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(geom.Point{0, 0, 0}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestCreationCase(t *testing.T) {
	// Insertions that first leave isolated noise, then form a cluster.
	c, _ := New(dbscan.Params{Eps: 1, MinPts: 3})
	c.Insert(geom.Point{0, 0})
	c.Insert(geom.Point{0.5, 0})
	if got := c.Labels(); got[0] != cluster.Noise || got[1] != cluster.Noise {
		t.Fatalf("premature clustering: %v", got)
	}
	c.Insert(geom.Point{0.25, 0.25})
	got := c.Labels()
	if got.NumClusters() != 1 || got.NumNoise() != 0 {
		t.Fatalf("creation failed: %v", got)
	}
}

func TestAbsorptionCase(t *testing.T) {
	c, _ := New(dbscan.Params{Eps: 1, MinPts: 3})
	for _, p := range []geom.Point{{0, 0}, {0.5, 0}, {0.25, 0.25}} {
		c.Insert(p)
	}
	// New point near the existing cluster is absorbed.
	c.Insert(geom.Point{1.0, 0})
	got := c.Labels()
	if got.NumClusters() != 1 || got[3] == cluster.Noise {
		t.Fatalf("absorption failed: %v", got)
	}
}

func TestMergeCase(t *testing.T) {
	// Two separate clusters bridged by one inserted point.
	c, _ := New(dbscan.Params{Eps: 1.1, MinPts: 3})
	left := []geom.Point{{0, 0}, {1, 0}, {0.5, 0.5}}
	right := []geom.Point{{4, 0}, {5, 0}, {4.5, 0.5}}
	for _, p := range append(append([]geom.Point{}, left...), right...) {
		c.Insert(p)
	}
	if got := c.Labels(); got.NumClusters() != 2 {
		t.Fatalf("setup: want 2 clusters, got %v", got)
	}
	c.Insert(geom.Point{2.5, 0}) // bridges: within 1.1 of {1,0}? no: 1.5. Hmm.
	// Distance from bridge to nearest members is 1.5 > Eps, so this must
	// NOT merge.
	if got := c.Labels(); got.NumClusters() != 2 {
		t.Fatalf("non-bridge merged clusters: %v", got)
	}
	// A true bridge: two points connecting the chain.
	c.Insert(geom.Point{1.8, 0})
	c.Insert(geom.Point{3.2, 0})
	got := c.Labels()
	if got.NumClusters() != 1 {
		t.Fatalf("merge failed: %v (clusters=%d)", got, got.NumClusters())
	}
	checkAgainstBatch(t, c, []geom.Point{
		{0, 0}, {1, 0}, {0.5, 0.5}, {4, 0}, {5, 0}, {4.5, 0.5}, {2.5, 0}, {1.8, 0}, {3.2, 0},
	})
}

func TestNoiseToBorderUpgrade(t *testing.T) {
	c, _ := New(dbscan.Params{Eps: 1, MinPts: 4})
	// A point that starts as noise...
	c.Insert(geom.Point{0.9, 0})
	// ...then a dense cluster grows next to it.
	c.Insert(geom.Point{0, 0})
	c.Insert(geom.Point{0.1, 0})
	c.Insert(geom.Point{0, 0.1})
	c.Insert(geom.Point{0.1, 0.1})
	got := c.Labels()
	if got[0] == cluster.Noise {
		t.Fatalf("former noise not upgraded to border: %v", got)
	}
}

// Property: for random data inserted in random order, the incremental
// clustering matches batch DBSCAN at several checkpoints.
func TestMatchesBatchOnRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		params := dbscan.Params{Eps: 0.4 + rng.Float64()*0.4, MinPts: 3 + rng.Intn(3)}
		c, err := New(params)
		if err != nil {
			t.Fatal(err)
		}
		var pts []geom.Point
		n := 150 + rng.Intn(150)
		for i := 0; i < n; i++ {
			var p geom.Point
			if rng.Float64() < 0.8 {
				// Clustered around one of three centers.
				cx := []geom.Point{{0, 0}, {3, 3}, {0, 4}}[rng.Intn(3)]
				p = geom.Point{cx[0] + rng.NormFloat64()*0.4, cx[1] + rng.NormFloat64()*0.4}
			} else {
				p = geom.Point{rng.Float64()*8 - 2, rng.Float64()*8 - 2}
			}
			pts = append(pts, p)
			if _, err := c.Insert(p); err != nil {
				t.Fatal(err)
			}
			if (i+1)%50 == 0 || i == n-1 {
				checkAgainstBatch(t, c, pts)
			}
		}
	}
}

// Property: the final clustering does not depend on insertion order (on the
// core partition and noise set).
func TestOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	base := make([]geom.Point, 120)
	for i := range base {
		base[i] = geom.Point{rng.Float64() * 5, rng.Float64() * 5}
	}
	params := dbscan.Params{Eps: 0.5, MinPts: 4}
	var first cluster.Labeling
	var firstCore []bool
	for perm := 0; perm < 3; perm++ {
		order := rng.Perm(len(base))
		c, _ := New(params)
		posOf := make([]int, len(base)) // object index in c per base position
		for _, bi := range order {
			idx, err := c.Insert(base[bi])
			if err != nil {
				t.Fatal(err)
			}
			posOf[bi] = idx
		}
		labels := c.Labels()
		// Rearrange into base order for comparison.
		arranged := make(cluster.Labeling, len(base))
		core := make([]bool, len(base))
		for bi := range base {
			arranged[bi] = labels[posOf[bi]]
			core[bi] = c.IsCore(posOf[bi])
		}
		if perm == 0 {
			first, firstCore = arranged, core
			continue
		}
		for i := range base {
			if core[i] != firstCore[i] {
				t.Fatalf("perm %d: core flag of %d differs", perm, i)
			}
		}
		var a, b cluster.Labeling
		for i := range base {
			if core[i] {
				a = append(a, arranged[i])
				b = append(b, first[i])
			}
		}
		if !a.EquivalentTo(b) {
			t.Fatalf("perm %d: core partition depends on insertion order", perm)
		}
	}
}

func TestLabelsNeverExposeUnclassified(t *testing.T) {
	c, _ := New(dbscan.Params{Eps: 1, MinPts: 2})
	for i := 0; i < 20; i++ {
		c.Insert(geom.Point{float64(i) * 10, 0})
	}
	for i, l := range c.Labels() {
		if l != cluster.Noise && l < 0 {
			t.Fatalf("object %d exposed invalid label %d", i, l)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c, _ := New(dbscan.Params{Eps: 0.3, MinPts: 5})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Insert(geom.Point{rng.Float64() * 50, rng.Float64() * 50}); err != nil {
			b.Fatal(err)
		}
	}
}
