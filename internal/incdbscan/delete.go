package incdbscan

import (
	"fmt"

	"github.com/dbdc-go/dbdc/internal/cluster"
)

// Delete removes object i from the clustering and releases its slot for
// reuse by a later Insert (the deletion case of Ester
// et al. 1998). Removing an object can demote neighbors from core to
// non-core, which in turn can shrink, split or dissolve clusters. Only the
// clusters of the lost cores (and of i itself, when i was core) can
// change, so the update re-expands exactly those clusters:
//
//  1. update the cached neighborhood cardinalities and core flags,
//  2. reset the members of every affected cluster,
//  3. re-run the DBSCAN expansion over that subset (fresh cluster ids),
//  4. objects left unreached become border objects of a neighboring
//     unaffected cluster if one covers them, otherwise noise.
//
// A deleted object keeps its index until a later Insert recycles the slot;
// while vacant, Labels reports it as Noise and IsDeleted tells it apart
// from genuine noise.
func (c *Clusterer) Delete(i int) error {
	if i < 0 || i >= len(c.labels) {
		return fmt.Errorf("incdbscan: delete of unknown object %d", i)
	}
	if c.IsDeleted(i) {
		return fmt.Errorf("incdbscan: object %d already deleted", i)
	}
	p := c.tree.Point(i)
	c.scratch = c.tree.RangeAppend(p, c.params.Eps, c.scratch)
	neighbors := c.scratch // includes i, pre-deletion; consumed before reuse
	if err := c.tree.Delete(i); err != nil {
		return err
	}
	if c.deleted == nil {
		c.deleted = make([]bool, len(c.labels))
	}
	for len(c.deleted) < len(c.labels) {
		c.deleted = append(c.deleted, false)
	}
	c.deleted[i] = true
	c.free = append(c.free, i)
	c.live--

	affected := make(map[cluster.ID]bool)
	if c.core[i] {
		// Removing a core object can split its own cluster even when no
		// other object loses the core property.
		if id := c.find(c.labels[i]); id >= 0 {
			affected[id] = true
		}
	}
	c.core[i] = false
	for _, q := range neighbors {
		if q == i {
			continue
		}
		c.count[q]--
		if c.core[q] && c.count[q] == c.params.MinPts-1 {
			c.core[q] = false
			if id := c.find(c.labels[q]); id >= 0 {
				affected[id] = true
			}
		}
	}
	c.labels[i] = cluster.Noise
	if len(affected) == 0 {
		return nil
	}
	// Reset the members of the affected clusters.
	var members []int
	for j := range c.labels {
		if c.deleted[j] {
			continue
		}
		if id := c.find(c.labels[j]); id >= 0 && affected[id] {
			members = append(members, j)
			c.labels[j] = cluster.Unclassified
		}
	}
	// Re-expand from the surviving core objects of the subset. Cores of
	// unaffected clusters cannot be density-connected to these (otherwise
	// the clusters would have been one before the deletion), so the
	// expansion stays within the subset.
	var stack []int
	for _, j := range members {
		if c.labels[j] != cluster.Unclassified || !c.core[j] {
			continue
		}
		id := c.newClusterID()
		c.labels[j] = id
		stack = append(stack[:0], j)
		for len(stack) > 0 {
			q := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			c.scratch = c.tree.RangeAppend(c.tree.Point(q), c.params.Eps, c.scratch)
			for _, r := range c.scratch {
				if c.labels[r] != cluster.Unclassified {
					continue
				}
				c.labels[r] = id
				if c.core[r] {
					stack = append(stack, r)
				}
			}
		}
	}
	// Unreached members lost their own cluster; they become border objects
	// of any other cluster whose core still covers them, or noise.
	for _, j := range members {
		if c.labels[j] != cluster.Unclassified {
			continue
		}
		c.labels[j] = cluster.Noise
		c.scratch = c.tree.RangeAppend(c.tree.Point(j), c.params.Eps, c.scratch)
		for _, r := range c.scratch {
			if r != j && c.core[r] {
				c.labels[j] = c.find(c.labels[r])
				break
			}
		}
	}
	return nil
}

// IsDeleted reports whether object i was removed with Delete.
func (c *Clusterer) IsDeleted(i int) bool {
	return c.deleted != nil && i < len(c.deleted) && c.deleted[i]
}

// LiveCount returns the number of objects inserted and not deleted. It is
// O(1): Insert and Delete maintain the counter, instead of the former scan
// over the deleted marks on every call.
func (c *Clusterer) LiveCount() int { return c.live }
