// Package incdbscan provides incremental DBSCAN insertion after Ester,
// Kriegel, Sander, Wimmer and Xu (VLDB 1998). Section 4 of the DBDC paper
// lists the existence of this incremental version as one reason for
// choosing DBSCAN: a local site can keep its clustering up to date as new
// objects arrive and only ship a fresh local model to the server when the
// clustering has changed "considerably".
//
// The implementation maintains, per object, its cluster membership and core
// status, plus a union-find structure over cluster ids so that the merge
// case of an insertion is O(α(n)). Inserting object p can only change the
// membership of objects density-reachable from the objects that become core
// because of p, so the update touches one ε-neighborhood per new core
// object and nothing else.
package incdbscan

import (
	"fmt"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index/rstar"
)

// Clusterer is an incrementally maintained DBSCAN clustering. The zero
// value is not usable; construct with New.
type Clusterer struct {
	params dbscan.Params
	tree   *rstar.Tree
	// labels holds provisional cluster ids; resolve through the union-find
	// before exposing them.
	labels []cluster.ID
	core   []bool
	// count caches |N_Eps(p)| including p. It is maintained exactly because
	// inserting p increments the neighborhood cardinality of precisely the
	// members of N_Eps(p).
	count []int
	// parent is the union-find forest over cluster ids.
	parent []cluster.ID
	// deleted marks removed objects (lazily allocated by Delete).
	deleted []bool
	// free lists deleted slots available for reuse, most recent last.
	// Insert pops a slot from here before growing the per-object arrays, so
	// a steady-state sliding window (delete oldest, insert newest) keeps
	// bounded memory instead of growing O(total inserts).
	free []int
	// live counts objects inserted and not deleted, so LiveCount is O(1)
	// instead of a scan over deleted.
	live int
	// scratch is the reused ε-neighborhood buffer. Updates are inherently
	// sequential (the Clusterer is not safe for concurrent mutation), so a
	// single buffer serves every range query whose result is consumed
	// before the next query.
	scratch []int
}

// New returns an empty incremental clusterer.
func New(params dbscan.Params) (*Clusterer, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	tree, err := rstar.New(nil)
	if err != nil {
		return nil, err
	}
	return &Clusterer{params: params, tree: tree}, nil
}

// Len returns the number of inserted objects.
func (c *Clusterer) Len() int { return len(c.labels) }

// Point returns the i-th inserted object.
func (c *Clusterer) Point(i int) geom.Point { return c.tree.Point(i) }

// IsCore reports whether object i currently satisfies the core condition.
func (c *Clusterer) IsCore(i int) bool { return c.core[i] }

// Params returns the clustering parameters.
func (c *Clusterer) Params() dbscan.Params { return c.params }

// find resolves a provisional cluster id to its current root.
func (c *Clusterer) find(id cluster.ID) cluster.ID {
	if id < 0 {
		return id
	}
	root := id
	for c.parent[root] != root {
		root = c.parent[root]
	}
	for c.parent[id] != root { // path compression
		c.parent[id], id = root, c.parent[id]
	}
	return root
}

// union merges two cluster ids and returns the surviving root.
func (c *Clusterer) union(a, b cluster.ID) cluster.ID {
	ra, rb := c.find(a), c.find(b)
	if ra == rb {
		return ra
	}
	if ra > rb {
		ra, rb = rb, ra
	}
	c.parent[rb] = ra
	return ra
}

// newClusterID allocates a fresh provisional cluster id.
func (c *Clusterer) newClusterID() cluster.ID {
	id := cluster.ID(len(c.parent))
	c.parent = append(c.parent, id)
	return id
}

// parentSlack bounds how far the union-find forest may outgrow the object
// arrays before Insert compacts it. Every cluster creation — in Insert and
// in Delete's re-expansion — allocates a provisional id that is never
// freed, so under sustained churn parent would otherwise grow O(total
// operations) even with slot reuse.
const parentSlack = 64

// maybeCompact densely renumbers cluster ids when the union-find forest has
// grown well past the object count. All ids in labels are provisional and
// resolved through find before being exposed, and every consumer of the
// labeling is renaming-invariant, so rewriting each label to a dense root
// numbering is observationally safe.
func (c *Clusterer) maybeCompact() {
	if len(c.parent) <= 4*len(c.labels)+parentSlack {
		return
	}
	remap := make(map[cluster.ID]cluster.ID)
	for i, id := range c.labels {
		if id < 0 {
			continue
		}
		root := c.find(id)
		nid, ok := remap[root]
		if !ok {
			nid = cluster.ID(len(remap))
			remap[root] = nid
		}
		c.labels[i] = nid
	}
	c.parent = c.parent[:0]
	for i := range len(remap) {
		c.parent = append(c.parent, cluster.ID(i))
	}
}

// Insert adds an object and updates the clustering. It returns the object's
// index; indices of deleted objects are recycled, so an index uniquely
// names an object only for its lifetime. The cost is one ε-range query for
// the new object plus one per object that becomes core because of the
// insertion.
func (c *Clusterer) Insert(p geom.Point) (int, error) {
	c.maybeCompact()
	var idx int
	if n := len(c.free); n > 0 {
		// Recycle the most recently deleted slot: the per-object arrays and
		// the tree's point table stay bounded by the high-water mark of the
		// live set instead of growing with every insert.
		idx = c.free[n-1]
		if err := c.tree.ReplaceAt(idx, p); err != nil {
			return 0, err
		}
		c.free = c.free[:n-1]
		c.labels[idx] = cluster.Unclassified
		c.core[idx] = false
		c.count[idx] = 0
		c.deleted[idx] = false
	} else {
		if err := c.tree.Insert(p); err != nil {
			return 0, err
		}
		idx = len(c.labels)
		c.labels = append(c.labels, cluster.Unclassified)
		c.core = append(c.core, false)
		c.count = append(c.count, 0)
		if c.deleted != nil {
			c.deleted = append(c.deleted, false)
		}
	}
	c.live++
	c.scratch = c.tree.RangeAppend(p, c.params.Eps, c.scratch)
	neighbors := c.scratch // consumed before the next range query below
	c.count[idx] = len(neighbors)
	// Update cached neighborhood cardinalities and detect objects whose
	// core property flips — the seed set of the update.
	var newCores []int
	for _, q := range neighbors {
		if q == idx {
			continue
		}
		c.count[q]++
		if c.count[q] == c.params.MinPts {
			c.core[q] = true
			newCores = append(newCores, q)
		}
	}
	if c.count[idx] >= c.params.MinPts {
		c.core[idx] = true
		newCores = append(newCores, idx)
	}
	if len(newCores) == 0 {
		// Nothing became core: p is a border object of any neighboring
		// core's cluster, or noise.
		c.labels[idx] = cluster.Noise
		for _, q := range neighbors {
			if q != idx && c.core[q] {
				c.labels[idx] = c.find(c.labels[q])
				break
			}
		}
		return idx, nil
	}
	// Every new core object either extends the cluster it already belonged
	// to (absorption), bridges several clusters (merge), or starts a new
	// one (creation).
	for _, q := range newCores {
		if c.find(c.labels[q]) < 0 {
			c.labels[q] = c.newClusterID()
		}
	}
	for _, q := range newCores {
		qid := c.find(c.labels[q])
		// Reuses the scratch buffer: the insertion neighborhood above is
		// fully consumed before the first new-core expansion query.
		c.scratch = c.tree.RangeAppend(c.tree.Point(q), c.params.Eps, c.scratch)
		for _, r := range c.scratch {
			if r == q {
				continue
			}
			if c.core[r] {
				if rid := c.find(c.labels[r]); rid >= 0 {
					qid = c.union(qid, rid)
				} else {
					// A core object always carries a cluster id once
					// processed; this branch only guards bootstrap order.
					c.labels[r] = qid
				}
				continue
			}
			// Non-core neighbors of a core object are border objects; claim
			// the unlabelled ones. Border objects of other clusters keep
			// their assignment (border ambiguity, as in batch DBSCAN).
			if rid := c.find(c.labels[r]); rid < 0 {
				c.labels[r] = qid
			}
		}
	}
	// p itself lies within Eps of at least one new core object (an object
	// can only become core by gaining p in its neighborhood), so it was
	// labelled above unless it is a new core itself — both cases are
	// already handled; assert for safety.
	if c.find(c.labels[idx]) < 0 {
		return idx, fmt.Errorf("incdbscan: internal error: inserted object %d left unlabelled", idx)
	}
	return idx, nil
}

// Labels returns the current labeling with all provisional ids resolved.
func (c *Clusterer) Labels() cluster.Labeling {
	out := make(cluster.Labeling, len(c.labels))
	for i, id := range c.labels {
		r := c.find(id)
		if r == cluster.Unclassified {
			r = cluster.Noise // unreachable, but never expose Unclassified
		}
		out[i] = r
	}
	return out
}

// NumClusters returns the number of distinct clusters.
func (c *Clusterer) NumClusters() int { return c.Labels().NumClusters() }
