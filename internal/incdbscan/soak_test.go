package incdbscan

import (
	"math"
	"math/rand"
	"testing"

	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
)

// liveCountScan recomputes the live count the way the pre-counter LiveCount
// did, so the O(1) counter can be asserted against it.
func liveCountScan(c *Clusterer) int {
	n := 0
	for i := 0; i < c.Len(); i++ {
		if !c.IsDeleted(i) {
			n++
		}
	}
	return n
}

// drift emits a slowly moving pair of blobs plus uniform noise, so the soak
// exercises cluster growth, merges, splits and dissolution as the window
// slides.
func drift(rng *rand.Rand, step int) geom.Point {
	t := float64(step) / 300
	switch rng.Intn(10) {
	case 0, 1, 2, 3:
		return geom.Point{math.Cos(t) + rng.NormFloat64()*0.25, math.Sin(t) + rng.NormFloat64()*0.25}
	case 4, 5, 6, 7:
		return geom.Point{3 - math.Cos(t) + rng.NormFloat64()*0.25, rng.NormFloat64() * 0.25}
	default:
		return geom.Point{rng.Float64()*6 - 1.5, rng.Float64()*6 - 1.5}
	}
}

// TestSlidingWindowBoundedMemory is the churn soak: a sliding window of W
// objects processes 12×W inserts. With slot reuse the per-object arrays must
// stay bounded by the window size and the union-find forest by its
// compaction threshold — before the fix both grew with every operation.
func TestSlidingWindowBoundedMemory(t *testing.T) {
	const window = 150
	const total = 12 * window
	rng := rand.New(rand.NewSource(41))
	c, err := New(dbscan.Params{Eps: 0.45, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	var fifo []int
	for s := 0; s < total; s++ {
		if len(fifo) >= window {
			if err := c.Delete(fifo[0]); err != nil {
				t.Fatal(err)
			}
			fifo = fifo[1:]
		}
		idx, err := c.Insert(drift(rng, s))
		if err != nil {
			t.Fatal(err)
		}
		fifo = append(fifo, idx)

		if c.Len() > window {
			t.Fatalf("step %d: %d slots allocated for a %d-object window", s, c.Len(), window)
		}
		if got, want := c.LiveCount(), liveCountScan(c); got != want {
			t.Fatalf("step %d: LiveCount=%d, scan says %d", s, got, want)
		}
		if bound := 4*c.Len() + parentSlack + window; len(c.parent) > bound {
			t.Fatalf("step %d: union-find grew to %d ids (bound %d)", s, len(c.parent), bound)
		}
		if (s+1)%250 == 0 {
			checkSurvivorsAgainstBatch(t, c)
		}
	}
	if got := c.LiveCount(); got != window {
		t.Fatalf("steady state live count = %d, want %d", got, window)
	}
	checkSurvivorsAgainstBatch(t, c)
}

// TestInterleavedChurnMatchesBatch drives randomized interleaved inserts and
// deletes (not window-ordered: arbitrary victims) and checks every k
// operations that the incremental labels over the live subset are
// equivalent to a fresh batch dbscan.Run on exactly those objects.
func TestInterleavedChurnMatchesBatch(t *testing.T) {
	const k = 50
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 3; trial++ {
		params := dbscan.Params{Eps: 0.35 + rng.Float64()*0.3, MinPts: 3 + rng.Intn(3)}
		c, err := New(params)
		if err != nil {
			t.Fatal(err)
		}
		var live []int
		ops := 600
		for s := 0; s < ops; s++ {
			if len(live) > 15 && rng.Float64() < 0.45 {
				j := rng.Intn(len(live))
				victim := live[j]
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
				if err := c.Delete(victim); err != nil {
					t.Fatal(err)
				}
			} else {
				idx, err := c.Insert(drift(rng, s))
				if err != nil {
					t.Fatal(err)
				}
				live = append(live, idx)
			}
			if got, want := c.LiveCount(), liveCountScan(c); got != want {
				t.Fatalf("trial %d step %d: LiveCount=%d, scan says %d", trial, s, got, want)
			}
			if (s+1)%k == 0 {
				checkSurvivorsAgainstBatch(t, c)
			}
		}
		checkSurvivorsAgainstBatch(t, c)
	}
}

// TestSlotReuseRecyclesIndices pins the reuse contract: after a delete, the
// next insert takes over the freed slot instead of growing the arrays.
func TestSlotReuseRecyclesIndices(t *testing.T) {
	c, err := New(dbscan.Params{Eps: 1, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	var ids []int
	for _, p := range []geom.Point{{0, 0}, {0.5, 0}, {0.25, 0.4}, {5, 5}} {
		i, err := c.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, i)
	}
	if err := c.Delete(ids[1]); err != nil {
		t.Fatal(err)
	}
	got, err := c.Insert(geom.Point{0.5, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if got != ids[1] {
		t.Fatalf("insert after delete claimed slot %d, want recycled slot %d", got, ids[1])
	}
	if c.IsDeleted(got) {
		t.Fatal("recycled slot still marked deleted")
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d after reuse, want 4", c.Len())
	}
	if c.Labels().NumClusters() != 1 {
		t.Fatalf("cluster did not reform on the recycled slot: %v", c.Labels())
	}
	checkSurvivorsAgainstBatch(t, c)
}
