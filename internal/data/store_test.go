package data

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/dbdc-go/dbdc/internal/geom"
)

// TestAppendGeneratorsMatchSlice pins the promise in store.go: for the same
// seed, the store-filling generators draw from the RNG in exactly the same
// order as the slice generators and therefore produce coordinate-identical
// data. Exact float64 equality, not tolerance — the two paths must be
// interchangeable in experiments without perturbing a single label.
func TestAppendGeneratorsMatchSlice(t *testing.T) {
	const seed = 99
	check := func(name string, pts []geom.Point, st *geom.Store) {
		t.Helper()
		if st.Len() != len(pts) {
			t.Fatalf("%s: store holds %d points, slice %d", name, st.Len(), len(pts))
		}
		for i, p := range pts {
			row := st.Point(i)
			for d := range p {
				if p[d] != row[d] {
					t.Fatalf("%s: point %d coordinate %d: slice %v, store %v", name, i, d, p[d], row[d])
				}
			}
		}
	}

	center := geom.Point{3, -2, 7}
	pts := Blob(rand.New(rand.NewSource(seed)), center, 0.7, 257)
	st := geom.NewStore(3, 0)
	AppendBlob(st, rand.New(rand.NewSource(seed)), center, 0.7, 257)
	check("blob", pts, st)

	rect := geom.NewRect(geom.Point{-5, 0}, geom.Point{5, 12})
	pts = Uniform(rand.New(rand.NewSource(seed)), rect, 143)
	st = geom.NewStore(2, 0)
	AppendUniform(st, rand.New(rand.NewSource(seed)), rect, 143)
	check("uniform", pts, st)

	pts = Ring(rand.New(rand.NewSource(seed)), 4, -3, 6, 0.4, 211)
	st = geom.NewStore(2, 0)
	AppendRing(st, rand.New(rand.NewSource(seed)), 4, -3, 6, 0.4, 211)
	check("ring", pts, st)

	pts = Moons(rand.New(rand.NewSource(seed)), 120, 0.1)
	st = geom.NewStore(2, 0)
	AppendMoons(st, rand.New(rand.NewSource(seed)), 120, 0.1)
	check("moons", pts, st)
}

// TestDatasetPointsAliasStore: Dataset.Points are zero-copy views into
// Dataset.Store — same backing coordinates, not copies.
func TestDatasetPointsAliasStore(t *testing.T) {
	for _, ds := range ABC(5) {
		if ds.Store == nil {
			t.Fatalf("dataset %s has no store", ds.Name)
		}
		if ds.Store.Len() != len(ds.Points) {
			t.Fatalf("dataset %s: store %d points, slice %d", ds.Name, ds.Store.Len(), len(ds.Points))
		}
		if len(ds.Truth) != len(ds.Points) {
			t.Fatalf("dataset %s: %d truth labels for %d points", ds.Name, len(ds.Truth), len(ds.Points))
		}
		for _, i := range []int{0, len(ds.Points) / 2, len(ds.Points) - 1} {
			if &ds.Points[i][0] != &ds.Store.Point(i)[0] {
				t.Fatalf("dataset %s: Points[%d] does not alias Store.Point(%d)", ds.Name, i, i)
			}
		}
	}
}

// TestReadCSVStoreRoundTrip: WriteCSV → ReadCSVStore reproduces the points
// exactly in one flat store, and ReadCSV keeps returning views of it.
func TestReadCSVStoreRoundTrip(t *testing.T) {
	pts := Blob(rand.New(rand.NewSource(11)), geom.Point{1, 2}, 3, 50)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	st, err := ReadCSVStore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Dim() != 2 || st.Len() != len(pts) {
		t.Fatalf("store %dx%d, want %dx2", st.Len(), st.Dim(), len(pts))
	}
	for i, p := range pts {
		row := st.Point(i)
		if p[0] != row[0] || p[1] != row[1] {
			t.Fatalf("point %d: wrote %v, read %v", i, p, row)
		}
	}

	// Empty input: no stride to size a store with — nil store, nil error.
	st, err = ReadCSVStore(bytes.NewReader(nil))
	if err != nil || st != nil {
		t.Fatalf("empty input: store %v err %v, want nil nil", st, err)
	}
	if pts, err := ReadCSV(bytes.NewReader(nil)); err != nil || pts != nil {
		t.Fatalf("empty input via ReadCSV: %v, %v", pts, err)
	}
}
