package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/dbdc-go/dbdc/internal/geom"
)

// WriteCSV writes points as CSV rows of coordinates.
func WriteCSV(w io.Writer, pts []geom.Point) error {
	cw := csv.NewWriter(w)
	row := make([]string, 0, 8)
	for _, p := range pts {
		row = row[:0]
		for _, v := range p {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("data: writing csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses points from CSV rows of coordinates. Every row must have
// the same number of columns.
func ReadCSV(r io.Reader) ([]geom.Point, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	var pts []geom.Point
	dim := -1
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("data: reading csv: %w", err)
		}
		line++
		if dim == -1 {
			dim = len(rec)
			if dim == 0 {
				return nil, fmt.Errorf("data: csv line %d has no columns", line)
			}
		} else if len(rec) != dim {
			return nil, fmt.Errorf("data: csv line %d has %d columns, want %d", line, len(rec), dim)
		}
		p := make(geom.Point, dim)
		for i, field := range rec {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("data: csv line %d column %d: %w", line, i+1, err)
			}
			p[i] = v
		}
		if !p.IsFinite() {
			return nil, fmt.Errorf("data: csv line %d contains non-finite coordinates", line)
		}
		pts = append(pts, p)
	}
	return pts, nil
}
