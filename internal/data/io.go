package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/dbdc-go/dbdc/internal/geom"
)

// WriteCSV writes points as CSV rows of coordinates.
func WriteCSV(w io.Writer, pts []geom.Point) error {
	cw := csv.NewWriter(w)
	row := make([]string, 0, 8)
	for _, p := range pts {
		row = row[:0]
		for _, v := range p {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("data: writing csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSVStore parses points from CSV rows of coordinates straight into a
// flat geom.Store (stride = number of columns of the first row) — one
// backing array for the whole file instead of one allocation per row. Every
// row must have the same number of columns. A nil store (and nil error) is
// returned for empty input, which has no stride to size a store with.
func ReadCSVStore(r io.Reader) (*geom.Store, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	var st *geom.Store
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("data: reading csv: %w", err)
		}
		line++
		if st == nil {
			if len(rec) == 0 {
				return nil, fmt.Errorf("data: csv line %d has no columns", line)
			}
			st = geom.NewStore(len(rec), 64)
		} else if len(rec) != st.Dim() {
			return nil, fmt.Errorf("data: csv line %d has %d columns, want %d", line, len(rec), st.Dim())
		}
		p := st.AppendZero()
		for i, field := range rec {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("data: csv line %d column %d: %w", line, i+1, err)
			}
			p[i] = v
		}
		if !p.IsFinite() {
			return nil, fmt.Errorf("data: csv line %d contains non-finite coordinates", line)
		}
	}
	return st, nil
}

// ReadCSV parses points from CSV rows of coordinates. Every row must have
// the same number of columns. The points are zero-copy views into one flat
// backing store (see ReadCSVStore); use ReadCSVStore directly to keep the
// store for store-backed index builds.
func ReadCSV(r io.Reader) ([]geom.Point, error) {
	st, err := ReadCSVStore(r)
	if err != nil || st == nil {
		return nil, err
	}
	return st.Views(), nil
}
