package data

import (
	"math/rand"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
)

// Dataset couples a generated point set with the DBSCAN parameters suited
// to its density, the values every experiment of Section 9 needs.
type Dataset struct {
	Name string
	// Store holds the generated points in one flat stride-2 backing array —
	// the layout the store-backed indexes build from without copying.
	Store *geom.Store
	// Points are zero-copy views into Store (Store.Views()), kept for every
	// slice-shaped consumer: Points[i] aliases Store.Point(i).
	Points []geom.Point
	// Params are the Eps_local / MinPts settings used for both the central
	// reference clustering and the site-local clusterings.
	Params dbscan.Params
	// Truth is the generator's ground-truth labeling (cluster index per
	// point, Noise for background points). The paper's quality measures
	// compare against a central clustering, not the truth; the truth
	// enables the additional sanity columns of the extension tables.
	Truth cluster.Labeling
}

// DatasetASize is the cardinality of test data set A in the paper.
const DatasetASize = 8700

// DatasetA generates the analogue of test data set A ("randomly generated
// data/cluster"): cluster centers drawn at random over the domain, 95% of
// the points in Gaussian clusters, 5% background noise. n scales the
// cardinality for the sweeps of Figures 7 and 8; the geometry is fixed, so
// growing n grows the density, exactly like sampling the same distribution
// harder.
func DatasetA(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	const domain = 100.0
	// Scale the cluster count with the cardinality so the per-cluster
	// density — and with it the suitability of the fixed Eps — stays
	// comparable across the Figure 7 sweep from a few hundred to a hundred
	// thousand objects.
	numClusters := n / 500
	if numClusters < 3 {
		numClusters = 3
	}
	if numClusters > 10 {
		numClusters = 10
	}
	centers := make([]geom.Point, numClusters)
	for i := range centers {
		// Keep centers away from the border so clusters stay in-domain.
		centers[i] = geom.Point{5 + rng.Float64()*(domain-10), 5 + rng.Float64()*(domain-10)}
	}
	clustered := n * 95 / 100
	st := geom.NewStore(2, n)
	truth := make(cluster.Labeling, 0, n)
	for i := 0; i < clustered; i++ {
		c := centers[i%numClusters]
		st.AppendCoords(c[0]+rng.NormFloat64()*2, c[1]+rng.NormFloat64()*2)
		truth = append(truth, cluster.ID(i%numClusters))
	}
	AppendUniform(st, rng,
		geom.NewRect(geom.Point{0, 0}, geom.Point{domain, domain}), n-clustered)
	for len(truth) < st.Len() {
		truth = append(truth, cluster.Noise)
	}
	return Dataset{
		Name:   "A",
		Store:  st,
		Points: st.Views(),
		Params: dbscan.Params{Eps: 1.2, MinPts: 4},
		Truth:  truth,
	}
}

// DatasetBSize is the cardinality of test data set B in the paper.
const DatasetBSize = 4000

// DatasetB generates the analogue of test data set B ("very noisy data"):
// 4000 objects of which 40% are uniform background noise around a handful
// of loose clusters.
func DatasetB(seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	const domain = 60.0
	n := DatasetBSize
	noise := n * 40 / 100
	clustered := n - noise
	centers := []geom.Point{{12, 12}, {45, 15}, {30, 45}, {12, 48}, {50, 50}}
	st := geom.NewStore(2, n)
	truth := make(cluster.Labeling, 0, n)
	for i := 0; i < clustered; i++ {
		c := centers[i%len(centers)]
		st.AppendCoords(c[0]+rng.NormFloat64()*1.8, c[1]+rng.NormFloat64()*1.8)
		truth = append(truth, cluster.ID(i%len(centers)))
	}
	AppendUniform(st, rng,
		geom.NewRect(geom.Point{0, 0}, geom.Point{domain, domain}), noise)
	for len(truth) < st.Len() {
		truth = append(truth, cluster.Noise)
	}
	return Dataset{
		Name:   "B",
		Store:  st,
		Points: st.Views(),
		Params: dbscan.Params{Eps: 1.0, MinPts: 8},
		Truth:  truth,
	}
}

// DatasetCSize is the cardinality of test data set C in the paper.
const DatasetCSize = 1021

// DatasetC generates the analogue of test data set C: 1021 objects in 3
// well-separated clusters — one globular, plus a ring enclosing a second
// globular cluster. The concentric pair is DBSCAN's favourite shape
// demonstration and the configuration the paper's Section 4 argues k-means
// cannot capture (its convex cells can never separate a ring from the
// cluster it encloses). No background noise.
func DatasetC(seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	st := geom.NewStore(2, DatasetCSize)
	AppendBlob(st, rng, geom.Point{10, 10}, 1.2, 340)
	AppendBlob(st, rng, geom.Point{32, 28}, 0.6, 340)
	AppendRing(st, rng, 32, 28, 5, 0.25, DatasetCSize-680)
	truth := make(cluster.Labeling, DatasetCSize)
	for i := range truth {
		switch {
		case i < 340:
			truth[i] = 0
		case i < 680:
			truth[i] = 1
		default:
			truth[i] = 2
		}
	}
	return Dataset{
		Name:   "C",
		Store:  st,
		Points: st.Views(),
		Params: dbscan.Params{Eps: 1.0, MinPts: 4},
		Truth:  truth,
	}
}

// ABC returns the three evaluation data sets at their paper cardinalities.
func ABC(seed int64) []Dataset {
	return []Dataset{DatasetA(DatasetASize, seed), DatasetB(seed), DatasetC(seed)}
}
