// Package data synthesizes the evaluation data sets of the DBDC paper and
// provides the partitioners that distribute them over client sites. The
// paper's three 2-dimensional test sets are not published, so this package
// generates analogues matching their stated cardinalities and
// characteristics (Section 9, Figure 6): A — randomly generated clusters,
// 8700 objects by default and scalable for the cardinality sweeps; B —
// 4000 objects of very noisy data; C — 1021 objects in 3 clusters. All
// generators are deterministic given a seed.
package data

import (
	"math"
	"math/rand"

	"github.com/dbdc-go/dbdc/internal/geom"
)

// Blob appends n points drawn from an isotropic Gaussian around center with
// the given standard deviation.
func Blob(rng *rand.Rand, center geom.Point, stddev float64, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, len(center))
		for d := range p {
			p[d] = center[d] + rng.NormFloat64()*stddev
		}
		pts[i] = p
	}
	return pts
}

// Uniform returns n points distributed uniformly over the rectangle.
func Uniform(rng *rand.Rand, rect geom.Rect, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, rect.Dim())
		for d := range p {
			p[d] = rect.Min[d] + rng.Float64()*(rect.Max[d]-rect.Min[d])
		}
		pts[i] = p
	}
	return pts
}

// Ring returns n points on an annulus around (cx, cy) with the given mean
// radius and radial jitter — a non-globular shape k-means cannot capture
// but DBSCAN can (the paper's Section 4 motivation).
func Ring(rng *rand.Rand, cx, cy, radius, jitter float64, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		angle := rng.Float64() * 2 * math.Pi
		r := radius + rng.NormFloat64()*jitter
		pts[i] = geom.Point{cx + r*math.Cos(angle), cy + r*math.Sin(angle)}
	}
	return pts
}

// Moons returns two interleaving half-moons of n points each with Gaussian
// jitter, the classic non-convex clustering benchmark.
func Moons(rng *rand.Rand, n int, jitter float64) []geom.Point {
	pts := make([]geom.Point, 0, 2*n)
	for i := 0; i < n; i++ {
		a := math.Pi * rng.Float64()
		pts = append(pts, geom.Point{
			math.Cos(a) + rng.NormFloat64()*jitter,
			math.Sin(a) + rng.NormFloat64()*jitter,
		})
	}
	for i := 0; i < n; i++ {
		a := math.Pi * rng.Float64()
		pts = append(pts, geom.Point{
			1 - math.Cos(a) + rng.NormFloat64()*jitter,
			0.5 - math.Sin(a) + rng.NormFloat64()*jitter,
		})
	}
	return pts
}
