package data

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
	"github.com/dbdc-go/dbdc/internal/quality"
)

func TestBlob(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := Blob(rng, geom.Point{5, -3}, 0.5, 1000)
	if len(pts) != 1000 {
		t.Fatalf("len = %d", len(pts))
	}
	c := geom.Centroid(pts)
	if (geom.Euclidean{}).Distance(c, geom.Point{5, -3}) > 0.1 {
		t.Fatalf("centroid %v far from center", c)
	}
}

func TestUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rect := geom.NewRect(geom.Point{-1, 2}, geom.Point{3, 4})
	pts := Uniform(rng, rect, 500)
	for _, p := range pts {
		if !rect.Contains(p) {
			t.Fatalf("point %v outside rect", p)
		}
	}
}

func TestRing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := Ring(rng, 0, 0, 10, 0.2, 800)
	for _, p := range pts {
		r := p.Norm()
		if r < 8 || r > 12 {
			t.Fatalf("ring point at radius %v", r)
		}
	}
}

func TestMoons(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := Moons(rng, 300, 0.05)
	if len(pts) != 600 {
		t.Fatalf("len = %d", len(pts))
	}
	// DBSCAN with tight eps must separate the two moons.
	res, err := dbscan.Run(index.NewLinear(pts, geom.Euclidean{}),
		dbscan.Params{Eps: 0.2, MinPts: 5}, dbscan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 2 {
		t.Fatalf("moons clusters = %d, want 2", res.NumClusters())
	}
}

func TestDatasetCardinalities(t *testing.T) {
	if n := len(DatasetA(DatasetASize, 1).Points); n != 8700 {
		t.Errorf("A: %d points, want 8700", n)
	}
	if n := len(DatasetB(1).Points); n != 4000 {
		t.Errorf("B: %d points, want 4000", n)
	}
	if n := len(DatasetC(1).Points); n != 1021 {
		t.Errorf("C: %d points, want 1021", n)
	}
	if got := len(ABC(1)); got != 3 {
		t.Errorf("ABC returned %d datasets", got)
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	a1 := DatasetA(1000, 42)
	a2 := DatasetA(1000, 42)
	for i := range a1.Points {
		if !a1.Points[i].Equal(a2.Points[i]) {
			t.Fatal("DatasetA not deterministic")
		}
	}
	a3 := DatasetA(1000, 43)
	same := true
	for i := range a3.Points {
		if !a1.Points[i].Equal(a3.Points[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

// The data sets must reproduce their paper characteristics under their own
// parameters: A clusters with a little noise, B heavily noisy, C exactly 3
// clusters.
func TestDatasetCharacteristics(t *testing.T) {
	for _, ds := range ABC(7) {
		idx, err := index.Build(index.KindKDTree, ds.Points, geom.Euclidean{}, ds.Params.Eps)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dbscan.Run(idx, ds.Params, dbscan.Options{})
		if err != nil {
			t.Fatal(err)
		}
		noiseFrac := float64(res.Labels.NumNoise()) / float64(len(ds.Points))
		switch ds.Name {
		case "A":
			if res.NumClusters() < 5 || res.NumClusters() > 12 {
				t.Errorf("A: %d clusters", res.NumClusters())
			}
			if noiseFrac > 0.10 {
				t.Errorf("A: noise fraction %v too high", noiseFrac)
			}
		case "B":
			if res.NumClusters() < 3 || res.NumClusters() > 10 {
				t.Errorf("B: %d clusters", res.NumClusters())
			}
			if noiseFrac < 0.2 {
				t.Errorf("B: noise fraction %v — data not 'very noisy'", noiseFrac)
			}
		case "C":
			if res.NumClusters() != 3 {
				t.Errorf("C: %d clusters, want exactly 3", res.NumClusters())
			}
			if noiseFrac > 0.05 {
				t.Errorf("C: noise fraction %v too high", noiseFrac)
			}
		}
	}
}

func TestPartitionRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p, err := PartitionRandom(103, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(103); err != nil {
		t.Fatal(err)
	}
	for _, site := range p.Sites {
		if len(site) < 25 || len(site) > 26 {
			t.Fatalf("unbalanced site of %d objects", len(site))
		}
	}
	if _, err := PartitionRandom(10, 0, rng); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestPartitionRoundRobin(t *testing.T) {
	p, err := PartitionRoundRobin(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(10); err != nil {
		t.Fatal(err)
	}
	if p.Sites[0][1] != 3 {
		t.Fatalf("round robin layout wrong: %v", p.Sites)
	}
}

func TestPartitionSpatial(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := Blob(rng, geom.Point{0, 0}, 5, 400)
	p, err := PartitionSpatial(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(400); err != nil {
		t.Fatal(err)
	}
	// Sectors of an isotropic blob are roughly balanced.
	for _, site := range p.Sites {
		if len(site) < 50 {
			t.Fatalf("sector with only %d objects", len(site))
		}
	}
	// Every sector sees a different region: site centroids must differ.
	ext := p.Extract(pts)
	c0 := geom.Centroid(ext[0])
	c1 := geom.Centroid(ext[1])
	if (geom.Euclidean{}).Distance(c0, c1) < 1 {
		t.Fatal("spatial partition does not separate regions")
	}
	if _, err := PartitionSpatial([]geom.Point{{1}}, 2); err == nil {
		t.Error("1-d data accepted")
	}
}

func TestAssembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 57
	p, err := PartitionRandom(n, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Per-site values are the original indexes; assembling must recover
	// the identity.
	perSite := make([][]int, len(p.Sites))
	for s, site := range p.Sites {
		perSite[s] = append([]int(nil), site...)
	}
	out, err := Assemble(p, perSite, n)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("Assemble[%d] = %d", i, v)
		}
	}
	// Length mismatch must be rejected.
	perSite[0] = perSite[0][:1]
	if _, err := Assemble(p, perSite, n); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestPartitionValidateCatchesErrors(t *testing.T) {
	p := &Partition{Sites: [][]int{{0, 1}, {1}}}
	if err := p.Validate(3); err == nil {
		t.Error("duplicate assignment accepted")
	}
	p = &Partition{Sites: [][]int{{0, 5}}}
	if err := p.Validate(3); err == nil {
		t.Error("out-of-range index accepted")
	}
	p = &Partition{Sites: [][]int{{0}}}
	if err := p.Validate(3); err == nil {
		t.Error("missing objects accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	pts := []geom.Point{{1.5, -2.25}, {0, 3.125}, {1e-9, 12345.6789}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("got %d points", len(got))
	}
	for i := range pts {
		if !got[i].Equal(pts[i]) {
			t.Fatalf("point %d: %v != %v", i, got[i], pts[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"mixed columns": "1,2\n3\n",
		"non-numeric":   "1,abc\n",
		"nan":           "1,NaN\n",
	}
	for name, input := range cases {
		if _, err := ReadCSV(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if pts, err := ReadCSV(strings.NewReader("")); err != nil || len(pts) != 0 {
		t.Errorf("empty csv: %v, %v", pts, err)
	}
}

func TestDatasetAScalesDensity(t *testing.T) {
	// The Eps parameter must keep working across the Figure 7 cardinality
	// sweep: the small and large variants both produce clusters.
	for _, n := range []int{500, 8700, 25000} {
		ds := DatasetA(n, 3)
		idx, err := index.Build(index.KindKDTree, ds.Points, geom.Euclidean{}, ds.Params.Eps)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dbscan.Run(idx, ds.Params, dbscan.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.NumClusters() < 3 {
			t.Errorf("A(n=%d): only %d clusters", n, res.NumClusters())
		}
		frac := float64(res.Labels.NumNoise()) / float64(n)
		if frac > 0.25 {
			t.Errorf("A(n=%d): noise fraction %v", n, frac)
		}
	}
}

func TestRingNoNaN(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, p := range Ring(rng, 1, 1, 3, 0.1, 100) {
		if !p.IsFinite() {
			t.Fatalf("non-finite ring point %v", p)
		}
		if math.IsNaN(p[0]) {
			t.Fatal("nan")
		}
	}
}

func TestDatasetTruthConsistency(t *testing.T) {
	for _, ds := range ABC(5) {
		if len(ds.Truth) != len(ds.Points) {
			t.Fatalf("%s: truth has %d labels for %d points", ds.Name, len(ds.Truth), len(ds.Points))
		}
		if err := ds.Truth.Validate(); err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}
		switch ds.Name {
		case "A":
			if ds.Truth.NumClusters() != 10 || ds.Truth.NumNoise() != len(ds.Points)-len(ds.Points)*95/100 {
				t.Fatalf("A truth: clusters=%d noise=%d", ds.Truth.NumClusters(), ds.Truth.NumNoise())
			}
		case "B":
			if ds.Truth.NumClusters() != 5 {
				t.Fatalf("B truth clusters = %d", ds.Truth.NumClusters())
			}
		case "C":
			if ds.Truth.NumClusters() != 3 || ds.Truth.NumNoise() != 0 {
				t.Fatalf("C truth: clusters=%d noise=%d", ds.Truth.NumClusters(), ds.Truth.NumNoise())
			}
		}
	}
	// The central clustering under the suggested parameters must agree
	// strongly with the truth (the data sets are only useful if it does).
	ds := DatasetC(5)
	idx, err := index.Build(index.KindKDTree, ds.Points, geom.Euclidean{}, ds.Params.Eps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dbscan.Run(idx, ds.Params, dbscan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ari, err := quality.AdjustedRandIndex(res.Labels, ds.Truth)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.95 {
		t.Fatalf("C: central clustering vs truth ARI = %v", ari)
	}
}
