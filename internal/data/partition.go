package data

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/dbdc-go/dbdc/internal/geom"
)

// Partition assigns every object of a data set to a site: Sites[k] lists
// the original object indexes residing on site k. Keeping the original
// indexes lets the experiments reassemble a distributed labeling in data
// set order for comparison against the central reference clustering.
type Partition struct {
	Sites [][]int
}

// NumSites returns the number of sites.
func (p *Partition) NumSites() int { return len(p.Sites) }

// Validate checks that the partition covers 0..n-1 exactly once.
func (p *Partition) Validate(n int) error {
	seen := make([]bool, n)
	count := 0
	for s, site := range p.Sites {
		for _, i := range site {
			if i < 0 || i >= n {
				return fmt.Errorf("data: site %d references object %d of %d", s, i, n)
			}
			if seen[i] {
				return fmt.Errorf("data: object %d assigned twice", i)
			}
			seen[i] = true
			count++
		}
	}
	if count != n {
		return fmt.Errorf("data: partition covers %d of %d objects", count, n)
	}
	return nil
}

// Extract materialises the point slices per site.
func (p *Partition) Extract(pts []geom.Point) [][]geom.Point {
	out := make([][]geom.Point, len(p.Sites))
	for s, site := range p.Sites {
		out[s] = make([]geom.Point, len(site))
		for j, i := range site {
			out[s][j] = pts[i]
		}
	}
	return out
}

// Assemble reverses Extract for labelings: given per-site values produced
// in site order, it arranges them in original data set order. The type
// parameter keeps it usable for labels and per-object qualities alike.
func Assemble[T any](p *Partition, perSite [][]T, n int) ([]T, error) {
	out := make([]T, n)
	seen := 0
	for s, site := range p.Sites {
		if len(perSite[s]) != len(site) {
			return nil, fmt.Errorf("data: site %d has %d values for %d objects",
				s, len(perSite[s]), len(site))
		}
		for j, i := range site {
			out[i] = perSite[s][j]
			seen++
		}
	}
	if seen != n {
		return nil, fmt.Errorf("data: assembled %d of %d objects", seen, n)
	}
	return out, nil
}

// PartitionRandom distributes n objects over k sites uniformly at random
// with equal site sizes (±1) — the paper's "equally distributed the data
// set onto the different client sites".
func PartitionRandom(n, k int, rng *rand.Rand) (*Partition, error) {
	if k < 1 || n < 0 {
		return nil, fmt.Errorf("data: invalid partition n=%d k=%d", n, k)
	}
	perm := rng.Perm(n)
	sites := make([][]int, k)
	for j, i := range perm {
		s := j % k
		sites[s] = append(sites[s], i)
	}
	// Deterministic per-site ordering keeps experiments reproducible.
	for s := range sites {
		sort.Ints(sites[s])
	}
	return &Partition{Sites: sites}, nil
}

// PartitionRoundRobin deals objects to sites in index order, site k
// receiving objects k, k+numSites, ... With the block-interleaved layout of
// the generated data sets this spreads every cluster over every site.
func PartitionRoundRobin(n, k int) (*Partition, error) {
	if k < 1 || n < 0 {
		return nil, fmt.Errorf("data: invalid partition n=%d k=%d", n, k)
	}
	sites := make([][]int, k)
	for i := 0; i < n; i++ {
		sites[i%k] = append(sites[i%k], i)
	}
	return &Partition{Sites: sites}, nil
}

// PartitionSpatial splits the objects into k angular sectors around the
// data centroid — the adversarial layout where every site sees a different
// region of space, so no site can discover a whole cluster locally. Used to
// ablate DBDC's robustness against spatially skewed distributions.
func PartitionSpatial(pts []geom.Point, k int) (*Partition, error) {
	if k < 1 {
		return nil, fmt.Errorf("data: invalid site count %d", k)
	}
	if len(pts) == 0 {
		return &Partition{Sites: make([][]int, k)}, nil
	}
	if pts[0].Dim() < 2 {
		return nil, fmt.Errorf("data: spatial partition needs at least 2 dimensions")
	}
	c := geom.Centroid(pts)
	sites := make([][]int, k)
	for i, p := range pts {
		angle := math.Atan2(p[1]-c[1], p[0]-c[0]) + math.Pi // [0, 2π]
		s := int(angle / (2 * math.Pi) * float64(k))
		if s >= k {
			s = k - 1
		}
		sites[s] = append(sites[s], i)
	}
	return &Partition{Sites: sites}, nil
}
