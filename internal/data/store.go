package data

import (
	"math"
	"math/rand"

	"github.com/dbdc-go/dbdc/internal/geom"
)

// The Append* generators are the store-filling counterparts of Blob, Uniform,
// Ring and Moons: they draw from the RNG in exactly the same order (so a
// given seed produces coordinate-identical data either way — pinned by the
// differential tests in store_test.go) but write straight into the flat
// backing array of a geom.Store, one AppendCoords per point, instead of
// allocating a []float64 per point. Bulk generation is then one contiguous
// buffer fill, which is the layout every store-backed index builds from
// without re-copying.

// AppendBlob appends n points drawn from an isotropic Gaussian around center
// with the given standard deviation. The store's stride must match the
// center's dimensionality.
func AppendBlob(st *geom.Store, rng *rand.Rand, center geom.Point, stddev float64, n int) {
	st.Reserve(st.Len() + n)
	for i := 0; i < n; i++ {
		row := st.AppendZero()
		for d := range row {
			row[d] = center[d] + rng.NormFloat64()*stddev
		}
	}
}

// AppendUniform appends n points distributed uniformly over the rectangle.
func AppendUniform(st *geom.Store, rng *rand.Rand, rect geom.Rect, n int) {
	st.Reserve(st.Len() + n)
	for i := 0; i < n; i++ {
		row := st.AppendZero()
		for d := range row {
			row[d] = rect.Min[d] + rng.Float64()*(rect.Max[d]-rect.Min[d])
		}
	}
}

// AppendRing appends n points on an annulus around (cx, cy) with the given
// mean radius and radial jitter. The store's stride must be 2.
func AppendRing(st *geom.Store, rng *rand.Rand, cx, cy, radius, jitter float64, n int) {
	st.Reserve(st.Len() + n)
	for i := 0; i < n; i++ {
		angle := rng.Float64() * 2 * math.Pi
		r := radius + rng.NormFloat64()*jitter
		st.AppendCoords(cx+r*math.Cos(angle), cy+r*math.Sin(angle))
	}
}

// AppendMoons appends two interleaving half-moons of n points each with
// Gaussian jitter. The store's stride must be 2.
func AppendMoons(st *geom.Store, rng *rand.Rand, n int, jitter float64) {
	st.Reserve(st.Len() + 2*n)
	for i := 0; i < n; i++ {
		a := math.Pi * rng.Float64()
		st.AppendCoords(
			math.Cos(a)+rng.NormFloat64()*jitter,
			math.Sin(a)+rng.NormFloat64()*jitter,
		)
	}
	for i := 0; i < n; i++ {
		a := math.Pi * rng.Float64()
		st.AppendCoords(
			1-math.Cos(a)+rng.NormFloat64()*jitter,
			0.5-math.Sin(a)+rng.NormFloat64()*jitter,
		)
	}
}
