package experiments

import (
	"fmt"

	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/model"
)

// Fig10 reproduces the table of Figure 10: Q_DBDC dependent on the number
// of client sites for both local models and both object quality functions
// on data set A with Eps_global = 2·Eps_local, plus the share of local
// representatives (the paper reports 16-17%). Expected shape: P^I stays at
// 98-99 throughout (again showing its insensitivity); P^II is high with a
// mild decline as the site count grows.
func Fig10(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	ds := data.DatasetA(opt.scaled(data.DatasetASize), opt.Seed)
	central, _, err := runCentral(ds, opt)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig10",
		Title: "quality vs number of sites (dataset A, Eps_global = 2*Eps_local)",
		Columns: []string{"sites", "local repr.[%]",
			"P^I(kmeans)", "P^II(kmeans)", "P^I(scor)", "P^II(scor)"},
	}
	for _, sites := range []int{2, 4, 5, 8, 10, 14, 20} {
		row := []string{fmt.Sprintf("%d", sites)}
		var repPct string
		cells := map[model.Kind][2]string{}
		for _, kind := range []model.Kind{model.RepKMeans, model.RepScor} {
			res, err := runDBDC(ds, sites, kind, 2*ds.Params.Eps, opt)
			if err != nil {
				return nil, err
			}
			pi, pii, err := qualities(res.distributed, central.Labels, ds.Params.MinPts)
			if err != nil {
				return nil, err
			}
			cells[kind] = [2]string{pct(pi), pct(pii)}
			repPct = pct(res.repFraction) // same count for both models
		}
		row = append(row, repPct,
			cells[model.RepKMeans][0], cells[model.RepKMeans][1],
			cells[model.RepScor][0], cells[model.RepScor][1])
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("qp = MinPts = %d; paper reports repr. 16-17%%, P^I ~98-99 flat, P^II high and mildly declining", ds.Params.MinPts))
	return t, nil
}
