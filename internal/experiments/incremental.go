package experiments

import (
	"fmt"
	"math/rand"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/incdbscan"
	"github.com/dbdc-go/dbdc/internal/model"
)

// Incremental quantifies Section 4's motivation for building on DBSCAN:
// "only if the local clustering changes considerably, we have to transmit
// a new local model to the central site". Data streams into 4 sites over
// several epochs; a naive deployment re-uploads every model every epoch,
// the incremental deployment maintains its clustering with incremental
// DBSCAN and uploads only when the change metric (1 − P^II against the
// last transmitted snapshot) exceeds a threshold. The table reports
// uploads and bytes for both policies and the quality of the incremental
// deployment's final global model against the final central clustering.
// This is an extension table, not a paper figure.
func Incremental(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	const (
		sites     = 4
		epochs    = 6
		threshold = 0.15
	)
	ds := data.DatasetA(opt.scaled(data.DatasetASize), opt.Seed)
	rng := rand.New(rand.NewSource(opt.Seed + 2))
	part, err := data.PartitionRandom(len(ds.Points), sites, rng)
	if err != nil {
		return nil, err
	}
	sitePts := part.Extract(ds.Points)
	cfg := dbdc.Config{Local: ds.Params, Model: model.RepScor, Index: opt.Index}

	type siteState struct {
		inc      *incdbscan.Clusterer
		pts      []geom.Point
		snapshot cluster.Labeling
		model    *model.LocalModel
	}
	states := make([]*siteState, sites)
	for s := range states {
		inc, err := incdbscan.New(ds.Params)
		if err != nil {
			return nil, err
		}
		states[s] = &siteState{inc: inc}
	}
	t := &Table{
		ID:    "incremental",
		Title: "incremental model maintenance vs naive re-upload (dataset A streamed over epochs)",
		Columns: []string{"epoch", "uploads(incremental)", "uploads(naive)",
			"bytes(incremental)", "bytes(naive)"},
	}
	var totalIncBytes, totalNaiveBytes, totalIncUploads int
	// The stream front-loads: a large initial backfill, then a trickle —
	// the regime the retransmission policy exists for. Cumulative shares
	// of each site's data after each epoch:
	cumulative := []float64{0.40, 0.65, 0.80, 0.90, 0.96, 1.0}
	for epoch := 1; epoch <= epochs; epoch++ {
		for s, st := range states {
			all := sitePts[s]
			start := 0
			if epoch > 1 {
				start = int(cumulative[epoch-2] * float64(len(all)))
			}
			end := int(cumulative[epoch-1] * float64(len(all)))
			for _, p := range all[start:end] {
				if _, err := st.inc.Insert(p); err != nil {
					return nil, err
				}
				st.pts = append(st.pts, p)
			}
		}
		incUploads, naiveUploads := 0, 0
		incBytes, naiveBytes := 0, 0
		for s, st := range states {
			// Naive policy: always rebuild and upload.
			out, err := dbdc.LocalStep(fmt.Sprintf("site-%02d", s), st.pts, cfg)
			if err != nil {
				return nil, err
			}
			naiveUploads++
			naiveBytes += out.Model.EncodedSize()
			// Incremental policy: upload only on considerable change.
			needUpload := st.snapshot == nil
			if !needUpload {
				padded, err := dbdc.PadSnapshot(st.snapshot, st.inc.Len())
				if err != nil {
					return nil, err
				}
				change, err := dbdc.ClusteringChange(padded, st.inc.Labels())
				if err != nil {
					return nil, err
				}
				needUpload = change > threshold
			}
			if needUpload {
				st.snapshot = st.inc.Labels()
				st.model = out.Model
				incUploads++
				incBytes += out.Model.EncodedSize()
			}
		}
		totalIncBytes += incBytes
		totalNaiveBytes += naiveBytes
		totalIncUploads += incUploads
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", epoch),
			fmt.Sprintf("%d/%d", incUploads, sites),
			fmt.Sprintf("%d/%d", naiveUploads, sites),
			fmt.Sprintf("%d", incBytes),
			fmt.Sprintf("%d", naiveBytes),
		})
	}
	// Final quality of the incremental deployment (which may hold stale
	// models) against the final central clustering.
	var models []*model.LocalModel
	for _, st := range states {
		models = append(models, st.model)
	}
	cfgFinal := cfg
	cfgFinal.EpsGlobal = 2 * ds.Params.Eps
	global, err := dbdc.GlobalStep(models, cfgFinal)
	if err != nil {
		return nil, err
	}
	perSite := make([][]cluster.ID, sites)
	for s, st := range states {
		perSite[s], err = dbdc.Relabel(st.pts, global)
		if err != nil {
			return nil, err
		}
	}
	distributed, err := data.Assemble(part, perSite, len(ds.Points))
	if err != nil {
		return nil, err
	}
	central, _, err := runCentral(ds, opt)
	if err != nil {
		return nil, err
	}
	_, pii, err := qualities(distributed, central.Labels, ds.Params.MinPts)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("change threshold %.2f on 1-P^II vs the last transmitted snapshot", threshold),
		fmt.Sprintf("totals: %d uploads / %dB incremental vs %d / %dB naive (%.0f%% of the bytes)",
			totalIncUploads, totalIncBytes, epochs*sites, totalNaiveBytes,
			100*float64(totalIncBytes)/float64(totalNaiveBytes)),
		fmt.Sprintf("final quality with possibly stale models: P^II = %s vs final central clustering", pct(pii)))
	return t, nil
}
