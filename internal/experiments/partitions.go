package experiments

import (
	"fmt"
	"math/rand"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/model"
)

// Partitions ablates the data-to-site layout the paper holds fixed (its
// experiments distribute objects uniformly at random): random versus
// round-robin versus spatially skewed sectors, on data set A at 4 and 10
// sites. Random and round-robin give every site a thinned copy of every
// cluster; the spatial layout gives each site a different region, so local
// clusterings are dense but partial and the representative/ε-range
// mechanism has to stitch region-spanning clusters back together. This is
// an extension table, not a paper figure.
func Partitions(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	ds := data.DatasetA(opt.scaled(data.DatasetASize), opt.Seed)
	central, _, err := runCentral(ds, opt)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "partitions",
		Title:   "quality vs data-to-site layout (dataset A)",
		Columns: []string{"layout", "sites", "repr.[%]", "P^I", "P^II"},
	}
	type layout struct {
		name string
		make func(k int) (*data.Partition, error)
	}
	layouts := []layout{
		{"random", func(k int) (*data.Partition, error) {
			return data.PartitionRandom(len(ds.Points), k, rand.New(rand.NewSource(opt.Seed+1)))
		}},
		{"round-robin", func(k int) (*data.Partition, error) {
			return data.PartitionRoundRobin(len(ds.Points), k)
		}},
		{"spatial", func(k int) (*data.Partition, error) {
			return data.PartitionSpatial(ds.Points, k)
		}},
	}
	for _, l := range layouts {
		for _, k := range []int{4, 10} {
			part, err := l.make(k)
			if err != nil {
				return nil, err
			}
			res, err := runPartitioned(ds, part, opt)
			if err != nil {
				return nil, err
			}
			pi, pii, err := qualities(res.distributed, central.Labels, ds.Params.MinPts)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				l.name,
				fmt.Sprintf("%d", k),
				pct(res.repFraction),
				pct(pi),
				pct(pii),
			})
		}
	}
	t.Notes = append(t.Notes,
		"REP_Scor, Eps_global = 2*Eps_local",
		"spatial sectors concentrate each cluster on few sites: fewer representatives, typically higher quality — density survives the split")
	return t, nil
}

// runPartitioned is runDBDC with an explicit partition.
func runPartitioned(ds data.Dataset, part *data.Partition, opt Options) (*pipelineResult, error) {
	sitePts := part.Extract(ds.Points)
	sites := make([]dbdc.Site, len(sitePts))
	for s := range sites {
		sites[s] = dbdc.Site{ID: fmt.Sprintf("site-%02d", s), Points: sitePts[s]}
	}
	cfg := dbdc.Config{
		Local:      ds.Params,
		Model:      model.RepScor,
		EpsGlobal:  2 * ds.Params.Eps,
		Index:      opt.Index,
		Sequential: true,
	}
	run, err := dbdc.Run(sites, cfg)
	if err != nil {
		return nil, err
	}
	perSite := make([][]cluster.ID, len(sites))
	for s := range sites {
		perSite[s] = run.Sites[sites[s].ID].Labels
	}
	distributed, err := data.Assemble(part, perSite, len(ds.Points))
	if err != nil {
		return nil, err
	}
	return &pipelineResult{
		run:             run,
		distributed:     distributed,
		distributedTime: run.DistributedDuration(),
		repFraction:     float64(run.TotalRepresentatives()) / float64(len(ds.Points)),
	}, nil
}
