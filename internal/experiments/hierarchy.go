package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/dbdc-go/dbdc/internal/aggtree"
	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/model"
	"github.com/dbdc-go/dbdc/internal/quality"
)

// hierarchySites is the site count of the hierarchy table: enough to give a
// 3-level tree at fan-in 2 a real interior level (8 → 4 → 2 → root).
const hierarchySites = 8

// Hierarchy measures what the aggregation tree (internal/aggtree,
// docs/hierarchy.md) costs in quality: the same dataset-A site partition is
// merged flat (every site model straight to the root, the paper's topology)
// and through trees of increasing depth, with and without a per-level
// representative budget. For every topology the table reports P^II both
// against the central reference clustering and against the flat run — the
// latter is the price of the tree itself. With budget off, condensation is
// lossless and the tree must agree with the flat run exactly (P^II vs flat
// = 100); budgets trade that equivalence for a bounded uplink per level.
func Hierarchy(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		ID:    "hierarchy",
		Title: "Aggregation tree: depth and per-level budgets vs quality",
		Columns: []string{"topology", "depth", "budget", "root-reps",
			"P^II-vs-central", "P^II-vs-flat", "merge[ms]"},
	}
	ds := data.DatasetA(opt.scaled(data.DatasetASize), opt.Seed)
	central, _, err := runCentral(ds, opt)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(opt.Seed + 1))
	part, err := data.PartitionRandom(len(ds.Points), hierarchySites, rng)
	if err != nil {
		return nil, err
	}
	sitePts := part.Extract(ds.Points)
	cfg := dbdc.Config{
		Local:     ds.Params,
		Model:     model.RepScor,
		EpsGlobal: 2 * ds.Params.Eps,
		Index:     opt.Index,
	}
	outcomes := make([]*dbdc.LocalOutcome, hierarchySites)
	models := make([]*model.LocalModel, hierarchySites)
	for s := range outcomes {
		o, err := dbdc.LocalStep(fmt.Sprintf("site-%02d", s), sitePts[s], cfg)
		if err != nil {
			return nil, err
		}
		outcomes[s] = o
		models[s] = o.Model
	}

	runs := []struct {
		name   string
		fanIn  int
		budget int
	}{
		{"flat", hierarchySites, 0},
		{"2-level fan-in 4", 4, 0},
		{"3-level fan-in 2", 2, 0},
		{"2-level fan-in 4", 4, 4},
		{"3-level fan-in 2", 2, 4},
	}
	var flat cluster.Labeling
	for _, r := range runs {
		start := time.Now()
		global, stats, err := aggtree.MergeTree(models, r.fanIn, cfg, r.budget)
		mergeTime := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("experiments: hierarchy %s: %w", r.name, err)
		}
		perSite := make([][]cluster.ID, hierarchySites)
		for s, o := range outcomes {
			labels, _, err := dbdc.RelabelSite(o, global)
			if err != nil {
				return nil, err
			}
			perSite[s] = labels
		}
		distributed, err := data.Assemble(part, perSite, len(ds.Points))
		if err != nil {
			return nil, err
		}
		if flat == nil {
			flat = distributed
		}
		piiCentral, err := quality.QDBDCPII(distributed, central.Labels)
		if err != nil {
			return nil, err
		}
		piiFlat, err := quality.QDBDCPII(distributed, flat)
		if err != nil {
			return nil, err
		}
		budgetCell := "off"
		if r.budget > 0 {
			budgetCell = fmt.Sprintf("%d", r.budget)
		}
		t.Rows = append(t.Rows, []string{
			r.name,
			fmt.Sprintf("%d", stats.Depth),
			budgetCell,
			fmt.Sprintf("%d", stats.RootReps),
			pct(piiCentral),
			pct(piiFlat),
			ms(mergeTime),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("dataset A, %d sites, REP_Scor, Eps_global = 2*Eps_local at every level; budget = representatives per regional cluster forwarded upward", hierarchySites),
		"P^II-vs-flat isolates the cost of the tree topology itself; 100.0 with budget off = lossless condensation",
	)
	return t, nil
}
