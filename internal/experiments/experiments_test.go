package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/model"
)

// quickOpts shrink every experiment so the whole suite stays fast while
// still executing the full pipeline.
func quickOpts() Options {
	return Options{Seed: 7, Scale: 0.05}
}

func cell(t *Table, row int, col string) string {
	for i, c := range t.Columns {
		if c == col {
			return t.Rows[row][i]
		}
	}
	return ""
}

func cellFloat(tb testing.TB, t *Table, row int, col string) float64 {
	tb.Helper()
	s := strings.TrimSuffix(cell(t, row, col), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		tb.Fatalf("cell %s[%d] = %q not numeric: %v", col, row, cell(t, row, col), err)
	}
	return v
}

func TestTableFprint(t *testing.T) {
	tbl := &Table{
		ID: "x", Title: "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"hello"},
	}
	var buf bytes.Buffer
	if err := tbl.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "long-column", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig7bShape(t *testing.T) {
	tbl, err := Fig7b(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Every timing must be positive.
	for r := range tbl.Rows {
		for _, col := range []string{"central[ms]", "dbdc(scor)[ms]", "dbdc(kmeans)[ms]"} {
			if v := cellFloat(t, tbl, r, col); v <= 0 {
				t.Fatalf("row %d %s = %v", r, col, v)
			}
		}
	}
}

func TestFig9Shape(t *testing.T) {
	tbl, err := Fig9(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Qualities are percentages in [0, 100].
	for r := range tbl.Rows {
		for _, col := range tbl.Columns[1:] {
			v := cellFloat(t, tbl, r, col)
			if v < 0 || v > 100 {
				t.Fatalf("%s[%d] = %v out of range", col, r, v)
			}
		}
	}
	// The paper's headline: quality at factor 2 must not be worse than at
	// the extremes under P^II (peak near 2, degradation at the ends).
	// Rows: 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0.
	at2 := cellFloat(t, tbl, 2, "P^II(scor)")
	at8 := cellFloat(t, tbl, 6, "P^II(scor)")
	if at2 < at8 {
		t.Errorf("P^II at factor 2 (%v) below factor 8 (%v)", at2, at8)
	}
}

func TestFig10Shape(t *testing.T) {
	tbl, err := Fig10(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for r := range tbl.Rows {
		if v := cellFloat(t, tbl, r, "local repr.[%]"); v <= 0 || v >= 100 {
			t.Fatalf("repr%% = %v", v)
		}
		for _, col := range []string{"P^I(kmeans)", "P^II(kmeans)", "P^I(scor)", "P^II(scor)"} {
			v := cellFloat(t, tbl, r, col)
			if v < 0 || v > 100 {
				t.Fatalf("%s[%d] = %v", col, r, v)
			}
		}
	}
}

func TestFig11Shape(t *testing.T) {
	tbl, err := Fig11(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	names := []string{cell(tbl, 0, "dataset"), cell(tbl, 1, "dataset"), cell(tbl, 2, "dataset")}
	if names[0] != "A" || names[1] != "B" || names[2] != "C" {
		t.Fatalf("datasets = %v", names)
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"fig7a", "fig7b", "fig8", "fig9", "fig10", "fig11"} {
		if _, err := ByID(id); err != nil {
			t.Errorf("ByID(%s): %v", id, err)
		}
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
}

// The headline claim of the paper: on a meaningful cardinality DBDC beats
// central clustering and the quality stays high. This integration test runs
// a mid-size instance end to end (quality only; timing claims live in the
// benchmarks where the full cardinalities run).
func TestHeadlineQualityAtModerateScale(t *testing.T) {
	if testing.Short() {
		t.Skip("moderate-scale integration test")
	}
	opt := Options{Seed: 11, Scale: 1}
	ds := data.DatasetA(8700, opt.Seed)
	central, _, err := runCentral(ds, opt.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range model.Kinds() {
		res, err := runDBDC(ds, 4, kind, 2*ds.Params.Eps, opt.withDefaults())
		if err != nil {
			t.Fatal(err)
		}
		pi, pii, err := qualities(res.distributed, central.Labels, ds.Params.MinPts)
		if err != nil {
			t.Fatal(err)
		}
		if pi < 0.9 || pii < 0.85 {
			t.Errorf("%s: quality too low: PI=%.3f PII=%.3f", kind, pi, pii)
		}
		// Representative share in the ballpark the paper reports (16-17%);
		// accept a generous band since the data is an analogue.
		if res.repFraction < 0.01 || res.repFraction > 0.40 {
			t.Errorf("%s: representative fraction %.3f out of band", kind, res.repFraction)
		}
	}
}

func TestTransmissionShape(t *testing.T) {
	tbl, err := Transmission(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for r := range tbl.Rows {
		saving := cellFloat(t, tbl, r, "saving")
		if saving <= 1 {
			t.Fatalf("row %d: shipping models costs more than raw data (%vx)", r, saving)
		}
		if up := cellFloat(t, tbl, r, "uplink[B]"); up <= 0 {
			t.Fatalf("row %d: uplink %v", r, up)
		}
	}
}

func TestBaselinesShape(t *testing.T) {
	tbl, err := Baselines(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for r := range tbl.Rows {
		ariKM := cellFloat(t, tbl, r, "ARI(kmeans)")
		ariDBDC := cellFloat(t, tbl, r, "ARI(dbdc)")
		if ariDBDC < ariKM-0.05 {
			t.Errorf("row %d (%s): DBDC (%v) worse than the k-means baseline (%v)",
				r, cell(tbl, r, "dataset"), ariDBDC, ariKM)
		}
	}
	// Data set C contains a ring: k-means must clearly lose there.
	ariKMC := cellFloat(t, tbl, 2, "ARI(kmeans)")
	ariDBDCC := cellFloat(t, tbl, 2, "ARI(dbdc)")
	if ariKMC > ariDBDCC-0.1 {
		t.Errorf("on the ring data set C, k-means ARI %v not clearly below DBDC %v", ariKMC, ariDBDCC)
	}
}

func TestComparisonShape(t *testing.T) {
	tbl, err := Comparison(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for r := 0; r < len(tbl.Rows); r += 3 {
		dbdcARI := cellFloat(t, tbl, r, "ARI vs central")
		dbdcBytes := cellFloat(t, tbl, r, "bytes")
		exactARI := cellFloat(t, tbl, r+1, "ARI vs central")
		exactBytes := cellFloat(t, tbl, r+1, "bytes")
		// The exact comparator must be exact.
		if exactARI < 0.999 {
			t.Errorf("row %d: pdbscan ARI %v != 1", r+1, exactARI)
		}
		// DBDC's uplink (models only) must be far below everyone's raw
		// costs; total bytes can swing either way depending on the
		// representative count (see the table notes).
		if exactBytes <= 0 || dbdcBytes <= 0 {
			t.Errorf("dataset %s: missing byte accounting", cell(tbl, r, "dataset"))
		}
		if dbdcARI <= 0 {
			t.Errorf("row %d: DBDC ARI %v", r, dbdcARI)
		}
	}
}

func TestDimensionsShape(t *testing.T) {
	tbl, err := Dimensions(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for r := range tbl.Rows {
		// At the tiny test scale the per-site clusters are too sparse for
		// meaningful quality; assert well-formedness, the full-scale values
		// live in EXPERIMENTS.md.
		if v := cellFloat(t, tbl, r, "P^II vs central"); v < 0 || v > 100 {
			t.Errorf("dim %s: P^II out of range: %v", cell(tbl, r, "dim"), v)
		}
		if v := cellFloat(t, tbl, r, "central[ms]"); v <= 0 {
			t.Errorf("dim %s: central time %v", cell(tbl, r, "dim"), v)
		}
		for _, col := range []string{"ARI(central,truth)", "ARI(dbdc,truth)"} {
			if v := cellFloat(t, tbl, r, col); v < -0.5 || v > 1 {
				t.Errorf("dim %s: %s = %v", cell(tbl, r, "dim"), col, v)
			}
		}
	}
}

func TestOpticsSweepShape(t *testing.T) {
	tbl, err := OpticsSweep(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for r := range tbl.Rows {
		a := cellFloat(t, tbl, r, "clusters(dbscan)")
		b := cellFloat(t, tbl, r, "clusters(optics)")
		if a != b {
			t.Errorf("cut %s: cluster counts differ: dbscan %v vs optics %v",
				cell(tbl, r, "eps_global/eps_local"), a, b)
		}
	}
}

func TestPartitionsShape(t *testing.T) {
	tbl, err := Partitions(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for r := range tbl.Rows {
		for _, col := range []string{"P^I", "P^II", "repr.[%]"} {
			v := cellFloat(t, tbl, r, col)
			if v < 0 || v > 100 {
				t.Fatalf("%s[%d] = %v", col, r, v)
			}
		}
	}
}

func TestFprintMarkdown(t *testing.T) {
	tbl := &Table{
		ID: "x", Title: "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"n"},
	}
	var buf bytes.Buffer
	if err := tbl.FprintMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"### x — demo", "| a | b |", "| --- | --- |", "| 1 | 2 |", "*n*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestIncrementalShape(t *testing.T) {
	tbl, err := Incremental(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	var incTotal, naiveTotal float64
	for r := range tbl.Rows {
		incTotal += cellFloat(t, tbl, r, "bytes(incremental)")
		naiveTotal += cellFloat(t, tbl, r, "bytes(naive)")
	}
	if incTotal > naiveTotal {
		t.Fatalf("incremental policy (%v B) costs more than naive (%v B)", incTotal, naiveTotal)
	}
	// The first epoch must upload everywhere (no snapshot yet).
	if got := cell(tbl, 0, "uploads(incremental)"); got != "4/4" {
		t.Fatalf("epoch 1 uploads = %s", got)
	}
}

func TestBudgetsShape(t *testing.T) {
	tbl, err := Budgets(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * len(budgetSweep); len(tbl.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), want)
	}
	for r := range tbl.Rows {
		budget := cell(tbl, r, "budget")
		frac := cellFloat(t, tbl, r, "of-unbudgeted")
		if budget == "off" {
			// The unbudgeted row is its own baseline by construction.
			if frac != 100.0 {
				t.Fatalf("row %d: unbudgeted uplink fraction %v != 100", r, frac)
			}
		} else if frac <= 0 || frac > 100 {
			t.Fatalf("row %d (budget %s): uplink fraction %v outside (0, 100]", r, budget, frac)
		}
		for _, col := range []string{"P^I", "P^II"} {
			if v := cellFloat(t, tbl, r, col); v < 0 || v > 100 {
				t.Fatalf("row %d: %s = %v", r, col, v)
			}
		}
		if v := cellFloat(t, tbl, r, "coverage"); v < 0 || v > 1 {
			t.Fatalf("row %d: coverage %v outside [0, 1]", r, v)
		}
	}
	// Within a dataset, tightening the budget must never increase the
	// uplink: each row's byte count is bounded by the row above it.
	for r := 1; r < len(tbl.Rows); r++ {
		if cell(tbl, r, "dataset") != cell(tbl, r-1, "dataset") {
			continue
		}
		if cellFloat(t, tbl, r, "uplink[B]") > cellFloat(t, tbl, r-1, "uplink[B]") {
			t.Fatalf("row %d: uplink grew as the budget tightened (%s > %s)",
				r, cell(tbl, r, "uplink[B]"), cell(tbl, r-1, "uplink[B]"))
		}
	}
}
