package experiments

import (
	"fmt"
	"math/rand"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/model"
)

// budgetSweep is the per-cluster representative budgets the Pareto table
// walks, from unbudgeted (0) down to one representative per cluster.
var budgetSweep = []int{0, 16, 8, 4, 2, 1}

// Budgets traces the SDBDC bandwidth/quality trade-off (docs/budgets.md):
// for each evaluation data set, re-run DBDC with the per-cluster
// representative budget tightened step by step and record how the uplink
// bytes fall against how the clustering quality (P^I/P^II versus the
// central run) holds up. The paper's claim behind Config.RepBudget is that
// the greedy coverage-maximizing selection trades bytes for quality
// gracefully — a small budget should cut transmission by a large factor
// while staying within a few quality points of the unbudgeted run.
func Budgets(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		ID:    "budgets",
		Title: "SDBDC representative budgets: uplink bytes vs quality",
		Columns: []string{"dataset", "budget", "reps",
			"uplink[B]", "of-unbudgeted", "P^I", "P^II", "coverage"},
	}
	datasets := []data.Dataset{
		data.DatasetA(opt.scaled(data.DatasetASize), opt.Seed),
		data.DatasetB(opt.Seed),
		data.DatasetC(opt.Seed),
	}
	for _, ds := range datasets {
		central, _, err := runCentral(ds, opt)
		if err != nil {
			return nil, err
		}
		baseline := 0
		for _, budget := range budgetSweep {
			res, err := runDBDCBudget(ds, fig7Sites, model.RepScor, 2*ds.Params.Eps, budget, opt)
			if err != nil {
				return nil, err
			}
			uplink, covered, members := 0, 0, 0
			for _, sr := range res.run.Sites {
				uplink += sr.UplinkBytes
				covered += sr.Budget.Covered
				members += sr.Budget.Members
			}
			if budget == 0 {
				baseline = uplink
			}
			pi, pii, err := qualities(res.distributed, central.Labels, ds.Params.MinPts)
			if err != nil {
				return nil, err
			}
			coverage := 1.0
			if members > 0 {
				coverage = float64(covered) / float64(members)
			}
			budgetCell := fmt.Sprintf("%d", budget)
			if budget == 0 {
				budgetCell = "off"
				coverage = 1.0
			}
			t.Rows = append(t.Rows, []string{
				ds.Name,
				budgetCell,
				fmt.Sprintf("%d", res.run.TotalRepresentatives()),
				fmt.Sprintf("%d", uplink),
				pct(float64(uplink) / float64(baseline)),
				pct(pi),
				pct(pii),
				fmt.Sprintf("%.3f", coverage),
			})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d sites, REP_Scor, Eps_global = 2*Eps_local; budget = max representatives per local cluster", fig7Sites),
		"of-unbudgeted = uplink bytes as % of the budget-off row; coverage = eps-covered member fraction across sites",
	)
	return t, nil
}

// runDBDCBudget is runDBDC with the SDBDC per-cluster representative
// budget threaded into the site configuration; budget 0 is the identical
// unbudgeted pipeline.
func runDBDCBudget(ds data.Dataset, numSites int, kind model.Kind, epsGlobal float64, budget int, opt Options) (*pipelineResult, error) {
	rng := rand.New(rand.NewSource(opt.Seed + 1))
	part, err := data.PartitionRandom(len(ds.Points), numSites, rng)
	if err != nil {
		return nil, err
	}
	sitePts := part.Extract(ds.Points)
	sites := make([]dbdc.Site, numSites)
	for s := range sites {
		sites[s] = dbdc.Site{ID: fmt.Sprintf("site-%02d", s), Points: sitePts[s]}
	}
	cfg := dbdc.Config{
		Local:      ds.Params,
		Model:      kind,
		EpsGlobal:  epsGlobal,
		Index:      opt.Index,
		RepBudget:  budget,
		Sequential: true,
	}
	run, err := dbdc.Run(sites, cfg)
	if err != nil {
		return nil, err
	}
	perSite := make([][]cluster.ID, numSites)
	for s := range sites {
		perSite[s] = run.Sites[sites[s].ID].Labels
	}
	distributed, err := data.Assemble(part, perSite, len(ds.Points))
	if err != nil {
		return nil, err
	}
	return &pipelineResult{
		run:             run,
		distributed:     distributed,
		distributedTime: run.DistributedDuration(),
		repFraction:     float64(run.TotalRepresentatives()) / float64(len(ds.Points)),
	}, nil
}
