package experiments

import (
	"fmt"

	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/model"
)

// Fig8Cardinality is the 203,000-point data set of Figure 8.
const Fig8Cardinality = 203_000

// Fig8 reproduces Figure 8: overall runtime of DBDC(REP_Scor) on a 203,000
// point data set dependent on the number of sites (8a) and the speed-up
// relative to central DBSCAN (8b). The paper observes a speed-up between
// O(s) and O(s²) in the site count s, because DBSCAN itself scales between
// O(n·log n) and O(n²).
func Fig8(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	n := opt.scaled(Fig8Cardinality)
	ds := data.DatasetA(n, opt.Seed)
	_, centralTime, err := runCentral(ds, opt)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig8",
		Title: fmt.Sprintf("runtime and speed-up vs number of sites (n=%d)", n),
		Columns: []string{"sites", "dbdc(scor)[ms]", "central[ms]", "speedup",
			"s (linear ref)", "s^2 (quadratic ref)"},
	}
	for _, sites := range []int{1, 2, 4, 8, 16, 32} {
		res, err := runDBDC(ds, sites, model.RepScor, 2*ds.Params.Eps, opt)
		if err != nil {
			return nil, err
		}
		speedup := float64(centralTime) / float64(res.distributedTime)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", sites),
			ms(res.distributedTime),
			ms(centralTime),
			fmt.Sprintf("%.1fx", speedup),
			fmt.Sprintf("%d", sites),
			fmt.Sprintf("%d", sites*sites),
		})
	}
	t.Notes = append(t.Notes,
		"paper: speed-up lies between O(s) and O(s^2) in the number of sites s",
		fmt.Sprintf("dataset A analogue, Eps_global = 2*Eps_local, index=%s", opt.Index))
	return t, nil
}
