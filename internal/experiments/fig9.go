package experiments

import (
	"fmt"

	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/model"
)

// Fig9 reproduces Figures 9a and 9b: the quality Q_DBDC of both local
// models under P^I (9a) and P^II (9b) as Eps_global sweeps multiples of
// Eps_local. The paper's findings: P^I stays flat and high regardless of
// the factor (which disqualifies it), while P^II peaks around
// 2·Eps_local and degrades at the extremes.
func Fig9(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	ds := data.DatasetA(opt.scaled(data.DatasetASize), opt.Seed)
	central, _, err := runCentral(ds, opt)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "fig9",
		Title: "quality vs Eps_global factor (9a: P^I, 9b: P^II)",
		Columns: []string{"eps_global/eps_local",
			"P^I(kmeans)", "P^I(scor)", "P^II(kmeans)", "P^II(scor)"},
	}
	for _, factor := range []float64{1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0} {
		row := []string{fmt.Sprintf("%.1f", factor)}
		var pis, piis []string
		for _, kind := range []model.Kind{model.RepKMeans, model.RepScor} {
			res, err := runDBDC(ds, fig7Sites, kind, factor*ds.Params.Eps, opt)
			if err != nil {
				return nil, err
			}
			pi, pii, err := qualities(res.distributed, central.Labels, ds.Params.MinPts)
			if err != nil {
				return nil, err
			}
			pis = append(pis, pct(pi))
			piis = append(piis, pct(pii))
		}
		row = append(row, pis...)
		row = append(row, piis...)
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("dataset A analogue, %d sites, qp = MinPts = %d", fig7Sites, ds.Params.MinPts),
		"paper: P^I flat (unsuitable); P^II peaks near factor 2 and worsens at the extremes",
		"the high-factor collapse sets in once Eps_global bridges distinct clusters (factor ~6 for this geometry)")
	return t, nil
}
