package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/model"
	"github.com/dbdc-go/dbdc/internal/quality"
)

// Dimensions ablates the dimensionality of the data: the paper evaluates
// on 2-D point sets only, but nothing in DBDC is 2-D specific. For
// d ∈ {2, 3, 5, 8} it generates labelled Gaussian clusters, runs central
// DBSCAN and DBDC, and reports runtime plus quality against BOTH the
// central reference (the paper's measure) and the generator's ground
// truth. The two diverge tellingly in high dimensions: fixed-Eps DBSCAN
// itself fragments (the curse of dimensionality), while DBDC's ε-range
// relabeling generalises over the fragmentation — at d=8 the distributed
// clustering agrees far better with the truth than the central run it is
// nominally approximating. This is an extension table, not a paper figure.
func Dimensions(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		ID:    "dimensions",
		Title: "runtime and quality vs dimensionality (synthetic clusters, 4 sites)",
		Columns: []string{"dim", "n", "central[ms]", "dbdc[ms]", "speedup",
			"P^II vs central", "ARI(central,truth)", "ARI(dbdc,truth)"},
	}
	n := opt.scaled(8000)
	for _, dim := range []int{2, 3, 5, 8} {
		ds, truth := gaussianDataset(n, dim, opt.Seed)
		central, centralTime, err := runCentral(ds, opt)
		if err != nil {
			return nil, err
		}
		res, err := runDBDC(ds, 4, model.RepScor, 2*ds.Params.Eps, opt)
		if err != nil {
			return nil, err
		}
		_, pii, err := qualities(res.distributed, central.Labels, ds.Params.MinPts)
		if err != nil {
			return nil, err
		}
		ariCentral, err := quality.AdjustedRandIndex(central.Labels, truth)
		if err != nil {
			return nil, err
		}
		ariDBDC, err := quality.AdjustedRandIndex(res.distributed, truth)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", dim),
			fmt.Sprintf("%d", n),
			ms(centralTime),
			ms(res.distributedTime),
			fmt.Sprintf("%.1fx", float64(centralTime)/float64(res.distributedTime)),
			pct(pii),
			fmt.Sprintf("%.3f", ariCentral),
			fmt.Sprintf("%.3f", ariDBDC),
		})
	}
	t.Notes = append(t.Notes,
		"8 labelled Gaussian clusters per dimensionality, Eps scaled with sqrt(d)",
		"REP_Scor, Eps_global = 2*Eps_local, index=rstar",
		"high d: central DBSCAN fragments (low ARI vs truth) while DBDC's ε-range relabeling generalises over the fragmentation — the falling P^II measures disagreement with a degraded reference, not poor clustering")
	return t, nil
}

// gaussianDataset builds a d-dimensional clustered data set with Eps scaled
// so the expected neighborhood cardinality stays in a workable band. The
// second return value is the generator's ground-truth labeling.
func gaussianDataset(n, dim int, seed int64) (data.Dataset, cluster.Labeling) {
	rng := rand.New(rand.NewSource(seed + int64(dim)))
	const clusters = 8
	centers := make([]geom.Point, clusters)
	for i := range centers {
		c := make(geom.Point, dim)
		for d := range c {
			c[d] = rng.Float64() * 40
		}
		centers[i] = c
	}
	pts := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		c := centers[i%clusters]
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = c[d] + rng.NormFloat64()
		}
		pts = append(pts, p)
	}
	truth := make(cluster.Labeling, n)
	for i := range truth {
		truth[i] = cluster.ID(i % clusters)
	}
	return data.Dataset{
		Name:   fmt.Sprintf("gauss-%dd", dim),
		Points: pts,
		// Distances between Gaussian samples concentrate around
		// sigma*sqrt(2d); scale Eps accordingly.
		Params: dbscan.Params{Eps: 0.55 * math.Sqrt(float64(dim)), MinPts: 5},
	}, truth
}

// OpticsSweep backs the Section 6 discussion with numbers: extracting the
// global model at many Eps_global cuts via one OPTICS ordering of the
// representatives versus re-running the server-side DBSCAN per cut.
// This is an extension table, not a paper figure.
func OpticsSweep(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	ds := data.DatasetA(opt.scaled(data.DatasetASize), opt.Seed)
	res, err := runDBDC(ds, 4, model.RepScor, 2*ds.Params.Eps, opt)
	if err != nil {
		return nil, err
	}
	var models []*model.LocalModel
	for _, sr := range res.run.Sites {
		models = append(models, sr.Outcome.Model)
	}
	cuts := []float64{1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 3.5}
	cfg := dbdc.Config{Local: ds.Params, Model: model.RepScor, Index: opt.Index}
	// Repeated DBSCAN runs.
	t0 := time.Now()
	var dbscanClusters []int
	for _, factor := range cuts {
		c := cfg
		c.EpsGlobal = factor * ds.Params.Eps
		g, err := dbdc.GlobalStep(models, c)
		if err != nil {
			return nil, err
		}
		dbscanClusters = append(dbscanClusters, g.NumClusters)
	}
	dbscanTime := time.Since(t0)
	// One OPTICS ordering, then cheap extractions.
	t0 = time.Now()
	ord, err := dbdc.NewOpticsOrderer(models, cfg, 4*ds.Params.Eps)
	if err != nil {
		return nil, err
	}
	var opticsClusters []int
	for _, factor := range cuts {
		g, err := ord.Extract(factor * ds.Params.Eps)
		if err != nil {
			return nil, err
		}
		opticsClusters = append(opticsClusters, g.NumClusters)
	}
	opticsTime := time.Since(t0)
	t := &Table{
		ID:      "optics-sweep",
		Title:   fmt.Sprintf("global-model sweep over %d Eps_global cuts", len(cuts)),
		Columns: []string{"eps_global/eps_local", "clusters(dbscan)", "clusters(optics)"},
	}
	for i, factor := range cuts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", factor),
			fmt.Sprintf("%d", dbscanClusters[i]),
			fmt.Sprintf("%d", opticsClusters[i]),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("repeated DBSCAN: %s; OPTICS ordering + extraction: %s", dbscanTime, opticsTime),
		"the cluster counts agree cut for cut; OPTICS pays one ordering and then extracts in O(m) per cut")
	return t, nil
}
