package experiments

import (
	"fmt"

	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/model"
)

// fig7Sites is the site count of the cardinality sweeps. The paper plots
// one DBDC curve per local model against central DBSCAN.
const fig7Sites = 4

// runtimeSweep builds the shared machinery of Figures 7a and 7b: for every
// cardinality it measures central DBSCAN against DBDC with both local
// models and Eps_global = 2·Eps_local.
func runtimeSweep(id, title string, cardinalities []int, opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		ID:    id,
		Title: title,
		Columns: []string{"n", "central[ms]", "dbdc(scor)[ms]", "dbdc(kmeans)[ms]",
			"speedup(scor)", "speedup(kmeans)", "totalwork(scor)[ms]"},
	}
	for _, n := range cardinalities {
		n = opt.scaled(n)
		ds := data.DatasetA(n, opt.Seed)
		_, centralTime, err := runCentral(ds, opt)
		if err != nil {
			return nil, err
		}
		epsGlobal := 2 * ds.Params.Eps
		scor, err := runDBDC(ds, fig7Sites, model.RepScor, epsGlobal, opt)
		if err != nil {
			return nil, err
		}
		km, err := runDBDC(ds, fig7Sites, model.RepKMeans, epsGlobal, opt)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			ms(centralTime),
			ms(scor.distributedTime),
			ms(km.distributedTime),
			fmt.Sprintf("%.1fx", float64(centralTime)/float64(scor.distributedTime)),
			fmt.Sprintf("%.1fx", float64(centralTime)/float64(km.distributedTime)),
			ms(scor.run.TotalWork()),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d sites, Eps_global = 2*Eps_local, dataset A, index=%s", fig7Sites, opt.Index),
		"distributed time = max(local clustering) + global clustering, as in the paper",
		"totalwork = sum of all site work + server work: the single-machine overhead of distribution")
	return t, nil
}

// Fig7a reproduces Figure 7a: overall runtime for central versus
// distributed clustering on large cardinalities of data set A. The paper
// reports DBDC outperforming central DBSCAN by more than an order of
// magnitude at 100,000 points, with REP_Scor cheaper than REP_kMeans.
func Fig7a(opt Options) (*Table, error) {
	return runtimeSweep("fig7a", "runtime vs cardinality (large)",
		[]int{10_000, 25_000, 50_000, 75_000, 100_000}, opt)
}

// Fig7b reproduces Figure 7b: the same comparison on small cardinalities,
// where the paper finds DBDC "slightly slower" with "almost negligible"
// overhead.
func Fig7b(opt Options) (*Table, error) {
	return runtimeSweep("fig7b", "runtime vs cardinality (small)",
		[]int{500, 1_000, 2_000, 4_000, 8_700}, opt)
}
