package experiments

import (
	"fmt"
	"math/rand"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/distkmeans"
	"github.com/dbdc-go/dbdc/internal/model"
	"github.com/dbdc-go/dbdc/internal/pdbscan"
	"github.com/dbdc-go/dbdc/internal/quality"
)

// Comparison places DBDC between the two distributed comparators the
// paper's related-work section discusses: exact distributed DBSCAN in the
// PDBSCAN style (reference [21] — ships Eps-halos of raw objects, result
// identical to central) and distributed k-means (reference [5] — iterative
// broadcast/reduce). For each evaluation data set it reports the quality
// against the central DBSCAN reference and the bytes each method puts on
// the network. This is an extension table, not a paper figure; it
// quantifies the trade-off the paper argues qualitatively: DBDC gives up a
// little exactness for a much smaller, single-round transmission.
func Comparison(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		ID:      "comparison",
		Title:   "DBDC vs exact distributed DBSCAN vs distributed k-means (4 sites)",
		Columns: []string{"dataset", "method", "ARI vs central", "P^II", "bytes", "rounds"},
	}
	datasets := []data.Dataset{
		data.DatasetA(opt.scaled(data.DatasetASize), opt.Seed),
		data.DatasetB(opt.Seed),
		data.DatasetC(opt.Seed),
	}
	const sites = 4
	for _, ds := range datasets {
		central, _, err := runCentral(ds, opt)
		if err != nil {
			return nil, err
		}
		addRow := func(method string, labels cluster.Labeling, bytes, rounds int) error {
			ari, err := quality.AdjustedRandIndex(labels, central.Labels)
			if err != nil {
				return err
			}
			pii, err := quality.QDBDCPII(labels, central.Labels)
			if err != nil {
				return err
			}
			t.Rows = append(t.Rows, []string{
				ds.Name, method,
				fmt.Sprintf("%.3f", ari),
				pct(pii),
				fmt.Sprintf("%d", bytes),
				fmt.Sprintf("%d", rounds),
			})
			return nil
		}
		// DBDC.
		res, err := runDBDC(ds, sites, model.RepScor, 2*ds.Params.Eps, opt)
		if err != nil {
			return nil, err
		}
		var dbdcBytes int
		for _, sr := range res.run.Sites {
			dbdcBytes += sr.UplinkBytes + sr.DownlinkBytes
		}
		if err := addRow("dbdc(scor)", res.distributed, dbdcBytes, 1); err != nil {
			return nil, err
		}
		// Exact distributed DBSCAN. Its halo trick needs spatially
		// co-located site data, but in the DBDC setting the objects are
		// born on arbitrary sites — the paper points out that the parallel
		// algorithms "start with the complete data set residing on one
		// central server and then distribute the data among the different
		// clients". The fair byte count therefore includes that initial
		// redistribution: with k sites, (1 − 1/k) of all objects must move
		// before the halo exchange can begin.
		exact, err := pdbscan.Run(ds.Points, ds.Params, sites)
		if err != nil {
			return nil, err
		}
		redistribution := len(ds.Points) * (sites - 1) / sites * ds.Points[0].Dim() * 8
		if err := addRow("pdbscan(exact)", exact.Labels,
			redistribution+exact.BytesExchanged(), 3); err != nil {
			return nil, err
		}
		// Distributed k-means with the reference cluster count.
		rng := rand.New(rand.NewSource(opt.Seed))
		part, err := data.PartitionRandom(len(ds.Points), sites, rng)
		if err != nil {
			return nil, err
		}
		sitePts := part.Extract(ds.Points)
		k := central.NumClusters()
		if k < 1 {
			k = 1
		}
		km, err := distkmeans.Run(sitePts, k, rng, 0)
		if err != nil {
			return nil, err
		}
		perSite := make([][]cluster.ID, sites)
		for s := range sitePts {
			perSite[s] = make([]cluster.ID, len(sitePts[s]))
			for i, a := range km.Assign[s] {
				perSite[s][i] = cluster.ID(a)
			}
		}
		kmLabels, err := data.Assemble(part, perSite, len(ds.Points))
		if err != nil {
			return nil, err
		}
		if err := addRow("dist-kmeans", kmLabels, km.BytesExchanged(), km.Rounds); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"bytes: dbdc = models up + global model down; pdbscan = spatial redistribution + halo + boundary exchange; kmeans = centroid broadcast/reduce * rounds",
		"pdbscan reproduces the central result exactly (ARI 1.0) — at the cost of shipping raw objects",
		"dist-kmeans gets the reference k; its quality ceiling is the model mismatch of Section 4",
		"dbdc's bytes are dominated by broadcasting the global model to every site; its advantage grows when sites cannot be spatially reorganized, when data changes incrementally (only changed models re-upload), and when raw objects are too sensitive to ship at all (the paper's security motivation)")
	return t, nil
}
