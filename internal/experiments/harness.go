// Package experiments regenerates every table and figure of the DBDC
// paper's evaluation (Section 9). Each Fig* function produces a Table whose
// rows correspond to the series the paper plots; cmd/experiments prints
// them and EXPERIMENTS.md records the paper-versus-measured comparison.
//
// Like the paper, the distributed runtime is reported as
// max(local clustering times) + global clustering time: the local runs are
// executed (and timed) independently, mirroring sites that work in
// parallel, while absolute numbers differ from the 2004 Pentium III
// hardware, the shapes are what the harness reproduces.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
	"github.com/dbdc-go/dbdc/internal/model"
	"github.com/dbdc-go/dbdc/internal/quality"
)

// Options configure an experiment run.
type Options struct {
	// Seed drives all data generation and partitioning.
	Seed int64
	// Scale in (0, 1] shrinks the cardinalities so test suites can exercise
	// every experiment quickly; cmd/experiments uses 1.0.
	Scale float64
	// Index selects the neighborhood index; empty uses the R*-tree.
	Index index.Kind
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 1
	}
	if o.Index == "" {
		o.Index = index.KindRStar
	}
	if o.Seed == 0 {
		o.Seed = 2004 // EDBT 2004
	}
	return o
}

func (o Options) scaled(n int) int {
	s := int(float64(n) * o.Scale)
	if s < 100 {
		s = 100
	}
	return s
}

// Table is a printable experiment result.
type Table struct {
	ID      string // e.g. "fig7a"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.Join(parts, "  ")
	}
	fmt.Fprintln(w, line(t.Columns))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// FprintMarkdown renders the table as GitHub-flavoured markdown, the
// format EXPERIMENTS.md embeds.
func (t *Table) FprintMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	fmt.Fprintln(w)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "*%s*\n\n", n)
	}
	return nil
}

// pipelineResult bundles everything one DBDC execution yields for the
// experiment metrics.
type pipelineResult struct {
	run *dbdc.Result
	// distributed holds the global labeling rearranged into data set order.
	distributed cluster.Labeling
	// distributedTime is max(local)+global, the paper's runtime measure.
	distributedTime time.Duration
	// repFraction is the representative count over the object count.
	repFraction float64
}

// runDBDC partitions the data set over numSites sites and executes the full
// DBDC pipeline.
func runDBDC(ds data.Dataset, numSites int, kind model.Kind, epsGlobal float64, opt Options) (*pipelineResult, error) {
	rng := rand.New(rand.NewSource(opt.Seed + 1))
	part, err := data.PartitionRandom(len(ds.Points), numSites, rng)
	if err != nil {
		return nil, err
	}
	sitePts := part.Extract(ds.Points)
	sites := make([]dbdc.Site, numSites)
	for s := range sites {
		sites[s] = dbdc.Site{ID: fmt.Sprintf("site-%02d", s), Points: sitePts[s]}
	}
	cfg := dbdc.Config{
		Local:     ds.Params,
		Model:     kind,
		EpsGlobal: epsGlobal,
		Index:     opt.Index,
		// The paper's timing methodology: run sites one at a time and
		// report max(local) + global, so per-site durations stay free of
		// scheduler contention on the experiment host.
		Sequential: true,
	}
	run, err := dbdc.Run(sites, cfg)
	if err != nil {
		return nil, err
	}
	perSite := make([][]cluster.ID, numSites)
	for s := range sites {
		perSite[s] = run.Sites[sites[s].ID].Labels
	}
	distributed, err := data.Assemble(part, perSite, len(ds.Points))
	if err != nil {
		return nil, err
	}
	return &pipelineResult{
		run:             run,
		distributed:     distributed,
		distributedTime: run.DistributedDuration(),
		repFraction:     float64(run.TotalRepresentatives()) / float64(len(ds.Points)),
	}, nil
}

// runCentral executes the reference clustering of the whole data set.
func runCentral(ds data.Dataset, opt Options) (*dbscan.Result, time.Duration, error) {
	start := time.Now()
	idx, err := index.Build(opt.Index, ds.Points, geom.Euclidean{}, ds.Params.Eps)
	if err != nil {
		return nil, 0, err
	}
	res, err := dbscan.Run(idx, ds.Params, dbscan.Options{})
	if err != nil {
		return nil, 0, err
	}
	return res, time.Since(start), nil
}

// qualities computes Q_DBDC under both object quality functions, with
// qp = MinPts as the paper recommends.
func qualities(distributed, central cluster.Labeling, minPts int) (pi, pii float64, err error) {
	pi, err = quality.QDBDCPI(distributed, central, minPts)
	if err != nil {
		return 0, 0, err
	}
	pii, err = quality.QDBDCPII(distributed, central)
	return pi, pii, err
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds()*1000)
}

func pct(v float64) string {
	return fmt.Sprintf("%.1f", v*100)
}

// runDBDCAuto is runDBDC with the data-driven Eps_global selection
// (Config.EpsGlobalAuto) instead of a fixed radius.
func runDBDCAuto(ds data.Dataset, numSites int, opt Options) (*pipelineResult, error) {
	rng := rand.New(rand.NewSource(opt.Seed + 1))
	part, err := data.PartitionRandom(len(ds.Points), numSites, rng)
	if err != nil {
		return nil, err
	}
	sitePts := part.Extract(ds.Points)
	sites := make([]dbdc.Site, numSites)
	for s := range sites {
		sites[s] = dbdc.Site{ID: fmt.Sprintf("site-%02d", s), Points: sitePts[s]}
	}
	cfg := dbdc.Config{
		Local:         ds.Params,
		Model:         model.RepScor,
		EpsGlobalAuto: true,
		Index:         opt.Index,
		Sequential:    true,
	}
	run, err := dbdc.Run(sites, cfg)
	if err != nil {
		return nil, err
	}
	perSite := make([][]cluster.ID, numSites)
	for s := range sites {
		perSite[s] = run.Sites[sites[s].ID].Labels
	}
	distributed, err := data.Assemble(part, perSite, len(ds.Points))
	if err != nil {
		return nil, err
	}
	return &pipelineResult{
		run:             run,
		distributed:     distributed,
		distributedTime: run.DistributedDuration(),
		repFraction:     float64(run.TotalRepresentatives()) / float64(len(ds.Points)),
	}, nil
}
