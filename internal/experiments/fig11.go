package experiments

import (
	"fmt"

	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/model"
)

// Fig11 reproduces Figure 11: quality for the three data sets A, B and C,
// both local models, both object quality functions, at 4 sites and
// Eps_global = 2·Eps_local. The paper's finding: DBDC scores high on all
// three; on the very noisy data set B the finer-grained P^II reports a
// visibly lower value than P^I, matching an experienced user's intuition.
func Fig11(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		ID:    "fig11",
		Title: "quality for data sets A, B and C",
		Columns: []string{"dataset", "n",
			"P^I(kmeans)", "P^II(kmeans)", "P^I(scor)", "P^II(scor)"},
	}
	datasets := []data.Dataset{
		data.DatasetA(opt.scaled(data.DatasetASize), opt.Seed),
		data.DatasetB(opt.Seed),
		data.DatasetC(opt.Seed),
	}
	for _, ds := range datasets {
		central, _, err := runCentral(ds, opt)
		if err != nil {
			return nil, err
		}
		row := []string{ds.Name, fmt.Sprintf("%d", len(ds.Points))}
		cells := map[model.Kind][2]string{}
		for _, kind := range []model.Kind{model.RepKMeans, model.RepScor} {
			res, err := runDBDC(ds, fig7Sites, kind, 2*ds.Params.Eps, opt)
			if err != nil {
				return nil, err
			}
			pi, pii, err := qualities(res.distributed, central.Labels, ds.Params.MinPts)
			if err != nil {
				return nil, err
			}
			cells[kind] = [2]string{pct(pi), pct(pii)}
		}
		row = append(row,
			cells[model.RepKMeans][0], cells[model.RepKMeans][1],
			cells[model.RepScor][0], cells[model.RepScor][1])
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d sites, Eps_global = 2*Eps_local, qp = MinPts per dataset", fig7Sites),
		"paper: high quality on all three; on noisy B, P^II < P^I")
	return t, nil
}

// All runs every experiment in paper order, plus the transmission-cost
// extension table.
func All(opt Options) ([]*Table, error) {
	runs := []func(Options) (*Table, error){Fig7a, Fig7b, Fig8, Fig9, Fig10, Fig11, Transmission, Budgets, Hierarchy, Baselines, Comparison, Dimensions, OpticsSweep, Partitions, Incremental}
	tables := make([]*Table, 0, len(runs))
	for _, run := range runs {
		t, err := run(opt)
		if err != nil {
			return tables, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// ByID returns the experiment runner with the given table id.
func ByID(id string) (func(Options) (*Table, error), error) {
	switch id {
	case "fig7a":
		return Fig7a, nil
	case "fig7b":
		return Fig7b, nil
	case "fig8":
		return Fig8, nil
	case "fig9":
		return Fig9, nil
	case "fig10":
		return Fig10, nil
	case "fig11":
		return Fig11, nil
	case "transmission":
		return Transmission, nil
	case "budgets":
		return Budgets, nil
	case "hierarchy":
		return Hierarchy, nil
	case "baselines":
		return Baselines, nil
	case "comparison":
		return Comparison, nil
	case "dimensions":
		return Dimensions, nil
	case "optics-sweep":
		return OpticsSweep, nil
	case "partitions":
		return Partitions, nil
	case "incremental":
		return Incremental, nil
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (have fig7a fig7b fig8 fig9 fig10 fig11 transmission budgets hierarchy baselines comparison dimensions optics-sweep partitions incremental)", id)
	}
}
