package experiments

import (
	"fmt"
	"math/rand"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/kmeans"
	"github.com/dbdc-go/dbdc/internal/model"
	"github.com/dbdc-go/dbdc/internal/quality"
)

// Baselines quantifies Section 4's argument for choosing DBSCAN as the
// local clusterer: "K-means ... does not perform well on data with
// outliers or with clusters of different sizes or non-globular shapes."
// For each evaluation data set it compares, against the central DBSCAN
// reference (adjusted Rand index), a central k-means baseline (k set to
// the reference cluster count, k-means++ seeding) and the full DBDC
// pipeline. Data set C contains a ring — the shape k-means cannot
// represent — and data set B is dominated by outliers; both should sink
// the baseline while DBDC stays close to the reference. This is an
// extension table, not a paper figure.
func Baselines(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		ID:      "baselines",
		Title:   "central k-means baseline vs DBDC (adjusted Rand index vs central DBSCAN)",
		Columns: []string{"dataset", "n", "ref clusters", "ARI(kmeans)", "ARI(dbdc)", "P^II(dbdc)",
			"ARI(kmeans,truth)", "ARI(dbdc,truth)"},
	}
	datasets := []data.Dataset{
		data.DatasetA(opt.scaled(data.DatasetASize), opt.Seed),
		data.DatasetB(opt.Seed),
		data.DatasetC(opt.Seed),
	}
	for _, ds := range datasets {
		central, _, err := runCentral(ds, opt)
		if err != nil {
			return nil, err
		}
		k := central.NumClusters()
		if k < 1 {
			k = 1
		}
		km, err := kmeans.Run(ds.Points, k, rand.New(rand.NewSource(opt.Seed)), 0)
		if err != nil {
			return nil, err
		}
		kmLabels := make(cluster.Labeling, len(ds.Points))
		for i, a := range km.Assign {
			kmLabels[i] = cluster.ID(a)
		}
		ariKM, err := quality.AdjustedRandIndex(kmLabels, central.Labels)
		if err != nil {
			return nil, err
		}
		res, err := runDBDC(ds, fig7Sites, model.RepScor, 2*ds.Params.Eps, opt)
		if err != nil {
			return nil, err
		}
		ariDBDC, err := quality.AdjustedRandIndex(res.distributed, central.Labels)
		if err != nil {
			return nil, err
		}
		_, pii, err := qualities(res.distributed, central.Labels, ds.Params.MinPts)
		if err != nil {
			return nil, err
		}
		ariKMTruth, err := quality.AdjustedRandIndex(kmLabels, ds.Truth)
		if err != nil {
			return nil, err
		}
		ariDBDCTruth, err := quality.AdjustedRandIndex(res.distributed, ds.Truth)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			ds.Name,
			fmt.Sprintf("%d", len(ds.Points)),
			fmt.Sprintf("%d", central.NumClusters()),
			fmt.Sprintf("%.3f", ariKM),
			fmt.Sprintf("%.3f", ariDBDC),
			pct(pii),
			fmt.Sprintf("%.3f", ariKMTruth),
			fmt.Sprintf("%.3f", ariDBDCTruth),
		})
	}
	t.Notes = append(t.Notes,
		"k-means gets the reference k and k-means++ seeding — still no noise concept and convex cells only",
		"the truth columns score against the generator labels; they confirm the central-reference comparison is not an artifact",
		fmt.Sprintf("DBDC: %d sites, REP_Scor, Eps_global = 2*Eps_local", fig7Sites))
	return t, nil
}
