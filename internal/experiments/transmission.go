package experiments

import (
	"fmt"

	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/model"
)

// Transmission quantifies the introduction's central claim — "the
// transmission costs are minimal as the representatives are only a
// fraction of the original data" — which the paper asserts but never
// tabulates: for each evaluation data set, the bytes every site uploads
// (binary local model), the bytes the server broadcasts back, and the cost
// of shipping the raw points instead. This is an extension table, not a
// paper figure.
func Transmission(opt Options) (*Table, error) {
	opt = opt.withDefaults()
	t := &Table{
		ID:    "transmission",
		Title: "transmission cost: local models vs raw data",
		Columns: []string{"dataset", "n", "sites", "reps",
			"uplink[B]", "downlink[B/site]", "raw[B]", "saving"},
	}
	datasets := []data.Dataset{
		data.DatasetA(opt.scaled(data.DatasetASize), opt.Seed),
		data.DatasetB(opt.Seed),
		data.DatasetC(opt.Seed),
	}
	for _, ds := range datasets {
		for _, sites := range []int{4, 16} {
			res, err := runDBDC(ds, sites, model.RepScor, 2*ds.Params.Eps, opt)
			if err != nil {
				return nil, err
			}
			var uplink int
			for _, sr := range res.run.Sites {
				uplink += sr.UplinkBytes
			}
			downlink := res.run.Global.EncodedSize()
			raw := len(ds.Points) * ds.Points[0].Dim() * 8
			t.Rows = append(t.Rows, []string{
				ds.Name,
				fmt.Sprintf("%d", len(ds.Points)),
				fmt.Sprintf("%d", sites),
				fmt.Sprintf("%d", res.run.TotalRepresentatives()),
				fmt.Sprintf("%d", uplink),
				fmt.Sprintf("%d", downlink),
				fmt.Sprintf("%d", raw),
				fmt.Sprintf("%.1fx", float64(raw)/float64(uplink)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"uplink = sum of binary local models; raw = shipping every coordinate as float64",
		"REP_Scor, Eps_global = 2*Eps_local; REP_kMeans transmits the same number of representatives")
	return t, nil
}
