// Package aggtree turns DBDC's two-tier site→server topology into an
// N-level aggregation tree (docs/hierarchy.md) — the hierarchical
// aggregation of Bendechache & Le-Khac and the SDBDC line of work. An
// Aggregator is an interior tree node: toward its children it is a plain
// quorum transport.Server (sites or deeper aggregators connect with the
// unchanged MsgHello/timed/budget ladder), toward its parent it is a
// site-shaped transport.Client. Each round it collects its region's local
// models, runs dbdc.GlobalStep over them, condenses the merged result back
// into a model.LocalModel (dbdc.CondenseGlobal, optionally capped by a
// per-level representative budget), uploads that to the parent, and
// broadcasts the model the parent answers with — the root's global model —
// to its children. Sites therefore relabel against the root model while
// speaking exactly the flat-topology wire protocol.
package aggtree

import (
	"fmt"
	"net"
	"time"

	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/model"
	"github.com/dbdc-go/dbdc/internal/transport"
)

// Config describes one interior node of the aggregation tree.
type Config struct {
	// ID is the aggregator's site id on its parent's wire. Required.
	ID string
	// Parent is the upstream server address ("host:port") — the root
	// dbdc-server or a higher-level aggregator. Required: a node without
	// a parent is just a transport.Server.
	Parent string
	// Expect is the number of distinct child models one round aims for;
	// Quorum the minimum to proceed with (0 = 1).
	Expect int
	Quorum int
	// Cluster parameterizes the regional global step and the
	// condensation. The same config the flat server would use works
	// unchanged: EpsGlobal 0 derives the regional radius from the
	// children's specific ε-ranges, and the condensed model's EpsLocal
	// propagates the derived radius upward.
	Cluster dbdc.Config
	// RepBudget caps the representatives per regional cluster in the
	// condensed upload (0 = forward every representative). A budgeted
	// node negotiates its uplink with the parent's advertised byte cap
	// exactly like a budgeted site (transport.SendModelBudgeted).
	RepBudget int
	// MaxUploadBytes is the per-upload byte cap advertised to
	// handshaking children; 0 means unconstrained.
	MaxUploadBytes int64
	// Timeout bounds each child connection's I/O and the parent
	// exchange; 0 means 30s. AcceptTimeout bounds the collect phase of a
	// round (0 = Timeout).
	Timeout       time.Duration
	AcceptTimeout time.Duration
	// ExpectedSites optionally names the children a round waits for, for
	// by-name failure reporting.
	ExpectedSites []string
	// Retry is the upload retry policy toward the parent.
	Retry transport.RetryPolicy
	// Dial overrides the parent connection dialer (fault injection in
	// tests); nil means net.DialTimeout.
	Dial transport.DialFunc
}

// Aggregator is a running interior tree node. Create with New or
// NewListener, then drive rounds with RunRound.
type Aggregator struct {
	cfg Config
	srv *transport.Server
	// level is the node's height from the last completed round (see
	// levelFrom); read by tests and reports.
	level int
}

// New listens on addr for child uploads and forwards to cfg.Parent.
func New(addr string, cfg Config) (*Aggregator, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("aggtree: listen: %w", err)
	}
	agg, err := NewListener(ln, cfg)
	if err != nil {
		ln.Close()
		return nil, err
	}
	return agg, nil
}

// NewListener builds an aggregator on an existing child-facing listener
// (fault-injection tests interpose faultnet.Listener here).
func NewListener(ln net.Listener, cfg Config) (*Aggregator, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("aggtree: aggregator needs an id")
	}
	if cfg.Parent == "" {
		return nil, fmt.Errorf("aggtree: aggregator %s needs a parent address", cfg.ID)
	}
	if cfg.RepBudget < 0 {
		return nil, fmt.Errorf("aggtree: negative rep budget %d", cfg.RepBudget)
	}
	srv, err := transport.NewServerListener(ln, cfg.Expect, cfg.Cluster, cfg.Timeout)
	if err != nil {
		return nil, err
	}
	srv.SetMaxUploadBytes(cfg.MaxUploadBytes)
	return &Aggregator{cfg: cfg, srv: srv}, nil
}

// Addr returns the child-facing listen address.
func (a *Aggregator) Addr() string { return a.srv.Addr() }

// Close releases the child-facing listener.
func (a *Aggregator) Close() error { return a.srv.Close() }

// SetOnGlobal registers a sink for the model each round broadcasts — the
// root's global model, not the regional one, since the forward exchange
// happens before publication. Set once, before the first round.
func (a *Aggregator) SetOnGlobal(fn func(*model.GlobalModel)) { a.srv.SetOnGlobal(fn) }

// Level returns the node's height in the tree as observed in the last
// completed round: 1 when all children were plain sites, one more than the
// highest child aggregator otherwise. 0 before the first round.
func (a *Aggregator) Level() int { return a.level }

// RunRound drives one complete tree round at this node: collect child
// models under the quorum policy, merge them (regional dbdc.GlobalStep),
// condense the regional model, upload it to the parent with the provenance
// section attached, and broadcast the parent's reply — the root global
// model — to every usable child. The returned model is the root's; the
// report is this node's child round, with ForwardDuration covering the
// condense-and-forward exchange.
//
// Failure behavior: a parent that is unreachable (after the client's retry
// policy) or answers with MsgError fails the round; the children then
// receive a MsgError and handle it like any flat-round failure. A quorum
// miss at this node never reaches the parent — the subtree just drops out
// of the parent's round and is reported there by name.
func (a *Aggregator) RunRound() (*model.GlobalModel, *transport.RoundReport, error) {
	roundStart := time.Now()
	opts := transport.RoundOptions{
		Quorum:        a.cfg.Quorum,
		AcceptTimeout: a.cfg.AcceptTimeout,
		ExpectedSites: a.cfg.ExpectedSites,
		Finalize: func(regional *model.GlobalModel, report *transport.RoundReport) (*model.GlobalModel, error) {
			return a.forward(regional, report, roundStart)
		},
	}
	return a.srv.RunRoundOpts(opts)
}

// forward is the Finalize hook: condense the regional model and exchange
// it with the parent for the root's global model.
func (a *Aggregator) forward(regional *model.GlobalModel, report *transport.RoundReport, roundStart time.Time) (*model.GlobalModel, error) {
	condenseStart := time.Now()
	condCfg := a.cfg.Cluster
	condCfg.RepBudget = a.cfg.RepBudget
	outcome, err := dbdc.CondenseGlobal(a.cfg.ID, regional, condCfg)
	if err != nil {
		return nil, err
	}
	// The condensed model's NumObjects reports the region's true object
	// cardinality, summed over the usable child models, so compression
	// statistics at the parent stay meaningful across levels.
	outcome.SetNumObjects(report.ObjectsTotal)
	condenseDur := time.Since(condenseStart)

	a.level = levelFrom(report)
	agg := transport.AggLevel{
		Level:              a.level,
		SitesExpected:      report.Expect,
		SitesOK:            report.OK,
		SitesFailed:        report.Failed,
		RegionalClusters:   regional.NumClusters,
		Objects:            report.ObjectsTotal,
		RoundDuration:      time.Since(roundStart),
		GlobalStepDuration: report.GlobalStepDuration,
		CondenseDuration:   condenseDur,
	}
	for _, site := range report.Sites {
		if site.OK {
			agg.Sources = append(agg.Sources, transport.AggSource{SiteID: site.SiteID, Reps: site.Reps})
		}
	}

	client := &transport.Client{
		Addr:    a.cfg.Parent,
		Timeout: a.cfg.Timeout,
		Retry:   a.cfg.Retry,
		Dial:    a.cfg.Dial,
		AppendSections: func(dst []byte) []byte {
			return transport.AppendAggLevelSection(dst, agg)
		},
	}
	// The "site phases" of an interior node map naturally: its clustering
	// phase is the regional global step, its condensation the
	// GlobalModel→LocalModel conversion.
	phases := &transport.SitePhases{
		Workers:  1,
		Cluster:  report.GlobalStepDuration,
		Condense: condenseDur,
	}
	var root *model.GlobalModel
	if a.cfg.RepBudget > 0 {
		root, _, _, err = client.SendModelBudgeted(outcome, phases)
	} else {
		root, _, err = client.SendModelTimed(outcome.Model, phases)
	}
	if err != nil {
		return nil, fmt.Errorf("aggtree: %s forwarding to %s: %w", a.cfg.ID, a.cfg.Parent, err)
	}
	return root, nil
}

// levelFrom derives the node's tree height from its child round: one more
// than the highest child aggregator level, 1 when every child was a plain
// site.
func levelFrom(report *transport.RoundReport) int {
	level := 1
	for _, site := range report.Sites {
		if site.Agg != nil && site.Agg.Level+1 > level {
			level = site.Agg.Level + 1
		}
	}
	return level
}
