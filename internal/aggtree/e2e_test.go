package aggtree

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/model"
	"github.com/dbdc-go/dbdc/internal/serve"
	"github.com/dbdc-go/dbdc/internal/transport"
)

// TestTreeE2E drives a full 2-level aggregation tree over loopback TCP:
//
//	root (expect 3, quorum 2) ← agg-a (expect 3, quorum 2) ← site-a0, site-a1, [site-a2 dead]
//	                          ← agg-b (expect 2)           ← site-b0, site-b1
//	                          ← [agg-c dead in round 1]
//
// Round 1 must complete despite the dead site AND the dead leaf aggregator,
// publish the root model into the serving registry, and relabel every live
// site exactly like the flat in-process run over the same site partition
// (the documented budget-off tolerance: identical partitions, cluster ids
// renamed). Round 2 revives agg-c with a fifth site and must hot-swap the
// registry to version 2 with all three aggregators reporting provenance.
func TestTreeE2E(t *testing.T) {
	ds := data.DatasetA(1500, 11)
	rng := rand.New(rand.NewSource(11))
	part, err := data.PartitionRandom(len(ds.Points), 5, rng)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	sitePts := part.Extract(ds.Points)
	cfg := dbdc.Config{Local: ds.Params, EpsGlobal: 2 * ds.Params.Eps}
	const timeout = 10 * time.Second

	// site-a2 is the dead site: its points simply never show up.
	siteIDs := map[string][]geom.Point{
		"site-a0": sitePts[0],
		"site-a1": sitePts[1],
		"site-b0": sitePts[2],
		"site-b1": sitePts[3],
		"site-c0": sitePts[4],
	}

	root, err := transport.NewServer("127.0.0.1:0", 3, cfg, timeout)
	if err != nil {
		t.Fatalf("root server: %v", err)
	}
	defer root.Close()
	reg := serve.NewRegistry("")
	root.SetOnGlobal(reg.PublishFunc(func(err error) { t.Errorf("publish: %v", err) }))

	newAgg := func(id string, expect, quorum int, sites []string) *Aggregator {
		agg, err := New("127.0.0.1:0", Config{
			ID:            id,
			Parent:        root.Addr(),
			Expect:        expect,
			Quorum:        quorum,
			Cluster:       cfg,
			Timeout:       timeout,
			AcceptTimeout: 1200 * time.Millisecond,
			ExpectedSites: sites,
			Retry:         transport.RetryPolicy{MaxAttempts: 2},
		})
		if err != nil {
			t.Fatalf("aggregator %s: %v", id, err)
		}
		return agg
	}
	aggA := newAgg("agg-a", 3, 2, []string{"site-a0", "site-a1", "site-a2"})
	defer aggA.Close()
	aggB := newAgg("agg-b", 2, 2, []string{"site-b0", "site-b1"})
	defer aggB.Close()

	type aggResult struct {
		id     string
		global *model.GlobalModel
		report *transport.RoundReport
		err    error
	}
	type siteResult struct {
		id     string
		report *transport.SiteReport
		err    error
	}

	runRound := func(aggs map[string]*Aggregator, sites map[string]string, rootOpts transport.RoundOptions) (*model.GlobalModel, *transport.RoundReport, map[string]aggResult, map[string]siteResult) {
		t.Helper()
		var (
			wg        sync.WaitGroup
			mu        sync.Mutex
			aggRes    = make(map[string]aggResult)
			siteRes   = make(map[string]siteResult)
			rootG     *model.GlobalModel
			rootRep   *transport.RoundReport
			rootErr   error
			rootReady = make(chan struct{})
		)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(rootReady)
			rootG, rootRep, rootErr = root.RunRoundOpts(rootOpts)
		}()
		for id, agg := range aggs {
			wg.Add(1)
			go func(id string, agg *Aggregator) {
				defer wg.Done()
				g, rep, err := agg.RunRound()
				mu.Lock()
				aggRes[id] = aggResult{id: id, global: g, report: rep, err: err}
				mu.Unlock()
			}(id, agg)
		}
		for id, aggAddr := range sites {
			wg.Add(1)
			go func(id, addr string) {
				defer wg.Done()
				c := &transport.Client{Addr: addr, Timeout: timeout, Retry: transport.RetryPolicy{MaxAttempts: 3}}
				rep, err := transport.RunSiteClient(c, id, siteIDs[id], cfg)
				mu.Lock()
				siteRes[id] = siteResult{id: id, report: rep, err: err}
				mu.Unlock()
			}(id, aggAddr)
		}
		wg.Wait()
		if rootErr != nil {
			t.Fatalf("root round: %v\n%s", rootErr, rootRep)
		}
		return rootG, rootRep, aggRes, siteRes
	}

	// Round 1: agg-c never connects; agg-a loses site-a2.
	rootG1, rootRep1, aggRes1, siteRes1 := runRound(
		map[string]*Aggregator{"agg-a": aggA, "agg-b": aggB},
		map[string]string{
			"site-a0": aggA.Addr(), "site-a1": aggA.Addr(),
			"site-b0": aggB.Addr(), "site-b1": aggB.Addr(),
		},
		transport.RoundOptions{
			Quorum:        2,
			AcceptTimeout: 5 * time.Second,
			ExpectedSites: []string{"agg-a", "agg-b", "agg-c"},
		},
	)

	if rootRep1.OK != 2 || rootRep1.Failed == 0 {
		t.Fatalf("root round 1: %d ok %d failed, want 2 ok with agg-c failed\n%s",
			rootRep1.OK, rootRep1.Failed, rootRep1)
	}
	for _, id := range []string{"agg-a", "agg-b"} {
		r := aggRes1[id]
		if r.err != nil {
			t.Fatalf("%s round 1: %v", id, r.err)
		}
		if r.global.NumClusters != rootG1.NumClusters {
			t.Errorf("%s broadcast a model with %d clusters, root has %d",
				id, r.global.NumClusters, rootG1.NumClusters)
		}
	}
	// Provenance chained up: the root report names both live aggregators
	// as level-1 interior nodes with their child-round accounting.
	wantAgg := map[string]struct{ expect, ok, failed, sources int }{
		"agg-a": {3, 2, 1, 2},
		"agg-b": {2, 2, 0, 2},
	}
	seen := 0
	for _, site := range rootRep1.Sites {
		if !site.OK {
			if site.SiteID != "agg-c" {
				t.Errorf("unexpected failure in root round 1: %+v", site)
			}
			continue
		}
		want, ok := wantAgg[site.SiteID]
		if !ok {
			t.Errorf("unexpected site %q at the root", site.SiteID)
			continue
		}
		seen++
		a := site.Agg
		if a == nil {
			t.Errorf("%s delivered no provenance section", site.SiteID)
			continue
		}
		if a.Level != 1 || a.SitesExpected != want.expect || a.SitesOK != want.ok ||
			a.SitesFailed != want.failed || len(a.Sources) != want.sources {
			t.Errorf("%s provenance = %s, want level 1 children %d/%d (%d failed, %d sources)",
				site.SiteID, a, want.ok, want.expect, want.failed, want.sources)
		}
		if a.Objects != site.Objects {
			t.Errorf("%s provenance objects %d != model objects %d", site.SiteID, a.Objects, site.Objects)
		}
	}
	if seen != 2 {
		t.Fatalf("root saw %d aggregators, want 2", seen)
	}
	aRep := aggRes1["agg-a"].report
	foundDead := false
	for _, site := range aRep.Sites {
		if site.SiteID == "site-a2" && !site.OK {
			foundDead = true
		}
	}
	if !foundDead {
		t.Errorf("agg-a round 1 did not report the dead site-a2:\n%s", aRep)
	}

	// The registry hot-swapped to the round-1 model.
	if v := reg.Version(); v != 1 {
		t.Fatalf("registry version = %d after round 1, want 1", v)
	}
	snap1 := reg.Current()
	if snap1 == nil || snap1.Global.NumClusters != rootG1.NumClusters {
		t.Fatalf("registry snapshot does not match the root model")
	}

	// Flat reference over the same live sites: every tree-relabeled site
	// must agree exactly (budget off ⇒ identical partitions).
	liveSites := []string{"site-a0", "site-a1", "site-b0", "site-b1"}
	var outcomes []*dbdc.LocalOutcome
	var flatModels []*model.LocalModel
	for _, id := range liveSites {
		o, err := dbdc.LocalStep(id, siteIDs[id], cfg)
		if err != nil {
			t.Fatalf("flat LocalStep %s: %v", id, err)
		}
		outcomes = append(outcomes, o)
		flatModels = append(flatModels, o.Model)
	}
	flatG, err := dbdc.GlobalStep(flatModels, cfg)
	if err != nil {
		t.Fatalf("flat GlobalStep: %v", err)
	}
	if len(flatG.Reps) != len(rootG1.Reps) || flatG.NumClusters != rootG1.NumClusters {
		t.Fatalf("tree root clustered %d reps into %d clusters, flat %d into %d",
			len(rootG1.Reps), rootG1.NumClusters, len(flatG.Reps), flatG.NumClusters)
	}
	var treeLabels, flatLabels cluster.Labeling
	for i, id := range liveSites {
		sr := siteRes1[id]
		if sr.err != nil {
			t.Fatalf("site %s round 1: %v", id, sr.err)
		}
		treeLabels = append(treeLabels, sr.report.Labels...)
		fl, _, err := dbdc.RelabelSite(outcomes[i], flatG)
		if err != nil {
			t.Fatalf("flat RelabelSite %s: %v", id, err)
		}
		flatLabels = append(flatLabels, fl...)
	}
	if err := samePartition(treeLabels, flatLabels); err != nil {
		t.Fatalf("tree relabeling diverges from the flat run: %v", err)
	}

	// Classify through the registry snapshot vs the flat model: same
	// partition of the whole dataset.
	flatCls, err := serve.NewClassifier(flatG, "")
	if err != nil {
		t.Fatalf("flat classifier: %v", err)
	}
	var clsTree, clsFlat cluster.Labeling
	for _, p := range ds.Points {
		ct, err := snap1.Classifier.Classify(p)
		if err != nil {
			t.Fatalf("tree classify: %v", err)
		}
		cf, err := flatCls.Classify(p)
		if err != nil {
			t.Fatalf("flat classify: %v", err)
		}
		clsTree = append(clsTree, ct)
		clsFlat = append(clsFlat, cf)
	}
	if err := samePartition(clsTree, clsFlat); err != nil {
		t.Fatalf("served classification diverges from the flat model: %v", err)
	}

	// Round 2: agg-c comes alive with site-c0; the tree completes fully
	// and the registry hot-swaps to version 2.
	aggC := newAgg("agg-c", 1, 1, []string{"site-c0"})
	defer aggC.Close()
	_, rootRep2, aggRes2, siteRes2 := runRound(
		map[string]*Aggregator{"agg-a": aggA, "agg-b": aggB, "agg-c": aggC},
		map[string]string{
			"site-a0": aggA.Addr(), "site-a1": aggA.Addr(),
			"site-b0": aggB.Addr(), "site-b1": aggB.Addr(),
			"site-c0": aggC.Addr(),
		},
		transport.RoundOptions{
			Quorum:        2,
			AcceptTimeout: 5 * time.Second,
			ExpectedSites: []string{"agg-a", "agg-b", "agg-c"},
		},
	)
	if rootRep2.OK != 3 {
		t.Fatalf("root round 2: %d ok, want 3\n%s", rootRep2.OK, rootRep2)
	}
	for id, r := range aggRes2 {
		if r.err != nil {
			t.Fatalf("%s round 2: %v", id, r.err)
		}
		if r.report.ForwardDuration <= 0 {
			t.Errorf("%s round 2 reported no forward cost", id)
		}
	}
	for id, r := range siteRes2 {
		if r.err != nil {
			t.Fatalf("site %s round 2: %v", id, r.err)
		}
	}
	if v := reg.Version(); v != 2 {
		t.Fatalf("registry version = %d after round 2, want 2 (no hot swap)", v)
	}
	if lvl := aggC.Level(); lvl != 1 {
		t.Errorf("agg-c level = %d, want 1", lvl)
	}
}

// TestTreeParentDownFailsRound: when the parent is unreachable the leaf
// round must fail cleanly — children get a transport error, not a regional
// model masquerading as the global one.
func TestTreeParentDownFailsRound(t *testing.T) {
	ds := data.DatasetA(600, 12)
	rng := rand.New(rand.NewSource(12))
	part, err := data.PartitionRandom(len(ds.Points), 2, rng)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	sitePts := part.Extract(ds.Points)
	cfg := dbdc.Config{Local: ds.Params, EpsGlobal: 2 * ds.Params.Eps}

	// A parent address nothing listens on: reserve a port and close it.
	dead, err := transport.NewServer("127.0.0.1:0", 1, cfg, time.Second)
	if err != nil {
		t.Fatalf("placeholder server: %v", err)
	}
	parentAddr := dead.Addr()
	dead.Close()

	agg, err := New("127.0.0.1:0", Config{
		ID:            "agg-a",
		Parent:        parentAddr,
		Expect:        2,
		Cluster:       cfg,
		Timeout:       2 * time.Second,
		AcceptTimeout: 2 * time.Second,
		Retry:         transport.RetryPolicy{MaxAttempts: 1},
	})
	if err != nil {
		t.Fatalf("aggregator: %v", err)
	}
	defer agg.Close()

	type siteOut struct {
		rep *transport.SiteReport
		err error
	}
	outs := make(chan siteOut, 2)
	for s := 0; s < 2; s++ {
		go func(s int) {
			c := &transport.Client{Addr: agg.Addr(), Timeout: 5 * time.Second}
			rep, err := transport.RunSiteClient(c, fmt.Sprintf("site-%d", s), sitePts[s], cfg)
			outs <- siteOut{rep, err}
		}(s)
	}
	_, _, err = agg.RunRound()
	if err == nil {
		t.Fatal("leaf round succeeded with the parent down")
	}
	for i := 0; i < 2; i++ {
		o := <-outs
		if o.err == nil {
			t.Fatalf("site received a global model although the parent was down: %+v", o.rep.Global)
		}
	}
}
