package aggtree

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/model"
)

// treeFixture is a partitioned dataset-A run: per-site points and local
// outcomes, ready for flat and tree merges.
type treeFixture struct {
	cfg      dbdc.Config
	outcomes []*dbdc.LocalOutcome
	models   []*model.LocalModel
}

func newTreeFixture(t *testing.T, sites int, seed int64) *treeFixture {
	t.Helper()
	ds := data.DatasetA(2000, seed)
	rng := rand.New(rand.NewSource(seed))
	part, err := data.PartitionRandom(len(ds.Points), sites, rng)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	sitePts := part.Extract(ds.Points)
	f := &treeFixture{cfg: dbdc.Config{Local: ds.Params, EpsGlobal: 2 * ds.Params.Eps}}
	for s := 0; s < sites; s++ {
		o, err := dbdc.LocalStep(fmt.Sprintf("site-%02d", s), sitePts[s], f.cfg)
		if err != nil {
			t.Fatalf("LocalStep site %d: %v", s, err)
		}
		f.outcomes = append(f.outcomes, o)
		f.models = append(f.models, o.Model)
	}
	return f
}

// relabelAll relabels every site outcome against the global model and
// concatenates the labels in site order.
func relabelAll(t *testing.T, outcomes []*dbdc.LocalOutcome, g *model.GlobalModel) cluster.Labeling {
	t.Helper()
	var all cluster.Labeling
	for _, o := range outcomes {
		labels, _, err := dbdc.RelabelSite(o, g)
		if err != nil {
			t.Fatalf("RelabelSite %s: %v", o.SiteID, err)
		}
		all = append(all, labels...)
	}
	return all
}

// samePartition reports whether two labelings induce the same partition:
// noise matches noise, and cluster ids map 1:1 in both directions.
func samePartition(a, b cluster.Labeling) error {
	if len(a) != len(b) {
		return fmt.Errorf("length mismatch: %d vs %d", len(a), len(b))
	}
	fwd := make(map[cluster.ID]cluster.ID)
	back := make(map[cluster.ID]cluster.ID)
	for i := range a {
		if (a[i] == cluster.Noise) != (b[i] == cluster.Noise) {
			return fmt.Errorf("object %d: noise mismatch (%d vs %d)", i, a[i], b[i])
		}
		if a[i] == cluster.Noise {
			continue
		}
		if prev, ok := fwd[a[i]]; ok && prev != b[i] {
			return fmt.Errorf("object %d: cluster %d maps to both %d and %d", i, a[i], prev, b[i])
		}
		if prev, ok := back[b[i]]; ok && prev != a[i] {
			return fmt.Errorf("object %d: cluster %d mapped from both %d and %d", i, b[i], prev, a[i])
		}
		fwd[a[i]] = b[i]
		back[b[i]] = a[i]
	}
	return nil
}

// TestMergeTreeMatchesFlat is the tree-equivalence property: with the
// representative budget off, a 2-level and a 3-level tree over the same
// site partition relabel every object exactly like the flat merge, up to
// cluster-id renaming.
func TestMergeTreeMatchesFlat(t *testing.T) {
	f := newTreeFixture(t, 8, 42)
	flatGlobal, flatStats, err := MergeTree(f.models, len(f.models), f.cfg, 0)
	if err != nil {
		t.Fatalf("flat merge: %v", err)
	}
	if flatStats.Depth != 1 || len(flatStats.Levels) != 0 {
		t.Fatalf("flat merge reported depth %d with %d levels", flatStats.Depth, len(flatStats.Levels))
	}
	flatLabels := relabelAll(t, f.outcomes, flatGlobal)

	for _, tc := range []struct {
		fanIn, depth int
	}{{4, 2}, {2, 3}} {
		global, stats, err := MergeTree(f.models, tc.fanIn, f.cfg, 0)
		if err != nil {
			t.Fatalf("fan-in %d: %v", tc.fanIn, err)
		}
		if stats.Depth != tc.depth {
			t.Errorf("fan-in %d: depth = %d, want %d", tc.fanIn, stats.Depth, tc.depth)
		}
		if got := len(global.Reps); got != len(flatGlobal.Reps) {
			t.Errorf("fan-in %d: root clustered %d reps, flat %d (condensation not lossless)",
				tc.fanIn, got, len(flatGlobal.Reps))
		}
		for _, ls := range stats.Levels {
			if ls.RepsIn != ls.RepsOut {
				t.Errorf("fan-in %d: unbudgeted level dropped reps: in=%d out=%d",
					tc.fanIn, ls.RepsIn, ls.RepsOut)
			}
		}
		labels := relabelAll(t, f.outcomes, global)
		if err := samePartition(labels, flatLabels); err != nil {
			t.Errorf("fan-in %d: tree labels diverge from flat: %v", tc.fanIn, err)
		}
	}
}

// TestMergeTreeBudgetShrinks checks that a per-level budget actually caps
// the uplink (RepsOut < RepsIn) while the tree still produces a valid,
// usable model.
func TestMergeTreeBudgetShrinks(t *testing.T) {
	f := newTreeFixture(t, 8, 43)
	global, stats, err := MergeTree(f.models, 4, f.cfg, 2)
	if err != nil {
		t.Fatalf("budgeted merge: %v", err)
	}
	if err := global.Validate(); err != nil {
		t.Fatalf("budgeted tree model invalid: %v", err)
	}
	if len(stats.Levels) != 1 {
		t.Fatalf("expected one interior level, got %d", len(stats.Levels))
	}
	ls := stats.Levels[0]
	if ls.RepsOut >= ls.RepsIn {
		t.Fatalf("budget 2 did not shrink the uplink: in=%d out=%d", ls.RepsIn, ls.RepsOut)
	}
	if stats.RootReps != ls.RepsOut {
		t.Fatalf("root clustered %d reps, level forwarded %d", stats.RootReps, ls.RepsOut)
	}
	labels := relabelAll(t, f.outcomes, global)
	if len(labels) == 0 {
		t.Fatal("no labels")
	}
}

// noiseModel builds an all-noise site outcome (no dense region, zero
// representatives).
func noiseModel(t *testing.T, id string, cfg dbdc.Config, rng *rand.Rand) *dbdc.LocalOutcome {
	t.Helper()
	var pts []geom.Point
	for i := 0; i < 40; i++ {
		pts = append(pts, geom.Point{rng.Float64() * 1e4, rng.Float64() * 1e4})
	}
	o, err := dbdc.LocalStep(id, pts, cfg)
	if err != nil {
		t.Fatalf("LocalStep %s: %v", id, err)
	}
	if len(o.Model.Reps) != 0 {
		t.Fatalf("noise site %s produced %d reps", id, len(o.Model.Reps))
	}
	return o
}

// TestMergeTreeAllNoiseRegion is the interior-node half of the all-noise
// regression: a region whose every site found only noise must not error the
// parent merge — its empty condensed model is skipped and the good regions
// carry the round.
func TestMergeTreeAllNoiseRegion(t *testing.T) {
	f := newTreeFixture(t, 2, 44)
	cfg := f.cfg
	rng := rand.New(rand.NewSource(7))
	models := []*model.LocalModel{
		f.models[0], f.models[1],
		noiseModel(t, "noise-00", cfg, rng).Model,
		noiseModel(t, "noise-01", cfg, rng).Model,
	}
	// fan-in 2 groups contiguously: [good good] [noise noise].
	global, stats, err := MergeTree(models, 2, cfg, 0)
	if err != nil {
		t.Fatalf("merge with an all-noise region: %v", err)
	}
	if stats.Depth != 2 {
		t.Fatalf("depth = %d, want 2", stats.Depth)
	}
	if global.Empty() {
		t.Fatal("good region was lost to the all-noise region")
	}
	flat, _, err := MergeTree(f.models, 2+len(models), cfg, 0)
	if err != nil {
		t.Fatalf("flat merge: %v", err)
	}
	if len(global.Reps) != len(flat.Reps) || global.NumClusters != flat.NumClusters {
		t.Fatalf("tree with noise region: %d reps %d clusters, flat over good sites: %d reps %d clusters",
			len(global.Reps), global.NumClusters, len(flat.Reps), flat.NumClusters)
	}
}

// TestMergeTreeAllNoise: when every site in the tree found only noise the
// root must reproduce the flat empty sentinel, not an error.
func TestMergeTreeAllNoise(t *testing.T) {
	cfg := dbdc.Config{Local: dbscan.Params{Eps: 1.5, MinPts: 4}}
	rng := rand.New(rand.NewSource(8))
	var models []*model.LocalModel
	for i := 0; i < 4; i++ {
		models = append(models, noiseModel(t, fmt.Sprintf("noise-%02d", i), cfg, rng).Model)
	}
	global, stats, err := MergeTree(models, 2, cfg, 0)
	if err != nil {
		t.Fatalf("all-noise tree errored: %v", err)
	}
	if !global.Empty() {
		t.Fatalf("all-noise tree did not produce the empty sentinel: %+v", global)
	}
	if stats.Depth != 2 {
		t.Fatalf("depth = %d, want 2", stats.Depth)
	}
}

// TestMergeTreeArgs covers the argument contract.
func TestMergeTreeArgs(t *testing.T) {
	f := newTreeFixture(t, 2, 45)
	if _, _, err := MergeTree(f.models, 1, f.cfg, 0); err == nil {
		t.Error("fan-in 1 accepted")
	}
	if _, _, err := MergeTree(nil, 2, f.cfg, 0); err == nil {
		t.Error("empty model list accepted")
	}
	if _, _, err := MergeTree(f.models, 2, f.cfg, -1); err == nil {
		t.Error("negative budget accepted")
	}
}
