package aggtree

import (
	"fmt"
	"time"

	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/model"
)

// This file is the in-process mirror of the networked tree: the same
// merge-condense-merge pipeline (regional dbdc.GlobalStep →
// dbdc.CondenseGlobal → parent GlobalStep) run directly over a slice of
// local models, with no sockets. The experiments harness uses it to measure
// hierarchy quality (P^II of tree vs flat) and cost without transport
// noise, and the e2e tests use it as the reference the networked tree must
// agree with.

// LevelStats is the cost and compression accounting of one aggregation
// level of an in-process tree run.
type LevelStats struct {
	// Regions is the number of interior nodes at this level; FanIn the
	// size of each region (in child models).
	Regions int
	FanIn   []int
	// RepsIn is the summed representative count entering the level's
	// regional merges, RepsOut the count forwarded upward after
	// condensation (they differ only under a representative budget).
	RepsIn, RepsOut int
	// GlobalStep and Condense are the level's summed phase costs.
	GlobalStep time.Duration
	Condense   time.Duration
}

// TreeStats describes an in-process tree run level by level.
type TreeStats struct {
	// Depth is the number of GlobalStep layers, root included: 1 is the
	// flat topology, 2 one layer of leaf aggregators, and so on.
	Depth int
	// Levels holds the per-level accounting for the interior levels, in
	// bottom-up order (empty for a flat run).
	Levels []LevelStats
	// RootGlobalStep is the root merge cost, RootReps the representative
	// count it clustered.
	RootGlobalStep time.Duration
	RootReps       int
}

// MergeTree runs the DBDC global step as an aggregation tree over the given
// local models: the models are grouped into contiguous regions of fanIn,
// each region is merged (GlobalStep) and condensed back into one local
// model (CondenseGlobal, capped per regional cluster by repBudget when
// positive), and the condensed models recurse upward until at most fanIn
// remain for the root merge. fanIn < 2 or fewer than one model is an error;
// len(models) ≤ fanIn degenerates to the flat dbdc.GlobalStep (depth 1).
//
// With repBudget 0 the condensation is lossless — every level forwards the
// representatives it merged, unchanged — so the root clusters exactly the
// union of the original site representatives and the tree result equals the
// flat run up to cluster-id renaming. An all-noise region condenses to a
// representative-free model and degrades the parent merge instead of
// failing it; a tree whose every site is noise returns the flat empty
// sentinel.
func MergeTree(models []*model.LocalModel, fanIn int, cfg dbdc.Config, repBudget int) (*model.GlobalModel, *TreeStats, error) {
	if fanIn < 2 {
		return nil, nil, fmt.Errorf("aggtree: fan-in %d < 2", fanIn)
	}
	if len(models) == 0 {
		return nil, nil, fmt.Errorf("aggtree: no local models")
	}
	if repBudget < 0 {
		return nil, nil, fmt.Errorf("aggtree: negative rep budget %d", repBudget)
	}
	condCfg := cfg
	condCfg.RepBudget = repBudget

	stats := &TreeStats{Depth: 1}
	level := models
	for lvl := 1; len(level) > fanIn; lvl++ {
		regions := (len(level) + fanIn - 1) / fanIn
		ls := LevelStats{Regions: regions}
		next := make([]*model.LocalModel, 0, regions)
		for i := 0; i < regions; i++ {
			lo := i * fanIn
			hi := min(lo+fanIn, len(level))
			region := level[lo:hi]
			ls.FanIn = append(ls.FanIn, len(region))
			objects := 0
			for _, m := range region {
				ls.RepsIn += len(m.Reps)
				objects += m.NumObjects
			}
			gsStart := time.Now()
			regional, err := dbdc.GlobalStep(region, cfg)
			ls.GlobalStep += time.Since(gsStart)
			if err != nil {
				return nil, nil, fmt.Errorf("aggtree: level %d region %d: %w", lvl, i, err)
			}
			condStart := time.Now()
			outcome, err := dbdc.CondenseGlobal(fmt.Sprintf("agg-l%d-r%d", lvl, i), regional, condCfg)
			ls.Condense += time.Since(condStart)
			if err != nil {
				return nil, nil, fmt.Errorf("aggtree: level %d region %d: %w", lvl, i, err)
			}
			outcome.SetNumObjects(objects)
			ls.RepsOut += len(outcome.Model.Reps)
			next = append(next, outcome.Model)
		}
		stats.Levels = append(stats.Levels, ls)
		stats.Depth++
		level = next
	}
	for _, m := range level {
		stats.RootReps += len(m.Reps)
	}
	rootStart := time.Now()
	global, err := dbdc.GlobalStep(level, cfg)
	stats.RootGlobalStep = time.Since(rootStart)
	if err != nil {
		return nil, nil, fmt.Errorf("aggtree: root merge: %w", err)
	}
	return global, stats, nil
}
