package distkmeans

import (
	"math"
	"math/rand"
	"testing"

	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/kmeans"
)

func blobs(rng *rand.Rand, centers []geom.Point, perBlob int, spread float64) []geom.Point {
	var pts []geom.Point
	for _, c := range centers {
		for i := 0; i < perBlob; i++ {
			p := make(geom.Point, len(c))
			for d := range p {
				p[d] = c[d] + rng.NormFloat64()*spread
			}
			pts = append(pts, p)
		}
	}
	return pts
}

func split(pts []geom.Point, k int) [][]geom.Point {
	sites := make([][]geom.Point, k)
	for i, p := range pts {
		sites[i%k] = append(sites[i%k], p)
	}
	return sites
}

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Run(nil, 0, rng, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Run([][]geom.Point{{{0, 0}}}, 5, rng, 0); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := RunFrom(nil, nil, 0); err == nil {
		t.Error("no centroids accepted")
	}
	if _, err := RunFrom([][]geom.Point{{{0, 0}}}, []geom.Point{{0}, {0, 0}}, 0); err == nil {
		t.Error("dim mismatch accepted")
	}
}

// The headline property of reference [5]: the distributed reduction
// computes exactly what central Lloyd computes from the same start.
func TestMatchesCentralLloyd(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	centers := []geom.Point{{0, 0}, {10, 0}, {5, 9}}
	pts := blobs(rng, centers, 120, 0.8)
	initial, err := kmeans.PlusPlusInit(pts, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	centralRes, err := kmeans.Lloyd(pts, initial, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, numSites := range []int{1, 2, 5} {
		sites := split(pts, numSites)
		distRes, err := RunFrom(sites, initial, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !distRes.Converged {
			t.Fatalf("sites=%d: did not converge", numSites)
		}
		for j := range centralRes.Centroids {
			if (geom.Euclidean{}).Distance(centralRes.Centroids[j], distRes.Centroids[j]) > 1e-9 {
				t.Fatalf("sites=%d: centroid %d differs: %v vs %v",
					numSites, j, distRes.Centroids[j], centralRes.Centroids[j])
			}
		}
		if math.Abs(centralRes.SSQ-distRes.SSQ) > 1e-6*(1+centralRes.SSQ) {
			t.Fatalf("sites=%d: SSQ differs: %v vs %v", numSites, distRes.SSQ, centralRes.SSQ)
		}
		// Assignments agree in site-split order.
		idx := 0
		for s := range sites {
			for i := range sites[s] {
				// sites were filled round-robin: reconstruct original index.
				orig := i*numSites + s
				_ = idx
				if centralRes.Assign[orig] != distRes.Assign[s][i] {
					t.Fatalf("sites=%d: assignment of object %d differs", numSites, orig)
				}
			}
		}
	}
}

func TestBytesAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := blobs(rng, []geom.Point{{0, 0}, {8, 8}}, 100, 0.5)
	sites := split(pts, 4)
	res, err := Run(sites, 2, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesPerRound <= 0 || res.Rounds < 1 {
		t.Fatalf("bad accounting: %d bytes/round, %d rounds", res.BytesPerRound, res.Rounds)
	}
	if res.BytesExchanged() != res.BytesPerRound*res.Rounds {
		t.Fatal("BytesExchanged inconsistent")
	}
	// Down: 4 sites × 2 centroids × 2 dims × 8B; up: 4 × (2×2×8 + 2×8).
	want := 4*2*2*8 + 4*(2*2*8+2*8)
	if res.BytesPerRound != want {
		t.Fatalf("BytesPerRound = %d, want %d", res.BytesPerRound, want)
	}
}

func TestEmptySitesTolerated(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := blobs(rng, []geom.Point{{0, 0}, {6, 6}}, 50, 0.4)
	sites := [][]geom.Point{nil, pts, nil}
	res, err := Run(sites, 2, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 2 || !res.Converged {
		t.Fatalf("unexpected result: %+v", res)
	}
}

func TestStrandedCentroidStaysFinite(t *testing.T) {
	// Second centroid starts far away and captures nothing.
	pts := []geom.Point{{0, 0}, {0.1, 0}, {0.2, 0}}
	res, err := RunFrom([][]geom.Point{pts}, []geom.Point{{0, 0}, {1e6, 1e6}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Centroids {
		if !c.IsFinite() {
			t.Fatalf("non-finite centroid %v", c)
		}
	}
}
