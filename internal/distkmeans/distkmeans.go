// Package distkmeans implements the distributed k-means of Dhillon and
// Modha (reference [5] of the DBDC paper): the server broadcasts k
// centroids, every site assigns its objects to the nearest centroid and
// returns per-centroid partial sums and counts, and the server reduces
// them into new centroids until convergence. The result matches central
// Lloyd on the union of the data whenever no cluster empties (the
// empty-cluster repair necessarily differs: a stranded centroid stays in
// place because no site locally knows the globally farthest point). The
// package exists
// as the second comparator of the DBDC evaluation, with per-round
// transmission accounting showing the iterative cost DBDC's single round
// avoids.
package distkmeans

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/kmeans"
)

// Result is the outcome of a distributed k-means run.
type Result struct {
	// Centroids are the final cluster centers.
	Centroids []geom.Point
	// Assign maps each site's objects to centroid indexes, per site.
	Assign [][]int
	// Rounds is the number of broadcast/reduce iterations executed.
	Rounds int
	// Converged reports whether the assignment reached a fixed point.
	Converged bool
	// BytesPerRound is the transmission cost of one iteration: centroids
	// down to every site plus partial sums and counts back up.
	BytesPerRound int
	// SSQ is the final summed squared distance.
	SSQ float64
}

// BytesExchanged is the total transmission cost of the run.
func (r *Result) BytesExchanged() int { return r.Rounds * r.BytesPerRound }

// Run executes distributed k-means over the sites with initial centroids
// chosen by k-means++ over the first site's data (any site can seed — the
// algorithm's fixed point does not depend on who seeds, only its basin
// does). maxIter <= 0 selects the kmeans package default.
func Run(sites [][]geom.Point, k int, rng *rand.Rand, maxIter int) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("distkmeans: k = %d", k)
	}
	if maxIter <= 0 {
		maxIter = kmeans.DefaultMaxIterations
	}
	var total int
	var dim int
	var seedSite []geom.Point
	for _, pts := range sites {
		total += len(pts)
		if len(pts) > 0 {
			if dim == 0 {
				dim = pts[0].Dim()
			}
			if seedSite == nil {
				seedSite = pts
			}
		}
	}
	if total < k {
		return nil, fmt.Errorf("distkmeans: %d objects for k = %d", total, k)
	}
	var initial []geom.Point
	if len(seedSite) >= k {
		var err error
		initial, err = kmeans.PlusPlusInit(seedSite, k, rng)
		if err != nil {
			return nil, err
		}
	} else {
		// The seeding site alone is too small: pool a minimal sample.
		var pool []geom.Point
		for _, pts := range sites {
			pool = append(pool, pts...)
		}
		var err error
		initial, err = kmeans.PlusPlusInit(pool, k, rng)
		if err != nil {
			return nil, err
		}
	}
	return RunFrom(sites, initial, maxIter)
}

// RunFrom executes distributed k-means from the given initial centroids.
func RunFrom(sites [][]geom.Point, initial []geom.Point, maxIter int) (*Result, error) {
	k := len(initial)
	if k == 0 {
		return nil, fmt.Errorf("distkmeans: no initial centroids")
	}
	if maxIter <= 0 {
		maxIter = kmeans.DefaultMaxIterations
	}
	dim := initial[0].Dim()
	centroids := make([]geom.Point, k)
	for i, c := range initial {
		if c.Dim() != dim {
			return nil, fmt.Errorf("distkmeans: centroid %d dimension mismatch", i)
		}
		centroids[i] = c.Clone()
	}
	res := &Result{
		Centroids: centroids,
		Assign:    make([][]int, len(sites)),
		// Down: k centroids of dim float64 to every site. Up: per site, k
		// partial sums (dim float64) plus k counts (8 bytes each).
		BytesPerRound: len(sites)*k*dim*8 + len(sites)*(k*dim*8+k*8),
	}
	for s, pts := range sites {
		res.Assign[s] = make([]int, len(pts))
		for i := range res.Assign[s] {
			res.Assign[s][i] = -1
		}
	}
	for iter := 0; iter < maxIter; iter++ {
		res.Rounds = iter + 1
		changed := false
		// Site-local assignment and partial reduction.
		sums := make([]geom.Point, k)
		counts := make([]int, k)
		for j := range sums {
			sums[j] = make(geom.Point, dim)
		}
		for s, pts := range sites {
			for i, p := range pts {
				best, bestDist := -1, math.Inf(1)
				for j, c := range centroids {
					if d := geom.SquaredEuclidean(p, c); d < bestDist {
						best, bestDist = j, d
					}
				}
				if res.Assign[s][i] != best {
					res.Assign[s][i] = best
					changed = true
				}
				counts[best]++
				for d := 0; d < dim; d++ {
					sums[best][d] += p[d]
				}
			}
		}
		// Server-side reduction.
		for j := range centroids {
			if counts[j] == 0 {
				continue // keep the stranded centroid where it is
			}
			inv := 1 / float64(counts[j])
			c := make(geom.Point, dim)
			for d := 0; d < dim; d++ {
				c[d] = sums[j][d] * inv
			}
			centroids[j] = c
		}
		if !changed {
			res.Converged = true
			break
		}
	}
	var ssq float64
	for s, pts := range sites {
		for i, p := range pts {
			ssq += geom.SquaredEuclidean(p, centroids[res.Assign[s][i]])
		}
	}
	res.SSQ = ssq
	return res, nil
}
