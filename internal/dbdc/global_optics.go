package dbdc

import (
	"fmt"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/model"
	"github.com/dbdc-go/dbdc/internal/optics"
)

// OpticsOrderer implements the extension Section 6 of the paper discusses:
// instead of one DBSCAN run at a fixed Eps_global, the server computes an
// OPTICS ordering over all representatives once and can then extract the
// global model for any Eps_global cut up to epsMax without re-clustering,
// letting the analyst sweep the parameter "without running the clustering
// algorithm again and again".
type OpticsOrderer struct {
	reps         []model.GlobalRepresentative
	ordering     *optics.Result
	minPtsGlobal int
	epsMax       float64
}

// NewOpticsOrderer pools the representatives of all local models and
// computes their OPTICS ordering with generating radius epsMax. Zero
// selects the diagonal of the representatives' bounding box: every
// cluster-to-cluster jump then shows as a finite reachability, which the
// density-gap search of SuggestCut depends on.
func NewOpticsOrderer(models []*model.LocalModel, cfg Config, epsMax float64) (*OpticsOrderer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	reps, _, err := collectReps(models)
	if err != nil {
		return nil, err
	}
	pts := make([]geom.Point, len(reps))
	for i, r := range reps {
		pts[i] = r.Point
	}
	if epsMax == 0 && len(pts) > 0 {
		bounds := geom.BoundingRect(pts)
		epsMax = (geom.Euclidean{}).Distance(bounds.Min, bounds.Max)
	}
	if epsMax == 0 {
		epsMax = cfg.Local.Eps
	}
	idx, err := buildPointIndex(cfg.Index, pts, epsMax)
	if err != nil {
		return nil, err
	}
	ordering, err := optics.Run(idx, dbscan.Params{Eps: epsMax, MinPts: cfg.MinPtsGlobal})
	if err != nil {
		return nil, err
	}
	return &OpticsOrderer{
		reps:         reps,
		ordering:     ordering,
		minPtsGlobal: cfg.MinPtsGlobal,
		epsMax:       epsMax,
	}, nil
}

// EpsMax returns the generating radius; cuts above it are rejected.
func (o *OpticsOrderer) EpsMax() float64 { return o.epsMax }

// Reachabilities exposes the reachability plot of the representatives, the
// artifact an analyst would inspect to choose the cut.
func (o *OpticsOrderer) Reachabilities() []float64 { return o.ordering.Reachabilities() }

// Extract derives the global model at the given Eps_global cut. Like
// GlobalStep, representatives left unmerged become singleton clusters.
func (o *OpticsOrderer) Extract(epsCut float64) (*model.GlobalModel, error) {
	if epsCut <= 0 || epsCut > o.epsMax {
		return nil, fmt.Errorf("dbdc: eps cut %v outside (0, %v]", epsCut, o.epsMax)
	}
	labels := o.ordering.ExtractDBSCAN(epsCut)
	reps := make([]model.GlobalRepresentative, len(o.reps))
	copy(reps, o.reps)
	next := cluster.ID(labels.NumClusters())
	// Renumber so extracted ids are dense before appending singletons.
	labels = labels.Canonicalize()
	ids := make(map[cluster.ID]bool)
	for i := range reps {
		id := labels[i]
		if id == cluster.Noise {
			id = next
			next++
		}
		reps[i].GlobalCluster = id
		ids[id] = true
	}
	return &model.GlobalModel{
		EpsGlobal:    epsCut,
		MinPtsGlobal: o.minPtsGlobal,
		Reps:         reps,
		NumClusters:  len(ids),
	}, nil
}

// globalStepAuto implements Config.EpsGlobalAuto: order the representatives
// with OPTICS and extract at the widest density gap. When the gap search
// fails (too few representatives), it falls back to the max-ε_R default.
func globalStepAuto(models []*model.LocalModel, cfg Config) (*model.GlobalModel, error) {
	base := cfg
	base.EpsGlobalAuto = false
	ord, err := NewOpticsOrderer(models, base, 0)
	if err != nil {
		return nil, err
	}
	cut, err := ord.SuggestCut(cfg.MinPtsGlobal)
	if err != nil || cut <= 0 {
		return GlobalStep(models, base)
	}
	return ord.Extract(cut)
}

// SuggestCut proposes an Eps_global from the reachability plot of the
// representatives: the midpoint of the widest density gap (see
// optics.Result.SuggestCut). An alternative to the max-ε_R default when
// the analyst wants the data, not a rule of thumb, to pick the threshold.
func (o *OpticsOrderer) SuggestCut(minClusterSize int) (float64, error) {
	return o.ordering.SuggestCut(minClusterSize)
}
