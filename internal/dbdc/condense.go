package dbdc

import (
	"fmt"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/model"
)

// CondenseGlobal turns a regional global model back into a site-shaped
// local model — the interior-node step of the hierarchical aggregation tree
// (docs/hierarchy.md). A leaf aggregator runs GlobalStep over its region's
// site models, then condenses the merged result with this function and
// uploads it to its parent exactly like a site would: every global
// representative becomes a local-model representative whose LocalCluster is
// its regional global cluster id, so the regional clustering rides upward
// in-band (stable cluster-id provenance) and the parent needs zero new
// frame types on the wire.
//
// Eps propagation across levels: the condensed model's EpsLocal is the
// regional EpsGlobal, so a parent that derives its own Eps_global from the
// maximum specific ε-range (the paper's default) sees radii consistent with
// what the region actually merged at. The representatives keep their
// original specific ε-ranges untouched — with an unbudgeted condensation
// the parent therefore clusters the exact union of the region's site
// representatives, which is what makes a 2-level tree over the same site
// partition equivalent to the flat run up to cluster-id renaming.
//
// The all-noise region (g.Empty(): EpsGlobal 0, no representatives) is
// condensed into a valid, representative-free local model whose EpsLocal
// falls back to cfg.Local.Eps — the sentinel's zero radius must not leak
// into a field Validate requires positive. The parent's GlobalStep skips
// representative-free models, so an all-noise region degrades the tree
// round instead of erroring it.
//
// cfg.RepBudget > 0 caps the condensed model through the established
// dbscan.BudgetScor path (greedy coverage-maximizing selection over the
// regional clusters), and the returned outcome supports BudgetedModel
// re-derivation, so each tree level can negotiate its own uplink cap with
// its parent exactly like a budgeted site does.
func CondenseGlobal(siteID string, g *model.GlobalModel, cfg Config) (*LocalOutcome, error) {
	if siteID == "" {
		return nil, fmt.Errorf("dbdc: condensing without an aggregator id")
	}
	if g == nil {
		return nil, fmt.Errorf("dbdc: condensing a nil global model")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("dbdc: condensing invalid global model: %w", err)
	}
	cfg = cfg.withDefaults()
	// Condensed models are always REP_Scor-shaped: the "objects" are the
	// region's representatives themselves, already condensed once at the
	// site level; re-refining them with k-means would move points that are
	// the provenance anchors of the regional clusters.
	cfg.Model = model.RepScor
	if !g.Empty() {
		// Eps propagation: the level below merged at EpsGlobal, so that is
		// this model's "local" radius on the parent's wire.
		cfg.Local = dbscan.Params{Eps: g.EpsGlobal, MinPts: g.MinPtsGlobal}
	}

	pts := make([]geom.Point, len(g.Reps))
	res := &dbscan.Result{
		Params:      cfg.Local,
		Labels:      cluster.NewLabeling(len(g.Reps)),
		Core:        make([]bool, len(g.Reps)),
		Scor:        make(map[cluster.ID][]int),
		SpecificEps: make(map[int]float64, len(g.Reps)),
	}
	for i, r := range g.Reps {
		pts[i] = r.Point
		// Every representative is a specific core of its regional cluster:
		// it was selected as (or refined from) a specific core one level
		// down, and its ε-range is exactly the area it answers for.
		res.Labels[i] = r.GlobalCluster
		res.Core[i] = true
		res.Scor[r.GlobalCluster] = append(res.Scor[r.GlobalCluster], i)
		res.SpecificEps[i] = r.Eps
	}

	m, stats, err := buildLocalModel(siteID, pts, res, cfg, cfg.RepBudget)
	if err != nil {
		return nil, err
	}
	// NumObjects counts representatives here, not the objects they stand
	// for: the aggregator does not see raw objects. Callers that know the
	// region's true cardinality (the transport round report sums the site
	// models' NumObjects) overwrite it for the compression statistics.
	return &LocalOutcome{
		SiteID:     siteID,
		Points:     pts,
		Clustering: res,
		Model:      m,
		RepBudget:  cfg.RepBudget,
		Budget:     stats,
		cfg:        cfg,
	}, nil
}

// SetNumObjects records the true object cardinality behind a condensed
// model (the sum of the region's site-model NumObjects), which the
// representative-fraction statistics report. The transmitted model is
// updated in place; a later BudgetedModel re-derivation keeps the value.
func (o *LocalOutcome) SetNumObjects(n int) {
	if n < 0 {
		return
	}
	o.numObjects = n
	if o.Model != nil {
		o.Model.NumObjects = n
	}
}
