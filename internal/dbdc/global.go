package dbdc

import (
	"fmt"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/model"
)

// GlobalStep performs step 3 of DBDC on the server: it merges the local
// models by clustering the union of all representatives with DBSCAN using
// MinPts_global (default 2) and Eps_global (default: the maximum specific
// ε-range over all representatives, which is generally close to
// 2·Eps_local — Section 6). Representatives that merge with nothing keep a
// singleton global cluster of their own, because every representative
// already stands for a cluster region on its site.
func GlobalStep(models []*model.LocalModel, cfg Config) (*model.GlobalModel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if cfg.EpsGlobalAuto {
		return globalStepAuto(models, cfg)
	}
	reps, maxEps, err := collectReps(models)
	if err != nil {
		return nil, err
	}
	epsGlobal := cfg.EpsGlobal
	if epsGlobal == 0 {
		epsGlobal = maxEps
	}
	if epsGlobal == 0 {
		// No representatives at all (every site found only noise): return
		// the documented all-noise sentinel — Reps nil, NumClusters 0,
		// EpsGlobal 0 (model.GlobalModel.Empty). No clustering happened,
		// so no radius is invented for sites to relabel against; Relabel
		// handles the sentinel explicitly by keeping every object noise.
		return &model.GlobalModel{
			EpsGlobal:    0,
			MinPtsGlobal: cfg.MinPtsGlobal,
		}, nil
	}
	pts := make([]geom.Point, len(reps))
	for i, r := range reps {
		pts[i] = r.Point
	}
	idx, err := buildPointIndex(cfg.Index, pts, epsGlobal)
	if err != nil {
		return nil, err
	}
	// SiteWorkers applies to the server's merge clustering too: with more
	// than one worker the run takes dbscan.RunParallel, which shards the
	// representative set spatially when the index is store-backed (the
	// aggtree interior nodes run this step per region, so the parallelism
	// matters at scale).
	res, err := dbscan.Run(idx, dbscan.Params{Eps: epsGlobal, MinPts: cfg.MinPtsGlobal}, dbscan.Options{Workers: cfg.SiteWorkers})
	if err != nil {
		return nil, err
	}
	// Merged representatives take their DBSCAN cluster id; unmerged ones
	// (noise under MinPts_global) each become a singleton global cluster.
	next := cluster.ID(res.NumClusters())
	ids := make(map[cluster.ID]bool)
	for i := range reps {
		id := res.Labels[i]
		if id == cluster.Noise {
			id = next
			next++
		}
		reps[i].GlobalCluster = id
		ids[id] = true
	}
	return &model.GlobalModel{
		EpsGlobal:    epsGlobal,
		MinPtsGlobal: cfg.MinPtsGlobal,
		Reps:         reps,
		NumClusters:  len(ids),
	}, nil
}

// collectReps flattens and validates the local models, returning the pooled
// representatives and the largest specific ε-range seen.
func collectReps(models []*model.LocalModel) ([]model.GlobalRepresentative, float64, error) {
	var reps []model.GlobalRepresentative
	var maxEps float64
	for _, m := range models {
		if m == nil {
			continue
		}
		if err := m.Validate(); err != nil {
			return nil, 0, fmt.Errorf("dbdc: rejecting local model: %w", err)
		}
		if e := m.MaxEps(); e > maxEps {
			maxEps = e
		}
		for _, r := range m.Reps {
			reps = append(reps, model.GlobalRepresentative{
				Representative: r,
				SiteID:         m.SiteID,
				GlobalCluster:  cluster.Noise,
			})
		}
	}
	return reps, maxEps, nil
}
