package dbdc

import (
	"fmt"
	"math"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
	"github.com/dbdc-go/dbdc/internal/model"
)

// RepSelector is the deterministic representative-choice rule of Section 7
// — "o ∈ N_{ε_r}(r) ⇒ o takes r's global cluster id, the nearest r wins" —
// packaged as a reusable component. Relabel (step 4 of a DBDC round) and
// the online classifier of internal/serve both go through this one type,
// so the batch relabeling of training points and the serving-time
// classification of arbitrary points cannot drift apart.
//
// The rule, spelled out:
//
//  1. Candidate generation: a range query over the representative points
//     with radius max ε_r (the largest specific ε-range of the model) —
//     every representative whose own range could cover the query point is
//     within that radius.
//  2. Per-candidate filter: candidate r covers o iff dist(o, r) ≤ ε_r.
//     The comparison runs in squared space (d² ≤ ε_r²) via the
//     geom.SquaredMetric fast path, which is exact for non-negative
//     values.
//  3. Choice: among the covering representatives the nearest one wins;
//     exact distance ties break toward the lowest representative index in
//     GlobalModel.Reps order. The tie rule makes the outcome independent
//     of the (unspecified) range-query result order, so every index kind
//     classifies identically.
//  4. No covering representative ⇒ noise.
//
// A RepSelector is immutable after construction and safe for concurrent
// readers, matching the underlying index contract.
type RepSelector struct {
	reps   []model.GlobalRepresentative
	epsSq  []float64 // per-representative ε_r², index-aligned with reps
	maxEps float64
	dim    int
	idx    index.Index
	// store holds the representative points in one flat backing array,
	// row-aligned with reps. The candidate filter of SelectInto runs on the
	// strided store kernel (bit-identical to sq.DistanceSq — same operand
	// and summation order) so classification never chases per-rep slice
	// headers.
	store *geom.Store
}

// NewRepSelector builds the selector for a global model over the given
// spatial index kind (empty selects the kd-tree, the historical Relabel
// index). The empty global model — the all-noise sentinel — yields a
// selector that classifies everything as noise; a structurally broken
// model (e.g. representatives of mixed dimensionality) returns an error.
func NewRepSelector(global *model.GlobalModel, kind index.Kind) (*RepSelector, error) {
	s := &RepSelector{}
	if global.Empty() {
		return s, nil
	}
	if kind == "" {
		kind = index.KindKDTree
	}
	s.reps = global.Reps
	s.epsSq = make([]float64, len(global.Reps))
	repPts := make([]geom.Point, len(global.Reps))
	for i, r := range global.Reps {
		repPts[i] = r.Point
		s.epsSq[i] = r.Eps * r.Eps
		if r.Eps > s.maxEps {
			s.maxEps = r.Eps
		}
	}
	s.dim = repPts[0].Dim()
	for i, p := range repPts {
		if p.Dim() != s.dim {
			// The index builders panic on mixed dimensionality (hoisted
			// hot-path guard); validate here so library callers get an
			// error instead.
			return nil, fmt.Errorf("dbdc: relabel: indexing %d global representatives: representative %d has dimension %d, want %d",
				len(global.Reps), i, p.Dim(), s.dim)
		}
	}
	metric := geom.Euclidean{}
	// Pack the representative points into one flat store (validated above,
	// so FromPoints cannot fail on dimensionality) and bulk-load the index
	// from it: range queries and the candidate filter both run on the
	// strided kernels.
	st, err := geom.FromPoints(repPts)
	if err != nil {
		return nil, fmt.Errorf("dbdc: relabel: indexing %d global representatives: %w",
			len(global.Reps), err)
	}
	idx, err := index.BuildStore(kind, st, metric, s.maxEps)
	if err != nil {
		return nil, fmt.Errorf("dbdc: relabel: indexing %d global representatives: %w",
			len(global.Reps), err)
	}
	s.idx = idx
	s.store = st
	return s, nil
}

// Empty reports whether the selector was built from the all-noise sentinel
// (every classification returns noise).
func (s *RepSelector) Empty() bool { return s.idx == nil }

// Dim returns the dimensionality of the representative points, 0 for the
// empty selector.
func (s *RepSelector) Dim() int { return s.dim }

// NumReps returns the number of representatives behind the selector.
func (s *RepSelector) NumReps() int { return len(s.reps) }

// MaxEps returns the candidate-generation radius max ε_r.
func (s *RepSelector) MaxEps() float64 { return s.maxEps }

// RepScratch holds the reusable per-caller buffers of the selection hot
// path: the candidate ids of the range query and the distance block of the
// batched filter. Zero value ready to use; one instance per goroutine
// (Classifier pools them, Relabel keeps one per worker).
type RepScratch struct {
	ids  []int
	dist []float64
}

// SelectInto classifies one point under the representative-choice rule,
// reusing the scratch buffers across calls. The candidate filter is
// batched: the range query collects the candidate representatives, one
// strided kernel sweep computes every candidate distance (bit-identical to
// the historical per-candidate DistanceSqTo — the same shared kernel body,
// same operand order), and the choice folds over the distance block in
// candidate order, so the winner and its tie-breaking are unchanged. The
// query point must have the selector's dimensionality; Select validates,
// SelectInto is the trusted hot path.
func (s *RepSelector) SelectInto(p geom.Point, sc *RepScratch) cluster.ID {
	if s.idx == nil {
		return cluster.Noise
	}
	sc.ids = index.RangeInto(s.idx, p, s.maxEps, sc.ids)
	cand := sc.ids
	if len(cand) == 0 {
		return cluster.Noise
	}
	if cap(sc.dist) < len(cand) {
		sc.dist = make([]float64, len(cand)+16)
	}
	dist := s.store.DistanceSqBatch(p, cand, sc.dist[:len(cand)])
	best := cluster.Noise
	bestSq := math.Inf(1)
	bestRep := math.MaxInt
	for k, ri := range cand {
		d2 := dist[k]
		if d2 > s.epsSq[ri] {
			continue // outside r's own ε_r-range
		}
		if d2 < bestSq || (d2 == bestSq && ri < bestRep) {
			best, bestSq, bestRep = s.reps[ri].GlobalCluster, d2, ri
		}
	}
	return best
}

// Select classifies one point, validating its dimensionality first. This
// is the entry point for untrusted (network-supplied) points: a dimension
// mismatch is reported as an error instead of a panic in the distance
// kernel.
func (s *RepSelector) Select(p geom.Point) (cluster.ID, error) {
	if s.idx == nil {
		return cluster.Noise, nil
	}
	if p.Dim() != s.dim {
		return cluster.Noise, fmt.Errorf("dbdc: classify: point has dimension %d, model has %d", p.Dim(), s.dim)
	}
	if !p.IsFinite() {
		return cluster.Noise, fmt.Errorf("dbdc: classify: point has non-finite coordinates")
	}
	var sc RepScratch
	return s.SelectInto(p, &sc), nil
}
