package dbdc

import (
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
)

// buildPointIndex builds the spatial index for a slice of points, routing
// through the flat geom.Store whenever the slice is store-shapeable (same
// dimensionality throughout). A store-backed index answers its range queries
// with the strided store kernels — no per-point slice-header chasing — and
// exposes the store to dbscan via index.StoreOf, which upgrades the whole
// clustering run onto the flat layout. Inputs a store cannot hold (empty, or
// mixed dimensionality) fall back to the slice builder so error and panic
// behavior stay exactly as before.
func buildPointIndex(kind index.Kind, pts []geom.Point, epsHint float64) (index.Index, error) {
	if len(pts) > 0 {
		if st, err := geom.FromPoints(pts); err == nil {
			return index.BuildStore(kind, st, geom.Euclidean{}, epsHint)
		}
	}
	return index.Build(kind, pts, geom.Euclidean{}, epsHint)
}
