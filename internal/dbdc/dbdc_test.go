package dbdc

import (
	"math"
	"math/rand"
	"testing"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/incdbscan"
	"github.com/dbdc-go/dbdc/internal/index"
	"github.com/dbdc-go/dbdc/internal/model"
)

func blob(rng *rand.Rand, cx, cy, spread float64, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{cx + rng.NormFloat64()*spread, cy + rng.NormFloat64()*spread}
	}
	return pts
}

func defaultCfg() Config {
	return Config{Local: dbscan.Params{Eps: 0.5, MinPts: 5}}
}

func TestConfigValidate(t *testing.T) {
	if err := defaultCfg().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := defaultCfg()
	bad.Local.Eps = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad local eps accepted")
	}
	bad = defaultCfg()
	bad.Model = "nope"
	if err := bad.Validate(); err == nil {
		t.Error("bad model kind accepted")
	}
	bad = defaultCfg()
	bad.EpsGlobal = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative EpsGlobal accepted")
	}
}

func TestLocalStepScor(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := append(blob(rng, 0, 0, 0.3, 150), blob(rng, 10, 0, 0.3, 150)...)
	out, err := LocalStep("s1", pts, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if out.Model.NumClusters != 2 {
		t.Fatalf("NumClusters = %d, want 2", out.Model.NumClusters)
	}
	if err := out.Model.Validate(); err != nil {
		t.Fatalf("produced invalid model: %v", err)
	}
	if len(out.Model.Reps) == 0 || len(out.Model.Reps) > 100 {
		t.Fatalf("suspicious representative count %d", len(out.Model.Reps))
	}
	// Every REP_Scor representative is an actual data object.
	for _, r := range out.Model.Reps {
		found := false
		for _, p := range pts {
			if p.Equal(r.Point) {
				found = true
				break
			}
		}
		if !found {
			t.Fatal("REP_Scor representative is not a database object")
		}
	}
}

func TestLocalStepKMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := append(blob(rng, 0, 0, 0.3, 150), blob(rng, 10, 0, 0.3, 150)...)
	cfg := defaultCfg()
	cfg.Model = model.RepKMeans
	out, err := LocalStep("s1", pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Model.Validate(); err != nil {
		t.Fatalf("produced invalid model: %v", err)
	}
	// Same number of representatives as REP_Scor (the paper fixes
	// k = |Scor_C| per cluster).
	scorOut, err := LocalStep("s1", pts, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Model.Reps) != len(scorOut.Model.Reps) {
		t.Fatalf("REP_kMeans has %d reps, REP_Scor %d — must match",
			len(out.Model.Reps), len(scorOut.Model.Reps))
	}
}

// Every cluster member must lie within the ε-range of some representative
// of its own cluster — for both local models.
func TestLocalModelCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := append(blob(rng, 0, 0, 0.5, 200), blob(rng, 6, 3, 0.8, 200)...)
	e := geom.Euclidean{}
	for _, kind := range model.Kinds() {
		cfg := defaultCfg()
		cfg.Model = kind
		out, err := LocalStep("s1", pts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pts {
			id := out.Clustering.Labels[i]
			if id < 0 {
				continue
			}
			covered := false
			for _, r := range out.Model.Reps {
				if r.LocalCluster == id && e.Distance(p, r.Point) <= r.Eps {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("%s: member %d of cluster %d not covered", kind, i, id)
			}
		}
	}
}

func TestLocalStepEmptySite(t *testing.T) {
	out, err := LocalStep("s1", nil, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Model.Reps) != 0 || out.Model.NumClusters != 0 {
		t.Fatal("empty site produced representatives")
	}
}

func TestLocalStepAllNoise(t *testing.T) {
	pts := []geom.Point{{0, 0}, {10, 10}, {20, 20}}
	out, err := LocalStep("s1", pts, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Model.Reps) != 0 {
		t.Fatal("noise-only site produced representatives")
	}
}

// TestFigure4MergeScenario reconstructs Figure 4 of the paper: clusters on
// three sites whose representatives are chained roughly Eps_local apart.
// With Eps_global = Eps_local the chain must NOT merge into one cluster;
// with Eps_global = 2·Eps_local it must.
func TestFigure4MergeScenario(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	eps := 0.5
	// Four dense clumps in a row, 0.9·2·eps apart (so consecutive clump
	// representatives sit within 2·eps but beyond eps of each other).
	gap := 1.8 * eps
	mkClump := func(cx float64) []geom.Point {
		return blob(rng, cx, 0, 0.05, 60)
	}
	sites := []Site{
		{ID: "site1", Points: append(mkClump(0), mkClump(gap)...)},
		{ID: "site2", Points: mkClump(2 * gap)},
		{ID: "site3", Points: mkClump(3 * gap)},
	}
	run := func(epsGlobal float64) *Result {
		cfg := defaultCfg()
		cfg.Local = dbscan.Params{Eps: eps, MinPts: 5}
		cfg.EpsGlobal = epsGlobal
		res, err := Run(sites, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// (VIII): Eps_global = Eps_local is insufficient to merge the chain.
	if res := run(eps); res.Global.NumClusters == 1 {
		t.Fatalf("Eps_global = Eps_local should not merge everything (got %d clusters)",
			res.Global.NumClusters)
	}
	// (IX): Eps_global = 2·Eps_local merges all four clumps into one.
	if res := run(2 * eps); res.Global.NumClusters != 1 {
		t.Fatalf("Eps_global = 2·Eps_local should merge everything, got %d clusters",
			res.Global.NumClusters)
	}
}

// TestFigure5RelabelScenario reconstructs Figure 5: local noise objects
// within the ε-range of another site's representative join that global
// cluster; objects outside every ε-range stay noise.
func TestFigure5RelabelScenario(t *testing.T) {
	// A global model with one representative from "another site".
	global := &model.GlobalModel{
		EpsGlobal:    1,
		MinPtsGlobal: 2,
		NumClusters:  1,
		Reps: []model.GlobalRepresentative{{
			Representative: model.Representative{Point: geom.Point{0, 0}, Eps: 1.0, LocalCluster: 0},
			SiteID:         "other",
			GlobalCluster:  7,
		}},
	}
	pts := []geom.Point{
		{0.5, 0},  // A: inside ε_R3 → adopted
		{0, 0.9},  // B: inside → adopted
		{2.5, 0},  // C: outside → stays noise
	}
	labels, err := Relabel(pts, global)
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != 7 || labels[1] != 7 {
		t.Fatalf("objects in ε-range not adopted: %v", labels)
	}
	if labels[2] != cluster.Noise {
		t.Fatalf("object outside every ε-range adopted: %v", labels)
	}
}

func TestRelabelNearestRepWins(t *testing.T) {
	global := &model.GlobalModel{
		EpsGlobal: 1, MinPtsGlobal: 2, NumClusters: 2,
		Reps: []model.GlobalRepresentative{
			{Representative: model.Representative{Point: geom.Point{0, 0}, Eps: 2, LocalCluster: 0}, SiteID: "a", GlobalCluster: 1},
			{Representative: model.Representative{Point: geom.Point{3, 0}, Eps: 2, LocalCluster: 0}, SiteID: "b", GlobalCluster: 2},
		},
	}
	labels, err := Relabel([]geom.Point{{1, 0}, {2, 0}}, global)
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != 1 || labels[1] != 2 {
		t.Fatalf("nearest representative did not win: %v", labels)
	}
}

func TestRelabelEmpty(t *testing.T) {
	labels, err := Relabel(nil, &model.GlobalModel{EpsGlobal: 1, MinPtsGlobal: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 0 {
		t.Fatal("nonempty labels for empty site")
	}
	labels, err = Relabel([]geom.Point{{0, 0}}, &model.GlobalModel{EpsGlobal: 1, MinPtsGlobal: 2})
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != cluster.Noise {
		t.Fatal("object labelled without any representative")
	}
}

func TestGlobalStepSingletons(t *testing.T) {
	// Two far-apart representatives: no merge, two singleton global
	// clusters — never noise.
	m := &model.LocalModel{
		SiteID: "s1", Kind: model.RepScor, EpsLocal: 0.5, MinPts: 5,
		NumObjects: 10, NumClusters: 2,
		Reps: []model.Representative{
			{Point: geom.Point{0, 0}, Eps: 1, LocalCluster: 0},
			{Point: geom.Point{100, 100}, Eps: 1, LocalCluster: 1},
		},
	}
	g, err := GlobalStep([]*model.LocalModel{m}, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumClusters != 2 {
		t.Fatalf("NumClusters = %d, want 2 singletons", g.NumClusters)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Reps[0].GlobalCluster == g.Reps[1].GlobalCluster {
		t.Fatal("far representatives share a cluster")
	}
}

func TestGlobalStepDefaultEps(t *testing.T) {
	m := &model.LocalModel{
		SiteID: "s1", Kind: model.RepScor, EpsLocal: 0.5, MinPts: 5,
		NumObjects: 10, NumClusters: 1,
		Reps: []model.Representative{
			{Point: geom.Point{0, 0}, Eps: 0.8, LocalCluster: 0},
			{Point: geom.Point{1, 0}, Eps: 0.95, LocalCluster: 0},
		},
	}
	g, err := GlobalStep([]*model.LocalModel{m}, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if g.EpsGlobal != 0.95 {
		t.Fatalf("default EpsGlobal = %v, want max ε_R = 0.95", g.EpsGlobal)
	}
	// The two reps are 1.0 apart > 0.95: two clusters... but wait, 1.0 >
	// 0.95 means no merge.
	if g.NumClusters != 2 {
		t.Fatalf("NumClusters = %d", g.NumClusters)
	}
}

func TestGlobalStepRejectsInvalidModel(t *testing.T) {
	bad := &model.LocalModel{SiteID: "", Kind: model.RepScor, EpsLocal: 1}
	if _, err := GlobalStep([]*model.LocalModel{bad}, defaultCfg()); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestGlobalStepNoModels(t *testing.T) {
	g, err := GlobalStep(nil, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumClusters != 0 || len(g.Reps) != 0 {
		t.Fatal("empty input produced clusters")
	}
}

func TestRunEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// One spatial cluster split across two sites plus one cluster wholly on
	// site 2, plus scattered noise.
	shared := blob(rng, 0, 0, 0.3, 300)
	own := blob(rng, 8, 8, 0.3, 200)
	noise := []geom.Point{{-20, -20}, {30, -10}, {-15, 25}}
	sites := []Site{
		{ID: "a", Points: append(shared[:150:150], noise[0])},
		{ID: "b", Points: append(append(shared[150:], own...), noise[1], noise[2])},
	}
	for _, kind := range model.Kinds() {
		cfg := defaultCfg()
		cfg.Model = kind
		res, err := Run(sites, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Global.NumClusters != 2 {
			t.Fatalf("%s: global clusters = %d, want 2", kind, res.Global.NumClusters)
		}
		// The shared cluster must carry ONE global id across both sites.
		idA := res.Sites["a"].Labels[0]
		idB := res.Sites["b"].Labels[0]
		if idA < 0 || idA != idB {
			t.Fatalf("%s: shared cluster ids differ across sites: %v vs %v", kind, idA, idB)
		}
		// Noise points far from everything stay noise.
		nA := res.Sites["a"].Labels[len(sites[0].Points)-1]
		if nA != cluster.Noise {
			t.Fatalf("%s: distant noise adopted: %v", kind, nA)
		}
		// Bytes accounting present.
		if res.Sites["a"].UplinkBytes <= 0 || res.Sites["a"].DownlinkBytes <= 0 {
			t.Fatalf("%s: missing byte accounting", kind)
		}
		if res.DistributedDuration() <= 0 {
			t.Fatalf("%s: missing timing", kind)
		}
		if res.TotalObjects() != len(sites[0].Points)+len(sites[1].Points) {
			t.Fatalf("%s: TotalObjects wrong", kind)
		}
		if res.TotalRepresentatives() == 0 {
			t.Fatalf("%s: no representatives", kind)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, defaultCfg()); err == nil {
		t.Error("no sites accepted")
	}
	if _, err := Run([]Site{{ID: ""}}, defaultCfg()); err == nil {
		t.Error("empty site id accepted")
	}
	if _, err := Run([]Site{{ID: "a"}, {ID: "a"}}, defaultCfg()); err == nil {
		t.Error("duplicate site ids accepted")
	}
	bad := defaultCfg()
	bad.Local.MinPts = 0
	if _, err := Run([]Site{{ID: "a"}}, bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	sites := []Site{
		{ID: "a", Points: blob(rng, 0, 0, 0.4, 200)},
		{ID: "b", Points: blob(rng, 1, 0, 0.4, 200)},
	}
	r1, err := Run(sites, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(sites, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	for id := range r1.Sites {
		a, b := r1.Sites[id].Labels, r2.Sites[id].Labels
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("site %s: nondeterministic label at %d", id, i)
			}
		}
	}
}

// Property: DBDC with one site and Eps_global = Eps_local reproduces the
// central DBSCAN partition up to noise adoption: every central cluster maps
// to exactly one DBDC global cluster.
func TestSingleSiteAgreesWithCentral(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := append(append(blob(rng, 0, 0, 0.4, 200), blob(rng, 6, 0, 0.4, 200)...),
		blob(rng, 3, 6, 0.4, 200)...)
	cfg := defaultCfg()
	res, err := Run([]Site{{ID: "only", Points: pts}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	central, err := dbscan.Run(index.NewLinear(pts, geom.Euclidean{}), cfg.Local, dbscan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if central.NumClusters() != 3 {
		t.Fatalf("central clusters = %d, want 3", central.NumClusters())
	}
	dist := res.Sites["only"].Labels
	// Every central cluster's members must map to a single global id.
	for _, id := range central.Labels.ClusterIDs() {
		members := central.Labels.Members(id)
		first := dist[members[0]]
		if first < 0 {
			t.Fatalf("cluster member lost to noise")
		}
		for _, m := range members[1:] {
			if dist[m] != first {
				t.Fatalf("central cluster %d split in DBDC", id)
			}
		}
	}
}

func TestOpticsOrdererMatchesGlobalStep(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	sites := []Site{
		{ID: "a", Points: blob(rng, 0, 0, 0.3, 200)},
		{ID: "b", Points: blob(rng, 1.2, 0, 0.3, 200)},
		{ID: "c", Points: blob(rng, 40, 0, 0.3, 200)},
	}
	cfg := defaultCfg()
	var models []*model.LocalModel
	for _, s := range sites {
		out, err := LocalStep(s.ID, s.Points, cfg)
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, out.Model)
	}
	ord, err := NewOpticsOrderer(models, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ord.Reachabilities()) == 0 {
		t.Fatal("no reachabilities")
	}
	if _, err := ord.Extract(0); err == nil {
		t.Error("cut 0 accepted")
	}
	if _, err := ord.Extract(ord.EpsMax() * 2); err == nil {
		t.Error("cut beyond EpsMax accepted")
	}
	for _, factor := range []float64{1.0, 2.0} {
		cut := factor * cfg.Local.Eps
		fromOptics, err := ord.Extract(cut)
		if err != nil {
			t.Fatal(err)
		}
		cfgCut := cfg
		cfgCut.EpsGlobal = cut
		fromDBSCAN, err := GlobalStep(models, cfgCut)
		if err != nil {
			t.Fatal(err)
		}
		if fromOptics.NumClusters != fromDBSCAN.NumClusters {
			t.Fatalf("cut %v: OPTICS extraction finds %d clusters, DBSCAN %d",
				cut, fromOptics.NumClusters, fromDBSCAN.NumClusters)
		}
	}
}

// Property: across random multi-site data sets the end-to-end pipeline
// produces structurally valid output: validated models, every object either
// noise or in a global cluster that has a representative within max ε.
func TestPipelineStructuralInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		numSites := 2 + rng.Intn(4)
		sites := make([]Site, numSites)
		for s := range sites {
			var pts []geom.Point
			for b := 0; b < 1+rng.Intn(3); b++ {
				pts = append(pts, blob(rng, rng.Float64()*10, rng.Float64()*10,
					0.2+rng.Float64()*0.3, 50+rng.Intn(100))...)
			}
			sites[s] = Site{ID: string(rune('a' + s)), Points: pts}
		}
		cfg := defaultCfg()
		if trial%2 == 1 {
			cfg.Model = model.RepKMeans
		}
		res, err := Run(sites, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Global.Validate(); err != nil {
			t.Fatal(err)
		}
		repOf := make(map[cluster.ID][]model.GlobalRepresentative)
		for _, r := range res.Global.Reps {
			repOf[r.GlobalCluster] = append(repOf[r.GlobalCluster], r)
		}
		e := geom.Euclidean{}
		for _, s := range sites {
			labels := res.Sites[s.ID].Labels
			if err := labels.Validate(); err != nil {
				t.Fatal(err)
			}
			for i, p := range s.Points {
				if labels[i] == cluster.Noise {
					continue
				}
				// The object must be inside the ε-range of a representative
				// of its assigned global cluster.
				ok := false
				for _, r := range repOf[labels[i]] {
					if e.Distance(p, r.Point) <= r.Eps {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("site %s object %d assigned to cluster %d without covering rep",
						s.ID, i, labels[i])
				}
			}
		}
	}
}

func TestRelabelSiteStats(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// Site with two local clumps that the global model merges, plus noise
	// near a foreign representative.
	pts := append(blob(rng, 0, 0, 0.05, 50), blob(rng, 0.9, 0, 0.05, 50)...)
	pts = append(pts, geom.Point{5, 0}) // local noise
	cfg := defaultCfg()
	cfg.Local = dbscan.Params{Eps: 0.3, MinPts: 5}
	out, err := LocalStep("s1", pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Model.NumClusters != 2 {
		t.Fatalf("setup: want 2 local clusters, got %d", out.Model.NumClusters)
	}
	foreign := &model.LocalModel{
		SiteID: "s2", Kind: model.RepScor, EpsLocal: 0.3, MinPts: 5,
		NumObjects: 10, NumClusters: 1,
		Reps: []model.Representative{
			// Bridges the two clumps and covers the noise point.
			{Point: geom.Point{0.45, 0}, Eps: 0.6, LocalCluster: 0},
			{Point: geom.Point{4.8, 0}, Eps: 0.6, LocalCluster: 0},
		},
	}
	cfg.EpsGlobal = 0.6
	global, err := GlobalStep([]*model.LocalModel{out.Model, foreign}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	labels, stats, err := RelabelSite(out, global)
	if err != nil {
		t.Fatal(err)
	}
	if stats.NoiseAdopted != 1 {
		t.Fatalf("NoiseAdopted = %d, want 1 (labels %v)", stats.NoiseAdopted, labels[len(labels)-1])
	}
	if stats.LocalClustersMerged != 2 {
		t.Fatalf("LocalClustersMerged = %d, want 2", stats.LocalClustersMerged)
	}
	if labels[0] != labels[50] {
		t.Fatal("merged clumps carry different global ids")
	}
}

func TestDistributedDurationComposition(t *testing.T) {
	r := &Result{
		GlobalDuration: 5,
		Sites: map[string]*SiteResult{
			"a": {LocalDuration: 10, RelabelDuration: 1},
			"b": {LocalDuration: 7, RelabelDuration: 9},
		},
	}
	if got := r.DistributedDuration(); got != 21 {
		t.Fatalf("DistributedDuration = %v, want max(11,16)+5 = 21", got)
	}
}

func TestRunWithNonDefaultIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sites := []Site{{ID: "a", Points: blob(rng, 0, 0, 0.4, 300)}}
	for _, kind := range index.Kinds() {
		cfg := defaultCfg()
		cfg.Index = kind
		res, err := Run(sites, cfg)
		if err != nil {
			t.Fatalf("index %s: %v", kind, err)
		}
		if res.Global.NumClusters != 1 {
			t.Fatalf("index %s: clusters = %d, want 1", kind, res.Global.NumClusters)
		}
	}
}

func TestKMeansRepsEpsupperBound(t *testing.T) {
	// REP_kMeans ε-ranges are bounded by the cluster diameter; sanity-check
	// they stay finite and positive on a degenerate single-blob cluster.
	rng := rand.New(rand.NewSource(12))
	pts := blob(rng, 0, 0, 0.2, 100)
	cfg := defaultCfg()
	cfg.Model = model.RepKMeans
	out, err := LocalStep("s", pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range out.Model.Reps {
		if r.Eps <= 0 || math.IsInf(r.Eps, 0) || math.IsNaN(r.Eps) {
			t.Fatalf("bad kmeans rep eps %v", r.Eps)
		}
	}
}

func TestOpticsOrdererSuggestCut(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// Two groups of sites, each holding half of one of two far-apart
	// clusters: the suggested cut must merge within-cluster representatives
	// without bridging the two clusters.
	c1 := blob(rng, 0, 0, 0.4, 400)
	c2 := blob(rng, 40, 0, 0.4, 400)
	cfg := defaultCfg()
	var models []*model.LocalModel
	for i, pts := range [][]geom.Point{c1[:200], c1[200:], c2[:200], c2[200:]} {
		out, err := LocalStep(string(rune('a'+i)), pts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, out.Model)
	}
	ord, err := NewOpticsOrderer(models, cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	cut, err := ord.SuggestCut(2)
	if err != nil {
		t.Fatal(err)
	}
	global, err := ord.Extract(cut)
	if err != nil {
		t.Fatal(err)
	}
	if global.NumClusters != 2 {
		t.Fatalf("suggested cut %v yields %d global clusters, want 2", cut, global.NumClusters)
	}
}

// DBDC is not restricted to the paper's 2-D evaluation setting: the whole
// pipeline works in higher-dimensional spaces.
func TestHigherDimensionalPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	mk := func(center []float64, n int) []geom.Point {
		pts := make([]geom.Point, n)
		for i := range pts {
			p := make(geom.Point, len(center))
			for d := range p {
				p[d] = center[d] + rng.NormFloat64()*0.3
			}
			pts[i] = p
		}
		return pts
	}
	c1 := []float64{0, 0, 0, 0, 0}
	c2 := []float64{5, 5, 5, 5, 5}
	shared := mk(c1, 300)
	sites := []Site{
		{ID: "a", Points: append(shared[:150:150], mk(c2, 150)...)},
		{ID: "b", Points: append(shared[150:], mk(c2, 150)...)},
	}
	cfg := Config{Local: dbscan.Params{Eps: 0.9, MinPts: 6}}
	res, err := Run(sites, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Global.NumClusters != 2 {
		t.Fatalf("5-D pipeline found %d global clusters, want 2", res.Global.NumClusters)
	}
	if res.Sites["a"].Labels[0] != res.Sites["b"].Labels[0] {
		t.Fatal("5-D shared cluster not unified")
	}
}

func TestClusteringChange(t *testing.T) {
	a := cluster.Labeling{0, 0, 0, 1, 1, cluster.Noise}
	if got, err := ClusteringChange(a, a); err != nil || got != 0 {
		t.Fatalf("identical labelings: change = %v, %v", got, err)
	}
	// Renaming is no change.
	b := cluster.Labeling{7, 7, 7, 3, 3, cluster.Noise}
	if got, err := ClusteringChange(a, b); err != nil || got != 0 {
		t.Fatalf("renamed labelings: change = %v, %v", got, err)
	}
	// A split is a change strictly between 0 and 1.
	c := cluster.Labeling{0, 0, 2, 1, 1, cluster.Noise}
	got, err := ClusteringChange(a, c)
	if err != nil || got <= 0 || got >= 1 {
		t.Fatalf("split: change = %v, %v", got, err)
	}
	// Complete turnover: everything clustered became noise.
	d := cluster.Labeling{cluster.Noise, cluster.Noise, cluster.Noise,
		cluster.Noise, cluster.Noise, cluster.Noise}
	full, err := ClusteringChange(a, d)
	if err != nil {
		t.Fatal(err)
	}
	if full < 0.8 {
		t.Fatalf("turnover: change = %v", full)
	}
	if _, err := ClusteringChange(a, cluster.Labeling{0}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestPadSnapshot(t *testing.T) {
	prev := cluster.Labeling{0, 1}
	got, err := PadSnapshot(prev, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := cluster.Labeling{0, 1, cluster.Noise, cluster.Noise}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PadSnapshot = %v", got)
		}
	}
	if _, err := PadSnapshot(cluster.Labeling{0, 1, 2}, 2); err == nil {
		t.Fatal("shrinking pad accepted")
	}
}

// The policy end to end with incremental DBSCAN: growing an existing
// cluster barely moves the change metric; a brand-new cluster moves it
// past any sensible threshold.
func TestChangePolicyWithIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	inc, err := incdbscan.New(dbscan.Params{Eps: 0.5, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range blob(rng, 0, 0, 0.3, 200) {
		if _, err := inc.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	snapshot := inc.Labels()
	// Densify the existing cluster slightly (5%): small change.
	for _, p := range blob(rng, 0, 0, 0.3, 10) {
		if _, err := inc.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	padded, err := PadSnapshot(snapshot, inc.Len())
	if err != nil {
		t.Fatal(err)
	}
	small, err := ClusteringChange(padded, inc.Labels())
	if err != nil {
		t.Fatal(err)
	}
	// A second, equally sized cluster appears: large change.
	for _, p := range blob(rng, 10, 0, 0.3, 250) {
		if _, err := inc.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	padded, err = PadSnapshot(snapshot, inc.Len())
	if err != nil {
		t.Fatal(err)
	}
	large, err := ClusteringChange(padded, inc.Labels())
	if err != nil {
		t.Fatal(err)
	}
	if small >= large {
		t.Fatalf("densification change %v not below new-cluster change %v", small, large)
	}
	if small > 0.3 || large < 0.3 {
		t.Fatalf("threshold 0.3 does not separate: small=%v large=%v", small, large)
	}
}

// Property: Relabel only ever assigns ids that exist in the global model,
// and every assignment is justified by a covering representative.
func TestRelabelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	e := geom.Euclidean{}
	for trial := 0; trial < 30; trial++ {
		numReps := 1 + rng.Intn(12)
		global := &model.GlobalModel{EpsGlobal: 1, MinPtsGlobal: 2}
		valid := map[cluster.ID]bool{}
		for i := 0; i < numReps; i++ {
			id := cluster.ID(rng.Intn(5))
			valid[id] = true
			global.Reps = append(global.Reps, model.GlobalRepresentative{
				Representative: model.Representative{
					Point:        geom.Point{rng.Float64() * 10, rng.Float64() * 10},
					Eps:          0.2 + rng.Float64()*2,
					LocalCluster: 0,
				},
				SiteID:        "s",
				GlobalCluster: id,
			})
		}
		global.NumClusters = len(valid)
		pts := make([]geom.Point, 50)
		for i := range pts {
			pts[i] = geom.Point{rng.Float64() * 12, rng.Float64() * 12}
		}
		labels, err := Relabel(pts, global)
		if err != nil {
			t.Fatal(err)
		}
		for i, l := range labels {
			if l == cluster.Noise {
				// No representative may cover it.
				for _, r := range global.Reps {
					if e.Distance(pts[i], r.Point) <= r.Eps {
						t.Fatalf("covered object %d labelled noise", i)
					}
				}
				continue
			}
			if !valid[l] {
				t.Fatalf("object %d got id %d not present in the model", i, l)
			}
			// The nearest covering representative must carry exactly l.
			best, bestDist := cluster.Noise, math.Inf(1)
			for _, r := range global.Reps {
				if d := e.Distance(pts[i], r.Point); d <= r.Eps && d < bestDist {
					best, bestDist = r.GlobalCluster, d
				}
			}
			if best != l {
				t.Fatalf("object %d: got %d, nearest covering rep has %d", i, l, best)
			}
		}
	}
}

func TestRunPropagatesSiteErrors(t *testing.T) {
	// A site with mixed-dimensionality points makes its local index build
	// fail; the orchestrator must surface that error, in both concurrent
	// and sequential modes.
	sites := []Site{
		{ID: "good", Points: []geom.Point{{0, 0}, {0.1, 0}, {0.2, 0}}},
		{ID: "bad", Points: []geom.Point{{0, 0}, {1, 2, 3}}},
	}
	for _, sequential := range []bool{false, true} {
		cfg := defaultCfg()
		cfg.Sequential = sequential
		if _, err := Run(sites, cfg); err == nil {
			t.Errorf("sequential=%v: site error swallowed", sequential)
		}
	}
}

func TestEpsGlobalAuto(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	// Two clusters split across sites; the automatic cut must merge the
	// halves without bridging the two clusters — no rule of thumb given.
	c1 := blob(rng, 0, 0, 0.4, 400)
	c2 := blob(rng, 30, 0, 0.4, 400)
	sites := []Site{
		{ID: "a", Points: append(c1[:200:200], c2[:200]...)},
		{ID: "b", Points: append(c1[200:], c2[200:]...)},
	}
	cfg := defaultCfg()
	cfg.EpsGlobalAuto = true
	res, err := Run(sites, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Global.NumClusters != 2 {
		t.Fatalf("auto eps found %d global clusters, want 2 (eps=%v)",
			res.Global.NumClusters, res.Global.EpsGlobal)
	}
	if res.Sites["a"].Labels[0] != res.Sites["b"].Labels[0] {
		t.Fatal("cluster halves not unified under auto eps")
	}
}

func TestEpsGlobalAutoFallback(t *testing.T) {
	// A single representative: no density gap exists; the auto mode must
	// fall back rather than fail.
	m := &model.LocalModel{
		SiteID: "s", Kind: model.RepScor, EpsLocal: 0.5, MinPts: 5,
		NumObjects: 10, NumClusters: 1,
		Reps: []model.Representative{{Point: geom.Point{0, 0}, Eps: 1, LocalCluster: 0}},
	}
	cfg := defaultCfg()
	cfg.EpsGlobalAuto = true
	g, err := GlobalStep([]*model.LocalModel{m}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumClusters != 1 {
		t.Fatalf("fallback produced %d clusters", g.NumClusters)
	}
}
