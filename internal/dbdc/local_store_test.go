package dbdc

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
	"github.com/dbdc-go/dbdc/internal/model"
)

// storeTestPoints builds two blobs plus noise straight into a store.
func storeTestPoints(seed int64) *geom.Store {
	rng := rand.New(rand.NewSource(seed))
	st := geom.NewStore(2, 500)
	for i := 0; i < 200; i++ {
		st.AppendCoords(5+rng.NormFloat64(), 5+rng.NormFloat64())
	}
	for i := 0; i < 200; i++ {
		st.AppendCoords(20+rng.NormFloat64(), 8+rng.NormFloat64())
	}
	for i := 0; i < 100; i++ {
		st.AppendCoords(rng.Float64()*30, rng.Float64()*20)
	}
	return st
}

// TestLocalStepStoreDifferential: LocalStepStore and LocalStep over
// independently cloned points must produce identical clusterings and
// byte-identical local models, for every index kind, both model kinds, and
// both the sequential and the parallel kernel. This is the dbdc-level half
// of the store/slice differential (the dbscan-level half lives in
// internal/dbscan).
func TestLocalStepStoreDifferential(t *testing.T) {
	st := storeTestPoints(7)
	// Clone into per-point allocations so the slice path shares nothing
	// with the store.
	clones := make([]geom.Point, st.Len())
	for i := range clones {
		clones[i] = st.Point(i).Clone()
	}
	for _, kind := range index.Kinds() {
		for _, mk := range []model.Kind{model.RepScor, model.RepKMeans} {
			for _, workers := range []int{1, 4} {
				cfg := Config{
					Local:       dbscan.Params{Eps: 0.8, MinPts: 5},
					Model:       mk,
					Index:       kind,
					SiteWorkers: workers,
				}
				want, err := LocalStep("site-slice", clones, cfg)
				if err != nil {
					t.Fatalf("%s/%s/w=%d: LocalStep: %v", kind, mk, workers, err)
				}
				got, err := LocalStepStore("site-slice", st, cfg)
				if err != nil {
					t.Fatalf("%s/%s/w=%d: LocalStepStore: %v", kind, mk, workers, err)
				}
				if !reflect.DeepEqual(got.Clustering.Labels, want.Clustering.Labels) {
					t.Errorf("%s/%s/w=%d: labels differ between store and slice path", kind, mk, workers)
				}
				gb, err := got.Model.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				wb, err := want.Model.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(gb, wb) {
					t.Errorf("%s/%s/w=%d: local model wire frames differ between store and slice path", kind, mk, workers)
				}
			}
		}
	}
}

// TestLocalStepStoreOutcomeViews: the store outcome's Points alias the
// store — handing the same backing array to relabeling without a copy.
func TestLocalStepStoreOutcomeViews(t *testing.T) {
	st := storeTestPoints(3)
	out, err := LocalStepStore("s", st, Config{Local: dbscan.Params{Eps: 0.8, MinPts: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Points) != st.Len() {
		t.Fatalf("outcome has %d points, store %d", len(out.Points), st.Len())
	}
	if &out.Points[0][0] != &st.Point(0)[0] {
		t.Fatal("outcome points do not alias the store")
	}
}
