package dbdc

import (
	"fmt"
	"time"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
	"github.com/dbdc-go/dbdc/internal/kmeans"
	"github.com/dbdc-go/dbdc/internal/model"
)

// LocalTimings is the per-phase wall-clock breakdown of LocalStep: the
// DBSCAN clustering of the local objects (index build included — the index
// exists only to serve the clustering) and the condensation of the clusters
// into the representatives of the local model. The split is the site-side
// half of the paper's cost model (Section 8: distributed runtime ≈
// max(local) + global); the transport forwards it to the server so a round
// report can show where each site spent its time.
type LocalTimings struct {
	// Cluster is the cost of the local DBSCAN run (plus index build).
	Cluster time.Duration
	// Condense is the cost of representative condensation (REP_Scor
	// extraction or the k-means refinement of REP_kMeans).
	Condense time.Duration
	// Workers is the resolved intra-site worker count the clustering ran
	// with (1 = the sequential kernel).
	Workers int
}

// LocalOutcome is everything a site derives from its own data: the DBSCAN
// clustering of the local objects and the local model shipped to the
// server.
type LocalOutcome struct {
	// SiteID identifies the site.
	SiteID string
	// Points are the site's objects (retained, not copied).
	Points []geom.Point
	// Clustering is the site-local DBSCAN result.
	Clustering *dbscan.Result
	// Model is the local model to transmit.
	Model *model.LocalModel
	// Timings is the per-phase cost breakdown of this LocalStep.
	Timings LocalTimings
	// RepBudget is the per-cluster representative budget the model was
	// built under (Config.RepBudget; 0 = unbudgeted), and Budget the
	// selector's coverage accounting. For an unbudgeted outcome Budget is
	// the zero value — no selection ran, nothing was dropped.
	RepBudget int
	Budget    dbscan.BudgetStats

	// cfg is the resolved configuration the outcome was produced under,
	// retained so BudgetedModel can re-condense the clustering at a
	// different budget during transport negotiation.
	cfg Config
	// numObjects, when positive, overrides the model's NumObjects: a
	// condensed outcome (CondenseGlobal) clusters representatives, but the
	// compression statistics want the cardinality of the objects those
	// representatives stand for (SetNumObjects).
	numObjects int
}

// LocalStep performs steps 1 and 2 of DBDC on one site: cluster the local
// objects with DBSCAN and condense every cluster into representatives
// according to cfg.Model. Config.SiteWorkers > 1 selects the intra-site
// parallel DBSCAN kernel; the phase costs land in the outcome's Timings.
func LocalStep(siteID string, pts []geom.Point, cfg Config) (*LocalOutcome, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	clusterStart := time.Now()
	idx, err := buildPointIndex(cfg.Index, pts, cfg.Local.Eps)
	if err != nil {
		return nil, fmt.Errorf("dbdc: site %s: %w", siteID, err)
	}
	return localStepFrom(siteID, pts, idx, cfg, clusterStart)
}

// LocalStepStore is LocalStep for a site whose objects already live in a
// flat geom.Store (the layout the data loaders and generators produce). The
// index bulk-loads straight from the store's backing array — zero coordinate
// copies — and the outcome's Points are zero-copy views into the store.
func LocalStepStore(siteID string, st *geom.Store, cfg Config) (*LocalOutcome, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	clusterStart := time.Now()
	idx, err := index.BuildStore(cfg.Index, st, geom.Euclidean{}, cfg.Local.Eps)
	if err != nil {
		return nil, fmt.Errorf("dbdc: site %s: %w", siteID, err)
	}
	return localStepFrom(siteID, st.Views(), idx, cfg, clusterStart)
}

// localStepFrom is the shared tail of LocalStep and LocalStepStore: run the
// clustering over the prebuilt index and condense the result into the local
// model.
func localStepFrom(siteID string, pts []geom.Point, idx index.Index, cfg Config, clusterStart time.Time) (*LocalOutcome, error) {
	res, err := dbscan.Run(idx, cfg.Local, dbscan.Options{
		CollectSpecificCores: true,
		Workers:              cfg.SiteWorkers,
	})
	if err != nil {
		return nil, fmt.Errorf("dbdc: site %s: %w", siteID, err)
	}
	timings := LocalTimings{Cluster: time.Since(clusterStart), Workers: cfg.SiteWorkers}
	if timings.Workers < 1 {
		timings.Workers = 1
	}
	condenseStart := time.Now()
	m, stats, err := buildLocalModel(siteID, pts, res, cfg, cfg.RepBudget)
	if err != nil {
		return nil, err
	}
	timings.Condense = time.Since(condenseStart)
	return &LocalOutcome{
		SiteID:     siteID,
		Points:     pts,
		Clustering: res,
		Model:      m,
		Timings:    timings,
		RepBudget:  cfg.RepBudget,
		Budget:     stats,
		cfg:        cfg,
	}, nil
}

// buildLocalModel condenses a clustering into the local model under the
// given per-cluster representative budget (0 = unbudgeted, the byte-exact
// historical output). The budgeted path never mutates res: the selector
// returns a fresh Scor map that a shallow result copy carries into the
// condensation.
func buildLocalModel(siteID string, pts []geom.Point, res *dbscan.Result, cfg Config, budget int) (*model.LocalModel, dbscan.BudgetStats, error) {
	var stats dbscan.BudgetStats
	condensed := res
	if budget > 0 {
		scor, s := dbscan.BudgetScor(pts, res, geom.Euclidean{}, budget)
		stats = s
		b := *res
		b.Scor = scor
		condensed = &b
	}
	m := &model.LocalModel{
		SiteID:      siteID,
		Kind:        cfg.Model,
		EpsLocal:    cfg.Local.Eps,
		MinPts:      cfg.Local.MinPts,
		NumObjects:  len(pts),
		NumClusters: res.NumClusters(),
	}
	var err error
	switch cfg.Model {
	case model.RepScor:
		m.Reps = scorReps(pts, condensed)
	case model.RepKMeans:
		m.Reps, err = kmeansReps(pts, condensed, cfg.KMeansMaxIter)
		if err != nil {
			return nil, stats, fmt.Errorf("dbdc: site %s: %w", siteID, err)
		}
	}
	return m, stats, nil
}

// BudgetedModel re-condenses the outcome's clustering under a different
// per-cluster representative budget, without re-running DBSCAN. The
// transport layer uses it to shrink a site's upload until it fits a
// server-advertised byte cap; budget 0 rebuilds the unbudgeted model. The
// outcome itself (Model, Budget) is not modified.
func (o *LocalOutcome) BudgetedModel(budget int) (*model.LocalModel, dbscan.BudgetStats, error) {
	if budget < 0 {
		return nil, dbscan.BudgetStats{}, fmt.Errorf("dbdc: site %s: negative budget %d", o.SiteID, budget)
	}
	if budget == o.RepBudget && o.Model != nil {
		return o.Model, o.Budget, nil
	}
	m, stats, err := buildLocalModel(o.SiteID, o.Points, o.Clustering, o.cfg, budget)
	if err == nil && o.numObjects > 0 {
		m.NumObjects = o.numObjects
	}
	return m, stats, err
}

// MaxScorPerCluster returns the size of the largest unbudgeted specific
// core set over the outcome's clusters — the budget above which budgeting
// is the identity, and the natural upper bound of a shrink search.
func (o *LocalOutcome) MaxScorPerCluster() int {
	max := 0
	for _, scor := range o.Clustering.Scor {
		if len(scor) > max {
			max = len(scor)
		}
	}
	return max
}

// scorReps builds the REP_Scor local model (Section 5.1): the specific core
// points with their specific ε-ranges, both already computed during the
// DBSCAN run.
func scorReps(pts []geom.Point, res *dbscan.Result) []model.Representative {
	var reps []model.Representative
	for _, id := range sortedClusterIDs(res) {
		for _, s := range res.Scor[id] {
			reps = append(reps, model.Representative{
				Point:        pts[s].Clone(),
				Eps:          res.SpecificEps[s],
				LocalCluster: id,
			})
		}
	}
	return reps
}

// kmeansReps builds the REP_kMeans local model (Section 5.2): for every
// cluster C, k-means with k = |Scor_C| seeded by the specific core points
// refines the representatives to centroids; each centroid's ε-range is the
// maximum distance of its assigned objects.
func kmeansReps(pts []geom.Point, res *dbscan.Result, maxIter int) ([]model.Representative, error) {
	var reps []model.Representative
	for _, id := range sortedClusterIDs(res) {
		members := res.Labels.Members(id)
		memberPts := make([]geom.Point, len(members))
		for i, m := range members {
			memberPts[i] = pts[m]
		}
		seeds := make([]geom.Point, len(res.Scor[id]))
		for i, s := range res.Scor[id] {
			seeds[i] = pts[s]
		}
		km, err := kmeans.Lloyd(memberPts, seeds, maxIter)
		if err != nil {
			return nil, err
		}
		// ε_{c_ij} = max{dist(o, c_ij) | o ∈ O_ij} (Definition in 5.2).
		eps := make([]float64, len(km.Centroids))
		e := geom.Euclidean{}
		for i, p := range memberPts {
			c := km.Assign[i]
			if d := e.Distance(p, km.Centroids[c]); d > eps[c] {
				eps[c] = d
			}
		}
		for j, c := range km.Centroids {
			if eps[j] == 0 {
				// A centroid coinciding with its single assigned object
				// still represents that object; give it a minimal positive
				// validity area so the model stays well-formed.
				eps[j] = res.Params.Eps
			}
			reps = append(reps, model.Representative{
				Point:        c.Clone(),
				Eps:          eps[j],
				LocalCluster: id,
			})
		}
	}
	return reps, nil
}

func sortedClusterIDs(res *dbscan.Result) []cluster.ID {
	return res.Labels.ClusterIDs()
}
