package dbdc

import (
	"fmt"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/quality"
)

// ClusteringChange quantifies how much a site's clustering drifted since
// the local model was last transmitted: 1 − Q_DBDC(P^II) between the two
// labelings. 0 means identical cluster structure, 1 complete turnover.
// Section 4 of the paper keys retransmission on the clustering changing
// "considerably"; this is the measurable version of that policy, used as
// ClusteringChange(prev, cur) > threshold.
//
// The labelings must describe the same objects (same length, same order);
// sites using incremental DBSCAN compare Labels() snapshots padded to the
// current length — see PadSnapshot.
func ClusteringChange(prev, cur cluster.Labeling) (float64, error) {
	q, err := quality.QDBDCPII(cur, prev)
	if err != nil {
		return 0, err
	}
	return 1 - q, nil
}

// PadSnapshot extends an older labeling snapshot to n objects, marking the
// objects that did not exist yet as noise — an object that appeared and
// joined a cluster counts as change, which is exactly what the
// retransmission policy wants.
func PadSnapshot(prev cluster.Labeling, n int) (cluster.Labeling, error) {
	if len(prev) > n {
		return nil, fmt.Errorf("dbdc: snapshot of %d objects longer than current %d (deletions keep their slots)", len(prev), n)
	}
	out := make(cluster.Labeling, n)
	copy(out, prev)
	for i := len(prev); i < n; i++ {
		out[i] = cluster.Noise
	}
	return out, nil
}
