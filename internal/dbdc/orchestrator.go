package dbdc

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/model"
)

// Site is one participant of the distributed clustering: an id and the
// objects residing there.
type Site struct {
	ID     string
	Points []geom.Point
}

// SiteResult is the per-site outcome of a DBDC run.
type SiteResult struct {
	// Outcome is the site's local clustering and model.
	Outcome *LocalOutcome
	// Labels is the site's final labeling with global cluster ids.
	Labels cluster.Labeling
	// Stats summarises how relabeling changed the local clustering.
	Stats RelabelStats
	// LocalDuration and RelabelDuration are the site-side wall-clock costs.
	LocalDuration   time.Duration
	RelabelDuration time.Duration
	// UplinkBytes is the wire size of the transmitted local model;
	// DownlinkBytes of the received global model.
	UplinkBytes   int
	DownlinkBytes int
}

// Result is the outcome of a full DBDC run.
type Result struct {
	Config Config
	// Global is the server-side model.
	Global *model.GlobalModel
	// Sites holds the per-site results keyed by site id.
	Sites map[string]*SiteResult
	// GlobalDuration is the server-side clustering cost.
	GlobalDuration time.Duration
	// Wall is the total wall-clock duration of the concurrent run.
	Wall time.Duration
}

// DistributedDuration reports the runtime measure of the paper's
// experiments: the maximum local cost over all sites (they run in
// parallel in a real deployment) plus the server-side cost.
func (r *Result) DistributedDuration() time.Duration {
	var maxLocal time.Duration
	for _, s := range r.Sites {
		local := s.LocalDuration + s.RelabelDuration
		if local > maxLocal {
			maxLocal = local
		}
	}
	return maxLocal + r.GlobalDuration
}

// TotalWork reports the summed computation over all sites plus the server:
// the cost of running DBDC on a single machine. Comparing it against a
// central run shows the overhead distribution adds — the paper's
// observation that for small data sets DBDC is "slightly slower" while the
// overhead stays "almost negligible".
func (r *Result) TotalWork() time.Duration {
	total := r.GlobalDuration
	for _, s := range r.Sites {
		total += s.LocalDuration + s.RelabelDuration
	}
	return total
}

// TotalRepresentatives returns the number of representatives across all
// sites (the "number of local repr." column of Figure 10).
func (r *Result) TotalRepresentatives() int {
	n := 0
	for _, s := range r.Sites {
		n += len(s.Outcome.Model.Reps)
	}
	return n
}

// TotalObjects returns the number of objects across all sites.
func (r *Result) TotalObjects() int {
	n := 0
	for _, s := range r.Sites {
		n += len(s.Outcome.Points)
	}
	return n
}

// Run executes the four DBDC steps over the given sites inside one process,
// with every site working in its own goroutine — the in-process analogue of
// the client/server deployment in the transport package. Deterministic
// given the same sites and config.
func Run(sites []Site, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("dbdc: no sites")
	}
	seen := make(map[string]bool, len(sites))
	for _, s := range sites {
		if s.ID == "" {
			return nil, fmt.Errorf("dbdc: site with empty id")
		}
		if seen[s.ID] {
			return nil, fmt.Errorf("dbdc: duplicate site id %q", s.ID)
		}
		seen[s.ID] = true
	}
	start := time.Now()
	res := &Result{Config: cfg, Sites: make(map[string]*SiteResult, len(sites))}

	// Step 1+2: local clustering and model determination, one goroutine per
	// site.
	type localReply struct {
		site    int
		outcome *LocalOutcome
		dur     time.Duration
		err     error
	}
	replies := make([]localReply, len(sites))
	runLocal := func(i int, s Site) {
		t0 := time.Now()
		outcome, err := LocalStep(s.ID, s.Points, cfg)
		replies[i] = localReply{site: i, outcome: outcome, dur: time.Since(t0), err: err}
	}
	if cfg.Sequential {
		for i, s := range sites {
			runLocal(i, s)
		}
	} else {
		var wg sync.WaitGroup
		for i, s := range sites {
			wg.Add(1)
			go func(i int, s Site) {
				defer wg.Done()
				runLocal(i, s)
			}(i, s)
		}
		wg.Wait()
	}
	models := make([]*model.LocalModel, 0, len(sites))
	for _, r := range replies {
		if r.err != nil {
			return nil, r.err
		}
		res.Sites[sites[r.site].ID] = &SiteResult{
			Outcome:       r.outcome,
			LocalDuration: r.dur,
			UplinkBytes:   r.outcome.Model.EncodedSize(),
		}
		models = append(models, r.outcome.Model)
	}
	// Keep server-side processing order deterministic.
	sort.Slice(models, func(i, j int) bool { return models[i].SiteID < models[j].SiteID })

	// Step 3: global model.
	t0 := time.Now()
	global, err := GlobalStep(models, cfg)
	if err != nil {
		return nil, err
	}
	res.GlobalDuration = time.Since(t0)
	res.Global = global
	downlink := global.EncodedSize()

	// Step 4: relabeling, concurrent per site unless Sequential.
	runRelabel := func(sr *SiteResult) {
		t := time.Now()
		labels, stats := RelabelSite(sr.Outcome, global)
		sr.Labels = labels
		sr.Stats = stats
		sr.RelabelDuration = time.Since(t)
		sr.DownlinkBytes = downlink
	}
	if cfg.Sequential {
		for _, sr := range res.Sites {
			runRelabel(sr)
		}
	} else {
		var rwg sync.WaitGroup
		for _, sr := range res.Sites {
			rwg.Add(1)
			go func(sr *SiteResult) {
				defer rwg.Done()
				runRelabel(sr)
			}(sr)
		}
		rwg.Wait()
	}
	res.Wall = time.Since(start)
	return res, nil
}
