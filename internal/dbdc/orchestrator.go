package dbdc

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/model"
)

// Site is one participant of the distributed clustering: an id and the
// objects residing there.
type Site struct {
	ID     string
	Points []geom.Point
}

// SiteResult is the per-site outcome of a DBDC run.
type SiteResult struct {
	// Outcome is the site's local clustering and model.
	Outcome *LocalOutcome
	// Labels is the site's final labeling with global cluster ids.
	Labels cluster.Labeling
	// Stats summarises how relabeling changed the local clustering.
	Stats RelabelStats
	// LocalDuration and RelabelDuration are the site-side wall-clock costs.
	LocalDuration   time.Duration
	RelabelDuration time.Duration
	// UplinkBytes is the wire size of the transmitted local model;
	// DownlinkBytes of the received global model.
	UplinkBytes   int
	DownlinkBytes int
	// Budget is the representative-budget accounting of the site's local
	// model (zero value when Config.RepBudget was unset).
	Budget dbscan.BudgetStats
}

// Result is the outcome of a full DBDC run.
type Result struct {
	Config Config
	// Global is the server-side model.
	Global *model.GlobalModel
	// Sites holds the per-site results keyed by site id.
	Sites map[string]*SiteResult
	// GlobalDuration is the server-side clustering cost.
	GlobalDuration time.Duration
	// Wall is the total wall-clock duration of the concurrent run.
	Wall time.Duration
}

// DistributedDuration reports the runtime measure of the paper's
// experiments: the maximum local cost over all sites (they run in
// parallel in a real deployment) plus the server-side cost.
func (r *Result) DistributedDuration() time.Duration {
	var maxLocal time.Duration
	for _, s := range r.Sites {
		local := s.LocalDuration + s.RelabelDuration
		if local > maxLocal {
			maxLocal = local
		}
	}
	return maxLocal + r.GlobalDuration
}

// TotalWork reports the summed computation over all sites plus the server:
// the cost of running DBDC on a single machine. Comparing it against a
// central run shows the overhead distribution adds — the paper's
// observation that for small data sets DBDC is "slightly slower" while the
// overhead stays "almost negligible".
func (r *Result) TotalWork() time.Duration {
	total := r.GlobalDuration
	for _, s := range r.Sites {
		total += s.LocalDuration + s.RelabelDuration
	}
	return total
}

// TotalRepresentatives returns the number of representatives across all
// sites (the "number of local repr." column of Figure 10).
func (r *Result) TotalRepresentatives() int {
	n := 0
	for _, s := range r.Sites {
		n += len(s.Outcome.Model.Reps)
	}
	return n
}

// TotalObjects returns the number of objects across all sites.
func (r *Result) TotalObjects() int {
	n := 0
	for _, s := range r.Sites {
		n += len(s.Outcome.Points)
	}
	return n
}

// sitePoolSize returns how many sites may run their local work at once: the
// process-wide parallelism budget divided by the per-site worker budget, so
// sites × intra-site workers stays near GOMAXPROCS instead of the old
// goroutine-per-site fan-out that oversubscribed the host as soon as
// len(sites) exceeded the core count.
func sitePoolSize(cfg Config, numSites int) int {
	if cfg.Sequential {
		return 1
	}
	perSite := cfg.SiteWorkers
	if perSite < 1 {
		perSite = 1
	}
	pool := runtime.GOMAXPROCS(0) / perSite
	if pool < 1 {
		pool = 1
	}
	if pool > numSites {
		pool = numSites
	}
	return pool
}

// forEachSite runs fn(i) for i in [0, n) on a bounded pool of size pool.
// pool = 1 degenerates to a strictly sequential loop on the caller's
// goroutine, preserving the paper's uncontended measurement methodology for
// Config.Sequential.
func forEachSite(n, pool int, fn func(int)) {
	if pool <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}

// Run executes the four DBDC steps over the given sites inside one process,
// with the site-side work scheduled on a bounded pool — the in-process
// analogue of the client/server deployment in the transport package.
// Deterministic given the same sites and config.
func Run(sites []Site, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("dbdc: no sites")
	}
	seen := make(map[string]bool, len(sites))
	for _, s := range sites {
		if s.ID == "" {
			return nil, fmt.Errorf("dbdc: site with empty id")
		}
		if seen[s.ID] {
			return nil, fmt.Errorf("dbdc: duplicate site id %q", s.ID)
		}
		seen[s.ID] = true
	}
	start := time.Now()
	res := &Result{Config: cfg, Sites: make(map[string]*SiteResult, len(sites))}

	// Step 1+2: local clustering and model determination on the bounded
	// site pool (pool size 1 under Config.Sequential).
	type localReply struct {
		site    int
		outcome *LocalOutcome
		dur     time.Duration
		err     error
	}
	replies := make([]localReply, len(sites))
	pool := sitePoolSize(cfg, len(sites))
	forEachSite(len(sites), pool, func(i int) {
		t0 := time.Now()
		outcome, err := LocalStep(sites[i].ID, sites[i].Points, cfg)
		replies[i] = localReply{site: i, outcome: outcome, dur: time.Since(t0), err: err}
	})
	models := make([]*model.LocalModel, 0, len(sites))
	for _, r := range replies {
		if r.err != nil {
			return nil, r.err
		}
		res.Sites[sites[r.site].ID] = &SiteResult{
			Outcome:       r.outcome,
			LocalDuration: r.dur,
			UplinkBytes:   r.outcome.Model.EncodedSize(),
			Budget:        r.outcome.Budget,
		}
		models = append(models, r.outcome.Model)
	}
	// Keep server-side processing order deterministic.
	sort.Slice(models, func(i, j int) bool { return models[i].SiteID < models[j].SiteID })

	// Step 3: global model.
	t0 := time.Now()
	global, err := GlobalStep(models, cfg)
	if err != nil {
		return nil, err
	}
	res.GlobalDuration = time.Since(t0)
	res.Global = global
	downlink := global.EncodedSize()

	// Step 4: relabeling on the same bounded site pool.
	siteResults := make([]*SiteResult, 0, len(sites))
	for _, s := range sites {
		siteResults = append(siteResults, res.Sites[s.ID])
	}
	relabelErrs := make([]error, len(siteResults))
	forEachSite(len(siteResults), pool, func(i int) {
		sr := siteResults[i]
		t := time.Now()
		labels, stats, err := RelabelSite(sr.Outcome, global)
		if err != nil {
			relabelErrs[i] = fmt.Errorf("dbdc: site %s: %w", sr.Outcome.SiteID, err)
			return
		}
		sr.Labels = labels
		sr.Stats = stats
		sr.RelabelDuration = time.Since(t)
		sr.DownlinkBytes = downlink
	})
	for _, err := range relabelErrs {
		if err != nil {
			return nil, err
		}
	}
	res.Wall = time.Since(start)
	return res, nil
}
