// Package dbdc implements Density Based Distributed Clustering (Januzaj,
// Kriegel, Pfeifle — EDBT 2004): the paper's primary contribution. It wires
// the four steps of Figure 2 together:
//
//  1. local clustering (DBSCAN on each site),
//  2. determination of a local model (REP_Scor or REP_kMeans),
//  3. determination of a global model (DBSCAN over all representatives
//     with MinPts_global = 2 and a tunable Eps_global), and
//  4. updating of the local clusterings from the global model.
//
// The steps are exposed individually (LocalStep, GlobalStep, Relabel) so a
// real deployment can run them on different machines via the transport
// package, and as a concurrent single-process orchestrator (Run) used by
// the experiments.
package dbdc

import (
	"fmt"

	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/index"
	"github.com/dbdc-go/dbdc/internal/model"
)

// DefaultMinPtsGlobal is the server-side MinPts. Every representative
// stands for a whole cluster region, so two density-connected
// representatives suffice to merge (Section 6).
const DefaultMinPtsGlobal = 2

// Config collects all DBDC parameters.
type Config struct {
	// Local holds the site-side DBSCAN parameters Eps_local and MinPts.
	Local dbscan.Params
	// Model selects the local model construction, REP_Scor by default.
	Model model.Kind
	// EpsGlobal is the server-side clustering radius. Zero selects the
	// paper's default: the maximum specific ε-range over all received
	// representatives (generally close to 2·Eps_local).
	EpsGlobal float64
	// EpsGlobalAuto derives Eps_global from the data instead of a rule of
	// thumb: the server computes the OPTICS ordering of the representatives
	// and cuts at the widest density gap (Section 6 discusses OPTICS as the
	// tool for exactly this choice). Overrides EpsGlobal when set. Useful
	// when the 2·Eps_local heuristic under- or over-connects, e.g. in
	// higher-dimensional spaces.
	EpsGlobalAuto bool
	// MinPtsGlobal is the server-side MinPts; zero selects
	// DefaultMinPtsGlobal.
	MinPtsGlobal int
	// Index selects the neighborhood index for the local DBSCAN runs and
	// the server clustering; empty selects the R*-tree, the access method
	// of the original DBSCAN.
	Index index.Kind
	// KMeansMaxIter bounds the k-means refinement of REP_kMeans; zero
	// selects the kmeans package default.
	KMeansMaxIter int
	// Sequential makes the orchestrator execute the site-side steps one
	// site at a time instead of concurrently. This is the measurement
	// methodology of the paper ("we carried out all local clusterings
	// sequentially ... the overall runtime was formed by adding the time
	// needed for the global clustering to the maximum time needed for the
	// local clusterings"): per-site durations stay uncontended, so
	// max(local) + global faithfully models sites running on separate
	// machines even when the experiment host has few cores.
	Sequential bool
	// RepBudget caps the number of representatives a site ships per local
	// cluster (the SDBDC follow-up, PKDD 2004): at most RepBudget specific
	// cores per cluster, greedily selected to maximize the fraction of
	// cluster members still covered by the transmitted model
	// (dbscan.BudgetScor). 0 keeps the paper's unbudgeted local model —
	// byte-identical on the wire to a build without the knob. For
	// REP_kMeans the budget bounds the seed set, so k = min(RepBudget,
	// |Scor_C|) centroids are shipped per cluster.
	RepBudget int
	// SiteWorkers is the per-site worker budget for the local DBSCAN runs:
	// values above 1 select dbscan.RunParallel with that many goroutines
	// per site, so one large site no longer bottlenecks a round on a single
	// core. On store-backed indexes (the default for point-slice and store
	// inputs) the parallel run shards the site's data spatially — grid
	// cells of side ≥ ε with an ε-halo, each clustered against a
	// cache-local sub-index (internal/shard) — and falls back to contiguous
	// index chunks otherwise; results are identical either way. The same
	// budget drives the server-side merge clustering of GlobalStep (and
	// with it the aggtree interior nodes). The orchestrator divides the
	// process-wide parallelism budget (GOMAXPROCS) by SiteWorkers to size
	// its bounded site pool, keeping total goroutine fan-out roughly
	// constant. 0 or 1 keeps the sequential per-site DBSCAN (the
	// paper-faithful default). Note the border-point tie rule of
	// dbscan.RunParallel: local models may select a different (equally
	// valid) specific core set than a sequential run.
	SiteWorkers int
}

// withDefaults returns a copy of c with defaults resolved.
func (c Config) withDefaults() Config {
	if c.Model == "" {
		c.Model = model.RepScor
	}
	if c.MinPtsGlobal == 0 {
		c.MinPtsGlobal = DefaultMinPtsGlobal
	}
	if c.Index == "" {
		c.Index = index.KindRStar
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Local.Validate(); err != nil {
		return err
	}
	c = c.withDefaults()
	if c.Model != model.RepScor && c.Model != model.RepKMeans {
		return fmt.Errorf("dbdc: unknown local model kind %q", c.Model)
	}
	if c.EpsGlobal < 0 {
		return fmt.Errorf("dbdc: negative EpsGlobal %v", c.EpsGlobal)
	}
	if c.MinPtsGlobal < 1 {
		return fmt.Errorf("dbdc: MinPtsGlobal %d < 1", c.MinPtsGlobal)
	}
	if c.SiteWorkers < 0 {
		return fmt.Errorf("dbdc: negative SiteWorkers %d", c.SiteWorkers)
	}
	if c.RepBudget < 0 {
		return fmt.Errorf("dbdc: negative RepBudget %d", c.RepBudget)
	}
	return nil
}
