package dbdc

import (
	"math/rand"
	"testing"

	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/model"
)

// condenseTestConfig is the shared site configuration of the condensation
// tests: two dense blobs per site plus background noise cluster cleanly.
func condenseTestConfig() Config {
	return Config{Local: dbscan.Params{Eps: 1.5, MinPts: 4}}
}

// condenseTestSites builds n site outcomes over clustered synthetic data.
func condenseTestSites(t *testing.T, n int, rng *rand.Rand) []*LocalOutcome {
	t.Helper()
	cfg := condenseTestConfig()
	outcomes := make([]*LocalOutcome, n)
	for s := 0; s < n; s++ {
		var pts []geom.Point
		for c := 0; c < 2; c++ {
			cx, cy := float64(10+20*c), float64(10+5*s)
			for i := 0; i < 60; i++ {
				pts = append(pts, geom.Point{cx + rng.NormFloat64(), cy + rng.NormFloat64()})
			}
		}
		for i := 0; i < 10; i++ {
			pts = append(pts, geom.Point{rng.Float64() * 100, rng.Float64() * 100})
		}
		o, err := LocalStep(siteName(s), pts, cfg)
		if err != nil {
			t.Fatalf("LocalStep site %d: %v", s, err)
		}
		outcomes[s] = o
	}
	return outcomes
}

func siteName(s int) string { return string(rune('a'+s)) + "-site" }

func siteModels(outcomes []*LocalOutcome) []*model.LocalModel {
	models := make([]*model.LocalModel, len(outcomes))
	for i, o := range outcomes {
		models[i] = o.Model
	}
	return models
}

// TestCondenseGlobalLossless verifies the unbudgeted condensation is the
// identity on the representative set: every global representative comes
// back with its point, specific ε-range and regional cluster id intact, and
// the model's radius is the regional EpsGlobal (the eps propagation rule).
func TestCondenseGlobalLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	outcomes := condenseTestSites(t, 3, rng)
	cfg := condenseTestConfig()
	g, err := GlobalStep(siteModels(outcomes), cfg)
	if err != nil {
		t.Fatalf("GlobalStep: %v", err)
	}
	if g.Empty() || len(g.Reps) == 0 {
		t.Fatalf("test data produced an empty global model")
	}

	o, err := CondenseGlobal("agg-0", g, cfg)
	if err != nil {
		t.Fatalf("CondenseGlobal: %v", err)
	}
	m := o.Model
	if err := m.Validate(); err != nil {
		t.Fatalf("condensed model invalid: %v", err)
	}
	if m.SiteID != "agg-0" {
		t.Errorf("SiteID = %q, want agg-0", m.SiteID)
	}
	if m.EpsLocal != g.EpsGlobal {
		t.Errorf("EpsLocal = %v, want regional EpsGlobal %v", m.EpsLocal, g.EpsGlobal)
	}
	if m.MinPts != g.MinPtsGlobal {
		t.Errorf("MinPts = %v, want regional MinPtsGlobal %v", m.MinPts, g.MinPtsGlobal)
	}
	if m.NumClusters != g.NumClusters {
		t.Errorf("NumClusters = %d, want %d", m.NumClusters, g.NumClusters)
	}
	if len(m.Reps) != len(g.Reps) {
		t.Fatalf("condensed model has %d reps, want %d (lossless)", len(m.Reps), len(g.Reps))
	}
	// The representative multiset must survive exactly; order may change
	// (condensation groups by cluster id).
	type repKey struct {
		x, y, eps float64
	}
	want := make(map[repKey]int, len(g.Reps))
	cluster := make(map[repKey]int)
	for _, r := range g.Reps {
		k := repKey{r.Point[0], r.Point[1], r.Eps}
		want[k]++
		cluster[k] = int(r.GlobalCluster)
	}
	for _, r := range m.Reps {
		k := repKey{r.Point[0], r.Point[1], r.Eps}
		if want[k] == 0 {
			t.Fatalf("condensed rep %+v not in the global model", r)
		}
		want[k]--
		if int(r.LocalCluster) != cluster[k] {
			t.Errorf("rep %+v carries LocalCluster %d, want regional cluster %d",
				r, r.LocalCluster, cluster[k])
		}
	}
}

// TestCondenseGlobalRoundTrip verifies the interior-node path end to end: a
// parent GlobalStep over condensed regional models produces the same
// partition of the representative union as the flat merge over all site
// models — the tree is lossless when no budget is applied.
func TestCondenseGlobalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	outcomes := condenseTestSites(t, 4, rng)
	models := siteModels(outcomes)
	cfg := condenseTestConfig()

	flat, err := GlobalStep(models, cfg)
	if err != nil {
		t.Fatalf("flat GlobalStep: %v", err)
	}

	// Two regions of two sites, each merged and condensed, then the root.
	var condensed []*model.LocalModel
	for i := 0; i < 2; i++ {
		regional, err := GlobalStep(models[2*i:2*i+2], cfg)
		if err != nil {
			t.Fatalf("regional GlobalStep %d: %v", i, err)
		}
		o, err := CondenseGlobal(siteName(10+i), regional, cfg)
		if err != nil {
			t.Fatalf("CondenseGlobal %d: %v", i, err)
		}
		condensed = append(condensed, o.Model)
	}
	tree, err := GlobalStep(condensed, cfg)
	if err != nil {
		t.Fatalf("root GlobalStep: %v", err)
	}

	if tree.NumClusters != flat.NumClusters {
		t.Fatalf("tree found %d clusters, flat %d", tree.NumClusters, flat.NumClusters)
	}
	if len(tree.Reps) != len(flat.Reps) {
		t.Fatalf("tree clustered %d reps, flat %d", len(tree.Reps), len(flat.Reps))
	}
	// Same partition up to cluster-id renaming: group rep coordinates by
	// global cluster and compare the groupings via a consistent bijection.
	key := func(r model.GlobalRepresentative) [3]float64 {
		return [3]float64{r.Point[0], r.Point[1], r.Eps}
	}
	flatID := make(map[[3]float64]int, len(flat.Reps))
	for _, r := range flat.Reps {
		flatID[key(r)] = int(r.GlobalCluster)
	}
	fwd := make(map[int]int)
	back := make(map[int]int)
	for _, r := range tree.Reps {
		fid, ok := flatID[key(r)]
		if !ok {
			t.Fatalf("tree rep %+v missing from flat merge", r)
		}
		tid := int(r.GlobalCluster)
		if prev, ok := fwd[tid]; ok && prev != fid {
			t.Fatalf("tree cluster %d maps to flat clusters %d and %d", tid, prev, fid)
		}
		if prev, ok := back[fid]; ok && prev != tid {
			t.Fatalf("flat cluster %d maps to tree clusters %d and %d", fid, prev, tid)
		}
		fwd[tid] = fid
		back[fid] = tid
	}
}

// TestCondenseGlobalEmptySentinel is the all-noise regression: an interior
// node whose whole region found only noise must forward a valid,
// representative-free model upward (never an invalid EpsLocal=0 one), and a
// parent merging only such models must reproduce the empty sentinel instead
// of erroring the round.
func TestCondenseGlobalEmptySentinel(t *testing.T) {
	cfg := condenseTestConfig()
	rng := rand.New(rand.NewSource(3))

	// All-noise sites: scattered points, no dense region.
	var noiseModels []*model.LocalModel
	for s := 0; s < 2; s++ {
		var pts []geom.Point
		for i := 0; i < 50; i++ {
			pts = append(pts, geom.Point{rng.Float64() * 1000, rng.Float64() * 1000})
		}
		o, err := LocalStep(siteName(s), pts, cfg)
		if err != nil {
			t.Fatalf("LocalStep: %v", err)
		}
		if len(o.Model.Reps) != 0 {
			t.Fatalf("noise site %d produced %d reps", s, len(o.Model.Reps))
		}
		noiseModels = append(noiseModels, o.Model)
	}

	regional, err := GlobalStep(noiseModels, cfg)
	if err != nil {
		t.Fatalf("regional GlobalStep: %v", err)
	}
	if !regional.Empty() {
		t.Fatalf("all-noise region did not produce the empty sentinel: %+v", regional)
	}

	o, err := CondenseGlobal("agg-noise", regional, cfg)
	if err != nil {
		t.Fatalf("CondenseGlobal over the empty sentinel: %v", err)
	}
	if err := o.Model.Validate(); err != nil {
		t.Fatalf("condensed all-noise model invalid: %v", err)
	}
	if len(o.Model.Reps) != 0 {
		t.Fatalf("condensed all-noise model has %d reps", len(o.Model.Reps))
	}
	if o.Model.EpsLocal <= 0 {
		t.Fatalf("condensed all-noise model leaked the sentinel radius: EpsLocal = %v", o.Model.EpsLocal)
	}

	// A parent over only all-noise regions reproduces the sentinel.
	root, err := GlobalStep([]*model.LocalModel{o.Model}, cfg)
	if err != nil {
		t.Fatalf("parent GlobalStep over all-noise region: %v", err)
	}
	if !root.Empty() {
		t.Fatalf("sentinel did not propagate through the interior node: %+v", root)
	}

	// A parent mixing an all-noise region with a real one merges the real
	// representatives and ignores the empty upload.
	good := condenseTestSites(t, 1, rng)[0]
	root, err = GlobalStep([]*model.LocalModel{o.Model, good.Model}, cfg)
	if err != nil {
		t.Fatalf("parent GlobalStep over mixed regions: %v", err)
	}
	if root.Empty() || len(root.Reps) != len(good.Model.Reps) {
		t.Fatalf("mixed merge lost representatives: got %d, want %d", len(root.Reps), len(good.Model.Reps))
	}
}

// TestCondenseGlobalBudget verifies the per-level budget path: a budgeted
// condensation caps representatives per regional cluster via the standard
// selector, and BudgetedModel re-derivation plus the SetNumObjects override
// both behave like they do for a budgeted site outcome.
func TestCondenseGlobalBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	outcomes := condenseTestSites(t, 3, rng)
	cfg := condenseTestConfig()
	g, err := GlobalStep(siteModels(outcomes), cfg)
	if err != nil {
		t.Fatalf("GlobalStep: %v", err)
	}

	budgeted := cfg
	budgeted.RepBudget = 2
	o, err := CondenseGlobal("agg-0", g, budgeted)
	if err != nil {
		t.Fatalf("CondenseGlobal: %v", err)
	}
	if len(o.Model.Reps) >= len(g.Reps) {
		t.Fatalf("budget 2 kept all %d reps", len(g.Reps))
	}
	if len(o.Model.Reps) > 2*g.NumClusters {
		t.Fatalf("budget 2 over %d clusters kept %d reps", g.NumClusters, len(o.Model.Reps))
	}
	if err := o.Model.Validate(); err != nil {
		t.Fatalf("budgeted condensed model invalid: %v", err)
	}

	o.SetNumObjects(12345)
	if o.Model.NumObjects != 12345 {
		t.Fatalf("SetNumObjects not applied: %d", o.Model.NumObjects)
	}
	// Re-derivation at a different budget keeps the cardinality override.
	m, _, err := o.BudgetedModel(1)
	if err != nil {
		t.Fatalf("BudgetedModel(1): %v", err)
	}
	if m.NumObjects != 12345 {
		t.Fatalf("BudgetedModel dropped the NumObjects override: %d", m.NumObjects)
	}
	if len(m.Reps) > g.NumClusters {
		t.Fatalf("budget 1 over %d clusters kept %d reps", g.NumClusters, len(m.Reps))
	}
}
