package dbdc

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/dbdc-go/dbdc/internal/model"
)

// TestRepBudgetZeroIsIdentity: Config.RepBudget = 0 must produce a local
// model byte-identical on the wire to a config without the knob — the
// backward-compatibility precondition of the whole budget feature.
func TestRepBudgetZeroIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := append(blob(rng, 0, 0, 0.3, 150), blob(rng, 8, 0, 0.3, 150)...)
	for _, kind := range []model.Kind{model.RepScor, model.RepKMeans} {
		cfg := defaultCfg()
		cfg.Model = kind
		base, err := LocalStep("s1", pts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.RepBudget = 0
		budgeted, err := LocalStep("s1", pts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		a, err := base.Model.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		b, err := budgeted.Model.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: RepBudget=0 model differs from unbudgeted on the wire", kind)
		}
		if budgeted.Budget != (base.Budget) || budgeted.Budget.Selected != 0 {
			t.Fatalf("%s: unbudgeted outcome carries budget stats %+v", kind, budgeted.Budget)
		}
	}
}

// TestRepBudgetFlowsThroughLocalStep: a binding budget must shrink the
// model, populate the outcome's accounting, and keep the model valid.
func TestRepBudgetFlowsThroughLocalStep(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := append(blob(rng, 0, 0, 0.35, 200), blob(rng, 9, 1, 0.35, 200)...)
	cfg := defaultCfg()
	full, err := LocalStep("s1", pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if full.MaxScorPerCluster() < 3 {
		t.Fatalf("dataset too easy: max Scor %d", full.MaxScorPerCluster())
	}
	cfg.RepBudget = 2
	out, err := LocalStep("s1", pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Model.Validate(); err != nil {
		t.Fatalf("budgeted model invalid: %v", err)
	}
	if len(out.Model.Reps) >= len(full.Model.Reps) {
		t.Fatalf("budget 2 did not shrink the model: %d vs %d reps",
			len(out.Model.Reps), len(full.Model.Reps))
	}
	if len(out.Model.Reps) > 2*out.Model.NumClusters {
		t.Fatalf("budget 2 shipped %d reps over %d clusters", len(out.Model.Reps), out.Model.NumClusters)
	}
	if out.RepBudget != 2 || out.Budget.Budget != 2 {
		t.Fatalf("budget not recorded: RepBudget=%d stats=%+v", out.RepBudget, out.Budget)
	}
	if out.Budget.Dropped() <= 0 {
		t.Fatalf("binding budget dropped nothing: %+v", out.Budget)
	}
	if f := out.Budget.CoverageFraction(); f <= 0 || f > 1 {
		t.Fatalf("coverage fraction %f out of range", f)
	}
	if out.Model.EncodedSize() >= full.Model.EncodedSize() {
		t.Fatalf("budgeted model not smaller on the wire: %d vs %d bytes",
			out.Model.EncodedSize(), full.Model.EncodedSize())
	}
}

// TestBudgetedModelRenegotiation pins the transport-facing re-condensation
// hook: same budget returns the cached model, a different budget rebuilds
// without mutating the outcome, budget 0 recovers the unbudgeted model.
func TestBudgetedModelRenegotiation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := append(blob(rng, 0, 0, 0.35, 180), blob(rng, 9, 1, 0.35, 180)...)
	cfg := defaultCfg()
	cfg.RepBudget = 4
	out, err := LocalStep("s1", pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	same, stats, err := out.BudgetedModel(4)
	if err != nil {
		t.Fatal(err)
	}
	if same != out.Model || stats != out.Budget {
		t.Fatal("BudgetedModel(current budget) did not return the cached model")
	}
	smaller, sstats, err := out.BudgetedModel(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(smaller.Reps) >= len(out.Model.Reps) {
		t.Fatalf("budget 1 not smaller than budget 4: %d vs %d", len(smaller.Reps), len(out.Model.Reps))
	}
	if sstats.Budget != 1 {
		t.Fatalf("stats budget = %d, want 1", sstats.Budget)
	}
	if out.RepBudget != 4 || out.Budget.Budget != 4 {
		t.Fatalf("renegotiation mutated the outcome: %+v", out.Budget)
	}
	unbudgeted, _, err := out.BudgetedModel(0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RepBudget = 0
	want, err := LocalStep("s1", pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := unbudgeted.MarshalBinary()
	b, _ := want.Model.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("BudgetedModel(0) differs from an unbudgeted LocalStep")
	}
	if _, _, err := out.BudgetedModel(-1); err == nil {
		t.Fatal("negative budget accepted")
	}
}

// TestRunWithRepBudget: the in-process orchestrator threads the budget to
// every site, records the accounting in the site results, and still yields
// a consistent global labeling.
func TestRunWithRepBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sites := []Site{
		{ID: "a", Points: append(blob(rng, 0, 0, 0.35, 150), blob(rng, 8, 0, 0.35, 150)...)},
		{ID: "b", Points: append(blob(rng, 0, 0.5, 0.35, 150), blob(rng, 8, 0.5, 0.35, 150)...)},
	}
	cfg := defaultCfg()
	full, err := Run(sites, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RepBudget = 3
	res, err := Run(sites, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for id, sr := range res.Sites {
		if sr.Budget.Budget != 3 {
			t.Fatalf("site %s: budget stats not recorded: %+v", id, sr.Budget)
		}
		if sr.UplinkBytes >= full.Sites[id].UplinkBytes {
			t.Fatalf("site %s: budgeted uplink %d not below unbudgeted %d",
				id, sr.UplinkBytes, full.Sites[id].UplinkBytes)
		}
		if len(sr.Labels) != len(sites[0].Points) {
			t.Fatalf("site %s: %d labels for %d points", id, len(sr.Labels), len(sites[0].Points))
		}
	}
	if res.TotalRepresentatives() >= full.TotalRepresentatives() {
		t.Fatalf("budget 3 did not reduce representatives: %d vs %d",
			res.TotalRepresentatives(), full.TotalRepresentatives())
	}
	if res.Global.NumClusters < 1 {
		t.Fatal("budgeted run produced no global clusters")
	}
}
