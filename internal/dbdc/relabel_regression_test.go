package dbdc

import (
	"strings"
	"testing"

	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/model"
)

// TestRelabelMixedDimensionReps guards the silent-relabel bug: a global
// model whose representatives mix dimensionalities defeats the kd-tree
// over the representative points, and Relabel historically swallowed the
// build error and returned an all-noise labeling — indistinguishable from
// "no object is covered". It must surface the error instead.
func TestRelabelMixedDimensionReps(t *testing.T) {
	global := &model.GlobalModel{
		EpsGlobal: 1, MinPtsGlobal: 2, NumClusters: 2,
		Reps: []model.GlobalRepresentative{
			{Representative: model.Representative{Point: geom.Point{0, 0}, Eps: 1, LocalCluster: 0}, SiteID: "a", GlobalCluster: 1},
			{Representative: model.Representative{Point: geom.Point{1, 2, 3}, Eps: 1, LocalCluster: 0}, SiteID: "b", GlobalCluster: 2},
		},
	}
	// The queried point sits well inside the first representative's
	// ε-range: under the old behavior it came back as noise, silently.
	labels, err := Relabel([]geom.Point{{0.1, 0}}, global)
	if err == nil {
		t.Fatalf("mixed-dimension representatives produced no error (labels = %v)", labels)
	}
	if !strings.Contains(err.Error(), "relabel") {
		t.Errorf("error does not identify the relabel step: %v", err)
	}
	if labels != nil {
		t.Errorf("failed relabel still returned a labeling: %v", labels)
	}
}

// TestGlobalStepAllNoiseSentinel: a round where every site found only noise
// has no representatives to cluster. GlobalStep historically fabricated
// EpsGlobal = Eps_local for this case ("any positive value validates") —
// a radius no clustering ever used. It must return the documented empty
// sentinel instead: EpsGlobal 0, no representatives, zero clusters.
func TestGlobalStepAllNoiseSentinel(t *testing.T) {
	m := &model.LocalModel{
		SiteID: "s1", Kind: model.RepScor, EpsLocal: 0.5, MinPts: 5,
		NumObjects: 3, NumClusters: 0,
	}
	g, err := GlobalStep([]*model.LocalModel{m}, defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !g.Empty() {
		t.Fatalf("all-noise round produced a non-empty global model: %+v", g)
	}
	if g.EpsGlobal != 0 {
		t.Fatalf("all-noise sentinel fabricated EpsGlobal %v, want 0", g.EpsGlobal)
	}
	if g.NumClusters != 0 || len(g.Reps) != 0 {
		t.Fatalf("sentinel carries clusters: %+v", g)
	}
	// The sentinel is a first-class wire citizen: it validates, survives
	// the binary round trip and relabels every object to noise.
	if err := g.Validate(); err != nil {
		t.Fatalf("sentinel rejected by Validate: %v", err)
	}
	b, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g2 model.GlobalModel
	if err := g2.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if err := g2.Validate(); err != nil {
		t.Fatalf("decoded sentinel rejected: %v", err)
	}
	labels, err := Relabel([]geom.Point{{0, 0}, {1, 1}}, &g2)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range labels {
		if l != cluster.Noise {
			t.Fatalf("object %d adopted by the empty sentinel: %v", i, l)
		}
	}
}

// TestGlobalModelSentinelValidation pins the sentinel's validation rules:
// EpsGlobal 0 is legal exactly when the model carries no representatives.
func TestGlobalModelSentinelValidation(t *testing.T) {
	ok := &model.GlobalModel{MinPtsGlobal: 2}
	if err := ok.Validate(); err != nil {
		t.Fatalf("empty sentinel rejected: %v", err)
	}
	bad := &model.GlobalModel{
		EpsGlobal: 0, MinPtsGlobal: 2, NumClusters: 1,
		Reps: []model.GlobalRepresentative{
			{Representative: model.Representative{Point: geom.Point{0, 0}, Eps: 1}, SiteID: "a", GlobalCluster: 1},
		},
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("EpsGlobal 0 with representatives validated")
	}
	neg := &model.GlobalModel{EpsGlobal: -1, MinPtsGlobal: 2}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative EpsGlobal validated")
	}
}
