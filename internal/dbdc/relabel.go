package dbdc

import (
	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
	"github.com/dbdc-go/dbdc/internal/model"
)

// Relabel performs step 4 of DBDC on one site: every local object o that
// lies within the ε_r-range of a representative r of the global model is
// assigned r's global cluster id (Section 7). When several representatives
// cover o, the nearest one wins (exact ties break toward the lowest
// representative index), which makes the relabeling deterministic. Objects
// covered by no representative stay noise. Through this rule two formerly
// independent local clusters merge when their representatives share a
// global cluster, and former local noise joins global clusters it is close
// enough to — including clusters discovered only on other sites.
//
// The choice rule itself lives in RepSelector and is shared with the
// online classifier of internal/serve: classifying a training point at
// serving time is, by construction, identical to relabeling it here.
//
// The empty global model (the all-noise sentinel of GlobalStep,
// model.GlobalModel.Empty) is handled explicitly: every object stays noise
// and no error is raised. A structurally broken global model — e.g.
// representatives of mixed dimensionality, which defeats the kd-tree over
// the representative points — returns an error instead of a silent
// all-noise labeling.
func Relabel(pts []geom.Point, global *model.GlobalModel) (cluster.Labeling, error) {
	labels := cluster.NewLabeling(len(pts))
	for i := range labels {
		labels[i] = cluster.Noise
	}
	if global.Empty() || len(pts) == 0 {
		// All-noise sentinel (or nothing to label): noise labeling is the
		// correct outcome, not a degraded fallback.
		return labels, nil
	}
	// Representatives have individual radii; the selector queries a
	// kd-tree over the representative points with the maximum radius, then
	// verifies each candidate's own ε_r. The representative count is
	// small, so the tree is cheap to build and each query local.
	sel, err := NewRepSelector(global, index.KindKDTree)
	if err != nil {
		// Historically a kd-tree build failure was swallowed and Relabel
		// returned an all-noise labeling, making a corrupt global model
		// indistinguishable from "no object is covered". Server-side
		// validation normally rejects such models, but a library caller
		// can hand Relabel anything.
		return nil, err
	}
	var sc RepScratch
	for i, p := range pts {
		labels[i] = sel.SelectInto(p, &sc)
	}
	return labels, nil
}

// RelabelOutcome applies Relabel to a LocalOutcome and additionally reports
// how the site's own clustering changed: how many local clusters were
// merged into larger global ones and how many former noise objects joined a
// cluster. The counts drive the "transmit a new local model only when the
// clustering changed considerably" policy of incremental DBDC.
type RelabelStats struct {
	// NoiseAdopted counts local noise objects that joined a global cluster.
	NoiseAdopted int
	// LocalClustersMerged counts local clusters that share their global
	// cluster with at least one other local cluster of the same site.
	LocalClustersMerged int
}

// RelabelSite relabels the site's objects and derives the change
// statistics.
func RelabelSite(outcome *LocalOutcome, global *model.GlobalModel) (cluster.Labeling, RelabelStats, error) {
	var stats RelabelStats
	labels, err := Relabel(outcome.Points, global)
	if err != nil {
		return nil, stats, err
	}
	for i := range labels {
		if outcome.Clustering.Labels[i] == cluster.Noise && labels[i] != cluster.Noise {
			stats.NoiseAdopted++
		}
	}
	// Count local clusters whose global id is shared with another local
	// cluster. The mapping goes through this site's representatives.
	globalOf := make(map[cluster.ID]map[cluster.ID]bool) // global -> set of local
	for _, r := range global.Reps {
		if r.SiteID != outcome.SiteID {
			continue
		}
		if globalOf[r.GlobalCluster] == nil {
			globalOf[r.GlobalCluster] = make(map[cluster.ID]bool)
		}
		globalOf[r.GlobalCluster][r.LocalCluster] = true
	}
	for _, locals := range globalOf {
		if len(locals) > 1 {
			stats.LocalClustersMerged += len(locals)
		}
	}
	return labels, stats, nil
}
