// Package faultnet provides deterministic fault injection for net.Conn and
// net.Listener so transport code can be tested against the failure modes a
// real DBDC deployment sees: sites that never connect, connections that die
// mid-upload, links that corrupt bytes, peers that stall until a deadline
// fires, and slow networks.
//
// Faults are injected *by script*: every connection (indexed by accept or
// dial order) gets a Faults value describing exactly what goes wrong and
// after how many bytes. There is no wall-clock randomness — given the same
// plan and the same traffic, the same faults fire at the same byte offsets,
// which is what makes the transport tests deterministic. The only random
// helper, RandomPlan, derives its decisions from a caller-provided seed and
// the connection index, so it too is reproducible.
//
// Typical use:
//
//	ln, _ := net.Listen("tcp", "127.0.0.1:0")
//	fln := faultnet.NewListener(ln, faultnet.Seq(
//	    &faultnet.Faults{FailReadAfter: 16}, // conn 0: dies 16 bytes in
//	    nil,                                 // conn 1: clean
//	))
//	srv, _ := transport.NewServerListener(fln, ...)
//
// or, for client-side faults,
//
//	d := &faultnet.Dialer{Plan: faultnet.Seq(&faultnet.Faults{Refuse: true})}
//	client := &transport.Client{Addr: addr, Dial: d.DialTimeout}
package faultnet

import (
	"errors"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"
)

// ErrInjected is the error returned by scripted read/write failures.
var ErrInjected = errors.New("faultnet: injected fault")

// ErrRefused is returned by a Dialer whose script refuses the connection.
var ErrRefused = errors.New("faultnet: connection refused (scripted)")

// Faults scripts the behavior of one connection. The zero value injects
// nothing. All byte thresholds count payload bytes that passed through the
// faulty side of the connection; a threshold of 0 disables the fault (use
// Refuse for failing before the first byte).
type Faults struct {
	// Refuse rejects the connection outright: a Listener closes it
	// immediately after accept (the peer sees a reset/EOF), a Dialer
	// fails the dial with ErrRefused.
	Refuse bool

	// ConnectDelay delays connection establishment: a Listener sleeps
	// before handing the connection to the server, a Dialer before
	// dialing.
	ConnectDelay time.Duration

	// ReadLatency and WriteLatency are added before every Read/Write
	// call, bounded by the connection deadline.
	ReadLatency  time.Duration
	WriteLatency time.Duration

	// FailReadAfter/FailWriteAfter make the connection return ErrInjected
	// from the first Read/Write once that many bytes have passed in the
	// respective direction, and close the underlying connection so the
	// peer fails too.
	FailReadAfter  int
	FailWriteAfter int

	// StallReadAfter/StallWriteAfter make the connection block once that
	// many bytes have passed, until the respective deadline fires
	// (os.ErrDeadlineExceeded, a timeout net.Error) or the connection is
	// closed. This is the fault that exercises deadline handling.
	StallReadAfter  int
	StallWriteAfter int

	// CutAfterWrite silently drops everything written beyond that many
	// bytes and closes the underlying connection: the local writer
	// believes the write succeeded while the peer sees a truncated
	// stream — the classic mid-upload connection drop.
	CutAfterWrite int

	// FlipWriteByte corrupts the write stream: the byte at this 1-based
	// offset is XORed with FlipMask (default 0x40) before hitting the
	// wire. 0 disables. A CRC-protected protocol must detect this.
	FlipWriteByte int
	// FlipMask is the XOR mask used by FlipWriteByte; 0 means 0x40.
	FlipMask byte
}

// clone returns a copy so shared Faults values in plans are safe.
func (f *Faults) clone() Faults { return *f }

// Plan maps a connection index (accept order for listeners, dial order for
// dialers) to the faults scripted for it. Returning nil yields a clean,
// unwrapped connection.
type Plan func(connIndex int) *Faults

// Seq scripts the first len(faults) connections and leaves every later one
// clean. Nil entries are clean connections.
func Seq(faults ...*Faults) Plan {
	return func(i int) *Faults {
		if i < len(faults) {
			return faults[i]
		}
		return nil
	}
}

// Always applies the same faults to every connection.
func Always(f *Faults) Plan { return func(int) *Faults { return f } }

// RandomPlan applies f to each connection with probability p, decided by a
// rng derived from seed and the connection index — deterministic for a
// given seed regardless of accept timing.
func RandomPlan(seed int64, p float64, f *Faults) Plan {
	return func(i int) *Faults {
		rng := rand.New(rand.NewSource(seed + int64(i)*0x9E3779B9))
		if rng.Float64() < p {
			return f
		}
		return nil
	}
}

// Conn wraps a net.Conn and injects the scripted faults.
type Conn struct {
	inner net.Conn
	f     Faults

	mu            sync.Mutex
	readN, writeN int
	readDeadline  time.Time
	writeDeadline time.Time

	closeOnce sync.Once
	closed    chan struct{}
}

// WrapConn wraps conn with the given faults.
func WrapConn(conn net.Conn, f Faults) *Conn {
	return &Conn{inner: conn, f: f, closed: make(chan struct{})}
}

// BytesRead reports how many bytes passed through Read so far.
func (c *Conn) BytesRead() int { c.mu.Lock(); defer c.mu.Unlock(); return c.readN }

// BytesWritten reports how many bytes the caller wrote (including bytes the
// script silently dropped).
func (c *Conn) BytesWritten() int { c.mu.Lock(); defer c.mu.Unlock(); return c.writeN }

func (c *Conn) deadline(read bool) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if read {
		return c.readDeadline
	}
	return c.writeDeadline
}

// sleep waits for d but never past the deadline; it returns a timeout error
// if the deadline cuts the sleep short.
func (c *Conn) sleep(d time.Duration, deadline time.Time) error {
	if d <= 0 {
		return nil
	}
	if !deadline.IsZero() {
		if until := time.Until(deadline); until < d {
			c.block(deadline)
			return os.ErrDeadlineExceeded
		}
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-c.closed:
		return net.ErrClosed
	}
}

// block parks until the deadline fires or the connection closes and
// returns the corresponding error.
func (c *Conn) block(deadline time.Time) error {
	var timeC <-chan time.Time
	if !deadline.IsZero() {
		timer := time.NewTimer(time.Until(deadline))
		defer timer.Stop()
		timeC = timer.C
	}
	select {
	case <-timeC:
		return os.ErrDeadlineExceeded
	case <-c.closed:
		return net.ErrClosed
	}
}

// Read implements net.Conn with the scripted read faults.
func (c *Conn) Read(p []byte) (int, error) {
	dl := c.deadline(true)
	if err := c.sleep(c.f.ReadLatency, dl); err != nil {
		return 0, err
	}
	c.mu.Lock()
	n := c.readN
	c.mu.Unlock()
	if c.f.StallReadAfter > 0 && n >= c.f.StallReadAfter {
		return 0, c.block(dl)
	}
	if c.f.FailReadAfter > 0 && n >= c.f.FailReadAfter {
		c.inner.Close()
		return 0, ErrInjected
	}
	limit := len(p)
	if c.f.StallReadAfter > 0 && c.f.StallReadAfter-n < limit {
		limit = c.f.StallReadAfter - n
	}
	if c.f.FailReadAfter > 0 && c.f.FailReadAfter-n < limit {
		limit = c.f.FailReadAfter - n
	}
	got, err := c.inner.Read(p[:limit])
	c.mu.Lock()
	c.readN += got
	c.mu.Unlock()
	return got, err
}

// Write implements net.Conn with the scripted write faults.
func (c *Conn) Write(p []byte) (int, error) {
	dl := c.deadline(false)
	if err := c.sleep(c.f.WriteLatency, dl); err != nil {
		return 0, err
	}
	c.mu.Lock()
	n := c.writeN
	c.mu.Unlock()
	if c.f.StallWriteAfter > 0 && n >= c.f.StallWriteAfter {
		return 0, c.block(dl)
	}
	if c.f.FailWriteAfter > 0 && n >= c.f.FailWriteAfter {
		c.inner.Close()
		return 0, ErrInjected
	}
	// Truncation: pretend the write succeeded, forward only the bytes
	// below the cut, then close so the peer sees a dead, half-written
	// stream.
	if c.f.CutAfterWrite > 0 && n >= c.f.CutAfterWrite {
		c.mu.Lock()
		c.writeN += len(p)
		c.mu.Unlock()
		c.inner.Close()
		return len(p), nil
	}
	limit := len(p)
	if c.f.StallWriteAfter > 0 && c.f.StallWriteAfter-n < limit {
		limit = c.f.StallWriteAfter - n
	}
	if c.f.FailWriteAfter > 0 && c.f.FailWriteAfter-n < limit {
		limit = c.f.FailWriteAfter - n
	}
	cut := false
	if c.f.CutAfterWrite > 0 && c.f.CutAfterWrite-n < limit {
		limit = c.f.CutAfterWrite - n
		cut = true
	}
	out := p[:limit]
	if off := c.f.FlipWriteByte - 1; c.f.FlipWriteByte > 0 && off >= n && off < n+limit {
		mask := c.f.FlipMask
		if mask == 0 {
			mask = 0x40
		}
		corrupted := make([]byte, limit)
		copy(corrupted, out)
		corrupted[off-n] ^= mask
		out = corrupted
	}
	wrote, err := c.inner.Write(out)
	c.mu.Lock()
	c.writeN += wrote
	c.mu.Unlock()
	if err != nil {
		return wrote, err
	}
	if cut {
		// Swallow the remainder and kill the connection.
		c.mu.Lock()
		c.writeN += len(p) - limit
		c.mu.Unlock()
		c.inner.Close()
		return len(p), nil
	}
	if limit < len(p) {
		more, err := c.Write(p[limit:])
		return limit + more, err
	}
	return wrote, nil
}

// Close implements net.Conn.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.inner.Close()
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline, c.writeDeadline = t, t
	c.mu.Unlock()
	return c.inner.SetDeadline(t)
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.inner.SetReadDeadline(t)
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDeadline = t
	c.mu.Unlock()
	return c.inner.SetWriteDeadline(t)
}

// Listener wraps a net.Listener and applies a Plan to accepted connections
// in accept order.
type Listener struct {
	inner net.Listener
	plan  Plan

	mu       sync.Mutex
	next     int
	accepted int
	refused  int
}

// NewListener wraps ln. plan may be nil (every connection clean).
func NewListener(ln net.Listener, plan Plan) *Listener {
	return &Listener{inner: ln, plan: plan}
}

// Accepted reports how many connections were handed to the caller.
func (l *Listener) Accepted() int { l.mu.Lock(); defer l.mu.Unlock(); return l.accepted }

// Refused reports how many connections the script rejected.
func (l *Listener) Refused() int { l.mu.Lock(); defer l.mu.Unlock(); return l.refused }

// Accept implements net.Listener: scripted refusals close the connection
// and keep accepting, everything else is wrapped per plan.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		conn, err := l.inner.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		i := l.next
		l.next++
		l.mu.Unlock()
		var f *Faults
		if l.plan != nil {
			f = l.plan(i)
		}
		if f == nil {
			l.mu.Lock()
			l.accepted++
			l.mu.Unlock()
			return conn, nil
		}
		if f.Refuse {
			conn.Close()
			l.mu.Lock()
			l.refused++
			l.mu.Unlock()
			continue
		}
		if f.ConnectDelay > 0 {
			time.Sleep(f.ConnectDelay)
		}
		l.mu.Lock()
		l.accepted++
		l.mu.Unlock()
		return WrapConn(conn, f.clone()), nil
	}
}

// Close implements net.Listener.
func (l *Listener) Close() error { return l.inner.Close() }

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// SetDeadline forwards to the inner listener when it supports deadlines
// (TCP listeners do), so accept-phase deadlines work through the wrapper.
func (l *Listener) SetDeadline(t time.Time) error {
	if d, ok := l.inner.(interface{ SetDeadline(time.Time) error }); ok {
		return d.SetDeadline(t)
	}
	return errors.New("faultnet: inner listener does not support deadlines")
}

// Dialer produces faulty client-side connections, applying a Plan in dial
// order. The zero value dials cleanly.
type Dialer struct {
	// Plan scripts the i-th dial attempt; nil means all dials clean.
	Plan Plan

	mu    sync.Mutex
	dials int
}

// Dials reports how many dial attempts were made (including refused ones).
func (d *Dialer) Dials() int { d.mu.Lock(); defer d.mu.Unlock(); return d.dials }

// DialTimeout dials addr like net.DialTimeout with the scripted faults
// applied. Its signature matches transport.DialFunc.
func (d *Dialer) DialTimeout(network, addr string, timeout time.Duration) (net.Conn, error) {
	d.mu.Lock()
	i := d.dials
	d.dials++
	d.mu.Unlock()
	var f *Faults
	if d.Plan != nil {
		f = d.Plan(i)
	}
	if f != nil && f.Refuse {
		return nil, ErrRefused
	}
	if f != nil && f.ConnectDelay > 0 {
		time.Sleep(f.ConnectDelay)
	}
	conn, err := net.DialTimeout(network, addr, timeout)
	if err != nil || f == nil {
		return conn, err
	}
	return WrapConn(conn, f.clone()), nil
}
