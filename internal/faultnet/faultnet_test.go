package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// pipe returns a wrapped client conn (faults f applied on the client side)
// and the raw server side of a loopback TCP connection.
func pipe(t *testing.T, f Faults) (*Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		conn net.Conn
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.conn.Close() })
	return WrapConn(client, f), r.conn
}

func TestCleanPassThrough(t *testing.T) {
	c, peer := pipe(t, Faults{})
	msg := []byte("hello fault-free world")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(peer, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
	if c.BytesWritten() != len(msg) {
		t.Fatalf("BytesWritten=%d", c.BytesWritten())
	}
}

func TestFailWriteAfter(t *testing.T) {
	c, _ := pipe(t, Faults{FailWriteAfter: 4})
	n, err := c.Write([]byte("abcd")) // exactly the threshold: passes
	if err != nil || n != 4 {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
}

func TestFailWriteMidBuffer(t *testing.T) {
	c, peer := pipe(t, Faults{FailWriteAfter: 3})
	n, err := c.Write([]byte("abcdef"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	if n != 3 {
		t.Fatalf("wrote %d bytes before fault, want 3", n)
	}
	got := make([]byte, 3)
	if _, err := io.ReadFull(peer, got); err != nil || string(got) != "abc" {
		t.Fatalf("peer got %q err=%v", got, err)
	}
	// Underlying conn is closed: peer sees EOF.
	if _, err := peer.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read succeeded after injected failure")
	}
}

func TestFailReadAfter(t *testing.T) {
	c, peer := pipe(t, Faults{FailReadAfter: 5})
	go peer.Write([]byte("0123456789"))
	got := make([]byte, 5)
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
}

func TestCutAfterWriteTruncates(t *testing.T) {
	c, peer := pipe(t, Faults{CutAfterWrite: 6})
	n, err := c.Write([]byte("0123456789"))
	if err != nil || n != 10 {
		t.Fatalf("cut write must report success, got n=%d err=%v", n, err)
	}
	if c.BytesWritten() != 10 {
		t.Fatalf("BytesWritten=%d, want 10", c.BytesWritten())
	}
	got, err := io.ReadAll(peer)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "012345" {
		t.Fatalf("peer got %q, want truncated %q", got, "012345")
	}
}

func TestFlipWriteByte(t *testing.T) {
	c, peer := pipe(t, Faults{FlipWriteByte: 3, FlipMask: 0x01})
	if _, err := c.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6)
	if _, err := io.ReadFull(peer, got); err != nil {
		t.Fatal(err)
	}
	want := []byte("ab" + string([]byte{'c' ^ 0x01}) + "def")
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestStallReadHonorsDeadline(t *testing.T) {
	c, peer := pipe(t, Faults{StallReadAfter: 2})
	go peer.Write([]byte("abcdef"))
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	start := time.Now()
	_, err := c.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("stall error %v is not a timeout net.Error", err)
	}
	if el := time.Since(start); el < 50*time.Millisecond || el > 2*time.Second {
		t.Fatalf("stall released after %v", el)
	}
}

func TestStallUnblocksOnClose(t *testing.T) {
	c, _ := pipe(t, Faults{StallWriteAfter: 1})
	c.Write([]byte("x"))
	done := make(chan error, 1)
	go func() {
		_, err := c.Write([]byte("y"))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("got %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stalled write did not unblock on close")
	}
}

func TestWriteLatency(t *testing.T) {
	c, peer := pipe(t, Faults{WriteLatency: 60 * time.Millisecond})
	start := time.Now()
	go func() {
		got := make([]byte, 2)
		io.ReadFull(peer, got)
	}()
	if _, err := c.Write([]byte("ab")); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 50*time.Millisecond {
		t.Fatalf("write returned after %v, latency not injected", el)
	}
}

func TestLatencyCutShortByDeadline(t *testing.T) {
	c, _ := pipe(t, Faults{WriteLatency: 5 * time.Second})
	c.SetWriteDeadline(time.Now().Add(80 * time.Millisecond))
	start := time.Now()
	_, err := c.Write([]byte("ab"))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("deadline fired only after %v", el)
	}
}

func TestListenerPlanAndRefusal(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := NewListener(inner, Seq(&Faults{Refuse: true}, nil))
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept() // conn 0 refused, conn 1 returned
		if err == nil {
			accepted <- conn
		}
	}()
	// First dial: accepted at TCP level, then scripted close.
	c0, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c0.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c0.Read(make([]byte, 1)); err == nil {
		t.Fatal("refused conn delivered data")
	}
	// Second dial: clean.
	c1, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	select {
	case conn := <-accepted:
		conn.Close()
	case <-time.After(2 * time.Second):
		t.Fatal("second connection never accepted")
	}
	if ln.Refused() != 1 || ln.Accepted() != 1 {
		t.Fatalf("refused=%d accepted=%d", ln.Refused(), ln.Accepted())
	}
}

func TestDialerRefusal(t *testing.T) {
	d := &Dialer{Plan: Seq(&Faults{Refuse: true})}
	if _, err := d.DialTimeout("tcp", "127.0.0.1:1", time.Second); !errors.Is(err, ErrRefused) {
		t.Fatalf("got %v, want ErrRefused", err)
	}
	if d.Dials() != 1 {
		t.Fatalf("dials=%d", d.Dials())
	}
}

func TestRandomPlanDeterministic(t *testing.T) {
	a := RandomPlan(42, 0.5, &Faults{Refuse: true})
	b := RandomPlan(42, 0.5, &Faults{Refuse: true})
	hits := 0
	for i := 0; i < 100; i++ {
		fa, fb := a(i), b(i)
		if (fa == nil) != (fb == nil) {
			t.Fatalf("plan disagrees with itself at %d", i)
		}
		if fa != nil {
			hits++
		}
	}
	if hits == 0 || hits == 100 {
		t.Fatalf("degenerate random plan: %d/100 hits", hits)
	}
}
