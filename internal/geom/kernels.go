package geom

// This file holds the build-tag-independent part of the distance-kernel
// layer: the scalar reference kernel every other variant must match bit for
// bit, and the batched (one-query-to-many-rows) entry points of the Store.
// The per-build dispatch — which concrete kernel a given stride runs on —
// lives in kernels_dispatch.go (default build: width-unrolled variants) and
// kernels_scalar.go (`-tags dbdc_scalar_kernels`: the scalar loop for every
// stride, the differential twin CI pits the unrolled build against).
//
// The bit-identity contract, stated once:
//
//   - Within a build, every entry point — Euclidean.DistanceSq, the Store
//     one-row kernels, DistanceSqBatch, DistanceSqInterval — runs the same
//     shared noinline kernel body for a given stride, so batched and
//     one-at-a-time results are identical bits for ANY input, NaN payloads
//     and infinities included. FuzzStoreDistanceSq and FuzzDistanceSqBatch
//     enforce this on raw coordinate bits.
//   - Across kernel variants (unrolled vs scalar build), results are
//     identical bits for all non-NaN operands — the unrolled bodies perform
//     the same sequence of IEEE subtract/multiply/add operations and Go
//     never reassociates floating-point expressions. When two NaNs with
//     different payloads meet in the accumulator the backend's choice of
//     add-operand order picks the surviving payload per compiled body, so
//     NaN payloads may differ between separately compiled kernels; the
//     result is still some NaN, and a NaN distance can never alter
//     clustering (it fails every ≤ eps² test and never wins a max-fold).

// KernelDispatch names the active kernel build ("scalar" or the unrolled
// dispatch table). It is recorded in benchmark artifacts so numbers from
// different kernel builds are never silently compared.
func KernelDispatch() string { return kernelDispatchName }

// distSqKernel is the one-row entry point of the active kernel: a batch of
// one through batchKernel, the single shared compiled body per stride. The
// id and output cells stay on the caller's stack (batchKernel does not
// retain its arguments), so a single distance costs one call and no heap
// traffic — and is bit-identical to the same row inside any larger batch,
// NaN payloads included, because it IS the same machine code.
func distSqKernel(a, b []float64) float64 {
	var ids [1]int
	var out [1]float64
	batchKernel(b, 0, a, ids[:], out[:])
	return out[0]
}

// distSqScalar is the plain squared-distance loop — the historical
// Euclidean.DistanceSq body and the reference every dispatched kernel is
// held to (bit-for-bit on non-NaN operands; NaN payloads are pinned within
// a build, not across separately compiled bodies — see kernels_dispatch.go).
// b must be at least as long as a (callers reslice; a longer b is
// truncated, a shorter one panics — the hoisted-check contract). noinline:
// in the dbdc_scalar_kernels build this is the one shared kernel body every
// entry point runs.
//
//go:noinline
func distSqScalar(a, b []float64) float64 {
	b = b[:len(a)]
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// DistanceSqBatch computes the squared Euclidean distance from the external
// query point q to every addressed row: out[k] = DistanceSqTo(ids[k], q),
// bit for bit. len(out) must be at least len(ids); the filled prefix
// out[:len(ids)] is returned. This is the amortized shape of candidate
// verification: the kernel is dispatched once per batch instead of once per
// point, the query coordinates stay in registers across rows, and the row
// loop is free of per-call slice-header setup.
//
// Like DistanceSqTo, a q longer than the stride panics; a shorter q
// compares the coordinate prefix. Row ids are validated only under
// -tags dbdc_debugchecks; out-of-range ids still panic via slice bounds.
func (s *Store) DistanceSqBatch(q Point, ids []int, out []float64) []float64 {
	if debugChecks {
		for _, id := range ids {
			s.mustIndex(id)
		}
		if s.Len() > 0 {
			mustSameDim(q, s.Point(0))
		}
	}
	out = out[:len(ids)]
	if len(q) > s.dim {
		panic("geom: batch query point longer than store stride")
	}
	batchKernel(s.buf, s.dim, q, ids, out)
	return out
}

// DistanceSqInterval is DistanceSqBatch over the consecutive row interval
// [lo, lo+len(out)): out[k] = DistanceSqTo(lo+k, q). It is the linear-scan
// shape — no id gather, the rows stream in layout order.
func (s *Store) DistanceSqInterval(q Point, lo int, out []float64) []float64 {
	if debugChecks {
		s.mustIndex(lo)
		if len(out) > 0 {
			s.mustIndex(lo + len(out) - 1)
		}
		if s.Len() > 0 {
			mustSameDim(q, s.Point(0))
		}
	}
	if len(q) > s.dim {
		panic("geom: interval query point longer than store stride")
	}
	intervalKernel(s.buf, s.dim, q, lo, out)
	return out
}

// VerifyRangeSq is the batched candidate-verification step shared by every
// index: it appends to out each id from cand whose squared distance to q is
// at most eps2, preserving cand order. The computation is fused — distance
// and threshold in one kernel pass, no distance block written and re-read —
// and the membership decisions are identical to testing DistanceSqTo(id, q)
// ≤ eps2 one id at a time: the fused body computes the same IEEE operation
// chain (identical bits for all non-NaN operands), and a NaN distance fails
// the test in every kernel body.
func (s *Store) VerifyRangeSq(q Point, cand []int, eps2 float64, out []int) []int {
	if len(cand) == 0 {
		return out
	}
	if debugChecks {
		for _, id := range cand {
			s.mustIndex(id)
		}
		if s.Len() > 0 {
			mustSameDim(q, s.Point(0))
		}
	}
	if len(q) > s.dim {
		panic("geom: verify query point longer than store stride")
	}
	return verifyKernel(s.buf, s.dim, q, cand, eps2, out)
}

// VerifyRangeSq2 is VerifyRangeSq with the two query coordinates passed as
// scalars — the 2-d hot path of the tree traversals, which then never
// materialise a query slice header. It funnels into the same fused kernel
// body, so its decisions are bit-for-bit those of VerifyRangeSq.
func (s *Store) VerifyRangeSq2(q0, q1 float64, cand []int, eps2 float64, out []int) []int {
	if len(cand) == 0 {
		return out
	}
	q := [2]float64{q0, q1}
	if debugChecks {
		for _, id := range cand {
			s.mustIndex(id)
		}
		if s.Len() > 0 {
			mustSameDim(q[:], s.Point(0))
		}
	}
	if 2 > s.dim {
		panic("geom: verify query point longer than store stride")
	}
	return verifyKernel(s.buf, s.dim, q[:], cand, eps2, out)
}

// VerifyIntervalSq is VerifyRangeSq over the consecutive row interval
// [lo, hi): ids within squared distance eps2 of q are appended to out in
// ascending row order. This is the exhaustive linear-scan shape — the rows
// stream in layout order, no id list is materialised.
func (s *Store) VerifyIntervalSq(q Point, lo, hi int, eps2 float64, out []int) []int {
	if hi <= lo {
		return out
	}
	if debugChecks {
		s.mustIndex(lo)
		s.mustIndex(hi - 1)
		if s.Len() > 0 {
			mustSameDim(q, s.Point(0))
		}
	}
	if len(q) > s.dim {
		panic("geom: verify query point longer than store stride")
	}
	return verifyIntervalKernel(s.buf, s.dim, q, lo, hi, eps2, out)
}
