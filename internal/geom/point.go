// Package geom provides the geometric primitives used throughout the DBDC
// implementation: points of arbitrary dimensionality, distance metrics, and
// axis-aligned bounding boxes.
//
// Points are plain float64 slices so that data sets can be loaded directly
// from CSV files and shipped across the wire without conversion. All
// functions treat points as immutable; callers that mutate a point after
// handing it to an index invalidate that index.
package geom

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Point is a position in a d-dimensional vector space.
type Point []float64

// Dim returns the dimensionality of the point.
func (p Point) Dim() int { return len(p) }

// Clone returns an independent copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Add returns the component-wise sum p + q. Both points must have the same
// dimensionality.
func (p Point) Add(q Point) Point {
	mustSameDim(p, q)
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] + q[i]
	}
	return r
}

// Sub returns the component-wise difference p - q.
func (p Point) Sub(q Point) Point {
	mustSameDim(p, q)
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] - q[i]
	}
	return r
}

// Scale returns p scaled by the factor s.
func (p Point) Scale(s float64) Point {
	r := make(Point, len(p))
	for i := range p {
		r[i] = p[i] * s
	}
	return r
}

// Norm returns the Euclidean length of p interpreted as a vector.
func (p Point) Norm() float64 {
	var sum float64
	for _, v := range p {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// IsFinite reports whether every coordinate is a finite number (no NaN, no
// infinities). Indexes and clustering algorithms require finite input.
func (p Point) IsFinite() bool {
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// String renders the point as "(x1, x2, ...)" with compact float formatting.
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	b.WriteByte(')')
	return b.String()
}

// Centroid returns the arithmetic mean of the given points. It panics if the
// slice is empty or the points disagree on dimensionality.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		panic("geom: Centroid of empty point set")
	}
	c := make(Point, len(pts[0]))
	for _, p := range pts {
		mustSameDim(c, p)
		for i, v := range p {
			c[i] += v
		}
	}
	inv := 1 / float64(len(pts))
	for i := range c {
		c[i] *= inv
	}
	return c
}

func mustSameDim(p, q Point) {
	if len(p) != len(q) {
		panic(fmt.Sprintf("geom: dimensionality mismatch: %d vs %d", len(p), len(q)))
	}
}
