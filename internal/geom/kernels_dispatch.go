//go:build !dbdc_scalar_kernels

package geom

// Default-build kernel dispatch: strides 2, 3, 4 and 8 (the common point
// dimensionalities — every paper dataset is 2-d; 3/4/8 cover the synthetic
// high-dimensional sweeps) run fully unrolled loop bodies with the query
// coordinates hoisted into locals, every other stride runs a width-4
// unrolled loop with a scalar tail. All variants keep the scalar kernel's
// exact operation sequence — one accumulator, ascending coordinate order —
// so they compute the same IEEE operation chain as distSqScalar (Go never
// reassociates floating-point arithmetic; unrolling removes loop overhead,
// not ordering). Constant trip counts and hoisted bounds checks give the
// backend the auto-vectorizable shape, and the batch loop's iterations are
// independent, so gathered-row cache misses overlap instead of serializing
// behind a per-point call. An asm/GOAMD64 backend would swap this file and
// keep the contract.
//
// batchKernel is deliberately the ONLY compiled instance of each stride's
// computation: the one-row entry points funnel through it as a batch of one
// (see distSqKernel in kernels.go). That sharing — not source-level
// equivalence — is what pins NaN payloads: the backend may commute the
// operands of a float add per compiled body (resultInArg0 ops are
// commutable during regalloc), and x86 ADDSD resolves a NaN-vs-NaN tie in
// favor of the destination operand, so two inlined copies of the same
// source can legally return different NaN payloads. One body per stride
// removes that freedom. For non-NaN operands (infinities, subnormals,
// signed zeros included) the result is operand-order-independent, so the
// dispatch is also bit-identical to the separately compiled distSqScalar
// and intervalKernel everywhere it matters; NaN payloads are the documented
// exception, and they cannot influence clustering — a NaN distance fails
// every ≤ eps² test and never wins a max-fold.
//
// Build with -tags dbdc_scalar_kernels to replace this dispatch with the
// plain scalar loop for every stride — the differential twin: any output
// difference between the two builds on finite data is a kernel bug by
// definition.

// kernelDispatchName identifies the active kernel build for benchmark
// artifacts (benchio host metadata): artifacts produced by different
// dispatches are not silently comparable.
const kernelDispatchName = "unrolled[2,3,4,8]+w4"

// KernelWidth reports the unroll width the active build dispatches for
// points of the given dimensionality: the stride itself for the fully
// unrolled sizes, 4 for the generic unrolled loop, 1 where the scalar tail
// dominates (dim < 4 without a dedicated body) — and 1 for everything in
// the dbdc_scalar_kernels build.
func KernelWidth(dim int) int {
	switch dim {
	case 2, 3, 4, 8:
		return dim
	default:
		if dim > 4 {
			return 4
		}
		return 1
	}
}

// batchKernel fills out[k] with the squared distance between q and row
// ids[k] of the flat buffer (stride-indexed): the single shared compiled
// body of the active build's distance computation. The dispatch is hoisted
// out of the row loop and the common strides keep q's coordinates in
// locals, so the loop is pure gather/subtract/multiply/accumulate work.
func batchKernel(buf []float64, stride int, q []float64, ids []int, out []float64) {
	out = out[:len(ids)]
	switch len(q) {
	case 2:
		q0, q1 := q[0], q[1]
		for k, id := range ids {
			base := id * stride
			b := buf[base : base+2]
			var sum float64
			d0 := q0 - b[0]
			sum += d0 * d0
			d1 := q1 - b[1]
			sum += d1 * d1
			out[k] = sum
		}
	case 3:
		q0, q1, q2 := q[0], q[1], q[2]
		for k, id := range ids {
			base := id * stride
			b := buf[base : base+3]
			var sum float64
			d0 := q0 - b[0]
			sum += d0 * d0
			d1 := q1 - b[1]
			sum += d1 * d1
			d2 := q2 - b[2]
			sum += d2 * d2
			out[k] = sum
		}
	case 4:
		q0, q1, q2, q3 := q[0], q[1], q[2], q[3]
		for k, id := range ids {
			base := id * stride
			b := buf[base : base+4]
			var sum float64
			d0 := q0 - b[0]
			sum += d0 * d0
			d1 := q1 - b[1]
			sum += d1 * d1
			d2 := q2 - b[2]
			sum += d2 * d2
			d3 := q3 - b[3]
			sum += d3 * d3
			out[k] = sum
		}
	case 8:
		for k, id := range ids {
			base := id * stride
			b := buf[base : base+8]
			_ = q[7]
			var sum float64
			d0 := q[0] - b[0]
			sum += d0 * d0
			d1 := q[1] - b[1]
			sum += d1 * d1
			d2 := q[2] - b[2]
			sum += d2 * d2
			d3 := q[3] - b[3]
			sum += d3 * d3
			d4 := q[4] - b[4]
			sum += d4 * d4
			d5 := q[5] - b[5]
			sum += d5 * d5
			d6 := q[6] - b[6]
			sum += d6 * d6
			d7 := q[7] - b[7]
			sum += d7 * d7
			out[k] = sum
		}
	default:
		for k, id := range ids {
			base := id * stride
			b := buf[base : base+len(q)]
			var sum float64
			i := 0
			for ; i+4 <= len(q); i += 4 {
				d0 := q[i] - b[i]
				sum += d0 * d0
				d1 := q[i+1] - b[i+1]
				sum += d1 * d1
				d2 := q[i+2] - b[i+2]
				sum += d2 * d2
				d3 := q[i+3] - b[i+3]
				sum += d3 * d3
			}
			for ; i < len(q); i++ {
				d := q[i] - b[i]
				sum += d * d
			}
			out[k] = sum
		}
	}
}

// verifyKernel is the fused threshold form of batchKernel: it appends to out
// each id whose squared distance to q is at most eps2, preserving ids order,
// without materialising the distances (no scratch write + re-read per row).
// It is a separate compiled body; its ≤ decisions nonetheless match
// batchKernel's exactly — for non-NaN operands the computed sums are
// bit-identical (same IEEE operation chain, no reassociation), and a NaN sum
// fails the test under every body.
func verifyKernel(buf []float64, stride int, q []float64, ids []int, eps2 float64, out []int) []int {
	switch len(q) {
	case 2:
		q0, q1 := q[0], q[1]
		for _, id := range ids {
			base := id * stride
			b := buf[base : base+2]
			var sum float64
			d0 := q0 - b[0]
			sum += d0 * d0
			d1 := q1 - b[1]
			sum += d1 * d1
			if sum <= eps2 {
				out = append(out, id)
			}
		}
	case 3:
		q0, q1, q2 := q[0], q[1], q[2]
		for _, id := range ids {
			base := id * stride
			b := buf[base : base+3]
			var sum float64
			d0 := q0 - b[0]
			sum += d0 * d0
			d1 := q1 - b[1]
			sum += d1 * d1
			d2 := q2 - b[2]
			sum += d2 * d2
			if sum <= eps2 {
				out = append(out, id)
			}
		}
	case 4:
		q0, q1, q2, q3 := q[0], q[1], q[2], q[3]
		for _, id := range ids {
			base := id * stride
			b := buf[base : base+4]
			var sum float64
			d0 := q0 - b[0]
			sum += d0 * d0
			d1 := q1 - b[1]
			sum += d1 * d1
			d2 := q2 - b[2]
			sum += d2 * d2
			d3 := q3 - b[3]
			sum += d3 * d3
			if sum <= eps2 {
				out = append(out, id)
			}
		}
	default:
		for _, id := range ids {
			base := id * stride
			b := buf[base : base+len(q)]
			var sum float64
			i := 0
			for ; i+4 <= len(q); i += 4 {
				d0 := q[i] - b[i]
				sum += d0 * d0
				d1 := q[i+1] - b[i+1]
				sum += d1 * d1
				d2 := q[i+2] - b[i+2]
				sum += d2 * d2
				d3 := q[i+3] - b[i+3]
				sum += d3 * d3
			}
			for ; i < len(q); i++ {
				d := q[i] - b[i]
				sum += d * d
			}
			if sum <= eps2 {
				out = append(out, id)
			}
		}
	}
	return out
}

// verifyIntervalKernel is verifyKernel over the consecutive rows [lo, hi):
// passing row ids are appended in ascending order, the base offset streams
// by the stride instead of gathering by id.
func verifyIntervalKernel(buf []float64, stride int, q []float64, lo, hi int, eps2 float64, out []int) []int {
	base := lo * stride
	switch len(q) {
	case 2:
		q0, q1 := q[0], q[1]
		for id := lo; id < hi; id++ {
			b := buf[base : base+2]
			var sum float64
			d0 := q0 - b[0]
			sum += d0 * d0
			d1 := q1 - b[1]
			sum += d1 * d1
			if sum <= eps2 {
				out = append(out, id)
			}
			base += stride
		}
	case 3:
		q0, q1, q2 := q[0], q[1], q[2]
		for id := lo; id < hi; id++ {
			b := buf[base : base+3]
			var sum float64
			d0 := q0 - b[0]
			sum += d0 * d0
			d1 := q1 - b[1]
			sum += d1 * d1
			d2 := q2 - b[2]
			sum += d2 * d2
			if sum <= eps2 {
				out = append(out, id)
			}
			base += stride
		}
	case 4:
		q0, q1, q2, q3 := q[0], q[1], q[2], q[3]
		for id := lo; id < hi; id++ {
			b := buf[base : base+4]
			var sum float64
			d0 := q0 - b[0]
			sum += d0 * d0
			d1 := q1 - b[1]
			sum += d1 * d1
			d2 := q2 - b[2]
			sum += d2 * d2
			d3 := q3 - b[3]
			sum += d3 * d3
			if sum <= eps2 {
				out = append(out, id)
			}
			base += stride
		}
	default:
		for id := lo; id < hi; id++ {
			b := buf[base : base+len(q)]
			var sum float64
			i := 0
			for ; i+4 <= len(q); i += 4 {
				d0 := q[i] - b[i]
				sum += d0 * d0
				d1 := q[i+1] - b[i+1]
				sum += d1 * d1
				d2 := q[i+2] - b[i+2]
				sum += d2 * d2
				d3 := q[i+3] - b[i+3]
				sum += d3 * d3
			}
			for ; i < len(q); i++ {
				d := q[i] - b[i]
				sum += d * d
			}
			if sum <= eps2 {
				out = append(out, id)
			}
			base += stride
		}
	}
	return out
}

// intervalKernel is batchKernel over the consecutive rows [lo, lo+len(out)):
// the base offset advances by the stride instead of gathering by id, so the
// linear scan streams the backing array in layout order. It is a separate
// compiled body, so its NaN payloads may differ from batchKernel's (results
// agree bit for bit on all non-NaN outcomes).
func intervalKernel(buf []float64, stride int, q []float64, lo int, out []float64) {
	base := lo * stride
	switch len(q) {
	case 2:
		q0, q1 := q[0], q[1]
		for k := range out {
			b := buf[base : base+2]
			var sum float64
			d0 := q0 - b[0]
			sum += d0 * d0
			d1 := q1 - b[1]
			sum += d1 * d1
			out[k] = sum
			base += stride
		}
	case 3:
		q0, q1, q2 := q[0], q[1], q[2]
		for k := range out {
			b := buf[base : base+3]
			var sum float64
			d0 := q0 - b[0]
			sum += d0 * d0
			d1 := q1 - b[1]
			sum += d1 * d1
			d2 := q2 - b[2]
			sum += d2 * d2
			out[k] = sum
			base += stride
		}
	case 4:
		q0, q1, q2, q3 := q[0], q[1], q[2], q[3]
		for k := range out {
			b := buf[base : base+4]
			var sum float64
			d0 := q0 - b[0]
			sum += d0 * d0
			d1 := q1 - b[1]
			sum += d1 * d1
			d2 := q2 - b[2]
			sum += d2 * d2
			d3 := q3 - b[3]
			sum += d3 * d3
			out[k] = sum
			base += stride
		}
	default:
		for k := range out {
			b := buf[base : base+len(q)]
			var sum float64
			i := 0
			for ; i+4 <= len(q); i += 4 {
				d0 := q[i] - b[i]
				sum += d0 * d0
				d1 := q[i+1] - b[i+1]
				sum += d1 * d1
				d2 := q[i+2] - b[i+2]
				sum += d2 * d2
				d3 := q[i+3] - b[i+3]
				sum += d3 * d3
			}
			for ; i < len(q); i++ {
				d := q[i] - b[i]
				sum += d * d
			}
			out[k] = sum
			base += stride
		}
	}
}
