package geom

import (
	"fmt"
	"math"
	"strings"
)

// Rect is an axis-aligned bounding box described by its lower-left (Min) and
// upper-right (Max) corners. Rects are the node entries of the R*-tree and
// the cells of the grid index.
type Rect struct {
	Min, Max Point
}

// NewRect returns a rectangle spanning min..max. It panics if the corners
// disagree on dimensionality or min exceeds max in any dimension.
func NewRect(min, max Point) Rect {
	mustSameDim(min, max)
	for i := range min {
		if min[i] > max[i] {
			panic(fmt.Sprintf("geom: inverted rect in dim %d: %v > %v", i, min[i], max[i]))
		}
	}
	return Rect{Min: min.Clone(), Max: max.Clone()}
}

// RectFromPoint returns the degenerate rectangle covering exactly p.
func RectFromPoint(p Point) Rect {
	return Rect{Min: p.Clone(), Max: p.Clone()}
}

// BoundingRect returns the smallest rectangle enclosing all given points.
// It panics on an empty slice or on mixed dimensionality. The fold runs in
// a single pass over two scratch corners — exactly two allocations total,
// instead of the clone-and-extend-per-point of the naive fold (pinned by
// an AllocsPerRun test). Store-backed callers use Store.BoundingRect, the
// strided variant over the flat backing array.
func BoundingRect(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: BoundingRect of empty point set")
	}
	min := pts[0].Clone()
	max := pts[0].Clone()
	for _, p := range pts[1:] {
		mustSameDim(min, p)
		for i, v := range p {
			if v < min[i] {
				min[i] = v
			}
			if v > max[i] {
				max[i] = v
			}
		}
	}
	return Rect{Min: min, Max: max}
}

// Dim returns the dimensionality of the rectangle.
func (r Rect) Dim() int { return len(r.Min) }

// Clone returns an independent copy of r.
func (r Rect) Clone() Rect {
	return Rect{Min: r.Min.Clone(), Max: r.Max.Clone()}
}

// Contains reports whether p lies inside r (boundaries inclusive).
func (r Rect) Contains(p Point) bool {
	mustSameDim(r.Min, p)
	for i := range p {
		if p[i] < r.Min[i] || p[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	for i := range r.Min {
		if s.Min[i] < r.Min[i] || s.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	mustSameDim(r.Min, s.Min)
	for i := range r.Min {
		if r.Min[i] > s.Max[i] || r.Max[i] < s.Min[i] {
			return false
		}
	}
	return true
}

// Extend returns the smallest rectangle enclosing both r and s.
func (r Rect) Extend(s Rect) Rect {
	mustSameDim(r.Min, s.Min)
	out := r.Clone()
	for i := range out.Min {
		if s.Min[i] < out.Min[i] {
			out.Min[i] = s.Min[i]
		}
		if s.Max[i] > out.Max[i] {
			out.Max[i] = s.Max[i]
		}
	}
	return out
}

// ExtendPoint returns the smallest rectangle enclosing r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	mustSameDim(r.Min, p)
	out := r.Clone()
	for i := range out.Min {
		if p[i] < out.Min[i] {
			out.Min[i] = p[i]
		}
		if p[i] > out.Max[i] {
			out.Max[i] = p[i]
		}
	}
	return out
}

// Area returns the d-dimensional volume of r.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Min {
		a *= r.Max[i] - r.Min[i]
	}
	return a
}

// Margin returns the sum of the edge lengths of r (the R*-tree split
// heuristic minimises this quantity).
func (r Rect) Margin() float64 {
	var m float64
	for i := range r.Min {
		m += r.Max[i] - r.Min[i]
	}
	return m
}

// OverlapArea returns the volume of the intersection of r and s, or 0 when
// they are disjoint.
func (r Rect) OverlapArea(s Rect) float64 {
	a := 1.0
	for i := range r.Min {
		lo := math.Max(r.Min[i], s.Min[i])
		hi := math.Min(r.Max[i], s.Max[i])
		if hi <= lo {
			return 0
		}
		a *= hi - lo
	}
	return a
}

// Center returns the center point of r. Halving before adding keeps the
// computation overflow-free even for corners near ±MaxFloat64.
func (r Rect) Center() Point {
	c := make(Point, len(r.Min))
	for i := range c {
		c[i] = r.Min[i]*0.5 + r.Max[i]*0.5
	}
	return c
}

// Enlargement returns the increase in area needed for r to also cover s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Extend(s).Area() - r.Area()
}

// MinDist returns the minimum Euclidean distance from p to any point of r;
// zero when p lies inside r. This is the classic R-tree pruning bound: no
// object inside r can be closer to p than MinDist.
func (r Rect) MinDist(p Point) float64 {
	return math.Sqrt(r.MinDistSq(p))
}

// MinDistSq returns MinDist squared, sqrt-free. Range queries that compare
// against a squared radius prune with this bound directly; the monotonicity
// of x ↦ x² makes MinDistSq(p) ≤ eps² equivalent to MinDist(p) ≤ eps.
func (r Rect) MinDistSq(p Point) float64 {
	if debugChecks {
		mustSameDim(r.Min, p)
	}
	lo, hi := r.Min[:len(p)], r.Max[:len(p)]
	var sum float64
	for i := range p {
		var d float64
		switch {
		case p[i] < lo[i]:
			d = lo[i] - p[i]
		case p[i] > hi[i]:
			d = p[i] - hi[i]
		}
		sum += d * d
	}
	return sum
}

// String renders the rectangle as "[min; max]".
func (r Rect) String() string {
	var b strings.Builder
	b.WriteByte('[')
	b.WriteString(r.Min.String())
	b.WriteString("; ")
	b.WriteString(r.Max.String())
	b.WriteByte(']')
	return b.String()
}
