package geom

import (
	"math"
	"math/rand"
	"testing"
)

// bitsEq compares two float64 values bit for bit — the only comparison that
// holds NaN results to the "same computation, same result" standard the
// strided kernels promise.
func bitsEq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestStoreKernelsBitIdentical pins the core contract of the flat store:
// DistanceSq and DistanceSqTo are bit-identical to the slice kernels they
// replace, across dimensionalities, for ordinary coordinates. Bit identity —
// not approximate equality — is what lets store-backed indexes produce
// byte-identical clusterings.
func TestStoreKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := Euclidean{}
	for _, dim := range []int{1, 2, 3, 5, 16} {
		pts := make([]Point, 64)
		for i := range pts {
			p := make(Point, dim)
			for d := range p {
				// Mix magnitudes so summation-order differences would show.
				p[d] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(7)-3))
			}
			pts[i] = p
		}
		st, err := FromPoints(pts)
		if err != nil {
			t.Fatalf("dim %d: FromPoints: %v", dim, err)
		}
		q := make(Point, dim)
		for d := range q {
			q[d] = (rng.Float64() - 0.5) * 100
		}
		for i := range pts {
			if got, want := st.DistanceSqTo(i, q), e.DistanceSq(q, pts[i]); !bitsEq(got, want) {
				t.Fatalf("dim %d: DistanceSqTo(%d, q) = %v, Euclidean.DistanceSq(q, p) = %v", dim, i, got, want)
			}
			if got, want := st.DistanceSqTo(i, q), SquaredEuclidean(q, pts[i]); !bitsEq(got, want) {
				t.Fatalf("dim %d: DistanceSqTo(%d, q) = %v, SquaredEuclidean(q, p) = %v", dim, i, got, want)
			}
			j := (i + 17) % len(pts)
			if got, want := st.DistanceSq(i, j), e.DistanceSq(pts[i], pts[j]); !bitsEq(got, want) {
				t.Fatalf("dim %d: DistanceSq(%d, %d) = %v, Euclidean.DistanceSq = %v", dim, i, j, got, want)
			}
		}
	}
}

// TestStoreKernelsSpecialValues extends bit identity to the values the CSV
// loader rejects but the kernels must still propagate deterministically:
// NaN, ±Inf, signed zero, and overflow-to-Inf differences.
func TestStoreKernelsSpecialValues(t *testing.T) {
	e := Euclidean{}
	nan := math.NaN()
	inf := math.Inf(1)
	big := math.MaxFloat64
	pts := []Point{
		{nan, 0},
		{inf, -inf},
		{big, -big},
		{0, math.Copysign(0, -1)},
		{math.SmallestNonzeroFloat64, 1e308},
		{1, 2},
	}
	st, err := FromPoints(pts)
	if err != nil {
		t.Fatal(err)
	}
	queries := []Point{{0, 0}, {nan, nan}, {-inf, inf}, {big, big}, {1, 2}}
	for _, q := range queries {
		for i := range pts {
			got, want := st.DistanceSqTo(i, q), e.DistanceSq(q, pts[i])
			if !bitsEq(got, want) {
				t.Errorf("DistanceSqTo(%d, %v) = %x, slice kernel %x", i, q, math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
	for i := range pts {
		for j := range pts {
			got, want := st.DistanceSq(i, j), e.DistanceSq(pts[i], pts[j])
			if !bitsEq(got, want) {
				t.Errorf("DistanceSq(%d, %d) = %x, slice kernel %x", i, j, math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
}

// FuzzStoreDistanceSq fuzzes the bit-identity contract over raw coordinate
// bits: whatever float64s come in — subnormals, NaN payloads, infinities —
// the strided kernels and the slice kernels must agree exactly. The same
// six values are additionally rearranged into dim-3 and dim-6 point pairs,
// so the fully unrolled, width-4 unrolled and scalar-tail dispatch branches
// are all exercised from the one fuzz corpus.
func FuzzStoreDistanceSq(f *testing.F) {
	f.Add(0.0, 0.0, 1.0, 2.0, 3.0, 4.0)
	f.Add(math.NaN(), math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64, math.Copysign(0, -1))
	f.Add(1e308, -1e308, 1e-308, -1e-308, 0.1, 0.2)
	f.Fuzz(func(t *testing.T, a0, a1, b0, b1, q0, q1 float64) {
		vals := []float64{a0, a1, b0, b1, q0, q1}
		for _, dim := range []int{2, 3, 6} {
			mk := func(start int) Point {
				p := make(Point, dim)
				for d := range p {
					p[d] = vals[(start+d)%len(vals)]
				}
				return p
			}
			pts := []Point{mk(0), mk(2)}
			st, err := FromPoints(pts)
			if err != nil {
				t.Fatal(err)
			}
			e := Euclidean{}
			q := mk(4)
			for i := range pts {
				if got, want := st.DistanceSqTo(i, q), e.DistanceSq(q, pts[i]); !bitsEq(got, want) {
					t.Fatalf("dim %d: DistanceSqTo(%d, q): %x != %x", dim, i, math.Float64bits(got), math.Float64bits(want))
				}
			}
			if got, want := st.DistanceSq(0, 1), e.DistanceSq(pts[0], pts[1]); !bitsEq(got, want) {
				t.Fatalf("dim %d: DistanceSq(0, 1): %x != %x", dim, math.Float64bits(got), math.Float64bits(want))
			}
			if got, want := st.DistanceSq(1, 0), e.DistanceSq(pts[1], pts[0]); !bitsEq(got, want) {
				t.Fatalf("dim %d: DistanceSq(1, 0): %x != %x", dim, math.Float64bits(got), math.Float64bits(want))
			}
		}
	})
}

// TestFromPointsAliasing pins the view-aliasing contract: FromPoints copies
// (the input is not retained), Point(i) views alias the backing array both
// ways, and the capacity-clipped views make append-through-view incapable of
// clobbering the next row.
func TestFromPointsAliasing(t *testing.T) {
	src := []Point{{1, 2}, {3, 4}, {5, 6}}
	st, err := FromPoints(src)
	if err != nil {
		t.Fatal(err)
	}

	// Input not retained: mutating the source must not reach the store.
	src[0][0] = -99
	if got := st.Point(0)[0]; got != 1 {
		t.Fatalf("store aliases its input: Point(0)[0] = %v after source mutation", got)
	}

	// Views alias the backing array in both directions.
	v := st.Point(1)
	st.Coords()[2] = 30 // row 1, coordinate 0
	if v[0] != 30 {
		t.Fatalf("view missed store mutation: %v", v)
	}
	v[1] = 40
	if got := st.Coords()[3]; got != 40 {
		t.Fatalf("store missed view mutation: %v", got)
	}
	if got := st.Point(1)[1]; got != 40 {
		t.Fatalf("fresh view missed earlier view mutation: %v", got)
	}

	// Capacity clipping: appending to a view reallocates instead of
	// spilling into the following row.
	grown := append(st.Point(0), 777)
	_ = grown
	if got := st.Point(1)[0]; got != 30 {
		t.Fatalf("append through view clobbered the next row: %v", got)
	}

	// Views taken before a growing Append keep their values but detach.
	before := st.Point(2)
	st.Append(Point{7, 8}) // exceeds FromPoints' exact capacity: reallocates
	st.Coords()[4] = 500   // row 2, coordinate 0, in the NEW array
	if before[0] != 5 {
		t.Fatalf("detached view lost its value: %v", before)
	}
	if st.Point(2)[0] != 500 {
		t.Fatalf("store mutation lost: %v", st.Point(2))
	}
}

// TestFromPointsErrors: empty input and mixed dimensionality are rejected
// with errors, mirroring the conditions the index builders reject.
func TestFromPointsErrors(t *testing.T) {
	if _, err := FromPoints(nil); err == nil {
		t.Error("empty point set accepted")
	}
	if _, err := FromPoints([]Point{{}}); err == nil {
		t.Error("zero-dimensional point accepted")
	}
	if _, err := FromPoints([]Point{{1, 2}, {1, 2, 3}}); err == nil {
		t.Error("mixed dimensionality accepted")
	}
}

// TestStoreBoundingRect checks the strided bounding box against the
// slice-path BoundingRect on random data, plus the empty-store panic.
func TestStoreBoundingRect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := make([]Point, 100)
	for i := range pts {
		pts[i] = Point{rng.NormFloat64() * 50, rng.NormFloat64() * 50, rng.NormFloat64()}
	}
	st, err := FromPoints(pts)
	if err != nil {
		t.Fatal(err)
	}
	got, want := st.BoundingRect(), BoundingRect(pts)
	for d := 0; d < 3; d++ {
		if got.Min[d] != want.Min[d] || got.Max[d] != want.Max[d] {
			t.Fatalf("store bounding rect %v/%v, slice %v/%v", got.Min, got.Max, want.Min, want.Max)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("BoundingRect of empty store did not panic")
		}
	}()
	NewStore(2, 0).BoundingRect()
}

// TestStoreIsFinite: the strided finiteness scan agrees with the per-point
// IsFinite for every special value.
func TestStoreIsFinite(t *testing.T) {
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{1, 2}, true},
		{Point{math.MaxFloat64, -math.MaxFloat64}, true},
		{Point{math.NaN(), 0}, false},
		{Point{0, math.Inf(1)}, false},
		{Point{math.Inf(-1), 0}, false},
	}
	for _, c := range cases {
		st, err := FromPoints([]Point{{0, 0}, c.p})
		if err != nil {
			t.Fatal(err)
		}
		if got := st.IsFinite(); got != c.want {
			t.Errorf("IsFinite with %v = %v, want %v", c.p, got, c.want)
		}
		if got := c.p.IsFinite(); got != c.want {
			t.Errorf("Point.IsFinite(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}
