package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func rect(minx, miny, maxx, maxy float64) Rect {
	return NewRect(Point{minx, miny}, Point{maxx, maxy})
}

func TestNewRectValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inverted rect")
		}
	}()
	NewRect(Point{1, 0}, Point{0, 1})
}

func TestNewRectClones(t *testing.T) {
	min := Point{0, 0}
	r := NewRect(min, Point{1, 1})
	min[0] = 99
	if r.Min[0] != 0 {
		t.Fatal("NewRect must clone its corners")
	}
}

func TestRectContains(t *testing.T) {
	r := rect(0, 0, 2, 2)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{1, 1}, true},
		{Point{0, 0}, true}, // boundary inclusive
		{Point{2, 2}, true},
		{Point{3, 1}, false},
		{Point{-0.1, 1}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	r := rect(0, 0, 2, 2)
	cases := []struct {
		s    Rect
		want bool
	}{
		{rect(1, 1, 3, 3), true},
		{rect(2, 2, 3, 3), true}, // touching corner counts
		{rect(2.1, 0, 3, 1), false},
		{rect(-1, -1, 3, 3), true}, // containment
		{rect(0.5, 0.5, 1.5, 1.5), true},
	}
	for _, c := range cases {
		if got := r.Intersects(c.s); got != c.want {
			t.Errorf("Intersects(%v) = %v, want %v", c.s, got, c.want)
		}
		if got := c.s.Intersects(r); got != c.want {
			t.Errorf("Intersects not symmetric for %v", c.s)
		}
	}
}

func TestRectContainsRect(t *testing.T) {
	r := rect(0, 0, 4, 4)
	if !r.ContainsRect(rect(1, 1, 2, 2)) {
		t.Error("inner rect should be contained")
	}
	if !r.ContainsRect(r) {
		t.Error("rect should contain itself")
	}
	if r.ContainsRect(rect(1, 1, 5, 2)) {
		t.Error("overhanging rect should not be contained")
	}
}

func TestRectExtend(t *testing.T) {
	r := rect(0, 0, 1, 1).Extend(rect(2, -1, 3, 0.5))
	want := rect(0, -1, 3, 1)
	if !r.Min.Equal(want.Min) || !r.Max.Equal(want.Max) {
		t.Errorf("Extend = %v, want %v", r, want)
	}
}

func TestRectExtendPoint(t *testing.T) {
	r := rect(0, 0, 1, 1).ExtendPoint(Point{5, -2})
	want := rect(0, -2, 5, 1)
	if !r.Min.Equal(want.Min) || !r.Max.Equal(want.Max) {
		t.Errorf("ExtendPoint = %v, want %v", r, want)
	}
}

func TestRectAreaMargin(t *testing.T) {
	r := rect(0, 0, 2, 3)
	if r.Area() != 6 {
		t.Errorf("Area = %v, want 6", r.Area())
	}
	if r.Margin() != 5 {
		t.Errorf("Margin = %v, want 5", r.Margin())
	}
}

func TestRectOverlapArea(t *testing.T) {
	a := rect(0, 0, 2, 2)
	b := rect(1, 1, 3, 3)
	if got := a.OverlapArea(b); got != 1 {
		t.Errorf("OverlapArea = %v, want 1", got)
	}
	if got := a.OverlapArea(rect(3, 3, 4, 4)); got != 0 {
		t.Errorf("disjoint OverlapArea = %v, want 0", got)
	}
	if got := a.OverlapArea(rect(2, 0, 3, 2)); got != 0 {
		t.Errorf("touching OverlapArea = %v, want 0", got)
	}
}

func TestRectCenter(t *testing.T) {
	if c := rect(0, 0, 2, 4).Center(); !c.Equal(Point{1, 2}) {
		t.Errorf("Center = %v", c)
	}
}

func TestRectEnlargement(t *testing.T) {
	r := rect(0, 0, 1, 1)
	if got := r.Enlargement(rect(0.25, 0.25, 0.5, 0.5)); got != 0 {
		t.Errorf("Enlargement for contained rect = %v, want 0", got)
	}
	if got := r.Enlargement(rect(0, 0, 2, 1)); got != 1 {
		t.Errorf("Enlargement = %v, want 1", got)
	}
}

func TestRectMinDist(t *testing.T) {
	r := rect(0, 0, 2, 2)
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{1, 1}, 0},         // inside
		{Point{2, 2}, 0},         // on boundary
		{Point{5, 2}, 3},         // right of
		{Point{5, 6}, 5},         // diagonal: 3-4-5
		{Point{-3, -4}, 5},       // other diagonal
		{Point{1, 3.5}, 1.5},     // above
	}
	for _, c := range cases {
		if got := r.MinDist(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("MinDist(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestBoundingRect(t *testing.T) {
	r := BoundingRect([]Point{{1, 5}, {-2, 3}, {4, -1}})
	want := rect(-2, -1, 4, 5)
	if !r.Min.Equal(want.Min) || !r.Max.Equal(want.Max) {
		t.Errorf("BoundingRect = %v, want %v", r, want)
	}
}

func TestBoundingRectEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BoundingRect(nil)
}

func TestRectString(t *testing.T) {
	if got := rect(0, 0, 1, 2).String(); got != "[(0, 0); (1, 2)]" {
		t.Errorf("String = %q", got)
	}
}

// Property: MinDist(p) is a valid lower bound on the distance from p to any
// point contained in the rectangle.
func TestMinDistLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	e := Euclidean{}
	for iter := 0; iter < 300; iter++ {
		a, b := randomPoint(rng, 3), randomPoint(rng, 3)
		r := RectFromPoint(a).ExtendPoint(b)
		q := randomPoint(rng, 3)
		// Random point inside r.
		inside := make(Point, 3)
		for i := range inside {
			inside[i] = r.Min[i] + rng.Float64()*(r.Max[i]-r.Min[i])
		}
		if !r.Contains(inside) {
			t.Fatal("generated point not inside rect")
		}
		if md := r.MinDist(q); md > e.Distance(q, inside)+1e-9 {
			t.Fatalf("MinDist %v exceeds actual distance %v", md, e.Distance(q, inside))
		}
	}
}

// Property: Extend yields a rectangle containing both inputs, and extension
// never shrinks area.
func TestExtendProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 300; iter++ {
		r1 := RectFromPoint(randomPoint(rng, 2)).ExtendPoint(randomPoint(rng, 2))
		r2 := RectFromPoint(randomPoint(rng, 2)).ExtendPoint(randomPoint(rng, 2))
		u := r1.Extend(r2)
		if !u.ContainsRect(r1) || !u.ContainsRect(r2) {
			t.Fatalf("union %v does not contain inputs %v, %v", u, r1, r2)
		}
		if u.Area() < r1.Area()-1e-12 || u.Area() < r2.Area()-1e-12 {
			t.Fatalf("union smaller than an input")
		}
	}
}

// Property (testing/quick): Contains/Intersects/Extend stay mutually
// consistent on random rectangles.
func TestQuickRectConsistency(t *testing.T) {
	f := func(a, b [2][2]float64) bool {
		mk := func(c [2][2]float64) Rect {
			lo := Point{math.Min(c[0][0], c[1][0]), math.Min(c[0][1], c[1][1])}
			hi := Point{math.Max(c[0][0], c[1][0]), math.Max(c[0][1], c[1][1])}
			if !lo.IsFinite() || !hi.IsFinite() {
				lo, hi = Point{0, 0}, Point{1, 1}
			}
			return NewRect(lo, hi)
		}
		r1, r2 := mk(a), mk(b)
		u := r1.Extend(r2)
		if !u.ContainsRect(r1) || !u.ContainsRect(r2) {
			return false
		}
		// Containment implies intersection.
		if r1.ContainsRect(r2) && !r1.Intersects(r2) {
			return false
		}
		// Intersection is symmetric.
		if r1.Intersects(r2) != r2.Intersects(r1) {
			return false
		}
		// Overlap area is positive only for intersecting rects.
		if r1.OverlapArea(r2) > 0 && !r1.Intersects(r2) {
			return false
		}
		// Corners of r1 are contained in r1.
		return r1.Contains(r1.Min) && r1.Contains(r1.Max) && r1.Contains(r1.Center())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
