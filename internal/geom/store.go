package geom

import "fmt"

// Store is a flat, fixed-stride point store: n points of dimensionality dim
// laid out row-major in one contiguous []float64. It is the memory layout
// the hot paths run on — one backing array instead of one heap object per
// point — so distance kernels stream cache lines instead of chasing
// pointers, and bulk index builds are bandwidth-bound rather than
// allocator-bound.
//
// Point(i) returns a zero-copy subslice view into the backing array, so the
// whole geom.Point API (and every index that speaks Point) keeps working on
// top of a Store without conversion. The aliasing contract:
//
//   - Views alias the backing array: mutating the store through Coords (or
//     a view) is visible through every other view of the same point.
//   - Append may grow the backing array. Views taken BEFORE a growing
//     Append keep referencing the old array — their values stay correct,
//     but they no longer alias the store. Reserve the full capacity up
//     front (NewStore's capacity hint, or Reserve) when views must alias
//     for the store's whole lifetime; FromPoints sizes exactly and never
//     reallocates afterwards unless appended to.
//
// The strided kernels DistanceSq / DistanceSqTo are bit-identical to the
// Euclidean slice kernels (same operand order, same summation order), which
// is what lets store-backed indexes produce byte-identical clusterings; the
// fuzz and differential tests in store_test.go pin this. Index bounds in
// the kernels are validated only under -tags dbdc_debugchecks, mirroring
// the hoisted dimension checks of the distance kernels (see checks.go):
// out-of-range ids still fail loudly through the subslice bounds panic.
type Store struct {
	buf []float64
	dim int
}

// NewStore returns an empty store for points of dimensionality dim with
// capacity for n points reserved up front. dim must be positive.
func NewStore(dim, n int) *Store {
	if dim <= 0 {
		panic(fmt.Sprintf("geom: store dimensionality must be positive, got %d", dim))
	}
	if n < 0 {
		n = 0
	}
	return &Store{buf: make([]float64, 0, dim*n), dim: dim}
}

// FromPoints builds a store holding an independent flat copy of pts — one
// allocation and one sequential copy, regardless of the number of points.
// It returns an error when the points disagree on dimensionality (the same
// condition the index builders reject) or when pts is empty (a store needs
// a stride). The input points are not retained.
func FromPoints(pts []Point) (*Store, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("geom: store from empty point set (no stride)")
	}
	dim := pts[0].Dim()
	if dim == 0 {
		return nil, fmt.Errorf("geom: store from zero-dimensional points")
	}
	s := NewStore(dim, len(pts))
	for i, p := range pts {
		if p.Dim() != dim {
			return nil, fmt.Errorf("geom: store point %d has dimension %d, want %d", i, p.Dim(), dim)
		}
		s.buf = append(s.buf, p...)
	}
	return s, nil
}

// Dim returns the point dimensionality (the stride).
func (s *Store) Dim() int { return s.dim }

// Len returns the number of stored points.
func (s *Store) Len() int { return len(s.buf) / s.dim }

// Coords exposes the backing array (row-major, stride Dim). Callers may
// read it freely and mutate coordinates in place; they must not grow it.
func (s *Store) Coords() []float64 { return s.buf }

// Reserve grows the backing array's capacity to hold at least n points
// total, so subsequent Appends up to that size never reallocate (and views
// keep aliasing).
func (s *Store) Reserve(n int) {
	if need := n * s.dim; cap(s.buf) < need {
		grown := make([]float64, len(s.buf), need)
		copy(grown, s.buf)
		s.buf = grown
	}
}

// Point returns the i-th point as a zero-copy view into the backing array.
// The view's capacity is clipped to the stride, so appending to a view can
// never silently overwrite the next point. Callers must not mutate the
// view unless they own the store.
func (s *Store) Point(i int) Point {
	base := i * s.dim
	return Point(s.buf[base : base+s.dim : base+s.dim])
}

// Views materialises the slice of all point views — one allocation for the
// slice headers, zero copies of coordinates. It is how slice-shaped APIs
// ([]geom.Point) are served from a store. Nil for an empty store.
func (s *Store) Views() []Point {
	n := s.Len()
	if n == 0 {
		return nil
	}
	out := make([]Point, n)
	for i := range out {
		out[i] = s.Point(i)
	}
	return out
}

// Append copies p into the store. The dimensionality must match; this is a
// build-time path, so the check is unconditional.
func (s *Store) Append(p Point) {
	if len(p) != s.dim {
		panic(fmt.Sprintf("geom: appending %d-dimensional point to store of stride %d", len(p), s.dim))
	}
	s.buf = append(s.buf, p...)
}

// AppendCoords appends one point given as individual coordinates, avoiding
// a Point allocation at call sites that compute coordinates on the fly
// (the synthetic data generators). len(vals) must equal Dim.
func (s *Store) AppendCoords(vals ...float64) {
	if len(vals) != s.dim {
		panic(fmt.Sprintf("geom: appending %d coordinates to store of stride %d", len(vals), s.dim))
	}
	s.buf = append(s.buf, vals...)
}

// AppendZero appends one all-zero point and returns its view for in-place
// filling. The view is valid until the next growing Append; reserve
// capacity up front when filling incrementally.
func (s *Store) AppendZero() Point {
	base := len(s.buf)
	s.buf = append(s.buf, make([]float64, s.dim)...)
	return Point(s.buf[base : base+s.dim : base+s.dim])
}

// Clone returns an independent deep copy of the store.
func (s *Store) Clone() *Store {
	buf := make([]float64, len(s.buf))
	copy(buf, s.buf)
	return &Store{buf: buf, dim: s.dim}
}

// IsFinite reports whether every stored coordinate is finite — the bulk
// equivalent of Point.IsFinite, one strided pass over the backing array.
func (s *Store) IsFinite() bool {
	for _, v := range s.buf {
		// Self-comparison catches NaN; the magnitude test catches ±Inf
		// without calling out to math (v != v is the canonical NaN test).
		if v != v || v > maxFinite || v < -maxFinite {
			return false
		}
	}
	return true
}

const maxFinite = 1.7976931348623157e308 // math.MaxFloat64, inlined to keep the loop branch-cheap

// DistanceSq returns the squared Euclidean distance between stored points i
// and j — the strided counterpart of Euclidean.DistanceSq(Point(i),
// Point(j)), bit-identical to it (same operand and summation order; both
// route through the dispatched kernel, see kernels.go).
func (s *Store) DistanceSq(i, j int) float64 {
	if debugChecks {
		s.mustIndex(i)
		s.mustIndex(j)
	}
	d := s.dim
	a := s.buf[i*d : i*d+d : i*d+d]
	b := s.buf[j*d : j*d+d : j*d+d]
	return distSqKernel(a, b)
}

// DistanceSqTo returns the squared Euclidean distance between the external
// query point q and stored point i — bit-identical to
// Euclidean.DistanceSq(q, Point(i)), the operand order of every index's
// candidate-verification loop. A q longer than the stride panics via the
// capacity-clipped reslice, exactly like the slice kernel.
func (s *Store) DistanceSqTo(i int, q Point) float64 {
	if debugChecks {
		s.mustIndex(i)
		mustSameDim(q, s.Point(i))
	}
	d := s.dim
	row := s.buf[i*d : i*d+d : i*d+d]
	return distSqKernel(q, row)
}

// BoundingRect returns the smallest rectangle enclosing all stored points
// in a single strided pass with two scratch corners — no per-point clone
// or intermediate rect. It panics on an empty store, like BoundingRect.
func (s *Store) BoundingRect() Rect {
	if s.Len() == 0 {
		panic("geom: BoundingRect of empty store")
	}
	d := s.dim
	min := make(Point, d)
	max := make(Point, d)
	copy(min, s.buf[:d])
	copy(max, s.buf[:d])
	for base := d; base < len(s.buf); base += d {
		row := s.buf[base : base+d]
		for k, v := range row {
			if v < min[k] {
				min[k] = v
			}
			if v > max[k] {
				max[k] = v
			}
		}
	}
	return Rect{Min: min, Max: max}
}

func (s *Store) mustIndex(i int) {
	if i < 0 || i >= s.Len() {
		panic(fmt.Sprintf("geom: store index %d out of range [0, %d)", i, s.Len()))
	}
}
