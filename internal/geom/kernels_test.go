package geom

import (
	"math"
	"math/rand"
	"testing"
)

// specialValues are the coordinates the CSV loader rejects but the kernels
// must still propagate deterministically — the values where an unrolled
// variant that reordered operations would first diverge from the scalar
// reference.
var specialValues = []float64{
	math.NaN(),
	math.Inf(1),
	math.Inf(-1),
	math.MaxFloat64,
	-math.MaxFloat64,
	math.SmallestNonzeroFloat64,
	math.Copysign(0, -1),
	0,
	1e308,
	-1e-308,
}

// bitsEqOrBothNaN is the cross-kernel comparison: separately compiled
// kernel bodies agree bit for bit on every non-NaN result, while a
// NaN-valued result may carry either operand's payload depending on the
// add-operand order the backend chose for that body (see
// kernels_dispatch.go). Same-body comparisons — batch vs one-at-a-time —
// use plain bitsEq.
func bitsEqOrBothNaN(a, b float64) bool {
	return bitsEq(a, b) || (math.IsNaN(a) && math.IsNaN(b))
}

// TestDistSqKernelMatchesScalar pins the dispatched kernel to the scalar
// reference bit for bit across every dispatch branch: the fully unrolled
// dims (2/3/4/8), the width-4 unrolled generic with every tail length
// (5..17), and the short strides that fall through to the tail loop alone.
func TestDistSqKernelMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for dim := 1; dim <= 17; dim++ {
		for trial := 0; trial < 32; trial++ {
			a := make([]float64, dim)
			b := make([]float64, dim)
			for d := 0; d < dim; d++ {
				// Mix magnitudes so any summation-order change would show.
				a[d] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(9)-4))
				b[d] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(9)-4))
				if trial%4 == 3 {
					// Sprinkle special values through later trials.
					if rng.Intn(3) == 0 {
						a[d] = specialValues[rng.Intn(len(specialValues))]
					}
					if rng.Intn(3) == 0 {
						b[d] = specialValues[rng.Intn(len(specialValues))]
					}
				}
			}
			got, want := distSqKernel(a, b), distSqScalar(a, b)
			if !bitsEqOrBothNaN(got, want) {
				t.Fatalf("dim %d: distSqKernel = %x, distSqScalar = %x (a=%v b=%v)",
					dim, math.Float64bits(got), math.Float64bits(want), a, b)
			}
		}
	}
}

// TestKernelWidth sanity-checks the dispatch-width report: positive
// everywhere, and in the default build matching the dispatch table (the
// scalar build reports 1 for every stride).
func TestKernelWidth(t *testing.T) {
	for dim := 1; dim <= 32; dim++ {
		w := KernelWidth(dim)
		if w < 1 || w > dim && dim > 1 {
			t.Fatalf("KernelWidth(%d) = %d", dim, w)
		}
	}
	if KernelDispatch() == "" {
		t.Fatal("KernelDispatch() is empty")
	}
}

// TestDistanceSqBatch pins the batch kernel to the one-row kernel: for any
// id list — duplicates, reversals, gathered order — out[k] must equal
// DistanceSqTo(ids[k], q) bit for bit, including NaN/Inf rows.
func TestDistanceSqBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, dim := range []int{1, 2, 3, 4, 5, 8, 11} {
		pts := make([]Point, 40)
		for i := range pts {
			p := make(Point, dim)
			for d := range p {
				p[d] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
			}
			pts[i] = p
		}
		// Row with special values.
		for d := range pts[7] {
			pts[7][d] = specialValues[d%len(specialValues)]
		}
		st, err := FromPoints(pts)
		if err != nil {
			t.Fatalf("dim %d: %v", dim, err)
		}
		q := make(Point, dim)
		for d := range q {
			q[d] = rng.NormFloat64()
		}
		ids := []int{3, 7, 7, 0, 39, 12, 7, 1}
		out := make([]float64, len(ids))
		got := st.DistanceSqBatch(q, ids, out)
		if len(got) != len(ids) {
			t.Fatalf("dim %d: batch returned %d results for %d ids", dim, len(got), len(ids))
		}
		for k, id := range ids {
			if want := st.DistanceSqTo(id, q); !bitsEq(got[k], want) {
				t.Fatalf("dim %d: batch[%d] (id %d) = %x, DistanceSqTo = %x",
					dim, k, id, math.Float64bits(got[k]), math.Float64bits(want))
			}
		}
		// NaN query too: the batch must propagate it identically.
		nanq := make(Point, dim)
		for d := range nanq {
			nanq[d] = math.NaN()
		}
		got = st.DistanceSqBatch(nanq, ids, out)
		for k, id := range ids {
			if want := st.DistanceSqTo(id, nanq); !bitsEq(got[k], want) {
				t.Fatalf("dim %d: NaN-query batch[%d] = %x, DistanceSqTo = %x",
					dim, k, math.Float64bits(got[k]), math.Float64bits(want))
			}
		}
	}
}

// TestDistanceSqBatchPrefixAndPanic mirrors DistanceSqTo's edge contract: a
// query shorter than the stride compares the coordinate prefix, a longer one
// panics.
func TestDistanceSqBatchPrefixAndPanic(t *testing.T) {
	st, err := FromPoints([]Point{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 2)
	if !debugChecks { // debug builds reject any dimension mismatch outright
		got := st.DistanceSqBatch(Point{0, 0}, []int{0, 1}, out)
		for k, id := range []int{0, 1} {
			if want := st.DistanceSqTo(id, Point{0, 0}); !bitsEq(got[k], want) {
				t.Fatalf("prefix batch[%d] = %v, DistanceSqTo = %v", k, got[k], want)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("over-long batch query did not panic")
		}
	}()
	st.DistanceSqBatch(Point{0, 0, 0, 0}, []int{0}, out)
}

// TestDistanceSqInterval pins the streaming interval kernel to the one-row
// kernel over every block boundary of VerifyIntervalSq's blocked scan.
func TestDistanceSqInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := make([]Point, 1200) // > 2×verifyBlock: exercises full and partial blocks
	for i := range pts {
		pts[i] = Point{rng.NormFloat64(), rng.NormFloat64()}
	}
	st, err := FromPoints(pts)
	if err != nil {
		t.Fatal(err)
	}
	q := Point{0.25, -0.5}
	out := make([]float64, 700)
	got := st.DistanceSqInterval(q, 100, out)
	for k := range got {
		if want := st.DistanceSqTo(100+k, q); !bitsEq(got[k], want) {
			t.Fatalf("interval[%d] = %v, DistanceSqTo(%d) = %v", k, got[k], 100+k, want)
		}
	}
}

// TestVerifyRangeSq checks the fused verification step against the direct
// per-id threshold test: same member set, cand order preserved.
func TestVerifyRangeSq(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pts := make([]Point, 500)
	for i := range pts {
		pts[i] = Point{rng.Float64() * 10, rng.Float64() * 10}
	}
	st, err := FromPoints(pts)
	if err != nil {
		t.Fatal(err)
	}
	q := Point{5, 5}
	eps2 := 2.0 * 2.0
	cand := rng.Perm(500)[:200]
	var out []int
	out = st.VerifyRangeSq(q, cand, eps2, out[:0])
	var want []int
	for _, id := range cand {
		if st.DistanceSqTo(id, q) <= eps2 {
			want = append(want, id)
		}
	}
	if len(out) != len(want) {
		t.Fatalf("VerifyRangeSq kept %d ids, want %d", len(out), len(want))
	}
	for k := range want {
		if out[k] != want[k] {
			t.Fatalf("VerifyRangeSq[%d] = %d, want %d (order must match cand order)", k, out[k], want[k])
		}
	}
	// A second call appending into the same buffer must keep capacity.
	before := cap(out)
	out = st.VerifyRangeSq(q, cand[:150], eps2, out[:0])
	if cap(out) != before {
		t.Fatalf("out buffer regrown: cap %d -> %d", before, cap(out))
	}
}

// TestVerifyIntervalSq checks the fused exhaustive scan against the direct
// per-row threshold test, ascending order included.
func TestVerifyIntervalSq(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pts := make([]Point, 1300)
	for i := range pts {
		pts[i] = Point{rng.Float64() * 4, rng.Float64() * 4}
	}
	st, err := FromPoints(pts)
	if err != nil {
		t.Fatal(err)
	}
	q := Point{2, 2}
	eps2 := 0.5 * 0.5
	var out []int
	out = st.VerifyIntervalSq(q, 0, st.Len(), eps2, out[:0])
	var want []int
	for i := 0; i < st.Len(); i++ {
		if st.DistanceSqTo(i, q) <= eps2 {
			want = append(want, i)
		}
	}
	if len(out) != len(want) {
		t.Fatalf("VerifyIntervalSq kept %d ids, want %d", len(out), len(want))
	}
	for k := range want {
		if out[k] != want[k] {
			t.Fatalf("VerifyIntervalSq[%d] = %d, want %d", k, out[k], want[k])
		}
	}
}

// FuzzDistanceSqBatch fuzzes the batched-vs-scalar bit-identity contract
// over raw coordinate bits and strides 1..5 (odd strides take the generic
// tail path, 2/3/4 the unrolled bodies): three rows and a query are built
// from the fuzzed values, and DistanceSqBatch / DistanceSqInterval must
// agree with one-at-a-time DistanceSqTo bit for bit on every row — NaN
// payloads and infinities included (same shared kernel body, so no
// latitude) — and with the scalar reference kernel up to NaN payload
// (separately compiled body; see bitsEqOrBothNaN).
func FuzzDistanceSqBatch(f *testing.F) {
	f.Add(uint8(2), 0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0)
	f.Add(uint8(3), math.NaN(), math.Inf(1), math.Inf(-1), math.MaxFloat64,
		math.SmallestNonzeroFloat64, math.Copysign(0, -1), 1e308, -1e-308, 0.5)
	f.Add(uint8(5), math.NaN(), math.NaN(), math.NaN(), 1.0, -1.0, math.Inf(1), 2.0, 3.0, 4.0)
	f.Add(uint8(1), 1e-320, -1e-320, 4.9e-324, 0.0, math.MaxFloat64, -math.MaxFloat64, 1.5, 2.5, 3.5)
	f.Fuzz(func(t *testing.T, dimRaw uint8, v0, v1, v2, v3, v4, v5, v6, v7, v8 float64) {
		dim := 1 + int(dimRaw)%5
		vals := []float64{v0, v1, v2, v3, v4, v5, v6, v7, v8}
		row := func(start int) Point {
			p := make(Point, dim)
			for d := range p {
				p[d] = vals[(start+d)%len(vals)]
			}
			return p
		}
		pts := []Point{row(0), row(3), row(6)}
		st, err := FromPoints(pts)
		if err != nil {
			t.Fatal(err)
		}
		q := row(5)
		ids := []int{0, 1, 2, 2, 0}
		out := make([]float64, len(ids))
		got := st.DistanceSqBatch(q, ids, out)
		for k, id := range ids {
			want := st.DistanceSqTo(id, q)
			if !bitsEq(got[k], want) {
				t.Fatalf("dim %d: batch[%d] (id %d) = %x, DistanceSqTo = %x",
					dim, k, id, math.Float64bits(got[k]), math.Float64bits(want))
			}
			if ref := distSqScalar(q, pts[id]); !bitsEqOrBothNaN(got[k], ref) {
				t.Fatalf("dim %d: batch[%d] (id %d) = %x, scalar reference = %x",
					dim, k, id, math.Float64bits(got[k]), math.Float64bits(ref))
			}
		}
		ivl := st.DistanceSqInterval(q, 0, make([]float64, 3))
		for i := 0; i < 3; i++ {
			if want := st.DistanceSqTo(i, q); !bitsEq(ivl[i], want) {
				t.Fatalf("dim %d: interval[%d] = %x, DistanceSqTo = %x",
					dim, i, math.Float64bits(ivl[i]), math.Float64bits(want))
			}
		}
	})
}
