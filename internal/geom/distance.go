package geom

import (
	"fmt"
	"math"
)

// Metric is a distance function on points. Implementations must satisfy the
// metric axioms (non-negativity, identity of indiscernibles, symmetry,
// triangle inequality) for the M-tree and for DBSCAN's correctness arguments
// to hold.
type Metric interface {
	// Distance returns the distance between p and q.
	Distance(p, q Point) float64
	// Name returns a short stable identifier, e.g. "euclidean".
	Name() string
}

// SquaredMetric is implemented by metrics whose comparisons can be carried
// out in squared space: DistanceSq returns the square of Distance without
// taking the square root. Because x ↦ x² is monotone on non-negative values,
// every threshold test dist(p, q) ≤ eps is equivalent to
// DistanceSq(p, q) ≤ eps·eps, so indexes that detect this interface prune
// and verify candidates sqrt-free — the dominant saving of the range-query
// hot path (see docs/performance.md for the exact contract).
type SquaredMetric interface {
	Metric
	// DistanceSq returns Distance(p, q)². It must be cheaper than Distance
	// (no root extraction) and induce the same ordering.
	DistanceSq(p, q Point) float64
}

// AsSquared returns m as a SquaredMetric when the metric supports squared
// comparisons, along with whether it does. Callers cache the result at index
// build time rather than re-asserting per query.
func AsSquared(m Metric) (SquaredMetric, bool) {
	sm, ok := m.(SquaredMetric)
	return sm, ok
}

// Euclidean is the L2 metric. Its zero value is ready to use.
type Euclidean struct{}

// Distance returns the L2 distance between p and q.
func (Euclidean) Distance(p, q Point) float64 {
	return math.Sqrt(Euclidean{}.DistanceSq(p, q))
}

// DistanceSq implements SquaredMetric: the squared L2 distance, sqrt-free.
// Dimensions are validated at index build time (or with -tags
// dbdc_debugchecks); a shorter q panics loudly inside the kernel's reslice.
// The computation is dispatched by stride (see kernels_dispatch.go) and is
// bit-identical to the scalar loop for every input.
func (Euclidean) DistanceSq(p, q Point) float64 {
	if debugChecks {
		mustSameDim(p, q)
	}
	return distSqKernel(p, q)
}

// Name implements Metric.
func (Euclidean) Name() string { return "euclidean" }

// Manhattan is the L1 metric.
type Manhattan struct{}

// Distance returns the L1 distance between p and q.
func (Manhattan) Distance(p, q Point) float64 {
	if debugChecks {
		mustSameDim(p, q)
	}
	q = q[:len(p)]
	var sum float64
	for i := range p {
		sum += math.Abs(p[i] - q[i])
	}
	return sum
}

// Name implements Metric.
func (Manhattan) Name() string { return "manhattan" }

// Chebyshev is the L∞ metric.
type Chebyshev struct{}

// Distance returns the L∞ distance between p and q.
func (Chebyshev) Distance(p, q Point) float64 {
	if debugChecks {
		mustSameDim(p, q)
	}
	q = q[:len(p)]
	var max float64
	for i := range p {
		d := math.Abs(p[i] - q[i])
		if d > max {
			max = d
		}
	}
	return max
}

// Name implements Metric.
func (Chebyshev) Name() string { return "chebyshev" }

// Minkowski is the Lp metric for a caller-chosen order P >= 1.
type Minkowski struct {
	// P is the order of the metric; values below 1 violate the triangle
	// inequality and are rejected by Distance.
	P float64
}

// Distance returns the Lp distance between p and q.
func (m Minkowski) Distance(p, q Point) float64 {
	if m.P < 1 {
		panic(fmt.Sprintf("geom: Minkowski order %v < 1 is not a metric", m.P))
	}
	mustSameDim(p, q)
	var sum float64
	for i := range p {
		sum += math.Pow(math.Abs(p[i]-q[i]), m.P)
	}
	return math.Pow(sum, 1/m.P)
}

// Name implements Metric.
func (m Minkowski) Name() string { return fmt.Sprintf("minkowski-%g", m.P) }

// SquaredEuclidean returns the squared L2 distance. It is not a metric (the
// triangle inequality fails) but is the cheap comparison kernel used by
// k-means assignment and by index pruning, where only the ordering of
// distances matters. Equivalent to Euclidean{}.DistanceSq.
func SquaredEuclidean(p, q Point) float64 {
	return Euclidean{}.DistanceSq(p, q)
}

// MetricByName returns the built-in metric with the given name.
// Recognised names: "euclidean", "manhattan", "chebyshev".
func MetricByName(name string) (Metric, error) {
	switch name {
	case "euclidean", "":
		return Euclidean{}, nil
	case "manhattan":
		return Manhattan{}, nil
	case "chebyshev":
		return Chebyshev{}, nil
	default:
		return nil, fmt.Errorf("geom: unknown metric %q", name)
	}
}
