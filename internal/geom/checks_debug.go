//go:build dbdc_debugchecks

package geom

// debugChecks is enabled by the dbdc_debugchecks build tag; see checks.go.
const debugChecks = true
