package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestEuclideanDistance(t *testing.T) {
	e := Euclidean{}
	if got := e.Distance(Point{0, 0}, Point{3, 4}); got != 5 {
		t.Errorf("Distance = %v, want 5", got)
	}
	if got := e.Distance(Point{1, 1}, Point{1, 1}); got != 0 {
		t.Errorf("Distance = %v, want 0", got)
	}
}

func TestManhattanDistance(t *testing.T) {
	m := Manhattan{}
	if got := m.Distance(Point{0, 0}, Point{3, -4}); got != 7 {
		t.Errorf("Distance = %v, want 7", got)
	}
}

func TestChebyshevDistance(t *testing.T) {
	c := Chebyshev{}
	if got := c.Distance(Point{0, 0}, Point{3, -4}); got != 4 {
		t.Errorf("Distance = %v, want 4", got)
	}
}

func TestMinkowskiSpecialCases(t *testing.T) {
	p, q := Point{1, 2, -1}, Point{-2, 0, 3}
	m1 := Minkowski{P: 1}
	if got, want := m1.Distance(p, q), (Manhattan{}).Distance(p, q); math.Abs(got-want) > 1e-12 {
		t.Errorf("Minkowski(1) = %v, Manhattan = %v", got, want)
	}
	m2 := Minkowski{P: 2}
	if got, want := m2.Distance(p, q), (Euclidean{}).Distance(p, q); math.Abs(got-want) > 1e-12 {
		t.Errorf("Minkowski(2) = %v, Euclidean = %v", got, want)
	}
}

func TestMinkowskiInvalidOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for P < 1")
		}
	}()
	Minkowski{P: 0.5}.Distance(Point{0}, Point{1})
}

func TestSquaredEuclidean(t *testing.T) {
	if got := SquaredEuclidean(Point{0, 0}, Point{3, 4}); got != 25 {
		t.Errorf("SquaredEuclidean = %v, want 25", got)
	}
}

func TestMetricByName(t *testing.T) {
	for _, name := range []string{"euclidean", "manhattan", "chebyshev", ""} {
		m, err := MetricByName(name)
		if err != nil || m == nil {
			t.Errorf("MetricByName(%q) failed: %v", name, err)
		}
	}
	if _, err := MetricByName("nope"); err == nil {
		t.Error("expected error for unknown metric")
	}
}

func TestMetricNames(t *testing.T) {
	cases := []struct {
		m    Metric
		want string
	}{
		{Euclidean{}, "euclidean"},
		{Manhattan{}, "manhattan"},
		{Chebyshev{}, "chebyshev"},
		{Minkowski{P: 3}, "minkowski-3"},
	}
	for _, c := range cases {
		if got := c.m.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

// Property: every built-in metric satisfies the metric axioms on random
// points — symmetry, identity, non-negativity and the triangle inequality.
func TestMetricAxioms(t *testing.T) {
	metrics := []Metric{Euclidean{}, Manhattan{}, Chebyshev{}, Minkowski{P: 3}}
	rng := rand.New(rand.NewSource(42))
	for _, m := range metrics {
		for iter := 0; iter < 200; iter++ {
			a := randomPoint(rng, 4)
			b := randomPoint(rng, 4)
			c := randomPoint(rng, 4)
			dab := m.Distance(a, b)
			dba := m.Distance(b, a)
			if math.Abs(dab-dba) > 1e-9 {
				t.Fatalf("%s: not symmetric: %v vs %v", m.Name(), dab, dba)
			}
			if dab < 0 {
				t.Fatalf("%s: negative distance %v", m.Name(), dab)
			}
			if d := m.Distance(a, a); d != 0 {
				t.Fatalf("%s: d(a,a) = %v, want 0", m.Name(), d)
			}
			dac := m.Distance(a, c)
			dcb := m.Distance(c, b)
			if dab > dac+dcb+1e-9 {
				t.Fatalf("%s: triangle inequality violated: d(a,b)=%v > d(a,c)+d(c,b)=%v",
					m.Name(), dab, dac+dcb)
			}
		}
	}
}

// Property: the Lp metrics are ordered: L∞ ≤ L2 ≤ L1 on any pair of points.
func TestLpOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		a := randomPoint(rng, 5)
		b := randomPoint(rng, 5)
		linf := Chebyshev{}.Distance(a, b)
		l2 := Euclidean{}.Distance(a, b)
		l1 := Manhattan{}.Distance(a, b)
		if linf > l2+1e-9 || l2 > l1+1e-9 {
			t.Fatalf("Lp ordering violated: L∞=%v L2=%v L1=%v", linf, l2, l1)
		}
	}
}

func BenchmarkEuclideanDistance2D(b *testing.B) {
	p, q := Point{1.5, -2.25}, Point{3.75, 4.125}
	e := Euclidean{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.Distance(p, q)
	}
}
