//go:build !dbdc_debugchecks

package geom

// debugChecks gates the per-call dimensionality checks in the distance
// kernels. The checks used to run on every Distance call — a measurable cost
// in DBSCAN's range-query hot loop, where the same slice lengths are compared
// millions of times. They are now hoisted to index build/insert time (every
// index validates uniform dimensionality once) and compiled out of the
// kernels by default.
//
// Build with `-tags dbdc_debugchecks` to re-enable the per-call checks while
// debugging a new index or metric implementation. Without the tag, a
// dimensionality mismatch in a kernel still fails loudly when the second
// point is shorter (slice bounds panic via the q[:len(p)] reslice); a longer
// second point is silently truncated, which is exactly the class of bug the
// debug tag exists to catch early.
const debugChecks = false
