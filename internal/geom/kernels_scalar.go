//go:build dbdc_scalar_kernels

package geom

// Scalar-kernel build: every stride runs the plain reference loop — the
// single noinline distSqScalar body, shared by the one-row, batch and
// interval entry points, so batched and per-row results are bit-identical
// here exactly as in the unrolled build. This is the differential twin of
// kernels_dispatch.go: `go test -tags dbdc_scalar_kernels ./...` must
// produce byte-identical clusterings, models and frames, because on finite
// data the unrolled kernels compute the operand-order-independent same
// result (NaN payloads are the sole cross-build latitude, and NaN never
// survives a threshold or max comparison).

// kernelDispatchName identifies the active kernel build for benchmark
// artifacts; "scalar" artifacts are never silently compared against
// unrolled ones.
const kernelDispatchName = "scalar"

// KernelWidth reports 1 for every stride: the scalar build has no unrolled
// variants.
func KernelWidth(dim int) int { return 1 }

// batchKernel applies the shared scalar kernel row by row.
func batchKernel(buf []float64, stride int, q []float64, ids []int, out []float64) {
	out = out[:len(ids)]
	for k, id := range ids {
		base := id * stride
		out[k] = distSqScalar(q, buf[base:base+len(q)])
	}
}

// verifyKernel applies the shared scalar kernel row by row, appending the
// ids whose squared distance passes the threshold.
func verifyKernel(buf []float64, stride int, q []float64, ids []int, eps2 float64, out []int) []int {
	for _, id := range ids {
		base := id * stride
		if distSqScalar(q, buf[base:base+len(q)]) <= eps2 {
			out = append(out, id)
		}
	}
	return out
}

// verifyIntervalKernel applies the shared scalar kernel over the consecutive
// rows [lo, hi), appending the passing ids in ascending order.
func verifyIntervalKernel(buf []float64, stride int, q []float64, lo, hi int, eps2 float64, out []int) []int {
	base := lo * stride
	for id := lo; id < hi; id++ {
		if distSqScalar(q, buf[base:base+len(q)]) <= eps2 {
			out = append(out, id)
		}
		base += stride
	}
	return out
}

// intervalKernel applies the shared scalar kernel over consecutive rows.
func intervalKernel(buf []float64, stride int, q []float64, lo int, out []float64) {
	base := lo * stride
	for k := range out {
		out[k] = distSqScalar(q, buf[base:base+len(q)])
		base += stride
	}
}
