package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDim(t *testing.T) {
	if got := (Point{1, 2, 3}).Dim(); got != 3 {
		t.Fatalf("Dim() = %d, want 3", got)
	}
	if got := (Point{}).Dim(); got != 0 {
		t.Fatalf("Dim() = %d, want 0", got)
	}
}

func TestPointClone(t *testing.T) {
	p := Point{1, 2}
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Fatal("Clone must not share backing storage")
	}
	if !p.Equal(Point{1, 2}) {
		t.Fatal("original mutated")
	}
}

func TestPointEqual(t *testing.T) {
	cases := []struct {
		p, q Point
		want bool
	}{
		{Point{1, 2}, Point{1, 2}, true},
		{Point{1, 2}, Point{2, 1}, false},
		{Point{1, 2}, Point{1, 2, 3}, false},
		{Point{}, Point{}, true},
	}
	for _, c := range cases {
		if got := c.p.Equal(c.q); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -4}
	if got := p.Add(q); !got.Equal(Point{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); !got.Equal(Point{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); !got.Equal(Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := (Point{3, 4}).Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestPointDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Point{1}.Add(Point{1, 2})
}

func TestPointIsFinite(t *testing.T) {
	if !(Point{1, 2}).IsFinite() {
		t.Error("finite point reported non-finite")
	}
	if (Point{1, math.NaN()}).IsFinite() {
		t.Error("NaN point reported finite")
	}
	if (Point{math.Inf(1)}).IsFinite() {
		t.Error("Inf point reported finite")
	}
}

func TestPointString(t *testing.T) {
	if got := (Point{1, 2.5}).String(); got != "(1, 2.5)" {
		t.Errorf("String = %q", got)
	}
}

func TestCentroid(t *testing.T) {
	pts := []Point{{0, 0}, {2, 0}, {1, 3}}
	c := Centroid(pts)
	if !c.Equal(Point{1, 1}) {
		t.Errorf("Centroid = %v, want (1, 1)", c)
	}
}

func TestCentroidSinglePoint(t *testing.T) {
	c := Centroid([]Point{{7, -3}})
	if !c.Equal(Point{7, -3}) {
		t.Errorf("Centroid = %v", c)
	}
}

func TestCentroidEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty centroid")
		}
	}()
	Centroid(nil)
}

func randomPoint(rng *rand.Rand, dim int) Point {
	p := make(Point, dim)
	for i := range p {
		p[i] = rng.NormFloat64() * 10
	}
	return p
}

// Property: the centroid minimises the summed squared Euclidean distance, so
// perturbing it in any direction never decreases the sum.
func TestCentroidMinimisesSSQ(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 50; iter++ {
		n := 2 + rng.Intn(20)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = randomPoint(rng, 3)
		}
		c := Centroid(pts)
		ssq := func(q Point) float64 {
			var s float64
			for _, p := range pts {
				s += SquaredEuclidean(p, q)
			}
			return s
		}
		base := ssq(c)
		perturbed := c.Add(randomPoint(rng, 3).Scale(0.1))
		if ssq(perturbed) < base-1e-9 {
			t.Fatalf("perturbed centroid has lower SSQ: %v < %v", ssq(perturbed), base)
		}
	}
}

// Property: Add and Sub are inverse operations up to floating-point error.
func TestAddSubInverse(t *testing.T) {
	f := func(a, b [4]float64) bool {
		p, q := Point(a[:]), Point(b[:])
		if !p.IsFinite() || !q.IsFinite() {
			return true
		}
		r := p.Add(q).Sub(q)
		if !r.IsFinite() {
			return true // overflowed intermediate; nothing to check
		}
		for i := range p {
			tol := 1e-9 * (math.Abs(p[i]) + math.Abs(q[i]) + 1)
			if math.Abs(r[i]-p[i]) > tol {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
