package serve

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/model"
)

// TestLoadgenSmoke is the in-process twin of the CI loadgen-smoke step:
// boot a server, run a short closed-loop load against it for both request
// shapes, and check the result and its benchio report are coherent.
func TestLoadgenSmoke(t *testing.T) {
	srv, reg, m := startTestServer(t, 0)
	pts, global := buildTestModel(t, model.RepScor, 42)
	if _, err := reg.Publish(global); err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 16} {
		res, err := RunLoad(LoadConfig{
			Addr:        srv.Addr(),
			Concurrency: 4,
			Duration:    300 * time.Millisecond,
			BatchSize:   batch,
			Points:      pts,
			Timeout:     5 * time.Second,
		})
		if err != nil {
			t.Fatalf("batch=%d: RunLoad: %v", batch, err)
		}
		if res.Requests == 0 || res.PointsClassified < res.Requests*uint64(batch) {
			t.Fatalf("batch=%d: requests=%d points=%d", batch, res.Requests, res.PointsClassified)
		}
		if res.Errors != 0 {
			t.Fatalf("batch=%d: %d errors against a healthy server", batch, res.Errors)
		}
		if res.MinVersion != 1 || res.MaxVersion != 1 {
			t.Fatalf("batch=%d: versions %d..%d, want 1..1", batch, res.MinVersion, res.MaxVersion)
		}
		if res.Latency.Count() != res.Requests {
			t.Fatalf("batch=%d: %d latency samples for %d requests", batch, res.Latency.Count(), res.Requests)
		}
		if res.QPS() <= 0 || res.PointsPerSec() <= 0 {
			t.Fatalf("batch=%d: non-positive rates: %s", batch, res)
		}
		if s := res.String(); !strings.Contains(s, "loadgen:") || !strings.Contains(s, "p99=") {
			t.Fatalf("batch=%d: summary %q", batch, s)
		}

		// The benchio report must round-trip through JSON with the schema
		// fields cmd/benchdiff consumes.
		rep := res.BenchReport("test-rev")
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("batch=%d: marshal report: %v", batch, err)
		}
		var decoded map[string]any
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatalf("batch=%d: report is not valid JSON: %v", batch, err)
		}
		if len(rep.Entries) != 1 {
			t.Fatalf("batch=%d: report carries %d entries", batch, len(rep.Entries))
		}
		e := rep.Entries[0]
		if !strings.HasPrefix(e.Name, "LoadgenClassify/") {
			t.Fatalf("batch=%d: entry name %q", batch, e.Name)
		}
		if e.Iterations != int64(res.Requests) || e.NsPerOp <= 0 {
			t.Fatalf("batch=%d: iterations=%d ns/op=%g", batch, e.Iterations, e.NsPerOp)
		}
		for _, k := range []string{"qps", "points/s", "p50-ms", "p95-ms", "p99-ms"} {
			if _, ok := e.Metrics[k]; !ok {
				t.Fatalf("batch=%d: metric %q missing from report", batch, k)
			}
		}
		if e.Metrics["qps"] <= 0 || e.Metrics["p99-ms"] < e.Metrics["p50-ms"] {
			t.Fatalf("batch=%d: incoherent metrics %v", batch, e.Metrics)
		}
	}
	// The server-side counters saw the load too.
	if m.Requests.Load() == 0 || m.Points.Load() == 0 {
		t.Fatalf("server metrics untouched: requests=%d points=%d", m.Requests.Load(), m.Points.Load())
	}
}

// TestLoadgenOpenLoop boots a server and drives it with a modest Poisson
// arrival rate: the run must achieve a rate in the ballpark of the target
// (the server is local and far faster than 200 req/s), report open-loop
// bookkeeping, and emit the open-loop benchio entry.
func TestLoadgenOpenLoop(t *testing.T) {
	srv, reg, _ := startTestServer(t, 0)
	pts, global := buildTestModel(t, model.RepScor, 42)
	if _, err := reg.Publish(global); err != nil {
		t.Fatal(err)
	}
	const target = 200.0
	res, err := RunLoad(LoadConfig{
		Addr:        srv.Addr(),
		Concurrency: 4,
		Duration:    500 * time.Millisecond,
		BatchSize:   1,
		Points:      pts,
		Timeout:     5 * time.Second,
		Rate:        target,
		Seed:        7,
	})
	if err != nil {
		t.Fatalf("RunLoad(open): %v", err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors against a healthy server", res.Errors)
	}
	// Poisson arrivals over 0.5s at 200/s give ~100 requests; allow wide
	// slack for scheduler noise but reject a loop that ran closed (a local
	// server would then complete tens of thousands).
	if res.Requests < 20 || res.Requests > 400 {
		t.Fatalf("achieved %d requests for target %.0f req/s over %s", res.Requests, target, res.Elapsed)
	}
	if got := res.QPS(); got > 2*target {
		t.Fatalf("achieved rate %.0f far above open-loop target %.0f", got, target)
	}
	if res.ArrivalsDropped != 0 {
		t.Fatalf("healthy local server shed %d arrivals", res.ArrivalsDropped)
	}
	if s := res.String(); !strings.Contains(s, "open loop: target 200") {
		t.Fatalf("summary misses open-loop section: %q", s)
	}
	rep := res.BenchReport("test-rev")
	e := rep.Entries[0]
	if !strings.HasPrefix(e.Name, "LoadgenClassifyOpen/rate=200/") {
		t.Fatalf("entry name %q", e.Name)
	}
	for _, k := range []string{"target-rate", "achieved-rate", "max-queue", "dropped"} {
		if _, ok := e.Metrics[k]; !ok {
			t.Fatalf("metric %q missing from open-loop report", k)
		}
	}
	if e.Metrics["target-rate"] != target {
		t.Fatalf("target-rate metric %v, want %v", e.Metrics["target-rate"], target)
	}
}

// TestLoadgenValidation: bad configs fail fast, an unreachable server
// fails with zero successes instead of hanging.
func TestLoadgenValidation(t *testing.T) {
	if _, err := RunLoad(LoadConfig{
		Addr:   "127.0.0.1:1",
		Points: []geom.Point{{0, 0}},
		Rate:   -1,
	}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := RunLoad(LoadConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := RunLoad(LoadConfig{Addr: "127.0.0.1:1"}); err == nil {
		t.Error("config without points accepted")
	}
	res, err := RunLoad(LoadConfig{
		Addr:        "127.0.0.1:1", // reserved port: connection refused
		Concurrency: 1,
		Duration:    50 * time.Millisecond,
		Points:      []geom.Point{{0, 0}},
		Timeout:     time.Second,
	})
	if err == nil {
		t.Errorf("unreachable server produced a successful run: %+v", res)
	}
}
