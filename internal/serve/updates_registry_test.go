package serve

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/dbdc-go/dbdc/internal/data"
	"github.com/dbdc-go/dbdc/internal/dbdc"
	"github.com/dbdc-go/dbdc/internal/dbscan"
	"github.com/dbdc-go/dbdc/internal/geom"
	"github.com/dbdc-go/dbdc/internal/index"
	"github.com/dbdc-go/dbdc/internal/transport"
)

// TestRegistryFromUpdateServer closes the incremental serving loop: an
// UpdateServer under concurrent site uploads feeds a registry through
// SetOnGlobal (the exact wiring dbdc-server uses), while readers classify
// throughout (run under -race in CI). The registry must finish at exactly
// one version per rebuild — the callback runs under the store lock, so no
// publication can be lost or reordered — with the final snapshot serving
// the server's final global model.
func TestRegistryFromUpdateServer(t *testing.T) {
	cfg := dbdc.Config{Local: dbscan.Params{Eps: 0.5, MinPts: 5}}
	srv, err := transport.NewUpdateServer("127.0.0.1:0", cfg, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reg := NewRegistry(index.KindKDTree)
	srv.SetOnGlobal(reg.PublishFunc(func(err error) { t.Errorf("publish: %v", err) }))

	const sites = 3
	const epochs = 3
	go srv.Serve(sites * epochs)

	// Readers classify against whatever snapshot is current while the
	// uploads rebuild and hot-swap underneath them.
	var stop sync.WaitGroup
	done := make(chan struct{})
	for r := 0; r < 2; r++ {
		stop.Add(1)
		go func() {
			defer stop.Done()
			var last uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := reg.Current()
				if snap == nil {
					continue
				}
				if snap.Version < last {
					t.Error("registry version went backwards")
					return
				}
				last = snap.Version
				if _, err := snap.Classifier.Classify(geom.Point{0, 0}); err != nil {
					t.Errorf("classify against version %d: %v", snap.Version, err)
					return
				}
			}
		}()
	}

	errs := make(chan error, sites)
	for s := 0; s < sites; s++ {
		go func(site int) {
			rng := rand.New(rand.NewSource(int64(site)))
			id := string(rune('a' + site))
			var pts []geom.Point
			for e := 0; e < epochs; e++ {
				pts = append(pts, data.Blob(rng, geom.Point{float64(site*1000 + e*100), 0}, 0.3, 150)...)
				out, err := dbdc.LocalStep(id, pts, cfg)
				if err == nil {
					_, _, _, err = transport.Exchange(srv.Addr(), out.Model, 10*time.Second)
				}
				if err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(s)
	}
	for s := 0; s < sites; s++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	stop.Wait()

	// One registry version per rebuild, none lost, none rejected.
	if got := reg.Version(); got != sites*epochs {
		t.Fatalf("registry at version %d after %d uploads", got, sites*epochs)
	}
	if reg.Rejected() != 0 {
		t.Fatalf("%d publications rejected", reg.Rejected())
	}
	// The current snapshot serves the server's final global model.
	snap := reg.Current()
	if snap == nil || snap.Global != srv.Global() {
		t.Fatal("current snapshot does not hold the server's final global model")
	}
	if snap.Global.NumClusters != sites*epochs {
		t.Fatalf("final model has %d clusters, want %d", snap.Global.NumClusters, sites*epochs)
	}
}
