package serve

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dbdc-go/dbdc/internal/benchio"
	"github.com/dbdc-go/dbdc/internal/cluster"
	"github.com/dbdc-go/dbdc/internal/geom"
)

// LoadConfig parameterises one load generation run. The default is the
// closed loop: every worker owns one persistent connection and keeps exactly
// one request in flight (send, wait, record, repeat), so offered load adapts
// to what the server sustains. Rate > 0 switches to the open loop, where
// arrivals are generated at the target rate regardless of server speed.
type LoadConfig struct {
	// Addr is the classification front end to hit.
	Addr string
	// Concurrency is the number of workers (connections); 0 = GOMAXPROCS.
	Concurrency int
	// Duration is how long the run lasts; 0 = 5s.
	Duration time.Duration
	// BatchSize is the points per request: 1 sends MsgClassify frames,
	// anything larger MsgClassifyBatch. 0 = 1.
	BatchSize int
	// Points is the query point pool; workers cycle through it at
	// staggered offsets. Required, non-empty.
	Points []geom.Point
	// Timeout bounds dial and per-request I/O; 0 = 10s.
	Timeout time.Duration
	// Rate > 0 selects open-loop mode: request arrivals follow a Poisson
	// process at this aggregate target rate (requests/second) no matter how
	// fast the server answers. Latency is then measured from the scheduled
	// arrival time, so queueing delay under overload lands in the tail
	// percentiles instead of silently throttling the offered load — the
	// coordinated-omission problem closed loops cannot see. 0 = closed loop.
	Rate float64
	// Seed seeds the Poisson arrival process of the open-loop mode; 0 = 1.
	Seed int64
}

// LoadResult aggregates a load run.
type LoadResult struct {
	// Config echoes the effective (defaults-resolved) configuration.
	Config LoadConfig
	// Requests counts completed successful requests; Errors failed ones
	// (error replies, I/O failures — each followed by a reconnect).
	Requests uint64
	Errors   uint64
	// PointsClassified and NoisePoints count labelled points and the
	// noise-labelled subset.
	PointsClassified uint64
	NoisePoints      uint64
	// MinVersion and MaxVersion bracket the model versions observed in
	// replies — under a hot-swapping server the range documents how many
	// swaps the run straddled.
	MinVersion uint64
	MaxVersion uint64
	// Elapsed is the wall-clock run time.
	Elapsed time.Duration
	// Latency is the client-observed request latency histogram. In the open
	// loop it measures from the scheduled arrival, so it includes queue wait.
	Latency *Histogram
	// ArrivalsDropped (open loop only) counts arrivals shed because the
	// backlog exceeded the queue capacity — the server fell behind the
	// offered rate by more than ~1s of load.
	ArrivalsDropped uint64
	// MaxQueueDepth (open loop only) is the deepest arrival backlog
	// observed; 0 means the server kept up with every arrival instantly.
	MaxQueueDepth int
}

// QPS returns completed requests per wall-clock second — in the open loop,
// the achieved rate to compare against Config.Rate.
func (r *LoadResult) QPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// PointsPerSec returns classified points per wall-clock second.
func (r *LoadResult) PointsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.PointsClassified) / r.Elapsed.Seconds()
}

// String renders a human-readable run summary.
func (r *LoadResult) String() string {
	s := fmt.Sprintf(
		"loadgen: conc=%d batch=%d dur=%s: %d requests (%.0f req/s, %.0f points/s), %d errors, "+
			"p50=%s p95=%s p99=%s, noise %.1f%%, model versions %d..%d",
		r.Config.Concurrency, r.Config.BatchSize, r.Elapsed.Round(time.Millisecond),
		r.Requests, r.QPS(), r.PointsPerSec(), r.Errors,
		r.Latency.Quantile(0.5).Round(time.Microsecond),
		r.Latency.Quantile(0.95).Round(time.Microsecond),
		r.Latency.Quantile(0.99).Round(time.Microsecond),
		100*float64(r.NoisePoints)/float64(max(r.PointsClassified, 1)),
		r.MinVersion, r.MaxVersion)
	if r.Config.Rate > 0 {
		s += fmt.Sprintf(", open loop: target %.0f req/s achieved %.0f, max queue %d, %d dropped",
			r.Config.Rate, r.QPS(), r.MaxQueueDepth, r.ArrivalsDropped)
	}
	return s
}

// BenchReport converts the run into the benchio JSON schema, so serving
// throughput joins the BENCH_<rev>.json trajectory and cmd/benchdiff can
// flag regressions. The entry name mirrors the sub-benchmark convention of
// the in-process suite; NsPerOp is the mean request latency.
func (r *LoadResult) BenchReport(rev string) *benchio.Report {
	name := fmt.Sprintf("LoadgenClassify/conc=%d/batch=%d", r.Config.Concurrency, r.Config.BatchSize)
	if r.Config.Rate > 0 {
		name = fmt.Sprintf("LoadgenClassifyOpen/rate=%g/batch=%d", r.Config.Rate, r.Config.BatchSize)
	}
	entry := benchio.Entry{
		Name:        name,
		Iterations:  int64(r.Requests),
		NsPerOp:     float64(r.Latency.Mean().Nanoseconds()),
		BytesPerOp:  -1,
		AllocsPerOp: -1,
		Metrics: map[string]float64{
			"qps":       r.QPS(),
			"points/s":  r.PointsPerSec(),
			"p50-ms":    float64(r.Latency.Quantile(0.5)) / float64(time.Millisecond),
			"p95-ms":    float64(r.Latency.Quantile(0.95)) / float64(time.Millisecond),
			"p99-ms":    float64(r.Latency.Quantile(0.99)) / float64(time.Millisecond),
			"errors":    float64(r.Errors),
			"noise-pct": 100 * float64(r.NoisePoints) / float64(max(r.PointsClassified, 1)),
		},
	}
	if r.Config.Rate > 0 {
		entry.Metrics["target-rate"] = r.Config.Rate
		entry.Metrics["achieved-rate"] = r.QPS()
		entry.Metrics["max-queue"] = float64(r.MaxQueueDepth)
		entry.Metrics["dropped"] = float64(r.ArrivalsDropped)
	}
	rep := &benchio.Report{
		Rev:       rev,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Entries:   []benchio.Entry{entry},
	}
	benchio.StampHost(rep)
	return rep
}

// loadStats aggregates the counters shared by the closed- and open-loop
// drivers. All fields are safe for concurrent workers.
type loadStats struct {
	requests, errs, points, noise atomic.Uint64
	minVer, maxVer                atomic.Uint64
	latency                       *Histogram
}

func newLoadStats() *loadStats {
	s := &loadStats{latency: NewHistogram()}
	s.minVer.Store(^uint64(0))
	return s
}

// record books one successful request.
func (s *loadStats) record(labels []cluster.ID, version uint64, lat time.Duration) {
	s.latency.Observe(lat)
	s.requests.Add(1)
	s.points.Add(uint64(len(labels)))
	n := 0
	for _, l := range labels {
		if l == cluster.Noise {
			n++
		}
	}
	s.noise.Add(uint64(n))
	for {
		cur := s.minVer.Load()
		if version >= cur || s.minVer.CompareAndSwap(cur, version) {
			break
		}
	}
	for {
		cur := s.maxVer.Load()
		if version <= cur || s.maxVer.CompareAndSwap(cur, version) {
			break
		}
	}
}

// fill copies the totals into the result.
func (s *loadStats) fill(res *LoadResult) {
	res.Latency = s.latency
	res.Requests = s.requests.Load()
	res.Errors = s.errs.Load()
	res.PointsClassified = s.points.Load()
	res.NoisePoints = s.noise.Load()
	if res.Requests > 0 {
		res.MinVersion = s.minVer.Load()
		res.MaxVersion = s.maxVer.Load()
	}
}

// loadWorker owns one connection plus the per-worker batch buffer; the
// closed- and open-loop drivers share its dial/request/record cycle.
type loadWorker struct {
	cfg    *LoadConfig
	stats  *loadStats
	offset int
	batch  []geom.Point
	client *Client
}

func newLoadWorker(cfg *LoadConfig, stats *loadStats, worker int) *loadWorker {
	return &loadWorker{
		cfg:   cfg,
		stats: stats,
		// Stagger the pool offset so workers do not hammer identical
		// batches in lockstep.
		offset: (worker * len(cfg.Points)) / cfg.Concurrency,
		batch:  make([]geom.Point, cfg.BatchSize),
	}
}

func (w *loadWorker) close() {
	if w.client != nil {
		w.client.Close()
		w.client = nil
	}
}

// ensureConn dials if the worker has no live connection, counting a failed
// dial as one error.
func (w *loadWorker) ensureConn() bool {
	if w.client != nil {
		return true
	}
	c, err := Dial(w.cfg.Addr, w.cfg.Timeout)
	if err != nil {
		w.stats.errs.Add(1)
		return false
	}
	w.client = c
	return true
}

// requestFrom issues one request and records its latency measured from base:
// the send instant in the closed loop, the scheduled arrival in the open
// loop (charging queue wait to the tail). A failed request costs the worker
// its connection (counted as one error).
func (w *loadWorker) requestFrom(base time.Time) {
	for i := range w.batch {
		w.batch[i] = w.cfg.Points[w.offset%len(w.cfg.Points)]
		w.offset++
	}
	var labels []cluster.ID
	var version uint64
	var err error
	if w.cfg.BatchSize == 1 {
		var l cluster.ID
		l, version, err = w.client.Classify(w.batch[0])
		labels = append(labels[:0], l)
	} else {
		labels, version, err = w.client.ClassifyBatch(w.batch)
	}
	if err != nil {
		w.stats.errs.Add(1)
		w.close()
		return
	}
	w.stats.record(labels, version, time.Since(base))
}

// RunLoad executes one load run against cfg.Addr. With Rate == 0 the run is
// closed-loop: workers dial their own connections, cycle through the point
// pool at staggered offsets and keep one request in flight each until the
// duration elapses. Rate > 0 selects the open loop (see runOpenLoad). The
// run only fails outright when not a single request succeeded.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("serve: loadgen needs an address")
	}
	if len(cfg.Points) == 0 {
		return nil, fmt.Errorf("serve: loadgen needs a non-empty query point pool")
	}
	if cfg.Rate < 0 {
		return nil, fmt.Errorf("serve: loadgen rate %v must be >= 0", cfg.Rate)
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = runtime.GOMAXPROCS(0)
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.Rate > 0 {
		return runOpenLoad(cfg)
	}

	res := &LoadResult{Config: cfg}
	stats := newLoadStats()
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			lw := newLoadWorker(&cfg, stats, worker)
			defer lw.close()
			for time.Now().Before(deadline) {
				if !lw.ensureConn() {
					time.Sleep(10 * time.Millisecond) // closed loop: back off on dial failure
					continue
				}
				lw.requestFrom(time.Now())
			}
		}(w)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	stats.fill(res)
	return res, finishErr(res)
}

// runOpenLoad executes one open-loop run: a generator goroutine produces
// request arrivals as a Poisson process at cfg.Rate (exponential
// inter-arrival gaps — the memoryless traffic model) and enqueues the
// scheduled arrival times; workers drain the queue and measure latency from
// the scheduled arrival. Under overload the queue grows and its wait shows
// up in p95/p99 — the behavior a closed loop masks by slowing its own offered
// load (coordinated omission).
func runOpenLoad(cfg LoadConfig) (*LoadResult, error) {
	res := &LoadResult{Config: cfg}
	stats := newLoadStats()
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}

	// Bound the backlog at roughly one second of offered load (clamped to
	// [64, 65536]): a server that falls further behind sheds arrivals —
	// counted and reported — instead of blocking the generator, which would
	// silently degrade the run back into a closed loop.
	qcap := int(cfg.Rate)
	if qcap < 64 {
		qcap = 64
	}
	if qcap > 1<<16 {
		qcap = 1 << 16
	}
	arrivals := make(chan time.Time, qcap)
	var maxDepth atomic.Int64
	var dropped atomic.Uint64

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	go func() {
		defer close(arrivals)
		rng := rand.New(rand.NewSource(seed))
		next := start
		for {
			next = next.Add(time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second)))
			if next.After(deadline) {
				return
			}
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			select {
			case arrivals <- next:
				if depth := int64(len(arrivals)); depth > maxDepth.Load() {
					maxDepth.Store(depth) // single writer: no CAS needed
				}
			default:
				dropped.Add(1)
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			lw := newLoadWorker(&cfg, stats, worker)
			defer lw.close()
			for arrival := range arrivals {
				if !lw.ensureConn() {
					continue // the arrival is spent; counted as an error
				}
				lw.requestFrom(arrival)
			}
		}(w)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	stats.fill(res)
	res.ArrivalsDropped = dropped.Load()
	res.MaxQueueDepth = int(maxDepth.Load())
	return res, finishErr(res)
}

// finishErr turns an all-failure run into an error.
func finishErr(res *LoadResult) error {
	if res.Requests == 0 {
		return fmt.Errorf("serve: loadgen completed no request in %s (%d errors)",
			res.Elapsed.Round(time.Millisecond), res.Errors)
	}
	return nil
}
